package vizq_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vizq/internal/cache"
	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/opt"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// toggles exactly one mechanism so `go test -bench=Ablation` quantifies its
// contribution.

func startAblationBackend(b *testing.B) *remote.Server {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 30_000, Days: 180, Seed: 61})
	if err != nil {
		b.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), remote.Config{Latency: 2 * time.Millisecond})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

// BenchmarkAblationReuseAdjustment measures Sect. 3.2's "adjust queries
// before sending" rewrite: with it, an AVG drill-down sequence hits the
// cache; without it, every roll-up goes remote.
func BenchmarkAblationReuseAdjustment(b *testing.B) {
	srv := startAblationBackend(b)
	fine := &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "carrier"}, {Col: "origin"}},
		Measures: []query.Measure{{Fn: query.Avg, Col: "delay", As: "a"}},
	}
	coarse := fine.Clone()
	coarse.Dims = []query.Dim{{Col: "carrier"}}
	coarser := fine.Clone()
	coarser.Dims = nil
	coarser.Measures = []query.Measure{{Fn: query.Avg, Col: "delay", As: "a"}}
	coarser.Dims = []query.Dim{{Col: "origin"}}

	for _, disabled := range []bool{false, true} {
		name := "adjusted"
		if disabled {
			name = "unadjusted"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool := connection.NewPool(srv.Addr(), connection.PoolConfig{Max: 2})
				opt := core.DefaultOptions()
				opt.DisableReuseAdjustment = disabled
				proc := core.NewProcessor(pool, nil, nil, opt)
				for _, q := range []*query.Query{fine, coarse, coarser} {
					if _, err := proc.Execute(context.Background(), q.Clone()); err != nil {
						b.Fatal(err)
					}
				}
				pool.Close()
			}
		})
	}
}

// BenchmarkAblationBestMatch compares first-match (shipped) with
// least-post-processing candidate selection when the bucket holds both a
// huge and a tiny subsuming entry.
func BenchmarkAblationBestMatch(b *testing.B) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 150_000, Days: 365, Seed: 62})
	if err != nil {
		b.Fatal(err)
	}
	e := engine.New(db)
	broad := &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "market"}, {Col: "carrier"}, {Col: "hour"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
	narrow := broad.Clone()
	narrow.Dims = []query.Dim{{Col: "carrier"}, {Col: "hour"}}
	req := broad.Clone()
	req.Dims = []query.Dim{{Col: "carrier"}}

	ctx := context.Background()
	broadRes, err := e.Query(ctx, broad.ToTQL())
	if err != nil {
		b.Fatal(err)
	}
	narrowRes, err := e.Query(ctx, narrow.ToTQL())
	if err != nil {
		b.Fatal(err)
	}
	for _, best := range []bool{false, true} {
		name := "first-match"
		if best {
			name = "best-match"
		}
		b.Run(name, func(b *testing.B) {
			opts := cache.DefaultOptions()
			opts.BestMatch = best
			c := cache.NewIntelligentCache(opts)
			c.Put(broad, broadRes, time.Millisecond) // big entry inserted first
			c.Put(narrow, narrowRes, time.Millisecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := c.Get(req); !ok {
					b.Fatal("miss")
				}
			}
		})
	}
}

// BenchmarkAblationOrderPreservingExchange compares the shipped plan (plain
// exchange + serial sort) against per-fraction sorts with a merging
// exchange, under simulated scan I/O.
func BenchmarkAblationOrderPreservingExchange(b *testing.B) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 150_000, Days: 365, Seed: 63})
	if err != nil {
		b.Fatal(err)
	}
	e := engine.New(db)
	src := `(order (select (table flights) (> distance 500)) (asc market))`
	ctx := exec.WithConfig(context.Background(), exec.Config{ScanBatchDelay: 50 * time.Microsecond})
	for _, merge := range []bool{false, true} {
		name := "serial-sort-above-exchange"
		if merge {
			name = "merging-exchange"
		}
		b.Run(name, func(b *testing.B) {
			o := opt.DefaultOptions()
			o.GrainWork = 1 << 14
			o.EnableOrderPreservingExchange = merge
			e.SetOptions(o)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(ctx, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDictionaryCompression measures the dictionary's effect on
// string filters: the same data with and without dictionary compression.
func BenchmarkAblationDictionaryCompression(b *testing.B) {
	n := 200_000
	vals := make([]storage.Value, n)
	codes := workload.CarrierCodes(0)
	for i := range vals {
		vals[i] = storage.StrValue(codes[i%len(codes)])
	}
	amounts := make([]storage.Value, n)
	for i := range amounts {
		amounts[i] = storage.IntValue(int64(i % 1000))
	}
	for _, noDict := range []bool{false, true} {
		name := "dictionary"
		if noDict {
			name = "plain-strings"
		}
		b.Run(name, func(b *testing.B) {
			col, err := storage.BuildColumn("carrier", storage.TStr, storage.CollBinary, vals,
				storage.BuildOptions{NoDictionary: noDict, HasForce: noDict, ForceEncoding: storage.EncPlain})
			if err != nil {
				b.Fatal(err)
			}
			amt, err := storage.BuildColumn("amount", storage.TInt, storage.CollBinary, amounts, storage.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
			tbl, err := storage.NewTable("Extract", fmt.Sprintf("t%v", noDict), []*storage.Column{col, amt})
			if err != nil {
				b.Fatal(err)
			}
			dbn := storage.NewDatabase("abl")
			if err := dbn.AddTable(tbl); err != nil {
				b.Fatal(err)
			}
			eng := engine.New(dbn)
			o := opt.DefaultOptions()
			o.MaxDOP = 1
			eng.SetOptions(o)
			q := fmt.Sprintf(`(aggregate (select (table t%v) (= carrier "WN")) (groupby) (aggs (n count *) (s sum amount)))`, noDict)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
