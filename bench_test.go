package vizq_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vizq/internal/cache"
	"vizq/internal/experiments"
	"vizq/internal/query"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/opt"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

// ---- experiment benchmarks: one per table in EXPERIMENTS.md ----
// Each iteration runs the complete experiment at test scale; run
// cmd/benchrunner for the full-scale tables.

func benchExperiment(b *testing.B, run func(experiments.Scale) (*experiments.Table, error)) {
	b.Helper()
	s := experiments.TestScale()
	for i := 0; i < b.N; i++ {
		t, err := run(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1BatchProcessing(b *testing.B) { benchExperiment(b, experiments.E1BatchProcessing) }
func BenchmarkE2QueryFusion(b *testing.B)     { benchExperiment(b, experiments.E2QueryFusion) }
func BenchmarkE3ConcurrentConnections(b *testing.B) {
	benchExperiment(b, experiments.E3ConcurrentConnections)
}
func BenchmarkE4QueryCaching(b *testing.B)  { benchExperiment(b, experiments.E4QueryCaching) }
func BenchmarkE5ParallelPlans(b *testing.B) { benchExperiment(b, experiments.E5ParallelPlans) }
func BenchmarkE6RLEIndexScan(b *testing.B)  { benchExperiment(b, experiments.E6RLEIndexScan) }
func BenchmarkE7ShadowExtract(b *testing.B) { benchExperiment(b, experiments.E7ShadowExtract) }
func BenchmarkE8DataServerTempTables(b *testing.B) {
	benchExperiment(b, experiments.E8DataServerTempTables)
}
func BenchmarkE9PublishedVsEmbeddedExtracts(b *testing.B) {
	benchExperiment(b, experiments.E9PublishedVsEmbeddedExtracts)
}

// ---- micro-benchmarks of the hot engine paths ----

var benchEngine *engine.Engine

func getBenchEngine(b *testing.B) *engine.Engine {
	if benchEngine == nil {
		db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 200_000, Days: 365, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchEngine = engine.New(db)
	}
	return benchEngine
}

func benchQuery(b *testing.B, dop int, tql string) {
	b.Helper()
	e := getBenchEngine(b)
	o := opt.DefaultOptions()
	o.MaxDOP = dop
	e.SetOptions(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(context.Background(), tql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTDEScanFilter(b *testing.B) {
	benchQuery(b, 1, `(aggregate (select (table flights) (> distance 1500)) (groupby) (aggs (n count *)))`)
}

func BenchmarkTDEHashAggregate(b *testing.B) {
	benchQuery(b, 1, `(aggregate (table flights) (groupby carrier) (aggs (n count *) (a avg delay)))`)
}

func BenchmarkTDEStreamingAggregate(b *testing.B) {
	benchQuery(b, 1, `(aggregate (table flights) (groupby date) (aggs (n count *)))`)
}

func BenchmarkTDEHashJoin(b *testing.B) {
	benchQuery(b, 1, `
		(aggregate
			(join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))
			(groupby airline_name) (aggs (n count *)))`)
}

func BenchmarkTDETopN(b *testing.B) {
	benchQuery(b, 1, `(topn (aggregate (table flights) (groupby market) (aggs (n count *))) 10 (desc n))`)
}

func BenchmarkTDEDictFilter(b *testing.B) {
	// Token fast path: string equality on a dictionary column.
	benchQuery(b, 1, `(aggregate (select (table flights) (= carrier "WN")) (groupby) (aggs (n count *)))`)
}

func BenchmarkTDECompileOptimize(b *testing.B) {
	e := getBenchEngine(b)
	src := `
		(topn
			(aggregate
				(select (join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))
					(and (> distance 500) (in origin ["LAX" "SFO" "JFK"])))
				(groupby airline_name)
				(aggs (n count *) (a avg delay)))
			5 (desc n))`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Plan(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheDerivRollup(b *testing.B) {
	e := getBenchEngine(b)
	s := &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "carrier"}, {Col: "origin"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}, {Fn: query.Sum, Col: "distance", As: "d"}},
	}
	sres, err := e.Query(context.Background(), s.ToTQL())
	if err != nil {
		b.Fatal(err)
	}
	r := s.Clone()
	r.Dims = []query.Dim{{Col: "carrier"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cache.Derive(s, sres, r); !ok {
			b.Fatal("derive failed")
		}
	}
}

func BenchmarkCacheSubsumptionCheck(b *testing.B) {
	s := &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "carrier"}, {Col: "origin"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
		Filters:  []query.Filter{query.GtFilter("distance", storage.IntValue(100))},
	}
	r := s.Clone()
	r.Dims = []query.Dim{{Col: "carrier"}}
	// Same base filter plus a residual filter on a stored dimension.
	r.Filters = append(r.Filters, query.InFilter("origin", storage.StrValue("LAX"), storage.StrValue("SFO")))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cache.Subsumes(s, r) {
			b.Fatal("should subsume")
		}
	}
}

func BenchmarkResultJSONCodec(b *testing.B) {
	e := getBenchEngine(b)
	q := &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "market"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
	}
	res, err := e.Query(context.Background(), q.ToTQL())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := cache.EncodeEntry(q, res, time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := cache.DecodeEntry(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColumnBuildRLE(b *testing.B) {
	vals := make([]storage.Value, 100_000)
	for i := range vals {
		vals[i] = storage.IntValue(int64(i / 100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := storage.BuildColumn("c", storage.TInt, storage.CollBinary, vals, storage.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRLEMaterialize(b *testing.B) {
	vals := make([]storage.Value, 100_000)
	for i := range vals {
		vals[i] = storage.IntValue(int64(i / 100))
	}
	col, err := storage.BuildColumn("c", storage.TInt, storage.CollBinary, vals, storage.BuildOptions{ForceEncoding: storage.EncRLE, HasForce: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for from := 0; from < 100_000; from += storage.BatchSize {
			to := from + storage.BatchSize
			if to > 100_000 {
				to = 100_000
			}
			col.ScanRange(from, to)
		}
	}
}

func BenchmarkParallelVsSerialAgg(b *testing.B) {
	// An ablation pair usable with -bench to see the Exchange benefit under
	// simulated disk latency.
	for _, dop := range []int{1, 4} {
		b.Run(fmt.Sprintf("dop%d", dop), func(b *testing.B) {
			e := getBenchEngine(b)
			o := opt.DefaultOptions()
			o.MaxDOP = dop
			o.GrainWork = 1 << 14
			e.SetOptions(o)
			ctx := exec.WithConfig(context.Background(), exec.Config{ScanBatchDelay: 50 * time.Microsecond})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(ctx, `(aggregate (table flights) (groupby carrier) (aggs (n count *)))`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
