// Package vizq is a from-scratch reproduction of the systems described in
// "On Improving User Response Times in Tableau" (SIGMOD 2015): the Tableau
// Data Engine (a read-optimized column store with a TQL compiler, rule-based
// optimizer and parallel Volcano executor), the dashboard query-processing
// pipeline (batch optimization, query fusion, two-level caching, pooled
// concurrent connections), shadow extracts for text files, and the Data
// Server (published data sources, shared calculations, user filters and
// temporary table management).
//
// See DESIGN.md for the system inventory and the experiment index, and
// EXPERIMENTS.md for the measured reproduction of every performance claim.
package vizq
