package main

import (
	"go/ast"
	"go/token"
)

// goroutineJoinPkgs are the subsystems where every launched goroutine must
// be joinable or cancellable: the parallel executor, the Data Server, and
// the remote connection machinery.
var goroutineJoinPkgs = []string{"internal/tde/exec", "internal/dataserver", "internal/remote"}

// checkGoroutines implements the goroutine-hygiene family:
//
//  1. A `go func` literal inside a method must not write the receiver's
//     fields unless the body acquires one of the receiver's mutexes first
//     (writes via sync/atomic are calls, not assignments, and pass).
//  2. In the packages listed above, a launched goroutine must carry a join
//     or cancellation signal: a WaitGroup Done/Wait, a channel operation
//     (send, receive, close, range), or a select.
func checkGoroutines(pkg *pkgInfo, fi *fileInfo) []Finding {
	var out []Finding
	joinScoped := pathHasAny(pkg.ImportPath, goroutineJoinPkgs...)
	for _, decl := range fi.File.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		recvName, recvType := receiverOf(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // method values / bound calls: out of scope
			}
			if recvName != "" {
				out = append(out, checkSharedWrites(pkg, fi, lit, recvName, recvType)...)
			}
			if joinScoped && !hasJoinSignal(lit.Body) {
				if !fi.allowedAt(pkg.Fset, g.Pos(), "goroutine") {
					out = append(out, Finding{
						Pos:   pkg.Fset.Position(g.Pos()),
						Check: "goroutine",
						Msg:   "goroutine has no join or cancellation signal (WaitGroup, channel, context, or select)",
					})
				}
			}
			return true
		})
	}
	return out
}

// checkSharedWrites flags assignments to receiver fields inside a
// goroutine body that are not preceded by a receiver-mutex Lock in the
// same body. Position order is a heuristic: a Lock anywhere earlier in
// the literal counts as protection.
func checkSharedWrites(pkg *pkgInfo, fi *fileInfo, lit *ast.FuncLit, recvName, recvType string) []Finding {
	var out []Finding
	mutexes := pkg.mutexFields[recvType]
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		var pos ast.Node
		switch x := n.(type) {
		case *ast.AssignStmt:
			targets, pos = x.Lhs, x
		case *ast.IncDecStmt:
			targets, pos = []ast.Expr{x.X}, x
		default:
			return true
		}
		for _, t := range targets {
			field, ok := receiverField(t, recvName)
			if !ok || mutexes[field] {
				continue
			}
			if lockBefore(lit.Body, recvName, mutexes, pos.Pos()) {
				continue
			}
			if fi.allowedAt(pkg.Fset, pos.Pos(), "goroutine") {
				continue
			}
			out = append(out, Finding{
				Pos:   pkg.Fset.Position(pos.Pos()),
				Check: "goroutine",
				Msg: "goroutine writes shared field " + recvName + "." + field +
					" without holding the receiver's mutex",
			})
		}
		return true
	})
	return out
}

// receiverField returns the first-level field name when expr is a write
// target rooted at the receiver identifier (recv.f, recv.f.g, recv.f[i]).
func receiverField(e ast.Expr, recvName string) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == recvName {
				return x.Sel.Name, true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// lockBefore reports whether a receiver-mutex Lock call appears in body
// before limit.
func lockBefore(body *ast.BlockStmt, recvName string, mutexes map[string]bool, limit token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || (n != nil && n.Pos() >= limit) {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			if id, ok := inner.X.(*ast.Ident); ok && id.Name == recvName && mutexes[inner.Sel.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasJoinSignal reports whether a goroutine body contains any construct
// that lets another goroutine join or cancel it.
func hasJoinSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.RangeStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Wait" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
