package fixture

import "sync"

type worker struct {
	mu    sync.Mutex
	count int
}

// Kick launches a goroutine that mutates shared receiver state without
// the mutex and offers no way to join or cancel it.
func (w *worker) Kick() {
	go func() {
		w.count++ // want: goroutine (unprotected shared write; plus no join signal on the go stmt)
	}()
}
