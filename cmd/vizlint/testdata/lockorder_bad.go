package fixture

import "sync"

type orderA struct{ mu sync.Mutex }

type orderB struct{ mu sync.Mutex }

// LockAB acquires orderA.mu then orderB.mu: one half of the cycle.
func LockAB(a *orderA, b *orderB) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// LockBA acquires in the opposite order. Together with LockAB this closes
// a lock-order cycle: one concurrent caller of each can deadlock.
// (1 finding)
func LockBA(a *orderA, b *orderB) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// SendWhileLocked holds orderA.mu across a channel send: if no receiver is
// ready, every other user of the lock waits on that receiver too.
// (1 finding)
func SendWhileLocked(a *orderA, ch chan int) {
	a.mu.Lock()
	ch <- 1
	a.mu.Unlock()
}

// WaitViaCall holds orderB.mu across a call that blocks — the blocking
// operation is inside the callee, so only the call graph sees it.
// (1 finding)
func WaitViaCall(b *orderB, wg *sync.WaitGroup) {
	b.mu.Lock()
	joinHelpers(wg)
	b.mu.Unlock()
}

func joinHelpers(wg *sync.WaitGroup) {
	wg.Wait()
}
