package fixture

import (
	"context"
	"errors"
)

var errGoodFixture = errors.New("fixture")

type gconn struct{}

func (c *gconn) ping() {}

type gpool struct{}

func (p *gpool) Acquire(ctx context.Context) (*gconn, error) { return nil, nil }
func (p *gpool) Release(c *gconn)                            {}
func (p *gpool) Discard(c *gconn)                            {}

// ReleasedOnEveryPath pairs Acquire with Release or Discard on every
// path that holds a connection.
func ReleasedOnEveryPath(ctx context.Context, p *gpool, broken bool) error {
	c, err := p.Acquire(ctx)
	if err != nil {
		return err
	}
	if broken {
		p.Discard(c)
		return errGoodFixture
	}
	p.Release(c)
	return nil
}

// HandedToCallback escapes the connection into fn, which owns it from
// then on.
func HandedToCallback(ctx context.Context, p *gpool, fn func(*gconn)) error {
	c, err := p.Acquire(ctx)
	if err != nil {
		return err
	}
	fn(c)
	return nil
}

type gcall struct{ done chan struct{} }

type gflight struct {
	calls map[string]*gcall
}

// LeaderDeletesSlot mirrors the single-flight leader protocol: register,
// work, delete, then wake the followers.
func (f *gflight) LeaderDeletesSlot(key string) {
	c := &gcall{done: make(chan struct{})}
	f.calls[key] = c
	defer close(c.done)
	delete(f.calls, key)
}

type gbreaker struct{}

func (b *gbreaker) allow() (ok, probe bool) { return true, false }
func (b *gbreaker) releaseProbe()           {}
func (b *gbreaker) RecordFailure()          {}

// ProbeSettled releases the probe slot on every outcome: RecordFailure on
// error, releaseProbe when no outcome is recorded, and the !allowed and
// !probe branches never held a slot.
func (b *gbreaker) ProbeSettled(attempt func() error) error {
	allowed, probe := b.allow()
	if !allowed {
		return errGoodFixture
	}
	if err := attempt(); err != nil {
		b.RecordFailure()
		return err
	}
	if probe {
		b.releaseProbe()
	}
	return nil
}

type gwaiter struct{ ready chan struct{} }

type gsched struct{}

func (s *gsched) enqueueLocked(class int, user, sess string) *gwaiter   { return &gwaiter{} }
func (s *gsched) removeLocked(class int, user, sess string, w *gwaiter) {}

// WaitOrRemove mirrors the Admit protocol: the grant path hands the
// waiter off by waiting on its ready channel, and the cancel path takes
// it back out of the ring.
func (s *gsched) WaitOrRemove(ctx context.Context, class int, user, sess string) error {
	w := s.enqueueLocked(class, user, sess)
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.removeLocked(class, user, sess, w)
		return ctx.Err()
	}
}
