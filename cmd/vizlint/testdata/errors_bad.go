package fixture

import (
	"bufio"
	"fmt"
	"os"
)

func flushAndClose(w *bufio.Writer, f *os.File, err error) error {
	w.Flush() // want: errors (discarded Flush error)
	f.Close() // want: errors (discarded Close error)
	return fmt.Errorf("save failed: %v", err) // want: errors (error wrapped without %w)
}

func writeAll(w *bufio.Writer, data []byte) {
	w.Write(data) // want: errors (discarded Write error)
}
