package fixture

import "sync"

type workerOK struct {
	mu    sync.Mutex
	count int
	wg    sync.WaitGroup
}

// Kick protects the shared write and joins through the WaitGroup.
func (w *workerOK) Kick() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.mu.Lock()
		w.count++
		w.mu.Unlock()
	}()
}

// Drain is joined by channel close.
func (w *workerOK) Drain(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// Fanout writes only goroutine-local state and signals completion.
func (w *workerOK) Fanout(out chan<- int) {
	go func() {
		local := 0
		local++
		out <- local
	}()
}
