package fixture

import "time"

func simulateLatencyInline() {
	time.Sleep(time.Millisecond) //vizlint:allow sleep -- simulated wire latency
}

func simulateLatencyAbove() {
	//vizlint:allow sleep -- modeling a disk stall
	time.Sleep(time.Millisecond)
}
