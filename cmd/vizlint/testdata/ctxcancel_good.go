package fixture

import (
	"context"
	"time"
)

// DeferredCancel is the idiomatic shape: defer right after the derive,
// covering every return path including the early one.
func DeferredCancel(ctx context.Context, fail bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if fail {
		return context.Canceled
	}
	consume(ctx)
	return nil
}

// ExplicitOnEveryPath calls cancel on both the early and the late exit.
func ExplicitOnEveryPath(ctx context.Context, fail bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	if fail {
		cancel()
		return context.Canceled
	}
	consume(ctx)
	cancel()
	return nil
}

// WrappedDefer schedules the cancel from inside a deferred closure.
func WrappedDefer(ctx context.Context) {
	ctx, cancel := context.WithDeadline(ctx, time.Unix(1, 0))
	defer func() {
		cancel()
	}()
	consume(ctx)
}

// EscapesToCaller hands the cancel func back to the caller, which owns
// the release from then on.
func EscapesToCaller(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	return ctx, cancel
}

// EscapesToHelper passes the cancel func into another function that is
// responsible for calling it.
func EscapesToHelper(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	adopt(cancel)
	consume(ctx)
}

func adopt(cancel context.CancelFunc) { cancel() }

func consume(ctx context.Context) { _ = ctx }
