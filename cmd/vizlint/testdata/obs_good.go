package fixture

import (
	"context"
	"errors"

	"vizq/internal/obs"
)

// DeferFinish is the canonical pattern: every return path runs the defer.
func DeferFinish(ctx context.Context, fail bool) error {
	ctx, sp := obs.StartSpan(ctx, "work")
	defer sp.Finish()
	sp.Annotate("k", "v")
	if fail {
		return errors.New("covered by the defer")
	}
	_ = ctx
	return nil
}

// ExplicitOnAllPaths finishes by hand on both the early and the late path.
func ExplicitOnAllPaths(ctx context.Context, fast bool) {
	_, sp := obs.StartSpan(ctx, "probe")
	if fast {
		sp.Finish()
		return
	}
	sp.Finish()
}

// PassedAlong hands the span to a helper, which owns finishing it.
func PassedAlong(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "handoff")
	finishLater(sp)
}

func finishLater(sp *obs.Span) { sp.Finish() }

// ReturnedSpan gives the caller ownership.
func ReturnedSpan(ctx context.Context) *obs.Span {
	_, sp := obs.StartSpan(ctx, "caller-owned")
	return sp
}

// FinishedInGoroutine completes the span on another goroutine's schedule.
func FinishedInGoroutine(ctx context.Context, done chan struct{}) {
	_, sp := obs.StartSpan(ctx, "async")
	go func() {
		<-done
		sp.Finish()
	}()
}

// WrappedDefer uses the closure form of the deferred release.
func WrappedDefer(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "wrapped")
	defer func() {
		sp.Annotate("late", "yes")
		sp.Finish()
	}()
}

// Suppressed documents an intentional leak with a directive.
func Suppressed(ctx context.Context) {
	//vizlint:allow obs -- fixture: span intentionally dropped
	_, sp := obs.StartSpan(ctx, "intentional")
	sp.Annotate("k", "v")
}
