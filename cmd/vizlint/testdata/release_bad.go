package fixture

import (
	"context"
	"errors"
)

var errFixture = errors.New("fixture")

type rconn struct{}

func (c *rconn) ping() {}

type rpool struct{}

func (p *rpool) Acquire(ctx context.Context) (*rconn, error) { return nil, nil }
func (p *rpool) Release(c *rconn)                            {}
func (p *rpool) Discard(c *rconn)                            {}

// LeakOnEarlyReturn releases the connection on the happy path only; the
// bail-out leaks it. The Acquire error return itself is exempt — the
// connection was never produced there. (1 finding)
func LeakOnEarlyReturn(ctx context.Context, p *rpool, fail bool) error {
	c, err := p.Acquire(ctx)
	if err != nil {
		return err
	}
	if fail {
		return errFixture
	}
	p.Release(c)
	return nil
}

// LeakOnFallThrough uses the connection but never returns it to the pool.
// (1 finding)
func LeakOnFallThrough(ctx context.Context, p *rpool) {
	c, _ := p.Acquire(ctx)
	c.ping()
}

type fcall struct{ done chan struct{} }

type flightFixture struct {
	calls map[string]*fcall
}

// LeaderForgetsDelete registers a single-flight leader slot and returns
// without deleting it on the error path: every follower for that key
// blocks on a done channel that never closes. (1 finding)
func (f *flightFixture) LeaderForgetsDelete(key string, fail bool) error {
	c := &fcall{done: make(chan struct{})}
	f.calls[key] = c
	if fail {
		return errFixture
	}
	delete(f.calls, key)
	close(c.done)
	return nil
}

type probeBreaker struct{}

func (b *probeBreaker) allow() (ok, probe bool) { return true, true }
func (b *probeBreaker) releaseProbe()           {}
func (b *probeBreaker) RecordSuccess()          {}

// ProbeLeakOnEarlyReturn admits a half-open probe and bails without
// settling it: the breaker wedges in half-open. The !allowed return is
// exempt — no slot was admitted on that branch. (1 finding)
func (b *probeBreaker) ProbeLeakOnEarlyReturn(fail bool) error {
	allowed, probe := b.allow()
	if !allowed {
		return errFixture
	}
	if fail {
		return errFixture
	}
	if probe {
		b.releaseProbe()
	}
	return nil
}

// DiscardedProbe drops the probe flag outright, so no caller can ever
// release the slot. (1 finding)
func (b *probeBreaker) DiscardedProbe() bool {
	ok, _ := b.allow()
	return ok
}

type qwaiter struct{ ready chan struct{} }

type qsched struct{}

func (s *qsched) enqueueLocked(class int, user, sess string) *qwaiter   { return &qwaiter{} }
func (s *qsched) removeLocked(class int, user, sess string, w *qwaiter) {}

// EnqueueForgetsRemove queues a waiter and bails on the shed path without
// dropping it from the ring: the dead entry eats a WRR turn forever and
// the next grant aimed at it vanishes. (1 finding)
func (s *qsched) EnqueueForgetsRemove(class int, user, sess string, shed bool) error {
	w := s.enqueueLocked(class, user, sess)
	if shed {
		return errFixture
	}
	s.removeLocked(class, user, sess, w)
	return nil
}
