package fixture

import "sync"

type gauge struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Add uses the canonical defer pattern.
func (g *gauge) Add(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n += v
}

// TryAdd releases explicitly on every return path.
func (g *gauge) TryAdd(v, limit int) bool {
	g.mu.Lock()
	if g.n+v > limit {
		g.mu.Unlock()
		return false
	}
	g.n += v
	g.mu.Unlock()
	return true
}

// Read pairs RLock with a deferred RUnlock.
func (g *gauge) Read() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.n
}

// Loop locks and unlocks within each iteration.
func (g *gauge) Loop(vals []int) {
	for _, v := range vals {
		g.mu.Lock()
		g.n += v
		g.mu.Unlock()
	}
}

// Wait releases before blocking and re-acquires per round, with
// terminating select arms.
func (g *gauge) Wait(ch chan int, stop chan struct{}) int {
	for {
		g.mu.Lock()
		if g.n > 0 {
			n := g.n
			g.mu.Unlock()
			return n
		}
		g.mu.Unlock()
		select {
		case v := <-ch:
			g.mu.Lock()
			g.n += v
			g.mu.Unlock()
		case <-stop:
			return 0
		}
	}
}

// helper does not lock, so calling it under the lock is fine.
func (g *gauge) helperLocked() int { return g.n }

func (g *gauge) Snapshot() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.helperLocked()
}
