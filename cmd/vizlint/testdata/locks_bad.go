package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// Bump leaks the lock on the limit path.
func (c *counter) Bump(limit int) bool {
	c.mu.Lock()
	if c.n >= limit {
		return false // want: locks (return path leaves c.mu locked)
	}
	c.n++
	c.mu.Unlock()
	return true
}

// Total deadlocks: locked() re-acquires the mutex Total already holds.
func (c *counter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.locked() // want: locks (call chain re-locks c.mu)
}

func (c *counter) locked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Twice locks the same mutex twice on one path.
func (c *counter) Twice() {
	c.mu.Lock()
	c.mu.Lock() // want: locks (double lock)
	c.mu.Unlock()
	c.mu.Unlock()
}

// Set falls off the end of the function still holding the lock.
func (c *counter) Set(v int) {
	c.mu.Lock()
	c.n = v
} // want: locks (function exits locked)
