package fixture

import "time"

func waitForServer() {
	time.Sleep(50 * time.Millisecond) // want: sleep (sleep as synchronization)
}
