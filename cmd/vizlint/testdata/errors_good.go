package fixture

import (
	"bufio"
	"fmt"
	"os"
)

func flushAndCloseOK(w *bufio.Writer, f *os.File, err error) error {
	if ferr := w.Flush(); ferr != nil {
		return fmt.Errorf("flush: %w", ferr)
	}
	defer f.Close() // deferred close of a read path is a visible decision
	_ = w.Flush()   // explicit discard is a visible decision
	return fmt.Errorf("save failed: %w", err)
}

func formatOK(n int, name string) error {
	// Non-error arguments never need %w.
	return fmt.Errorf("bad row %d in %s", n, name)
}
