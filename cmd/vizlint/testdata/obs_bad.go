package fixture

import (
	"context"
	"errors"

	"vizq/internal/obs"
)

// EarlyReturn leaks its span on the error path: only the happy path
// finishes it. (1 finding)
func EarlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.StartSpan(ctx, "work")
	if fail {
		return errors.New("bailed before Finish")
	}
	sp.Finish()
	return nil
}

// FallThrough starts a span and never finishes it at all. (1 finding)
func FallThrough(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "forgotten")
	sp.Annotate("k", "v")
}

// Restarted rebinds the span variable while the first span is still open:
// nothing can ever finish the orphan. (1 finding)
func Restarted(ctx context.Context) {
	ctx, sp := obs.StartSpan(ctx, "first")
	ctx, sp = obs.StartSpan(ctx, "second")
	_ = ctx
	sp.Finish()
}

// DeferOnlySometimes schedules the Finish in one branch but falls through
// without it in the other. (1 finding)
func DeferOnlySometimes(ctx context.Context, hot bool) {
	_, sp := obs.StartSpan(ctx, "maybe")
	if hot {
		defer sp.Finish()
	}
}
