package fixture

import "sync"

type goodA struct{ mu sync.Mutex }

type goodB struct{ mu sync.Mutex }

// ConsistentOne and ConsistentTwo both take goodA.mu before goodB.mu:
// edges in one direction only, no cycle.
func ConsistentOne(a *goodA, b *goodB) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
}

// ConsistentTwo releases both locks before touching the channel.
func ConsistentTwo(a *goodA, b *goodB, ch chan int) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
	ch <- 1
}

// NonBlockingSend holds the lock across a select with a default clause,
// which cannot block.
func NonBlockingSend(a *goodA, ch chan int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// UnlockedBeforeReceive waits only after releasing the lock.
func UnlockedBeforeReceive(a *goodA, ch chan int) {
	a.mu.Lock()
	a.mu.Unlock()
	<-ch
}
