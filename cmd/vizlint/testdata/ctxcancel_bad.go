package fixture

import (
	"context"
	"errors"
	"time"
)

// EarlyReturnCancel leaks the cancel func on the error path: only the
// happy path calls it. (1 finding)
func EarlyReturnCancel(ctx context.Context, fail bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	if fail {
		return errors.New("bailed before cancel")
	}
	use(ctx)
	cancel()
	return nil
}

// FallThroughCancel derives a deadline context and never cancels it at
// all. (1 finding)
func FallThroughCancel(ctx context.Context) {
	ctx, cancel := context.WithDeadline(ctx, time.Unix(0, 0))
	use(ctx)
}

// ReboundCancel rebinds the cancel variable while the first timer is
// still live: nothing can ever release the orphan. (1 finding)
func ReboundCancel(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	ctx, cancel = context.WithTimeout(ctx, time.Minute)
	use(ctx)
	cancel()
}

// DeferOnlyInOneBranch schedules the cancel in the hot branch but falls
// through without it in the other. (1 finding)
func DeferOnlyInOneBranch(ctx context.Context, hot bool) {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	if hot {
		defer cancel()
	}
	use(ctx)
}

func use(ctx context.Context) { _ = ctx }
