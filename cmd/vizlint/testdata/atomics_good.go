package fixture

import (
	"sync"
	"sync/atomic"
)

type goodStats struct {
	hits  int64
	plain int64
	mu    sync.Mutex
}

// Hit and Hits access hits exclusively through sync/atomic.
func (s *goodStats) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *goodStats) Hits() int64 {
	return atomic.LoadInt64(&s.hits)
}

// Bump guards plain with the mutex; no atomic ever touches it, so mixing
// is impossible.
func (s *goodStats) Bump() {
	s.mu.Lock()
	s.plain++
	s.mu.Unlock()
}
