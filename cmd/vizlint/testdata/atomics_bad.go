package fixture

import "sync/atomic"

type counterStats struct {
	hits  int64
	total int64
}

// AtomicHit updates hits through sync/atomic, making hits an atomic field
// everywhere.
func (s *counterStats) AtomicHit() {
	atomic.AddInt64(&s.hits, 1)
}

// PlainRead loads hits without atomic: races with AtomicHit. (1 finding)
func (s *counterStats) PlainRead() int64 {
	return s.hits
}

// PlainWrite stores hits without atomic. (1 finding)
func (s *counterStats) PlainWrite() {
	s.hits = 0
}

// TotalOnly touches a field no atomic ever touches: not a finding.
func (s *counterStats) TotalOnly() int64 {
	s.total++
	return s.total
}
