// vizlint is a project-specific static analyzer for vizq's concurrent
// query stack. It is stdlib-only (go/ast + go/parser + go/types) and
// implements nine check families tuned to this codebase's hazards:
//
//	locks     – a method that calls mu.Lock() must release it on every
//	            return path (prefer defer); double-lock of the same
//	            receiver mutex in one call chain is flagged.
//	goroutine – `go func` literals must not write receiver fields without
//	            the receiver's mutex; goroutines in the exec/dataserver/
//	            remote packages must have a join or cancellation signal.
//	errors    – Close/Flush/Write error results must not be silently
//	            discarded in the storage and kvstore packages; fmt.Errorf
//	            wrapping an error variable must use %w.
//	sleep     – time.Sleep must not be used for synchronization outside
//	            tests and simulation code.
//	obs       – a span started with obs.StartSpan must be finished on
//	            every return path (prefer defer sp.Finish()); spans that
//	            escape the function are assumed finished elsewhere.
//	ctxcancel – the cancel func from context.WithTimeout/WithDeadline
//	            must be called on every return path (prefer defer
//	            cancel()); cancels that escape are assumed called
//	            elsewhere.
//	lockorder – locks acquired in inconsistent orders across the module's
//	            call graph (a cycle in the lock-order graph is a potential
//	            deadlock), and locks held across blocking operations
//	            (channel ops, select without default, Wait, time.Sleep,
//	            or a call that transitively does one of those).
//	atomics   – struct fields accessed both through sync/atomic and with
//	            plain loads/stores: the plain side races with every
//	            atomic update.
//	release   – pooled resources must be returned on every path:
//	            connection.Pool Acquire/Release-or-Discard, single-flight
//	            leader slots (map registration/delete), and breaker
//	            half-open probe slots (allow/releaseProbe-or-Record*).
//
// The obs, ctxcancel and release families are instantiations of one
// shared must-release dataflow engine (dataflow.go) running over a
// per-function CFG (cfg.go); lockorder additionally propagates held-lock
// sets through a module-wide call graph (callgraph.go, lockorder.go).
//
// Flags: -json emits findings as JSON objects, one per line, with path,
// line, col, check and msg fields; -checks a,b,c restricts output to the
// named families.
//
// A finding can be suppressed with a directive comment on the same line
// or the line above:
//
//	//vizlint:allow sleep -- simulated wire latency
//
// The directive names one or more checks (locks, goroutine, errors,
// sleep, obs, ctxcancel, lockorder, atomics, release, or all); text
// after "--" is an optional justification.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Finding is one reported problem.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Msg)
}

// fileInfo is one parsed non-test source file plus its suppression
// directives and module-local import bindings.
type fileInfo struct {
	Path  string
	File  *ast.File
	allow map[int]map[string]bool // line -> check names allowed
	// imports maps local import names to module-local import paths
	// (cross-package call resolution).
	imports map[string]string
}

// pkgInfo is one directory's package with the indexes the checks share.
type pkgInfo struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*fileInfo
	Info       *types.Info // sparsely populated; imports are stubbed

	// mutexFields: struct type name -> field names of sync.Mutex/RWMutex
	// type (including pointers to them).
	mutexFields map[string]map[string]bool
	// methodAcquires: "Type.Method" -> receiver-relative mutex paths the
	// method locks somewhere in its body (outside go statements).
	methodAcquires map[string]map[string]bool
}

// loadPackage parses every non-test .go file in dir as one package and
// builds the shared indexes. Returns nil if the directory holds no
// non-test Go files.
func loadPackage(fset *token.FileSet, dir, modPath string) (*pkgInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*fileInfo
	var astFiles []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, &fileInfo{
			Path:    path,
			File:    f,
			allow:   buildAllow(fset, f),
			imports: moduleImports(f, modPath),
		})
		astFiles = append(astFiles, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(".", dir)
	if err != nil {
		rel = dir
	}
	importPath := filepath.ToSlash(rel)
	if modPath != "" && importPath != "." {
		importPath = modPath + "/" + importPath
	} else if importPath == "." {
		importPath = modPath
	}
	pkg := &pkgInfo{ImportPath: importPath, Fset: fset, Files: files}
	pkg.typeCheck(astFiles)
	pkg.buildIndexes()
	return pkg, nil
}

// typeCheck runs go/types over the package with stubbed-out imports.
// Cross-package selectors come back invalid, but identifiers bound to
// package-local declarations (receivers, locals, fields, error results of
// local functions) resolve, which is all the checks need.
func (p *pkgInfo) typeCheck(files []*ast.File) {
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Error:    func(error) {}, // partial information is expected
		Importer: &stubImporter{pkgs: make(map[string]*types.Package)},
	}
	// Check mutates nothing on error thanks to the error handler; the
	// sparse Info maps are still useful.
	_, _ = conf.Check(p.ImportPath, p.Fset, files, p.Info)
}

// stubImporter satisfies every import with an empty, complete package so
// type checking can proceed without resolving dependencies.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (s *stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.pkgs[path]; ok {
		return pkg, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	s.pkgs[path] = pkg
	return pkg, nil
}

// moduleImports maps each of a file's local import names to its import
// path, keeping only imports inside this module.
func moduleImports(f *ast.File, modPath string) map[string]string {
	out := make(map[string]string)
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if modPath == "" || (path != modPath && !strings.HasPrefix(path, modPath+"/")) {
			continue
		}
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		out[name] = path
	}
	return out
}

// buildAllow indexes //vizlint:allow directives. A directive applies to
// its own line and the following line, so it can sit inline or above the
// statement it exempts.
func buildAllow(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	allow := make(map[int]map[string]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			if !strings.HasPrefix(text, "vizlint:allow") {
				continue
			}
			rest := strings.TrimPrefix(text, "vizlint:allow")
			rest, _, _ = strings.Cut(rest, "--") // trailing justification
			line := fset.Position(c.Pos()).Line
			for _, name := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
				for _, l := range []int{line, line + 1} {
					if allow[l] == nil {
						allow[l] = make(map[string]bool)
					}
					allow[l][name] = true
				}
			}
		}
	}
	return allow
}

// allowedAt reports whether a directive exempts check at pos.
func (fi *fileInfo) allowedAt(fset *token.FileSet, pos token.Pos, check string) bool {
	line := fset.Position(pos).Line
	m := fi.allow[line]
	return m != nil && (m[check] || m["all"])
}

// buildIndexes fills mutexFields and methodAcquires.
func (p *pkgInfo) buildIndexes() {
	p.mutexFields = make(map[string]map[string]bool)
	p.methodAcquires = make(map[string]map[string]bool)
	for _, fi := range p.Files {
		ast.Inspect(fi.File, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !isMutexType(field.Type) {
					continue
				}
				if p.mutexFields[ts.Name.Name] == nil {
					p.mutexFields[ts.Name.Name] = make(map[string]bool)
				}
				for _, name := range field.Names {
					p.mutexFields[ts.Name.Name][name.Name] = true
				}
			}
			return true
		})
	}
	for _, fi := range p.Files {
		for _, decl := range fi.File.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvName, recvType := receiverOf(fd)
			if recvName == "" || recvType == "" {
				continue
			}
			acq := make(map[string]bool)
			collectAcquires(fd.Body, recvName, acq)
			if len(acq) > 0 {
				p.methodAcquires[recvType+"."+fd.Name.Name] = acq
			}
		}
	}
}

// collectAcquires records receiver-relative mutex paths locked anywhere in
// body, skipping go statements (their locks run on another goroutine and
// cannot deadlock the caller's chain).
func collectAcquires(body ast.Node, recvName string, out map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		key := exprKey(sel.X)
		if rel, ok := strings.CutPrefix(key, recvName+"."); ok {
			out[rel] = true
		}
		return true
	})
}

// receiverOf extracts the receiver identifier and bare type name.
func receiverOf(fd *ast.FuncDecl) (name, typeName string) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", ""
	}
	field := fd.Recv.List[0]
	if len(field.Names) > 0 {
		name = field.Names[0].Name
	}
	t := field.Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return name, x.Name
		default:
			return name, ""
		}
	}
}

// isMutexType matches sync.Mutex, sync.RWMutex and pointers to them.
func isMutexType(t ast.Expr) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "sync" && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
}

// exprKey renders a selector chain ("p.mu", "c.srv.mu") for use as a lock
// identity; unknown shapes return "".
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	}
	return ""
}

// pathHasAny reports whether the package import path contains one of the
// fragments (used to scope checks to specific subsystems).
func pathHasAny(importPath string, frags ...string) bool {
	for _, f := range frags {
		if strings.Contains(importPath, f) {
			return true
		}
	}
	return false
}

// checkNames lists every check family, for -checks validation and docs.
var checkNames = []string{
	"locks", "goroutine", "errors", "sleep", "obs", "ctxcancel",
	"lockorder", "atomics", "release",
}

// runChecks applies every check family to one package of the module.
func runChecks(mod *module, pkg *pkgInfo) []Finding {
	var out []Finding
	for _, fi := range pkg.Files {
		out = append(out, checkLocks(pkg, fi)...)
		out = append(out, checkGoroutines(pkg, fi)...)
		out = append(out, checkErrors(pkg, fi)...)
		out = append(out, checkSleep(pkg, fi)...)
		out = append(out, checkObs(pkg, fi)...)
		out = append(out, checkCtxCancel(pkg, fi)...)
		out = append(out, checkRelease(pkg, fi)...)
	}
	out = append(out, checkLockOrder(mod, pkg)...)
	out = append(out, checkAtomics(pkg)...)
	return out
}

// fileFor returns the fileInfo containing pos (directive lookups for
// findings produced by package-level analyses).
func (p *pkgInfo) fileFor(pos token.Pos) *fileInfo {
	for _, fi := range p.Files {
		if fi.File.FileStart <= pos && pos < fi.File.FileEnd {
			return fi
		}
	}
	return nil
}

// allowedAtPkg reports whether a directive in whatever file contains pos
// exempts check there.
func (p *pkgInfo) allowedAtPkg(pos token.Pos, check string) bool {
	fi := p.fileFor(pos)
	return fi != nil && fi.allowedAt(p.Fset, pos, check)
}
