package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// checkObs verifies that every span started with obs.StartSpan is finished
// on every return path: a span whose Finish never runs is dropped from the
// trace and, worse, its children are silently re-rooted — the stage
// breakdown then under-reports exactly the code path that bailed early.
//
// Like checkLocks this is a forward walk over the statement tree tracking a
// must-finish set; branch states merge by intersection so only spans that
// are definitely still open get reported. A span that escapes the function
// (passed to a call, returned, reassigned, captured by a goroutine) is
// assumed finished elsewhere and dropped from tracking.
func checkObs(pkg *pkgInfo, fi *fileInfo) []Finding {
	var out []Finding
	sc := &spanChecker{pkg: pkg, fi: fi, out: &out}
	for _, decl := range fi.File.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		sc.runFunc(fd.Body)
		// Function literals run on their own schedule; analyze each body as
		// an independent function.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				sc.runFunc(lit.Body)
			}
			return true
		})
	}
	return out
}

type spanChecker struct {
	pkg *pkgInfo
	fi  *fileInfo
	out *[]Finding
}

// openSpan is one started, unfinished span on the current path.
type openSpan struct {
	pos      token.Pos
	viaDefer bool // Finish is scheduled by defer: open until return, but not leaked
}

type spanState map[string]openSpan

func cloneSpans(s spanState) spanState {
	c := make(spanState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersectSpans keeps spans open in both branch states; viaDefer survives
// only when both branches scheduled the Finish.
func intersectSpans(a, b spanState) spanState {
	out := make(spanState)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			va.viaDefer = va.viaDefer && vb.viaDefer
			out[k] = va
		}
	}
	return out
}

func (sc *spanChecker) runFunc(body *ast.BlockStmt) {
	open, terminated := sc.stmts(body.List, spanState{})
	if !terminated {
		for key, o := range open {
			if !o.viaDefer {
				sc.report(o.pos, "span %s is never finished on the fall-through path (missing %s.Finish(); prefer defer)", key, key)
			}
		}
	}
}

func (sc *spanChecker) report(pos token.Pos, format string, args ...any) {
	if sc.fi.allowedAt(sc.pkg.Fset, pos, "obs") {
		return
	}
	*sc.out = append(*sc.out, Finding{
		Pos:   sc.pkg.Fset.Position(pos),
		Check: "obs",
		Msg:   fmt.Sprintf(format, args...),
	})
}

func (sc *spanChecker) stmts(list []ast.Stmt, open spanState) (spanState, bool) {
	for _, s := range list {
		var terminated bool
		open, terminated = sc.stmt(s, open)
		if terminated {
			return open, true
		}
	}
	return open, false
}

func (sc *spanChecker) stmt(s ast.Stmt, open spanState) (spanState, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return open, true
			}
			if name := finishTarget(call); name != "" {
				delete(open, name)
				return open, false
			}
		}
		sc.scanEscapes(x.X, open)
		return open, false

	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			sc.scanEscapes(rhs, open)
		}
		if name := startSpanTarget(x); name != "" {
			// Rebinding the name orphans the previous span: nothing can
			// finish it anymore, so report it right here.
			if old, ok := open[name]; ok && !old.viaDefer {
				sc.report(old.pos, "span %s restarted before being finished", name)
			}
			open[name] = openSpan{pos: x.Pos()}
		}
		return open, false

	case *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt, *ast.EmptyStmt:
		return open, false

	case *ast.DeferStmt:
		sc.handleDefer(x, open)
		return open, false

	case *ast.GoStmt:
		// A goroutine capturing the span may finish it on its own schedule.
		escapeIdents(x.Call, open)
		return open, false

	case *ast.ReturnStmt:
		for _, r := range x.Results {
			escapeIdents(r, open)
		}
		for key, o := range open {
			if !o.viaDefer {
				sc.report(o.pos, "return path leaves span %s unfinished (missing %s.Finish(); prefer defer)", key, key)
			}
		}
		return open, true

	case *ast.BranchStmt:
		return open, true // leaves this path; loop merge handles the rest

	case *ast.BlockStmt:
		return sc.stmts(x.List, open)

	case *ast.LabeledStmt:
		return sc.stmt(x.Stmt, open)

	case *ast.IfStmt:
		if x.Init != nil {
			open, _ = sc.stmt(x.Init, open)
		}
		sc.scanEscapes(x.Cond, open)
		thenOpen, thenTerm := sc.stmts(x.Body.List, cloneSpans(open))
		elseOpen, elseTerm := cloneSpans(open), false
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			elseOpen, elseTerm = sc.stmts(e.List, elseOpen)
		case *ast.IfStmt:
			elseOpen, elseTerm = sc.stmt(e, elseOpen)
		}
		switch {
		case thenTerm && elseTerm:
			return open, true
		case thenTerm:
			return elseOpen, false
		case elseTerm:
			return thenOpen, false
		default:
			return intersectSpans(thenOpen, elseOpen), false
		}

	case *ast.ForStmt:
		if x.Init != nil {
			open, _ = sc.stmt(x.Init, open)
		}
		if x.Cond != nil {
			sc.scanEscapes(x.Cond, open)
		}
		bodyOpen, bodyTerm := sc.stmts(x.Body.List, cloneSpans(open))
		if bodyTerm {
			return open, false // loop may run zero times
		}
		return intersectSpans(open, bodyOpen), false

	case *ast.RangeStmt:
		sc.scanEscapes(x.X, open)
		bodyOpen, bodyTerm := sc.stmts(x.Body.List, cloneSpans(open))
		if bodyTerm {
			return open, false
		}
		return intersectSpans(open, bodyOpen), false

	case *ast.SwitchStmt:
		if x.Init != nil {
			open, _ = sc.stmt(x.Init, open)
		}
		if x.Tag != nil {
			sc.scanEscapes(x.Tag, open)
		}
		return sc.clauses(caseBodies(x.Body), hasDefaultCase(x.Body), open)

	case *ast.TypeSwitchStmt:
		return sc.clauses(caseBodies(x.Body), hasDefaultCase(x.Body), open)

	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		return sc.clauses(bodies, true, open)
	}
	return open, false
}

// clauses merges switch/select case-body states, mirroring lockChecker.
func (sc *spanChecker) clauses(bodies [][]ast.Stmt, exhaustive bool, open spanState) (spanState, bool) {
	var states []spanState
	allTerm := len(bodies) > 0
	for _, body := range bodies {
		st, term := sc.stmts(body, cloneSpans(open))
		if !term {
			states = append(states, st)
			allTerm = false
		}
	}
	if !exhaustive {
		states = append(states, open)
		allTerm = false
	}
	if allTerm {
		return open, true
	}
	if len(states) == 0 {
		return open, false
	}
	merged := states[0]
	for _, st := range states[1:] {
		merged = intersectSpans(merged, st)
	}
	return merged, false
}

// handleDefer processes `defer sp.Finish()` (and the wrapped
// `defer func() { sp.Finish() }()` form).
func (sc *spanChecker) handleDefer(d *ast.DeferStmt, open spanState) {
	schedule := func(name string) {
		if o, ok := open[name]; ok {
			o.viaDefer = true
			open[name] = o
		}
	}
	if name := finishTarget(d.Call); name != "" {
		schedule(name)
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if name := finishTarget(call); name != "" {
					schedule(name)
				}
			}
			return true
		})
		return
	}
	// Any other defer the span reaches is treated as an escape.
	escapeIdents(d.Call, open)
}

// startSpanTarget returns the span variable name bound by an
// `ctx, sp := obs.StartSpan(...)` assignment, or "".
func startSpanTarget(as *ast.AssignStmt) string {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return ""
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "obs" {
		return ""
	}
	id, ok := as.Lhs[1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return ""
	}
	return id.Name
}

// finishTarget returns the receiver name of a `sp.Finish()` call, or "".
func finishTarget(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Finish" || len(call.Args) != 0 {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	return id.Name
}

// spanMethods are *obs.Span methods whose receiver use is not an escape.
var spanMethods = map[string]bool{
	"Finish": true, "Annotate": true, "Annotatef": true,
	"Duration": true, "Children": true, "Attrs": true, "Name": true,
}

// scanEscapes drops tracked spans that flow somewhere the checker cannot
// follow: call arguments, composite literals, plain value uses. Method
// calls ON the span (sp.Annotate(...)) are fine.
func (sc *spanChecker) scanEscapes(e ast.Expr, open spanState) {
	if e == nil || len(open) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if _, ok := x.X.(*ast.Ident); ok && spanMethods[x.Sel.Name] {
				return false // sp.Method — receiver use, not an escape
			}
		case *ast.Ident:
			if _, ok := open[x.Name]; ok {
				delete(open, x.Name)
			}
		case *ast.FuncLit:
			escapeIdents(x, open)
			return false
		}
		return true
	})
}

// escapeIdents unconditionally drops every tracked span mentioned anywhere
// under n (returns, goroutines, captured closures).
func escapeIdents(n ast.Node, open spanState) {
	if n == nil || len(open) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			delete(open, id.Name)
		}
		return true
	})
}
