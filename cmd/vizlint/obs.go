package main

import (
	"fmt"
	"go/ast"
)

// checkObs verifies that every span started with obs.StartSpan is finished
// on every return path: a span whose Finish never runs is dropped from the
// trace and, worse, its children are silently re-rooted — the stage
// breakdown then under-reports exactly the code path that bailed early.
//
// The check is an instantiation of the shared must-release engine
// (dataflow.go) over the function CFG (cfg.go). A span that escapes the
// function (passed to a call, returned, reassigned, captured by a
// goroutine) is assumed finished elsewhere and dropped from tracking.
func checkObs(pkg *pkgInfo, fi *fileInfo) []Finding {
	return runReleaseCheck(pkg, fi, obsSpec)
}

// spanMethods are *obs.Span methods whose receiver use is not an escape.
var spanMethods = map[string]bool{
	"Finish": true, "Annotate": true, "Annotatef": true,
	"Duration": true, "Children": true, "Attrs": true, "Name": true,
}

var obsSpec = &resourceSpec{
	check:      "obs",
	acquire:    startSpanAcquire,
	release:    finishRelease,
	ownMethods: spanMethods,
	leakReturn: func(name string) string {
		return fmt.Sprintf("return path leaves span %s unfinished (missing %s.Finish(); prefer defer)", name, name)
	},
	leakExit: func(name string) string {
		return fmt.Sprintf("span %s is never finished on the fall-through path (missing %s.Finish(); prefer defer)", name, name)
	},
	reboundMsg: func(name string) string {
		return fmt.Sprintf("span %s restarted before being finished", name)
	},
}

// startSpanAcquire recognizes `ctx, sp := obs.StartSpan(...)`.
func startSpanAcquire(as *ast.AssignStmt) *acquired {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return nil
	}
	if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "obs" {
		return nil
	}
	id, ok := as.Lhs[1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return &acquired{name: id.Name}
}

// finishRelease recognizes `sp.Finish()`.
func finishRelease(call *ast.CallExpr, _ flowState) []string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Finish" || len(call.Args) != 0 {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return []string{id.Name}
}
