package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// errDiscardPkgs are the packages where a silently discarded
// Close/Flush/Write error can corrupt persisted or wire data.
var errDiscardPkgs = []string{"internal/tde/storage", "internal/kvstore"}

// errDiscardMethods are the method names whose error results must be
// consumed in those packages.
var errDiscardMethods = map[string]bool{
	"Close":       true,
	"Flush":       true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// checkErrors implements the error-discipline family:
//
//  1. In errDiscardPkgs, a statement-level call to a Close/Flush/Write
//     method discards its error: flagged. `defer x.Close()` and explicit
//     `_ = x.Close()` are visible decisions and pass.
//  2. Everywhere, fmt.Errorf whose arguments include an error variable
//     must wrap it with %w so callers can errors.Is/As through it.
func checkErrors(pkg *pkgInfo, fi *fileInfo) []Finding {
	var out []Finding
	discardScoped := pathHasAny(pkg.ImportPath, errDiscardPkgs...)
	ast.Inspect(fi.File, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if !discardScoped {
				return true
			}
			call, ok := x.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !errDiscardMethods[sel.Sel.Name] {
				return true
			}
			if fi.allowedAt(pkg.Fset, x.Pos(), "errors") {
				return true
			}
			out = append(out, Finding{
				Pos:   pkg.Fset.Position(x.Pos()),
				Check: "errors",
				Msg: "error returned by " + exprLabel(sel.X) + "." + sel.Sel.Name +
					"() is silently discarded (check it, or assign to _ to make the discard explicit)",
			})
		case *ast.CallExpr:
			if f := checkErrorfWrap(pkg, fi, x); f != nil {
				out = append(out, *f)
			}
		}
		return true
	})
	return out
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error variable but
// format it with something other than %w.
func checkErrorfWrap(pkg *pkgInfo, fi *fileInfo, call *ast.CallExpr) *Finding {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return nil
	}
	if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "fmt" {
		return nil
	}
	if len(call.Args) < 2 {
		return nil
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || strings.Contains(lit.Value, "%w") {
		return nil
	}
	for _, arg := range call.Args[1:] {
		if !isErrorValue(pkg, arg) {
			continue
		}
		if fi.allowedAt(pkg.Fset, call.Pos(), "errors") {
			return nil
		}
		return &Finding{
			Pos:   pkg.Fset.Position(call.Pos()),
			Check: "errors",
			Msg:   "fmt.Errorf formats error variable " + exprLabel(arg) + " without %w (callers cannot unwrap it)",
		}
	}
	return nil
}

// isErrorValue reports whether arg is an error variable: resolved to the
// error type where type information is available, with a conventional
// name-based fallback for bare identifiers when imports were stubbed out.
func isErrorValue(pkg *pkgInfo, arg ast.Expr) bool {
	if tv, ok := pkg.Info.Types[arg]; ok && tv.Type != nil {
		if isErrorType(tv.Type) {
			return true
		}
		// A resolved non-error type (string, int, ...) is definitely not an
		// error, regardless of its name.
		if tv.Type != types.Typ[types.Invalid] {
			return false
		}
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return false
	}
	return id.Name == "err" || strings.HasSuffix(id.Name, "Err") || strings.HasSuffix(id.Name, "err")
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exprLabel renders an expression for a message, falling back to a
// placeholder for complex shapes.
func exprLabel(e ast.Expr) string {
	if k := exprKey(e); k != "" {
		return k
	}
	return "value"
}
