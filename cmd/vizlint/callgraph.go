package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module: every package loaded together plus a
// module-wide call graph. The interprocedural checks (lockorder) propagate
// facts over the graph; per-package checks keep working on one pkgInfo at
// a time.
//
// Resolution is what stdlib-only typing can support: identifier calls bind
// to same-package functions, method calls resolve through go/types when
// the receiver's type is a package-local named type, and pkg.Func calls on
// module-local imports cross package boundaries. Method calls on types
// from other packages are invisible (their types are stubbed), which keeps
// the graph an under-approximation — propagation misses edges rather than
// inventing them.

// funcKey identifies a function module-wide: "importPath::Name" for plain
// functions, "importPath::Type.Name" for methods.
func funcKey(importPath, recvType, name string) string {
	if recvType != "" {
		return importPath + "::" + recvType + "." + name
	}
	return importPath + "::" + name
}

// funcInfo is one function declaration in the module.
type funcInfo struct {
	key      string
	pkg      *pkgInfo
	fi       *fileInfo
	decl     *ast.FuncDecl
	recvType string
}

// module is the whole analyzed tree.
type module struct {
	path   string
	fset   *token.FileSet
	pkgs   []*pkgInfo
	byPath map[string]*pkgInfo

	funcs   map[string]*funcInfo
	callees map[string][]string // funcKey -> sorted unique callee keys

	// lockFindings caches the module-wide lockorder analysis, bucketed by
	// package import path (see lockorder.go).
	lockFindings map[string][]Finding
}

// loadModule parses every directory into packages and builds the call
// graph. Directories without non-test Go files are skipped.
func loadModule(fset *token.FileSet, dirs []string, modPath string) (*module, error) {
	m := &module{path: modPath, fset: fset, byPath: make(map[string]*pkgInfo)}
	for _, dir := range dirs {
		pkg, err := loadPackage(fset, dir, modPath)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		m.pkgs = append(m.pkgs, pkg)
		m.byPath[pkg.ImportPath] = pkg
	}
	m.buildCallGraph()
	return m, nil
}

// moduleFor wraps already-loaded packages (fixture tests).
func moduleFor(fset *token.FileSet, modPath string, pkgs ...*pkgInfo) *module {
	m := &module{path: modPath, fset: fset, byPath: make(map[string]*pkgInfo)}
	for _, pkg := range pkgs {
		m.pkgs = append(m.pkgs, pkg)
		m.byPath[pkg.ImportPath] = pkg
	}
	m.buildCallGraph()
	return m
}

func (m *module) buildCallGraph() {
	m.funcs = make(map[string]*funcInfo)
	m.callees = make(map[string][]string)
	for _, pkg := range m.pkgs {
		for _, fi := range pkg.Files {
			for _, decl := range fi.File.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				_, recvType := receiverOf(fd)
				key := funcKey(pkg.ImportPath, recvType, fd.Name.Name)
				m.funcs[key] = &funcInfo{key: key, pkg: pkg, fi: fi, decl: fd, recvType: recvType}
			}
		}
	}
	for _, fn := range m.funcs {
		if fn.decl.Body == nil {
			continue
		}
		seen := make(map[string]bool)
		// Goroutine bodies run on their own schedule: their calls are not
		// the caller's synchronous callees.
		inspectSkippingGo(fn.decl.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if callee := m.resolveCallee(fn.pkg, fn.fi, call); callee != "" && !seen[callee] {
				seen[callee] = true
				m.callees[fn.key] = append(m.callees[fn.key], callee)
			}
		})
		sort.Strings(m.callees[fn.key])
	}
}

// inspectSkippingGo walks n, skipping go-statement subtrees.
func inspectSkippingGo(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.GoStmt); ok {
			return false
		}
		if x != nil {
			visit(x)
		}
		return true
	})
}

// resolveCallee maps a call expression to a funcKey, or "".
func (m *module) resolveCallee(pkg *pkgInfo, fi *fileInfo, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		key := funcKey(pkg.ImportPath, "", fun.Name)
		if _, ok := m.funcs[key]; ok {
			return key
		}
	case *ast.SelectorExpr:
		// pkg.Func on a module-local import.
		if id, ok := fun.X.(*ast.Ident); ok {
			if path, ok := fi.imports[id.Name]; ok {
				key := funcKey(path, "", fun.Sel.Name)
				if _, ok := m.funcs[key]; ok {
					return key
				}
				return ""
			}
		}
		// Method call: resolve the receiver's type.
		if tn := namedTypeOf(pkg, fun.X); tn != "" {
			key := funcKey(pkg.ImportPath, tn, fun.Sel.Name)
			if _, ok := m.funcs[key]; ok {
				return key
			}
		}
	}
	return ""
}

// namedTypeOf resolves an expression to the name of a package-local named
// type (dereferencing pointers), or "".
func namedTypeOf(pkg *pkgInfo, e ast.Expr) string {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		// Identifiers bound to receivers/locals sometimes only appear in
		// Uses/Defs.
		if id, isIdent := e.(*ast.Ident); isIdent {
			if obj := pkg.Info.Uses[id]; obj != nil {
				return namedTypeName(obj.Type())
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				return namedTypeName(obj.Type())
			}
		}
		return ""
	}
	return namedTypeName(tv.Type)
}

func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil {
		return ""
	}
	return named.Obj().Name()
}

// shortFuncName renders a funcKey for messages: "Type.Method" or "Func"
// with the package's last path segment prefixed when it differs from the
// reporting package.
func shortFuncName(key, fromImportPath string) string {
	path, name, ok := strings.Cut(key, "::")
	if !ok {
		return key
	}
	if path == fromImportPath {
		return name
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path + "." + name
}
