package main

import (
	"fmt"
	"go/ast"
)

// checkRelease instantiates the must-release engine (dataflow.go) for the
// pooled resources this codebase leaks in practice:
//
//   - connection.Pool: every Acquire must be paired with Release or
//     Discard on every path (or handed to someone who will);
//   - single-flight leader slots: a call registered in the calls map must
//     be deleted before the leader returns, or every later caller for
//     that key blocks on a done channel that never closes;
//   - breaker probe slots: allow() admitting a half-open probe must be
//     balanced by releaseProbe, RecordSuccess or RecordFailure — the
//     PR 4 probe-leak class, promoted from a one-off fix to a check;
//   - scheduler queue entries: a waiter enqueued under the fair-queuing
//     rings (enqueueLocked) must be dequeued by the grant path (waiting
//     on its ready channel counts as the hand-off) or removed again
//     (removeLocked) — a forgotten entry eats a WRR turn forever and a
//     slot granted to it vanishes.
//
// It also flags discarding the probe result of allow() outright
// (`ok, _ := b.allow()`): a caller that cannot see it held a probe slot
// cannot release it.
func checkRelease(pkg *pkgInfo, fi *fileInfo) []Finding {
	var out []Finding
	out = append(out, runReleaseCheck(pkg, fi, poolSpec)...)
	out = append(out, runReleaseCheck(pkg, fi, flightSpec)...)
	out = append(out, runReleaseCheck(pkg, fi, probeSpec)...)
	out = append(out, runReleaseCheck(pkg, fi, schedSpec)...)
	out = append(out, checkProbeDiscard(pkg, fi)...)
	return out
}

// --- pooled connections -------------------------------------------------

var poolSpec = &resourceSpec{
	check:   "release",
	acquire: poolAcquire,
	release: poolRelease,
	// Connections are used by calling methods on them; none of those is an
	// escape.
	anyMethodOk: true,
	leakReturn: func(name string) string {
		return fmt.Sprintf("return path leaks pooled connection %s (missing Release/Discard)", name)
	},
	leakExit: func(name string) string {
		return fmt.Sprintf("pooled connection %s is never returned on the fall-through path (missing Release/Discard)", name)
	},
	reboundMsg: func(name string) string {
		return fmt.Sprintf("connection %s re-acquired before being released", name)
	},
}

// poolAcquire recognizes `c, err := x.Acquire(ctx)`. The paired error name
// exempts the acquisition's own error-return path.
func poolAcquire(as *ast.AssignStmt) *acquired {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Acquire" {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	acq := &acquired{name: id.Name}
	if errID, ok := as.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
		acq.errName = errID.Name
	}
	return acq
}

// poolRelease recognizes `x.Release(c)` and `x.Discard(c)` for a tracked c.
func poolRelease(call *ast.CallExpr, st flowState) []string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Release" && sel.Sel.Name != "Discard") || len(call.Args) != 1 {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	if _, tracked := st[id.Name]; !tracked {
		return nil
	}
	return []string{id.Name}
}

// --- single-flight leader slots -----------------------------------------

var flightSpec = &resourceSpec{
	check:   "release",
	acquire: flightAcquire,
	release: flightRelease,
	leakReturn: func(name string) string {
		return fmt.Sprintf("return path leaves single-flight slot %s registered (missing delete; followers block forever)", name)
	},
	leakExit: func(name string) string {
		return fmt.Sprintf("single-flight slot %s is never deleted on the fall-through path (followers block forever)", name)
	},
}

// flightAcquire recognizes `x.calls[key] = c`: registering a leader in a
// single-flight map. The tracked token is the map expression itself
// ("f.calls"), so the matching release is `delete(f.calls, key)`.
func flightAcquire(as *ast.AssignStmt) *acquired {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	idx, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return nil
	}
	sel, ok := idx.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "calls" {
		return nil
	}
	key := exprKey(sel)
	if key == "" {
		return nil
	}
	return &acquired{name: key}
}

// flightRelease recognizes `delete(x.calls, key)` on a tracked map.
func flightRelease(call *ast.CallExpr, st flowState) []string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "delete" || len(call.Args) != 2 {
		return nil
	}
	sel, ok := call.Args[0].(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	key := exprKey(sel)
	if key == "" {
		return nil
	}
	if _, tracked := st[key]; !tracked {
		return nil
	}
	return []string{key}
}

// --- breaker probe slots ------------------------------------------------

var probeSpec = &resourceSpec{
	check:   "release",
	acquire: probeAcquire,
	release: probeRelease,
	leakReturn: func(name string) string {
		return fmt.Sprintf("return path leaks half-open probe slot %s (missing releaseProbe/RecordSuccess/RecordFailure)", name)
	},
	leakExit: func(name string) string {
		return fmt.Sprintf("half-open probe slot %s is never released on the fall-through path (missing releaseProbe/RecordSuccess/RecordFailure)", name)
	},
}

// probeAcquire recognizes `ok, probe := x.allow()`. The probe token is
// boolean: branches where it (or the paired ok) is provably false did not
// admit a probe slot, so the token dies on those edges.
func probeAcquire(as *ast.AssignStmt) *acquired {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "allow" || len(call.Args) != 0 {
		return nil
	}
	probeID, ok := as.Lhs[1].(*ast.Ident)
	if !ok || probeID.Name == "_" {
		return nil // discarded probe result is checkProbeDiscard's finding
	}
	acq := &acquired{name: probeID.Name, guardSelf: true}
	if okID, ok := as.Lhs[0].(*ast.Ident); ok && okID.Name != "_" {
		acq.guard = okID.Name
	}
	return acq
}

// probeRelease recognizes the breaker outcome calls. Each one settles the
// probe slot regardless of which token held it, so they release every
// live token (release-all semantics).
func probeRelease(call *ast.CallExpr, st flowState) []string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	switch sel.Sel.Name {
	case "releaseProbe", "RecordSuccess", "RecordFailure":
	default:
		return nil
	}
	var names []string
	for name := range st {
		names = append(names, name)
	}
	return names
}

// --- scheduler queue entries ---------------------------------------------

var schedSpec = &resourceSpec{
	check:   "release",
	acquire: schedAcquire,
	release: schedRelease,
	leakReturn: func(name string) string {
		return fmt.Sprintf("return path leaves waiter %s enqueued (missing removeLocked; the ring keeps a dead entry and a granted slot can vanish)", name)
	},
	leakExit: func(name string) string {
		return fmt.Sprintf("waiter %s is never dequeued or removed on the fall-through path (the ring keeps a dead entry)", name)
	},
}

// schedAcquire recognizes `w := s.enqueueLocked(...)`. Waiting on the
// waiter afterwards (`<-w.ready`) mentions the token and counts as the
// hand-off to the grant path, so only paths that abandon the waiter
// without ever touching it again are findings.
func schedAcquire(as *ast.AssignStmt) *acquired {
	if len(as.Rhs) != 1 || len(as.Lhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "enqueueLocked" {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return &acquired{name: id.Name}
}

// schedRelease recognizes `s.removeLocked(..., w)` for a tracked w.
func schedRelease(call *ast.CallExpr, st flowState) []string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "removeLocked" {
		return nil
	}
	var names []string
	for _, a := range call.Args {
		if id, ok := a.(*ast.Ident); ok {
			if _, tracked := st[id.Name]; tracked {
				names = append(names, id.Name)
			}
		}
	}
	return names
}

// checkProbeDiscard flags `ok, _ := x.allow()`: the probe result is the
// only evidence a half-open slot was admitted, so discarding it makes the
// slot unreleasable from this call site.
func checkProbeDiscard(pkg *pkgInfo, fi *fileInfo) []Finding {
	var out []Finding
	ast.Inspect(fi.File, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "allow" || len(call.Args) != 0 {
			return true
		}
		id, ok := as.Lhs[1].(*ast.Ident)
		if !ok || id.Name != "_" {
			return true
		}
		if fi.allowedAt(pkg.Fset, as.Pos(), "release") {
			return true
		}
		out = append(out, Finding{
			Pos:   pkg.Fset.Position(as.Pos()),
			Check: "release",
			Msg:   "probe result of allow() discarded; a half-open probe slot cannot be released by this caller",
		})
		return true
	})
	return out
}
