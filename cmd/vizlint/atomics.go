package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// checkAtomics flags struct fields that are accessed both through
// sync/atomic (atomic.AddInt64(&s.n, 1), atomic.LoadInt64(&s.n), ...) and
// through plain loads or stores. Mixing the two silently downgrades the
// atomic side: the plain access races with every atomic update, and the
// race detector only catches it when both sides actually collide under
// test. This is the PR 1 stats-counter race generalized into a check.
//
// The pass is package-local two-phase: first collect every field reached
// via an atomic call's &-argument (identified by its types.Object, so
// aliasing through different receiver names is handled), then flag every
// plain selector access to one of those fields. Fields of types from
// other packages are invisible to the stub importer and are skipped —
// the check under-approximates rather than guessing.
func checkAtomics(pkg *pkgInfo) []Finding {
	atomicFields := make(map[types.Object]bool)
	atomicArgs := make(map[*ast.SelectorExpr]bool)

	for _, fi := range pkg.Files {
		ast.Inspect(fi.File, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObjOf(pkg, sel); obj != nil {
					atomicFields[obj] = true
					atomicArgs[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	var out []Finding
	for _, fi := range pkg.Files {
		ast.Inspect(fi.File, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] {
				return true
			}
			obj := fieldObjOf(pkg, sel)
			if obj == nil || !atomicFields[obj] {
				return true
			}
			if fi.allowedAt(pkg.Fset, sel.Pos(), "atomics") {
				return true
			}
			out = append(out, Finding{
				Pos:   pkg.Fset.Position(sel.Pos()),
				Check: "atomics",
				Msg: fmt.Sprintf("field %s is updated with sync/atomic elsewhere; this plain access races with those updates (use atomic.Load/Store here too)",
					fieldLabel(obj)),
			})
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return out
}

// atomicOps are the sync/atomic function-name prefixes that take an
// address argument.
var atomicOps = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

func isAtomicCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "atomic" {
		return false
	}
	for _, op := range atomicOps {
		if strings.HasPrefix(sel.Sel.Name, op) {
			return true
		}
	}
	return false
}

// fieldObjOf resolves a selector to the struct field it names, or nil
// when it is not a field access (method, qualified identifier, or a type
// the stub importer could not resolve).
func fieldObjOf(pkg *pkgInfo, sel *ast.SelectorExpr) types.Object {
	if s, ok := pkg.Info.Selections[sel]; ok {
		if s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return nil
	}
	if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
		return obj
	}
	return nil
}

// fieldLabel renders a field as Type.Field when the owning struct is a
// named type, else just the field name.
func fieldLabel(obj types.Object) string {
	// Walk the package scope for a named struct type declaring this field.
	if pkg := obj.Pkg(); pkg != nil {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == obj {
					return tn.Name() + "." + obj.Name()
				}
			}
		}
	}
	return obj.Name()
}
