package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vizlint [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs project-specific static checks over the given package patterns\n")
		fmt.Fprintf(os.Stderr, "(default ./...). Exits 1 when findings are reported.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	dirs, err := resolveDirs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vizlint:", err)
		os.Exit(2)
	}
	modPath := modulePath(".")
	fset := token.NewFileSet()
	var findings []Finding
	for _, dir := range dirs {
		pkg, err := loadPackage(fset, dir, modPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vizlint:", err)
			os.Exit(2)
		}
		if pkg == nil {
			continue
		}
		findings = append(findings, runChecks(pkg)...)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vizlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// resolveDirs expands package patterns into directories. A trailing /...
// walks the tree; anything else names a single directory.
func resolveDirs(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, arg := range args {
		if !strings.HasSuffix(arg, "...") {
			add(arg)
			continue
		}
		root := filepath.Clean(strings.TrimSuffix(arg, "..."))
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "node_modules") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// modulePath reads the module path from go.mod, walking up from dir.
func modulePath(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		f, err := os.Open(filepath.Join(abs, "go.mod"))
		if err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest)
				}
			}
			return ""
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return ""
		}
		abs = parent
	}
}
