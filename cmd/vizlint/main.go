package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	checksFlag := flag.String("checks", "", "comma-separated check families to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vizlint [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs project-specific static checks over the given package patterns\n")
		fmt.Fprintf(os.Stderr, "(default ./...). Exits 1 when findings are reported.\n\n")
		fmt.Fprintf(os.Stderr, "Check families: %s\n\n", strings.Join(checkNames, ", "))
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	enabled, err := parseChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vizlint:", err)
		os.Exit(2)
	}

	dirs, err := resolveDirs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vizlint:", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	mod, err := loadModule(fset, dirs, modulePath("."))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vizlint:", err)
		os.Exit(2)
	}
	var findings []Finding
	for _, pkg := range mod.pkgs {
		findings = append(findings, runChecks(mod, pkg)...)
	}
	if enabled != nil {
		kept := findings[:0]
		for _, f := range findings {
			if enabled[f.Check] {
				kept = append(kept, f)
			}
		}
		findings = kept
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		if *jsonOut {
			printJSON(f)
		} else {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vizlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// parseChecks validates the -checks flag against the known families.
// Empty means all checks (nil map).
func parseChecks(s string) (map[string]bool, error) {
	if s == "" {
		return nil, nil
	}
	known := make(map[string]bool, len(checkNames))
	for _, name := range checkNames {
		known[name] = true
	}
	enabled := make(map[string]bool)
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown check %q (families: %s)", name, strings.Join(checkNames, ", "))
		}
		enabled[name] = true
	}
	if len(enabled) == 0 {
		return nil, fmt.Errorf("-checks: no check names given")
	}
	return enabled, nil
}

// printJSON emits one finding as a single-line JSON object.
func printJSON(f Finding) {
	obj := struct {
		Path  string `json:"path"`
		Line  int    `json:"line"`
		Col   int    `json:"col"`
		Check string `json:"check"`
		Msg   string `json:"msg"`
	}{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg}
	b, err := json.Marshal(obj)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vizlint:", err)
		os.Exit(2)
	}
	fmt.Println(string(b))
}

// resolveDirs expands package patterns into directories. A trailing /...
// walks the tree; anything else names a single directory.
func resolveDirs(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, arg := range args {
		if !strings.HasSuffix(arg, "...") {
			add(arg)
			continue
		}
		root := filepath.Clean(strings.TrimSuffix(arg, "..."))
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "node_modules") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// modulePath reads the module path from go.mod, walking up from dir.
func modulePath(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		f, err := os.Open(filepath.Join(abs, "go.mod"))
		if err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest)
				}
			}
			return ""
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return ""
		}
		abs = parent
	}
}
