package main

import (
	"go/ast"
)

// checkSleep flags time.Sleep in non-test code: sleeping is never a
// synchronization primitive. Simulation code (the remote server's latency
// model, the executor's simulated block reads) opts out per call site with
// a `//vizlint:allow sleep` directive that documents why the sleep is
// modeling time rather than hiding a race.
func checkSleep(pkg *pkgInfo, fi *fileInfo) []Finding {
	var out []Finding
	ast.Inspect(fi.File, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sleep" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "time" {
			return true
		}
		if fi.allowedAt(pkg.Fset, call.Pos(), "sleep") {
			return true
		}
		out = append(out, Finding{
			Pos:   pkg.Fset.Position(call.Pos()),
			Check: "sleep",
			Msg:   "time.Sleep used outside tests (use channels/sync for coordination, or annotate simulation code with //vizlint:allow sleep)",
		})
		return true
	})
	return out
}
