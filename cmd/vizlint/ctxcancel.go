package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// checkCtxCancel verifies that the cancel function returned by
// context.WithTimeout / context.WithDeadline is called on every return
// path: a dropped cancel leaks the context's timer and its done channel
// until the deadline fires, and go vet's lostcancel only catches the
// never-called case, not the branch that bails out early.
//
// The analysis mirrors checkObs: a forward walk over the statement tree
// tracking a must-cancel set; branch states merge by intersection so only
// cancels that are definitely still pending get reported. A cancel func
// that escapes the function (passed to a call, returned, captured by a
// goroutine, stored in a struct) is assumed called elsewhere and dropped
// from tracking.
func checkCtxCancel(pkg *pkgInfo, fi *fileInfo) []Finding {
	var out []Finding
	cc := &cancelChecker{pkg: pkg, fi: fi, out: &out}
	for _, decl := range fi.File.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		cc.runFunc(fd.Body)
		// Function literals run on their own schedule; analyze each body
		// as an independent function.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				cc.runFunc(lit.Body)
			}
			return true
		})
	}
	return out
}

type cancelChecker struct {
	pkg *pkgInfo
	fi  *fileInfo
	out *[]Finding
}

// openCancel is one pending, uncalled cancel func on the current path.
type openCancel struct {
	pos      token.Pos
	viaDefer bool // the call is scheduled by defer: pending until return, but not leaked
}

type cancelState map[string]openCancel

func cloneCancels(s cancelState) cancelState {
	c := make(cancelState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersectCancels keeps cancels pending in both branch states; viaDefer
// survives only when both branches scheduled the call.
func intersectCancels(a, b cancelState) cancelState {
	out := make(cancelState)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			va.viaDefer = va.viaDefer && vb.viaDefer
			out[k] = va
		}
	}
	return out
}

func (cc *cancelChecker) runFunc(body *ast.BlockStmt) {
	open, terminated := cc.stmts(body.List, cancelState{})
	if !terminated {
		for key, o := range open {
			if !o.viaDefer {
				cc.report(o.pos, "context cancel func %s is never called on the fall-through path (missing %s(); prefer defer)", key, key)
			}
		}
	}
}

func (cc *cancelChecker) report(pos token.Pos, format string, args ...any) {
	if cc.fi.allowedAt(cc.pkg.Fset, pos, "ctxcancel") {
		return
	}
	*cc.out = append(*cc.out, Finding{
		Pos:   cc.pkg.Fset.Position(pos),
		Check: "ctxcancel",
		Msg:   fmt.Sprintf(format, args...),
	})
}

func (cc *cancelChecker) stmts(list []ast.Stmt, open cancelState) (cancelState, bool) {
	for _, s := range list {
		var terminated bool
		open, terminated = cc.stmt(s, open)
		if terminated {
			return open, true
		}
	}
	return open, false
}

func (cc *cancelChecker) stmt(s ast.Stmt, open cancelState) (cancelState, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return open, true
			}
			if name := cancelCallTarget(call); name != "" {
				if _, tracked := open[name]; tracked {
					delete(open, name)
					return open, false
				}
			}
		}
		cc.scanCancelEscapes(x.X, open)
		return open, false

	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			cc.scanCancelEscapes(rhs, open)
		}
		if name := withCancelTarget(x); name != "" {
			// Rebinding the name orphans the previous cancel: nothing can
			// call it anymore, so report it right here.
			if old, ok := open[name]; ok && !old.viaDefer {
				cc.report(old.pos, "cancel func %s rebound before being called", name)
			}
			open[name] = openCancel{pos: x.Pos()}
		}
		return open, false

	case *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt, *ast.EmptyStmt:
		return open, false

	case *ast.DeferStmt:
		cc.handleDefer(x, open)
		return open, false

	case *ast.GoStmt:
		// A goroutine capturing the cancel may call it on its own schedule.
		dropMentioned(x.Call, open)
		return open, false

	case *ast.ReturnStmt:
		for _, r := range x.Results {
			dropMentioned(r, open)
		}
		for key, o := range open {
			if !o.viaDefer {
				cc.report(o.pos, "return path leaves context cancel func %s uncalled (missing %s(); prefer defer)", key, key)
			}
		}
		return open, true

	case *ast.BranchStmt:
		return open, true // leaves this path; loop merge handles the rest

	case *ast.BlockStmt:
		return cc.stmts(x.List, open)

	case *ast.LabeledStmt:
		return cc.stmt(x.Stmt, open)

	case *ast.IfStmt:
		if x.Init != nil {
			open, _ = cc.stmt(x.Init, open)
		}
		cc.scanCancelEscapes(x.Cond, open)
		thenOpen, thenTerm := cc.stmts(x.Body.List, cloneCancels(open))
		elseOpen, elseTerm := cloneCancels(open), false
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			elseOpen, elseTerm = cc.stmts(e.List, elseOpen)
		case *ast.IfStmt:
			elseOpen, elseTerm = cc.stmt(e, elseOpen)
		}
		switch {
		case thenTerm && elseTerm:
			return open, true
		case thenTerm:
			return elseOpen, false
		case elseTerm:
			return thenOpen, false
		default:
			return intersectCancels(thenOpen, elseOpen), false
		}

	case *ast.ForStmt:
		if x.Init != nil {
			open, _ = cc.stmt(x.Init, open)
		}
		if x.Cond != nil {
			cc.scanCancelEscapes(x.Cond, open)
		}
		bodyOpen, bodyTerm := cc.stmts(x.Body.List, cloneCancels(open))
		if bodyTerm {
			return open, false // loop may run zero times
		}
		return intersectCancels(open, bodyOpen), false

	case *ast.RangeStmt:
		cc.scanCancelEscapes(x.X, open)
		bodyOpen, bodyTerm := cc.stmts(x.Body.List, cloneCancels(open))
		if bodyTerm {
			return open, false
		}
		return intersectCancels(open, bodyOpen), false

	case *ast.SwitchStmt:
		if x.Init != nil {
			open, _ = cc.stmt(x.Init, open)
		}
		if x.Tag != nil {
			cc.scanCancelEscapes(x.Tag, open)
		}
		return cc.clauses(caseBodies(x.Body), hasDefaultCase(x.Body), open)

	case *ast.TypeSwitchStmt:
		return cc.clauses(caseBodies(x.Body), hasDefaultCase(x.Body), open)

	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range x.Body.List {
			if clause, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, clause.Body)
			}
		}
		return cc.clauses(bodies, true, open)
	}
	return open, false
}

// clauses merges switch/select case-body states, mirroring spanChecker.
func (cc *cancelChecker) clauses(bodies [][]ast.Stmt, exhaustive bool, open cancelState) (cancelState, bool) {
	var states []cancelState
	allTerm := len(bodies) > 0
	for _, body := range bodies {
		st, term := cc.stmts(body, cloneCancels(open))
		if !term {
			states = append(states, st)
			allTerm = false
		}
	}
	if !exhaustive {
		states = append(states, open)
		allTerm = false
	}
	if allTerm {
		return open, true
	}
	if len(states) == 0 {
		return open, false
	}
	merged := states[0]
	for _, st := range states[1:] {
		merged = intersectCancels(merged, st)
	}
	return merged, false
}

// handleDefer processes `defer cancel()` (and the wrapped
// `defer func() { cancel() }()` form).
func (cc *cancelChecker) handleDefer(d *ast.DeferStmt, open cancelState) {
	schedule := func(name string) {
		if o, ok := open[name]; ok {
			o.viaDefer = true
			open[name] = o
		}
	}
	if name := cancelCallTarget(d.Call); name != "" {
		schedule(name)
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if name := cancelCallTarget(call); name != "" {
					schedule(name)
				}
			}
			return true
		})
		return
	}
	// Any other defer the cancel reaches is treated as an escape.
	dropMentioned(d.Call, open)
}

// withCancelTarget returns the cancel variable name bound by a
// `ctx, cancel := context.WithTimeout(...)` (or WithDeadline) assignment,
// covering both := and = forms, or "".
func withCancelTarget(as *ast.AssignStmt) string {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return ""
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "WithTimeout" && sel.Sel.Name != "WithDeadline") {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "context" {
		return ""
	}
	id, ok := as.Lhs[1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return ""
	}
	return id.Name
}

// cancelCallTarget returns the name of a bare `cancel()` call, or "".
func cancelCallTarget(call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) != 0 {
		return ""
	}
	return id.Name
}

// scanCancelEscapes drops tracked cancels that flow somewhere the checker
// cannot follow: call arguments, composite literals, plain value uses. A
// direct call `cancel()` inside the expression counts as the call.
func (cc *cancelChecker) scanCancelEscapes(e ast.Expr, open cancelState) {
	if e == nil || len(open) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name := cancelCallTarget(x); name != "" {
				if _, ok := open[name]; ok {
					delete(open, name)
					return false
				}
			}
		case *ast.Ident:
			delete(open, x.Name)
		case *ast.FuncLit:
			dropMentioned(x, open)
			return false
		}
		return true
	})
}

// dropMentioned unconditionally drops every tracked cancel mentioned
// anywhere under n (returns, goroutines, captured closures).
func dropMentioned(n ast.Node, open cancelState) {
	if n == nil || len(open) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			delete(open, id.Name)
		}
		return true
	})
}
