package main

import (
	"fmt"
	"go/ast"
)

// checkCtxCancel verifies that the cancel function returned by
// context.WithTimeout / context.WithDeadline is called on every return
// path: a dropped cancel leaks the context's timer and its done channel
// until the deadline fires, and go vet's lostcancel only catches the
// never-called case, not the branch that bails out early.
//
// The check is an instantiation of the shared must-release engine
// (dataflow.go) over the function CFG (cfg.go). A cancel func that escapes
// the function (passed to a call, returned, captured by a goroutine,
// stored in a struct) is assumed called elsewhere and dropped from
// tracking.
func checkCtxCancel(pkg *pkgInfo, fi *fileInfo) []Finding {
	return runReleaseCheck(pkg, fi, ctxCancelSpec)
}

var ctxCancelSpec = &resourceSpec{
	check:   "ctxcancel",
	acquire: withCancelAcquire,
	release: cancelCallRelease,
	leakReturn: func(name string) string {
		return fmt.Sprintf("return path leaves context cancel func %s uncalled (missing %s(); prefer defer)", name, name)
	},
	leakExit: func(name string) string {
		return fmt.Sprintf("context cancel func %s is never called on the fall-through path (missing %s(); prefer defer)", name, name)
	},
	reboundMsg: func(name string) string {
		return fmt.Sprintf("cancel func %s rebound before being called", name)
	},
}

// withCancelAcquire recognizes `ctx, cancel := context.WithTimeout(...)`
// (or WithDeadline), covering both := and = forms.
func withCancelAcquire(as *ast.AssignStmt) *acquired {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "WithTimeout" && sel.Sel.Name != "WithDeadline") {
		return nil
	}
	if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "context" {
		return nil
	}
	id, ok := as.Lhs[1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return &acquired{name: id.Name}
}

// cancelCallRelease recognizes a bare `cancel()` call on a tracked name.
func cancelCallRelease(call *ast.CallExpr, st flowState) []string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	if _, tracked := st[id.Name]; !tracked {
		return nil
	}
	return []string{id.Name}
}
