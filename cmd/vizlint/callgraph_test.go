package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"slices"
	"testing"
)

// makeTestPkg builds a pkgInfo from source, the way loadPackage would.
func makeTestPkg(t *testing.T, fset *token.FileSet, importPath, src string) *pkgInfo {
	t.Helper()
	f, err := parser.ParseFile(fset, importPath+"/src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", importPath, err)
	}
	fi := &fileInfo{
		Path:    importPath + "/src.go",
		File:    f,
		allow:   buildAllow(fset, f),
		imports: moduleImports(f, "vizq"),
	}
	pkg := &pkgInfo{ImportPath: importPath, Fset: fset, Files: []*fileInfo{fi}}
	pkg.typeCheck([]*ast.File{f})
	pkg.buildIndexes()
	return pkg
}

func TestCallGraphConstruction(t *testing.T) {
	fset := token.NewFileSet()
	util := makeTestPkg(t, fset, "vizq/internal/util", `
package util

func Helper() {}

func unexported() {}
`)
	app := makeTestPkg(t, fset, "vizq/internal/app", `
package app

import (
	"fmt"

	"vizq/internal/util"
)

type server struct{ n int }

func (s *server) run() {
	s.step()
	work()
	util.Helper()
	fmt.Println(s.n) // non-module import: no edge
}

func (s *server) step() {}

func work() {
	go spawned() // goroutine calls are not synchronous callees
}

func spawned() {}
`)
	mod := moduleFor(fset, "vizq", util, app)

	tests := []struct {
		name   string
		caller string
		want   []string
	}{
		{
			name:   "ident, method and cross-package calls resolve",
			caller: "vizq/internal/app::server.run",
			want: []string{
				"vizq/internal/app::server.step",
				"vizq/internal/app::work",
				"vizq/internal/util::Helper",
			},
		},
		{
			name:   "goroutine bodies are excluded",
			caller: "vizq/internal/app::work",
			want:   nil,
		},
		{
			name:   "leaf function has no callees",
			caller: "vizq/internal/util::Helper",
			want:   nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, ok := mod.funcs[tt.caller]; !ok {
				t.Fatalf("function %s not indexed", tt.caller)
			}
			got := mod.callees[tt.caller]
			if !slices.Equal(got, tt.want) {
				t.Errorf("callees(%s) = %v, want %v", tt.caller, got, tt.want)
			}
		})
	}
}

func TestCallGraphFuncKeyAndShortName(t *testing.T) {
	if got := funcKey("vizq/internal/app", "server", "run"); got != "vizq/internal/app::server.run" {
		t.Errorf("funcKey method = %q", got)
	}
	if got := funcKey("vizq/internal/app", "", "work"); got != "vizq/internal/app::work" {
		t.Errorf("funcKey func = %q", got)
	}
	if got := shortFuncName("vizq/internal/app::server.run", "vizq/internal/app"); got != "server.run" {
		t.Errorf("same-package short name = %q", got)
	}
	if got := shortFuncName("vizq/internal/util::Helper", "vizq/internal/app"); got != "util.Helper" {
		t.Errorf("cross-package short name = %q", got)
	}
}

// TestCallGraphMethodResolutionByType checks that method calls resolve
// through the receiver's named type, not the variable name.
func TestCallGraphMethodResolutionByType(t *testing.T) {
	fset := token.NewFileSet()
	pkg := makeTestPkg(t, fset, "vizq/internal/m", `
package m

type widget struct{}

func (w *widget) spin() {}

func use() {
	var anyName widget
	anyName.spin()
}
`)
	mod := moduleFor(fset, "vizq", pkg)
	got := mod.callees["vizq/internal/m::use"]
	want := []string{"vizq/internal/m::widget.spin"}
	if !slices.Equal(got, want) {
		t.Errorf("callees(use) = %v, want %v", got, want)
	}
}
