package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// checkLocks verifies that every mutex acquired in a function is released
// on every return path, and that no path locks the same mutex twice —
// directly or by calling a same-receiver method that locks it.
//
// The analysis is a forward walk over the statement tree tracking a
// must-hold set. Branch states merge by intersection, so only locks that
// are definitely held get reported: the checker favors missed findings
// over false positives.
func checkLocks(pkg *pkgInfo, fi *fileInfo) []Finding {
	var out []Finding
	lc := &lockChecker{pkg: pkg, fi: fi, out: &out}
	for _, decl := range fi.File.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		recvName, recvType := receiverOf(fd)
		lc.runFunc(fd.Body, recvName, recvType)
		// Function literals run on their own schedule (go, defer, callbacks),
		// so each body is analyzed as an independent function that inherits
		// the receiver bindings it captures.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lc.runFunc(lit.Body, recvName, recvType)
			}
			return true
		})
	}
	return out
}

type lockChecker struct {
	pkg *pkgInfo
	fi  *fileInfo
	out *[]Finding

	recvName, recvType string
}

// heldLock is one acquired mutex on the current path.
type heldLock struct {
	mode     byte // 'L' write lock, 'R' read lock
	pos      token.Pos
	viaDefer bool // release is scheduled by defer: held until return, but not leaked
}

type lockState map[string]heldLock

func cloneState(s lockState) lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersect keeps locks held in both branch states. viaDefer survives only
// when both branches scheduled the release: if one path lacks the defer,
// the leak is real on that path.
func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k, va := range a {
		if vb, ok := b[k]; ok && va.mode == vb.mode {
			va.viaDefer = va.viaDefer && vb.viaDefer
			out[k] = va
		}
	}
	return out
}

func (lc *lockChecker) runFunc(body *ast.BlockStmt, recvName, recvType string) {
	lc.recvName, lc.recvType = recvName, recvType
	held, terminated := lc.stmts(body.List, lockState{})
	if !terminated {
		for key, h := range held {
			if !h.viaDefer {
				lc.report(h.pos, "function exits with %s still locked (no Unlock on the fall-through path)", key)
			}
		}
	}
}

func (lc *lockChecker) report(pos token.Pos, format string, args ...any) {
	if lc.fi.allowedAt(lc.pkg.Fset, pos, "locks") {
		return
	}
	*lc.out = append(*lc.out, Finding{
		Pos:   lc.pkg.Fset.Position(pos),
		Check: "locks",
		Msg:   fmt.Sprintf(format, args...),
	})
}

// stmts walks a statement list with the given entry state. It returns the
// exit state and whether every path through the list terminated (return,
// branch, panic).
func (lc *lockChecker) stmts(list []ast.Stmt, held lockState) (lockState, bool) {
	for _, s := range list {
		var terminated bool
		held, terminated = lc.stmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (lc *lockChecker) stmt(s ast.Stmt, held lockState) (lockState, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if term := lc.exprStmtCall(x.X, held); term {
			return held, true
		}
		lc.scanCallChain(x.X, held)
		return held, false

	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			lc.scanCallChain(rhs, held)
		}
		return held, false

	case *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt, *ast.EmptyStmt:
		return held, false

	case *ast.DeferStmt:
		lc.handleDefer(x, held)
		return held, false

	case *ast.GoStmt:
		return held, false // goroutine bodies are analyzed separately

	case *ast.ReturnStmt:
		for _, r := range x.Results {
			lc.scanCallChain(r, held)
		}
		for key, h := range held {
			if !h.viaDefer {
				lc.report(h.pos, "return path leaves %s locked (missing %s.Unlock(); prefer defer)", key, key)
			}
		}
		return held, true

	case *ast.BranchStmt:
		return held, true // leaves this path; loop merge handles the rest

	case *ast.BlockStmt:
		return lc.stmts(x.List, held)

	case *ast.LabeledStmt:
		return lc.stmt(x.Stmt, held)

	case *ast.IfStmt:
		if x.Init != nil {
			held, _ = lc.stmt(x.Init, held)
		}
		lc.scanCallChain(x.Cond, held)
		thenHeld, thenTerm := lc.stmts(x.Body.List, cloneState(held))
		elseHeld, elseTerm := cloneState(held), false
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			elseHeld, elseTerm = lc.stmts(e.List, elseHeld)
		case *ast.IfStmt:
			elseHeld, elseTerm = lc.stmt(e, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersect(thenHeld, elseHeld), false
		}

	case *ast.ForStmt:
		if x.Init != nil {
			held, _ = lc.stmt(x.Init, held)
		}
		if x.Cond != nil {
			lc.scanCallChain(x.Cond, held)
		}
		bodyHeld, bodyTerm := lc.stmts(x.Body.List, cloneState(held))
		if bodyTerm {
			return held, false // loop may run zero times
		}
		return intersect(held, bodyHeld), false

	case *ast.RangeStmt:
		lc.scanCallChain(x.X, held)
		bodyHeld, bodyTerm := lc.stmts(x.Body.List, cloneState(held))
		if bodyTerm {
			return held, false
		}
		return intersect(held, bodyHeld), false

	case *ast.SwitchStmt:
		if x.Init != nil {
			held, _ = lc.stmt(x.Init, held)
		}
		if x.Tag != nil {
			lc.scanCallChain(x.Tag, held)
		}
		return lc.clauses(caseBodies(x.Body), hasDefaultCase(x.Body), held)

	case *ast.TypeSwitchStmt:
		return lc.clauses(caseBodies(x.Body), hasDefaultCase(x.Body), held)

	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		// A select always executes exactly one clause; there is no implicit
		// fall-through state.
		return lc.clauses(bodies, true, held)
	}
	return held, false
}

// clauses merges the states of switch/select case bodies. When no default
// clause exists, the entry state joins the merge (the switch may match
// nothing).
func (lc *lockChecker) clauses(bodies [][]ast.Stmt, exhaustive bool, held lockState) (lockState, bool) {
	var states []lockState
	allTerm := len(bodies) > 0
	for _, body := range bodies {
		st, term := lc.stmts(body, cloneState(held))
		if !term {
			states = append(states, st)
			allTerm = false
		}
	}
	if !exhaustive {
		states = append(states, held)
		allTerm = false
	}
	if allTerm {
		return held, true
	}
	if len(states) == 0 {
		return held, false
	}
	merged := states[0]
	for _, st := range states[1:] {
		merged = intersect(merged, st)
	}
	return merged, false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// exprStmtCall handles a statement-level call: Lock/Unlock transitions and
// panic termination.
func (lc *lockChecker) exprStmtCall(e ast.Expr, held lockState) (terminated bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		base := exprKey(sel.X)
		if base == "" {
			return false
		}
		mode := byte('L')
		if sel.Sel.Name == "RLock" {
			mode = 'R'
		}
		if prev, ok := held[base]; ok && !(mode == 'R' && prev.mode == 'R') {
			lc.report(call.Pos(), "%s locked again while already held (locked at %s)",
				base, lc.pkg.Fset.Position(prev.pos))
		}
		held[base] = heldLock{mode: mode, pos: call.Pos()}
	case "Unlock", "RUnlock":
		if base := exprKey(sel.X); base != "" {
			delete(held, base)
		}
	}
	return false
}

// handleDefer processes `defer x.Unlock()` (and the wrapped
// `defer func() { x.Unlock() }()` form): the lock stays held for
// call-chain purposes but is released on every return path.
func (lc *lockChecker) handleDefer(d *ast.DeferStmt, held lockState) {
	release := func(base string) {
		if h, ok := held[base]; ok {
			h.viaDefer = true
			held[base] = h
		}
	}
	if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
			if base := exprKey(sel.X); base != "" {
				release(base)
			}
		}
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") {
				if base := exprKey(sel.X); base != "" {
					release(base)
				}
			}
			return true
		})
	}
}

// scanCallChain flags same-receiver method calls that re-acquire a mutex
// the caller already holds (including via defer): a guaranteed deadlock.
func (lc *lockChecker) scanCallChain(e ast.Expr, held lockState) {
	if lc.recvName == "" || lc.recvType == "" || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // runs on its own schedule
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != lc.recvName {
			return true
		}
		acq := lc.pkg.methodAcquires[lc.recvType+"."+sel.Sel.Name]
		for rel := range acq {
			key := lc.recvName + "." + rel
			if h, ok := held[key]; ok {
				lc.report(call.Pos(), "call to %s.%s() locks %s, already held by caller (locked at %s): deadlock",
					lc.recvName, sel.Sel.Name, key, lc.pkg.Fset.Position(h.pos))
			}
		}
		return true
	})
}
