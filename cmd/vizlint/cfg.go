package main

import (
	"go/ast"
	"go/token"
)

// This file builds a per-function control-flow graph over go/ast. The CFG
// is the substrate shared by every path-sensitive check (obs, ctxcancel,
// release): one builder handles branches, loops, switch/select, labeled
// break/continue, defer, panic and fallthrough, so the checks themselves
// reduce to a transfer function over block nodes (see dataflow.go).
//
// Blocks hold the simple statements and scanned expressions executed in
// order; control flow lives entirely on the edges. A return terminates its
// block (the ReturnStmt is the block's last node, so transfer functions
// see it); panic terminates with no successor and no report, matching the
// long-standing checker behavior that a panicking path is not a leak.

// cfgEdge is one successor edge. When cond is non-nil the edge is taken
// only when cond evaluates to sense; the dataflow pass uses this to kill
// boolean guard tokens on the branch where the guard is false (e.g. the
// implicit else of `if probe { releaseProbe() }`).
type cfgEdge struct {
	to    *cfgBlock
	cond  *ast.Ident
	sense bool
}

// cfgBlock is one basic block.
type cfgBlock struct {
	id    int
	nodes []ast.Node // statements and scanned expressions, in order
	succs []cfgEdge
}

// cfg is a function body's control-flow graph. exit is the fall-off-the-
// end block: reachable only when some path completes the body without
// returning, panicking or looping forever.
type cfg struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// returnStmt returns the block's terminating ReturnStmt, if any.
func (b *cfgBlock) returnStmt() *ast.ReturnStmt {
	if len(b.nodes) == 0 {
		return nil
	}
	r, _ := b.nodes[len(b.nodes)-1].(*ast.ReturnStmt)
	return r
}

// loopScope is one enclosing breakable construct: loops carry a continue
// target, switches and selects only a break target.
type loopScope struct {
	label string
	brk   *cfgBlock
	cont  *cfgBlock // nil for switch/select scopes
}

type cfgBuilder struct {
	g            *cfg
	scopes       []loopScope
	nextCase     *cfgBlock // fallthrough target inside a switch clause
	pendingLabel string
}

// buildCFG constructs the CFG for one function body. Function literals
// inside the body are opaque expressions here: each literal's body gets
// its own CFG when its enclosing check analyzes it.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}}
	b.g.entry = b.newBlock()
	end := b.stmts(b.g.entry, body.List)
	b.g.exit = b.newBlock()
	if end != nil {
		b.edge(end, b.g.exit, nil, false)
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{id: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock, cond *ast.Ident, sense bool) {
	from.succs = append(from.succs, cfgEdge{to: to, cond: cond, sense: sense})
}

// takeLabel consumes the label set by an enclosing LabeledStmt, so it
// binds to the loop or switch built next.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// stmts threads cur through list; a nil return means every path through
// the list terminated (return, panic, break/continue out).
func (b *cfgBuilder) stmts(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			return nil // unreachable code after a terminator
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// guardIdent recognizes a bare boolean condition: `x` yields (x, true),
// `!x` yields (x, false); anything else yields nil and the condition is
// scanned as an ordinary expression node.
func guardIdent(cond ast.Expr) (*ast.Ident, bool) {
	switch x := cond.(type) {
	case *ast.Ident:
		return x, true
	case *ast.ParenExpr:
		return guardIdent(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			if id, sense := guardIdent(x.X); id != nil {
				return id, !sense
			}
		}
	}
	return nil, false
}

func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	switch x := s.(type) {
	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, x)
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return nil
			}
		}
		return cur

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, x)
		return nil

	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK:
			if t := b.branchTarget(x.Label, true); t != nil {
				b.edge(cur, t, nil, false)
			}
		case token.CONTINUE:
			if t := b.branchTarget(x.Label, false); t != nil {
				b.edge(cur, t, nil, false)
			}
		case token.FALLTHROUGH:
			if b.nextCase != nil {
				b.edge(cur, b.nextCase, nil, false)
			}
		}
		// goto: conservative, no edge — the path is treated as leaving the
		// function, mirroring the pre-engine checkers.
		return nil

	case *ast.BlockStmt:
		return b.stmts(cur, x.List)

	case *ast.LabeledStmt:
		b.pendingLabel = x.Label.Name
		return b.stmt(cur, x.Stmt)

	case *ast.IfStmt:
		return b.ifStmt(cur, x)

	case *ast.ForStmt:
		return b.forStmt(cur, x)

	case *ast.RangeStmt:
		return b.rangeStmt(cur, x)

	case *ast.SwitchStmt:
		if x.Init != nil {
			if cur = b.stmt(cur, x.Init); cur == nil {
				return nil
			}
		}
		if x.Tag != nil {
			cur.nodes = append(cur.nodes, x.Tag)
		}
		return b.switchClauses(cur, x.Body, true)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			if cur = b.stmt(cur, x.Init); cur == nil {
				return nil
			}
		}
		cur.nodes = append(cur.nodes, x.Assign)
		return b.switchClauses(cur, x.Body, false)

	case *ast.SelectStmt:
		return b.selectStmt(cur, x)

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, DeferStmt, GoStmt,
		// EmptyStmt: simple nodes the transfer function interprets.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

func (b *cfgBuilder) ifStmt(cur *cfgBlock, x *ast.IfStmt) *cfgBlock {
	if x.Init != nil {
		if cur = b.stmt(cur, x.Init); cur == nil {
			return nil
		}
	}
	cond, sense := guardIdent(x.Cond)
	if cond == nil {
		cur.nodes = append(cur.nodes, x.Cond)
	}
	thenB := b.newBlock()
	b.edge(cur, thenB, cond, sense)
	thenEnd := b.stmts(thenB, x.Body.List)

	var join *cfgBlock
	ensureJoin := func() *cfgBlock {
		if join == nil {
			join = b.newBlock()
		}
		return join
	}
	switch e := x.Else.(type) {
	case nil:
		b.edge(cur, ensureJoin(), cond, !sense)
	case *ast.BlockStmt:
		elseB := b.newBlock()
		b.edge(cur, elseB, cond, !sense)
		if end := b.stmts(elseB, e.List); end != nil {
			b.edge(end, ensureJoin(), nil, false)
		}
	case *ast.IfStmt:
		elseB := b.newBlock()
		b.edge(cur, elseB, cond, !sense)
		if end := b.stmt(elseB, e); end != nil {
			b.edge(end, ensureJoin(), nil, false)
		}
	}
	if thenEnd != nil {
		b.edge(thenEnd, ensureJoin(), nil, false)
	}
	return join // nil when both branches terminated
}

func (b *cfgBuilder) forStmt(cur *cfgBlock, x *ast.ForStmt) *cfgBlock {
	label := b.takeLabel()
	if x.Init != nil {
		if cur = b.stmt(cur, x.Init); cur == nil {
			return nil
		}
	}
	head := b.newBlock()
	b.edge(cur, head, nil, false)
	body := b.newBlock()
	after := b.newBlock()
	if x.Cond != nil {
		cond, sense := guardIdent(x.Cond)
		if cond == nil {
			head.nodes = append(head.nodes, x.Cond)
		}
		b.edge(head, body, cond, sense)
		b.edge(head, after, cond, !sense)
	} else {
		// `for { ... }`: no fall-out edge; after is reachable only via
		// break. This is what lets an infinite accept/retry loop with
		// returns inside (e.g. Pool.Acquire) analyze precisely.
		b.edge(head, body, nil, false)
	}
	cont := head
	var post *cfgBlock
	if x.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.scopes = append(b.scopes, loopScope{label: label, brk: after, cont: cont})
	bodyEnd := b.stmts(body, x.Body.List)
	b.scopes = b.scopes[:len(b.scopes)-1]
	if bodyEnd != nil {
		b.edge(bodyEnd, cont, nil, false)
	}
	if post != nil {
		if end := b.stmt(post, x.Post); end != nil {
			b.edge(end, head, nil, false)
		}
	}
	return after
}

func (b *cfgBuilder) rangeStmt(cur *cfgBlock, x *ast.RangeStmt) *cfgBlock {
	label := b.takeLabel()
	head := b.newBlock()
	b.edge(cur, head, nil, false)
	head.nodes = append(head.nodes, x.X)
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body, nil, false)
	b.edge(head, after, nil, false)
	b.scopes = append(b.scopes, loopScope{label: label, brk: after, cont: head})
	bodyEnd := b.stmts(body, x.Body.List)
	b.scopes = b.scopes[:len(b.scopes)-1]
	if bodyEnd != nil {
		b.edge(bodyEnd, head, nil, false)
	}
	return after
}

// switchClauses builds the clause blocks of a switch or type switch.
// allowFallthrough distinguishes expression switches from type switches.
func (b *cfgBuilder) switchClauses(cur *cfgBlock, body *ast.BlockStmt, allowFallthrough bool) *cfgBlock {
	label := b.takeLabel()
	join := b.newBlock()
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	blks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		blks[i] = b.newBlock()
		b.edge(cur, blks[i], nil, false)
	}
	if !hasDefault {
		// The switch may match nothing: the entry state reaches the join.
		b.edge(cur, join, nil, false)
	}
	b.scopes = append(b.scopes, loopScope{label: label, brk: join})
	savedNext := b.nextCase
	for i, cc := range clauses {
		blk := blks[i]
		for _, e := range cc.List {
			blk.nodes = append(blk.nodes, e)
		}
		b.nextCase = nil
		if allowFallthrough && i+1 < len(clauses) {
			b.nextCase = blks[i+1]
		}
		if end := b.stmts(blk, cc.Body); end != nil {
			b.edge(end, join, nil, false)
		}
	}
	b.nextCase = savedNext
	b.scopes = b.scopes[:len(b.scopes)-1]
	return join
}

func (b *cfgBuilder) selectStmt(cur *cfgBlock, x *ast.SelectStmt) *cfgBlock {
	label := b.takeLabel()
	join := b.newBlock()
	b.scopes = append(b.scopes, loopScope{label: label, brk: join})
	// A select executes exactly one clause (default included): no edge
	// from cur to join.
	for _, c := range x.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(cur, blk, nil, false)
		if cc.Comm != nil {
			end := b.stmt(blk, cc.Comm)
			if end == nil {
				continue
			}
			blk = end
		}
		if end := b.stmts(blk, cc.Body); end != nil {
			b.edge(end, join, nil, false)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	return join
}

// branchTarget resolves a break or continue to its destination block.
func (b *cfgBuilder) branchTarget(label *ast.Ident, isBreak bool) *cfgBlock {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if label != nil && sc.label != label.Name {
			continue
		}
		if isBreak {
			return sc.brk
		}
		if sc.cont != nil {
			return sc.cont
		}
		if label != nil {
			return nil // labeled continue on a non-loop: malformed
		}
	}
	return nil
}
