package main

import (
	"go/ast"
	"go/token"
	"strings"
)

// This file is the generic must-release dataflow pass: a resource acquired
// on some path must be released on every path that leaves the function, or
// escape to someone else who will. The obs, ctxcancel and release check
// families are all instantiations of this one engine, parameterized by a
// resourceSpec; none of them carries its own path-walking logic.
//
// The analysis runs on the CFG from cfg.go: a forward fixpoint whose state
// is the set of definitely-open resources (merge = intersection, so the
// engine favors missed findings over false positives), followed by a single
// reporting pass over the stabilized block-entry states.

// acquired describes one resource binding recognized by a spec.
type acquired struct {
	// name is the tracked token: a variable name ("sp", "cancel", "c") or
	// a selector path for container-keyed resources ("f.calls").
	name string
	// errName, when non-empty, is the paired error result: a return whose
	// results mention it is treated as the acquisition's own error path
	// (the resource was never produced) and is not reported.
	errName string
	// guard, when non-empty, is a paired boolean result: on a branch edge
	// where guard is false the token was never really acquired and dies.
	guard string
	// guardSelf marks the token itself as a boolean: a branch edge where
	// the token is false kills it (e.g. `if probe { releaseProbe() }`).
	guardSelf bool
}

// resourceSpec parameterizes the must-release pass.
type resourceSpec struct {
	check string

	// acquire recognizes an assignment that binds a resource, or nil.
	acquire func(*ast.AssignStmt) *acquired
	// release returns the token names a call releases. It receives the
	// live state so specs with release-all semantics (breaker Record*)
	// can return every live token.
	release func(*ast.CallExpr, flowState) []string
	// ownMethods are method names on the token that are uses, not
	// escapes (sp.Annotate). anyMethodOk treats every method call on the
	// token as a use (pooled connections).
	ownMethods  map[string]bool
	anyMethodOk bool

	leakReturn func(name string) string
	leakExit   func(name string) string
	// reboundMsg, when non-nil, reports re-acquiring a still-open token.
	reboundMsg func(name string) string
}

// resState is one open resource on the current path.
type resState struct {
	pos       token.Pos
	viaDefer  bool
	errName   string
	guard     string
	guardSelf bool
}

type flowState map[string]resState

func cloneFlow(s flowState) flowState {
	c := make(flowState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// releasePass runs one spec over one file's functions.
type releasePass struct {
	pkg  *pkgInfo
	fi   *fileInfo
	spec *resourceSpec
	out  *[]Finding
}

// runReleaseCheck applies spec to every function declaration and function
// literal in the file; literals run on their own schedule, so each body is
// analyzed as an independent function.
func runReleaseCheck(pkg *pkgInfo, fi *fileInfo, spec *resourceSpec) []Finding {
	var out []Finding
	rp := &releasePass{pkg: pkg, fi: fi, spec: spec, out: &out}
	for _, decl := range fi.File.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		rp.runFunc(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				rp.runFunc(lit.Body)
			}
			return true
		})
	}
	return out
}

func (rp *releasePass) report(pos token.Pos, msg string) {
	if rp.fi.allowedAt(rp.pkg.Fset, pos, rp.spec.check) {
		return
	}
	*rp.out = append(*rp.out, Finding{
		Pos:   rp.pkg.Fset.Position(pos),
		Check: rp.spec.check,
		Msg:   msg,
	})
}

// runFunc runs the fixpoint then the reporting pass over one body.
func (rp *releasePass) runFunc(body *ast.BlockStmt) {
	g := buildCFG(body)
	in := make([]flowState, len(g.blocks))
	in[g.entry.id] = flowState{}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := rp.transfer(blk, cloneFlow(in[blk.id]), false)
		for _, e := range blk.succs {
			st := refineEdge(out, e)
			if merged, changed := mergeFlow(in[e.to.id], st); changed {
				in[e.to.id] = merged
				work = append(work, e.to)
			}
		}
	}
	for _, blk := range g.blocks {
		if in[blk.id] == nil {
			continue // unreachable
		}
		rp.transfer(blk, cloneFlow(in[blk.id]), true)
	}
	// Fall-off-the-end exit: everything still definitely open leaked.
	if st := in[g.exit.id]; st != nil {
		for name, rs := range st {
			if !rs.viaDefer {
				rp.report(rs.pos, rp.spec.leakExit(name))
			}
		}
	}
}

// mergeFlow intersects incoming into existing (nil existing = first
// visit). viaDefer survives only when every path scheduled the release.
func mergeFlow(existing, incoming flowState) (flowState, bool) {
	if existing == nil {
		return cloneFlow(incoming), true
	}
	changed := false
	for k, v := range existing {
		iv, ok := incoming[k]
		if !ok {
			delete(existing, k)
			changed = true
			continue
		}
		if v.viaDefer && !iv.viaDefer {
			v.viaDefer = false
			existing[k] = v
			changed = true
		}
	}
	return existing, changed
}

// refineEdge kills boolean-guarded tokens on the branch where their guard
// is false: `if !allowed { ... }` proves no probe slot was admitted.
func refineEdge(st flowState, e cfgEdge) flowState {
	if e.cond == nil || e.sense {
		return st
	}
	var killed []string
	for name, rs := range st {
		if (rs.guardSelf && name == e.cond.Name) || (rs.guard != "" && rs.guard == e.cond.Name) {
			killed = append(killed, name)
		}
	}
	if killed == nil {
		return st
	}
	out := cloneFlow(st)
	for _, k := range killed {
		delete(out, k)
	}
	return out
}

// transfer interprets one block's nodes. When report is true the pass has
// stabilized and leaks/rebinds are reported.
func (rp *releasePass) transfer(blk *cfgBlock, st flowState, report bool) flowState {
	for _, n := range blk.nodes {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				rp.scan(r, st)
			}
			if acq := rp.spec.acquire(x); acq != nil {
				if old, ok := st[acq.name]; ok && !old.viaDefer && report && rp.spec.reboundMsg != nil {
					rp.report(old.pos, rp.spec.reboundMsg(acq.name))
				}
				st[acq.name] = resState{
					pos:       x.Pos(),
					errName:   acq.errName,
					guard:     acq.guard,
					guardSelf: acq.guardSelf,
				}
			}

		case *ast.ExprStmt:
			rp.scan(x.X, st)

		case *ast.DeferStmt:
			rp.handleDefer(x, st)

		case *ast.GoStmt:
			// A goroutine capturing the token may release it on its own
			// schedule.
			dropMentioned(x.Call, st)

		case *ast.SendStmt:
			rp.scan(x.Chan, st)
			rp.scan(x.Value, st)

		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							rp.scan(v, st)
						}
					}
				}
			}

		case *ast.IncDecStmt, *ast.EmptyStmt:
			// no effect

		case *ast.ReturnStmt:
			rp.atReturn(x, st, report)

		case ast.Expr:
			// Conditions, switch tags, case expressions.
			rp.scan(x, st)

		case ast.Stmt:
			// Comm clauses and type-switch assigns already appear as their
			// concrete types above; anything else is inert.
		}
	}
	return st
}

// atReturn applies return semantics: the acquisition's own error path is
// silent, returned tokens escape, everything else still open is a leak.
func (rp *releasePass) atReturn(ret *ast.ReturnStmt, st flowState, report bool) {
	for name, rs := range st {
		if rs.errName != "" && mentionsIdent(ret.Results, rs.errName) {
			delete(st, name)
		}
	}
	for _, r := range ret.Results {
		dropMentioned(r, st)
	}
	if !report {
		return
	}
	for name, rs := range st {
		if !rs.viaDefer {
			rp.report(rs.pos, rp.spec.leakReturn(name))
		}
	}
}

// handleDefer processes `defer release(...)` (direct or wrapped in a
// function literal): the token stays open for ordering purposes but is
// released on every return path. Any other defer the token reaches is an
// escape.
func (rp *releasePass) handleDefer(d *ast.DeferStmt, st flowState) {
	schedule := func(names []string) {
		for _, name := range names {
			if rs, ok := st[name]; ok {
				rs.viaDefer = true
				st[name] = rs
			}
		}
	}
	if names := rp.spec.release(d.Call, st); len(names) > 0 {
		schedule(names)
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if names := rp.spec.release(call, st); len(names) > 0 {
					schedule(names)
				}
			}
			return true
		})
		return
	}
	dropMentioned(d.Call, st)
}

// scan walks an expression: release calls release, method calls on the
// token are uses, any other mention is an escape — the token flows
// somewhere the checker cannot follow and is assumed released there.
func (rp *releasePass) scan(e ast.Expr, st flowState) {
	if e == nil || len(st) == 0 {
		return
	}
	skip := make(map[ast.Node]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil || len(st) == 0 {
			return false
		}
		if skip[n] {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			for _, name := range rp.spec.release(x, st) {
				delete(st, name)
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if _, tracked := st[id.Name]; tracked &&
						(rp.spec.anyMethodOk || rp.spec.ownMethods[sel.Sel.Name]) {
						skip[sel] = true // method use on the token
					}
				}
			}
		case *ast.SelectorExpr:
			if key := exprKey(x); key != "" {
				if _, ok := st[key]; ok {
					delete(st, key)
				}
				// The field name itself is not a variable mention.
				skip[x.Sel] = true
			}
		case *ast.Ident:
			delete(st, x.Name)
		case *ast.FuncLit:
			dropMentioned(x, st)
			return false
		}
		return true
	})
}

// dropMentioned unconditionally drops every token mentioned anywhere
// under n (returns, goroutines, captured closures), including selector-
// keyed tokens whose base identifier is mentioned.
func dropMentioned(n ast.Node, st flowState) {
	if n == nil || len(st) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		delete(st, id.Name)
		for k := range st {
			if strings.HasPrefix(k, id.Name+".") {
				delete(st, k)
			}
		}
		return true
	})
}

// mentionsIdent reports whether any expression mentions an identifier
// with the given name.
func mentionsIdent(exprs []ast.Expr, name string) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
