package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses a function body and builds its CFG.
func buildTestCFG(t *testing.T, body string) *cfg {
	t.Helper()
	src := "package p\n\nfunc f(ok bool, n int, ch chan int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body)
}

// reach computes the set of blocks reachable from the entry.
func reach(g *cfg) map[int]bool {
	seen := map[int]bool{g.entry.id: true}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range blk.succs {
			if !seen[e.to.id] {
				seen[e.to.id] = true
				work = append(work, e.to)
			}
		}
	}
	return seen
}

// countGuardEdges counts edges carrying a boolean guard condition.
func countGuardEdges(g *cfg) int {
	n := 0
	for _, blk := range g.blocks {
		for _, e := range blk.succs {
			if e.cond != nil {
				n++
			}
		}
	}
	return n
}

// countReturns counts reachable blocks terminated by a return statement.
func countReturns(g *cfg, reachable map[int]bool) int {
	n := 0
	for _, blk := range g.blocks {
		if reachable[blk.id] && blk.returnStmt() != nil {
			n++
		}
	}
	return n
}

func TestCFGShapes(t *testing.T) {
	tests := []struct {
		name string
		body string
		// wantExit: the fall-off-the-end block is reachable.
		wantExit bool
		// wantGuards: edges refined by a bare boolean condition.
		wantGuards int
		// wantReturns: reachable return-terminated blocks.
		wantReturns int
	}{
		{
			name:     "straight line",
			body:     "n++",
			wantExit: true,
		},
		{
			name:       "if without else",
			body:       "if ok {\nn++\n}",
			wantExit:   true,
			wantGuards: 2, // then edge and implicit-else edge
		},
		{
			name:        "negated guard",
			body:        "if !ok {\nreturn\n}\nn++",
			wantExit:    true,
			wantGuards:  2,
			wantReturns: 1,
		},
		{
			name:        "if else both return",
			body:        "if n > 0 {\nreturn\n} else {\nreturn\n}",
			wantExit:    false,
			wantReturns: 2,
		},
		{
			name:     "for with condition",
			body:     "for n > 0 {\nn--\n}",
			wantExit: true,
		},
		{
			name:     "infinite loop no break",
			body:     "for {\nn++\n}",
			wantExit: false,
		},
		{
			name:        "infinite loop with return",
			body:        "for {\nif ok {\nreturn\n}\n}",
			wantExit:    false,
			wantGuards:  2,
			wantReturns: 1,
		},
		{
			name:     "infinite loop with break",
			body:     "for {\nif ok {\nbreak\n}\n}",
			wantExit: true, wantGuards: 2,
		},
		{
			name:     "labeled break out of nested loop",
			body:     "outer:\nfor {\nfor {\nbreak outer\n}\n}",
			wantExit: true,
		},
		{
			name:     "continue keeps loop reachable",
			body:     "for n > 0 {\nif ok {\ncontinue\n}\nn--\n}",
			wantExit: true, wantGuards: 2,
		},
		{
			name:     "range loop",
			body:     "for i := range ch {\n_ = i\n}",
			wantExit: true,
		},
		{
			name:        "switch without default may skip all cases",
			body:        "switch n {\ncase 1:\nreturn\ncase 2:\nreturn\n}",
			wantExit:    true,
			wantReturns: 2,
		},
		{
			name:        "switch with default all return",
			body:        "switch n {\ncase 1:\nreturn\ndefault:\nreturn\n}",
			wantExit:    false,
			wantReturns: 2,
		},
		{
			name:        "fallthrough reaches next case",
			body:        "switch n {\ncase 1:\nfallthrough\ncase 2:\nreturn\n}",
			wantExit:    true,
			wantReturns: 1,
		},
		{
			name:        "select executes exactly one clause",
			body:        "select {\ncase <-ch:\nreturn\ncase ch <- 1:\nreturn\n}",
			wantExit:    false,
			wantReturns: 2,
		},
		{
			name:     "select with default falls through",
			body:     "select {\ncase <-ch:\nreturn\ndefault:\n}",
			wantExit: true, wantReturns: 1,
		},
		{
			name:     "panic terminates the path",
			body:     "if ok {\npanic(\"boom\")\n}\nn++",
			wantExit: true, wantGuards: 2,
		},
		{
			name:     "both branches panic",
			body:     "if ok {\npanic(\"a\")\n} else {\npanic(\"b\")\n}",
			wantExit: false, wantGuards: 2,
		},
		{
			name:     "defer is an ordinary node",
			body:     "defer close(ch)\nn++",
			wantExit: true,
		},
		{
			name:     "goto is conservative: no edge",
			body:     "goto done\ndone:\nreturn",
			wantExit: false,
		},
		{
			name:        "unreachable code after return",
			body:        "return\nn++", //nolint
			wantExit:    false,
			wantReturns: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := buildTestCFG(t, tt.body)
			reachable := reach(g)
			if got := reachable[g.exit.id]; got != tt.wantExit {
				t.Errorf("exit reachable = %v, want %v", got, tt.wantExit)
			}
			if got := countGuardEdges(g); got != tt.wantGuards {
				t.Errorf("guard edges = %d, want %d", got, tt.wantGuards)
			}
			if got := countReturns(g, reachable); got != tt.wantReturns {
				t.Errorf("reachable returns = %d, want %d", got, tt.wantReturns)
			}
		})
	}
}

// TestCFGReturnIsLastNode pins the invariant transfer functions rely on:
// a ReturnStmt is always the final node of its block.
func TestCFGReturnIsLastNode(t *testing.T) {
	g := buildTestCFG(t, "if ok {\nn++\nreturn\n}\nn--")
	for _, blk := range g.blocks {
		for i, n := range blk.nodes {
			if _, ok := n.(*ast.ReturnStmt); ok && i != len(blk.nodes)-1 {
				t.Errorf("block %d: return at index %d of %d nodes", blk.id, i, len(blk.nodes))
			}
		}
	}
}

// TestCFGGuardEdgeSense checks that `if ok { ... }` yields a true-sense
// edge into the then block and a false-sense edge around it.
func TestCFGGuardEdgeSense(t *testing.T) {
	g := buildTestCFG(t, "if ok {\nn++\n}")
	var senses []bool
	for _, e := range g.entry.succs {
		if e.cond == nil || e.cond.Name != "ok" {
			t.Errorf("entry edge without ok guard: %+v", e)
			continue
		}
		senses = append(senses, e.sense)
	}
	if len(senses) != 2 || senses[0] == senses[1] {
		t.Errorf("want one true and one false edge, got %v", senses)
	}
}
