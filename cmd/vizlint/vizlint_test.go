package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// lintFixture runs every check over a single fixture file, pretending it
// belongs to the package named by importPath (so path-scoped checks can
// be exercised from testdata).
func lintFixture(t *testing.T, name, importPath string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join("testdata", name)
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	fi := &fileInfo{Path: path, File: f, allow: buildAllow(fset, f), imports: moduleImports(f, "vizq")}
	pkg := &pkgInfo{ImportPath: importPath, Fset: fset, Files: []*fileInfo{fi}}
	pkg.typeCheck([]*ast.File{f})
	pkg.buildIndexes()
	mod := moduleFor(fset, "vizq", pkg)
	return runChecks(mod, pkg)
}

func countCheck(findings []Finding, check string) int {
	n := 0
	for _, f := range findings {
		if f.Check == check {
			n++
		}
	}
	return n
}

func dump(t *testing.T, findings []Finding) {
	t.Helper()
	for _, f := range findings {
		t.Logf("  %s", f)
	}
}

func TestLocksFiresOnBadCode(t *testing.T) {
	findings := lintFixture(t, "locks_bad.go", "vizq/internal/fixture")
	// Bump's early return, Total's call-chain re-lock, Twice's double
	// lock, and Set's fall-through exit.
	if got := countCheck(findings, "locks"); got != 4 {
		dump(t, findings)
		t.Errorf("locks findings = %d, want 4", got)
	}
}

func TestLocksSilentOnGoodCode(t *testing.T) {
	findings := lintFixture(t, "locks_good.go", "vizq/internal/fixture")
	if len(findings) != 0 {
		dump(t, findings)
		t.Errorf("findings = %d, want 0", len(findings))
	}
}

func TestGoroutineFiresOnBadCode(t *testing.T) {
	// The exec import path turns on the join-signal requirement.
	findings := lintFixture(t, "goroutine_bad.go", "vizq/internal/tde/exec")
	// One unprotected shared write plus one missing join signal.
	if got := countCheck(findings, "goroutine"); got != 2 {
		dump(t, findings)
		t.Errorf("goroutine findings = %d, want 2", got)
	}
}

func TestGoroutineSilentOnGoodCode(t *testing.T) {
	findings := lintFixture(t, "goroutine_good.go", "vizq/internal/tde/exec")
	if len(findings) != 0 {
		dump(t, findings)
		t.Errorf("findings = %d, want 0", len(findings))
	}
}

func TestGoroutineJoinScopedToListedPackages(t *testing.T) {
	// Outside the exec/dataserver/remote subsystems the join check is
	// off, but the unprotected-write check still applies.
	findings := lintFixture(t, "goroutine_bad.go", "vizq/internal/cache")
	if got := countCheck(findings, "goroutine"); got != 1 {
		dump(t, findings)
		t.Errorf("goroutine findings = %d, want 1 (write only)", got)
	}
}

func TestErrorsFiresOnBadCode(t *testing.T) {
	findings := lintFixture(t, "errors_bad.go", "vizq/internal/kvstore")
	// Discarded Flush, Close and Write results plus one %v-wrapped error.
	if got := countCheck(findings, "errors"); got != 4 {
		dump(t, findings)
		t.Errorf("errors findings = %d, want 4", got)
	}
}

func TestErrorsSilentOnGoodCode(t *testing.T) {
	findings := lintFixture(t, "errors_good.go", "vizq/internal/kvstore")
	if len(findings) != 0 {
		dump(t, findings)
		t.Errorf("findings = %d, want 0", len(findings))
	}
}

func TestErrorsDiscardScopedToListedPackages(t *testing.T) {
	// The discard check is scoped to storage/kvstore; the %w check
	// applies everywhere.
	findings := lintFixture(t, "errors_bad.go", "vizq/internal/cache")
	if got := countCheck(findings, "errors"); got != 1 {
		dump(t, findings)
		t.Errorf("errors findings = %d, want 1 (%%w only)", got)
	}
}

func TestSleepFiresOnBadCode(t *testing.T) {
	findings := lintFixture(t, "sleep_bad.go", "vizq/internal/fixture")
	if got := countCheck(findings, "sleep"); got != 1 {
		dump(t, findings)
		t.Errorf("sleep findings = %d, want 1", got)
	}
}

func TestSleepDirectiveSuppresses(t *testing.T) {
	// Both directive placements — inline and on the line above — apply.
	findings := lintFixture(t, "sleep_good.go", "vizq/internal/fixture")
	if len(findings) != 0 {
		dump(t, findings)
		t.Errorf("findings = %d, want 0", len(findings))
	}
}

func TestObsFiresOnBadCode(t *testing.T) {
	findings := lintFixture(t, "obs_bad.go", "vizq/internal/fixture")
	// EarlyReturn's bail-out, FallThrough's missing Finish, Restarted's
	// orphaned first span, and DeferOnlySometimes' undeferred branch.
	if got := countCheck(findings, "obs"); got != 4 {
		dump(t, findings)
		t.Errorf("obs findings = %d, want 4", got)
	}
}

func TestObsSilentOnGoodCode(t *testing.T) {
	findings := lintFixture(t, "obs_good.go", "vizq/internal/fixture")
	if len(findings) != 0 {
		dump(t, findings)
		t.Errorf("findings = %d, want 0", len(findings))
	}
}

func TestCtxCancelFiresOnBadCode(t *testing.T) {
	findings := lintFixture(t, "ctxcancel_bad.go", "vizq/internal/fixture")
	// EarlyReturnCancel's bail-out, FallThroughCancel's forgotten cancel,
	// ReboundCancel's orphaned timer, and DeferOnlyInOneBranch's cold path.
	if got := countCheck(findings, "ctxcancel"); got != 4 {
		dump(t, findings)
		t.Errorf("ctxcancel findings = %d, want 4", got)
	}
}

func TestCtxCancelSilentOnGoodCode(t *testing.T) {
	findings := lintFixture(t, "ctxcancel_good.go", "vizq/internal/fixture")
	if len(findings) != 0 {
		dump(t, findings)
		t.Errorf("findings = %d, want 0", len(findings))
	}
}

func TestLockOrderFiresOnBadCode(t *testing.T) {
	findings := lintFixture(t, "lockorder_bad.go", "vizq/internal/fixture")
	// The LockAB/LockBA cycle, SendWhileLocked's send, and WaitViaCall's
	// blocking callee.
	if got := countCheck(findings, "lockorder"); got != 3 {
		dump(t, findings)
		t.Errorf("lockorder findings = %d, want 3", got)
	}
}

func TestLockOrderSilentOnGoodCode(t *testing.T) {
	findings := lintFixture(t, "lockorder_good.go", "vizq/internal/fixture")
	if len(findings) != 0 {
		dump(t, findings)
		t.Errorf("findings = %d, want 0", len(findings))
	}
}

func TestAtomicsFiresOnBadCode(t *testing.T) {
	findings := lintFixture(t, "atomics_bad.go", "vizq/internal/fixture")
	// PlainRead's load and PlainWrite's store of the atomic hits field.
	if got := countCheck(findings, "atomics"); got != 2 {
		dump(t, findings)
		t.Errorf("atomics findings = %d, want 2", got)
	}
}

func TestAtomicsSilentOnGoodCode(t *testing.T) {
	findings := lintFixture(t, "atomics_good.go", "vizq/internal/fixture")
	if len(findings) != 0 {
		dump(t, findings)
		t.Errorf("findings = %d, want 0", len(findings))
	}
}

func TestReleaseFiresOnBadCode(t *testing.T) {
	findings := lintFixture(t, "release_bad.go", "vizq/internal/fixture")
	// LeakOnEarlyReturn, LeakOnFallThrough, LeaderForgetsDelete,
	// ProbeLeakOnEarlyReturn, DiscardedProbe, and EnqueueForgetsRemove.
	if got := countCheck(findings, "release"); got != 6 {
		dump(t, findings)
		t.Errorf("release findings = %d, want 6", got)
	}
}

func TestReleaseSilentOnGoodCode(t *testing.T) {
	findings := lintFixture(t, "release_good.go", "vizq/internal/fixture")
	if len(findings) != 0 {
		dump(t, findings)
		t.Errorf("findings = %d, want 0", len(findings))
	}
}

// TestRepoIsClean runs the full analysis over the repository and demands
// zero findings — the same gate scripts/check.sh enforces.
func TestRepoIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	dirs, err := resolveDirs([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	mod, err := loadModule(fset, dirs, modulePath("."))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range mod.pkgs {
		for _, f := range runChecks(mod, pkg) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}
