package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// checkLockOrder is the interprocedural deadlock check. It propagates
// may-hold lock sets through each function's CFG (union at merge points),
// extends them across calls using per-function summaries computed over the
// module call graph, and records a lock-acquisition-order edge every time
// a lock is taken while another is held. Two findings come out:
//
//   - a cycle in the order graph: two call chains that acquire the same
//     locks in opposite orders can deadlock under concurrency even though
//     each chain is individually correct;
//   - a lock held across a blocking operation (channel send/receive,
//     select without default, Wait, time.Sleep, or a call that may do
//     one of those): the lock's critical section is then bounded by
//     another goroutine's progress, which is how a slow follower stalls
//     every caller of the shard.
//
// Lock identity is type-normalized ("pkg::Type.field"), so s.mu on two
// different instances of the same struct is one lock for ordering
// purposes. Goroutine bodies, function literals and defers are excluded
// from path tracking: goroutines run on their own schedule, literals run
// when called (their synchronous calls still reach summaries through the
// call graph), and a deferred unlock keeps the lock held to the end of
// the function, which is exactly what the held set should say.
func checkLockOrder(mod *module, pkg *pkgInfo) []Finding {
	mod.ensureLockOrder()
	return mod.lockFindings[pkg.ImportPath]
}

// fnSummary is what a call site needs to know about a callee: the locks
// it (transitively) may acquire and whether it may block.
type fnSummary struct {
	acquires map[string]bool
	blocks   token.Pos // first blocking operation, NoPos if none
}

// lockEdge is one observed acquisition order: to was acquired while from
// was held. First observation wins; via names the callee when the edge
// came from a call rather than a direct Lock.
type lockEdge struct {
	from, to string
	pos      token.Pos
	pkg      *pkgInfo
	fi       *fileInfo
	via      string
}

// ensureLockOrder runs the module-wide analysis once and buckets findings
// by package, so per-package check invocations stay deduplicated.
func (m *module) ensureLockOrder() {
	if m.lockFindings != nil {
		return
	}
	m.lockFindings = make(map[string][]Finding)
	lo := &lockOrderPass{
		mod:   m,
		sums:  m.lockSummaries(),
		edges: make(map[string]map[string]*lockEdge),
	}
	for _, key := range sortedFuncKeys(m) {
		fn := m.funcs[key]
		if fn.decl.Body == nil {
			continue
		}
		lo.runFunc(fn)
	}
	lo.reportCycles()
	for path := range m.lockFindings {
		fs := m.lockFindings[path]
		sort.Slice(fs, func(i, j int) bool {
			a, b := fs[i].Pos, fs[j].Pos
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			return a.Offset < b.Offset
		})
	}
}

func sortedFuncKeys(m *module) []string {
	keys := make([]string, 0, len(m.funcs))
	for k := range m.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockSummaries computes the transitive may-acquire set and may-block flag
// for every function, by local collection followed by a fixpoint over the
// call graph.
func (m *module) lockSummaries() map[string]*fnSummary {
	sums := make(map[string]*fnSummary, len(m.funcs))
	for key, fn := range m.funcs {
		sums[key] = localSummary(fn)
	}
	for changed := true; changed; {
		changed = false
		for key := range m.funcs {
			s := sums[key]
			for _, callee := range m.callees[key] {
				cs := sums[callee]
				if cs == nil {
					continue
				}
				for id := range cs.acquires {
					if !s.acquires[id] {
						s.acquires[id] = true
						changed = true
					}
				}
				if cs.blocks.IsValid() && !s.blocks.IsValid() {
					s.blocks = cs.blocks
					changed = true
				}
			}
		}
	}
	return sums
}

// localSummary collects one function's direct lock acquisitions and
// blocking operations, skipping goroutine bodies.
func localSummary(fn *funcInfo) *fnSummary {
	s := &fnSummary{acquires: make(map[string]bool)}
	if fn.decl.Body == nil {
		return s
	}
	commOK := nonBlockingComms(fn.decl.Body)
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if commOK[n] {
			return false // comm of a select with default: non-blocking
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			s.noteBlock(x.Pos())
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.noteBlock(x.Pos())
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if id := lockIDOf(fn.pkg, sel.X); id != "" {
						s.acquires[id] = true
					}
				case "Wait":
					if len(x.Args) == 0 {
						s.noteBlock(x.Pos())
					}
				case "Sleep":
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
						s.noteBlock(x.Pos())
					}
				}
			}
		}
		return true
	})
	return s
}

func (s *fnSummary) noteBlock(pos token.Pos) {
	if !s.blocks.IsValid() {
		s.blocks = pos
	}
}

// nonBlockingComms marks the comm statements of selects that have a
// default clause: those sends and receives never block.
func nonBlockingComms(body ast.Node) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				out[cc.Comm] = true
			}
		}
		return true
	})
	return out
}

// lockIDOf resolves the receiver of a Lock/Unlock call to a type-
// normalized lock identity, or "". Selector receivers must name a mutex
// field of a package-local named type; bare identifiers must resolve to a
// package-level variable.
func lockIDOf(pkg *pkgInfo, recv ast.Expr) string {
	switch x := recv.(type) {
	case *ast.ParenExpr:
		return lockIDOf(pkg, x.X)
	case *ast.SelectorExpr:
		tName := namedTypeOf(pkg, x.X)
		if tName != "" && pkg.mutexFields[tName][x.Sel.Name] {
			return pkg.ImportPath + "::" + tName + "." + x.Sel.Name
		}
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return pkg.ImportPath + "::" + x.Name
		}
	}
	return ""
}

// lockLabel renders a lock identity for messages: "pkg.Type.field".
func lockLabel(id string) string {
	path, rest, ok := strings.Cut(id, "::")
	if !ok {
		return id
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path + "." + rest
}

// lockOrderPass is the module-wide analysis state.
type lockOrderPass struct {
	mod  *module
	sums map[string]*fnSummary

	edges map[string]map[string]*lockEdge // from -> to -> first edge

	// per-function state
	fn     *funcInfo
	commOK map[ast.Node]bool
}

func (lo *lockOrderPass) report(pos token.Pos, msg string) {
	fi := lo.fn.fi
	pkg := lo.fn.pkg
	if fi.allowedAt(pkg.Fset, pos, "lockorder") {
		return
	}
	lo.mod.lockFindings[pkg.ImportPath] = append(lo.mod.lockFindings[pkg.ImportPath], Finding{
		Pos:   pkg.Fset.Position(pos),
		Check: "lockorder",
		Msg:   msg,
	})
}

// runFunc runs the may-hold fixpoint over one function's CFG, then a
// reporting sweep that records order edges and held-across-blocking
// findings with the stabilized entry states.
func (lo *lockOrderPass) runFunc(fn *funcInfo) {
	lo.fn = fn
	lo.commOK = nonBlockingComms(fn.decl.Body)
	g := buildCFG(fn.decl.Body)
	in := make([]map[string]token.Pos, len(g.blocks))
	in[g.entry.id] = map[string]token.Pos{}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := lo.transferBlock(blk, cloneHeld(in[blk.id]), false)
		for _, e := range blk.succs {
			if merged, changed := mergeHeld(in[e.to.id], out); changed {
				in[e.to.id] = merged
				work = append(work, e.to)
			}
		}
	}
	for _, blk := range g.blocks {
		if in[blk.id] == nil {
			continue // unreachable
		}
		lo.transferBlock(blk, cloneHeld(in[blk.id]), true)
	}
}

func cloneHeld(h map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// mergeHeld unions incoming into existing (may-hold).
func mergeHeld(existing, incoming map[string]token.Pos) (map[string]token.Pos, bool) {
	if existing == nil {
		return cloneHeld(incoming), true
	}
	changed := false
	for k, v := range incoming {
		if _, ok := existing[k]; !ok {
			existing[k] = v
			changed = true
		}
	}
	return existing, changed
}

// transferBlock interprets one block's nodes in order. Defers are skipped
// entirely: a deferred unlock releases only at return, so the lock stays
// in the held set, and a deferred blocking call runs outside the critical
// path this pass models.
func (lo *lockOrderPass) transferBlock(blk *cfgBlock, held map[string]token.Pos, report bool) map[string]token.Pos {
	for _, n := range blk.nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			continue
		}
		blockOK := lo.commOK[n]
		ast.Inspect(n, func(x ast.Node) bool {
			switch y := x.(type) {
			case *ast.GoStmt, *ast.FuncLit, *ast.DeferStmt:
				return false
			case *ast.SendStmt:
				if !blockOK {
					lo.blockingOp(y.Pos(), "channel send", held, report)
				}
			case *ast.UnaryExpr:
				if y.Op == token.ARROW && !blockOK {
					lo.blockingOp(y.Pos(), "channel receive", held, report)
				}
			case *ast.CallExpr:
				lo.call(y, held, report)
			}
			return true
		})
	}
	return held
}

// call interprets one call: lock/unlock updates the held set, blocking
// primitives and callee summaries are checked against it.
func (lo *lockOrderPass) call(call *ast.CallExpr, held map[string]token.Pos, report bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if id := lockIDOf(lo.fn.pkg, sel.X); id != "" {
				if report {
					lo.addEdges(held, id, call.Pos(), "")
				}
				held[id] = call.Pos()
				return
			}
		case "Unlock", "RUnlock":
			if id := lockIDOf(lo.fn.pkg, sel.X); id != "" {
				delete(held, id)
				return
			}
		case "Wait":
			if len(call.Args) == 0 {
				lo.blockingOp(call.Pos(), "Wait()", held, report)
				return
			}
		case "Sleep":
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
				lo.blockingOp(call.Pos(), "time.Sleep", held, report)
				return
			}
		}
	}
	key := lo.mod.resolveCallee(lo.fn.pkg, lo.fn.fi, call)
	if key == "" {
		return
	}
	sum := lo.sums[key]
	if sum == nil {
		return
	}
	callee := shortFuncName(key, lo.fn.pkg.ImportPath)
	if report {
		for id := range sum.acquires {
			lo.addEdges(held, id, call.Pos(), callee)
		}
	}
	if sum.blocks.IsValid() && len(held) > 0 {
		lo.blockingOp(call.Pos(), fmt.Sprintf("call to %s, which may block", callee), held, report)
	}
}

// blockingOp reports a blocking operation reached with locks held.
func (lo *lockOrderPass) blockingOp(pos token.Pos, what string, held map[string]token.Pos, report bool) {
	if !report || len(held) == 0 {
		return
	}
	ids := make([]string, 0, len(held))
	for id := range held {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	lo.report(pos, fmt.Sprintf("%s held across %s; the critical section is bounded by another goroutine's progress",
		lockLabel(ids[0]), what))
}

// addEdges records one order edge per held lock (self-edges excluded:
// same-instance re-lock is the locks check's finding, and type-normalized
// identities make different instances of one type indistinguishable).
func (lo *lockOrderPass) addEdges(held map[string]token.Pos, to string, pos token.Pos, via string) {
	for from := range held {
		if from == to {
			continue
		}
		if lo.edges[from] == nil {
			lo.edges[from] = make(map[string]*lockEdge)
		}
		if lo.edges[from][to] == nil {
			lo.edges[from][to] = &lockEdge{
				from: from, to: to, pos: pos,
				pkg: lo.fn.pkg, fi: lo.fn.fi, via: via,
			}
		}
	}
}

// reportCycles finds strongly connected components in the order graph and
// reports one finding per component of two or more locks.
func (lo *lockOrderPass) reportCycles() {
	for _, scc := range lockSCCs(lo.edges) {
		if len(scc) < 2 {
			continue
		}
		path := cyclePath(scc, lo.edges)
		if path == nil {
			continue
		}
		// Representative edge: the first hop of the cycle.
		e := lo.edges[path[0]][path[1]]
		labels := make([]string, len(path))
		for i, id := range path {
			labels[i] = lockLabel(id)
		}
		detail := ""
		if e.via != "" {
			detail = fmt.Sprintf(" (%s acquired via call to %s while %s held)",
				lockLabel(e.to), e.via, lockLabel(e.from))
		}
		if e.fi.allowedAt(e.pkg.Fset, e.pos, "lockorder") {
			continue
		}
		lo.mod.lockFindings[e.pkg.ImportPath] = append(lo.mod.lockFindings[e.pkg.ImportPath], Finding{
			Pos:   e.pkg.Fset.Position(e.pos),
			Check: "lockorder",
			Msg: fmt.Sprintf("lock order cycle: %s%s; concurrent callers acquiring in opposite orders can deadlock",
				strings.Join(labels, " -> "), detail),
		})
	}
}

// lockSCCs is Tarjan's algorithm over the order graph, with sorted
// iteration for deterministic output.
func lockSCCs(edges map[string]map[string]*lockEdge) [][]string {
	nodeSet := make(map[string]bool)
	for from, tos := range edges {
		nodeSet[from] = true
		for to := range tos {
			nodeSet[to] = true
		}
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(edges[v]))
		for to := range edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// cyclePath finds a concrete cycle inside one SCC, returned as
// [a, b, ..., a], for the finding message.
func cyclePath(scc []string, edges map[string]map[string]*lockEdge) []string {
	in := make(map[string]bool, len(scc))
	for _, n := range scc {
		in[n] = true
	}
	start := scc[0]
	var dfs func(cur string, path []string, seen map[string]bool) []string
	dfs = func(cur string, path []string, seen map[string]bool) []string {
		tos := make([]string, 0, len(edges[cur]))
		for to := range edges[cur] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if to == start && len(path) > 1 {
				return append(path, start)
			}
			if !in[to] || seen[to] {
				continue
			}
			seen[to] = true
			if p := dfs(to, append(path, to), seen); p != nil {
				return p
			}
			delete(seen, to)
		}
		return nil
	}
	return dfs(start, []string{start}, map[string]bool{start: true})
}
