// tql runs TQL queries against a single-file TDE database.
//
// Usage:
//
//	tql -db flights.tde [-plan] [-serial] '<query>'
//	tql -db flights.tde            # interactive: one query per line
//	tql -demo '<query>'            # query a built-in synthetic flights db
//
// Example query:
//
//	(topn (aggregate (table flights) (groupby carrier)
//	      (aggs (n count *) (a avg delay))) 5 (desc n))
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"vizq/internal/tde/engine"
	"vizq/internal/tde/plan"
	"vizq/internal/workload"
)

func main() {
	dbPath := flag.String("db", "", "path to a .tde database file")
	demo := flag.Bool("demo", false, "use a built-in synthetic flights database")
	showPlan := flag.Bool("plan", false, "print the optimized plan instead of executing")
	serial := flag.Bool("serial", false, "disable parallel plans")
	rows := flag.Int("rows", 100_000, "row count for -demo")
	flag.Parse()

	var eng *engine.Engine
	switch {
	case *demo:
		db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: *rows, Days: 365, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		eng = engine.New(db)
	case *dbPath != "":
		var err error
		eng, err = engine.Open(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("tql: provide -db <file.tde> or -demo")
	}
	if *serial {
		o := eng.Options()
		o.MaxDOP = 1
		eng.SetOptions(o)
	}

	run := func(src string) {
		src = strings.TrimSpace(src)
		if src == "" {
			return
		}
		if *showPlan {
			p, err := eng.Plan(src)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Print(plan.Format(p))
			return
		}
		res, err := eng.Query(context.Background(), src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Print(res)
		fmt.Printf("(%d rows)\n", res.N)
	}

	if flag.NArg() > 0 {
		run(strings.Join(flag.Args(), " "))
		return
	}
	// Interactive: one query per line.
	fmt.Println("tql> enter one query per line (tables:", tableList(eng), ")")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("tql> ")
		if !sc.Scan() {
			return
		}
		run(sc.Text())
	}
}

func tableList(eng *engine.Engine) string {
	var names []string
	for _, t := range eng.Database().AllTables() {
		names = append(names, t.QualifiedName())
	}
	return strings.Join(names, ", ")
}
