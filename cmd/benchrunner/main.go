// benchrunner regenerates every experiment in EXPERIMENTS.md: one table per
// performance claim in the paper (see DESIGN.md for the index).
//
// Usage:
//
//	benchrunner [-scale test|full] [-only E1,E5]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"vizq/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: test or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	scale := experiments.FullScale()
	if *scaleFlag == "test" {
		scale = experiments.TestScale()
	}
	only := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			only[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	start := time.Now()
	for _, r := range experiments.All() {
		if len(only) > 0 && !only[r.ID] {
			continue
		}
		fmt.Printf("running %s (%s)...\n", r.ID, r.Name)
		t0 := time.Now()
		table, err := r.Run(scale)
		if err != nil {
			log.Fatalf("%s: %v", r.ID, err)
		}
		fmt.Printf("\n%s(took %v)\n\n", table, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("all experiments done in %v\n", time.Since(start).Round(time.Second))
}
