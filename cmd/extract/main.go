// extract builds a single-file TDE database from a delimited text file
// (Sect. 4.4's shadow-extract path as a standalone tool).
//
// Usage:
//
//	extract -in data.csv -out data.tde [-table sales] [-schema data.schema] [-delim ',']
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vizq/internal/extract"
	"vizq/internal/tde/storage"
)

func main() {
	in := flag.String("in", "", "input delimited text file")
	out := flag.String("out", "", "output .tde file")
	table := flag.String("table", "data", "table name inside the extract")
	schemaPath := flag.String("schema", "", "optional schema file (name:type[:collation] lines)")
	delim := flag.String("delim", ",", "field delimiter")
	flag.Parse()

	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	opt := extract.ParseOptions{}
	if len(*delim) == 1 {
		opt.Delimiter = (*delim)[0]
	} else {
		log.Fatal("extract: delimiter must be a single byte")
	}
	if *schemaPath != "" {
		s, err := extract.LoadSchemaFile(*schemaPath)
		if err != nil {
			log.Fatal(err)
		}
		opt.Schema = s
	}

	db, err := extract.CreateExtract(*in, *table, opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := storage.SaveDatabase(db, *out); err != nil {
		log.Fatal(err)
	}
	tbl, err := db.Table("Extract", *table)
	if err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(*out)
	fmt.Printf("extracted %d rows into %s (%d KiB)\n", tbl.Rows, *out, fi.Size()/1024)
	for _, c := range tbl.Cols {
		dict := ""
		if c.Dict != nil {
			dict = fmt.Sprintf(" dict(%d)", c.Dict.Len())
		}
		fmt.Printf("  %-20s %-9s %s%s\n", c.Name, c.Type, c.Encoding(), dict)
	}
}
