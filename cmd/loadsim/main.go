// loadsim simulates Tableau-Server-style multi-user dashboard traffic
// (Sect. 3.2: shared dashboards make caching effective across users; Tableau
// Public traffic "is saturated by initial load requests"). It replays N user
// sessions against the Fig. 2 dashboard through the full pipeline and
// reports latency percentiles, backend load and cache effectiveness, with
// and without caching.
//
// Usage:
//
//	loadsim [-users 20] [-interactions 3] [-latency 5ms] [-rows 100000]
//	        [-trace] [-metrics text|json]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"vizq/internal/cache"
	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/obs"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/vizql"
	"vizq/internal/workload"
)

func main() {
	users := flag.Int("users", 20, "number of user sessions")
	interactions := flag.Int("interactions", 3, "interactions per user after the initial load")
	latency := flag.Duration("latency", 5*time.Millisecond, "remote request latency")
	rows := flag.Int("rows", 100_000, "backend fact rows")
	seed := flag.Int64("seed", 1, "interaction randomness seed")
	trace := flag.Bool("trace", false, "run one traced user after each mode and print its per-stage breakdown")
	metrics := flag.String("metrics", "", "dump process metrics after the run: text or json")
	flag.Parse()
	if *metrics != "" && *metrics != "text" && *metrics != "json" {
		log.Fatalf("loadsim: -metrics must be text or json, got %q", *metrics)
	}

	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: *rows, Days: 365, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), remote.Config{Latency: *latency, QueryDOP: 2})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	for _, cached := range []bool{false, true} {
		mode := "caching OFF"
		opt := core.Options{DisableIntelligentCache: true, DisableLiteralCache: true}
		if cached {
			mode = "caching ON "
			opt = core.DefaultOptions()
		}
		pool := connection.NewPool(srv.Addr(), connection.PoolConfig{Max: 8})
		intel := cache.NewIntelligentCache(cache.DefaultOptions())
		lit := cache.NewLiteralCache(cache.DefaultOptions())
		proc := core.NewProcessor(pool, intel, lit, opt)
		backendBefore := srv.Stats().Queries

		rng := rand.New(rand.NewSource(*seed))
		var loadTimes, interactTimes []time.Duration
		start := time.Now()
		for u := 0; u < *users; u++ {
			sess, err := vizql.NewSession(vizql.FlightsDashboard("flights"), proc)
			if err != nil {
				log.Fatal(err)
			}
			t0 := time.Now()
			if _, err := sess.Render(context.Background()); err != nil {
				log.Fatal(err)
			}
			loadTimes = append(loadTimes, time.Since(t0))

			for i := 0; i < *interactions; i++ {
				markets := sess.Result("Market")
				if markets == nil || markets.N == 0 {
					break
				}
				// Users mostly click popular values (top rows), echoing each
				// other's interactions — that is what makes shared caches pay.
				pick := rng.Intn(5)
				if pick >= markets.N {
					pick = markets.N - 1
				}
				if err := sess.Select("Market", markets.Value(pick, 0)); err != nil {
					log.Fatal(err)
				}
				t0 = time.Now()
				if _, err := sess.Render(context.Background()); err != nil {
					log.Fatal(err)
				}
				interactTimes = append(interactTimes, time.Since(t0))
			}
		}
		wall := time.Since(start)
		backend := srv.Stats().Queries - backendBefore
		st := proc.Stats()
		fmt.Printf("%s  users=%d interactions=%d\n", mode, *users, *interactions)
		fmt.Printf("  initial load  p50=%v p95=%v\n", pct(loadTimes, 50), pct(loadTimes, 95))
		fmt.Printf("  interaction   p50=%v p95=%v\n", pct(interactTimes, 50), pct(interactTimes, 95))
		fmt.Printf("  wall=%v backendQueries=%d cacheHits=%d localAnswers=%d fused=%d\n",
			wall.Round(time.Millisecond), backend, st.CacheHits, st.LocalAnswers, st.FusedAway)
		ist, lst := intel.Stats(), lit.Stats()
		fmt.Printf("  cache shards  intelligent=%d literal=%d  evictions=%d/%d\n",
			intel.Shards(), lit.Shards(), ist.Evictions, lst.Evictions)
		fmt.Printf("  singleflight  leader=%d shared=%d\n\n", st.FlightLeader, st.FlightShared)
		if *trace {
			if err := traceUser(proc, *interactions); err != nil {
				log.Fatal(err)
			}
		}
		pool.Close()
	}

	switch *metrics {
	case "text":
		if err := obs.Default.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "json":
		if err := obs.Default.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// traceUser replays one user session under a tracer (outside the timed run)
// and prints the aggregated per-stage latency breakdown.
func traceUser(proc *core.Processor, interactions int) error {
	tr := obs.New()
	ctx := obs.WithTracer(context.Background(), tr)
	sess, err := vizql.NewSession(vizql.FlightsDashboard("flights"), proc)
	if err != nil {
		return err
	}
	if _, err := sess.Render(ctx); err != nil {
		return err
	}
	for i := 0; i < interactions; i++ {
		markets := sess.Result("Market")
		if markets == nil || markets.N == 0 {
			break
		}
		if err := sess.Select("Market", markets.Value(i%markets.N, 0)); err != nil {
			return err
		}
		if _, err := sess.Render(ctx); err != nil {
			return err
		}
	}
	fmt.Printf("  stage breakdown (1 traced user, untimed):\n%s\n", obs.FormatStages(tr.Stages()))
	return nil
}

func pct(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := len(s) * p / 100
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i].Round(100 * time.Microsecond)
}
