// loadsim simulates Tableau-Server-style multi-user dashboard traffic
// (Sect. 3.2: shared dashboards make caching effective across users; Tableau
// Public traffic "is saturated by initial load requests"). It replays N user
// sessions against the Fig. 2 dashboard through the full pipeline and
// reports latency percentiles, backend load and cache effectiveness, with
// and without caching.
//
// Usage:
//
//	loadsim [-users 20] [-sessions 0] [-interactions 3] [-latency 5ms]
//	        [-rows 100000] [-trace] [-metrics text|json]
//	        [-outage start:dur] [-resilient] [-timeout 2s]
//	        [-arrival 0] [-think 0] [-sched] [-cluster 0]
//	        [-restart node:at:dur[,...]] [-drainfirst]
//
// With -outage, the backend is reached through a chaos proxy that goes
// dark (black-holed connections, active relays cut) at `start` into each
// mode's run and heals after `dur`; renders that fail during the window
// are counted instead of aborting the simulation. Add -resilient to run
// the pipeline with retry, circuit breaking and stale-on-error enabled
// and compare the two error counts.
//
// By default users run closed-loop: each session starts after the previous
// one finishes, so offered load can never exceed capacity. With -arrival N
// sessions start open-loop at N sessions/second regardless of how the
// system is keeping up — the regime where overload actually happens —
// pausing -think between interactions. Add -sched to put the admission
// controller in front of the pool and report its counters.
//
// With -cluster N (N >= 2) the simulation switches to fleet mode: N
// in-process Data Server nodes coordinate admission through a shared
// kvstore bus (the clustertest harness), a hot user's sticky sessions
// saturate node 0, and the remaining users dispatch through the
// pressure-aware balancer. The run reports per-node admission counters
// and advisory pressure, and -metrics dumps include the sched.cluster.*
// series the coordinator publishes.
//
// With -cluster, -restart node:at:dur scripts a rolling restart: the
// named node goes down before round `at` and comes back `dur` rounds
// later (comma-separate specs to restart several nodes). Each user then
// also keeps a sticky dashboard session open across rounds, so the
// restart's blast radius is visible: the balancer blames the dead node's
// transport errors into ejection, routes new dispatch around it, and
// re-admits it only after a successful health probe. Add -drainfirst to
// take nodes down gracefully instead — the node drains first (new
// sessions refused, queued work shed with reason "draining", the
// draining bit published to peers over the digest bus), holds one round
// for stragglers, then goes down; sticky sessions get transparent
// failover, so the same restart completes without user-visible session
// errors.
//
// -users is the number of distinct simulated users; -sessions is the
// total number of dashboard sessions, distributed round-robin across the
// users (0 = one session per user). With -sched, the admission
// controller fair-queues hierarchically: across users first, then across
// each user's sessions — so `-users 3 -sessions 12` gives one greedy
// user no more than a third of the source no matter how many of the 12
// sessions are theirs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vizq/internal/cache"
	"vizq/internal/chaos"
	"vizq/internal/clustertest"
	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/obs"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/resilience"
	"vizq/internal/sched"
	"vizq/internal/tde/engine"
	"vizq/internal/vizql"
	"vizq/internal/workload"
)

func main() {
	users := flag.Int("users", 20, "number of distinct simulated users")
	sessionsFlag := flag.Int("sessions", 0, "total dashboard sessions, spread round-robin across users (0 = one per user)")
	interactions := flag.Int("interactions", 3, "interactions per user after the initial load")
	latency := flag.Duration("latency", 5*time.Millisecond, "remote request latency")
	rows := flag.Int("rows", 100_000, "backend fact rows")
	seed := flag.Int64("seed", 1, "interaction randomness seed")
	trace := flag.Bool("trace", false, "run one traced user after each mode and print its per-stage breakdown")
	metrics := flag.String("metrics", "", "dump process metrics after the run: text or json")
	outageSpec := flag.String("outage", "", "backend outage window as start:dur (e.g. 2s:1s), relative to each mode's run")
	resilient := flag.Bool("resilient", false, "enable the resilience layer: retry, circuit breaker, stale-on-error")
	timeout := flag.Duration("timeout", 2*time.Second, "per-render client timeout (applied when -outage or -arrival is set)")
	arrival := flag.Float64("arrival", 0, "open-loop session arrival rate in sessions/sec (0 = closed-loop)")
	think := flag.Duration("think", 0, "user think time between interactions")
	schedOn := flag.Bool("sched", false, "enable admission control (priority classes, bounded queues, load shedding)")
	clusterN := flag.Int("cluster", 0, "run N in-process Data Server nodes with cross-node admission coordination (fleet mode; most single-process flags don't apply)")
	restartFlag := flag.String("restart", "", "fleet mode: rolling-restart spec node:at:dur[,node:at:dur...] — node goes down before round at, back dur rounds later")
	drainFirst := flag.Bool("drainfirst", false, "fleet mode: drain each -restart node (shedding queued work as \"draining\") before taking it down, and give user sessions transparent failover")
	flag.Parse()
	if *metrics != "" && *metrics != "text" && *metrics != "json" {
		log.Fatalf("loadsim: -metrics must be text or json, got %q", *metrics)
	}
	if *users <= 0 {
		log.Fatalf("loadsim: -users must be positive, got %d", *users)
	}
	sessions := *sessionsFlag
	if sessions <= 0 {
		sessions = *users
	}
	restarts, err := parseRestarts(*restartFlag)
	if err != nil {
		log.Fatalf("loadsim: %v", err)
	}
	if (len(restarts) > 0 || *drainFirst) && *clusterN <= 1 {
		log.Fatal("loadsim: -restart and -drainfirst require -cluster N (N >= 2)")
	}
	if *clusterN > 1 {
		for _, rs := range restarts {
			if rs.node >= *clusterN {
				log.Fatalf("loadsim: -restart names node %d but the fleet has %d nodes", rs.node, *clusterN)
			}
		}
		if err := runCluster(*clusterN, *users, 2+*interactions, *rows, *latency, *seed, restarts, *drainFirst); err != nil {
			log.Fatal(err)
		}
		if err := dumpMetrics(*metrics); err != nil {
			log.Fatal(err)
		}
		return
	}
	var outageStart, outageDur time.Duration
	if *outageSpec != "" {
		parts := strings.SplitN(*outageSpec, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("loadsim: -outage must be start:dur (e.g. 2s:1s), got %q", *outageSpec)
		}
		var err error
		if outageStart, err = time.ParseDuration(parts[0]); err != nil {
			log.Fatalf("loadsim: bad -outage start: %v", err)
		}
		if outageDur, err = time.ParseDuration(parts[1]); err != nil {
			log.Fatalf("loadsim: bad -outage duration: %v", err)
		}
	}

	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: *rows, Days: 365, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), remote.Config{Latency: *latency, QueryDOP: 2})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// With -outage the pools dial through a chaos proxy so the backend can
	// be scripted dark and healed mid-run.
	backendAddr := srv.Addr()
	var proxy *chaos.Proxy
	if *outageSpec != "" {
		var err error
		if proxy, err = chaos.New(srv.Addr(), chaos.Healthy()); err != nil {
			log.Fatal(err)
		}
		defer proxy.Close()
		backendAddr = proxy.Addr()
	}

	for _, cached := range []bool{false, true} {
		mode := "caching OFF"
		opt := core.Options{DisableIntelligentCache: true, DisableLiteralCache: true}
		if cached {
			mode = "caching ON "
			opt = core.DefaultOptions()
		}
		var sc *sched.Scheduler
		if *schedOn {
			sc = sched.New(sched.Config{Limit: 8})
			opt.Scheduler = sc
		}
		if *resilient {
			opt.Resilience = &resilience.Config{
				MaxAttempts:       3,
				BaseBackoff:       10 * time.Millisecond,
				MaxBackoff:        100 * time.Millisecond,
				AttemptTimeout:    *timeout / 4,
				Seed:              *seed,
				BreakerMinSamples: 4,
				BreakerOpenFor:    500 * time.Millisecond,
				ServeStale:        true,
			}
		}
		pool := connection.NewPool(backendAddr, connection.PoolConfig{Max: 8})
		intel := cache.NewIntelligentCache(cache.DefaultOptions())
		lit := cache.NewLiteralCache(cache.DefaultOptions())
		proc := core.NewProcessor(pool, intel, lit, opt)
		backendBefore := srv.Stats().Queries

		// Schedule this mode's outage window relative to its own start.
		var outageTimers []*time.Timer
		if proxy != nil {
			outageTimers = append(outageTimers,
				time.AfterFunc(outageStart, func() {
					proxy.SetMode(chaos.Fault{Kind: chaos.Stall})
					proxy.KillActive()
				}),
				time.AfterFunc(outageStart+outageDur, proxy.Heal))
		}
		renderCtx := func(sess int) (context.Context, context.CancelFunc) {
			ctx := context.Background()
			if sc != nil {
				// Dashboard renders are interactive traffic. Sessions are
				// distributed round-robin across the simulated users, and the
				// scheduler fair-queues users first, sessions within a user
				// second.
				ctx = sched.WithClass(ctx, sched.Interactive)
				ctx = sched.WithUser(ctx, fmt.Sprintf("user-%d", sess%*users))
				ctx = sched.WithSession(ctx, fmt.Sprintf("sess-%d", sess))
			}
			if proxy == nil && *arrival == 0 {
				return ctx, func() {}
			}
			// Under an outage or open-loop overload, renders must be able to
			// lose: an unbounded wait would wedge the whole simulation.
			return context.WithTimeout(ctx, *timeout)
		}
		var mu sync.Mutex
		var renderErrors, shedCount int
		var loadTimes, interactTimes []time.Duration

		// runUser plays one session: initial load, then interactions. All
		// outcome recording is mutex-guarded so open-loop mode can run many
		// users concurrently.
		runUser := func(u int, rng *rand.Rand) {
			sess, err := vizql.NewSession(vizql.FlightsDashboard("flights"), proc)
			if err != nil {
				log.Fatal(err)
			}
			record := func(err error, d time.Duration, times *[]time.Duration) bool {
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					*times = append(*times, d)
					return true
				case errors.Is(err, sched.ErrShed):
					shedCount++
				default:
					// During an outage window a failed render is an expected,
					// countable outcome, not a reason to abort the simulation.
					renderErrors++
				}
				return false
			}
			t0 := time.Now()
			ctx, cancel := renderCtx(u)
			_, err = sess.Render(ctx)
			cancel()
			if !record(err, time.Since(t0), &loadTimes) {
				return
			}
			for i := 0; i < *interactions; i++ {
				if *think > 0 {
					time.Sleep(*think) //vizlint:allow sleep -- user think time is part of the simulated workload
				}
				markets := sess.Result("Market")
				if markets == nil || markets.N == 0 {
					break
				}
				// Users mostly click popular values (top rows), echoing each
				// other's interactions — that is what makes shared caches pay.
				pick := rng.Intn(5)
				if pick >= markets.N {
					pick = markets.N - 1
				}
				if err := sess.Select("Market", markets.Value(pick, 0)); err != nil {
					log.Fatal(err)
				}
				t0 = time.Now()
				ctx, cancel := renderCtx(u)
				_, err := sess.Render(ctx)
				cancel()
				record(err, time.Since(t0), &interactTimes)
			}
		}

		start := time.Now()
		if *arrival > 0 {
			// Open loop: sessions start on the arrival clock whether or not
			// the system is keeping up — offered load is the independent
			// variable, exactly what admission control exists to survive.
			interval := time.Duration(float64(time.Second) / *arrival)
			var wg sync.WaitGroup
			for u := 0; u < sessions; u++ {
				wg.Add(1)
				go func(u int) {
					defer wg.Done()
					runUser(u, rand.New(rand.NewSource(*seed+int64(u))))
				}(u)
				time.Sleep(interval) //vizlint:allow sleep -- open-loop arrival pacing is the workload under test
			}
			wg.Wait()
		} else {
			rng := rand.New(rand.NewSource(*seed))
			for u := 0; u < sessions; u++ {
				runUser(u, rng)
			}
		}
		for _, tm := range outageTimers {
			tm.Stop()
		}
		if proxy != nil {
			proxy.Heal() // in case the run finished inside the outage window
		}
		wall := time.Since(start)
		backend := srv.Stats().Queries - backendBefore
		st := proc.Stats()
		fmt.Printf("%s  users=%d sessions=%d interactions=%d", mode, *users, sessions, *interactions)
		if *arrival > 0 {
			fmt.Printf(" arrival=%.1f/s think=%v", *arrival, *think)
		}
		fmt.Println()
		fmt.Printf("  initial load  p50=%v p95=%v\n", pct(loadTimes, 50), pct(loadTimes, 95))
		fmt.Printf("  interaction   p50=%v p95=%v\n", pct(interactTimes, 50), pct(interactTimes, 95))
		fmt.Printf("  wall=%v backendQueries=%d cacheHits=%d localAnswers=%d fused=%d\n",
			wall.Round(time.Millisecond), backend, st.CacheHits, st.LocalAnswers, st.FusedAway)
		ist, lst := intel.Stats(), lit.Stats()
		fmt.Printf("  cache shards  intelligent=%d literal=%d  evictions=%d/%d\n",
			intel.Shards(), lit.Shards(), ist.Evictions, lst.Evictions)
		fmt.Printf("  singleflight  leader=%d shared=%d\n", st.FlightLeader, st.FlightShared)
		if proxy != nil || *resilient || *arrival > 0 {
			line := fmt.Sprintf("  resilience    renderErrors=%d staleServed=%d", renderErrors, st.StaleServed)
			if rs := proc.Resilience(); rs != nil {
				bst := rs.Breaker().Stats()
				line += fmt.Sprintf(" breakerOpened=%d fastFails=%d", bst.Opened, bst.FastFails)
			}
			fmt.Println(line)
		}
		if sc != nil {
			sst := sc.Stats()
			fmt.Printf("  scheduler     admitted=%d/%d (interactive/background, %d direct) shed=%d (%d deadline, %d queue-full of which %d user-quota) limit=%d shedRenders=%d\n",
				sst.AdmittedInteractive, sst.AdmittedBackground, sst.AdmittedDirect,
				sst.Shed, sst.ShedDeadline, sst.ShedQueueFull, sst.ShedUserQueueFull, sst.Limit, shedCount)
		}
		fmt.Println()
		if *trace {
			if err := traceUser(proc, *interactions); err != nil {
				log.Fatal(err)
			}
		}
		pool.Close()
	}

	if err := dumpMetrics(*metrics); err != nil {
		log.Fatal(err)
	}
}

func dumpMetrics(kind string) error {
	switch kind {
	case "text":
		return obs.Default.WriteText(os.Stdout)
	case "json":
		return obs.Default.WriteJSON(os.Stdout)
	}
	return nil
}

// restartSpec schedules one node's restart in fleet mode: the node goes
// down before round `at` (after its drain round, with -drainfirst) and
// comes back before round `at+dur`.
type restartSpec struct {
	node, at, dur int
}

// parseRestarts parses -restart's node:at:dur[,node:at:dur...] syntax.
func parseRestarts(spec string) ([]restartSpec, error) {
	if spec == "" {
		return nil, nil
	}
	var out []restartSpec
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("-restart must be node:at:dur (e.g. 0:1:2), got %q", part)
		}
		var rs restartSpec
		for i, dst := range []*int{&rs.node, &rs.at, &rs.dur} {
			n, err := strconv.Atoi(fields[i])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("-restart %q: %q is not a non-negative integer", part, fields[i])
			}
			*dst = n
		}
		if rs.dur == 0 {
			return nil, fmt.Errorf("-restart %q: dur must be at least 1 round", part)
		}
		out = append(out, rs)
	}
	return out, nil
}

// runCluster drives fleet mode: `nodes` in-process Data Servers publish
// load digests through a shared kvstore and blend peer pressure into
// admission, while the balancer steers dispatch around hot nodes. Each
// round a hot user bursts sticky queries at node 0 (enough to overflow
// its queues) and every simulated user dispatches through the balancer;
// between rounds the harness ticks the fake digest clock so coordination
// state — and the sched.cluster.* metrics — advance deterministically.
//
// With restarts, each user also holds a sticky dashboard session across
// rounds and the scripted nodes go down and come back (see -restart);
// after every round each node is offered one half-open health probe, so
// a killed node is ejected by blame and re-admitted only once a probe
// succeeds against its restarted backend.
func runCluster(nodes, users, rounds, rows int, latency time.Duration, seed int64, restarts []restartSpec, drainFirst bool) error {
	if rows > 20_000 {
		rows = 20_000 // fleet mode measures admission, not scan throughput
	}
	cl, err := clustertest.New(clustertest.Config{
		Nodes:          nodes,
		Rows:           rows,
		Seed:           seed,
		PoolMax:        2,
		Scheduler:      sched.Config{MaxQueue: 16, MaxUserQueue: 4, AdjustEvery: 1 << 30},
		BackendLatency: latency,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	var mu sync.Mutex
	var qseq int64
	var ok, shed, failed, hotOK, hotShed int
	record := func(err error, hot bool) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil && hot:
			hotOK++
		case err == nil:
			ok++
		case errors.Is(err, sched.ErrShed) && hot:
			hotShed++
		case errors.Is(err, sched.ErrShed):
			shed++
		default:
			failed++
		}
	}
	next := func() *query.Query {
		mu.Lock()
		qseq++
		q := qseq
		mu.Unlock()
		return clustertest.DistinctQuery(int(q))
	}

	// With -restart, every user keeps one sticky dashboard session open
	// across rounds (round-robin over nodes); -drainfirst gives them
	// transparent failover.
	var sessions []*clustertest.Session
	if len(restarts) > 0 {
		for u := 0; u < users; u++ {
			s, err := cl.NewSession(fmt.Sprintf("sess-user-%d", u), u%nodes, drainFirst)
			if err != nil {
				return err
			}
			defer s.Close()
			sessions = append(sessions, s)
		}
	}
	var sessOK, sessErr int

	for r := 0; r < rounds; r++ {
		for _, rs := range restarts {
			downAt := rs.at
			if drainFirst {
				// Graceful shutdown: drain one round ahead of the kill, so
				// stragglers that raced the digest shed fast with reason
				// "draining" instead of queueing into a dying node.
				downAt = rs.at + 1
				if r == rs.at {
					dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					if err := cl.DrainNode(dctx, rs.node); err != nil {
						fmt.Printf("  drain node-%d: %v\n", rs.node, err)
					}
					cancel()
					cl.Tick() // the draining bit reaches every balancer pre-round
				}
			}
			if r == downAt && r < rs.at+rs.dur {
				cl.KillNode(rs.node)
			}
			if r == rs.at+rs.dur {
				cl.RestartNode(rs.node)
			}
		}

		var wg sync.WaitGroup
		// The hot user bursts 8 sticky queries at node 0: two run, four
		// queue at its user cap, the rest shed — so node 0's digest
		// advertises pressure every round.
		for h := 0; h < 8; h++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				record(cl.QueryOn(ctx, 0, "hot", next()), true)
			}()
		}
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				_, err := cl.Dispatch(ctx, fmt.Sprintf("user-%d", u), next())
				record(err, false)
			}(u)
		}
		// Sticky sessions render once per round, riding out any restart.
		for _, s := range sessions {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := s.Query(ctx, next()); err != nil {
				sessErr++
			} else {
				sessOK++
			}
			cancel()
		}
		wg.Wait()
		cl.Tick()
		if len(restarts) > 0 {
			// Offer each node a half-open probe: a no-op unless the node is
			// ejected and past its cooldown, so only restarted backends get
			// re-admitted.
			for i := 0; i < nodes; i++ {
				cl.ProbeNode(i)
			}
		}
	}
	// Bring back anything scripted to outlive the run.
	for _, rs := range restarts {
		cl.RestartNode(rs.node)
	}

	fmt.Printf("cluster mode  nodes=%d users=%d rounds=%d latency=%v\n", nodes, users, rounds, latency)
	fmt.Printf("  balanced traffic ok=%d shed=%d errors=%d   hot user (node-0) ok=%d shed=%d\n",
		ok, shed, failed, hotOK, hotShed)
	for i := 0; i < nodes; i++ {
		st := cl.Scheduler(i).Stats()
		fmt.Printf("  node-%d  admitted=%d/%d (%d direct) shed=%d (%d cluster) limit=%d peers=%d pressure=%.2f state=%s\n",
			i, st.AdmittedInteractive, st.AdmittedBackground, st.AdmittedDirect,
			st.Shed, st.ShedClusterPressure, st.Limit, st.ClusterPeers, cl.Balancer.Pressure(i),
			cl.Balancer.State(i))
	}
	if len(restarts) > 0 {
		moves := 0
		for _, s := range sessions {
			moves += s.Moves()
		}
		var drainSheds int64
		for i := 0; i < nodes; i++ {
			drainSheds += cl.Scheduler(i).Stats().ShedDraining
		}
		fmt.Printf("  sessions  ok=%d errors=%d moves=%d (drainfirst=%v)\n", sessOK, sessErr, moves, drainFirst)
		fmt.Printf("  lifecycle ejects=%d probes=%d (failed=%d) readmits=%d drainSheds=%d\n",
			obs.C("balancer.health.eject").Value(), obs.C("balancer.health.probe").Value(),
			obs.C("balancer.health.probe_fail").Value(), obs.C("balancer.health.readmit").Value(),
			drainSheds)
	}
	fmt.Println()
	return nil
}

// traceUser replays one user session under a tracer (outside the timed run)
// and prints the aggregated per-stage latency breakdown.
func traceUser(proc *core.Processor, interactions int) error {
	tr := obs.New()
	ctx := obs.WithTracer(context.Background(), tr)
	sess, err := vizql.NewSession(vizql.FlightsDashboard("flights"), proc)
	if err != nil {
		return err
	}
	// A render error (e.g. a breaker still cooling down after an -outage
	// run) is part of what the trace should show, not a fatal condition.
	if _, err := sess.Render(ctx); err != nil {
		fmt.Printf("  traced user: initial load failed: %v\n", err)
	}
	for i := 0; i < interactions; i++ {
		markets := sess.Result("Market")
		if markets == nil || markets.N == 0 {
			break
		}
		if err := sess.Select("Market", markets.Value(i%markets.N, 0)); err != nil {
			return err
		}
		if _, err := sess.Render(ctx); err != nil {
			fmt.Printf("  traced user: interaction %d failed: %v\n", i, err)
		}
	}
	fmt.Printf("  stage breakdown (1 traced user, untimed):\n%s\n", obs.FormatStages(tr.Stages()))
	return nil
}

func pct(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := len(s) * p / 100
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i].Round(100 * time.Microsecond)
}
