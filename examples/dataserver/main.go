// Data Server example (Sect. 5): publish a data source with shared
// calculations and row-level user filters, connect several clients, and use
// in-memory temporary tables for a large categorical filter. The second
// client's identical query is served from the shared pipeline cache without
// touching the database.
package main

import (
	"context"
	"fmt"
	"log"

	"vizq/internal/core"
	"vizq/internal/dataserver"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

func main() {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 120_000, Days: 365, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	backend := remote.NewServer(engine.New(db), remote.Config{})
	if err := backend.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer backend.Close()

	ds := dataserver.NewServer(dataserver.Config{PipelineOptions: core.DefaultOptions()})
	err = ds.Publish(&dataserver.PublishedSource{
		Name:    "FAA Flights",
		Backend: backend.Addr(),
		View:    query.View{Table: "flights"},
		Calculations: map[string]string{
			// Defined once on the server, usable by every workbook.
			"Weekday":  "(weekday date)",
			"LongHaul": "(if (> distance 1500) \"long\" \"short\")",
		},
		UserFilters: map[string][]query.Filter{
			"west_analyst": {query.InFilter("origin",
				storage.StrValue("LAX"), storage.StrValue("SFO"), storage.StrValue("SEA"))},
		},
		BackendSupportsTempTables: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Client 1: a manager sees everything; uses the shared calculation.
	mgr, md, err := ds.Connect("FAA Flights", "manager")
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	fmt.Printf("connected to %q (table %s, temp tables: %v, calcs: %v)\n\n",
		md.Source, md.Table, md.SupportsTempTables, md.Calculations)

	res, err := mgr.Query(ctx, &query.Query{
		Dims:     []query.Dim{{Col: "LongHaul"}},
		Measures: []query.Measure{{Fn: query.Count, As: "flights"}, {Fn: query.Avg, Col: "delay", As: "avgdelay"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== manager: flights by LongHaul (shared calculation) ==\n%s\n", res)

	// Client 2: a regional analyst is row-filtered server-side.
	analyst, _, err := ds.Connect("FAA Flights", "west_analyst")
	if err != nil {
		log.Fatal(err)
	}
	defer analyst.Close()
	res, err = analyst.Query(ctx, &query.Query{
		Dims:     []query.Dim{{Col: "origin"}},
		Measures: []query.Measure{{Fn: query.Count, As: "flights"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== west_analyst: origins visible through the user filter ==\n%s\n", res)

	// Temporary tables: the manager pins a carrier list once and reuses it.
	carriers := []storage.Value{
		storage.StrValue("WN"), storage.StrValue("AA"), storage.StrValue("DL"), storage.StrValue("UA"),
	}
	if err := mgr.CreateTempTable("majors", "carrier", carriers); err != nil {
		log.Fatal(err)
	}
	// The temp table itself answers without the database.
	before := backend.Stats().Queries
	domain, err := mgr.Query(ctx, &query.Query{
		View: query.View{Table: "majors"},
		Dims: []query.Dim{{Col: "carrier"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== temp table domain (answered in memory, backend queries unchanged: %v) ==\n%s\n",
		backend.Stats().Queries == before, domain)

	res, err = mgr.Query(ctx, &query.Query{
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "flights"}},
		Filters:  []query.Filter{query.TempFilter("carrier", "majors")},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== flights for the pinned carrier list ==\n%s\n", res)

	// Cross-client caching: repeat the manager's first query as the analyst
	// of a different session; the backend sees no new query.
	mgr2, _, err := ds.Connect("FAA Flights", "manager2")
	if err != nil {
		log.Fatal(err)
	}
	defer mgr2.Close()
	before = backend.Stats().Queries
	if _, err = mgr2.Query(ctx, &query.Query{
		Dims:     []query.Dim{{Col: "LongHaul"}},
		Measures: []query.Measure{{Fn: query.Count, As: "flights"}, {Fn: query.Avg, Col: "delay", As: "avgdelay"}},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-client cache hit (no new backend queries): %v\n", backend.Stats().Queries == before)
	fmt.Printf("data server stats: %+v\n", ds.Stats())
}
