// Quickstart: build a flights extract, save it as a single-file database,
// reopen it and run TQL queries through the TDE — parallel plans included.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vizq/internal/tde/engine"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

func main() {
	// 1. Generate a synthetic FAA-style dataset and pack it into a .tde file.
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{
		Rows: 200_000, Days: 365, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "vizq-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "flights.tde")
	if err := storage.SaveDatabase(db, path); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("extract written: %s (%d KiB, single file)\n\n", path, fi.Size()/1024)

	// 2. Reopen and query.
	eng, err := engine.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	queries := []struct{ title, tql string }{
		{"Flights and average delay by carrier", `
			(order
				(aggregate (table flights)
					(groupby carrier)
					(aggs (flights count *) (avgdelay avg delay)))
				(desc flights))`},
		{"Top 5 busiest markets over 1000 miles", `
			(topn
				(aggregate (select (table flights) (> distance 1000))
					(groupby market)
					(aggs (flights count *)))
				5 (desc flights) (asc market))`},
		{"Cancellations by weekday", `
			(order
				(aggregate (select (table flights) (= cancelled true))
					(groupby (wd (weekday date)))
					(aggs (cancelled count *)))
				(asc wd))`},
	}
	for _, q := range queries {
		res, err := eng.Query(ctx, q.tql)
		if err != nil {
			log.Fatalf("%s: %v", q.title, err)
		}
		fmt.Printf("== %s ==\n%s\n", q.title, res)
	}

	// 3. Inspect an optimized parallel plan.
	p, err := eng.Plan(`(aggregate (table flights) (groupby carrier) (aggs (n count *) (a avg delay)))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Parallel plan (local/global aggregation, Sect. 4.2) ==\n%s\n", plan.Format(p))
}
