// Flights dashboard: the paper's Fig. 2 scenario end to end. A dashboard
// with Market, Carrier and Airline Name zones linked by interactive filter
// actions renders against a simulated remote database through the full
// pipeline — batch optimization, query fusion, two-level caching and
// concurrent connections. The session walks through the exact HNL-OGG
// selection-elimination interaction the paper describes.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/storage"
	"vizq/internal/vizql"
	"vizq/internal/workload"
)

func main() {
	// A remote "warehouse" with 2ms request latency.
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 150_000, Days: 365, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), remote.Config{Latency: 2 * time.Millisecond, QueryDOP: 2})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	pool := connection.NewPool(srv.Addr(), connection.PoolConfig{Max: 4})
	defer pool.Close()
	proc := core.NewProcessor(pool, nil, nil, core.DefaultOptions())

	sess, err := vizql.NewSession(vizql.FlightsDashboard("flights"), proc)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	show := func(step string, rep *vizql.RenderReport) {
		fmt.Printf("--- %s ---\n", step)
		fmt.Printf("iterations=%d batches=%v elapsed=%v invalidated=%v\n",
			rep.Iterations, rep.BatchSizes, rep.Elapsed.Round(time.Millisecond), rep.Invalidated)
		st := proc.Stats()
		fmt.Printf("pipeline: remote=%d cacheHits=%d local=%d fused=%d\n",
			st.RemoteQueries, st.CacheHits, st.LocalAnswers, st.FusedAway)
		carrier := sess.Result("Carrier")
		fmt.Println("Carrier zone (top 5 by flights):")
		fmt.Println(carrier)
	}

	rep, err := sess.Render(ctx)
	if err != nil {
		log.Fatal(err)
	}
	show("initial load", rep)

	// Select a market, as in Fig. 2 (LAX-SFO).
	if err := sess.Select("Market", storage.StrValue("LAX-SFO")); err != nil {
		log.Fatal(err)
	}
	rep, err = sess.Render(ctx)
	if err != nil {
		log.Fatal(err)
	}
	show(`select Market = "LAX-SFO"`, rep)

	// Select a carrier serving that market.
	carrier := sess.Result("Carrier").Value(0, 0)
	if err := sess.Select("Carrier", carrier); err != nil {
		log.Fatal(err)
	}
	rep, err = sess.Render(ctx)
	if err != nil {
		log.Fatal(err)
	}
	show(fmt.Sprintf("select Carrier = %q", carrier.S), rep)

	// Switch to HNL-OGG: if the selected carrier does not fly it, the
	// selection is eliminated and the Airline Name zone requeries without
	// the carrier filter — a second batch iteration.
	if err := sess.Select("Market", storage.StrValue("HNL-OGG")); err != nil {
		log.Fatal(err)
	}
	rep, err = sess.Render(ctx)
	if err != nil {
		log.Fatal(err)
	}
	show(`select Market = "HNL-OGG" (may invalidate the carrier selection)`, rep)

	fmt.Println("Airline Name zone after the interaction:")
	fmt.Println(sess.Result("Airline Name"))
}
