// Shadow extract example (Sect. 4.4): analyze a CSV file with and without
// shadow extracts. Without one, every query re-parses the file; with one,
// the first query pays an extraction cost and the rest run against the TDE.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"vizq/internal/extract"
)

func main() {
	dir, err := os.MkdirTemp("", "vizq-shadow")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sales.csv")
	writeSalesCSV(path, 150_000)
	fi, _ := os.Stat(path)
	fmt.Printf("data file: %s (%d KiB)\n\n", path, fi.Size()/1024)

	queries := []string{
		`(aggregate (table sales) (groupby region) (aggs (orders count *) (total sum amount)))`,
		`(aggregate (select (table sales) (> amount 400)) (groupby product) (aggs (orders count *)))`,
		`(topn (aggregate (table sales) (groupby product) (aggs (total sum amount))) 5 (desc total))`,
		`(aggregate (table sales) (groupby (m (month day))) (aggs (orders count *)))`,
	}
	ctx := context.Background()

	// Baseline: parse the file for every query (the Jet-era behaviour).
	start := time.Now()
	for _, q := range queries {
		if _, err := extract.QueryWithoutExtract(ctx, path, "sales", q, extract.ParseOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	noShadow := time.Since(start)

	// Shadow extract: one-time parse, then TDE all the way.
	mgr := extract.NewShadowManager()
	start = time.Now()
	for i, q := range queries {
		res, err := mgr.Query(ctx, path, "sales", q, extract.ParseOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("== first query result ==\n%s\n", res)
		}
	}
	withShadow := time.Since(start)

	fmt.Printf("4 queries, re-parsing per query: %v\n", noShadow.Round(time.Millisecond))
	fmt.Printf("4 queries, shadow extract:       %v\n", withShadow.Round(time.Millisecond))
	fmt.Printf("speedup: %.1fx\n", float64(noShadow)/float64(withShadow))

	// The extract invalidates itself when the file changes.
	writeSalesCSV(path, 150_001)
	_, extracted, err := mgr.Engine(path, "sales", extract.ParseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file changed -> re-extracted: %v\n", extracted)
}

func writeSalesCSV(path string, rows int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(99))
	regions := []string{"east", "west", "north", "south"}
	products := []string{"widget", "gadget", "doodad", "gizmo", "sprocket", "flange"}
	fmt.Fprintln(f, "day,region,product,amount")
	for i := 0; i < rows; i++ {
		day := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, i%365)
		fmt.Fprintf(f, "%s,%s,%s,%.2f\n",
			day.Format("2006-01-02"),
			regions[rng.Intn(len(regions))],
			products[rng.Intn(len(products))],
			rng.Float64()*500+10)
	}
}
