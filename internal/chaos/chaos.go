// Package chaos is a deterministic fault-injection harness for the query
// stack's network path. It grew out of the ad-hoc proxy in the connection
// pool's stress test: a protocol-agnostic TCP proxy that relays client
// connections to a backend and applies a per-connection fault drawn from a
// seeded, reproducible schedule. The pool, retry, and circuit-breaker
// layers under test see genuine EOF/reset/timeout transport errors —
// exactly what a flaky or dying database produces — but the fault sequence
// is a pure function of the schedule and the accept order, so failures
// reproduce run after run instead of depending on timing luck.
//
// Fault kinds model the distinct ways a backend dies (Sect. 5 of the paper
// puts the Data Server in front of 40+ customer-operated backends, which
// fail in all of these ways):
//
//	Refuse    – the TCP handshake completes but the connection is torn
//	            down before a byte moves: the client's first round trip
//	            fails with reset/EOF (a crashed process behind a live
//	            load balancer).
//	Stall     – accept, then black-hole: bytes are accepted but nothing
//	            is ever relayed, so the client blocks until its deadline
//	            (a wedged server, the expensive failure mode).
//	CutMid    – relay the request, then cut the connection partway into
//	            the response frame (a mid-query crash).
//	Trickle   – relay the response one byte at a time with a fixed delay
//	            (a saturated or degraded link).
//	KillAfter – relay faithfully, then cut both directions after a fixed
//	            delay (the original stress-test behaviour).
//
// A Schedule assigns a Fault to each accepted connection by index. Mode
// overrides (SetMode/Heal) switch every new connection to one fault for
// the duration of a simulated outage window, and KillActive cuts the
// relays already in flight — together they script "backend goes dark at
// t=X for D seconds" scenarios for experiments and loadsim.
package chaos

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Kind enumerates fault behaviours.
type Kind int

const (
	// None relays the connection faithfully.
	None Kind = iota
	// Refuse tears the connection down immediately after accept.
	Refuse
	// Stall accepts and never relays a byte.
	Stall
	// CutMid relays Bytes response bytes, then cuts the connection.
	CutMid
	// Trickle relays the response one byte per Delay.
	Trickle
	// KillAfter relays both directions, then cuts after Delay.
	KillAfter
)

// String names the kind for test tables and logs.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Refuse:
		return "refuse"
	case Stall:
		return "stall"
	case CutMid:
		return "cut-mid-frame"
	case Trickle:
		return "trickle"
	case KillAfter:
		return "kill-after"
	}
	return "unknown"
}

// Fault is one connection's scripted behaviour.
type Fault struct {
	Kind Kind
	// Delay is the relay time before a KillAfter cut, or the per-byte
	// delay for Trickle.
	Delay time.Duration
	// Bytes is how many backend->client bytes CutMid relays before
	// cutting; 0 cuts before the first response byte.
	Bytes int
}

// Schedule maps the i-th accepted connection (0-based) to its fault.
// Implementations must be safe for calls from the accept goroutine.
type Schedule interface {
	Fault(conn int) Fault
}

// ScheduleFunc adapts a function to the Schedule interface.
type ScheduleFunc func(conn int) Fault

// Fault implements Schedule.
func (f ScheduleFunc) Fault(conn int) Fault { return f(conn) }

// Healthy is the all-None schedule.
func Healthy() Schedule {
	return ScheduleFunc(func(int) Fault { return Fault{Kind: None} })
}

// Seq replays the given faults in accept order, then heals: connection i
// gets faults[i], and every connection past the end gets None. Seq(f, f)
// is the canonical "N failures then heal" schedule retry tests need.
func Seq(faults ...Fault) Schedule {
	return ScheduleFunc(func(conn int) Fault {
		if conn < len(faults) {
			return faults[conn]
		}
		return Fault{Kind: None}
	})
}

// Repeat applies the same fault to every connection.
func Repeat(f Fault) Schedule {
	return ScheduleFunc(func(int) Fault { return f })
}

// RandomKill reproduces the original stress-test schedule: each connection
// is killed with probability p after a delay uniform in [minDelay,
// maxDelay), decided by a seeded generator. The fault for connection i is
// a pure function of (seed, i), so concurrent accept order does not change
// any individual connection's fate.
func RandomKill(seed int64, p float64, minDelay, maxDelay time.Duration) Schedule {
	var mu sync.Mutex
	decided := []Fault{}
	rng := rand.New(rand.NewSource(seed))
	return ScheduleFunc(func(conn int) Fault {
		mu.Lock()
		defer mu.Unlock()
		for len(decided) <= conn {
			f := Fault{Kind: None}
			if rng.Float64() < p {
				span := maxDelay - minDelay
				d := minDelay
				if span > 0 {
					d += time.Duration(rng.Int63n(int64(span)))
				}
				f = Fault{Kind: KillAfter, Delay: d}
			}
			decided = append(decided, f)
		}
		return decided[conn]
	})
}

// Proxy is the fault-injecting TCP relay.
type Proxy struct {
	ln      net.Listener
	backend string

	mu       sync.Mutex
	sched    Schedule
	override *Fault
	conns    []net.Conn
	accepted int
	closed   bool
}

// New starts a proxy in front of backend applying sched to each accepted
// connection. Close releases the listener and every tracked connection.
func New(backend string, sched Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if sched == nil {
		sched = Healthy()
	}
	p := &Proxy{ln: ln, backend: backend, sched: sched}
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — point the client (pool) here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted reports how many connections the proxy has accepted.
func (p *Proxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// SetMode overrides the schedule: every connection accepted from now on
// gets fault f, regardless of index. Use with KillActive to start an
// outage window; Heal ends it.
func (p *Proxy) SetMode(f Fault) {
	p.mu.Lock()
	p.override = &f
	p.mu.Unlock()
}

// Heal removes the SetMode override, returning control to the schedule.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.override = nil
	p.mu.Unlock()
}

// KillActive cuts every relay currently in flight (the moment an outage
// begins, established connections die too).
func (p *Proxy) KillActive() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close shuts the listener and every tracked connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		idx := p.accepted
		p.accepted++
		fault := p.sched.Fault(idx)
		if p.override != nil {
			fault = *p.override
		}
		p.mu.Unlock()
		go p.serve(client, fault)
	}
}

// track registers conns for cleanup; returns false if the proxy is closed
// (the conns are closed instead).
func (p *Proxy) track(cs ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		for _, c := range cs {
			c.Close()
		}
		return false
	}
	p.conns = append(p.conns, cs...)
	return true
}

func (p *Proxy) serve(client net.Conn, fault Fault) {
	switch fault.Kind {
	case Refuse:
		client.Close()
		return
	case Stall:
		// Hold the connection open without relaying; the client blocks on
		// its read until its deadline fires or the proxy closes.
		p.track(client)
		return
	}

	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		client.Close()
		return
	}
	if !p.track(client, server) {
		return
	}

	switch fault.Kind {
	case CutMid:
		go func() { _, _ = io.Copy(server, client); server.Close() }()
		go func() {
			if fault.Bytes > 0 {
				_, _ = io.CopyN(client, server, int64(fault.Bytes))
			}
			client.Close()
			server.Close()
		}()
	case Trickle:
		go func() { _, _ = io.Copy(server, client); server.Close() }()
		go func() {
			buf := make([]byte, 1)
			for {
				n, err := server.Read(buf)
				if n > 0 {
					//vizlint:allow sleep -- simulated degraded-link pacing
					time.Sleep(fault.Delay)
					if _, werr := client.Write(buf[:n]); werr != nil {
						break
					}
				}
				if err != nil {
					break
				}
			}
			client.Close()
			server.Close()
		}()
	default: // None, KillAfter
		go func() { _, _ = io.Copy(server, client); server.Close() }()
		go func() { _, _ = io.Copy(client, server); client.Close() }()
		if fault.Kind == KillAfter {
			go func() {
				//vizlint:allow sleep -- scheduled mid-flight connection kill
				time.Sleep(fault.Delay)
				client.Close()
				server.Close()
			}()
		}
	}
}
