package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoBackend answers every connection: it reads one byte and then writes
// the fixed payload, repeatedly, until the peer hangs up. One byte in ->
// payload out keeps request/response framing trivial for fault tests.
func echoBackend(t *testing.T, payload []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 1)
				for {
					if _, err := io.ReadFull(c, buf); err != nil {
						return
					}
					if _, err := c.Write(payload); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func startProxy(t *testing.T, backend string, sched Schedule) *Proxy {
	t.Helper()
	p, err := New(backend, sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// roundTrip dials the proxy, sends one request byte, and reads up to
// len(payload) response bytes under the given deadline.
func roundTrip(t *testing.T, addr string, want int, deadline time.Duration) ([]byte, error) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(deadline))
	if _, err := c.Write([]byte{'?'}); err != nil {
		return nil, err
	}
	buf := make([]byte, want)
	n, err := io.ReadFull(c, buf)
	return buf[:n], err
}

var payload = []byte("0123456789abcdef")

func TestNoneRelaysFaithfully(t *testing.T) {
	backend := echoBackend(t, payload)
	p := startProxy(t, backend, Healthy())
	got, err := roundTrip(t, p.Addr(), len(payload), time.Second)
	if err != nil {
		t.Fatalf("healthy relay failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: %q", got)
	}
}

func TestRefuseFailsFirstUse(t *testing.T) {
	backend := echoBackend(t, payload)
	p := startProxy(t, backend, Repeat(Fault{Kind: Refuse}))
	if _, err := roundTrip(t, p.Addr(), len(payload), time.Second); err == nil {
		t.Fatal("refused connection completed a round trip")
	}
}

func TestStallBlocksUntilDeadline(t *testing.T) {
	backend := echoBackend(t, payload)
	p := startProxy(t, backend, Repeat(Fault{Kind: Stall}))
	start := time.Now()
	_, err := roundTrip(t, p.Addr(), len(payload), 100*time.Millisecond)
	if err == nil {
		t.Fatal("stalled connection returned data")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("stall produced %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("stall returned after %v, before the deadline", elapsed)
	}
}

func TestCutMidFrameDeliversExactPrefix(t *testing.T) {
	backend := echoBackend(t, payload)
	const cut = 5
	p := startProxy(t, backend, Repeat(Fault{Kind: CutMid, Bytes: cut}))
	got, err := roundTrip(t, p.Addr(), len(payload), time.Second)
	if err == nil {
		t.Fatal("cut connection delivered the full payload")
	}
	if len(got) != cut || !bytes.Equal(got, payload[:cut]) {
		t.Fatalf("got %d bytes %q, want the first %d", len(got), got, cut)
	}
}

func TestTricklePacesBytes(t *testing.T) {
	backend := echoBackend(t, payload)
	const perByte = 2 * time.Millisecond
	p := startProxy(t, backend, Repeat(Fault{Kind: Trickle, Delay: perByte}))
	start := time.Now()
	got, err := roundTrip(t, p.Addr(), len(payload), 5*time.Second)
	if err != nil {
		t.Fatalf("trickle should complete, got %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: %q", got)
	}
	if elapsed := time.Since(start); elapsed < time.Duration(len(payload))*perByte {
		t.Fatalf("trickle finished in %v, faster than %d bytes at %v/byte", elapsed, len(payload), perByte)
	}
}

func TestKillAfterCutsEstablishedConn(t *testing.T) {
	backend := echoBackend(t, payload)
	p := startProxy(t, backend, Repeat(Fault{Kind: KillAfter, Delay: 30 * time.Millisecond}))
	c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	// First round trip beats the kill timer.
	if _, err := c.Write([]byte{'?'}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("round trip before the kill failed: %v", err)
	}
	// Reads after the kill fire see EOF/reset.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Write([]byte{'?'}); err != nil {
			return
		}
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
	}
	t.Fatal("connection survived KillAfter")
}

// TestSeqHealsAfterScriptedFailures is the N-failures-then-heal shape
// retry logic depends on: the first len(faults) connections fail, every
// later one succeeds.
func TestSeqHealsAfterScriptedFailures(t *testing.T) {
	backend := echoBackend(t, payload)
	p := startProxy(t, backend, Seq(Fault{Kind: Refuse}, Fault{Kind: Refuse}))
	for i := 0; i < 2; i++ {
		if _, err := roundTrip(t, p.Addr(), len(payload), time.Second); err == nil {
			t.Fatalf("scripted failure %d succeeded", i)
		}
	}
	got, err := roundTrip(t, p.Addr(), len(payload), time.Second)
	if err != nil {
		t.Fatalf("healed connection failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted after heal: %q", got)
	}
}

// TestRandomKillDeterministic: the same seed yields the same per-index
// fate sequence, independent of query order — this is what makes stress
// runs reproducible.
func TestRandomKillDeterministic(t *testing.T) {
	a := RandomKill(42, 0.5, time.Millisecond, 20*time.Millisecond)
	b := RandomKill(42, 0.5, time.Millisecond, 20*time.Millisecond)
	// Interrogate b out of order; per-index fates must still agree.
	var fromB [64]Fault
	for i := 63; i >= 0; i-- {
		fromB[i] = b.Fault(i)
	}
	kills := 0
	for i := 0; i < 64; i++ {
		fa := a.Fault(i)
		if fa != fromB[i] {
			t.Fatalf("conn %d: %+v vs %+v", i, fa, fromB[i])
		}
		if fa.Kind == KillAfter {
			kills++
		}
	}
	if kills == 0 || kills == 64 {
		t.Fatalf("degenerate kill schedule: %d/64 kills", kills)
	}
}

// TestOutageWindow scripts a full outage: healthy traffic, SetMode(Stall)
// + KillActive darkens the backend, Heal restores it.
func TestOutageWindow(t *testing.T) {
	backend := echoBackend(t, payload)
	p := startProxy(t, backend, Healthy())

	if _, err := roundTrip(t, p.Addr(), len(payload), time.Second); err != nil {
		t.Fatalf("pre-outage round trip failed: %v", err)
	}

	p.SetMode(Fault{Kind: Stall})
	p.KillActive()
	if _, err := roundTrip(t, p.Addr(), len(payload), 100*time.Millisecond); err == nil {
		t.Fatal("round trip succeeded during the outage")
	}

	p.Heal()
	got, err := roundTrip(t, p.Addr(), len(payload), time.Second)
	if err != nil {
		t.Fatalf("post-outage round trip failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted after heal: %q", got)
	}
}
