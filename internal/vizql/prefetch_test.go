package vizql

import (
	"context"
	"testing"

	"vizq/internal/tde/storage"
)

func TestPrefetchMakesInteractionsLocal(t *testing.T) {
	proc, srv := newProc(t)
	sess, err := NewSession(FlightsDashboard("flights"), proc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Render(ctx); err != nil {
		t.Fatal(err)
	}

	n, err := sess.Prefetch(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("prefetch issued nothing")
	}
	afterPrefetch := srv.Stats().Queries

	// The user now clicks the top market — every dependent zone query was
	// speculatively executed, so nothing new reaches the backend.
	topMarket := sess.Result("Market").Value(0, 0)
	if err := sess.Select("Market", topMarket); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Render(ctx); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Queries; got != afterPrefetch {
		t.Errorf("prefetched interaction still sent %d backend queries", got-afterPrefetch)
	}

	// An unpredicted interaction (a deep value) still goes remote.
	mkts := sess.Result("Market")
	if mkts.N > 10 {
		if err := sess.Select("Market", mkts.Value(mkts.N-1, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Render(ctx); err != nil {
			t.Fatal(err)
		}
		if got := srv.Stats().Queries; got == afterPrefetch {
			t.Error("unpredicted interaction should reach the backend")
		}
	}
}

func TestPrefetchRespectsCurrentSelections(t *testing.T) {
	proc, _ := newProc(t)
	d := FlightsDashboard("flights")
	sess, err := NewSession(d, proc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Render(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Select("Market", storage.StrValue("LAX-SFO")); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Render(ctx); err != nil {
		t.Fatal(err)
	}
	// Hypothetical carrier selections must keep the live market filter.
	q := sess.zoneQueryWithHypothetical(d.Zone("Airline Name"),
		d.Actions[1], storage.StrValue("WN"))
	if len(q.Filters) != 2 {
		t.Fatalf("hypothetical query filters = %d, want market + carrier", len(q.Filters))
	}
}
