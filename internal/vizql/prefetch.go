package vizql

import (
	"context"
	"strings"

	"vizq/internal/query"
	"vizq/internal/tde/storage"
)

// Prefetch implements the paper's future-work direction (Sect. 7: dashboards
// "could become more responsive if requested data has been accurately
// predicted and prefetched", citing DICE's speculative query execution): it
// predicts the user's next interactions as selections of the top-K values in
// each action-source zone, builds the queries those interactions would
// generate, and runs them as one batch through the pipeline — warming the
// intelligent cache so the real interaction renders without remote queries.
//
// It returns the number of distinct queries speculatively executed.
func (s *Session) Prefetch(ctx context.Context, topK int) (int, error) {
	if topK <= 0 {
		topK = 3
	}
	seen := map[string]bool{}
	var batch []*query.Query
	for _, a := range s.dash.Actions {
		src := s.dash.Zone(a.Source)
		if src == nil {
			continue
		}
		res := s.results[strings.ToLower(a.Source)]
		if res == nil {
			continue
		}
		col := res.ColumnIndex(a.Col)
		if col < 0 {
			continue
		}
		// Candidate selections: the leading rows of the source zone. Chart
		// zones are typically sorted by descending measure, so these are the
		// values a user is most likely to click (the DICE-style locality
		// assumption).
		n := topK
		if n > res.N {
			n = res.N
		}
		for i := 0; i < n; i++ {
			v := res.Value(i, col)
			if v.Null {
				continue
			}
			for _, tgt := range a.Targets {
				z := s.dash.Zone(tgt)
				if z == nil || z.Kind == ZoneQuickFilter {
					continue
				}
				q := s.zoneQueryWithHypothetical(z, a, v)
				key := q.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				batch = append(batch, q)
			}
		}
	}
	if len(batch) == 0 {
		return 0, nil
	}
	if _, err := s.proc.ExecuteBatch(ctx, batch); err != nil {
		return 0, err
	}
	return len(batch), nil
}

// zoneQueryWithHypothetical builds the query a target zone would issue if
// the action's source selection were value v (current other selections
// preserved).
func (s *Session) zoneQueryWithHypothetical(z *Zone, act FilterAction, v storage.Value) *query.Query {
	q := z.Spec.Clone()
	for _, a := range s.dash.Actions {
		if !actionTargets(a, z.Name) {
			continue
		}
		if strings.EqualFold(a.Source, act.Source) && a.Col == act.Col {
			q.Filters = append(q.Filters, query.InFilter(a.Col, v))
			continue
		}
		vals := s.Selection(a.Source)
		if len(vals) == 0 {
			continue
		}
		q.Filters = append(q.Filters, query.InFilter(a.Col, vals...))
	}
	return q
}
