package vizql

import (
	"context"
	"fmt"
	"strings"
	"time"

	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/storage"
)

// Session is one user's live view of a dashboard: current selections, quick
// filter states and rendered zone results. Interactions mark zones dirty;
// Render processes the resulting query batches iteration by iteration
// (Sect. 3.3).
type Session struct {
	dash *Dashboard
	proc *core.Processor

	selections map[string][]storage.Value // chart zone -> selected action values
	quick      map[string][]storage.Value // quick filter zone -> checked values
	results    map[string]*exec.Result
	dirty      map[string]bool
}

// RenderReport describes one Render call.
type RenderReport struct {
	Iterations  int
	BatchSizes  []int
	Elapsed     time.Duration
	ZonesDrawn  int
	Invalidated []string // selections dropped because their value vanished
}

// NewSession opens a dashboard over a processor.
func NewSession(d *Dashboard, proc *core.Processor) (*Session, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	s := &Session{
		dash:       d,
		proc:       proc,
		selections: map[string][]storage.Value{},
		quick:      map[string][]storage.Value{},
		results:    map[string]*exec.Result{},
		dirty:      map[string]bool{},
	}
	for _, z := range d.Zones {
		s.dirty[strings.ToLower(z.Name)] = true
	}
	return s, nil
}

// Result returns the latest rendered result of a zone.
func (s *Session) Result(zone string) *exec.Result { return s.results[strings.ToLower(zone)] }

// Select replaces the selection of a chart zone and marks action targets
// dirty. An empty value list clears the selection.
func (s *Session) Select(zone string, vals ...storage.Value) error {
	z := s.dash.Zone(zone)
	if z == nil {
		return fmt.Errorf("vizql: no zone %q", zone)
	}
	if z.Kind == ZoneQuickFilter {
		s.quick[strings.ToLower(zone)] = vals
	} else {
		s.selections[strings.ToLower(zone)] = vals
	}
	for _, a := range s.dash.Actions {
		if strings.EqualFold(a.Source, zone) {
			for _, tgt := range a.Targets {
				s.dirty[strings.ToLower(tgt)] = true
			}
		}
	}
	return nil
}

// Selection returns the current selection of a zone.
func (s *Session) Selection(zone string) []storage.Value {
	if z := s.dash.Zone(zone); z != nil && z.Kind == ZoneQuickFilter {
		return s.quick[strings.ToLower(zone)]
	}
	return s.selections[strings.ToLower(zone)]
}

// ZoneQuery builds the effective query of a zone under the current
// interactive state.
func (s *Session) ZoneQuery(z *Zone) *query.Query {
	if z.Kind == ZoneQuickFilter {
		// Domains do not depend on selections; the query repeats verbatim
		// and is served by the cache after the first send.
		table := s.dash.Zones[0].Spec.View.Table
		ds := s.dash.Zones[0].Spec.DataSource
		return quickFilterDomainQuery(ds, table, z.FilterCol)
	}
	q := z.Spec.Clone()
	for _, a := range s.dash.Actions {
		if !actionTargets(a, z.Name) {
			continue
		}
		vals := s.Selection(a.Source)
		if len(vals) == 0 {
			continue
		}
		q.Filters = append(q.Filters, query.InFilter(a.Col, vals...))
	}
	return q
}

func actionTargets(a FilterAction, zone string) bool {
	for _, t := range a.Targets {
		if strings.EqualFold(t, zone) {
			return true
		}
	}
	return false
}

// Render refreshes every dirty zone, iterating while responses invalidate
// selections: when a selected value disappears from its source zone's new
// result, the selection is removed and the dependent zones re-query without
// that filter — the Fig. 2 HNL-OGG behaviour.
func (s *Session) Render(ctx context.Context) (*RenderReport, error) {
	report := &RenderReport{}
	start := time.Now()
	for iter := 0; iter < 8; iter++ {
		var zones []*Zone
		for _, z := range s.dash.Zones {
			if s.dirty[strings.ToLower(z.Name)] {
				zones = append(zones, z)
			}
		}
		if len(zones) == 0 {
			break
		}
		report.Iterations++
		batch := make([]*query.Query, len(zones))
		for i, z := range zones {
			batch[i] = s.ZoneQuery(z)
		}
		report.BatchSizes = append(report.BatchSizes, len(batch))
		results, err := s.proc.ExecuteBatch(ctx, batch)
		if err != nil {
			return nil, err
		}
		for i, z := range zones {
			s.results[strings.ToLower(z.Name)] = results[i]
			s.dirty[strings.ToLower(z.Name)] = false
			report.ZonesDrawn++
		}
		// Validate selections against the fresh results.
		for _, a := range s.dash.Actions {
			srcZone := s.dash.Zone(a.Source)
			if srcZone == nil || srcZone.Kind == ZoneQuickFilter {
				continue
			}
			sel := s.selections[strings.ToLower(a.Source)]
			if len(sel) == 0 {
				continue
			}
			res := s.results[strings.ToLower(a.Source)]
			if res == nil {
				continue
			}
			col := res.ColumnIndex(a.Col)
			if col < 0 {
				continue
			}
			kept := sel[:0]
			for _, v := range sel {
				if resultContains(res, col, v) {
					kept = append(kept, v)
				} else {
					report.Invalidated = append(report.Invalidated,
						fmt.Sprintf("%s=%s", a.Source, v.String()))
				}
			}
			if len(kept) != len(sel) {
				s.selections[strings.ToLower(a.Source)] = kept
				for _, tgt := range a.Targets {
					s.dirty[strings.ToLower(tgt)] = true
				}
			}
		}
	}
	report.Elapsed = time.Since(start)
	return report, nil
}

func resultContains(res *exec.Result, col int, v storage.Value) bool {
	coll := res.Schema[col].Coll
	for i := 0; i < res.N; i++ {
		if storage.Equal(res.Value(i, col), v, coll) {
			return true
		}
	}
	return false
}
