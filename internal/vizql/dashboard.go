// Package vizql models dashboards: collections of zones (charts, quick
// filters, text) linked by interactive filter actions (Sect. 2-3 of the
// paper). Rendering a dashboard generates query batches over several
// iterations: responses can invalidate selections (the Fig. 2 HNL-OGG
// example), triggering follow-up queries. Each iteration's batch goes
// through the core pipeline's batch optimization.
package vizql

import (
	"fmt"
	"strings"

	"vizq/internal/query"
)

// ZoneKind classifies dashboard zones.
type ZoneKind uint8

// Zone kinds.
const (
	// ZoneChart renders data (maps, bars, lines) and may expose selections
	// that drive filter actions.
	ZoneChart ZoneKind = iota
	// ZoneQuickFilter shows a column's domain with checkboxes; its domain
	// query is sent once ("further interactions might change the selection
	// but not the domains", Sect. 3.2).
	ZoneQuickFilter
	// ZoneText renders a single aggregate (e.g. the visible record count).
	ZoneText
)

// Zone is one dashboard element.
type Zone struct {
	Name string
	Kind ZoneKind
	// Spec is the zone's base query, before interactive filters.
	Spec *query.Query
	// FilterCol is the domain column for quick filters.
	FilterCol string
}

// FilterAction links a selection in a source zone to filters on targets
// ("selecting a field in the Market zone will filter the results in the
// Carrier and Airline Name zones").
type FilterAction struct {
	Source  string
	Col     string
	Targets []string
}

// Dashboard is a named collection of zones and actions.
type Dashboard struct {
	Name    string
	Zones   []*Zone
	Actions []FilterAction
}

// Zone finds a zone by name.
func (d *Dashboard) Zone(name string) *Zone {
	for _, z := range d.Zones {
		if strings.EqualFold(z.Name, name) {
			return z
		}
	}
	return nil
}

// Validate checks structural consistency.
func (d *Dashboard) Validate() error {
	seen := map[string]bool{}
	for _, z := range d.Zones {
		l := strings.ToLower(z.Name)
		if seen[l] {
			return fmt.Errorf("vizql: duplicate zone %q", z.Name)
		}
		seen[l] = true
		if z.Kind == ZoneQuickFilter {
			if z.FilterCol == "" {
				return fmt.Errorf("vizql: quick filter %q has no column", z.Name)
			}
			continue
		}
		if z.Spec == nil {
			return fmt.Errorf("vizql: zone %q has no query", z.Name)
		}
		if err := z.Spec.Validate(); err != nil {
			return fmt.Errorf("vizql: zone %q: %w", z.Name, err)
		}
	}
	for _, a := range d.Actions {
		src := d.Zone(a.Source)
		if src == nil {
			return fmt.Errorf("vizql: action source %q missing", a.Source)
		}
		if src.Kind == ZoneChart && !specHasColumn(src.Spec, a.Col) {
			return fmt.Errorf("vizql: action column %q not in source zone %q", a.Col, a.Source)
		}
		for _, tgt := range a.Targets {
			if d.Zone(tgt) == nil {
				return fmt.Errorf("vizql: action target %q missing", tgt)
			}
		}
	}
	return nil
}

func specHasColumn(q *query.Query, col string) bool {
	for _, dim := range q.Dims {
		if strings.EqualFold(dim.Col, col) {
			return true
		}
	}
	return false
}

// FlightsDashboard builds the paper's Fig. 2 dashboard: Market, Carrier and
// Airline Name zones over the flights data, with Market filtering Carrier
// and Airline Name, and Carrier filtering Airline Name. The Carrier zone is
// a top-5 by flight count.
func FlightsDashboard(dataSource string) *Dashboard {
	flights := query.View{Table: "flights"}
	withCarriers := query.View{
		Table: "flights",
		Joins: []query.JoinSpec{{Table: "carriers", LeftCol: "carrier", RightCol: "carrier"}},
	}
	return &Dashboard{
		Name: "flights-per-day",
		Zones: []*Zone{
			{
				Name: "Market", Kind: ZoneChart,
				Spec: &query.Query{
					DataSource: dataSource, View: flights,
					Dims:     []query.Dim{{Col: "market"}},
					Measures: []query.Measure{{Fn: query.Count, As: "flights"}},
					OrderBy:  []query.Order{{Col: "flights", Desc: true}},
				},
			},
			{
				Name: "Carrier", Kind: ZoneChart,
				Spec: &query.Query{
					DataSource: dataSource, View: flights,
					Dims:     []query.Dim{{Col: "carrier"}},
					Measures: []query.Measure{{Fn: query.Count, As: "flights"}},
					OrderBy:  []query.Order{{Col: "flights", Desc: true}},
					N:        5,
				},
			},
			{
				Name: "Airline Name", Kind: ZoneChart,
				Spec: &query.Query{
					DataSource: dataSource, View: withCarriers,
					Dims:     []query.Dim{{Col: "airline_name"}},
					Measures: []query.Measure{{Fn: query.Count, As: "flights"}},
					OrderBy:  []query.Order{{Col: "flights", Desc: true}},
				},
			},
		},
		Actions: []FilterAction{
			{Source: "Market", Col: "market", Targets: []string{"Carrier", "Airline Name"}},
			{Source: "Carrier", Col: "carrier", Targets: []string{"Airline Name"}},
		},
	}
}

// FAADashboard builds a larger Fig. 1-style dashboard: origin/destination
// state maps, carrier and destination-airport charts, weekday cancellation
// breakdowns, hourly delay distribution, quick filters and a record count.
func FAADashboard(dataSource string) *Dashboard {
	flights := query.View{Table: "flights"}
	count := []query.Measure{{Fn: query.Count, As: "flights"}}
	withDelay := []query.Measure{
		{Fn: query.Count, As: "flights"},
		{Fn: query.Avg, Col: "delay", As: "avgdelay"},
	}
	return &Dashboard{
		Name: "faa-on-time",
		Zones: []*Zone{
			{Name: "Origins", Kind: ZoneChart, Spec: &query.Query{
				DataSource: dataSource, View: flights,
				Dims: []query.Dim{{Col: "origin"}}, Measures: withDelay,
			}},
			{Name: "Destinations", Kind: ZoneChart, Spec: &query.Query{
				DataSource: dataSource, View: flights,
				Dims: []query.Dim{{Col: "dest"}}, Measures: withDelay,
			}},
			{Name: "Carriers", Kind: ZoneChart, Spec: &query.Query{
				DataSource: dataSource, View: flights,
				Dims: []query.Dim{{Col: "carrier"}}, Measures: withDelay,
			}},
			{Name: "Weekday", Kind: ZoneChart, Spec: &query.Query{
				DataSource: dataSource, View: flights,
				Dims:     []query.Dim{{Expr: "(weekday date)", As: "wd"}},
				Measures: count,
			}},
			{Name: "Hourly Delay", Kind: ZoneChart, Spec: &query.Query{
				DataSource: dataSource, View: flights,
				Dims:     []query.Dim{{Col: "hour"}},
				Measures: withDelay,
			}},
			{Name: "Record Count", Kind: ZoneText, Spec: &query.Query{
				DataSource: dataSource, View: flights,
				Measures: count,
			}},
			{Name: "Carrier Filter", Kind: ZoneQuickFilter, FilterCol: "carrier"},
		},
		Actions: []FilterAction{
			{Source: "Origins", Col: "origin", Targets: []string{"Destinations", "Carriers", "Weekday", "Hourly Delay", "Record Count"}},
			{Source: "Destinations", Col: "dest", Targets: []string{"Carriers", "Weekday", "Hourly Delay", "Record Count"}},
			{Source: "Carrier Filter", Col: "carrier", Targets: []string{"Origins", "Destinations", "Weekday", "Hourly Delay", "Record Count"}},
		},
	}
}

// quickFilterDomainQuery builds the domain query for a quick filter zone.
func quickFilterDomainQuery(dataSource, table, col string) *query.Query {
	return &query.Query{
		DataSource: dataSource,
		View:       query.View{Table: table},
		Dims:       []query.Dim{{Col: col}},
		Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
	}
}
