package vizql

import (
	"context"
	"strings"
	"testing"

	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

func newProc(t testing.TB) (*core.Processor, *remote.Server) {
	t.Helper()
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 12_000, Days: 90, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), remote.Config{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	pool := connection.NewPool(srv.Addr(), connection.PoolConfig{Max: 4})
	t.Cleanup(pool.Close)
	return core.NewProcessor(pool, nil, nil, core.DefaultOptions()), srv
}

func TestDashboardValidation(t *testing.T) {
	d := FlightsDashboard("flights")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dashboard{
		Zones:   []*Zone{{Name: "a", Kind: ZoneChart}},
		Actions: nil,
	}
	if err := bad.Validate(); err == nil {
		t.Error("zone without query should fail validation")
	}
	dup := &Dashboard{Zones: []*Zone{
		{Name: "x", Kind: ZoneQuickFilter, FilterCol: "c"},
		{Name: "X", Kind: ZoneQuickFilter, FilterCol: "c"},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate zones should fail")
	}
	badAction := FlightsDashboard("flights")
	badAction.Actions = append(badAction.Actions, FilterAction{Source: "Market", Col: "nope", Targets: []string{"Carrier"}})
	if err := badAction.Validate(); err == nil {
		t.Error("action column missing from source should fail")
	}
}

func TestInitialRender(t *testing.T) {
	proc, _ := newProc(t)
	sess, err := NewSession(FlightsDashboard("flights"), proc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Render(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 1 {
		t.Errorf("initial render iterations = %d", rep.Iterations)
	}
	if rep.ZonesDrawn != 3 {
		t.Errorf("zones drawn = %d", rep.ZonesDrawn)
	}
	carrier := sess.Result("Carrier")
	if carrier == nil || carrier.N != 5 {
		t.Fatalf("carrier top-5 wrong: %+v", carrier)
	}
	if sess.Result("Market") == nil || sess.Result("Airline Name") == nil {
		t.Fatal("missing zone results")
	}
}

func TestInteractionFiltersTargets(t *testing.T) {
	proc, _ := newProc(t)
	sess, err := NewSession(FlightsDashboard("flights"), proc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Render(ctx); err != nil {
		t.Fatal(err)
	}
	full := sess.Result("Airline Name").N

	// Select the busiest market.
	market := sess.Result("Market").Value(0, 0)
	if err := sess.Select("Market", market); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Render(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ZonesDrawn < 2 {
		t.Errorf("selection should redraw Carrier and Airline Name, drew %d", rep.ZonesDrawn)
	}
	filtered := sess.Result("Airline Name").N
	if filtered > full {
		t.Errorf("filtered rows %d > unfiltered %d", filtered, full)
	}
	// The Market zone itself is not a target of its own action.
	if sess.Result("Market").N == 0 {
		t.Error("market zone should keep its rows")
	}
}

// TestSelectionInvalidation reproduces Fig. 2: after selecting market and a
// carrier, switching to a market the carrier does not serve eliminates the
// carrier selection and requeries the dependent zone without that filter.
func TestSelectionInvalidation(t *testing.T) {
	proc, _ := newProc(t)
	sess, err := NewSession(FlightsDashboard("flights"), proc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Render(ctx); err != nil {
		t.Fatal(err)
	}

	// Find a market and a carrier such that the carrier does not fly the
	// market: select the carrier first under a market where it exists.
	markets := sess.Result("Market")
	var marketA, marketB storage.Value
	var carrierSel storage.Value
	eng := getBackendEngine(t)
	for i := 0; i < markets.N && marketB.S == ""; i++ {
		m := markets.Value(i, 0)
		carriers := carriersForMarket(t, eng, m.S)
		if len(carriers) == 0 || len(carriers) == workloadCarriers() {
			continue
		}
		if marketA.S == "" {
			marketA = m
			carrierSel = storage.StrValue(carriers[0])
			continue
		}
		// marketB must exclude carrierSel.
		excluded := true
		for _, c := range carriersForMarket(t, eng, m.S) {
			if strings.EqualFold(c, carrierSel.S) {
				excluded = false
				break
			}
		}
		if excluded {
			marketB = m
		}
	}
	if marketB.S == "" {
		t.Skip("no market pair found in this seed")
	}

	if err := sess.Select("Market", marketA); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Render(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Select("Carrier", carrierSel); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Render(ctx); err != nil {
		t.Fatal(err)
	}

	// Now switch to the market that eliminates the carrier selection.
	if err := sess.Select("Market", marketB); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Render(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations < 2 {
		t.Errorf("invalidation should trigger a second iteration, got %d", rep.Iterations)
	}
	if len(rep.Invalidated) == 0 {
		t.Error("carrier selection should be invalidated")
	}
	if len(sess.Selection("Carrier")) != 0 {
		t.Error("carrier selection should be cleared")
	}
}

var backendEngine *engine.Engine

func getBackendEngine(t testing.TB) *engine.Engine {
	if backendEngine == nil {
		db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 12_000, Days: 90, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		backendEngine = engine.New(db)
	}
	return backendEngine
}

func workloadCarriers() int { return workload.DefaultFlightsConfig().Carriers }

func carriersForMarket(t testing.TB, eng *engine.Engine, market string) []string {
	res, err := eng.Query(context.Background(),
		`(distinct (project (select (table flights) (= market "`+market+`")) (carrier carrier)))`)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, res.N)
	for i := 0; i < res.N; i++ {
		out[i] = res.Value(i, 0).S
	}
	return out
}

func TestQuickFilterDomainCached(t *testing.T) {
	proc, srv := newProc(t)
	sess, err := NewSession(FAADashboard("flights"), proc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Render(ctx); err != nil {
		t.Fatal(err)
	}
	afterFirst := srv.Stats().Queries

	// Check two carriers in the quick filter: targets requery, but the
	// domain query must NOT be resent.
	dom := sess.Result("Carrier Filter")
	if dom == nil || dom.N == 0 {
		t.Fatal("quick filter domain missing")
	}
	if err := sess.Select("Carrier Filter", dom.Value(0, 0), dom.Value(1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Render(ctx); err != nil {
		t.Fatal(err)
	}
	// The record count zone honors the filter.
	rc := sess.Result("Record Count")
	if rc.Value(0, 0).I <= 0 || rc.Value(0, 0).I >= 12_000 {
		t.Errorf("record count = %d", rc.Value(0, 0).I)
	}
	afterSecond := srv.Stats().Queries
	if afterSecond == afterFirst {
		t.Error("interaction should send some queries")
	}
	// Render a second session over the same processor: everything should be
	// answerable from cache (multi-user sharing).
	sess2, err := NewSession(FAADashboard("flights"), proc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Render(ctx); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Queries; got != afterSecond {
		t.Errorf("second user should be served from cache: %d -> %d", afterSecond, got)
	}
}

func TestZoneQueryComposition(t *testing.T) {
	d := FlightsDashboard("flights")
	proc, _ := newProc(t)
	sess, err := NewSession(d, proc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Select("Market", storage.StrValue("LAX-SFO")); err != nil {
		t.Fatal(err)
	}
	if err := sess.Select("Carrier", storage.StrValue("AA")); err != nil {
		t.Fatal(err)
	}
	q := sess.ZoneQuery(d.Zone("Airline Name"))
	if len(q.Filters) != 2 {
		t.Fatalf("airline zone should carry 2 filters, got %d", len(q.Filters))
	}
	q2 := sess.ZoneQuery(d.Zone("Carrier"))
	if len(q2.Filters) != 1 {
		t.Fatalf("carrier zone should carry only the market filter, got %d", len(q2.Filters))
	}
	// Selecting in a zone never filters itself.
	q3 := sess.ZoneQuery(d.Zone("Market"))
	if len(q3.Filters) != 0 {
		t.Errorf("market zone should be unfiltered")
	}
	// Unknown zone errors.
	if err := sess.Select("Nope", storage.StrValue("x")); err == nil {
		t.Error("selecting unknown zone should fail")
	}
	_ = query.Query{}
}
