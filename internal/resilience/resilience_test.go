package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

var errTransport = errors.New("transport: peer reset")
var errQuery = errors.New("remote: no such column")

func isTransport(err error) bool { return errors.Is(err, errTransport) }

// fakeSleeper replaces the backoff sleep and records requested delays.
func fakeSleeper(r *Resilience) *[]time.Duration {
	var slept []time.Duration
	r.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	return &slept
}

func TestDoRetriesTransportErrorsThenSucceeds(t *testing.T) {
	r := New(Config{MaxAttempts: 3, Seed: 7}, isTransport)
	slept := fakeSleeper(r)
	calls := 0
	got, err := Do(context.Background(), r, func(ctx context.Context) (int, error) {
		calls++
		if calls < 3 {
			return 0, errTransport
		}
		return 42, nil
	})
	if err != nil || got != 42 {
		t.Fatalf("Do = (%d, %v), want (42, nil)", got, err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	if r.Breaker().State() != Closed {
		t.Fatal("two transient failures below the window tripped the breaker")
	}
}

func TestDoGivesUpAfterMaxAttempts(t *testing.T) {
	r := New(Config{MaxAttempts: 3, Seed: 7, BreakerMinSamples: 100}, isTransport)
	fakeSleeper(r)
	calls := 0
	_, err := Do(context.Background(), r, func(ctx context.Context) (int, error) {
		calls++
		return 0, errTransport
	})
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
	if !errors.Is(err, errTransport) {
		t.Fatalf("give-up error %v does not wrap the cause", err)
	}
}

func TestDoDoesNotRetryQueryErrors(t *testing.T) {
	r := New(Config{MaxAttempts: 5, Seed: 7}, isTransport)
	fakeSleeper(r)
	calls := 0
	_, err := Do(context.Background(), r, func(ctx context.Context) (int, error) {
		calls++
		return 0, errQuery
	})
	if calls != 1 {
		t.Fatalf("query-level error retried: fn ran %d times", calls)
	}
	if !errors.Is(err, errQuery) {
		t.Fatalf("err = %v, want the query error", err)
	}
	// Query errors mean the backend is alive: breaker records success.
	if st := r.Breaker().Stats(); st.State != Closed || st.Opened != 0 {
		t.Fatalf("breaker disturbed by a query error: %+v", st)
	}
}

func TestDoHonorsDeadlineBudget(t *testing.T) {
	// Backoffs are at least 50ms; with only 5ms of budget left the retry
	// must be abandoned before sleeping, not attempted into a dead ctx.
	r := New(Config{MaxAttempts: 10, BaseBackoff: 50 * time.Millisecond, Seed: 7, BreakerMinSamples: 100}, isTransport)
	slept := fakeSleeper(r)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	calls := 0
	start := time.Now()
	_, err := Do(ctx, r, func(ctx context.Context) (int, error) {
		calls++
		return 0, errTransport
	})
	if err == nil {
		t.Fatal("Do succeeded with a failing fn")
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times with no budget for a retry, want 1", calls)
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v despite the deadline budget", *slept)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("gave up after %v, should return well before the nominal backoff", elapsed)
	}
}

func TestDoStopsWhenCallerContextDies(t *testing.T) {
	r := New(Config{MaxAttempts: 5, Seed: 7, BreakerMinSamples: 100}, isTransport)
	fakeSleeper(r)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := Do(ctx, r, func(ctx context.Context) (int, error) {
		calls++
		cancel()
		return 0, errTransport
	})
	if calls != 1 {
		t.Fatalf("fn ran %d times after the caller cancelled, want 1", calls)
	}
	if err == nil {
		t.Fatal("Do returned nil after caller cancellation")
	}
}

func TestDoAttemptTimeoutBoundsEachTry(t *testing.T) {
	// Each attempt gets its own 20ms deadline carved from a roomy caller
	// budget; a stalling fn must be cut off per attempt, so all three
	// attempts run (the caller ctx survives).
	r := New(Config{MaxAttempts: 3, AttemptTimeout: 20 * time.Millisecond,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		Seed: 7, BreakerMinSamples: 100}, isTransport)
	calls := 0
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := Do(ctx, r, func(actx context.Context) (int, error) {
		calls++
		<-actx.Done() // stall until the per-attempt deadline fires
		return 0, fmt.Errorf("stalled: %w", errTransport)
	})
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3 (per-attempt timeout must not kill the caller ctx)", calls)
	}
	if err == nil || ctx.Err() != nil {
		t.Fatalf("err = %v, caller ctx err = %v", err, ctx.Err())
	}
}

func TestDoFastFailsWhenBreakerOpen(t *testing.T) {
	r := New(Config{MaxAttempts: 1, BreakerWindow: 4, BreakerMinSamples: 2,
		BreakerFailureRatio: 0.5, BreakerOpenFor: time.Hour, Seed: 7}, isTransport)
	fakeSleeper(r)
	for i := 0; i < 2; i++ {
		if _, err := Do(context.Background(), r, func(ctx context.Context) (int, error) {
			return 0, errTransport
		}); err == nil {
			t.Fatal("failing fn reported success")
		}
	}
	if r.Breaker().State() != Open {
		t.Fatalf("breaker state = %v, want open", r.Breaker().State())
	}
	calls := 0
	start := time.Now()
	_, err := Do(context.Background(), r, func(ctx context.Context) (int, error) {
		calls++
		return 7, nil
	})
	if calls != 0 {
		t.Fatal("open breaker let the request through")
	}
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("fast-fail took %v", elapsed)
	}
}

func TestHalfOpenProbeSlotReleasedOnCallerExpiry(t *testing.T) {
	r := New(Config{MaxAttempts: 1, BreakerWindow: 4, BreakerMinSamples: 2,
		BreakerFailureRatio: 0.5, BreakerOpenFor: time.Hour, Seed: 7}, isTransport)
	fakeSleeper(r)
	clock := time.Unix(3_000_000, 0)
	r.Breaker().setClock(func() time.Time { return clock })
	for i := 0; i < 2; i++ {
		if _, err := Do(context.Background(), r, func(ctx context.Context) (int, error) {
			return 0, errTransport
		}); err == nil {
			t.Fatal("failing fn reported success")
		}
	}
	if r.Breaker().State() != Open {
		t.Fatalf("breaker state = %v, want open", r.Breaker().State())
	}
	// The cooldown elapses and the next request is admitted as the one
	// half-open probe — but its caller gives up mid-attempt, so Do has no
	// outcome to record on the breaker.
	clock = clock.Add(2 * time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	if _, err := Do(ctx, r, func(context.Context) (int, error) {
		calls++
		cancel()
		return 0, errTransport
	}); err == nil || calls != 1 {
		t.Fatalf("abandoned probe: calls = %d, err = %v", calls, err)
	}
	if st := r.Breaker().State(); st != HalfOpen {
		t.Fatalf("state after abandoned probe = %v, want half-open", st)
	}
	// The probe slot must have been returned: the next request probes the
	// healed backend and closes the circuit, instead of the breaker staying
	// wedged in half-open fast-failing everything forever.
	got, err := Do(context.Background(), r, func(context.Context) (int, error) {
		return 9, nil
	})
	if err != nil || got != 9 {
		t.Fatalf("breaker wedged in half-open: Do = (%d, %v)", got, err)
	}
	if st := r.Breaker().State(); st != Closed {
		t.Fatalf("state after healthy probe = %v, want closed", st)
	}
}

func TestDefaultSeedIsPerInstance(t *testing.T) {
	// Without an explicit Seed, identically-configured instances must not
	// share a jitter sequence: lockstep backoff across sources defeats
	// decorrelated jitter exactly when a shared backend is struggling.
	// (Entropy seeds make a collision astronomically unlikely.)
	a := New(Config{}, isTransport)
	b := New(Config{}, isTransport)
	if a.cfg.Seed == b.cfg.Seed {
		t.Fatalf("default seeds collide: %d", a.cfg.Seed)
	}
	prevA, prevB := a.cfg.BaseBackoff, b.cfg.BaseBackoff
	same := true
	for i := 0; i < 8; i++ {
		prevA, prevB = a.nextBackoff(prevA), b.nextBackoff(prevB)
		if prevA != prevB {
			same = false
		}
	}
	if same {
		t.Fatal("two default-seeded instances produced identical backoff sequences")
	}
}

func TestNilResilienceIsPassthrough(t *testing.T) {
	calls := 0
	got, err := Do(context.Background(), nil, func(ctx context.Context) (string, error) {
		calls++
		return "ok", nil
	})
	if err != nil || got != "ok" || calls != 1 {
		t.Fatalf("nil passthrough = (%q, %v) after %d calls", got, err, calls)
	}
	var r *Resilience
	if r.ServeStale() {
		t.Fatal("nil Resilience reports ServeStale")
	}
}

func TestBackoffDecorrelatedJitterIsCappedAndSeeded(t *testing.T) {
	mk := func() []time.Duration {
		r := New(Config{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 99}, isTransport)
		var out []time.Duration
		prev := r.cfg.BaseBackoff
		for i := 0; i < 32; i++ {
			prev = r.nextBackoff(prev)
			out = append(out, prev)
		}
		return out
	}
	a, b := mk(), mk()
	grew := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff %d not reproducible: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 10*time.Millisecond || a[i] > 80*time.Millisecond {
			t.Fatalf("backoff %d = %v outside [base, cap]", i, a[i])
		}
		if a[i] > 30*time.Millisecond {
			grew = true
		}
	}
	if !grew {
		t.Fatal("backoff never grew beyond 3x base: jitter looks degenerate")
	}
}
