package resilience

import (
	"sync"
	"time"

	"vizq/internal/obs"
)

// Breaker transition metrics, shared process-wide.
var (
	cBreakerOpened   = obs.C("resilience.breaker.opened")
	cBreakerHalfOpen = obs.C("resilience.breaker.half_open")
	cBreakerClosed   = obs.C("resilience.breaker.closed")
	cBreakerFastFail = obs.C("resilience.breaker.fast_fails")
)

// State is a circuit breaker state.
type State int

const (
	// Closed passes every request through (normal operation).
	Closed State = iota
	// Open fails requests fast without touching the backend.
	Open
	// HalfOpen lets a bounded number of probes through to test recovery.
	HalfOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerStats snapshots a breaker's activity.
type BreakerStats struct {
	State     State
	Opened    int64 // closed/half-open -> open transitions
	FastFails int64 // requests rejected without reaching the backend
}

// Breaker is a per-data-source circuit breaker: a rolling outcome window
// trips it open when the transport failure rate crosses a threshold, open
// fails fast for a cooldown, and half-open admits a bounded number of
// probes whose outcome closes or re-opens the circuit. The point (Dean &
// Barroso's tail-at-scale argument, applied to the Data Server's 40+
// flaky backends) is that during an outage, failing in microseconds beats
// queueing every request on a dead pool until its deadline.
type Breaker struct {
	mu sync.Mutex

	window   []bool // ring of attempt outcomes, true = failure
	idx      int
	count    int
	failures int

	state    State
	openedAt time.Time
	probes   int // in-flight half-open probes

	minSamples int
	ratio      float64
	openFor    time.Duration
	maxProbes  int

	opened    int64
	fastFails int64

	now func() time.Time
}

// newBreaker builds a breaker from a validated Config.
func newBreaker(cfg Config) *Breaker {
	return &Breaker{
		window:     make([]bool, cfg.BreakerWindow),
		minSamples: cfg.BreakerMinSamples,
		ratio:      cfg.BreakerFailureRatio,
		openFor:    cfg.BreakerOpenFor,
		maxProbes:  cfg.BreakerHalfOpenProbes,
		now:        time.Now,
	}
}

// setClock pins the breaker's clock (tests).
func (b *Breaker) setClock(fn func() time.Time) {
	b.mu.Lock()
	b.now = fn
	b.mu.Unlock()
}

// Allow reports whether a request may proceed. Open circuits reject until
// the cooldown elapses, then transition to half-open and admit up to
// maxProbes concurrent probes.
func (b *Breaker) Allow() bool {
	// Allow's contract obliges the caller to call RecordSuccess or
	// RecordFailure for every admitted request, and either outcome releases
	// the probe slot; only this exported wrapper may drop the probe flag.
	//vizlint:allow release -- Record* by the caller releases the slot
	ok, _ := b.allow()
	return ok
}

// allow additionally reports whether the admission consumed a half-open
// probe slot. Only RecordSuccess/RecordFailure exit the half-open state,
// so a caller whose attempt ends with no outcome to record (e.g. its own
// context expired) must return the slot via releaseProbe — otherwise the
// slot leaks and the breaker wedges in half-open, fast-failing forever.
func (b *Breaker) allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true, false
	case Open:
		if b.now().Sub(b.openedAt) < b.openFor {
			b.fastFails++
			cBreakerFastFail.Inc()
			return false, false
		}
		b.state = HalfOpen
		b.probes = 1
		cBreakerHalfOpen.Inc()
		return true, true
	default: // HalfOpen
		if b.probes < b.maxProbes {
			b.probes++
			return true, true
		}
		b.fastFails++
		cBreakerFastFail.Inc()
		return false, false
	}
}

// releaseProbe returns a half-open probe slot admitted by allow when the
// attempt produced no outcome. A Record* from a concurrent probe may have
// already moved the state on (resetting probes), in which case there is
// nothing to return.
func (b *Breaker) releaseProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probes > 0 {
		b.probes--
	}
}

// RecordSuccess reports a request that reached the backend and got an
// answer (including query-level errors: the backend is alive).
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.push(false)
	case HalfOpen:
		// One healthy probe closes the circuit and resets the window.
		b.toClosedLocked()
	}
}

// RecordFailure reports a transport-classified failure. In the closed
// state it may trip the circuit; in half-open it re-opens immediately.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.push(true)
		if b.count >= b.minSamples && float64(b.failures)/float64(b.count) >= b.ratio {
			b.toOpenLocked()
		}
	case HalfOpen:
		b.toOpenLocked()
	}
}

// State returns the current state (transitioning open->half-open only
// happens on Allow, so a cooled-down open circuit still reports Open).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{State: b.state, Opened: b.opened, FastFails: b.fastFails}
}

func (b *Breaker) push(failure bool) {
	if b.count == len(b.window) {
		if b.window[b.idx] {
			b.failures--
		}
	} else {
		b.count++
	}
	b.window[b.idx] = failure
	if failure {
		b.failures++
	}
	b.idx = (b.idx + 1) % len(b.window)
}

func (b *Breaker) toOpenLocked() {
	b.state = Open
	b.openedAt = b.now()
	b.probes = 0
	b.opened++
	cBreakerOpened.Inc()
}

func (b *Breaker) toClosedLocked() {
	b.state = Closed
	b.probes = 0
	b.idx, b.count, b.failures = 0, 0, 0
	for i := range b.window {
		b.window[i] = false
	}
	cBreakerClosed.Inc()
}
