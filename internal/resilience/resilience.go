// Package resilience absorbs transient backend faults in the query path:
// retry with capped exponential backoff and decorrelated jitter for
// transport-classified errors, a per-data-source circuit breaker that
// fails fast during outages instead of queueing on a dead pool, and the
// policy hook the pipeline uses to serve stale cache entries when the
// backend is unreachable (graceful degradation). The paper's Data Server
// fronts 40+ customer-operated backends (Sect. 5); tail-at-scale practice
// says the service layer — not the user — must absorb their flakiness.
//
// Retries honor the caller's context deadline as a hard budget: a retry
// whose backoff would overrun the deadline is not attempted, and each
// attempt can be bounded by its own AttemptTimeout so one stalled round
// trip cannot consume the whole budget.
package resilience

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vizq/internal/obs"
)

// Retry metrics, shared process-wide.
var (
	cRetryAttempts = obs.C("resilience.retry.attempts")
	cRetryGiveups  = obs.C("resilience.retry.giveups")
)

// ErrOpen is returned (wrapped) when the circuit breaker rejects a
// request without attempting it.
var ErrOpen = errors.New("resilience: circuit open")

// Config tunes retry, breaker and degradation policy. The zero value of
// any field falls back to the default noted on it.
type Config struct {
	// MaxAttempts bounds total tries per request, including the first
	// (default 3).
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay (default 10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 1s).
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt (0 = only the
	// caller's deadline applies). Without it, one stalled attempt eats
	// the whole retry budget — set it well below the caller's deadline.
	AttemptTimeout time.Duration
	// Seed fixes the jitter sequence for reproducible tests (0 = a unique
	// per-instance random seed, so identically-configured sources retrying
	// against one struggling backend do not back off in lockstep).
	Seed int64

	// BreakerWindow is the rolling outcome window size (default 32).
	BreakerWindow int
	// BreakerMinSamples is the minimum window fill before the failure
	// ratio is evaluated (default 8).
	BreakerMinSamples int
	// BreakerFailureRatio opens the circuit when failures/window reaches
	// it (default 0.5).
	BreakerFailureRatio float64
	// BreakerOpenFor is the open-state cooldown before probing
	// (default 2s).
	BreakerOpenFor time.Duration
	// BreakerHalfOpenProbes bounds concurrent half-open probes
	// (default 1).
	BreakerHalfOpenProbes int

	// ServeStale lets the pipeline answer from an expired cache entry
	// (within its StaleUntil grace window) when the breaker is open or
	// retries are exhausted.
	ServeStale bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 32
	}
	if c.BreakerMinSamples <= 0 {
		c.BreakerMinSamples = 8
	}
	if c.BreakerFailureRatio <= 0 {
		c.BreakerFailureRatio = 0.5
	}
	if c.BreakerOpenFor <= 0 {
		c.BreakerOpenFor = 2 * time.Second
	}
	if c.BreakerHalfOpenProbes <= 0 {
		c.BreakerHalfOpenProbes = 1
	}
	if c.Seed == 0 {
		c.Seed = entropySeed()
	}
	return c
}

// seedSalt differentiates fallback seeds minted within one clock tick.
var seedSalt atomic.Int64

// entropySeed mints a per-instance jitter seed. A deterministic default
// (shared by every instance with the same config) would make concurrent
// sources retry in lockstep, defeating decorrelated jitter exactly when
// it matters — during a shared backend's outage.
func entropySeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		return int64(binary.LittleEndian.Uint64(b[:])) | 1
	}
	return (time.Now().UnixNano() ^ seedSalt.Add(0x9e3779b9)) | 1
}

// Resilience wires a retry policy and one circuit breaker for one data
// source. Safe for concurrent use.
type Resilience struct {
	cfg       Config
	br        *Breaker
	retryable func(error) bool

	mu  sync.Mutex
	rng *rand.Rand

	// sleep is swapped by tests; the default waits on a timer or ctx.
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a Resilience from cfg. retryable classifies errors worth
// retrying (typically connection.IsTransport); a nil classifier retries
// nothing and the breaker never records failures.
func New(cfg Config, retryable func(error) bool) *Resilience {
	cfg = cfg.withDefaults()
	if retryable == nil {
		retryable = func(error) bool { return false }
	}
	return &Resilience{
		cfg:       cfg,
		br:        newBreaker(cfg),
		retryable: retryable,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		sleep:     ctxSleep,
	}
}

// Breaker exposes the data source's circuit breaker (introspection,
// tests, loadsim reporting).
func (r *Resilience) Breaker() *Breaker { return r.br }

// ServeStale reports whether degraded reads from stale cache entries are
// allowed.
func (r *Resilience) ServeStale() bool { return r != nil && r.cfg.ServeStale }

func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// nextBackoff computes a decorrelated-jitter delay: uniform in
// [base, 3*prev), capped. prev carries across attempts of one request.
func (r *Resilience) nextBackoff(prev time.Duration) time.Duration {
	base := r.cfg.BaseBackoff
	hi := 3 * prev
	if hi <= base {
		hi = base + 1
	}
	r.mu.Lock()
	d := base + time.Duration(r.rng.Int63n(int64(hi-base)))
	r.mu.Unlock()
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	return d
}

// Do runs fn under the breaker and retry policy. fn is handed a context
// that may carry a per-attempt deadline. Transport-classified errors are
// retried with backoff while attempts and the caller's deadline budget
// last; other errors (and caller-context expiry) return immediately. A
// breaker rejection returns an error wrapping ErrOpen without calling fn.
func Do[T any](ctx context.Context, r *Resilience, fn func(context.Context) (T, error)) (T, error) {
	var zero T
	if r == nil {
		return fn(ctx)
	}
	backoff := r.cfg.BaseBackoff
	for attempt := 1; ; attempt++ {
		allowed, probe := r.br.allow()
		if !allowed {
			// The span makes fast-fails visible in per-stage traces: its
			// near-zero duration is the point, vs. a timeout-length wait.
			_, sp := obs.StartSpan(ctx, obs.SpanBreaker)
			sp.Annotate("state", r.br.State().String())
			sp.Finish()
			return zero, fmt.Errorf("resilience: data source unavailable (breaker): %w", ErrOpen)
		}

		v, err := attemptOne(ctx, r, attempt, fn)
		if err == nil {
			r.br.RecordSuccess()
			return v, nil
		}
		if ctx.Err() != nil {
			// The caller's own budget expired; the backend was not
			// necessarily at fault, so no outcome is recorded — but an
			// admitted half-open probe slot must be returned, or the breaker
			// wedges in half-open with no probe left to close or re-open it.
			if probe {
				r.br.releaseProbe()
			}
			return zero, err
		}
		if !r.retryable(err) {
			// The backend answered with a well-formed error: it is alive.
			r.br.RecordSuccess()
			return zero, err
		}
		r.br.RecordFailure()
		if attempt >= r.cfg.MaxAttempts {
			cRetryGiveups.Inc()
			return zero, fmt.Errorf("resilience: %d attempts failed: %w", attempt, err)
		}
		backoff = r.nextBackoff(backoff)
		if deadline, ok := ctx.Deadline(); ok && time.Now().Add(backoff).After(deadline) {
			// The backoff would overrun the caller's deadline: give up now
			// rather than sleeping into a guaranteed context error.
			cRetryGiveups.Inc()
			return zero, fmt.Errorf("resilience: retry budget exhausted after %d attempts: %w", attempt, err)
		}
		cRetryAttempts.Inc()
		if err := r.sleep(ctx, backoff); err != nil {
			return zero, err
		}
	}
}

// attemptOne runs one try of fn under the per-attempt timeout, spanning
// retries (attempt >= 2) so traces show where backoff time went.
func attemptOne[T any](ctx context.Context, r *Resilience, n int, fn func(context.Context) (T, error)) (T, error) {
	if n > 1 {
		var sp *obs.Span
		ctx, sp = obs.StartSpan(ctx, obs.SpanRetry)
		sp.Annotatef("attempt", "%d", n)
		defer sp.Finish()
	}
	actx := ctx
	if r.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		defer cancel()
	}
	return fn(actx)
}
