package resilience

import (
	"testing"
	"time"
)

// testBreaker builds a breaker with a pinned, manually advanced clock.
func testBreaker(cfg Config) (*Breaker, *time.Time) {
	b := newBreaker(cfg.withDefaults())
	now := time.Unix(1_000_000, 0)
	b.setClock(func() time.Time { return now })
	return b, &now
}

func TestBreakerOpensAtFailureRatio(t *testing.T) {
	b, _ := testBreaker(Config{BreakerWindow: 8, BreakerMinSamples: 4, BreakerFailureRatio: 0.5})
	// Three failures among three samples: below min samples, stays closed.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.RecordFailure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v before min samples, want closed", got)
	}
	// A fourth sample reaches min samples with ratio 1.0: trips open.
	b.RecordFailure()
	if got := b.State(); got != Open {
		t.Fatalf("state = %v after 4/4 failures, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	if st := b.Stats(); st.Opened != 1 || st.FastFails != 1 {
		t.Fatalf("stats = %+v, want Opened=1 FastFails=1", st)
	}
}

func TestBreakerStaysClosedBelowRatio(t *testing.T) {
	b, _ := testBreaker(Config{BreakerWindow: 8, BreakerMinSamples: 4, BreakerFailureRatio: 0.5})
	// Alternate success/failure: ratio pinned at 0.5 - epsilon as the
	// window slides (3 failures / 7 samples and so on).
	for i := 0; i < 20; i++ {
		b.RecordSuccess()
		b.RecordSuccess()
		b.RecordFailure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v at 1/3 failure rate, want closed", got)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b, _ := testBreaker(Config{BreakerWindow: 4, BreakerMinSamples: 4, BreakerFailureRatio: 0.5})
	// Two early failures scroll out of the 4-wide window under later
	// successes; the old outcomes must stop counting.
	b.RecordFailure()
	b.RecordFailure()
	for i := 0; i < 4; i++ {
		b.RecordSuccess()
	}
	b.RecordFailure() // window is now S S S F: 25% < 50%
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v after old failures scrolled out, want closed", got)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, now := testBreaker(Config{
		BreakerWindow: 4, BreakerMinSamples: 2, BreakerFailureRatio: 0.5,
		BreakerOpenFor: time.Second, BreakerHalfOpenProbes: 1,
	})
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != Open {
		t.Fatal("breaker did not open")
	}
	if b.Allow() {
		t.Fatal("allowed during cooldown")
	}
	// Cooldown elapses: exactly one probe is admitted.
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted with HalfOpenProbes=1")
	}
	// The probe succeeds: circuit closes with a clean window.
	b.RecordSuccess()
	if b.State() != Closed {
		t.Fatalf("state = %v after healthy probe, want closed", b.State())
	}
	// One new failure must not trip the fresh window.
	b.RecordFailure()
	if b.State() != Closed {
		t.Fatal("stale window survived recovery: one failure re-tripped the circuit")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, now := testBreaker(Config{
		BreakerWindow: 4, BreakerMinSamples: 2, BreakerFailureRatio: 0.5,
		BreakerOpenFor: time.Second,
	})
	b.RecordFailure()
	b.RecordFailure()
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.RecordFailure()
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	// The cooldown restarts from the failed probe.
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request without a fresh cooldown")
	}
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second probe window never opened")
	}
}
