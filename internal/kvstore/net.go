package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire protocol: every message is length-prefixed. Requests are
// [op u8][keyLen u32][key][ttlMs u64][valLen u32][val]; responses are
// [status u8][valLen u32][val]. Ops: G(et), S(et), D(elete), P(ing),
// L(ist). List treats the key as a prefix and returns, in the response
// body, [count u32] followed by count pairs of [keyLen u32][key]
// [valLen u32][val], sorted by key.

const (
	opGet    = 'G'
	opSet    = 'S'
	opDelete = 'D'
	opPing   = 'P'
	opList   = 'L'

	statusOK       = 0
	statusNotFound = 1
	statusError    = 2
)

// Server exposes a Store over TCP.
type Server struct {
	store *Store
	ln    net.Listener
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string, store *Store) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, dropping live client connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		_ = c.Close() // best-effort: the server is going away
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	for {
		op, err := r.ReadByte()
		if err != nil {
			return
		}
		key, err := readBlob(r)
		if err != nil {
			return
		}
		var ttl uint64
		if err := binary.Read(r, binary.LittleEndian, &ttl); err != nil {
			return
		}
		val, err := readBlob(r)
		if err != nil {
			return
		}
		var werr error
		switch op {
		case opGet:
			if v, ok := s.store.Get(string(key)); ok {
				werr = writeResponse(w, statusOK, v)
			} else {
				werr = writeResponse(w, statusNotFound, nil)
			}
		case opSet:
			s.store.Set(string(key), val, time.Duration(ttl)*time.Millisecond)
			werr = writeResponse(w, statusOK, nil)
		case opDelete:
			s.store.Delete(string(key))
			werr = writeResponse(w, statusOK, nil)
		case opPing:
			werr = writeResponse(w, statusOK, []byte("pong"))
		case opList:
			werr = writeResponse(w, statusOK, encodePairs(s.store.Scan(string(key))))
		default:
			werr = writeResponse(w, statusError, []byte(fmt.Sprintf("bad op %q", op)))
		}
		if werr != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func readBlob(r *bufio.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > 1<<30 {
		return nil, errors.New("kvstore: blob too large")
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func writeResponse(w *bufio.Writer, status byte, val []byte) error {
	if err := w.WriteByte(status); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(val))); err != nil {
		return err
	}
	_, err := w.Write(val)
	return err
}

// encodePairs flattens Scan results into a List response body:
// [count u32] then per pair [keyLen u32][key][valLen u32][val].
func encodePairs(pairs []KV) []byte {
	size := 4
	for _, p := range pairs {
		size += 8 + len(p.Key) + len(p.Val)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(pairs)))
	for _, p := range pairs {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Key)))
		out = append(out, p.Key...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Val)))
		out = append(out, p.Val...)
	}
	return out
}

// decodePairs is the inverse of encodePairs.
func decodePairs(body []byte) (map[string][]byte, error) {
	if len(body) < 4 {
		return nil, errors.New("kvstore: short list response")
	}
	count := binary.LittleEndian.Uint32(body)
	body = body[4:]
	out := make(map[string][]byte, count)
	next := func() ([]byte, error) {
		if len(body) < 4 {
			return nil, errors.New("kvstore: torn list response")
		}
		n := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if uint32(len(body)) < n {
			return nil, errors.New("kvstore: torn list response")
		}
		b := body[:n:n]
		body = body[n:]
		return b, nil
	}
	for i := uint32(0); i < count; i++ {
		key, err := next()
		if err != nil {
			return nil, err
		}
		val, err := next()
		if err != nil {
			return nil, err
		}
		out[string(key)] = val
	}
	return out, nil
}

// Client talks to a kvstore server over a single multiplexed connection.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	addr    string
	timeout time.Duration
}

// SetTimeout bounds each subsequent round trip with a connection deadline
// (0 = wait forever). Coordination-bus callers set this so a stalled link
// surfaces as an error instead of hanging the publisher.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Dial connects to a kvstore server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<16),
		w:    bufio.NewWriterSize(conn, 1<<16),
		addr: addr,
	}, nil
}

// Close shuts the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(op byte, key string, ttl time.Duration, val []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := c.writeRequest(op, key, ttl, val); err != nil {
		return 0, nil, err
	}
	status, err := c.r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	body, err := readBlob(c.r)
	if err != nil {
		return 0, nil, err
	}
	return status, body, nil
}

// writeRequest frames and flushes one request. bufio's sticky error would
// surface at Flush anyway, but checking each write keeps the failure close
// to its cause.
func (c *Client) writeRequest(op byte, key string, ttl time.Duration, val []byte) error {
	if err := c.w.WriteByte(op); err != nil {
		return err
	}
	if err := binary.Write(c.w, binary.LittleEndian, uint32(len(key))); err != nil {
		return err
	}
	if _, err := c.w.WriteString(key); err != nil {
		return err
	}
	if err := binary.Write(c.w, binary.LittleEndian, uint64(ttl/time.Millisecond)); err != nil {
		return err
	}
	if err := binary.Write(c.w, binary.LittleEndian, uint32(len(val))); err != nil {
		return err
	}
	if _, err := c.w.Write(val); err != nil {
		return err
	}
	return c.w.Flush()
}

// Get fetches a key.
func (c *Client) Get(key string) ([]byte, bool, error) {
	status, body, err := c.roundTrip(opGet, key, 0, nil)
	if err != nil {
		return nil, false, err
	}
	return body, status == statusOK, nil
}

// Set stores a key with TTL (0 = none).
func (c *Client) Set(key string, val []byte, ttl time.Duration) error {
	status, body, err := c.roundTrip(opSet, key, ttl, val)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("kvstore: set failed: %s", body)
	}
	return nil
}

// Delete removes a key.
func (c *Client) Delete(key string) error {
	status, body, err := c.roundTrip(opDelete, key, 0, nil)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("kvstore: delete failed: %s", body)
	}
	return nil
}

// List returns every unexpired entry whose key starts with prefix.
func (c *Client) List(prefix string) (map[string][]byte, error) {
	status, body, err := c.roundTrip(opList, prefix, 0, nil)
	if err != nil {
		return nil, err
	}
	if status != statusOK {
		return nil, fmt.Errorf("kvstore: list failed: %s", body)
	}
	return decodePairs(body)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	status, _, err := c.roundTrip(opPing, "", 0, nil)
	if err != nil {
		return err
	}
	if status != statusOK {
		return errors.New("kvstore: ping failed")
	}
	return nil
}
