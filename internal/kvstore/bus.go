package kvstore

import (
	"sync"
	"time"
)

// LocalBus adapts a Store to the coordination-bus shape internal/sched
// expects (Set + List). Single-process deployments and tests use it to
// coordinate schedulers without a network hop.
type LocalBus struct {
	store *Store
}

// NewLocalBus wraps store as an in-process coordination bus.
func NewLocalBus(store *Store) *LocalBus { return &LocalBus{store: store} }

// Set stores a digest with TTL.
func (b *LocalBus) Set(key string, val []byte, ttl time.Duration) error {
	b.store.Set(key, val, ttl)
	return nil
}

// List returns every unexpired entry under prefix.
func (b *LocalBus) List(prefix string) (map[string][]byte, error) {
	pairs := b.store.Scan(prefix)
	out := make(map[string][]byte, len(pairs))
	for _, p := range pairs {
		out[p.Key] = p.Val
	}
	return out, nil
}

// RemoteBus is a reconnecting kvstore client for coordination traffic.
// The plain Client wedges after its first transport error (the single
// multiplexed connection stays broken); a coordination bus must instead
// ride out kvstore restarts and partitions, so RemoteBus drops the
// connection on any error and redials lazily on the next call. Every op
// is bounded by Timeout so a stalled link fails fast — the scheduler
// then falls back to local-only admission rather than blocking.
type RemoteBus struct {
	addr    string
	timeout time.Duration

	mu sync.Mutex
	c  *Client
}

// DefaultBusTimeout bounds each bus round trip unless overridden.
const DefaultBusTimeout = 2 * time.Second

// NewRemoteBus creates a bus talking to the kvstore server at addr.
// timeout 0 selects DefaultBusTimeout.
func NewRemoteBus(addr string, timeout time.Duration) *RemoteBus {
	if timeout <= 0 {
		timeout = DefaultBusTimeout
	}
	return &RemoteBus{addr: addr, timeout: timeout}
}

// client returns the live connection, dialing if needed.
func (b *RemoteBus) client() (*Client, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.c != nil {
		return b.c, nil
	}
	c, err := Dial(b.addr)
	if err != nil {
		return nil, err
	}
	c.SetTimeout(b.timeout)
	b.c = c
	return c, nil
}

// drop discards a connection after an error so the next call redials.
func (b *RemoteBus) drop(c *Client) {
	b.mu.Lock()
	if b.c == c {
		b.c = nil
	}
	b.mu.Unlock()
	_ = c.Close()
}

// Set stores a digest with TTL.
func (b *RemoteBus) Set(key string, val []byte, ttl time.Duration) error {
	c, err := b.client()
	if err != nil {
		return err
	}
	if err := c.Set(key, val, ttl); err != nil {
		b.drop(c)
		return err
	}
	return nil
}

// List returns every unexpired entry under prefix.
func (b *RemoteBus) List(prefix string) (map[string][]byte, error) {
	c, err := b.client()
	if err != nil {
		return nil, err
	}
	out, err := c.List(prefix)
	if err != nil {
		b.drop(c)
		return nil, err
	}
	return out, nil
}

// Close releases the current connection, if any.
func (b *RemoteBus) Close() error {
	b.mu.Lock()
	c := b.c
	b.c = nil
	b.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
