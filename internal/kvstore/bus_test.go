package kvstore

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"vizq/internal/chaos"
)

func TestStoreScan(t *testing.T) {
	s := NewStore(0)
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	s.Set("dig/a/n2", []byte("2"), 0)
	s.Set("dig/a/n1", []byte("1"), time.Second)
	s.Set("dig/b/n1", []byte("3"), 0)
	s.Set("other", []byte("x"), 0)

	got := s.Scan("dig/a/")
	if len(got) != 2 || got[0].Key != "dig/a/n1" || got[1].Key != "dig/a/n2" {
		t.Fatalf("scan = %+v, want dig/a/* sorted", got)
	}
	if string(got[0].Val) != "1" || string(got[1].Val) != "2" {
		t.Fatalf("scan values = %+v", got)
	}
	if hits, misses := s.Stats(); hits != 0 || misses != 0 {
		t.Errorf("scan perturbed hit/miss counters: %d/%d", hits, misses)
	}

	// Past the TTL the expired entry disappears from the scan AND from
	// the store (swept, not just filtered).
	now = now.Add(2 * time.Second)
	got = s.Scan("dig/")
	if len(got) != 2 || got[0].Key != "dig/a/n2" || got[1].Key != "dig/b/n1" {
		t.Fatalf("post-expiry scan = %+v", got)
	}
	if s.Len() != 3 {
		t.Errorf("expired entry not swept: len = %d", s.Len())
	}
	if got := s.Scan("nope/"); len(got) != 0 {
		t.Errorf("scan of absent prefix = %+v", got)
	}
}

// TestStoreScanDoesNotPromote: a coordination-bus sweep must not refresh
// LRU positions, or digest polling would pin digests in the cache tier
// and evict real cache entries instead.
func TestStoreScanDoesNotPromote(t *testing.T) {
	s := NewStore(100)
	s.Set("a", make([]byte, 40), 0)
	s.Set("b", make([]byte, 40), 0)
	s.Scan("a")                     // must NOT touch a's LRU position
	s.Set("c", make([]byte, 40), 0) // evicts the true LRU victim
	if _, ok := s.Get("a"); ok {
		t.Error("scan promoted its results; eviction victim should be a")
	}
	if _, ok := s.Get("b"); !ok {
		t.Error("unscanned recent entry evicted")
	}
}

// TestStoreScanTTLRace: concurrent writers with immediately-expiring TTLs
// against concurrent scanners — the expiry sweep inside Scan must be safe
// under -race, and once writers stop every entry must age out.
func TestStoreScanTTLRace(t *testing.T) {
	s := NewStore(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Set(fmt.Sprintf("k/%d", (w*200+i)%8), []byte("v"), time.Nanosecond)
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Scan("k/")
				s.Get("k/0")
			}
		}()
	}
	wg.Wait()
	if got := s.Scan("k/"); len(got) != 0 {
		t.Errorf("expired entries survived the final sweep: %+v", got)
	}
	if s.Len() != 0 {
		t.Errorf("store still holds %d expired entries", s.Len())
	}
}

func TestClientList(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewStore(0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for k, v := range map[string]string{"dig/n1": "v1", "dig/n2": "v2", "zz": "x"} {
		if err := c.Set(k, []byte(v), time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.List("dig/")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || string(m["dig/n1"]) != "v1" || string(m["dig/n2"]) != "v2" {
		t.Fatalf("list = %v", m)
	}
	if m, err := c.List("absent/"); err != nil || len(m) != 0 {
		t.Fatalf("list of absent prefix = %v, %v", m, err)
	}
}

// TestDecodePairsTorn: every truncation of a valid List body must be
// rejected — a digest reader fed a torn response must see an error, never
// a silently shortened peer set.
func TestDecodePairsTorn(t *testing.T) {
	body := encodePairs([]KV{{Key: "k1", Val: []byte("v1")}, {Key: "key-2", Val: []byte("longer-value")}})
	m, err := decodePairs(body)
	if err != nil || len(m) != 2 || string(m["key-2"]) != "longer-value" {
		t.Fatalf("round trip = %v, %v", m, err)
	}
	for i := 0; i < len(body); i++ {
		if _, err := decodePairs(body[:i]); err == nil {
			t.Errorf("truncation at %d of %d accepted", i, len(body))
		}
	}
	// A count that promises more pairs than the body holds is torn too.
	lying := binary.LittleEndian.AppendUint32(nil, 1000)
	if _, err := decodePairs(lying); err == nil {
		t.Error("oversized count accepted")
	}
}

// TestClientTimeoutOnStall: a server that accepts but never answers must
// not hang a client with SetTimeout — the deadline surfaces as a timeout
// error instead of wedging the caller.
func TestClientTimeoutOnStall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			<-stop // hold the connection open, never respond
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	_, _, err = c.Get("k")
	if err == nil {
		t.Fatal("stalled round trip returned no error")
	}
	var nerr net.Error
	if !asNetError(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
}

func asNetError(err error, target *net.Error) bool {
	for err != nil {
		if ne, ok := err.(net.Error); ok {
			*target = ne
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestLocalBus(t *testing.T) {
	b := NewLocalBus(NewStore(0))
	if err := b.Set("p/a", []byte("1"), time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := b.Set("q/b", []byte("2"), 0); err != nil {
		t.Fatal(err)
	}
	m, err := b.List("p/")
	if err != nil || len(m) != 1 || string(m["p/a"]) != "1" {
		t.Fatalf("local bus list = %v, %v", m, err)
	}
}

func TestRemoteBusDialFailure(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	b := NewRemoteBus(addr, 100*time.Millisecond)
	if err := b.Set("k", []byte("v"), 0); err == nil {
		t.Fatal("set against a dead address succeeded")
	}
	if _, err := b.List("k"); err == nil {
		t.Fatal("list against a dead address succeeded")
	}
	if err := b.Close(); err != nil { // no live connection: still clean
		t.Fatal(err)
	}
}

// TestRemoteBusReconnects: the bus must fail fast across a partition and
// transparently redial once it heals — the plain Client stays wedged
// after its first transport error, which is exactly what a coordination
// bus cannot afford.
func TestRemoteBusReconnects(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewStore(0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy, err := chaos.New(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	b := NewRemoteBus(proxy.Addr(), 0) // 0 selects DefaultBusTimeout
	defer b.Close()
	if err := b.Set("dig/n1", []byte("v"), time.Minute); err != nil {
		t.Fatal(err)
	}

	// Partition: live relays die, new connections are refused.
	proxy.SetMode(chaos.Fault{Kind: chaos.Refuse})
	proxy.KillActive()
	if _, err := b.List("dig/"); err == nil {
		t.Fatal("list across a partition succeeded")
	}
	if err := b.Set("dig/n1", []byte("v2"), time.Minute); err == nil {
		t.Fatal("set across a partition succeeded")
	}

	// Heal: the very next op redials and sees the surviving entry.
	proxy.Heal()
	m, err := b.List("dig/")
	if err != nil {
		t.Fatalf("list after heal: %v", err)
	}
	if string(m["dig/n1"]) != "v" {
		t.Fatalf("entry lost across the partition: %v", m)
	}
}
