// Package kvstore is a small networked key-value store with TTL and LRU
// eviction. It stands in for the REDIS/Cassandra layer Tableau Server uses
// to distribute its query caches across cluster nodes (Sect. 3.2: "a
// distributed layer ... allows sharing data across nodes in the cluster and
// keeping data warm regardless of which node handles particular requests").
// Beyond the cache tier, the store doubles as the cluster's coordination
// bus: internal/sched publishes per-source load digests under a shared key
// prefix and reads its peers' back with Scan/List.
package kvstore

import (
	"container/list"
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock abstracts time for tests.
type Clock func() time.Time

// Store is the in-memory KV engine, safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	maxBytes int64
	curBytes int64
	clock    Clock

	hits   int64
	misses int64
}

type kvEntry struct {
	key     string
	val     []byte
	expires time.Time // zero = no TTL
}

// NewStore creates a store bounded to maxBytes (0 = unbounded).
func NewStore(maxBytes int64) *Store {
	return &Store{
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		maxBytes: maxBytes,
		clock:    time.Now,
	}
}

// SetClock replaces the time source (tests).
func (s *Store) SetClock(c Clock) { s.clock = c }

// Get returns the value for key, if present and unexpired.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	e := el.Value.(*kvEntry)
	if !e.expires.IsZero() && s.clock().After(e.expires) {
		s.removeLocked(el)
		s.misses++
		return nil, false
	}
	s.lru.MoveToFront(el)
	s.hits++
	return e.val, true
}

// Set stores a value with an optional TTL (0 = no expiry).
func (s *Store) Set(key string, val []byte, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.removeLocked(el)
	}
	e := &kvEntry{key: key, val: val}
	if ttl > 0 {
		e.expires = s.clock().Add(ttl)
	}
	el := s.lru.PushFront(e)
	s.entries[key] = el
	s.curBytes += int64(len(key) + len(val))
	for s.maxBytes > 0 && s.curBytes > s.maxBytes && s.lru.Len() > 1 {
		s.removeLocked(s.lru.Back())
	}
}

// KV is one Scan result pair.
type KV struct {
	Key string
	Val []byte
}

// Scan returns every unexpired entry whose key starts with prefix, sorted
// by key. Unlike Get it neither promotes entries in the LRU order nor
// counts hits/misses — a coordination-bus reader sweeping digests must not
// perturb the cache tier's eviction behaviour. Expired entries found along
// the way are removed.
func (s *Store) Scan(prefix string) []KV {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	var expired []*list.Element
	var out []KV
	for key, el := range s.entries {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		e := el.Value.(*kvEntry)
		if !e.expires.IsZero() && now.After(e.expires) {
			expired = append(expired, el)
			continue
		}
		out = append(out, KV{Key: key, Val: e.val})
	}
	for _, el := range expired {
		s.removeLocked(el)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Delete removes a key.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.removeLocked(el)
	}
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats returns hit/miss counters.
func (s *Store) Stats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*kvEntry)
	s.lru.Remove(el)
	delete(s.entries, e.key)
	s.curBytes -= int64(len(e.key) + len(e.val))
}
