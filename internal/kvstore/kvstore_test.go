package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore(0)
	s.Set("a", []byte("1"), 0)
	v, ok := s.Get("a")
	if !ok || string(v) != "1" {
		t.Fatal("get failed")
	}
	s.Set("a", []byte("2"), 0) // overwrite
	if v, _ := s.Get("a"); string(v) != "2" {
		t.Error("overwrite failed")
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Error("delete failed")
	}
	s.Delete("a") // idempotent
	hits, misses := s.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestStoreTTL(t *testing.T) {
	s := NewStore(0)
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	s.Set("k", []byte("v"), time.Second)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Second)
	if _, ok := s.Get("k"); ok {
		t.Error("expired entry served")
	}
	if s.Len() != 0 {
		t.Error("expired entry not removed")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(100)
	s.Set("a", make([]byte, 40), 0)
	s.Set("b", make([]byte, 40), 0)
	s.Get("a") // a is now most recently used
	s.Set("c", make([]byte, 40), 0)
	if _, ok := s.Get("b"); ok {
		t.Error("LRU victim should be b")
	}
	if _, ok := s.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewStore(0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set("k", []byte("hello"), time.Minute); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get("k")
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	if err := cl.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get("k"); ok {
		t.Error("deleted key still served")
	}
}

func TestNetworkConcurrentClients(t *testing.T) {
	store := NewStore(0)
	srv, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("k%d_%d", c, i)
				if err := cl.Set(key, []byte(key), 0); err != nil {
					t.Error(err)
					return
				}
				if v, ok, err := cl.Get(key); err != nil || !ok || string(v) != key {
					t.Errorf("get %s = %q %v %v", key, v, ok, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if store.Len() != 100 {
		t.Errorf("store len = %d", store.Len())
	}
}

func TestServerCloseDropsClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewStore(0))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Requests after close fail rather than hang.
	done := make(chan error, 1)
	go func() { done <- cl.Ping() }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("ping after server close should fail")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client hung after server close")
	}
}
