package connection

import (
	"context"
	"sync"
	"testing"
	"time"

	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/workload"
)

// startCluster builds a shared-everything TDE cluster: every node serves the
// same database (Sect. 4.1.4).
func startCluster(t testing.TB, nodes int, cfg remote.Config) []*remote.Server {
	t.Helper()
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 6000, Days: 60, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*remote.Server, nodes)
	for i := range out {
		srv := remote.NewServer(engine.New(db), cfg)
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		out[i] = srv
	}
	return out
}

func TestBalancerDistributesLoad(t *testing.T) {
	cluster := startCluster(t, 3, remote.Config{Latency: 5 * time.Millisecond})
	addrs := make([]string, len(cluster))
	for i, s := range cluster {
		addrs[i] = s.Addr()
	}
	b, err := NewBalancer(addrs, PoolConfig{Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Query(context.Background(), countQ); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	var total int64
	for _, s := range cluster {
		q := s.Stats().Queries
		total += q
		if q == 0 {
			t.Error("a node received no queries")
		}
	}
	if total != 24 {
		t.Errorf("cluster handled %d queries", total)
	}
}

func TestBalancerResultsIdenticalAcrossNodes(t *testing.T) {
	cluster := startCluster(t, 2, remote.Config{})
	b, err := NewBalancer([]string{cluster[0].Addr(), cluster[1].Addr()}, PoolConfig{Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Shared-everything: any node returns the same answer.
	var first int64
	for i := 0; i < 6; i++ {
		res, err := b.Query(context.Background(),
			`(aggregate (table flights) (groupby) (aggs (n count *)))`)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Value(0, 0).I
		} else if res.Value(0, 0).I != first {
			t.Fatalf("nodes disagree: %d vs %d", res.Value(0, 0).I, first)
		}
	}
	if first != 6000 {
		t.Errorf("count = %d", first)
	}
}

func TestBalancerValidation(t *testing.T) {
	if _, err := NewBalancer(nil, PoolConfig{Max: 1}); err == nil {
		t.Error("empty node list should fail")
	}
}
