package connection

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/workload"
)

// TestBalancerPickWrapRegression seeds the rotation counter just below
// the uint64 wrap point. The pre-fix pick converted the counter through
// int before the modulo, so past MaxInt64 the start index went negative
// and b.pools[start%len] panicked with an out-of-range index.
func TestBalancerPickWrapRegression(t *testing.T) {
	b, err := NewBalancer([]string{"n0", "n1", "n2"}, PoolConfig{Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.next.Store(math.MaxUint64 - 4)
	// Crossing the wrap: MaxUint64-3 ... MaxUint64, 0, 1, 2, ...
	for i := 0; i < 10; i++ {
		idx := b.PickIndex()
		if idx < 0 || idx >= 3 {
			t.Fatalf("pick %d returned out-of-range index %d", i, idx)
		}
	}
}

// TestBalancerTiesRotateRoundRobin: with every node idle the scores all
// tie, and the rotation counter must spread consecutive picks across
// nodes instead of hammering one.
func TestBalancerTiesRotateRoundRobin(t *testing.T) {
	b, err := NewBalancer([]string{"n0", "n1", "n2"}, PoolConfig{Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	counts := make(map[int]int)
	prev := -1
	for i := 0; i < 9; i++ {
		idx := b.PickIndex()
		counts[idx]++
		if idx == prev {
			t.Fatalf("tied pick %d repeated node %d back to back", i, idx)
		}
		prev = idx
	}
	for n := 0; n < 3; n++ {
		if counts[n] != 3 {
			t.Fatalf("node %d picked %d times in 9 tied picks, want 3 (counts=%v)", n, counts[n], counts)
		}
	}
}

// TestBalancerPressureSteersDispatch: a node advertising full shed
// pressure must receive no traffic while calm nodes have headroom, and
// must rejoin the rotation once the pressure clears.
func TestBalancerPressureSteersDispatch(t *testing.T) {
	cluster := startCluster(t, 3, remote.Config{})
	addrs := make([]string, len(cluster))
	for i, s := range cluster {
		addrs[i] = s.Addr()
	}
	b, err := NewBalancer(addrs, PoolConfig{Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	b.SetPressure(0, 1.0)
	if got := b.Pressure(0); got != 1.0 {
		t.Fatalf("pressure readback = %v", got)
	}
	for i := 0; i < 12; i++ {
		if _, err := b.Query(context.Background(), countQ); err != nil {
			t.Fatal(err)
		}
	}
	if q := cluster[0].Stats().Queries; q != 0 {
		t.Fatalf("pressured node received %d queries, want 0", q)
	}
	if q1, q2 := cluster[1].Stats().Queries, cluster[2].Stats().Queries; q1 == 0 || q2 == 0 {
		t.Fatalf("calm nodes starved: %d/%d", q1, q2)
	}

	// Clearing pressure (negative resets to 0) readmits the node.
	b.SetPressure(0, -1)
	for i := 0; i < 12; i++ {
		if _, err := b.Query(context.Background(), countQ); err != nil {
			t.Fatal(err)
		}
	}
	if q := cluster[0].Stats().Queries; q == 0 {
		t.Fatal("node stayed excluded after pressure cleared")
	}

	// Out-of-range and NaN updates must be ignored / sanitized.
	b.SetPressure(-1, 1)
	b.SetPressure(99, 1)
	b.SetPressure(1, math.NaN())
	if got := b.Pressure(1); got != 0 {
		t.Fatalf("NaN pressure stored as %v", got)
	}
	if got := b.Pressure(99); got != 0 {
		t.Fatalf("out-of-range pressure = %v", got)
	}
}

// TestBalancerStressSkewedLatency is the property test: concurrent
// dispatch across nodes with skewed service latencies plus concurrent
// pressure updates must never panic, never error, keep every pool's
// live-connection count within its bound, and still give every node a
// share of the work. The rotation counter starts just below the uint64
// wrap so the whole run crosses it.
func TestBalancerStressSkewedLatency(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 2000, Days: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	latencies := []time.Duration{0, 2 * time.Millisecond, 8 * time.Millisecond}
	servers := make([]*remote.Server, len(latencies))
	addrs := make([]string, len(latencies))
	for i, lat := range latencies {
		srv := remote.NewServer(engine.New(db), remote.Config{Latency: lat})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	const maxPer = 3
	b, err := NewBalancer(addrs, PoolConfig{Max: maxPer})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.next.Store(math.MaxUint64 - 40)

	const workers, perWorker = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				if rng.Intn(4) == 0 {
					// Interleave advisory updates with dispatch.
					b.SetPressure(rng.Intn(3), rng.Float64())
				}
				if _, err := b.Query(context.Background(), countQ); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()

	var total int64
	for i, srv := range servers {
		q := srv.Stats().Queries
		total += q
		if q == 0 {
			t.Errorf("node %d served no queries despite capacity", i)
		}
		if live := b.Nodes()[i].Live(); live > maxPer {
			t.Errorf("node %d live connections %d exceed bound %d", i, live, maxPer)
		}
	}
	if total != workers*perWorker {
		t.Errorf("cluster served %d of %d queries", total, workers*perWorker)
	}
}
