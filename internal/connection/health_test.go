package connection

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"vizq/internal/remote"
)

// fakeClock is a manually advanced timebase for deterministic cooldowns.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func newHealthBalancer(t *testing.T, addrs []string, cfg HealthConfig) (*Balancer, *fakeClock) {
	t.Helper()
	b, err := NewBalancer(addrs, PoolConfig{Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	cfg.Clock = clk.Now
	b.ConfigureHealth(cfg)
	return b, clk
}

// TestHealthStreakThresholds walks the passive state machine: transport
// failures mark a node suspect at SuspectAfter and eject it at
// EjectAfter; any success (or non-transport error) resets the streak.
func TestHealthStreakThresholds(t *testing.T) {
	b, _ := newHealthBalancer(t, []string{"n0", "n1"}, HealthConfig{SuspectAfter: 2, EjectAfter: 4})
	terr := io.EOF // transport-classified

	if got := b.State(0); got != NodeHealthy {
		t.Fatalf("initial state = %v", got)
	}
	b.ReportResult(0, terr)
	if got := b.State(0); got != NodeHealthy {
		t.Fatalf("after 1 failure state = %v, want healthy (SuspectAfter=2)", got)
	}
	b.ReportResult(0, terr)
	if got := b.State(0); got != NodeSuspect {
		t.Fatalf("after 2 failures state = %v, want suspect", got)
	}
	// A query-level (non-transport) error proves the node answered: reset.
	b.ReportResult(0, errors.New("syntax error"))
	if got := b.State(0); got != NodeHealthy {
		t.Fatalf("non-transport error did not reset: state = %v", got)
	}

	// Now run the streak all the way to ejection.
	for i := 0; i < 4; i++ {
		if !b.Routable(0) && i < 3 {
			t.Fatalf("node unroutable after only %d failures", i)
		}
		b.ReportResult(0, terr)
	}
	if got := b.State(0); got != NodeEjected {
		t.Fatalf("after %d failures state = %v, want ejected", 4, got)
	}
	if b.Routable(0) {
		t.Fatal("ejected node still routable")
	}
	// A stray success from an in-flight request does not re-admit an
	// ejected node — only a probe does (half-open semantics).
	b.ReportResult(0, nil)
	if got := b.State(0); got != NodeEjected {
		t.Fatalf("stray success re-admitted ejected node: state = %v", got)
	}
}

// TestHealthPickExcludesEjected: an ejected node receives no picks while
// any routable node remains, and PickIndexExcluding never returns the
// excluded node.
func TestHealthPickExcludesEjected(t *testing.T) {
	b, _ := newHealthBalancer(t, []string{"n0", "n1", "n2"}, HealthConfig{EjectAfter: 1})
	b.ReportResult(1, io.EOF) // eject node 1
	if got := b.State(1); got != NodeEjected {
		t.Fatalf("state = %v, want ejected", got)
	}
	for i := 0; i < 30; i++ {
		if idx := b.PickIndex(); idx == 1 {
			t.Fatalf("pick %d chose ejected node", i)
		}
		if idx := b.PickIndexExcluding(0); idx != 2 {
			t.Fatalf("PickIndexExcluding(0) = %d, want 2", idx)
		}
	}
}

// TestHealthNeverAllEjected is the invariant property test: with every
// node ejected (or draining), PickIndex still returns a valid index
// instead of refusing to dispatch — a wrong guess costs one timeout, a
// refusal turns a transient outage permanent.
func TestHealthNeverAllEjected(t *testing.T) {
	b, _ := newHealthBalancer(t, []string{"n0", "n1", "n2"}, HealthConfig{EjectAfter: 1})
	for i := 0; i < 3; i++ {
		b.ReportResult(i, io.EOF)
	}
	for i := 0; i < 3; i++ {
		if got := b.State(i); got != NodeEjected {
			t.Fatalf("node %d state = %v, want ejected", i, got)
		}
	}
	seen := make(map[int]bool)
	for i := 0; i < 30; i++ {
		idx := b.PickIndex()
		if idx < 0 || idx >= 3 {
			t.Fatalf("all-ejected pick returned invalid index %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("all-ejected fallback did not rotate: saw %v", seen)
	}
	// PickIndexExcluding has no fallback by design: -1 when nothing else
	// is routable.
	if idx := b.PickIndexExcluding(0); idx != -1 {
		t.Fatalf("PickIndexExcluding over all-ejected fleet = %d, want -1", idx)
	}

	// Draining likewise never blanks the fleet.
	b2, _ := newHealthBalancer(t, []string{"m0", "m1"}, HealthConfig{})
	b2.SetDraining(0, true)
	b2.SetDraining(1, true)
	for i := 0; i < 10; i++ {
		if idx := b2.PickIndex(); idx < 0 || idx >= 2 {
			t.Fatalf("all-draining pick returned invalid index %d", idx)
		}
	}
}

// TestHealthProbeRecovery exercises the half-open loop against real
// servers: eject a node, advance past the cooldown, probe while the
// server is down (stays ejected, fresh cooldown), then probe again after
// it comes back (re-admitted).
func TestHealthProbeRecovery(t *testing.T) {
	cluster := startCluster(t, 2, remote.Config{})
	addrs := []string{cluster[0].Addr(), cluster[1].Addr()}
	b, clk := newHealthBalancer(t, addrs, HealthConfig{EjectAfter: 1, ProbeAfter: time.Second})

	// A probe against a healthy node is a no-op.
	if b.MaybeProbe(context.Background(), 0) {
		t.Fatal("probe ran against a healthy node")
	}

	b.ReportResult(0, io.EOF)
	if got := b.State(0); got != NodeEjected {
		t.Fatalf("state = %v, want ejected", got)
	}
	// Cooldown not yet elapsed: no probe admitted.
	if b.MaybeProbe(context.Background(), 0) {
		t.Fatal("probe admitted before cooldown")
	}

	// Down server: probe runs, fails, node stays ejected with a fresh
	// cooldown.
	cluster[0].Close()
	clk.Advance(2 * time.Second)
	if !b.MaybeProbe(context.Background(), 0) {
		t.Fatal("probe not admitted after cooldown")
	}
	if got := b.State(0); got != NodeEjected {
		t.Fatalf("failed probe left state %v, want ejected", got)
	}
	if b.MaybeProbe(context.Background(), 0) {
		t.Fatal("probe admitted immediately after a failed probe (cooldown not restarted)")
	}

	// Server back up at the same spot: swap the pool address to the
	// replacement listener, advance past the cooldown, probe succeeds.
	repl := startCluster(t, 1, remote.Config{})[0]
	b.pools[0] = NewPool(repl.Addr(), PoolConfig{Max: 2})
	clk.Advance(2 * time.Second)
	if !b.MaybeProbe(context.Background(), 0) {
		t.Fatal("recovery probe not admitted")
	}
	if got := b.State(0); got != NodeHealthy {
		t.Fatalf("successful probe left state %v, want healthy", got)
	}
	if !b.Routable(0) {
		t.Fatal("re-admitted node not routable")
	}
}

// TestHealthDrainingNotProbed: a draining node is out of rotation but
// must not be probed back in — it returns when its operator says so.
func TestHealthDrainingNotProbed(t *testing.T) {
	b, clk := newHealthBalancer(t, []string{"n0", "n1"}, HealthConfig{EjectAfter: 1})
	b.ReportResult(0, io.EOF)
	b.SetDraining(0, true)
	clk.Advance(time.Minute)
	if b.MaybeProbe(context.Background(), 0) {
		t.Fatal("probe ran against a draining node")
	}
	if !b.NodeDraining(0) {
		t.Fatal("draining bit lost")
	}
	b.SetDraining(0, false)
	if !b.MaybeProbe(context.Background(), 0) {
		t.Fatal("probe not admitted after drain cleared")
	}
}

// TestBalancerQueryRetriesOnTransportError is the fails-pre-fix
// regression test for single-shot Query: with one dead node in the
// rotation, every dispatch must still succeed — a transport error from
// the picked node is retried once on a different healthy node.
func TestBalancerQueryRetriesOnTransportError(t *testing.T) {
	cluster := startCluster(t, 2, remote.Config{})
	dead := startCluster(t, 1, remote.Config{})[0]
	deadAddr := dead.Addr()
	dead.Close() // connection refused from here on

	b, err := NewBalancer([]string{deadAddr, cluster[0].Addr(), cluster[1].Addr()}, PoolConfig{Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := 0; i < 20; i++ {
		if _, err := b.Query(context.Background(), countQ); err != nil {
			t.Fatalf("query %d: %v (dead node's transport error leaked to the caller)", i, err)
		}
	}
	if q := cluster[0].Stats().Queries + cluster[1].Stats().Queries; q != 20 {
		t.Fatalf("live nodes served %d of 20 queries", q)
	}
	// The dead node's failures must also have ejected it.
	if got := b.State(0); got != NodeEjected {
		t.Fatalf("dead node state = %v, want ejected", got)
	}
}

// TestBalancerQueryCallerCancelNotBlamed: a dispatch that fails because
// the caller's own context was canceled must not count against the node
// — context errors classify as transport, but they say nothing about
// node health.
func TestBalancerQueryCallerCancelNotBlamed(t *testing.T) {
	cluster := startCluster(t, 1, remote.Config{Latency: 20 * time.Millisecond})
	b, err := NewBalancer([]string{cluster[0].Addr()}, PoolConfig{Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.ConfigureHealth(HealthConfig{SuspectAfter: 1, EjectAfter: 1})

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := b.Query(ctx, countQ); err == nil {
		t.Fatal("expected a deadline error")
	}
	if got := b.State(0); got != NodeHealthy {
		t.Fatalf("caller cancellation poisoned node health: state = %v", got)
	}
}

// TestBalancerCloseIdempotentRace is the satellite race test: concurrent
// Close calls racing dispatch and pressure updates must neither panic
// nor deadlock, and picking from a closed balancer still yields a valid
// index.
func TestBalancerCloseIdempotentRace(t *testing.T) {
	cluster := startCluster(t, 3, remote.Config{})
	addrs := make([]string, len(cluster))
	for i, s := range cluster {
		addrs[i] = s.Addr()
	}
	b, err := NewBalancer(addrs, PoolConfig{Max: 2})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if idx := b.PickIndex(); idx < 0 || idx >= 3 {
					t.Errorf("pick returned invalid index %d", idx)
					return
				}
				b.SetPressure(i%3, float64(i%5))
				// Queries racing Close may fail with ErrPoolClosed or a
				// transport error — either is fine, panics are not.
				_, _ = b.Query(context.Background(), countQ)
			}
		}()
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Close()
		}()
	}
	wg.Wait()
	b.Close() // and once more after everything settled
}

// TestHealthConfigDefaults pins the zero-value tuning so accidental
// default changes surface here.
func TestHealthConfigDefaults(t *testing.T) {
	cfg := HealthConfig{}.withDefaults()
	want := fmt.Sprintf("suspect=%d eject=%d probeAfter=%s penalty=%.1f", 1, 3, time.Second, 0.5)
	got := fmt.Sprintf("suspect=%d eject=%d probeAfter=%s penalty=%.1f",
		cfg.SuspectAfter, cfg.EjectAfter, cfg.ProbeAfter, cfg.SuspectPenalty)
	if got != want {
		t.Fatalf("defaults = %q, want %q", got, want)
	}
	// EjectAfter never undercuts SuspectAfter.
	cfg = HealthConfig{SuspectAfter: 5, EjectAfter: 2}.withDefaults()
	if cfg.EjectAfter < cfg.SuspectAfter {
		t.Fatalf("EjectAfter %d < SuspectAfter %d", cfg.EjectAfter, cfg.SuspectAfter)
	}
	for _, s := range []NodeState{NodeHealthy, NodeSuspect, NodeEjected, NodeProbing, NodeState(99)} {
		if s.String() == "" {
			t.Fatalf("state %d has empty name", int(s))
		}
	}
}
