package connection

import (
	"context"
	"testing"
	"time"

	"vizq/internal/remote"
)

func TestPoolDiscardBrokenConnection(t *testing.T) {
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 1})
	defer p.Close()
	ctx := context.Background()
	c, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p.Discard(c)
	if p.Live() != 0 {
		t.Errorf("live = %d after discard", p.Live())
	}
	// Capacity is released: the next acquire dials a fresh connection.
	c2, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	p.Release(c2)
	if p.Stats().Dials != 2 {
		t.Errorf("dials = %d", p.Stats().Dials)
	}
}

func TestPoolMaxAgeRetirement(t *testing.T) {
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 1, MaxAge: time.Nanosecond})
	defer p.Close()
	ctx := context.Background()
	c, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	p.Release(c) // aged out: closed instead of pooled
	if !c.Closed() {
		t.Error("aged connection should be closed on release")
	}
	if p.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", p.Stats().Evictions)
	}
}

func TestPoolQueryTimeout(t *testing.T) {
	srv := startServer(t, remote.Config{Latency: 200 * time.Millisecond})
	p := NewPool(srv.Addr(), PoolConfig{Max: 1})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Query(ctx, countQ); err == nil {
		t.Fatal("query should time out")
	}
	// The timed-out connection is not reusable mid-response; the pool must
	// have discarded it so the next query works.
	res, err := p.Query(context.Background(), countQ)
	if err != nil {
		t.Fatalf("pool poisoned after timeout: %v", err)
	}
	if res.N == 0 {
		t.Error("empty result")
	}
}

func TestPoolAddr(t *testing.T) {
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 1})
	defer p.Close()
	if p.Addr() != srv.Addr() {
		t.Error("addr mismatch")
	}
}
