package connection

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"vizq/internal/remote"
	"vizq/internal/tde/exec"
)

// Balancer fronts a cluster of identical server nodes (the TDE's server
// deployment, Sect. 4.1.4: "deployed either as a shared-nothing architecture
// or shared-everything architecture ... a load balancer dispatches queries
// to different nodes in the TDE cluster"). Each node gets its own connection
// pool; queries are dispatched to the node with the lowest load score,
// breaking ties round-robin.
//
// The score is live connections plus an advisory shed-pressure term fed by
// the cluster coordination layer (SetPressure): a node whose scheduler
// advertises shed pressure in its digest costs extra, so dispatch steers
// toward calm nodes *before* queries queue behind a hot one. Pressure is
// advisory — with every node equally pressured (or none reporting), the
// balancer degrades to plain least-loaded round-robin.
//
// On top of the load score sits node health (health.go): ejected and
// draining nodes are excluded from PickIndex entirely, suspect and probing
// nodes pay a score penalty, and if no node is routable the balancer falls
// back to scoring all of them so the fleet never goes dark by its own
// bookkeeping.
type Balancer struct {
	pools []*Pool
	next  atomic.Uint64
	// pressure[i] holds math.Float64bits of node i's advisory shed
	// pressure (≥ 0), stored atomically so digest readers update it
	// without blocking dispatch.
	pressure []atomic.Uint64

	health *healthTracker

	probeMu   sync.Mutex
	probeStop chan struct{}
	probeWG   sync.WaitGroup

	closeOnce sync.Once
}

// NewBalancer builds a balancer over node addresses, one pool per node.
func NewBalancer(addrs []string, cfg PoolConfig) (*Balancer, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("connection: balancer needs at least one node")
	}
	pools := make([]*Pool, 0, len(addrs))
	for _, a := range addrs {
		pools = append(pools, NewPool(a, cfg))
	}
	return NewBalancerFromPools(pools)
}

// NewBalancerFromPools builds a balancer over existing per-node pools
// (the cluster harness wires pools it also hands to each Data Server).
func NewBalancerFromPools(pools []*Pool) (*Balancer, error) {
	if len(pools) == 0 {
		return nil, fmt.Errorf("connection: balancer needs at least one node")
	}
	return &Balancer{
		pools:    pools,
		pressure: make([]atomic.Uint64, len(pools)),
		health:   newHealthTracker(len(pools), HealthConfig{}),
	}, nil
}

// SetPressure records node i's advisory shed pressure (typically the
// shed rate from its latest cluster digest, or queue depth normalized by
// its limit). Negative values clear it. Out-of-range indexes are ignored.
func (b *Balancer) SetPressure(i int, p float64) {
	if i < 0 || i >= len(b.pressure) {
		return
	}
	if p < 0 || math.IsNaN(p) {
		p = 0
	}
	b.pressure[i].Store(math.Float64bits(p))
}

// Pressure reads node i's advisory shed pressure.
func (b *Balancer) Pressure(i int) float64 {
	if i < 0 || i >= len(b.pressure) {
		return 0
	}
	return math.Float64frombits(b.pressure[i].Load())
}

// score is node i's dispatch cost: live connections plus pressure scaled
// by the pool's capacity, so a fully-pressured node (pressure 1.0) costs
// as much as one whose every connection slot is busy. Suspect and probing
// nodes pay an extra capacity-scaled penalty so traffic prefers nodes
// with a clean recent record.
func (b *Balancer) score(i int) float64 {
	p := b.pools[i]
	penalty := float64(p.Max())
	if penalty < 1 {
		penalty = 1
	}
	s := float64(p.Live()) + b.Pressure(i)*penalty
	switch b.State(i) {
	case NodeSuspect, NodeProbing:
		s += b.health.cfg.SuspectPenalty * penalty
	}
	return s
}

// PickIndex chooses the node for the next dispatch: lowest score among
// routable (not ejected, not draining) nodes wins, ties resolved
// round-robin. If no node is routable the pick falls back to scoring all
// nodes — the never-all-ejected invariant (see health.go). The rotation
// counter is kept unsigned all the way to the modulo — converting it
// through int first turns negative once the counter passes MaxInt64 and
// indexes out of bounds.
func (b *Balancer) PickIndex() int {
	return b.pickExcluding(-1)
}

// PickIndexExcluding chooses a routable node other than skip, for the
// retry and failover paths. It returns -1 when no other node is routable
// — unlike PickIndex it does NOT fall back to unroutable nodes, because
// its callers already hold a (failing) node and a retry against another
// known-bad node only burns the user's deadline.
func (b *Balancer) PickIndexExcluding(skip int) int {
	if len(b.pools) == 1 {
		return -1
	}
	return b.bestRoutable(b.next.Add(1), skip)
}

// bestRoutable scans all nodes from start, returning the lowest-scored
// routable node that is not skip, or -1 if none qualifies.
func (b *Balancer) bestRoutable(start uint64, skip int) int {
	n := uint64(len(b.pools))
	best := math.Inf(1)
	bestIdx := -1
	for i := uint64(0); i < n; i++ {
		idx := int((start + i) % n)
		if idx == skip || !b.Routable(idx) {
			continue
		}
		if s := b.score(idx); s < best {
			best, bestIdx = s, idx
		}
	}
	return bestIdx
}

// pickExcluding is PickIndex with an optional node to skip (-1 = none).
func (b *Balancer) pickExcluding(skip int) int {
	start := b.next.Add(1)
	n := uint64(len(b.pools))
	if bestIdx := b.bestRoutable(start, skip); bestIdx >= 0 {
		return bestIdx
	}
	// Never-all-ejected: every node is ejected or draining (or the only
	// node was skipped), so fall back to plain scoring over all of them.
	bestIdx := int(start % n)
	best := b.score(bestIdx)
	for i := uint64(1); i < n; i++ {
		idx := int((start + i) % n)
		if s := b.score(idx); s < best {
			best, bestIdx = s, idx
		}
	}
	return bestIdx
}

// pick chooses the next pool to dispatch to.
func (b *Balancer) pick() *Pool { return b.pools[b.PickIndex()] }

// Blameworthy reports whether a dispatch error should count against the
// node that produced it: a transport-classified failure that is not
// attributable to the caller. Caller cancellations and deadline timeouts
// are excluded — IsTransport classifies them as transport, but the conn
// deadline is set *from* the caller's context, so a timeout says "the
// caller ran out of patience", not "the node is down". (The conn
// deadline and the context timer race by microseconds, so checking
// ctx.Err() alone misattributes timeouts that land first.) Node death in
// this system manifests as refused/reset/EOF, which stay blameworthy.
func Blameworthy(ctx context.Context, err error) bool {
	if err == nil || !IsTransport(err) || ctx.Err() != nil {
		return false
	}
	return !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, os.ErrDeadlineExceeded)
}

// Query dispatches one query to a node, feeding the outcome into health
// tracking. On a blameworthy transport error it retries once on a
// different routable node — a single node crashing mid-dispatch should
// cost one internal retry, not a user-visible error. Failures
// attributable to the caller (cancel, deadline) neither count against
// the node nor trigger the retry.
func (b *Balancer) Query(ctx context.Context, tql string) (*exec.Result, error) {
	i := b.PickIndex()
	res, err := b.pools[i].Query(ctx, tql)
	if err == nil || !IsTransport(err) {
		b.ReportResult(i, err)
		return res, err
	}
	if !Blameworthy(ctx, err) {
		return res, err
	}
	b.ReportResult(i, err)
	j := b.PickIndexExcluding(i)
	if j < 0 {
		return res, err
	}
	cHealthRetry.Inc()
	res, err = b.pools[j].Query(ctx, tql)
	if err == nil || !IsTransport(err) || Blameworthy(ctx, err) {
		b.ReportResult(j, err)
	}
	return res, err
}

// Nodes returns the per-node pools (for stats).
func (b *Balancer) Nodes() []*Pool { return b.pools }

// Close stops the background prober and shuts every node pool. It is
// idempotent and safe to call concurrently with dispatch: PickIndex on a
// closed balancer still returns a valid index (the pool then reports
// ErrPoolClosed).
func (b *Balancer) Close() {
	b.closeOnce.Do(func() {
		b.StopProbes()
		var wg sync.WaitGroup
		for _, p := range b.pools {
			wg.Add(1)
			go func(p *Pool) {
				defer wg.Done()
				p.Close()
			}(p)
		}
		wg.Wait()
	})
}

// pingNode dials a fresh connection to addr and pings it, bounded by ctx.
// Used by health probes so they never consume a pool slot.
func pingNode(ctx context.Context, addr string) error {
	type dialRes struct {
		c   *remote.Conn
		err error
	}
	ch := make(chan dialRes, 1)
	go func() {
		c, err := remote.Dial(addr)
		ch <- dialRes{c, err}
	}()
	select {
	case <-ctx.Done():
		// Abandon the dial; if it lands, close the connection.
		go func() {
			if r := <-ch; r.c != nil {
				r.c.Close()
			}
		}()
		return ctx.Err()
	case r := <-ch:
		if r.err != nil {
			return r.err
		}
		defer r.c.Close()
		return r.c.Ping(ctx)
	}
}
