package connection

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"vizq/internal/tde/exec"
)

// Balancer fronts a cluster of identical server nodes (the TDE's server
// deployment, Sect. 4.1.4: "deployed either as a shared-nothing architecture
// or shared-everything architecture ... a load balancer dispatches queries
// to different nodes in the TDE cluster"). Each node gets its own connection
// pool; queries are dispatched to the node with the lowest load score,
// breaking ties round-robin.
//
// The score is live connections plus an advisory shed-pressure term fed by
// the cluster coordination layer (SetPressure): a node whose scheduler
// advertises shed pressure in its digest costs extra, so dispatch steers
// toward calm nodes *before* queries queue behind a hot one. Pressure is
// advisory — with every node equally pressured (or none reporting), the
// balancer degrades to plain least-loaded round-robin.
type Balancer struct {
	pools []*Pool
	next  atomic.Uint64
	// pressure[i] holds math.Float64bits of node i's advisory shed
	// pressure (≥ 0), stored atomically so digest readers update it
	// without blocking dispatch.
	pressure []atomic.Uint64
}

// NewBalancer builds a balancer over node addresses, one pool per node.
func NewBalancer(addrs []string, cfg PoolConfig) (*Balancer, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("connection: balancer needs at least one node")
	}
	pools := make([]*Pool, 0, len(addrs))
	for _, a := range addrs {
		pools = append(pools, NewPool(a, cfg))
	}
	return NewBalancerFromPools(pools)
}

// NewBalancerFromPools builds a balancer over existing per-node pools
// (the cluster harness wires pools it also hands to each Data Server).
func NewBalancerFromPools(pools []*Pool) (*Balancer, error) {
	if len(pools) == 0 {
		return nil, fmt.Errorf("connection: balancer needs at least one node")
	}
	return &Balancer{pools: pools, pressure: make([]atomic.Uint64, len(pools))}, nil
}

// SetPressure records node i's advisory shed pressure (typically the
// shed rate from its latest cluster digest, or queue depth normalized by
// its limit). Negative values clear it. Out-of-range indexes are ignored.
func (b *Balancer) SetPressure(i int, p float64) {
	if i < 0 || i >= len(b.pressure) {
		return
	}
	if p < 0 || math.IsNaN(p) {
		p = 0
	}
	b.pressure[i].Store(math.Float64bits(p))
}

// Pressure reads node i's advisory shed pressure.
func (b *Balancer) Pressure(i int) float64 {
	if i < 0 || i >= len(b.pressure) {
		return 0
	}
	return math.Float64frombits(b.pressure[i].Load())
}

// score is node i's dispatch cost: live connections plus pressure scaled
// by the pool's capacity, so a fully-pressured node (pressure 1.0) costs
// as much as one whose every connection slot is busy.
func (b *Balancer) score(i int) float64 {
	p := b.pools[i]
	penalty := float64(p.Max())
	if penalty < 1 {
		penalty = 1
	}
	return float64(p.Live()) + b.Pressure(i)*penalty
}

// PickIndex chooses the node for the next dispatch: lowest score wins,
// ties resolved round-robin. The rotation counter is kept unsigned all
// the way to the modulo — converting it through int first turns negative
// once the counter passes MaxInt64 and indexes out of bounds.
func (b *Balancer) PickIndex() int {
	start := b.next.Add(1)
	n := uint64(len(b.pools))
	bestIdx := int(start % n)
	best := b.score(bestIdx)
	for i := uint64(1); i < n; i++ {
		idx := int((start + i) % n)
		if s := b.score(idx); s < best {
			best, bestIdx = s, idx
		}
	}
	return bestIdx
}

// pick chooses the next pool to dispatch to.
func (b *Balancer) pick() *Pool { return b.pools[b.PickIndex()] }

// Query dispatches one query to a node.
func (b *Balancer) Query(ctx context.Context, tql string) (*exec.Result, error) {
	return b.pick().Query(ctx, tql)
}

// Nodes returns the per-node pools (for stats).
func (b *Balancer) Nodes() []*Pool { return b.pools }

// Close shuts every node pool.
func (b *Balancer) Close() {
	var wg sync.WaitGroup
	for _, p := range b.pools {
		wg.Add(1)
		go func(p *Pool) {
			defer wg.Done()
			p.Close()
		}(p)
	}
	wg.Wait()
}
