package connection

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"vizq/internal/tde/exec"
)

// Balancer fronts a cluster of identical server nodes (the TDE's server
// deployment, Sect. 4.1.4: "deployed either as a shared-nothing architecture
// or shared-everything architecture ... a load balancer dispatches queries
// to different nodes in the TDE cluster"). Each node gets its own connection
// pool; queries are dispatched to the node with the fewest live connections,
// breaking ties round-robin.
type Balancer struct {
	pools []*Pool
	next  uint64
}

// NewBalancer builds a balancer over node addresses, one pool per node.
func NewBalancer(addrs []string, cfg PoolConfig) (*Balancer, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("connection: balancer needs at least one node")
	}
	b := &Balancer{}
	for _, a := range addrs {
		b.pools = append(b.pools, NewPool(a, cfg))
	}
	return b, nil
}

// pick chooses the least-loaded pool (ties resolved round-robin).
func (b *Balancer) pick() *Pool {
	start := int(atomic.AddUint64(&b.next, 1))
	best := b.pools[start%len(b.pools)]
	for i := 0; i < len(b.pools); i++ {
		p := b.pools[(start+i)%len(b.pools)]
		if p.Live() < best.Live() {
			best = p
		}
	}
	return best
}

// Query dispatches one query to a node.
func (b *Balancer) Query(ctx context.Context, tql string) (*exec.Result, error) {
	return b.pick().Query(ctx, tql)
}

// Nodes returns the per-node pools (for stats).
func (b *Balancer) Nodes() []*Pool { return b.pools }

// Close shuts every node pool.
func (b *Balancer) Close() {
	var wg sync.WaitGroup
	for _, p := range b.pools {
		wg.Add(1)
		go func(p *Pool) {
			defer wg.Done()
			p.Close()
		}(p)
	}
	wg.Wait()
}
