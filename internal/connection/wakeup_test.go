package connection

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vizq/internal/remote"
)

// trapCtx is a context whose Done() — called by Acquire's select when a
// waiter commits to waiting, after it released the pool lock but before
// it parks on the wakeup channel — announces the call and then blocks
// until the test opens the gate. It freezes a waiter deterministically
// inside the lost-wakeup window that real schedulers only hit by chance.
type trapCtx struct {
	context.Context
	reached chan struct{} // closed on first Done() call
	gate    chan struct{} // Done() returns once this closes
	once    sync.Once
}

func (c *trapCtx) Done() <-chan struct{} {
	c.once.Do(func() {
		close(c.reached)
		<-c.gate
	})
	return c.Context.Done()
}

// TestLostWakeupRegression is the deterministic regression test for the
// pool's lost-wakeup bug. The old signal() did a non-blocking send into a
// 1-buffered token channel; a send arriving while no waiter is parked yet
// — the waiter has seen the pool full and released the lock, but has not
// reached its select — lands in the buffer, and the next send is dropped
// on the floor. Two connections released in that window carry one token
// for two committed waiters: one waiter sleeps until its deadline while
// an idle connection sits in the pool and nothing will ever signal again.
//
// The test freezes two waiters in exactly that window with trapCtx, then
// releases both held connections, then lets the waiters proceed. Pre-fix,
// exactly one waiter starves and times out; with the broadcast generation
// channel (captured under the pool lock, so a close cannot slip past a
// committed waiter) both wake and acquire.
func TestLostWakeupRegression(t *testing.T) {
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 2})
	defer p.Close()

	held := make([]*remote.Conn, 2)
	for i := range held {
		c, err := p.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		held[i] = c
	}

	gate := make(chan struct{})
	errc := make(chan error, 2)
	won := make(chan *remote.Conn, 2)
	var wg sync.WaitGroup
	traps := make([]*trapCtx, 2)
	for i := range traps {
		parent, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		tc := &trapCtx{Context: parent, reached: make(chan struct{}), gate: gate}
		traps[i] = tc
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := p.Acquire(tc)
			if err != nil {
				errc <- err
				return
			}
			// Hold until every waiter has acquired: a waiter releasing
			// right away would re-signal and paper over a dropped token.
			won <- c
		}()
	}
	// Both waiters are now frozen between the capacity check and the park:
	// they have committed to waiting but cannot receive a wakeup yet.
	for _, tc := range traps {
		<-tc.reached
	}
	// Two releases land in the window. The buggy token channel buffers the
	// first and drops the second.
	p.Release(held[0])
	p.Release(held[1])
	close(gate)

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("a committed waiter never woke (lost wakeup): %v", err)
	}
	close(won)
	for c := range won {
		p.Release(c)
	}
}

// TestNoLostWakeupUnderConcurrentReleases stresses the same property
// through real scheduler timing: racing releases against blocked
// acquirers that hold what they win until every waiter has acquired.
//
// The test saturates the pool, blocks Max acquirers behind it, then
// returns all held connections from racing goroutines. The blocked
// acquirers HOLD what they win until every one of them has acquired —
// with capacity for all of them, all must succeed. Pre-fix, a dropped
// token means one waiter sleeps while an idle connection sits in the
// pool and nobody will ever signal again; its context times out and the
// test fails. Post-fix every round completes in microseconds.
func TestNoLostWakeupUnderConcurrentReleases(t *testing.T) {
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 2})
	defer p.Close()

	const (
		waiters = 2 // == Max: capacity exists for every blocked acquirer
		rounds  = 300
	)
	for round := 0; round < rounds; round++ {
		// Saturate the pool.
		held := make([]*remote.Conn, 0, waiters)
		for i := 0; i < waiters; i++ {
			c, err := p.Acquire(context.Background())
			if err != nil {
				t.Fatalf("round %d: saturate acquire: %v", round, err)
			}
			held = append(held, c)
		}

		var woke atomic.Int64
		var wg sync.WaitGroup
		errc := make(chan error, waiters)
		acquired := make(chan *remote.Conn, waiters)
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				c, err := p.Acquire(ctx)
				if err != nil {
					errc <- err
					return
				}
				woke.Add(1)
				acquired <- c // hold: released only after ALL waiters won
			}()
		}

		// Give the waiters a moment to block, then release the held
		// connections from racing goroutines — the exact interleaving the
		// buggy 1-buffered token channel dropped.
		time.Sleep(200 * time.Microsecond) //vizlint:allow sleep -- racing releases against blocked waiters is the point of this test
		var rel sync.WaitGroup
		for _, c := range held {
			rel.Add(1)
			go func(c *remote.Conn) {
				defer rel.Done()
				p.Release(c)
			}(c)
		}
		rel.Wait()
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatalf("round %d: a waiter never woke (lost wakeup): %v", round, err)
		}
		if got := woke.Load(); got != waiters {
			t.Fatalf("round %d: %d/%d waiters acquired", round, got, waiters)
		}
		close(acquired)
		for c := range acquired {
			p.Release(c)
		}
	}
}

// TestCloseWakesBlockedAcquirers pins that Close broadcasts: acquirers
// blocked on a saturated pool must fail with "pool closed" promptly, not
// hang until their contexts expire.
func TestCloseWakesBlockedAcquirers(t *testing.T) {
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 1})
	c, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := p.Acquire(ctx)
		errc <- err
	}()
	time.Sleep(time.Millisecond) //vizlint:allow sleep -- let the acquirer block before closing
	p.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("acquire on a closed pool succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked acquirer not woken by Close")
	}
	c.Close()
	p.Release(c)
}
