package connection

import (
	"context"
	"sync"
	"testing"
	"time"

	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/workload"
)

func startServer(t testing.TB, cfg remote.Config) *remote.Server {
	t.Helper()
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 4000, Days: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

const countQ = `(aggregate (table flights) (groupby carrier) (aggs (n count *)))`

func TestPoolReuse(t *testing.T) {
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 2})
	defer p.Close()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := p.Query(ctx, countQ); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Dials != 1 {
		t.Errorf("dials = %d, want 1 (serial use reuses one connection)", st.Dials)
	}
	if st.Reuses != 4 {
		t.Errorf("reuses = %d", st.Reuses)
	}
}

func TestPoolCapBlocksAndReleases(t *testing.T) {
	srv := startServer(t, remote.Config{Latency: 10 * time.Millisecond})
	p := NewPool(srv.Addr(), PoolConfig{Max: 2})
	defer p.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Query(ctx, countQ); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p.Live() > 2 {
		t.Errorf("live = %d, want <= 2", p.Live())
	}
	if p.Stats().Dials > 2 {
		t.Errorf("dials = %d, want <= 2", p.Stats().Dials)
	}
}

func TestPoolAcquireTimeout(t *testing.T) {
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 1})
	defer p.Close()
	c, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx); err == nil {
		t.Error("acquire should time out when the pool is exhausted")
	}
	p.Release(c)
	// Now acquiring works again.
	c2, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.Release(c2)
}

func TestPoolIdleEviction(t *testing.T) {
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 2, IdleTimeout: 20 * time.Millisecond})
	defer p.Close()
	ctx := context.Background()
	if _, err := p.Query(ctx, countQ); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// The idle connection ages out on the next acquire; a fresh one dials.
	if _, err := p.Query(ctx, countQ); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d", st.Evictions)
	}
	if st.Dials != 2 {
		t.Errorf("dials = %d", st.Dials)
	}
}

func TestPoolTempStateReuse(t *testing.T) {
	// Temporary structures survive in pooled sessions and are reusable by
	// later queries multiplexed onto the same connection (Sect. 3.5).
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 1})
	defer p.Close()
	ctx := context.Background()
	c, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := c.Query(ctx, `(topn (distinct (project (table flights) (carrier carrier))) 2 (asc carrier))`)
	if err != nil {
		t.Fatal(err)
	}
	name, err := c.CreateTempTable(ctx, "keep", vals)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(c)
	// The next acquire gets the same session; the temp table is still there.
	res, err := p.Query(ctx, `(aggregate (table `+name+`) (groupby) (aggs (n count *)))`)
	if err != nil {
		t.Fatalf("temp table lost across pool reuse: %v", err)
	}
	if res.Value(0, 0).I != 2 {
		t.Errorf("rows = %d", res.Value(0, 0).I)
	}
}

func TestPoolClose(t *testing.T) {
	srv := startServer(t, remote.Config{})
	p := NewPool(srv.Addr(), PoolConfig{Max: 1})
	if _, err := p.Query(context.Background(), countQ); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Acquire(context.Background()); err == nil {
		t.Error("acquire after close should fail")
	}
}
