package connection

import (
	"context"
	"sync"
	"testing"
	"time"

	"vizq/internal/chaos"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/workload"
)

// TestPoolStressWithTransportErrors hammers one pool from many goroutines
// through a proxy that kills half the connections mid-flight. Whatever mix
// of successes, transport errors and dial errors results, the pool must
// neither leak connections nor lose count: Live() stays within Max, every
// broken connection is discarded rather than pooled, and the stats identity
// Dials == Live + Evictions + Discards holds at every quiescent point.
// Run under -race this also shakes out torn counter updates.
func TestPoolStressWithTransportErrors(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 2000, Days: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), remote.Config{Latency: 5 * time.Millisecond})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy, err := chaos.New(srv.Addr(), chaos.RandomKill(42, 0.5, time.Millisecond, 21*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	p := NewPool(proxy.Addr(), PoolConfig{Max: 4})
	defer p.Close()

	const workers = 8
	const queriesPerWorker = 15
	var wg sync.WaitGroup
	var okCount, errCount int64
	var cnt sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPerWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, err := p.Query(ctx,
					`(aggregate (table flights) (groupby carrier) (aggs (n count *)))`)
				cancel()
				cnt.Lock()
				if err != nil {
					errCount++
				} else {
					okCount++
				}
				cnt.Unlock()
			}
		}()
	}
	wg.Wait()

	if okCount == 0 {
		t.Fatal("no query ever succeeded: proxy or backend misconfigured")
	}
	if errCount == 0 {
		t.Fatal("no query ever failed: the chaos proxy injected no faults")
	}

	st := p.Stats()
	if st.Discards == 0 {
		t.Fatal("transport errors occurred but no connection was discarded")
	}
	if live := p.Live(); live > 4 {
		t.Fatalf("pool leaked connections: Live() = %d > Max 4", live)
	}
	if got, want := st.Dials, int64(p.Live())+st.Evictions+st.Discards; got != want {
		t.Fatalf("stats identity broken after stress: Dials=%d, Live+Evictions+Discards=%d (live=%d ev=%d disc=%d)",
			got, want, p.Live(), st.Evictions, st.Discards)
	}

	// Closing the pool retires the idle connections as evictions; the
	// identity must survive shutdown too.
	p.Close()
	if live := p.Live(); live != 0 {
		t.Fatalf("Live() = %d after Close, want 0", live)
	}
	st = p.Stats()
	if got, want := st.Dials, st.Evictions+st.Discards; got != want {
		t.Fatalf("stats identity broken after Close: Dials=%d, Evictions+Discards=%d", got, want)
	}
}
