package connection

import (
	"context"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/workload"
)

// chaosProxy relays TCP connections to a backend and kills a deterministic
// fraction of them after a short random delay, simulating mid-query network
// failures. It is protocol-agnostic: the pool under test sees genuine
// EOF/reset transport errors, exactly what a dying database produces.
type chaosProxy struct {
	ln      net.Listener
	backend string

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
}

func newChaosProxy(t *testing.T, backend string, seed int64) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, backend: backend}
	go p.acceptLoop(seed)
	return p
}

func (p *chaosProxy) Addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) acceptLoop(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		// Decide this connection's fate up front so the accept loop owns
		// all randomness (rng is not goroutine-safe).
		kill := rng.Intn(2) == 0
		delay := time.Duration(1+rng.Intn(20)) * time.Millisecond
		server, err := net.Dial("tcp", p.backend)
		if err != nil {
			client.Close()
			continue
		}
		p.track(client, server)
		go func() { _, _ = io.Copy(server, client); server.Close() }()
		go func() { _, _ = io.Copy(client, server); client.Close() }()
		if kill {
			go func() {
				time.Sleep(delay)
				client.Close()
				server.Close()
			}()
		}
	}
}

func (p *chaosProxy) track(cs ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		for _, c := range cs {
			c.Close()
		}
		return
	}
	p.conns = append(p.conns, cs...)
}

func (p *chaosProxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// TestPoolStressWithTransportErrors hammers one pool from many goroutines
// through a proxy that kills half the connections mid-flight. Whatever mix
// of successes, transport errors and dial errors results, the pool must
// neither leak connections nor lose count: Live() stays within Max, every
// broken connection is discarded rather than pooled, and the stats identity
// Dials == Live + Evictions + Discards holds at every quiescent point.
// Run under -race this also shakes out torn counter updates.
func TestPoolStressWithTransportErrors(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 2000, Days: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), remote.Config{Latency: 5 * time.Millisecond})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy := newChaosProxy(t, srv.Addr(), 42)
	defer proxy.Close()

	p := NewPool(proxy.Addr(), PoolConfig{Max: 4})
	defer p.Close()

	const workers = 8
	const queriesPerWorker = 15
	var wg sync.WaitGroup
	var okCount, errCount int64
	var cnt sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPerWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, err := p.Query(ctx,
					`(aggregate (table flights) (groupby carrier) (aggs (n count *)))`)
				cancel()
				cnt.Lock()
				if err != nil {
					errCount++
				} else {
					okCount++
				}
				cnt.Unlock()
			}
		}()
	}
	wg.Wait()

	if okCount == 0 {
		t.Fatal("no query ever succeeded: proxy or backend misconfigured")
	}
	if errCount == 0 {
		t.Fatal("no query ever failed: the chaos proxy injected no faults")
	}

	st := p.Stats()
	if st.Discards == 0 {
		t.Fatal("transport errors occurred but no connection was discarded")
	}
	if live := p.Live(); live > 4 {
		t.Fatalf("pool leaked connections: Live() = %d > Max 4", live)
	}
	if got, want := st.Dials, int64(p.Live())+st.Evictions+st.Discards; got != want {
		t.Fatalf("stats identity broken after stress: Dials=%d, Live+Evictions+Discards=%d (live=%d ev=%d disc=%d)",
			got, want, p.Live(), st.Evictions, st.Discards)
	}

	// Closing the pool retires the idle connections as evictions; the
	// identity must survive shutdown too.
	p.Close()
	if live := p.Live(); live != 0 {
		t.Fatalf("Live() = %d after Close, want 0", live)
	}
	st = p.Stats()
	if got, want := st.Dials, st.Evictions+st.Discards; got != want {
		t.Fatalf("stats identity broken after Close: Dials=%d, Evictions+Discards=%d", got, want)
	}
}
