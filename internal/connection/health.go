// Node health tracking for the balancer. The balancer's score (live
// connections + advisory shed pressure) assumes every node is reachable;
// a crashed or restarting node keeps its score low precisely because
// nothing can connect to it, so a load-only balancer steers *more*
// traffic at a dead node and every dispatched session burns a full dial
// timeout before erroring to the user. Health tracking closes that hole
// with a per-node state machine
//
//	healthy → suspect → ejected → probing → healthy
//
// driven passively by transport-classified error streaks reported from
// the dispatch path (ReportResult) and actively by cheap background
// probes (MaybeProbe / StartProbes). Ejected nodes are excluded from
// PickIndex; recovery mirrors resilience.Breaker's half-open semantics —
// after a cooldown a single probe (one ping on a fresh connection, never
// a pooled slot) is admitted, and only its success re-admits the node.
// A node administratively marked draining (the digest bit peers publish
// before a rolling restart) is excluded the same way but never probed:
// it will come back when its operator says so, not when a ping succeeds.
//
// Invariant: the fleet never goes fully dark by its own bookkeeping.
// When every node is ejected or draining, PickIndex falls back to plain
// least-loaded scoring over all nodes — a wrong guess against a dead
// fleet costs one dial timeout, while refusing to dispatch at all turns
// a transient full outage into a permanent one.
package connection

import (
	"context"
	"sync"
	"time"

	"vizq/internal/obs"
)

// Balancer health metrics, shared process-wide.
var (
	cHealthSuspect   = obs.C("balancer.health.suspect")
	cHealthEject     = obs.C("balancer.health.eject")
	cHealthProbe     = obs.C("balancer.health.probe")
	cHealthProbeFail = obs.C("balancer.health.probe_fail")
	cHealthReadmit   = obs.C("balancer.health.readmit")
	cHealthRetry     = obs.C("balancer.health.retries")
	gHealthEjected   = obs.G("balancer.health.ejected")
)

// NodeState is one node's position in the health state machine.
type NodeState int

const (
	// NodeHealthy receives traffic normally.
	NodeHealthy NodeState = iota
	// NodeSuspect receives traffic at a score penalty: one more failure
	// streak step ejects it, one success clears it.
	NodeSuspect
	// NodeEjected receives no traffic until a probe succeeds.
	NodeEjected
	// NodeProbing has one half-open probe in flight; its outcome decides
	// between re-admission and renewed ejection.
	NodeProbing
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case NodeHealthy:
		return "healthy"
	case NodeSuspect:
		return "suspect"
	case NodeEjected:
		return "ejected"
	case NodeProbing:
		return "probing"
	}
	return "unknown"
}

// HealthConfig tunes the balancer's node health tracking. Zero fields
// take the defaults noted on them.
type HealthConfig struct {
	// SuspectAfter is the consecutive transport-failure streak that marks
	// a node suspect (default 1).
	SuspectAfter int
	// EjectAfter is the streak that ejects a node (default 3).
	EjectAfter int
	// ProbeAfter is the cooldown an ejected node sits out before a probe
	// may be admitted (default 1s).
	ProbeAfter time.Duration
	// ProbeTimeout bounds one active probe's dial+ping round trip
	// (default 1s).
	ProbeTimeout time.Duration
	// SuspectPenalty scales the score penalty of suspect and probing
	// nodes, in units of the pool's capacity — 1.0 makes a suspect node
	// cost as much as a fully busy one (default 0.5).
	SuspectPenalty float64
	// Clock supplies the cooldown timebase (default time.Now; the
	// deterministic cluster harness injects its fake clock).
	Clock func() time.Time
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.EjectAfter < c.SuspectAfter {
		c.EjectAfter = c.SuspectAfter
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.SuspectPenalty <= 0 {
		c.SuspectPenalty = 0.5
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// nodeHealth is one node's tracked state.
type nodeHealth struct {
	state     NodeState
	streak    int       // consecutive transport failures
	ejectedAt time.Time // when the node last entered ejected
	probing   bool      // a half-open probe slot is claimed
	draining  bool      // administratively out of rotation (digest bit)
}

// healthTracker guards the per-node states. It is a separate lock from
// the pools so dispatch scoring and health reports never contend with
// pool internals.
type healthTracker struct {
	mu    sync.Mutex
	cfg   HealthConfig
	nodes []nodeHealth
}

func newHealthTracker(n int, cfg HealthConfig) *healthTracker {
	return &healthTracker{cfg: cfg.withDefaults(), nodes: make([]nodeHealth, n)}
}

// ConfigureHealth replaces the balancer's health tuning, resetting all
// nodes to healthy. Call before serving traffic.
func (b *Balancer) ConfigureHealth(cfg HealthConfig) {
	h := b.health
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cfg = cfg.withDefaults()
	for i := range h.nodes {
		h.nodes[i] = nodeHealth{draining: h.nodes[i].draining}
	}
	gHealthEjected.Set(0)
}

// State reports node i's health state.
func (b *Balancer) State(i int) NodeState {
	h := b.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= len(h.nodes) {
		return NodeHealthy
	}
	return h.nodes[i].state
}

// Routable reports whether dispatch may steer traffic to node i: not
// ejected and not draining. Probing and suspect nodes are routable (at a
// score penalty) — a probe must be able to reach the node, and a suspect
// is still serving.
func (b *Balancer) Routable(i int) bool {
	h := b.health
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.routableLocked(i)
}

func (h *healthTracker) routableLocked(i int) bool {
	if i < 0 || i >= len(h.nodes) {
		return false
	}
	n := &h.nodes[i]
	return !n.draining && n.state != NodeEjected
}

// SetDraining marks node i administratively out of rotation (true) or
// back in (false). Draining is orthogonal to the failure-driven states:
// it is set from the drain bit in peers' load digests, and clearing it
// restores whatever failure state the node was in.
func (b *Balancer) SetDraining(i int, on bool) {
	h := b.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= len(h.nodes) {
		return
	}
	h.nodes[i].draining = on
}

// NodeDraining reports node i's administrative drain bit.
func (b *Balancer) NodeDraining(i int) bool {
	h := b.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= len(h.nodes) {
		return false
	}
	return h.nodes[i].draining
}

// ReportResult feeds one dispatch outcome into node i's health state.
// Transport-classified errors extend the failure streak (suspect at
// SuspectAfter, ejected at EjectAfter); anything else — success or a
// query-level error, which proves the node answered — resets it. Callers
// whose own context was canceled should not report the resulting error:
// it says nothing about the node. A failure while probing re-ejects the
// node and restarts its cooldown.
func (b *Balancer) ReportResult(i int, err error) {
	h := b.health
	failure := err != nil && IsTransport(err)
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= len(h.nodes) {
		return
	}
	n := &h.nodes[i]
	if !failure {
		n.streak = 0
		switch n.state {
		case NodeSuspect:
			n.state = NodeHealthy
		case NodeProbing:
			// The half-open probe came back healthy: re-admit.
			n.state = NodeHealthy
			n.probing = false
			cHealthReadmit.Inc()
			h.updateEjectedGaugeLocked()
		}
		return
	}
	n.streak++
	switch n.state {
	case NodeHealthy, NodeSuspect:
		if n.streak >= h.cfg.EjectAfter {
			h.ejectLocked(n)
		} else if n.state == NodeHealthy && n.streak >= h.cfg.SuspectAfter {
			n.state = NodeSuspect
			cHealthSuspect.Inc()
		}
	case NodeProbing:
		// The probe failed: back to ejected, cooldown restarted.
		n.probing = false
		cHealthProbeFail.Inc()
		h.ejectLocked(n)
	case NodeEjected:
		// A straggling in-flight request failed after ejection; nothing
		// new to learn.
	}
}

// ejectLocked moves a node to ejected and restarts its probe cooldown.
func (h *healthTracker) ejectLocked(n *nodeHealth) {
	n.state = NodeEjected
	n.ejectedAt = h.cfg.Clock()
	cHealthEject.Inc()
	h.updateEjectedGaugeLocked()
}

func (h *healthTracker) updateEjectedGaugeLocked() {
	var ejected int64
	for i := range h.nodes {
		if h.nodes[i].state == NodeEjected {
			ejected++
		}
	}
	gHealthEjected.Set(ejected)
}

// acquireProbeSlot claims node i's half-open probe slot if the node is
// ejected, past its cooldown, not draining, and no probe is in flight.
func (h *healthTracker) acquireProbeSlot(i int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= len(h.nodes) {
		return false
	}
	n := &h.nodes[i]
	if n.draining || n.state != NodeEjected || n.probing {
		return false
	}
	if h.cfg.Clock().Sub(n.ejectedAt) < h.cfg.ProbeAfter {
		return false
	}
	n.state = NodeProbing
	n.probing = true
	h.updateEjectedGaugeLocked()
	return true
}

// MaybeProbe actively probes node i if it is ejected and due: one dial
// plus one ping on a fresh connection (never a pooled slot — probes must
// stay cheap and must not contend with admitted work). It returns true
// when a probe ran, false when the node was not due. The probe's outcome
// drives the state machine exactly like a dispatched request's would:
// success re-admits, failure re-ejects with a fresh cooldown.
func (b *Balancer) MaybeProbe(ctx context.Context, i int) bool {
	if !b.health.acquireProbeSlot(i) {
		return false
	}
	b.probe(ctx, i)
	return true
}

// probe runs the dial+ping round trip against node i and reports it.
func (b *Balancer) probe(ctx context.Context, i int) {
	_, sp := obs.StartSpan(ctx, obs.SpanHealthProbe)
	defer sp.Finish()
	sp.Annotate("node", b.pools[i].Addr())
	cHealthProbe.Inc()
	pctx, cancel := context.WithTimeout(ctx, b.health.cfg.ProbeTimeout)
	defer cancel()
	err := pingNode(pctx, b.pools[i].Addr())
	if err != nil {
		sp.Annotate("outcome", "fail")
	} else {
		sp.Annotate("outcome", "ok")
	}
	b.ReportResult(i, err)
}

// StartProbes launches the background prober: every interval it offers
// each ejected-and-due node one half-open probe. Idempotent; stop with
// StopProbes.
func (b *Balancer) StartProbes(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	if b.probeStop != nil {
		return
	}
	stop := make(chan struct{})
	b.probeStop = stop
	b.probeWG.Add(1)
	go func() {
		defer b.probeWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				for i := range b.pools {
					b.MaybeProbe(context.Background(), i)
				}
			}
		}
	}()
}

// StopProbes halts the background prober and waits for it. Idempotent.
func (b *Balancer) StopProbes() {
	b.probeMu.Lock()
	stop := b.probeStop
	b.probeStop = nil
	b.probeMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	b.probeWG.Wait()
}
