package connection

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/workload"
)

// TestServerDeathMidQueryDiscardsConn is the regression test for the pool
// poisoning bug: a connection whose server died mid-query (EOF/reset on the
// wire) must be discarded, not released back into the idle list where it
// would poison the next caller.
func TestServerDeathMidQueryDiscardsConn(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 2000, Days: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), remote.Config{Latency: 300 * time.Millisecond})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	p := NewPool(srv.Addr(), PoolConfig{Max: 2})
	defer p.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := p.Query(context.Background(),
			`(aggregate (table flights) (groupby carrier) (aggs (n count *)))`)
		errCh <- err
	}()

	// Wait for the query's connection to be live, then kill the server
	// while the request is inside the 300ms latency window.
	deadline := time.Now().Add(2 * time.Second)
	for p.Live() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never dialed")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the request hit the wire
	srv.Close()

	if err := <-errCh; err == nil {
		t.Fatal("expected a transport error from the killed server")
	}

	if live := p.Live(); live != 0 {
		t.Fatalf("dead connection retained by the pool: Live() = %d, want 0", live)
	}
	st := p.Stats()
	if st.Discards != 1 {
		t.Fatalf("Stats().Discards = %d, want 1 (dead conn must be discarded, not released)", st.Discards)
	}
	if st.Dials != st.Discards+st.Evictions+int64(p.Live()) {
		t.Fatalf("stats do not add up: dials=%d discards=%d evictions=%d live=%d",
			st.Dials, st.Discards, st.Evictions, p.Live())
	}
}

// timeoutErr implements net.Error-ish Timeout() but reports false: the old
// predicate treated any Timeout()-shaped error as transport without calling
// Timeout(), and missed EOF/closed entirely.
type timeoutErr struct{ timeout bool }

func (e *timeoutErr) Error() string { return "timeoutErr" }

func (e *timeoutErr) Timeout() bool { return e.timeout }

func TestIsTransportPredicate(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"EOF", io.EOF, true},
		{"wrapped EOF", fmt.Errorf("read frame: %w", io.EOF), true},
		{"unexpected EOF", io.ErrUnexpectedEOF, true},
		{"net.ErrClosed", net.ErrClosed, true},
		{"op error", &net.OpError{Op: "read", Net: "tcp", Err: errors.New("connection reset by peer")}, true},
		{"context canceled", context.Canceled, true},
		{"context deadline", context.DeadlineExceeded, true},
		{"timeout true", &timeoutErr{timeout: true}, true},
		{"timeout false", &timeoutErr{timeout: false}, false},
		{"query error", fmt.Errorf("remote: no such column"), false},
	}
	for _, c := range cases {
		if got := IsTransport(c.err); got != c.want {
			t.Errorf("IsTransport(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}
