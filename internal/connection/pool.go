// Package connection manages pooled connections to remote data sources
// (Sect. 3.5): opening a connection and retrieving metadata is costly, so
// connections are pooled and kept around even when idle; an age-wise
// eviction policy releases remote resources unused for long periods.
// Queries from different components are multiplexed across the pool's
// connections regardless of their remote session state.
package connection

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"vizq/internal/obs"
	"vizq/internal/remote"
	"vizq/internal/tde/exec"
)

// Pool metrics, shared process-wide across pools.
var (
	mWaitNS   = obs.H("pool.acquire.wait.ns")  // queue wait only (capacity contention)
	mTotalNS  = obs.H("pool.acquire.total.ns") // full Acquire latency incl. dial time
	gLive     = obs.G("pool.live")
	cDials    = obs.C("pool.dials")
	cDialErrs = obs.C("pool.dial_errors")
	cReuses   = obs.C("pool.reuses")
	cEvicts   = obs.C("pool.evictions")
	cDiscards = obs.C("pool.discards")
)

// PoolConfig tunes a pool.
type PoolConfig struct {
	// Max bounds the number of live connections (the concurrency the data
	// source receives).
	Max int
	// IdleTimeout closes connections unused for this long (0 = never).
	IdleTimeout time.Duration
	// MaxAge retires connections regardless of use (0 = never).
	MaxAge time.Duration
}

// Stats counts pool activity. Successful dials split exactly into the live
// connections plus the retired ones: Dials == Live + Evictions + Discards.
type Stats struct {
	Dials      int64 // successful dials
	DialErrors int64 // failed dial attempts (no connection resulted)
	Reuses     int64
	Evictions  int64 // healthy connections retired by age/idle policy or pool close
	Discards   int64 // broken connections dropped after a transport error
}

// Pool maintains connections to one data source.
type Pool struct {
	addr string
	cfg  PoolConfig

	mu   sync.Mutex
	idle []*remote.Conn
	live int
	// waiter is a broadcast generation channel: signal() closes it and
	// installs a fresh one, waking every blocked Acquire at once. A
	// buffered token channel is not enough — two releases racing two
	// blocked acquirers can drop the second token, leaving one waiter
	// asleep forever while an idle connection sits in the pool.
	waiter chan struct{}
	closed bool
	stats  Stats
}

// NewPool creates a pool for the given server address.
func NewPool(addr string, cfg PoolConfig) *Pool {
	if cfg.Max <= 0 {
		cfg.Max = 1
	}
	return &Pool{addr: addr, cfg: cfg, waiter: make(chan struct{})}
}

// Addr returns the pooled server address.
func (p *Pool) Addr() string { return p.addr }

// Max returns the pool's live-connection bound (the concurrency the data
// source receives); the balancer scales pressure penalties by it.
func (p *Pool) Max() int { return p.cfg.Max }

// Stats snapshots counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Acquire returns a connection, reusing an idle one, dialing a new one, or
// waiting for a release when the pool is at capacity.
func (p *Pool) Acquire(ctx context.Context) (*remote.Conn, error) {
	_, sp := obs.StartSpan(ctx, obs.SpanPoolAcquire)
	defer sp.Finish()
	start := time.Now()
	var dialDur time.Duration
	defer func() {
		// Wait time is what admission control estimates from: it must
		// measure capacity contention only, not how long a dial took.
		total := time.Since(start)
		mTotalNS.ObserveDuration(total)
		mWaitNS.ObserveDuration(total - dialDur)
	}()
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, errors.New("connection: pool closed")
		}
		p.evictLocked()
		if n := len(p.idle); n > 0 {
			c := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.stats.Reuses++
			p.mu.Unlock()
			cReuses.Inc()
			sp.Annotate("via", "reuse")
			return c, nil
		}
		if p.live < p.cfg.Max {
			p.live++
			p.mu.Unlock()
			dialStart := time.Now()
			c, err := remote.Dial(p.addr)
			dialDur += time.Since(dialStart)
			if err != nil {
				p.mu.Lock()
				p.live--
				p.stats.DialErrors++
				p.mu.Unlock()
				cDialErrs.Inc()
				p.signal()
				return nil, err
			}
			p.mu.Lock()
			p.stats.Dials++
			p.mu.Unlock()
			cDials.Inc()
			gLive.Add(1)
			sp.Annotate("via", "dial")
			return c, nil
		}
		// Capture the current generation channel under the lock: a release
		// racing this unlock closes this exact channel, so the wakeup
		// cannot be missed. After waking, loop and re-contend.
		ch := p.waiter
		p.mu.Unlock()
		sp.Annotate("via", "wait")
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Release returns a connection to the pool. Broken connections (the remote
// client marks them closed on any transport error) are discarded; healthy
// ones aged past MaxAge are evicted.
func (p *Pool) Release(c *remote.Conn) {
	p.mu.Lock()
	switch {
	case c.Closed():
		p.live--
		p.stats.Discards++
		p.mu.Unlock()
		cDiscards.Inc()
		gLive.Add(-1)
		p.signal()
		return
	case p.closed || (p.cfg.MaxAge > 0 && c.Age() > p.cfg.MaxAge):
		p.live--
		p.stats.Evictions++
		p.mu.Unlock()
		cEvicts.Inc()
		gLive.Add(-1)
		c.Close()
		p.signal()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
	p.signal()
}

// Discard drops a broken connection without pooling it.
func (p *Pool) Discard(c *remote.Conn) {
	p.mu.Lock()
	p.live--
	p.stats.Discards++
	p.mu.Unlock()
	cDiscards.Inc()
	gLive.Add(-1)
	c.Close()
	p.signal()
}

// signal broadcasts "capacity may be free" to every blocked Acquire by
// closing the current generation channel and installing a fresh one. All
// waiters wake and re-contend under the lock; losers capture the new
// generation and sleep again. Closing under the lock pairs with Acquire
// capturing p.waiter under the same lock — no wakeup can fall between.
func (p *Pool) signal() {
	p.mu.Lock()
	close(p.waiter)
	p.waiter = make(chan struct{})
	p.mu.Unlock()
}

// evictLocked applies the age-wise idle eviction policy.
func (p *Pool) evictLocked() {
	if p.cfg.IdleTimeout <= 0 {
		return
	}
	kept := p.idle[:0]
	for _, c := range p.idle {
		if c.IdleFor() > p.cfg.IdleTimeout {
			c.Close()
			p.live--
			p.stats.Evictions++
			cEvicts.Inc()
			gLive.Add(-1)
			continue
		}
		kept = append(kept, c)
	}
	p.idle = kept
}

// Query acquires a connection, runs the query and releases it.
func (p *Pool) Query(ctx context.Context, tql string) (*exec.Result, error) {
	return p.withConn(ctx, func(c *remote.Conn) (*exec.Result, error) {
		return c.Query(ctx, tql)
	})
}

// Metadata acquires a connection, retrieves a table's schema and releases
// it, with the same poisoning rules as Query.
func (p *Pool) Metadata(ctx context.Context, table string) (*exec.Result, error) {
	return p.withConn(ctx, func(c *remote.Conn) (*exec.Result, error) {
		return c.Metadata(ctx, table)
	})
}

// withConn runs one round trip on a pooled connection. A transport error
// poisons the connection; a query-level error does not.
func (p *Pool) withConn(ctx context.Context, fn func(*remote.Conn) (*exec.Result, error)) (*exec.Result, error) {
	c, err := p.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	res, err := fn(c)
	if err != nil {
		if res == nil && IsTransport(err) {
			p.Discard(c)
		} else {
			p.Release(c)
		}
		return nil, err
	}
	p.Release(c)
	return res, nil
}

// IsTransport reports whether err means the connection itself is suspect:
// the peer hung up (EOF/reset/closed), the socket misbehaved (net.OpError),
// or the request was abandoned mid-flight (timeout/cancellation) leaving a
// response frame potentially still on the wire. Query-level errors — the
// server answered with a well-formed error response — return false. It is
// also the retry/breaker classifier the resilience layer uses: transport
// errors are worth retrying, query errors prove the backend is alive.
func IsTransport(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var op *net.OpError
	if errors.As(err, &op) {
		return true
	}
	var ne interface{ Timeout() bool }
	return errors.As(err, &ne) && ne.Timeout()
}

// Close shuts the pool and all idle connections.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.live -= len(idle)
	p.stats.Evictions += int64(len(idle))
	p.mu.Unlock()
	cEvicts.Add(int64(len(idle)))
	gLive.Add(-int64(len(idle)))
	for _, c := range idle {
		c.Close()
	}
	// Wake blocked acquirers so they observe the closed pool immediately
	// instead of waiting out their contexts.
	p.signal()
}

// Live reports the number of open connections (idle + in use).
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}
