// Package clustertest is a deterministic in-process multi-node harness
// for cluster admission coordination: N Data Servers — each with its own
// backend TDE server (shared-everything over one database, Sect. 4.1.4),
// its own scheduler, and its own coordination-bus link — behind one
// pressure-aware balancer, all coordinating through a single networked
// kvstore. Determinism comes from three levers:
//
//   - an injectable Clock drives digest publishing: coordinators only
//     step when the harness Ticks, never on wall-clock timers;
//   - each node reaches the kvstore through its own chaos proxy, so
//     node↔bus partitions are scripted per node and heal on command;
//   - workloads derive from seeded generators, with per-query distinct
//     filters to defeat caching when admission is the thing under test.
//
// Experiments (E13) and tests share this harness; it has no testing.T
// dependency.
package clustertest

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vizq/internal/chaos"
	"vizq/internal/connection"
	"vizq/internal/core"
	"vizq/internal/dataserver"
	"vizq/internal/kvstore"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/sched"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

// Clock is a manually advanced time source shared by the kvstore's TTL
// engine and every coordinator.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock starts a clock at t.
func NewClock(t time.Time) *Clock { return &Clock{now: t} }

// Now returns the current fake time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward and returns the new time.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Config sizes a harness cluster. Zero fields take the defaults noted.
type Config struct {
	// Nodes is the Data Server count (default 3).
	Nodes int
	// Source names the published source on every node (default "flights").
	Source string
	// Rows sizes the shared flights database (default 4000).
	Rows int
	// Seed feeds the database builder (default 11).
	Seed int64
	// PoolMax bounds each node's backend pool (default 2).
	PoolMax int
	// Scheduler is each node's admission config; a zero Limit anchors to
	// PoolMax as in production.
	Scheduler sched.Config
	// Interval is the digest publish period in fake time (default 250ms).
	Interval time.Duration
	// BackendLatency is added to every backend query (default 0).
	BackendLatency time.Duration
	// BusTimeout bounds each coordination-bus round trip in real time
	// (default 500ms) so partitioned links fail fast.
	BusTimeout time.Duration
	// Health tunes the balancer's node health tracking. Zero fields take
	// harness defaults — SuspectAfter 1, EjectAfter 2, ProbeAfter one
	// Interval — and the Clock is always the harness's fake clock so
	// probe cooldowns advance only on Tick/Advance.
	Health connection.HealthConfig
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Source == "" {
		c.Source = "flights"
	}
	if c.Rows <= 0 {
		c.Rows = 4000
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.PoolMax <= 0 {
		c.PoolMax = 2
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.BusTimeout <= 0 {
		c.BusTimeout = 500 * time.Millisecond
	}
	return c
}

// Node is one Data Server plus its backend and bus plumbing.
type Node struct {
	Name    string
	DS      *dataserver.Server
	Backend *remote.Server
	// BackendProxy sits between the node and its backend TDE server; the
	// node's Data Server pool AND the balancer's pool for this node both
	// dial through it, so faulting it is "the node crashed" from every
	// observer's point of view — while the listener itself stays bound,
	// keeping kill/restart deterministic (no port-rebinding races).
	BackendProxy *chaos.Proxy
	// KVProxy sits between this node's bus client and the kvstore;
	// partitioning this node means faulting this proxy.
	KVProxy *chaos.Proxy
	Bus     *kvstore.RemoteBus

	mu    sync.Mutex
	conns map[string]*dataserver.ClientConn
}

// conn returns (creating on first use) this node's client connection for
// user against source.
func (n *Node) conn(source, user string) (*dataserver.ClientConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.conns[user]; ok {
		return c, nil
	}
	c, _, err := n.DS.Connect(source, user)
	if err != nil {
		return nil, err
	}
	n.conns[user] = c
	return c, nil
}

func (n *Node) closeConns() {
	n.mu.Lock()
	conns := n.conns
	n.conns = make(map[string]*dataserver.ClientConn)
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Cluster is the running harness.
type Cluster struct {
	Nodes    []*Node
	Clock    *Clock
	Balancer *connection.Balancer
	Store    *kvstore.Store

	cfg   Config
	kvSrv *kvstore.Server
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: cfg.Rows, Days: 60, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	clock := NewClock(time.Unix(1_723_000_000, 0))
	store := kvstore.NewStore(0)
	store.SetClock(clock.Now)
	kvSrv, err := kvstore.Serve("127.0.0.1:0", store)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{Clock: clock, Store: store, cfg: cfg, kvSrv: kvSrv}
	pools := make([]*connection.Pool, 0, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node-%d", i)
		backend := remote.NewServer(engine.New(db), remote.Config{Latency: cfg.BackendLatency})
		if err := backend.Start("127.0.0.1:0"); err != nil {
			cl.Close()
			return nil, err
		}
		bproxy, err := chaos.New(backend.Addr(), nil)
		if err != nil {
			backend.Close()
			cl.Close()
			return nil, err
		}
		proxy, err := chaos.New(kvSrv.Addr(), nil)
		if err != nil {
			backend.Close()
			bproxy.Close()
			cl.Close()
			return nil, err
		}
		bus := kvstore.NewRemoteBus(proxy.Addr(), cfg.BusTimeout)
		schedCfg := cfg.Scheduler
		ds := dataserver.NewServer(dataserver.Config{
			PipelineOptions: core.DefaultOptions(),
			Scheduler:       &schedCfg,
			Cluster: &sched.ClusterConfig{
				Node:     name,
				Bus:      bus,
				Interval: cfg.Interval,
				Clock:    clock.Now,
			},
		})
		if err := ds.Publish(&dataserver.PublishedSource{
			Name:               cfg.Source,
			Backend:            bproxy.Addr(),
			View:               query.View{Table: "flights"},
			MaxPoolConnections: cfg.PoolMax,
		}); err != nil {
			backend.Close()
			bproxy.Close()
			proxy.Close()
			cl.Close()
			return nil, err
		}
		cl.Nodes = append(cl.Nodes, &Node{
			Name:         name,
			DS:           ds,
			Backend:      backend,
			BackendProxy: bproxy,
			KVProxy:      proxy,
			Bus:          bus,
			conns:        make(map[string]*dataserver.ClientConn),
		})
		pools = append(pools, connection.NewPool(bproxy.Addr(), connection.PoolConfig{Max: cfg.PoolMax}))
	}
	b, err := connection.NewBalancerFromPools(pools)
	if err != nil {
		cl.Close()
		return nil, err
	}
	hc := cfg.Health
	if hc.SuspectAfter == 0 {
		hc.SuspectAfter = 1
	}
	if hc.EjectAfter == 0 {
		hc.EjectAfter = 2
	}
	if hc.ProbeAfter == 0 {
		hc.ProbeAfter = cfg.Interval
	}
	hc.Clock = clock.Now
	b.ConfigureHealth(hc)
	cl.Balancer = b
	return cl, nil
}

// Source returns the published source name.
func (cl *Cluster) Source() string { return cl.cfg.Source }

// Interval returns the digest publish period.
func (cl *Cluster) Interval() time.Duration { return cl.cfg.Interval }

// Scheduler returns node i's admission controller.
func (cl *Cluster) Scheduler(i int) *sched.Scheduler {
	return cl.Nodes[i].DS.Scheduler(cl.cfg.Source)
}

// Tick advances the fake clock one publish interval, steps every node's
// coordinator in node order (deterministic), and refreshes the
// balancer's advisory pressure from the freshly published digests. Two
// Ticks from a cold start give every node a view of every peer.
func (cl *Cluster) Tick() {
	now := cl.Clock.Advance(cl.cfg.Interval)
	for _, n := range cl.Nodes {
		n.DS.Coordinator().Step(now)
	}
	cl.SyncPressure()
}

// SyncPressure pushes each node's latest self-digest into the balancer:
// pressure is the node's shed rate or its queue depth normalized by its
// limit, whichever is worse, and the digest's draining bit takes the
// node out of rotation administratively. A node that has never published
// (or whose coordinator is gone) keeps its previous advisory values.
func (cl *Cluster) SyncPressure() {
	for i, n := range cl.Nodes {
		d, ok := n.DS.Coordinator().LastDigest(cl.cfg.Source)
		if !ok {
			continue
		}
		p := d.ShedRate
		if d.Limit > 0 {
			if q := float64(d.QueueDepth) / float64(d.Limit); q > p {
				p = q
			}
		}
		cl.Balancer.SetPressure(i, p)
		cl.Balancer.SetDraining(i, d.Draining)
	}
}

// Partition cuts node i off from the kvstore: in-flight bus connections
// die and new ones are refused until Heal.
func (cl *Cluster) Partition(i int) {
	cl.Nodes[i].KVProxy.SetMode(chaos.Fault{Kind: chaos.Refuse})
	cl.Nodes[i].KVProxy.KillActive()
}

// Heal reconnects node i to the kvstore.
func (cl *Cluster) Heal(i int) { cl.Nodes[i].KVProxy.Heal() }

// KillNode crashes node i uncleanly: its backend proxy refuses new
// connections and cuts active ones, so every in-flight and future query
// on the node — dispatched or sticky — fails with an immediate transport
// error until RestartNode. The Data Server process itself stays up
// (sessions and schedulers keep their state), mirroring a backend/node
// outage rather than a clean shutdown.
func (cl *Cluster) KillNode(i int) {
	cl.Nodes[i].BackendProxy.SetMode(chaos.Fault{Kind: chaos.Refuse})
	cl.Nodes[i].BackendProxy.KillActive()
}

// RestartNode brings a killed node back: the backend proxy heals and any
// leftover drain state clears. Re-admission to the balancer's rotation
// still requires a successful health probe (ProbeNode or the background
// prober) — restart makes the node reachable, not trusted.
func (cl *Cluster) RestartNode(i int) {
	cl.Nodes[i].BackendProxy.Heal()
	cl.Nodes[i].DS.Undrain()
}

// DrainNode gracefully drains node i inside ctx's deadline: new sessions
// refused, queued admissions shed with reason "draining", in-flight work
// waited out. The draining bit reaches peers' balancers on the next Tick.
func (cl *Cluster) DrainNode(ctx context.Context, i int) error {
	return cl.Nodes[i].DS.Drain(ctx)
}

// UndrainNode puts a drained node back in rotation (the cleared bit
// rides the next Tick).
func (cl *Cluster) UndrainNode(i int) { cl.Nodes[i].DS.Undrain() }

// ProbeNode offers node i one half-open health probe (no-op unless the
// node is ejected and past its cooldown on the fake clock). Returns
// whether a probe ran.
func (cl *Cluster) ProbeNode(i int) bool {
	return cl.Balancer.MaybeProbe(context.Background(), i)
}

// Dispatch routes one query through the balancer: the least-loaded
// non-pressured node is picked and the query runs on that node's client
// connection for user. Returns the chosen node index alongside the
// query's outcome.
func (cl *Cluster) Dispatch(ctx context.Context, user string, q *query.Query) (int, error) {
	idx := cl.Balancer.PickIndex()
	conn, err := cl.Nodes[idx].conn(cl.cfg.Source, user)
	if err != nil {
		return idx, err
	}
	_, err = conn.Query(ctx, q)
	cl.report(ctx, idx, err)
	return idx, err
}

// report feeds one query outcome into balancer health tracking, skipping
// transport failures attributable to the caller's own context (they say
// nothing about the node).
func (cl *Cluster) report(ctx context.Context, idx int, err error) {
	if err != nil && connection.IsTransport(err) && !connection.Blameworthy(ctx, err) {
		return
	}
	cl.Balancer.ReportResult(idx, err)
}

// QueryOn runs one query for user directly against node idx, bypassing
// the balancer — the sticky-session path: a dashboard session stays on
// the node that first served it, which is how a hot user concentrates
// load on specific nodes.
func (cl *Cluster) QueryOn(ctx context.Context, idx int, user string, q *query.Query) error {
	conn, err := cl.Nodes[idx].conn(cl.cfg.Source, user)
	if err != nil {
		return err
	}
	_, err = conn.Query(ctx, q)
	cl.report(ctx, idx, err)
	return err
}

// DistinctQuery builds the i-th of a family of queries that are all
// answerable by the flights schema but mutually distinct, so caching and
// single-flight coalescing never short-circuit admission.
func DistinctQuery(i int) *query.Query {
	return &query.Query{
		View:     query.View{Table: "flights"},
		Dims:     []query.Dim{{Col: "carrier"}},
		Measures: []query.Measure{{Fn: query.Count, As: "n"}},
		Filters:  []query.Filter{query.GtFilter("distance", storage.IntValue(int64(10 + i)))},
	}
}

// Close tears the cluster down: client connections, balancer pools,
// coordinators, bus links, proxies, backends, and the kvstore.
func (cl *Cluster) Close() {
	for _, n := range cl.Nodes {
		n.closeConns()
		if c := n.DS.Coordinator(); c != nil {
			c.Stop()
		}
		n.DS.Unpublish(cl.cfg.Source)
		_ = n.Bus.Close()
		n.KVProxy.Close()
		n.BackendProxy.Close()
		n.Backend.Close()
	}
	if cl.Balancer != nil {
		cl.Balancer.Close()
	}
	if cl.kvSrv != nil {
		_ = cl.kvSrv.Close()
	}
}
