package clustertest

import (
	"context"
	"fmt"
	"sync"

	"vizq/internal/connection"
	"vizq/internal/dataserver"
	"vizq/internal/query"
	"vizq/internal/tde/storage"
)

// tempSpec records one temp table a session created, so the session's
// owner can re-materialize it after a failover.
type tempSpec struct {
	alias string
	col   string
	vals  []storage.Value
}

// Session is one user's sticky dashboard session against a specific
// node, with optional transparent failover. Without failover it models
// the pre-lifecycle world: the session is pinned to its node and a node
// death surfaces as user-visible errors. With failover, a query that
// hits an unroutable or freshly-dead node re-dispatches: the session
// re-establishes itself on a surviving node via the normal
// published-source handshake and retries once. If the old session held
// temp tables, the move instead returns a *dataserver.SessionMovedError
// (wrapping dataserver.ErrSessionMoved) — the tables did not travel, and
// silently retrying a query that references them would return wrong
// data; the owner re-materializes (Rematerialize) and retries.
//
// All methods serialize on the session mutex: a session is one user's
// dashboard, which issues one interaction at a time.
type Session struct {
	cl       *Cluster
	user     string
	failover bool

	mu    sync.Mutex
	node  int
	conn  *dataserver.ClientConn
	temps []tempSpec
	moved int
}

// NewSession opens a session for user on node idx.
func (cl *Cluster) NewSession(user string, idx int, failover bool) (*Session, error) {
	conn, _, err := cl.Nodes[idx].DS.Connect(cl.cfg.Source, user)
	if err != nil {
		return nil, err
	}
	return &Session{cl: cl, user: user, failover: failover, node: idx, conn: conn}, nil
}

// Node reports which node currently serves the session.
func (s *Session) Node() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// Moves reports how many times the session failed over.
func (s *Session) Moves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.moved
}

// Query runs one query on the session's node. With failover enabled, an
// unroutable node (ejected or draining per the balancer) moves the
// session before dispatch, and a blameworthy transport failure moves it
// and retries once after reporting the node to health tracking. A move
// that strands temp tables returns *dataserver.SessionMovedError
// instead of retrying (see type comment).
func (s *Session) Query(ctx context.Context, q *query.Query) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failover && !s.cl.Balancer.Routable(s.node) {
		if err := s.moveLocked(); err != nil {
			return err
		}
	}
	_, err := s.conn.Query(ctx, q)
	s.cl.report(ctx, s.node, err)
	if err == nil || !connection.Blameworthy(ctx, err) || !s.failover {
		return err
	}
	if merr := s.moveLocked(); merr != nil {
		return merr
	}
	_, err = s.conn.Query(ctx, q)
	s.cl.report(ctx, s.node, err)
	return err
}

// CreateTempTable creates a temp table on the session's current node and
// records its definition for post-failover re-materialization.
func (s *Session) CreateTempTable(alias, col string, vals []storage.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.conn.CreateTempTable(alias, col, vals); err != nil {
		return err
	}
	s.temps = append(s.temps, tempSpec{alias: alias, col: col, vals: vals})
	return nil
}

// Rematerialize re-creates the session's recorded temp tables on its
// current node — the owner's response to ErrSessionMoved.
func (s *Session) Rematerialize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := make(map[string]bool)
	for _, a := range s.conn.TempAliases() {
		live[a] = true
	}
	for _, spec := range s.temps {
		if live[spec.alias] {
			continue
		}
		if err := s.conn.CreateTempTable(spec.alias, spec.col, spec.vals); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the session's connection.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Close()
}

// moveLocked re-establishes the session on a surviving node: pick a
// routable node other than the current one, run the published-source
// handshake there, and swap connections. Temp tables do not travel; if
// the old connection held any, the (completed) move reports them via
// *dataserver.SessionMovedError.
func (s *Session) moveLocked() error {
	from := s.node
	var lastErr error
	for _, to := range s.candidatesLocked(from) {
		conn, _, err := s.cl.Nodes[to].DS.Connect(s.cl.cfg.Source, s.user)
		if err != nil {
			// Racing a drain or a second failure; try the next survivor.
			lastErr = err
			continue
		}
		lost := s.conn.TempAliases()
		s.conn.Close()
		s.conn = conn
		s.node = to
		s.moved++
		if len(lost) > 0 {
			return &dataserver.SessionMovedError{
				From:      s.cl.Nodes[from].Name,
				To:        s.cl.Nodes[to].Name,
				LostTemps: lost,
			}
		}
		return nil
	}
	if lastErr != nil {
		return fmt.Errorf("clustertest: session %q found no accepting node: %w", s.user, lastErr)
	}
	return fmt.Errorf("clustertest: session %q has no surviving node to move to", s.user)
}

// candidatesLocked lists failover targets: the balancer's preferred
// routable pick first, then every other routable node as fallback.
func (s *Session) candidatesLocked(from int) []int {
	var out []int
	seen := map[int]bool{from: true}
	if best := s.cl.Balancer.PickIndexExcluding(from); best >= 0 {
		out = append(out, best)
		seen[best] = true
	}
	for i := range s.cl.Nodes {
		if !seen[i] && s.cl.Balancer.Routable(i) {
			out = append(out, i)
		}
	}
	return out
}
