package clustertest

import (
	"context"
	"errors"
	"testing"
	"time"

	"vizq/internal/connection"
	"vizq/internal/dataserver"
	"vizq/internal/sched"
	"vizq/internal/tde/storage"
)

// TestLifecycleKillRestartSmoke is the fast kill/restart smoke
// scripts/check.sh runs: kill a node, watch dispatch blame it into
// ejection, restart it, probe it back in. Everything runs on the fake
// clock, so it is deterministic and sub-second.
func TestLifecycleKillRestartSmoke(t *testing.T) {
	cl := newCluster(t, Config{Nodes: 3})
	ctx := context.Background()

	// Warm every node's view of the fleet.
	cl.Tick()
	cl.Tick()

	// A healthy fleet serves sticky queries on node 0.
	if err := cl.QueryOn(ctx, 0, "smoke", DistinctQuery(0)); err != nil {
		t.Fatalf("pre-kill query: %v", err)
	}

	cl.KillNode(0)
	// Two blameworthy failures eject (harness default EjectAfter=2).
	for i := 1; cl.Balancer.State(0) != connection.NodeEjected; i++ {
		if err := cl.QueryOn(ctx, 0, "smoke", DistinctQuery(i)); err == nil {
			t.Fatal("query on killed node succeeded")
		}
		if i > 8 {
			t.Fatalf("node not ejected after %d failed queries (state %v)", i, cl.Balancer.State(0))
		}
	}

	// While ejected, dispatch steers around it.
	for i := 0; i < 12; i++ {
		idx, err := cl.Dispatch(ctx, "smoke", DistinctQuery(100+i))
		if err != nil {
			t.Fatalf("dispatch during outage: %v", err)
		}
		if idx == 0 {
			t.Fatal("dispatch picked the ejected node")
		}
	}

	// Probes are cooldown-gated on the fake clock: not due yet right
	// after ejection (the failures happened within the current instant).
	if cl.ProbeNode(0) {
		t.Fatal("probe admitted before cooldown")
	}

	// Restart, advance past the cooldown, probe back in.
	cl.RestartNode(0)
	cl.Tick() // one interval == the harness ProbeAfter default
	if !cl.ProbeNode(0) {
		t.Fatal("probe not admitted after cooldown")
	}
	if got := cl.Balancer.State(0); got != connection.NodeHealthy {
		t.Fatalf("post-probe state = %v, want healthy", got)
	}
	if err := cl.QueryOn(ctx, 0, "smoke", DistinctQuery(999)); err != nil {
		t.Fatalf("post-restart query: %v", err)
	}
}

// TestSessionFailover: a failover session survives its node's death —
// one transparent move, no user-visible error — while a pinned session
// on the same node keeps failing.
func TestSessionFailover(t *testing.T) {
	cl := newCluster(t, Config{Nodes: 3})
	ctx := context.Background()
	cl.Tick()
	cl.Tick()

	mobile, err := cl.NewSession("mobile", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer mobile.Close()
	pinned, err := cl.NewSession("pinned", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()

	if err := mobile.Query(ctx, DistinctQuery(0)); err != nil {
		t.Fatalf("pre-kill query: %v", err)
	}

	cl.KillNode(1)
	if err := mobile.Query(ctx, DistinctQuery(1)); err != nil {
		t.Fatalf("failover session saw user-visible error: %v", err)
	}
	if mobile.Moves() == 0 || mobile.Node() == 1 {
		t.Fatalf("session did not move (moves=%d node=%d)", mobile.Moves(), mobile.Node())
	}
	if err := pinned.Query(ctx, DistinctQuery(2)); err == nil {
		t.Fatal("pinned session survived its node's death")
	}

	// Subsequent queries stay on the new node without further moves.
	before := mobile.Moves()
	if err := mobile.Query(ctx, DistinctQuery(3)); err != nil {
		t.Fatal(err)
	}
	if mobile.Moves() != before {
		t.Fatal("healthy session kept moving")
	}
}

// TestSessionFailoverTempTables: a session holding temp tables does not
// silently lose them on failover — the move surfaces ErrSessionMoved
// listing the lost aliases, and Rematerialize + retry recovers.
func TestSessionFailoverTempTables(t *testing.T) {
	cl := newCluster(t, Config{Nodes: 3})
	ctx := context.Background()
	cl.Tick()
	cl.Tick()

	s, err := cl.NewSession("analyst", 2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CreateTempTable("sel", "origin", []storage.Value{storage.StrValue("LAX")}); err != nil {
		t.Fatal(err)
	}

	cl.KillNode(2)
	qerr := s.Query(ctx, DistinctQuery(0))
	if !errors.Is(qerr, dataserver.ErrSessionMoved) {
		t.Fatalf("query after node death = %v, want ErrSessionMoved", qerr)
	}
	var sm *dataserver.SessionMovedError
	if !errors.As(qerr, &sm) || len(sm.LostTemps) != 1 || sm.LostTemps[0] != "sel" {
		t.Fatalf("moved error = %+v, want lost [sel]", sm)
	}
	// The contract: the session HAS moved; the caller re-materializes and
	// retries.
	if err := s.Rematerialize(); err != nil {
		t.Fatal(err)
	}
	if err := s.Query(ctx, DistinctQuery(0)); err != nil {
		t.Fatalf("retry after re-materialize: %v", err)
	}
}

// TestDrainSteersPeers: a draining node's digest bit reaches the
// balancer on the next Tick, new dispatch avoids it with zero errors,
// failover sessions leave it proactively, and undrain brings it back.
func TestDrainSteersPeers(t *testing.T) {
	cl := newCluster(t, Config{Nodes: 3})
	ctx := context.Background()
	cl.Tick()
	cl.Tick()

	s, err := cl.NewSession("roamer", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Query(ctx, DistinctQuery(0)); err != nil {
		t.Fatal(err)
	}

	if err := cl.DrainNode(ctx, 0); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cl.Tick() // draining bit rides this digest
	if !cl.Balancer.NodeDraining(0) {
		t.Fatal("draining bit did not reach the balancer")
	}
	for i := 0; i < 12; i++ {
		idx, derr := cl.Dispatch(ctx, "walkin", DistinctQuery(10+i))
		if derr != nil {
			t.Fatalf("dispatch during drain: %v", derr)
		}
		if idx == 0 {
			t.Fatal("dispatch steered to the draining node")
		}
	}
	// The failover session leaves the draining node before dispatching.
	if err := s.Query(ctx, DistinctQuery(1)); err != nil {
		t.Fatalf("session query during drain: %v", err)
	}
	if s.Node() == 0 {
		t.Fatal("failover session stayed on the draining node")
	}

	cl.UndrainNode(0)
	cl.Tick()
	if cl.Balancer.NodeDraining(0) {
		t.Fatal("draining bit survived undrain + tick")
	}
	seen0 := false
	for i := 0; i < 12 && !seen0; i++ {
		idx, derr := cl.Dispatch(ctx, "walkin", DistinctQuery(50+i))
		if derr != nil {
			t.Fatal(derr)
		}
		seen0 = idx == 0
	}
	if !seen0 {
		t.Fatal("undrained node never rejoined dispatch")
	}
}

// TestDrainShedsQueuedWork: queued admissions on the drained node shed
// with reason "draining" instead of waiting out the deadline.
func TestDrainShedsQueuedWork(t *testing.T) {
	cl := newCluster(t, Config{Nodes: 2, Scheduler: tightSched()})
	ctx := context.Background()
	cl.Tick()
	cl.Tick()

	// Hold node 0's only slot, then queue a waiter behind it.
	tk, err := cl.Scheduler(0).Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		_, aerr := cl.Scheduler(0).Admit(sched.WithSession(context.Background(), "q"))
		queued <- aerr
	}()
	waitFor(t, func() bool { return cl.Scheduler(0).Stats().Queued == 1 })

	// Drain with a deadline: the queued waiter sheds immediately; the
	// held slot makes the drain itself time out — in-flight work is
	// bounded by the deadline, not abandoned.
	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if derr := cl.DrainNode(dctx, 0); !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("drain with held slot = %v, want deadline exceeded", derr)
	}
	select {
	case aerr := <-queued:
		var se *sched.ShedError
		if !errors.As(aerr, &se) || se.Reason != "draining" {
			t.Fatalf("queued waiter got %v, want draining shed", aerr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter not flushed by drain")
	}
	tk.Done()
	if st := cl.Scheduler(0).Stats(); st.ShedDraining == 0 || !st.Draining {
		t.Fatalf("stats = %+v, want ShedDraining>0 Draining", st)
	}
}
