package clustertest

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vizq/internal/sched"
)

// tightSched is a scheduler config that makes overload easy to script:
// one slot, a two-deep source queue, and a frozen governor.
func tightSched() sched.Config {
	return sched.Config{
		Limit: 1, MinLimit: 1, MaxLimit: 1,
		MaxQueue: 2, MaxUserQueue: 2, MaxSessionQueue: 4,
		AdjustEvery: 1 << 30,
	}
}

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond) //vizlint:allow sleep -- test poll loop with deadline
	}
	t.Fatal("condition not reached in time")
}

// pressurize saturates node i's scheduler as user "hot": the single slot
// is held, the queue fills with two waiters, and `sheds` further
// arrivals are rejected — so the node's next digest advertises both a
// shed rate and a full queue. The returned release func drains it all.
func pressurize(t *testing.T, cl *Cluster, i, sheds int) func() {
	t.Helper()
	s := cl.Scheduler(i)
	hold, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	qctx, cancel := context.WithCancel(
		sched.WithUser(sched.WithSession(context.Background(), "s"), "hot"))
	var wg sync.WaitGroup
	for j := 0; j < 2; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := s.Admit(qctx)
			if err == nil {
				tk.Done()
			}
		}()
	}
	waitFor(t, func() bool { return s.Stats().Queued == 2 })
	for j := 0; j < sheds; j++ {
		if _, err := s.Admit(qctx); !errors.Is(err, sched.ErrShed) {
			t.Fatalf("arrival %d should shed, got %v", j, err)
		}
	}
	return func() {
		cancel()
		hold.Done()
		wg.Wait()
	}
}

func TestDigestPropagationAcrossNodes(t *testing.T) {
	cl := newCluster(t, Config{Nodes: 3, Scheduler: tightSched(), PoolMax: 1})
	cl.Tick()
	cl.Tick()
	for i := 0; i < 3; i++ {
		if st := cl.Scheduler(i).Stats(); st.ClusterPeers != 2 {
			t.Fatalf("node %d sees %d peers, want 2 (stats=%+v)", i, st.ClusterPeers, st)
		}
		d, ok := cl.Nodes[i].DS.Coordinator().LastDigest(cl.Source())
		if !ok || d.Source != cl.Source() || d.Node != cl.Nodes[i].Name {
			t.Fatalf("node %d self digest = %+v ok=%v", i, d, ok)
		}
		if peers := cl.Nodes[i].DS.Coordinator().Peers(cl.Source()); len(peers) != 2 {
			t.Fatalf("node %d coordinator peers = %+v", i, peers)
		}
	}
}

// TestMajoritySheddingClampsCalmNode is the tentpole scenario: a source
// shedding on 2 of 3 nodes must shed consistently on the third, even
// though that node's own queues still have room.
func TestMajoritySheddingClampsCalmNode(t *testing.T) {
	cl := newCluster(t, Config{Nodes: 3, Scheduler: tightSched(), PoolMax: 1})
	release0 := pressurize(t, cl, 0, 2)
	defer release0()
	release1 := pressurize(t, cl, 1, 2)
	defer release1()

	// One tick: nodes 0 and 1 publish pressured digests before node 2
	// steps, so node 2 observes a fleet majority immediately.
	cl.Tick()
	s2 := cl.Scheduler(2)
	if st := s2.Stats(); !st.ClusterShedActive {
		t.Fatalf("calm node did not arm the cluster clamp: %+v", st)
	}

	// Node 2: occupy its slot, then drive the hot user. Under the clamp
	// (ClusterUserQueue=1) the first query queues, the second sheds with
	// the cluster reason — locally MaxUserQueue=2 would have allowed it.
	hold2, err := s2.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hctx, cancel := context.WithCancel(
		sched.WithUser(sched.WithSession(context.Background(), "s"), "hot"))
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk, err := s2.Admit(hctx)
		if err == nil {
			tk.Done()
		}
	}()
	waitFor(t, func() bool { return s2.Stats().Queued == 1 })
	_, err = s2.Admit(hctx)
	var se *sched.ShedError
	if !errors.As(err, &se) || se.Reason != "cluster-pressure" {
		t.Fatalf("want cluster-pressure shed on the calm node, got %v", err)
	}
	if !errors.Is(err, sched.ErrShed) {
		t.Fatal("cluster shed must wrap ErrShed (stale-on-shed contract)")
	}
	if st := s2.Stats(); st.ShedClusterPressure != 1 {
		t.Fatalf("ShedClusterPressure = %d, want 1", st.ShedClusterPressure)
	}

	// A victim user still queues on the calm node: the clamp is per-user.
	vctx, vcancel := context.WithCancel(
		sched.WithUser(sched.WithSession(context.Background(), "v"), "victim"))
	vdone := make(chan error, 1)
	go func() {
		tk, err := s2.Admit(vctx)
		if err == nil {
			tk.Done()
		}
		vdone <- err
	}()
	waitFor(t, func() bool { return s2.Stats().Queued == 2 })
	vcancel()
	if err := <-vdone; !errors.Is(err, context.Canceled) {
		t.Fatalf("victim should queue under the clamp, got %v", err)
	}

	// Pressure drains on nodes 0/1 → their next digests are calm → the
	// clamp on node 2 disarms.
	release0()
	release1()
	cl.Tick() // rates still reflect the shed interval on 0/1? no: deltas reset each step
	cl.Tick() // calm interval published; node 2 re-evaluates
	if st := s2.Stats(); st.ClusterShedActive {
		t.Fatalf("clamp should disarm once the fleet calms: %+v", st)
	}
	hold2.Done()
	wg.Wait()
}

// TestPartitionFallsBackToLocalAndHeals: a node cut off from the kvstore
// must drop to local-only admission within one tick; its peers keep
// coordinating and age the missing node's digest out after StaleAfter;
// healing restores the full mesh.
func TestPartitionFallsBackToLocalAndHeals(t *testing.T) {
	cl := newCluster(t, Config{Nodes: 3, Scheduler: tightSched(), PoolMax: 1})
	cl.Tick()
	cl.Tick()
	for i := 0; i < 3; i++ {
		if st := cl.Scheduler(i).Stats(); st.ClusterPeers != 2 {
			t.Fatalf("node %d peers = %d before partition", i, st.ClusterPeers)
		}
	}

	cl.Partition(2)
	cl.Tick()
	if st := cl.Scheduler(2).Stats(); st.ClusterPeers != 0 || st.ClusterShedActive {
		t.Fatalf("partitioned node must fall back to local-only: %+v", st)
	}
	// Node 2's last digest is still fresh for StaleAfter (3 intervals);
	// after 4 silent ticks the survivors must have aged it out.
	for i := 0; i < 4; i++ {
		cl.Tick()
	}
	if st := cl.Scheduler(0).Stats(); st.ClusterPeers != 1 {
		t.Fatalf("survivor should see exactly the other survivor: %+v", st)
	}

	cl.Heal(2)
	cl.Tick()
	cl.Tick()
	for i := 0; i < 3; i++ {
		if st := cl.Scheduler(i).Stats(); st.ClusterPeers != 2 {
			t.Fatalf("node %d peers = %d after heal, want 2", i, st.ClusterPeers)
		}
	}
}

// TestPressureSteersDispatch: once a node's digest advertises pressure,
// the balancer must route new work to the calm nodes only, and resume
// including the node after it calms down.
func TestPressureSteersDispatch(t *testing.T) {
	cl := newCluster(t, Config{Nodes: 3, Scheduler: tightSched(), PoolMax: 1})
	release := pressurize(t, cl, 0, 2)
	cl.Tick()
	if p := cl.Balancer.Pressure(0); p <= 0 {
		t.Fatalf("pressured node advertises %v", p)
	}
	counts := make([]int, 3)
	for i := 0; i < 12; i++ {
		counts[cl.Balancer.PickIndex()]++
	}
	if counts[0] != 0 {
		t.Fatalf("pressured node still picked: %v", counts)
	}
	// Rotation need not split the calm pair exactly evenly (the slot
	// after the pressured node inherits its turns), but both must serve.
	if counts[1] == 0 || counts[2] == 0 || counts[1]+counts[2] != 12 {
		t.Fatalf("calm nodes should absorb all dispatch: %v", counts)
	}

	release()
	cl.Tick() // calm digest published
	counts = make([]int, 3)
	for i := 0; i < 12; i++ {
		counts[cl.Balancer.PickIndex()]++
	}
	if counts[0] != 4 || counts[1] != 4 || counts[2] != 4 {
		t.Fatalf("healed node should rejoin the rotation evenly: %v", counts)
	}
}

// TestSeededWorkloadUnderChaos drives a seeded open-ish workload through
// the balancer while a node↔kvstore partition opens and heals mid-run.
// Every outcome must be a success, a shed, or a deadline expiry — never
// a transport error surfacing to the client — and the harness must stay
// race-clean and deterministic in structure under -race -count=2.
func TestSeededWorkloadUnderChaos(t *testing.T) {
	cl := newCluster(t, Config{
		Nodes:          3,
		Scheduler:      sched.Config{Limit: 2, AdjustEvery: 1 << 30},
		PoolMax:        2,
		BackendLatency: 2 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(42))
	users := []string{"u1", "u2", "u3", "u4"}

	var mu sync.Mutex
	var ok, shed, deadline int
	served := make([]int, 3)

	const rounds, perRound = 6, 8
	qid := 0
	for r := 0; r < rounds; r++ {
		switch r {
		case 2:
			cl.Partition(1)
		case 4:
			cl.Heal(1)
		}
		var wg sync.WaitGroup
		for j := 0; j < perRound; j++ {
			user := users[rng.Intn(len(users))]
			q := DistinctQuery(qid)
			qid++
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				idx, err := cl.Dispatch(ctx, user, q)
				mu.Lock()
				defer mu.Unlock()
				served[idx]++
				switch {
				case err == nil:
					ok++
				case errors.Is(err, sched.ErrShed):
					shed++
				case errors.Is(err, context.DeadlineExceeded):
					deadline++
				default:
					t.Errorf("unexpected dispatch error: %v", err)
				}
			}()
		}
		wg.Wait()
		cl.Tick()
	}

	if ok+shed+deadline != rounds*perRound {
		t.Fatalf("outcomes don't conserve: ok=%d shed=%d deadline=%d", ok, shed, deadline)
	}
	if ok == 0 {
		t.Fatal("no query succeeded")
	}
	total := 0
	for _, s := range served {
		total += s
	}
	if total != rounds*perRound {
		t.Fatalf("dispatch counts don't conserve: %v", served)
	}
	// The partition was node↔kvstore only: queries kept flowing to every
	// node the whole time.
	for i, s := range served {
		if s == 0 {
			t.Fatalf("node %d served nothing: %v", i, served)
		}
	}
}
