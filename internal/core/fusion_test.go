package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/storage"
)

// recordingCache is a QueryCache that records every Put's attributed cost.
type recordingCache struct {
	mu    sync.Mutex
	costs map[string]time.Duration
}

func newRecordingCache() *recordingCache {
	return &recordingCache{costs: make(map[string]time.Duration)}
}

func (c *recordingCache) Get(q *query.Query) (*exec.Result, bool) { return nil, false }

func (c *recordingCache) Put(q *query.Query, r *exec.Result, cost time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.costs[q.Key()] = cost
}

// TestFusedMemberCacheCost pins the cost attribution fix: every member
// derived from a fused execution is cached at the fused query's measured
// remote cost, not a hardcoded nominal millisecond. The eviction policy
// ranks entries by the work a miss would re-incur — underselling fused
// results would evict exactly the entries worth keeping.
func TestFusedMemberCacheCost(t *testing.T) {
	const latency = 15 * time.Millisecond
	srv := startBackend(t, remote.Config{Latency: latency})
	rec := newRecordingCache()
	pool := newProcessor(t, srv, DefaultOptions(), 4).pool // reuse pool setup
	p := NewProcessor(pool, rec, nil, DefaultOptions())

	base := query.View{Table: "flights"}
	batch := []*query.Query{
		{
			DataSource: "flights", View: base,
			Dims:     []query.Dim{{Col: "dest"}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}},
		},
		{
			DataSource: "flights", View: base,
			Dims:     []query.Dim{{Col: "dest"}},
			Measures: []query.Measure{{Fn: query.Sum, Col: "distance", As: "dist"}},
		},
	}
	if _, err := p.ExecuteBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.FusedAway != 1 {
		t.Fatalf("batch did not fuse: %+v", st)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, q := range batch {
		cost, ok := rec.costs[q.Key()]
		if !ok {
			t.Fatalf("member %q not cached", q.Key())
		}
		if cost < latency {
			t.Errorf("member %q cached at cost %v; want >= measured remote cost %v", q.Key(), cost, latency)
		}
	}
}

// assertOrdered fails unless res is sorted by the given output columns,
// using the same collation applyOrder sorts with.
func assertOrdered(t *testing.T, res *exec.Result, order []query.Order) {
	t.Helper()
	cols := make([]int, len(order))
	for i, o := range order {
		cols[i] = res.ColumnIndex(o.Col)
		if cols[i] < 0 {
			t.Fatalf("order column %q missing from result", o.Col)
		}
	}
	for r := 1; r < res.N; r++ {
		for k, o := range order {
			c := storage.Compare(res.Value(r-1, cols[k]), res.Value(r, cols[k]), res.Schema[cols[k]].Coll)
			if o.Desc {
				c = -c
			}
			if c < 0 {
				break // strictly ordered on this key; later keys unconstrained
			}
			if c > 0 {
				t.Fatalf("row %d out of order on %q (desc=%v)", r, o.Col, o.Desc)
			}
		}
	}
}

// TestFusionRestoresMemberOrder pins the ordered-fusion contract:
// fuseSignature strips OrderBy, so members with different sort orders
// share one remote execution in the first member's sent ordering — and
// Derive must then restore each member's own requested order.
func TestFusionRestoresMemberOrder(t *testing.T) {
	base := query.View{Table: "flights"}
	cases := []struct {
		name   string
		orders [][]query.Order
	}{
		{"asc dim vs desc measure", [][]query.Order{
			{{Col: "dest"}},
			{{Col: "dist", Desc: true}},
		}},
		{"opposite directions on the same dim", [][]query.Order{
			{{Col: "dest"}},
			{{Col: "dest", Desc: true}},
		}},
		{"unordered first, ordered second", [][]query.Order{
			nil,
			{{Col: "dist", Desc: true}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := startBackend(t, remote.Config{})
			p := newProcessor(t, srv, DefaultOptions(), 4)
			batch := []*query.Query{
				{
					DataSource: "flights", View: base,
					Dims:     []query.Dim{{Col: "dest"}},
					Measures: []query.Measure{{Fn: query.Count, As: "n"}},
					OrderBy:  tc.orders[0],
				},
				{
					DataSource: "flights", View: base,
					Dims:     []query.Dim{{Col: "dest"}},
					Measures: []query.Measure{{Fn: query.Sum, Col: "distance", As: "dist"}},
					OrderBy:  tc.orders[1],
				},
			}
			results, err := p.ExecuteBatch(context.Background(), batch)
			if err != nil {
				t.Fatal(err)
			}
			if st := p.Stats(); st.FusedAway != 1 {
				t.Fatalf("members with different OrderBy must still fuse: %+v", st)
			}
			for i, res := range results {
				if res.N == 0 {
					t.Fatalf("member %d: empty result", i)
				}
				if len(batch[i].OrderBy) > 0 {
					assertOrdered(t, res, batch[i].OrderBy)
				}
			}
			// The two members agree on content (modulo projection): equal
			// row counts over the same groups.
			if results[0].N != results[1].N {
				t.Fatalf("member row counts diverge: %d vs %d", results[0].N, results[1].N)
			}
		})
	}
}

// TestRankedQueriesNeverFuse pins that top-n queries are excluded from
// fusion: a ranked query's row set depends on its own OrderBy and N, so
// sharing another member's execution would change its answer.
func TestRankedQueriesNeverFuse(t *testing.T) {
	base := query.View{Table: "flights"}
	cases := []struct {
		name string
		a, b *query.Query
	}{
		{
			"ranked vs unranked twin",
			&query.Query{
				DataSource: "flights", View: base,
				Dims:     []query.Dim{{Col: "dest"}},
				Measures: []query.Measure{{Fn: query.Count, As: "n"}},
				OrderBy:  []query.Order{{Col: "n", Desc: true}},
				N:        5,
			},
			&query.Query{
				DataSource: "flights", View: base,
				Dims:     []query.Dim{{Col: "dest"}},
				Measures: []query.Measure{{Fn: query.Sum, Col: "distance", As: "dist"}},
			},
		},
		{
			"two ranked with different measures",
			&query.Query{
				DataSource: "flights", View: base,
				Dims:     []query.Dim{{Col: "carrier"}},
				Measures: []query.Measure{{Fn: query.Count, As: "n"}},
				OrderBy:  []query.Order{{Col: "n", Desc: true}},
				N:        3,
			},
			&query.Query{
				DataSource: "flights", View: base,
				Dims:     []query.Dim{{Col: "carrier"}},
				Measures: []query.Measure{{Fn: query.Sum, Col: "delay", As: "d"}},
				OrderBy:  []query.Order{{Col: "d", Desc: true}},
				N:        3,
			},
		},
		{
			"same ranked query, different N",
			&query.Query{
				DataSource: "flights", View: base,
				Dims:     []query.Dim{{Col: "carrier"}},
				Measures: []query.Measure{{Fn: query.Count, As: "n"}},
				OrderBy:  []query.Order{{Col: "n", Desc: true}},
				N:        3,
			},
			&query.Query{
				DataSource: "flights", View: base,
				Dims:     []query.Dim{{Col: "carrier"}},
				Measures: []query.Measure{{Fn: query.Count, As: "n"}},
				OrderBy:  []query.Order{{Col: "n", Desc: true}},
				N:        6,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := startBackend(t, remote.Config{})
			// Intelligent cache off so derivability cannot short-circuit the
			// fusion decision under test.
			opt := DefaultOptions()
			opt.DisableIntelligentCache = true
			p := newProcessor(t, srv, opt, 4)
			results, err := p.ExecuteBatch(context.Background(), []*query.Query{tc.a, tc.b})
			if err != nil {
				t.Fatal(err)
			}
			st := p.Stats()
			if st.FusedAway != 0 {
				t.Fatalf("ranked query fused: %+v", st)
			}
			if st.RemoteQueries != 2 {
				t.Fatalf("want 2 separate remote executions, got %d", st.RemoteQueries)
			}
			for i, res := range results {
				q := []*query.Query{tc.a, tc.b}[i]
				if q.N > 0 && res.N > q.N {
					t.Fatalf("member %d: %d rows exceeds top-%d", i, res.N, q.N)
				}
				if len(q.OrderBy) > 0 {
					assertOrdered(t, res, q.OrderBy)
				}
			}
		})
	}
}
