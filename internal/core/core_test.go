package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"vizq/internal/connection"
	"vizq/internal/query"
	"vizq/internal/remote"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

func startBackend(t testing.TB, cfg remote.Config) *remote.Server {
	t.Helper()
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 8000, Days: 90, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(engine.New(db), cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func newProcessor(t testing.TB, srv *remote.Server, opt Options, poolSize int) *Processor {
	t.Helper()
	pool := connection.NewPool(srv.Addr(), connection.PoolConfig{Max: poolSize})
	t.Cleanup(pool.Close)
	return NewProcessor(pool, nil, nil, opt)
}

func canon(r *exec.Result) []string {
	out := make([]string, r.N)
	for i := 0; i < r.N; i++ {
		parts := make([]string, len(r.Cols))
		for c := range r.Cols {
			v := r.Value(i, c)
			if v.Type == storage.TFloat && !v.Null {
				parts[c] = fmt.Sprintf("%.6f", v.F)
			} else {
				parts[c] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func sameResult(t *testing.T, got, want *exec.Result) {
	t.Helper()
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("rows: %d vs %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d:\n got %s\nwant %s", i, g[i], w[i])
		}
	}
}

func carrierCounts() *query.Query {
	return &query.Query{
		DataSource: "flights",
		View:       query.View{Table: "flights"},
		Dims:       []query.Dim{{Col: "carrier"}},
		Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
	}
}

func TestExecuteCachesResults(t *testing.T) {
	srv := startBackend(t, remote.Config{})
	p := newProcessor(t, srv, DefaultOptions(), 2)
	ctx := context.Background()
	q := carrierCounts()
	r1, err := p.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Execute(ctx, q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, r2, r1)
	st := p.Stats()
	if st.RemoteQueries != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if srv.Stats().Queries != 1 {
		t.Errorf("backend saw %d queries", srv.Stats().Queries)
	}
}

func TestExecuteAvgAdjustedForReuse(t *testing.T) {
	srv := startBackend(t, remote.Config{})
	p := newProcessor(t, srv, DefaultOptions(), 2)
	ctx := context.Background()
	fine := &query.Query{
		DataSource: "flights",
		View:       query.View{Table: "flights"},
		Dims:       []query.Dim{{Col: "carrier"}, {Col: "origin"}},
		Measures:   []query.Measure{{Fn: query.Avg, Col: "delay", As: "a"}},
	}
	if _, err := p.Execute(ctx, fine); err != nil {
		t.Fatal(err)
	}
	// A coarser AVG over the same data must be a cache hit thanks to the
	// sum/count adjustment.
	coarse := fine.Clone()
	coarse.Dims = []query.Dim{{Col: "carrier"}}
	res, err := p.Execute(ctx, coarse)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats().RemoteQueries != 1 {
		t.Errorf("remote queries = %d, want 1 (avg roll-up should hit)", p.Stats().RemoteQueries)
	}
	// Validate against a processor without caching.
	p2 := newProcessor(t, srv, Options{DisableIntelligentCache: true, DisableLiteralCache: true}, 2)
	want, err := p2.Execute(ctx, coarse.Clone())
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, want)
}

func dashboardBatch() []*query.Query {
	base := query.View{Table: "flights"}
	return []*query.Query{
		// q0: the "big" zone query — carrier x origin counts + delays.
		{
			DataSource: "flights", View: base,
			Dims:     []query.Dim{{Col: "carrier"}, {Col: "origin"}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}, {Fn: query.Sum, Col: "distance", As: "dist"}},
		},
		// q1: derivable roll-up of q0.
		{
			DataSource: "flights", View: base,
			Dims:     []query.Dim{{Col: "carrier"}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}},
		},
		// q2: derivable filter of q0.
		{
			DataSource: "flights", View: base,
			Dims:     []query.Dim{{Col: "origin"}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}},
			Filters:  []query.Filter{query.InFilter("carrier", storage.StrValue("WN"))},
		},
		// q3: independent remote query (different view columns).
		{
			DataSource: "flights", View: base,
			Dims:     []query.Dim{{Col: "dest"}},
			Measures: []query.Measure{{Fn: query.Count, As: "n"}},
		},
		// q4: fusable with q3 — same everything but the projection list.
		{
			DataSource: "flights", View: base,
			Dims:     []query.Dim{{Col: "dest"}},
			Measures: []query.Measure{{Fn: query.Sum, Col: "distance", As: "dist"}},
		},
	}
}

func TestExecuteBatch(t *testing.T) {
	srv := startBackend(t, remote.Config{Latency: 2 * time.Millisecond})
	p := newProcessor(t, srv, DefaultOptions(), 4)
	ctx := context.Background()
	batch := dashboardBatch()
	results, err := p.ExecuteBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	backendQueries := srv.Stats().Queries
	// Correctness: compare each against an uncached pipeline.
	ref := newProcessor(t, srv, Options{DisableIntelligentCache: true, DisableLiteralCache: true}, 4)
	for i, q := range batch {
		want, err := ref.Execute(ctx, q.Clone())
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, results[i], want)
	}
	// Efficiency: q1 and q2 answered locally, q3+q4 fused -> 2 remote sends.
	st := p.Stats()
	if st.RemoteQueries != 2 {
		t.Errorf("remote queries = %d, want 2 (stats %+v)", st.RemoteQueries, st)
	}
	if st.LocalAnswers != 2 {
		t.Errorf("local answers = %d, want 2", st.LocalAnswers)
	}
	if st.FusedAway != 1 {
		t.Errorf("fused away = %d, want 1", st.FusedAway)
	}
	if backendQueries != 2 {
		t.Errorf("backend saw %d queries, want 2", backendQueries)
	}
}

func TestExecuteBatchSerialBaseline(t *testing.T) {
	srv := startBackend(t, remote.Config{})
	p := newProcessor(t, srv, Options{
		DisableBatchConcurrency: true,
		DisableFusion:           true,
		DisableIntelligentCache: true,
		DisableLiteralCache:     true,
	}, 1)
	results, err := p.ExecuteBatch(context.Background(), dashboardBatch())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d missing", i)
		}
	}
	if got := srv.Stats().Queries; got != 5 {
		t.Errorf("serial baseline should send all 5 queries, sent %d", got)
	}
}

func TestExecuteBatchIdenticalQueries(t *testing.T) {
	srv := startBackend(t, remote.Config{})
	p := newProcessor(t, srv, DefaultOptions(), 4)
	q := carrierCounts()
	batch := []*query.Query{q, q.Clone(), q.Clone()}
	results, err := p.ExecuteBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, results[1], results[0])
	sameResult(t, results[2], results[0])
	if got := srv.Stats().Queries; got != 1 {
		t.Errorf("identical queries should collapse to one send, sent %d", got)
	}
}

func TestLargeFilterExternalization(t *testing.T) {
	srv := startBackend(t, remote.Config{})
	opt := DefaultOptions()
	opt.MaxInlineFilterValues = 5
	p := newProcessor(t, srv, opt, 2)
	ctx := context.Background()

	var vals []storage.Value
	for _, m := range workload.AirportCodesList(20) {
		vals = append(vals, storage.StrValue(m))
	}
	q := carrierCounts()
	q.Filters = []query.Filter{query.InFilter("origin", vals...)}
	res, err := p.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats().TempTables != 1 {
		t.Errorf("temp tables = %d", p.Stats().TempTables)
	}
	// Same semantics as the inline version.
	inlineOpt := DefaultOptions()
	inlineOpt.MaxInlineFilterValues = 1000
	inlineOpt.DisableIntelligentCache = true
	inlineOpt.DisableLiteralCache = true
	p2 := newProcessor(t, srv, inlineOpt, 2)
	want, err := p2.Execute(ctx, q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, want)
	// And the externalized result is cached under the original structure.
	if _, err := p.Execute(ctx, q.Clone()); err != nil {
		t.Fatal(err)
	}
	if p.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %d", p.Stats().CacheHits)
	}
}

func TestLiteralCacheHit(t *testing.T) {
	srv := startBackend(t, remote.Config{})
	// Intelligent cache off: identical text still hits the literal cache.
	p := newProcessor(t, srv, Options{DisableIntelligentCache: true}, 2)
	ctx := context.Background()
	q := carrierCounts()
	if _, err := p.Execute(ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(ctx, q.Clone()); err != nil {
		t.Fatal(err)
	}
	if p.Stats().LiteralHits != 1 {
		t.Errorf("literal hits = %d", p.Stats().LiteralHits)
	}
	if srv.Stats().Queries != 1 {
		t.Errorf("backend queries = %d", srv.Stats().Queries)
	}
}

func TestBatchConcurrencyFasterThanSerial(t *testing.T) {
	// The headline claim of Sect. 3.3/3.5: with per-query latency and idle
	// backend resources, concurrent submission over multiple connections
	// beats serial execution.
	lat := 25 * time.Millisecond
	srv := startBackend(t, remote.Config{Latency: lat})
	mkBatch := func() []*query.Query {
		var out []*query.Query
		for i, col := range []string{"carrier", "origin", "dest", "market", "hour", "date"} {
			q := &query.Query{
				DataSource: "flights",
				View:       query.View{Table: "flights"},
				Dims:       []query.Dim{{Col: col}},
				Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
				// Distinct filters so nothing is derivable across queries.
				Filters: []query.Filter{query.GtFilter("distance", storage.IntValue(int64(100+i)))},
			}
			out = append(out, q)
		}
		return out
	}

	serial := newProcessor(t, srv, Options{DisableBatchConcurrency: true, DisableIntelligentCache: true, DisableLiteralCache: true}, 1)
	start := time.Now()
	if _, err := serial.ExecuteBatch(context.Background(), mkBatch()); err != nil {
		t.Fatal(err)
	}
	serialTime := time.Since(start)

	conc := newProcessor(t, srv, Options{DisableIntelligentCache: true, DisableLiteralCache: true}, 6)
	start = time.Now()
	if _, err := conc.ExecuteBatch(context.Background(), mkBatch()); err != nil {
		t.Fatal(err)
	}
	concTime := time.Since(start)

	if concTime >= serialTime {
		t.Errorf("concurrent (%v) should beat serial (%v)", concTime, serialTime)
	}
	t.Logf("serial=%v concurrent=%v speedup=%.1fx", serialTime, concTime, float64(serialTime)/float64(concTime))
}
