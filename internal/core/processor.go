// Package core is the paper's primary contribution: the query processing
// pipeline for dashboards (Sect. 3). It prepares query batches — building
// the cache-hit opportunity graph, partitioning queries into remote and
// local sets, fusing projection-variant queries — submits remote queries
// concurrently over pooled connections, externalizes large filter
// enumerations into session temporary tables, and answers local queries
// from the two-level query cache.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"vizq/internal/cache"
	"vizq/internal/connection"
	"vizq/internal/obs"
	"vizq/internal/query"
	"vizq/internal/resilience"
	"vizq/internal/sched"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// Pipeline metrics, shared process-wide.
var (
	mBatchSize   = obs.H("core.batch.size")
	cRemoteSent  = obs.C("core.remote_queries")
	cCacheHits   = obs.C("core.cache_hits")
	cLiteralHits = obs.C("core.literal_hits")
	cFusedAway   = obs.C("core.fused_away")
	cLocal       = obs.C("core.local_answers")
	cTempTables  = obs.C("core.temp_tables")
)

// QueryCache is the intelligent-cache surface the processor needs; both
// *cache.IntelligentCache and *cache.Distributed satisfy it.
type QueryCache interface {
	Get(*query.Query) (*exec.Result, bool)
	Put(*query.Query, *exec.Result, time.Duration)
}

// StaleQueryCache is the optional degraded-read surface of a QueryCache:
// caches that can serve expired entries within a grace window implement it
// (the stale-on-error path takes it when the backend is unreachable).
type StaleQueryCache interface {
	GetStale(*query.Query) (*exec.Result, bool)
}

// Options tunes the pipeline; the Disable flags drive ablation benchmarks.
type Options struct {
	// DisableIntelligentCache turns semantic caching off.
	DisableIntelligentCache bool
	// DisableLiteralCache turns text caching off.
	DisableLiteralCache bool
	// DisableFusion turns query fusion (Sect. 3.4) off.
	DisableFusion bool
	// DisableBatchConcurrency executes batches serially (the baseline of
	// Sect. 3.3).
	DisableBatchConcurrency bool
	// DisableReuseAdjustment stops rewriting AVG into SUM/COUNT partials.
	DisableReuseAdjustment bool
	// DisableSingleFlight turns off coalescing of concurrent identical
	// remote executions (the correlated-miss stampede defense).
	DisableSingleFlight bool
	// MaxInlineFilterValues externalizes larger IN lists into temporary
	// tables on the data source (Sect. 3.1/5.3). 0 disables.
	MaxInlineFilterValues int
	// Resilience, when non-nil, wraps backend access in retry/backoff and a
	// per-data-source circuit breaker, and (if Resilience.ServeStale) lets
	// the pipeline fall back to expired cache entries during outages.
	Resilience *resilience.Config
	// Scheduler, when non-nil, admission-controls every remote execution:
	// queries queue under their context's class, user and session
	// (hierarchical fair queuing — see sched.WithUser/WithSession), and
	// may be shed with sched.ErrShed under overload. Cache hits bypass it
	// — they consume no backend capacity. A shed never reaches the circuit
	// breaker (it is refused before the resilience layer runs), but it
	// qualifies for the stale-on-error degraded read like an outage does.
	Scheduler *sched.Scheduler
}

// DefaultOptions enable everything.
func DefaultOptions() Options {
	return Options{MaxInlineFilterValues: 250}
}

// Stats counts pipeline activity.
type Stats struct {
	RemoteQueries int64
	CacheHits     int64
	LiteralHits   int64
	FusedAway     int64
	LocalAnswers  int64
	TempTables    int64
	// FlightLeader counts remote executions that led a single-flight;
	// FlightShared counts executions avoided by joining one in flight.
	FlightLeader int64
	FlightShared int64
	// StaleServed counts degraded answers from expired cache entries while
	// the backend was unreachable.
	StaleServed int64
}

// Processor executes internal queries against one data source through the
// caching and batching pipeline.
type Processor struct {
	pool        *connection.Pool
	intelligent QueryCache
	literal     *cache.LiteralCache
	flight      *cache.Flight
	rs          *resilience.Resilience
	opt         Options

	stats Stats
}

// NewProcessor wires a pipeline. intelligent and literal may be nil (both
// caches then default to fresh instances; use Options to disable).
func NewProcessor(pool *connection.Pool, intelligent QueryCache, literal *cache.LiteralCache, opt Options) *Processor {
	if intelligent == nil {
		intelligent = cache.NewIntelligentCache(cache.DefaultOptions())
	}
	if literal == nil {
		literal = cache.NewLiteralCache(cache.DefaultOptions())
	}
	p := &Processor{pool: pool, intelligent: intelligent, literal: literal, flight: cache.NewFlight(), opt: opt}
	if opt.Resilience != nil {
		p.rs = resilience.New(*opt.Resilience, connection.IsTransport)
	}
	return p
}

// Resilience exposes the pipeline's retry/breaker policy, or nil when none
// is configured (introspection: breaker state, loadsim reporting).
func (p *Processor) Resilience() *resilience.Resilience { return p.rs }

// ClearCaches purges both cache levels — done when a data source connection
// is closed or refreshed ("entries are also purged when a connection to a
// data source is closed or refreshed", Sect. 3.2).
func (p *Processor) ClearCaches() {
	p.literal.Clear()
	if c, ok := p.intelligent.(interface{ Clear() }); ok {
		c.Clear()
	}
}

// Stats snapshots counters.
func (p *Processor) Stats() Stats {
	return Stats{
		RemoteQueries: atomic.LoadInt64(&p.stats.RemoteQueries),
		CacheHits:     atomic.LoadInt64(&p.stats.CacheHits),
		LiteralHits:   atomic.LoadInt64(&p.stats.LiteralHits),
		FusedAway:     atomic.LoadInt64(&p.stats.FusedAway),
		LocalAnswers:  atomic.LoadInt64(&p.stats.LocalAnswers),
		TempTables:    atomic.LoadInt64(&p.stats.TempTables),
		FlightLeader:  atomic.LoadInt64(&p.stats.FlightLeader),
		FlightShared:  atomic.LoadInt64(&p.stats.FlightShared),
		StaleServed:   atomic.LoadInt64(&p.stats.StaleServed),
	}
}

// Execute runs one query through the full pipeline: intelligent cache,
// reuse adjustment, literal cache, remote execution, cache population.
func (p *Processor) Execute(ctx context.Context, q *query.Query) (*exec.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, obs.SpanQuery)
	defer sp.Finish()
	if !p.opt.DisableIntelligentCache {
		_, ps := obs.StartSpan(ctx, obs.SpanCacheProbe)
		res, ok := p.intelligent.Get(q)
		ps.Finish()
		if ok {
			atomic.AddInt64(&p.stats.CacheHits, 1)
			cCacheHits.Inc()
			sp.Annotate("answer", "cache")
			return res, nil
		}
	}
	sent := q
	if !p.opt.DisableReuseAdjustment {
		sent = cache.AdjustForReuse(q)
	}
	res, err := p.executeRemote(ctx, sent)
	if err != nil {
		return nil, err
	}
	if res.Stale {
		sp.Annotate("answer", "stale")
	}
	if sent == q {
		return res, nil
	}
	derived, ok := cache.Derive(sent, res, q)
	if !ok {
		return nil, fmt.Errorf("core: adjusted query does not cover the original")
	}
	// Deriving builds a new result: the degraded-read tag must survive it.
	derived.Stale = res.Stale
	return derived, nil
}

// executeRemote sends a query to the data source, going through the literal
// cache, coalescing concurrent identical executions via single-flight, and
// externalizing oversized IN lists into session temp tables.
func (p *Processor) executeRemote(ctx context.Context, q *query.Query) (*exec.Result, error) {
	big := p.bigFilters(q)
	if len(big) > 0 {
		// Each retry re-runs the whole externalization: temp tables created
		// by a failed attempt died with its poisoned connection anyway.
		res, err := func() (*exec.Result, error) {
			tk, err := p.opt.Scheduler.Admit(ctx)
			if err != nil {
				return nil, err
			}
			defer tk.Done()
			return resilience.Do(ctx, p.rs, func(ctx context.Context) (*exec.Result, error) {
				return p.executeWithTempTables(ctx, q, big)
			})
		}()
		if err != nil {
			if stale, ok := p.staleFallback(q, q.ToTQL(), err); ok {
				return stale, nil
			}
			return nil, err
		}
		return res, nil
	}
	text := q.ToTQL()
	if !p.opt.DisableLiteralCache {
		_, ps := obs.StartSpan(ctx, obs.SpanCacheProbe)
		res, ok := p.literal.Get(text)
		ps.Finish()
		if ok {
			atomic.AddInt64(&p.stats.LiteralHits, 1)
			cLiteralHits.Inc()
			return res, nil
		}
	}
	if p.opt.DisableSingleFlight {
		res, err := p.fetchRemote(ctx, q, text)
		if err != nil {
			if stale, ok := p.staleFallback(q, text, err); ok {
				return stale, nil
			}
		}
		return res, err
	}
	// Coalesce on the query text (the same structural key the literal cache
	// uses): concurrent misses for one query — many sessions rendering the
	// same fresh dashboard — execute remotely once, and the waiters share
	// the leader's result. Only the leader populates the caches.
	res, shared, err := p.flight.Do(ctx, text, func() (*exec.Result, error) {
		return p.fetchRemote(ctx, q, text)
	})
	if shared {
		atomic.AddInt64(&p.stats.FlightShared, 1)
	} else {
		atomic.AddInt64(&p.stats.FlightLeader, 1)
	}
	if err != nil {
		// Degraded read: every coalesced waiter takes this path on its own
		// copy of the leader's error, so all of them share the stale answer.
		if stale, ok := p.staleFallback(q, text, err); ok {
			return stale, nil
		}
	}
	return res, err
}

// staleFallback tries to answer q from an expired cache entry within its
// grace window after the fresh path failed. Only outage-shaped errors
// qualify — a breaker fast-fail or a transport failure; query-level errors
// (the backend answered, the query is wrong) are never masked by old data.
func (p *Processor) staleFallback(q *query.Query, text string, err error) (*exec.Result, bool) {
	if !p.rs.ServeStale() {
		return nil, false
	}
	// A load shed qualifies like an outage: the backend was never asked,
	// and a slightly old dashboard beats an error during an overload burst.
	if !errors.Is(err, resilience.ErrOpen) && !errors.Is(err, sched.ErrShed) && !connection.IsTransport(err) {
		return nil, false
	}
	var res *exec.Result
	ok := false
	if !p.opt.DisableLiteralCache {
		res, ok = p.literal.GetStale(text)
	}
	if !ok && !p.opt.DisableIntelligentCache {
		if sc, isStale := p.intelligent.(StaleQueryCache); isStale {
			res, ok = sc.GetStale(q)
		}
	}
	if !ok {
		return nil, false
	}
	atomic.AddInt64(&p.stats.StaleServed, 1)
	// Tag a shallow copy: the cached entry itself must stay untagged so a
	// later fresh hit is not mislabeled.
	tagged := *res
	tagged.Stale = true
	return &tagged, true
}

// Metadata retrieves a table's schema from the data source under the same
// resilience policy as queries (metadata retrieval is part of the
// connection-setup cost the pool exists to amortize, Sect. 3.5).
func (p *Processor) Metadata(ctx context.Context, table string) (*exec.Result, error) {
	return resilience.Do(ctx, p.rs, func(ctx context.Context) (*exec.Result, error) {
		return p.pool.Metadata(ctx, table)
	})
}

// fetchRemote runs one remote round-trip — admission-controlled when a
// scheduler is configured, retried under the resilience policy when one is
// configured — and populates both cache levels. Under single-flight only
// the leader runs here, so coalesced waiters never consume admission slots.
func (p *Processor) fetchRemote(ctx context.Context, q *query.Query, text string) (*exec.Result, error) {
	tk, err := p.opt.Scheduler.Admit(ctx)
	if err != nil {
		return nil, err
	}
	defer tk.Done()
	start := time.Now()
	res, err := resilience.Do(ctx, p.rs, func(ctx context.Context) (*exec.Result, error) {
		return p.pool.Query(ctx, text)
	})
	if err != nil {
		return nil, err
	}
	cost := time.Since(start)
	atomic.AddInt64(&p.stats.RemoteQueries, 1)
	cRemoteSent.Inc()
	if !p.opt.DisableLiteralCache {
		p.literal.Put(text, res, cost)
	}
	if !p.opt.DisableIntelligentCache {
		p.intelligent.Put(q, res, cost)
	}
	return res, nil
}

func (p *Processor) bigFilters(q *query.Query) []int {
	if p.opt.MaxInlineFilterValues <= 0 {
		return nil
	}
	var out []int
	for i, f := range q.Filters {
		if f.Kind == query.FilterIn && len(f.In) > p.opt.MaxInlineFilterValues {
			out = append(out, i)
		}
	}
	return out
}

// executeWithTempTables externalizes the given IN filters as temporary
// tables in the remote session and rewrites the query to join against them
// ("externalization of large enumerations with temporary secondary
// structures", Sect. 3.1). The query must run on the connection holding the
// temp tables, so the pipeline pins one for the duration.
func (p *Processor) executeWithTempTables(ctx context.Context, q *query.Query, big []int) (*exec.Result, error) {
	ctx, sp := obs.StartSpan(ctx, obs.SpanTempTable)
	defer sp.Finish()
	conn, err := p.pool.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer p.pool.Release(conn)

	rewritten := q.Clone()
	var keep []query.Filter
	bigSet := map[int]bool{}
	for _, i := range big {
		bigSet[i] = true
	}
	joinIdx := 0
	for i, f := range q.Filters {
		if !bigSet[i] {
			keep = append(keep, f)
			continue
		}
		// Deduplicate: the n:1 join must not multiply fact rows.
		vals := exec.NewResult([]plan.ColInfo{{Name: "val", Type: f.In[0].Type, Coll: storage.CollBinary}})
		seen := make(map[string]bool, len(f.In))
		for _, v := range f.In {
			k := v.String()
			if v.Null || seen[k] {
				continue
			}
			seen[k] = true
			vals.AppendRow([]storage.Value{v})
		}
		alias := fmt.Sprintf("filter%d", joinIdx)
		joinIdx++
		name, err := conn.CreateTempTable(ctx, alias, vals)
		if err != nil {
			return nil, err
		}
		atomic.AddInt64(&p.stats.TempTables, 1)
		cTempTables.Inc()
		rewritten.View.Joins = append(rewritten.View.Joins, query.JoinSpec{
			Table: name, LeftCol: f.Col, RightCol: "val",
		})
	}
	rewritten.Filters = keep

	start := time.Now()
	res, err := conn.Query(ctx, rewritten.ToTQL())
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&p.stats.RemoteQueries, 1)
	cRemoteSent.Inc()
	// Cache under the ORIGINAL structure: the temp-table join is an
	// execution detail, the semantics are the original filters.
	if !p.opt.DisableIntelligentCache {
		p.intelligent.Put(q, res, time.Since(start))
	}
	return res, nil
}
