package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vizq/internal/cache"
	"vizq/internal/obs"
	"vizq/internal/query"
	"vizq/internal/tde/exec"
)

// ExecuteBatch minimizes the latency of an entire query batch (Sect. 3.3):
//
//  1. Answer what the cache already covers.
//  2. Build the cache-hit opportunity graph over the rest and partition it:
//     source nodes go remote, dominated nodes are computed locally from
//     their predecessors' results.
//  3. Fuse remote queries that differ only in their projection lists
//     (Sect. 3.4).
//  4. Submit remote queries concurrently; answer each local query as soon
//     as one of its predecessors completes.
//
// Results are returned in batch order.
func (p *Processor) ExecuteBatch(ctx context.Context, batch []*query.Query) ([]*exec.Result, error) {
	results := make([]*exec.Result, len(batch))
	errs := make([]error, len(batch))
	for _, q := range batch {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	ctx, sp := obs.StartSpan(ctx, obs.SpanBatch)
	defer sp.Finish()
	sp.Annotatef("queries", "%d", len(batch))
	mBatchSize.Observe(int64(len(batch)))

	// Phase 0: cache hits answer immediately.
	var pending []int
	_, probe := obs.StartSpan(ctx, obs.SpanCacheProbe)
	for i, q := range batch {
		if !p.opt.DisableIntelligentCache {
			if res, ok := p.intelligent.Get(q); ok {
				atomic.AddInt64(&p.stats.CacheHits, 1)
				cCacheHits.Inc()
				results[i] = res
				continue
			}
		}
		pending = append(pending, i)
	}
	probe.Finish()
	if len(pending) == 0 {
		return results, nil
	}

	if p.opt.DisableBatchConcurrency {
		for _, i := range pending {
			res, err := p.Execute(ctx, batch[i])
			if err != nil {
				return nil, fmt.Errorf("core: query %d: %w", i, err)
			}
			results[i] = res
		}
		return results, nil
	}

	// Phase 1: the cache-hit opportunity graph (Fig. 3). pred[j] holds the
	// pending indices whose results can answer j.
	_, plan := obs.StartSpan(ctx, obs.SpanFuse)
	pred := p.opportunityGraph(batch, pending)
	var remoteIdx, localIdx []int
	for _, i := range pending {
		if len(pred[i]) == 0 {
			remoteIdx = append(remoteIdx, i)
		} else {
			localIdx = append(localIdx, i)
		}
	}

	// Phase 2: fuse projection-variant remote queries.
	groups := p.fuseGroups(batch, remoteIdx)
	plan.Annotatef("remote", "%d", len(remoteIdx))
	plan.Annotatef("local", "%d", len(localIdx))
	plan.Annotatef("groups", "%d", len(groups))
	plan.Finish()

	// Phase 3: concurrent remote submission. done[i] closes when query i's
	// result is cached and available.
	done := make(map[int]chan struct{}, len(remoteIdx))
	for _, i := range remoteIdx {
		done[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g fuseGroup) {
			defer wg.Done()
			p.runFused(ctx, batch, g, results, errs)
			for _, i := range g.members {
				close(done[i])
			}
		}(g)
	}

	// Phase 4: locals fire as soon as any predecessor completes.
	for _, j := range localIdx {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			p.answerLocal(ctx, batch, j, pred[j], done, results, errs)
		}(j)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: query %d: %w", i, err)
		}
	}
	return results, nil
}

// opportunityGraph computes, for every pending query, the other pending
// queries that subsume it. Mutual subsumption (structurally equal queries)
// is broken by index order so the graph stays acyclic.
func (p *Processor) opportunityGraph(batch []*query.Query, pending []int) map[int][]int {
	pred := make(map[int][]int, len(pending))
	if p.opt.DisableIntelligentCache {
		for _, i := range pending {
			pred[i] = nil
		}
		return pred
	}
	for _, j := range pending {
		for _, i := range pending {
			if i == j {
				continue
			}
			if !cache.Subsumes(batch[i], batch[j]) {
				continue
			}
			if cache.Subsumes(batch[j], batch[i]) && i > j {
				continue // tie: the lower index is the representative
			}
			pred[j] = append(pred[j], i)
		}
	}
	// Only source nodes execute remotely, so predecessors that are
	// themselves dominated are fine: their own predecessors complete first.
	// But a local answered from a local needs its predecessor chain to
	// terminate at a source; keep only predecessors that are sources to
	// guarantee progress.
	for j, ps := range pred {
		var sources []int
		for _, i := range ps {
			if len(pred[i]) == 0 {
				sources = append(sources, i)
			}
		}
		if len(sources) > 0 {
			pred[j] = sources
		} else if len(ps) > 0 {
			// All predecessors are themselves dominated: follow one hop up.
			seen := map[int]bool{}
			var walk func(int) int
			walk = func(i int) int {
				if len(pred[i]) == 0 || seen[i] {
					return i
				}
				seen[i] = true
				return walk(pred[i][0])
			}
			pred[j] = []int{walk(ps[0])}
		}
	}
	return pred
}

// fuseGroup is a set of remote queries answered by one sent query.
type fuseGroup struct {
	members []int
	sent    *query.Query
}

// fuseGroups combines remote queries "defined over the same relation and
// potentially different with respect to their top-level projection lists"
// into single queries whose projection is the union (Sect. 3.4).
func (p *Processor) fuseGroups(batch []*query.Query, remoteIdx []int) []fuseGroup {
	if p.opt.DisableFusion {
		out := make([]fuseGroup, 0, len(remoteIdx))
		for _, i := range remoteIdx {
			out = append(out, fuseGroup{members: []int{i}, sent: batch[i]})
		}
		return out
	}
	type bucket struct {
		members []int
		fused   *query.Query
	}
	buckets := map[string]*bucket{}
	var order []string
	for _, i := range remoteIdx {
		q := batch[i]
		sig := fuseSignature(q)
		b, ok := buckets[sig]
		if !ok {
			b = &bucket{fused: q.Clone()}
			buckets[sig] = b
			order = append(order, sig)
		} else {
			mergeMeasures(b.fused, q)
			atomic.AddInt64(&p.stats.FusedAway, 1)
			cFusedAway.Inc()
		}
		b.members = append(b.members, i)
	}
	out := make([]fuseGroup, 0, len(order))
	for _, sig := range order {
		b := buckets[sig]
		out = append(out, fuseGroup{members: b.members, sent: b.fused})
	}
	return out
}

// fuseSignature buckets queries whose non-projection parts are identical:
// same view, same dimensions, same filters, no top-n.
func fuseSignature(q *query.Query) string {
	if q.N > 0 {
		return "topn:" + q.Key() // never fuse ranked queries
	}
	c := q.Clone()
	c.Measures = nil
	c.OrderBy = nil
	return c.Key()
}

// mergeMeasures unions src's measures into dst.
func mergeMeasures(dst, src *query.Query) {
	have := map[string]bool{}
	for _, m := range dst.Measures {
		have[string(m.Fn)+"|"+m.Col] = true
	}
	for _, m := range src.Measures {
		k := string(m.Fn) + "|" + m.Col
		if !have[k] {
			dst.Measures = append(dst.Measures, m)
			have[k] = true
		}
	}
}

// runFused executes a fused query and derives each member's result.
func (p *Processor) runFused(ctx context.Context, batch []*query.Query, g fuseGroup, results []*exec.Result, errs []error) {
	sent := g.sent
	if !p.opt.DisableReuseAdjustment {
		sent = cache.AdjustForReuse(sent)
	}
	start := time.Now()
	res, err := p.executeRemote(ctx, sent)
	if err != nil {
		for _, i := range g.members {
			errs[i] = err
		}
		return
	}
	// Each derived member is cached at the fused execution's measured cost:
	// re-running any member means re-running the fused remote query, and the
	// eviction policy ranks entries by the work a miss would cost. A
	// hardcoded nominal cost would undersell expensive fused queries and
	// evict exactly the entries worth keeping.
	cost := time.Since(start)
	_, pp := obs.StartSpan(ctx, obs.SpanPostProcess)
	defer pp.Finish()
	for _, i := range g.members {
		derived, ok := cache.Derive(sent, res, batch[i])
		if !ok {
			errs[i] = fmt.Errorf("core: fused result does not cover member query")
			continue
		}
		results[i] = derived
		if !p.opt.DisableIntelligentCache {
			p.intelligent.Put(batch[i], derived, cost)
		}
	}
}

// answerLocal waits for any predecessor of j to finish, then answers j from
// the cache; if derivation unexpectedly fails it falls back to a remote
// execution.
func (p *Processor) answerLocal(ctx context.Context, batch []*query.Query, j int, preds []int, done map[int]chan struct{}, results []*exec.Result, errs []error) {
	ctx, sp := obs.StartSpan(ctx, obs.SpanLocalAnswer)
	defer sp.Finish()
	waited := false
	for _, i := range preds {
		ch, ok := done[i]
		if !ok {
			continue
		}
		select {
		case <-ch:
		case <-ctx.Done():
			errs[j] = ctx.Err()
			return
		}
		waited = true
		if !p.opt.DisableIntelligentCache {
			if res, ok := p.intelligent.Get(batch[j]); ok {
				atomic.AddInt64(&p.stats.LocalAnswers, 1)
				cLocal.Inc()
				results[j] = res
				return
			}
		}
	}
	_ = waited
	// Fallback: the planned derivation did not hold at runtime.
	res, err := p.Execute(ctx, batch[j])
	if err != nil {
		errs[j] = err
		return
	}
	results[j] = res
}
