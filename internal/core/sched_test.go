package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"vizq/internal/cache"
	"vizq/internal/connection"
	"vizq/internal/remote"
	"vizq/internal/resilience"
	"vizq/internal/sched"
)

// newSchedProcessor builds a pipeline with admission control and returns
// the scheduler for direct manipulation (holding slots, reading stats).
func newSchedProcessor(t testing.TB, srv *remote.Server, opt Options, copt cache.Options, scfg sched.Config) (*Processor, *sched.Scheduler) {
	t.Helper()
	sc := sched.New(scfg)
	opt.Scheduler = sc
	pool := connection.NewPool(srv.Addr(), connection.PoolConfig{Max: 4})
	t.Cleanup(pool.Close)
	return NewProcessor(pool, cache.NewIntelligentCache(copt), cache.NewLiteralCache(copt), opt), sc
}

// saturate seeds the scheduler's service-time estimator and occupies its
// only slot so the next admission must queue or shed.
func saturate(t testing.TB, sc *sched.Scheduler) *sched.Ticket {
	t.Helper()
	seed, err := sc.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	seed.Done() // one completion: the wait estimator is now warm
	hold, err := sc.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return hold
}

// TestShedIsNotABreakerFailure pins the resilience integration: a load
// shed happens before the resilience layer runs, so it must never count
// against the circuit breaker — an overload burst must not trip the
// breaker open and lock out the recovered backend.
func TestShedIsNotABreakerFailure(t *testing.T) {
	srv := startBackend(t, remote.Config{})
	opt := DefaultOptions()
	opt.DisableSingleFlight = true
	opt.Resilience = &resilience.Config{MaxAttempts: 1, BreakerMinSamples: 1, BreakerFailureRatio: 0.5}
	p, sc := newSchedProcessor(t, srv, opt, cache.DefaultOptions(), sched.Config{Limit: 1})

	hold := saturate(t, sc)
	shedCount := 0
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
		_, err := p.Execute(ctx, carrierCounts())
		cancel()
		if err == nil {
			t.Fatal("saturated scheduler admitted a doomed-deadline query")
		}
		if !errors.Is(err, sched.ErrShed) {
			t.Fatalf("want ErrShed, got %v", err)
		}
		shedCount++
	}
	hold.Done()

	br := p.Resilience().Breaker()
	if st := br.Stats(); st.State != resilience.Closed || st.Opened != 0 || st.FastFails != 0 {
		t.Fatalf("breaker saw %d sheds as failures: %+v", shedCount, st)
	}
	// With capacity back, the same pipeline serves fresh immediately — the
	// burst left no open breaker and no wedged scheduler state.
	res, err := p.Execute(context.Background(), carrierCounts())
	if err != nil || res.N == 0 {
		t.Fatalf("post-burst query = (%v, %v)", res, err)
	}
	if st := sc.Stats(); st.ShedDeadline != int64(shedCount) {
		t.Fatalf("scheduler stats: %+v, want %d deadline sheds", st, shedCount)
	}
}

// TestStaleServedOnShed pins the degraded-read integration: a shed query
// whose caches hold an expired-but-in-grace entry is answered stale, like
// an outage would be — a slightly old dashboard beats an error during an
// overload burst.
func TestStaleServedOnShed(t *testing.T) {
	srv := startBackend(t, remote.Config{})
	opt := DefaultOptions()
	opt.DisableSingleFlight = true
	opt.Resilience = &resilience.Config{MaxAttempts: 1, BreakerMinSamples: 100, ServeStale: true}
	copt := cache.DefaultOptions()
	copt.FreshFor = 30 * time.Millisecond
	copt.StaleGrace = time.Hour
	p, sc := newSchedProcessor(t, srv, opt, copt, sched.Config{Limit: 1})

	warm, err := p.Execute(context.Background(), carrierCounts())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) //vizlint:allow sleep -- let the cache entry expire into its grace window

	hold := saturate(t, sc)
	defer hold.Done()
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	res, err := p.Execute(ctx, carrierCounts())
	if err != nil {
		t.Fatalf("shed with grace entry should serve stale, got %v", err)
	}
	if !res.Stale || res.N != warm.N {
		t.Fatalf("stale answer = (N=%d stale=%v), warm N=%d", res.N, res.Stale, warm.N)
	}
	if st := p.Stats(); st.StaleServed == 0 {
		t.Fatalf("StaleServed = 0 after stale-on-shed: %+v", st)
	}
	if st := sc.Stats(); st.Shed == 0 {
		t.Fatalf("no shed recorded: %+v", st)
	}
}

// TestShedWithoutStaleFallsThrough: without ServeStale (or without a
// grace entry) the shed error itself reaches the caller, typed.
func TestShedWithoutStaleFallsThrough(t *testing.T) {
	srv := startBackend(t, remote.Config{})
	opt := DefaultOptions()
	opt.DisableSingleFlight = true
	p, sc := newSchedProcessor(t, srv, opt, cache.DefaultOptions(), sched.Config{Limit: 1})

	hold := saturate(t, sc)
	defer hold.Done()
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	_, err := p.Execute(ctx, carrierCounts())
	var se *sched.ShedError
	if !errors.As(err, &se) {
		t.Fatalf("want *sched.ShedError, got %v", err)
	}
	if se.Reason != "deadline" {
		t.Fatalf("shed reason %q", se.Reason)
	}
}

// TestSchedulerAdmitsThroughSingleFlight: with coalescing on, only the
// single-flight leader consumes an admission slot; N concurrent identical
// queries against a Limit-1 scheduler all succeed.
func TestSchedulerAdmitsThroughSingleFlight(t *testing.T) {
	srv := startBackend(t, remote.Config{Latency: 2 * time.Millisecond})
	opt := DefaultOptions()
	opt.DisableIntelligentCache = true
	opt.DisableLiteralCache = true
	p, sc := newSchedProcessor(t, srv, opt, cache.DefaultOptions(), sched.Config{Limit: 1})

	const herd = 8
	errs := make(chan error, herd)
	release := make(chan struct{})
	for i := 0; i < herd; i++ {
		go func() {
			<-release
			_, err := p.Execute(context.Background(), carrierCounts())
			errs <- err
		}()
	}
	close(release)
	for i := 0; i < herd; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("coalesced query %d: %v", i, err)
		}
	}
	st := sc.Stats()
	if st.AdmittedInteractive+st.AdmittedBackground > herd {
		t.Fatalf("admissions exceed callers: %+v", st)
	}
	if st.Inflight != 0 {
		t.Fatalf("leaked admission slots: %+v", st)
	}
}

// TestUserQuotaThroughPipeline pins that the context's user identity
// survives the whole Execute path into admission control: a user over
// their per-user queue bound is shed by the pipeline with ErrShed while
// another user's queries still queue, regardless of session ids.
func TestUserQuotaThroughPipeline(t *testing.T) {
	srv := startBackend(t, remote.Config{})
	opt := DefaultOptions()
	opt.DisableIntelligentCache = true
	opt.DisableLiteralCache = true
	opt.DisableSingleFlight = true
	p, sc := newSchedProcessor(t, srv, opt, cache.DefaultOptions(),
		sched.Config{Limit: 1, MinLimit: 1, MaxLimit: 1, MaxUserQueue: 1, MaxQueue: 100, MaxSessionQueue: 100})

	hold, err := sc.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tagged := func(user, sess string) context.Context {
		return sched.WithSession(sched.WithUser(context.Background(), user), sess)
	}
	waitQueued := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for sc.Stats().Queued != n {
			if time.Now().After(deadline) {
				t.Fatalf("queue depth never reached %d: %+v", n, sc.Stats())
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	done := make(chan error, 2)
	go func() {
		_, err := p.Execute(tagged("alice", "s1"), carrierCounts())
		done <- err
	}()
	waitQueued(1)

	// alice from a second session: over her user quota, shed by Execute.
	if _, err := p.Execute(tagged("alice", "s2"), carrierCounts()); !errors.Is(err, sched.ErrShed) {
		t.Fatalf("over-quota user not shed through the pipeline: %v", err)
	}
	// bob is not affected by alice's quota.
	go func() {
		_, err := p.Execute(tagged("bob", "s1"), carrierCounts())
		done <- err
	}()
	waitQueued(2)

	hold.Done()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("queued query failed: %v", err)
		}
	}
}
