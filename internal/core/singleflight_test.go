package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"vizq/internal/remote"
)

// TestSingleFlightCoalescesCorrelatedMisses is the thundering-herd gate:
// K sessions missing on the same query simultaneously must send ONE remote
// query, with the K-1 duplicates sharing the leader's result. Caches are
// disabled so every Execute reaches the miss path.
func TestSingleFlightCoalescesCorrelatedMisses(t *testing.T) {
	const herd = 8
	srv := startBackend(t, remote.Config{Latency: 200 * time.Millisecond})
	opt := Options{DisableIntelligentCache: true, DisableLiteralCache: true}
	p := newProcessor(t, srv, opt, herd)

	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-release
			res, err := p.Execute(context.Background(), carrierCounts())
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = res.N
		}(i)
	}
	close(release)
	wg.Wait()

	// With 200ms of remote latency and a simultaneous start, every
	// goroutine joins the first flight: exactly one backend query.
	if got := srv.Stats().Queries; got != 1 {
		t.Errorf("backend saw %d queries, want 1", got)
	}
	st := p.Stats()
	if st.FlightLeader != 1 || st.FlightShared != herd-1 {
		t.Errorf("leader=%d shared=%d, want 1/%d", st.FlightLeader, st.FlightShared, herd-1)
	}
	for i := 1; i < herd; i++ {
		if results[i] != results[0] {
			t.Errorf("goroutine %d got %d rows, goroutine 0 got %d", i, results[i], results[0])
		}
	}
}

// TestSingleFlightDisabled: with DisableSingleFlight every correlated miss
// goes remote — the control arm of the test above.
func TestSingleFlightDisabled(t *testing.T) {
	const herd = 4
	srv := startBackend(t, remote.Config{Latency: 50 * time.Millisecond, QueryDOP: herd})
	opt := Options{DisableIntelligentCache: true, DisableLiteralCache: true, DisableSingleFlight: true}
	p := newProcessor(t, srv, opt, herd)

	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			if _, err := p.Execute(context.Background(), carrierCounts()); err != nil {
				t.Error(err)
			}
		}()
	}
	close(release)
	wg.Wait()

	if got := srv.Stats().Queries; got != herd {
		t.Errorf("backend saw %d queries, want %d", got, herd)
	}
	st := p.Stats()
	if st.FlightLeader != 0 || st.FlightShared != 0 {
		t.Errorf("flight stats should be zero when disabled: %+v", st)
	}
}

// TestSingleFlightSharesIntoCache: after a coalesced burst with caching ON,
// a later identical query is a cache hit — the leader populated the caches
// for everyone.
func TestSingleFlightSharesIntoCache(t *testing.T) {
	srv := startBackend(t, remote.Config{Latency: 200 * time.Millisecond})
	p := newProcessor(t, srv, DefaultOptions(), 4)

	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			if _, err := p.Execute(context.Background(), carrierCounts()); err != nil {
				t.Error(err)
			}
		}()
	}
	close(release)
	wg.Wait()

	if _, err := p.Execute(context.Background(), carrierCounts()); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Queries; got != 1 {
		t.Errorf("backend saw %d queries, want 1", got)
	}
	if st := p.Stats(); st.CacheHits == 0 {
		t.Errorf("follow-up query should hit the cache: %+v", st)
	}
}
