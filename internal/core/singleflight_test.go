package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"vizq/internal/cache"
	"vizq/internal/chaos"
	"vizq/internal/connection"
	"vizq/internal/remote"
	"vizq/internal/resilience"
	"vizq/internal/tde/exec"
)

// TestSingleFlightCoalescesCorrelatedMisses is the thundering-herd gate:
// K sessions missing on the same query simultaneously must send ONE remote
// query, with the K-1 duplicates sharing the leader's result. Caches are
// disabled so every Execute reaches the miss path.
func TestSingleFlightCoalescesCorrelatedMisses(t *testing.T) {
	const herd = 8
	srv := startBackend(t, remote.Config{Latency: 200 * time.Millisecond})
	opt := Options{DisableIntelligentCache: true, DisableLiteralCache: true}
	p := newProcessor(t, srv, opt, herd)

	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-release
			res, err := p.Execute(context.Background(), carrierCounts())
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = res.N
		}(i)
	}
	close(release)
	wg.Wait()

	// With 200ms of remote latency and a simultaneous start, every
	// goroutine joins the first flight: exactly one backend query.
	if got := srv.Stats().Queries; got != 1 {
		t.Errorf("backend saw %d queries, want 1", got)
	}
	st := p.Stats()
	if st.FlightLeader != 1 || st.FlightShared != herd-1 {
		t.Errorf("leader=%d shared=%d, want 1/%d", st.FlightLeader, st.FlightShared, herd-1)
	}
	for i := 1; i < herd; i++ {
		if results[i] != results[0] {
			t.Errorf("goroutine %d got %d rows, goroutine 0 got %d", i, results[i], results[0])
		}
	}
}

// TestSingleFlightDisabled: with DisableSingleFlight every correlated miss
// goes remote — the control arm of the test above.
func TestSingleFlightDisabled(t *testing.T) {
	const herd = 4
	srv := startBackend(t, remote.Config{Latency: 50 * time.Millisecond, QueryDOP: herd})
	opt := Options{DisableIntelligentCache: true, DisableLiteralCache: true, DisableSingleFlight: true}
	p := newProcessor(t, srv, opt, herd)

	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			if _, err := p.Execute(context.Background(), carrierCounts()); err != nil {
				t.Error(err)
			}
		}()
	}
	close(release)
	wg.Wait()

	if got := srv.Stats().Queries; got != herd {
		t.Errorf("backend saw %d queries, want %d", got, herd)
	}
	st := p.Stats()
	if st.FlightLeader != 0 || st.FlightShared != 0 {
		t.Errorf("flight stats should be zero when disabled: %+v", st)
	}
}

// TestSingleFlightSharesIntoCache: after a coalesced burst with caching ON,
// a later identical query is a cache hit — the leader populated the caches
// for everyone.
func TestSingleFlightSharesIntoCache(t *testing.T) {
	srv := startBackend(t, remote.Config{Latency: 200 * time.Millisecond})
	p := newProcessor(t, srv, DefaultOptions(), 4)

	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			if _, err := p.Execute(context.Background(), carrierCounts()); err != nil {
				t.Error(err)
			}
		}()
	}
	close(release)
	wg.Wait()

	if _, err := p.Execute(context.Background(), carrierCounts()); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Queries; got != 1 {
		t.Errorf("backend saw %d queries, want 1", got)
	}
	if st := p.Stats(); st.CacheHits == 0 {
		t.Errorf("follow-up query should hit the cache: %+v", st)
	}
}

// newChaosProcessor wires a processor whose pool dials through a chaos
// proxy, with explicit cache instances so tests can control staleness.
func newChaosProcessor(t testing.TB, srv *remote.Server, sched chaos.Schedule,
	opt Options, copt cache.Options, poolSize int) (*Processor, *chaos.Proxy) {
	t.Helper()
	proxy, err := chaos.New(srv.Addr(), sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	pool := connection.NewPool(proxy.Addr(), connection.PoolConfig{Max: poolSize})
	t.Cleanup(pool.Close)
	return NewProcessor(pool, cache.NewIntelligentCache(copt), cache.NewLiteralCache(copt), opt), proxy
}

// TestSingleFlightLeaderDiesMidRetry: K coalesced callers behind a leader
// whose backend refuses every retry must all receive the leader's give-up
// error — the backend sees only the leader's attempts, not K retry storms —
// and the flight slot must not be poisoned for the post-heal query.
func TestSingleFlightLeaderDiesMidRetry(t *testing.T) {
	const herd = 6
	srv := startBackend(t, remote.Config{})
	opt := Options{DisableIntelligentCache: true, DisableLiteralCache: true}
	opt.Resilience = &resilience.Config{
		MaxAttempts: 3, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 40 * time.Millisecond,
		Seed: 5, BreakerMinSamples: 100,
	}
	p, proxy := newChaosProcessor(t, srv, chaos.Repeat(chaos.Fault{Kind: chaos.Refuse}),
		opt, cache.DefaultOptions(), herd)

	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-release
			_, errs[i] = p.Execute(context.Background(), carrierCounts())
		}(i)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d succeeded against a refusing backend", i)
		}
		if !connection.IsTransport(err) {
			t.Errorf("goroutine %d: error not transport-classified: %v", i, err)
		}
	}
	// With 20ms+ backoffs and a simultaneous start every caller joins the
	// first flight: the backend saw one leader's retry sequence, not K.
	st := p.Stats()
	if st.FlightLeader+st.FlightShared != herd {
		t.Errorf("flight accounting: leader=%d shared=%d, want %d total", st.FlightLeader, st.FlightShared, herd)
	}
	if got, max := proxy.Accepted(), 3*int(st.FlightLeader); got > max {
		t.Errorf("backend saw %d connection attempts, want <= %d (leaders x MaxAttempts)", got, max)
	}

	// The failed flight must not poison the slot: heal and re-query.
	proxy.Heal()
	proxy.SetMode(chaos.Fault{Kind: chaos.None})
	res, err := p.Execute(context.Background(), carrierCounts())
	if err != nil {
		t.Fatalf("post-heal query failed: %v", err)
	}
	if res.N == 0 || res.Stale {
		t.Fatalf("post-heal query = (N=%d stale=%v)", res.N, res.Stale)
	}
}

// TestSingleFlightWaitersShareStaleResult: when the leader's backend dies
// mid-retry but the caches hold an expired entry within its grace window,
// every coalesced caller — leader and waiters alike — receives the same
// stale-tagged rows instead of an error.
func TestSingleFlightWaitersShareStaleResult(t *testing.T) {
	const herd = 6
	srv := startBackend(t, remote.Config{})
	opt := DefaultOptions()
	opt.Resilience = &resilience.Config{
		MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		Seed: 5, BreakerMinSamples: 100, ServeStale: true,
	}
	copt := cache.DefaultOptions()
	copt.FreshFor = 40 * time.Millisecond
	copt.StaleGrace = time.Hour
	p, proxy := newChaosProcessor(t, srv, chaos.Healthy(), opt, copt, herd)

	warm, err := p.Execute(context.Background(), carrierCounts())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // entry expires (grace window remains)

	proxy.SetMode(chaos.Fault{Kind: chaos.Refuse})
	proxy.KillActive()
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*exec.Result, herd)
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-release
			results[i], errs[i] = p.Execute(context.Background(), carrierCounts())
		}(i)
	}
	close(release)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: degraded read failed: %v", i, errs[i])
		}
		if !results[i].Stale {
			t.Errorf("goroutine %d: result not tagged stale", i)
		}
		if results[i].N != warm.N {
			t.Errorf("goroutine %d: stale rows = %d, warm = %d", i, results[i].N, warm.N)
		}
	}
	if st := p.Stats(); st.StaleServed == 0 {
		t.Errorf("StaleServed = 0 after degraded reads: %+v", st)
	}

	// Recovery: a healed backend serves fresh again — the stale episode
	// must not have wedged the flight or the caches.
	proxy.Heal()
	res, err := p.Execute(context.Background(), carrierCounts())
	if err != nil {
		t.Fatalf("post-heal query failed: %v", err)
	}
	if res.Stale {
		t.Fatal("post-heal query still tagged stale")
	}
}
