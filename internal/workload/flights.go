// Package workload generates the synthetic FAA-style flights dataset and the
// dashboard interaction workloads used throughout the tests, examples and
// benchmarks. The paper's running example (Figs. 1-2) is a dashboard over
// the FAA Flights On-Time dataset; this generator reproduces its schema and
// value distributions deterministically from a seed.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"vizq/internal/tde/storage"
)

// FlightsConfig parameterizes the generator.
type FlightsConfig struct {
	Rows int
	Days int
	Seed int64
	// Carriers bounds the carrier dimension size (max len(carrierNames)).
	Carriers int
	// Airports bounds the airport dimension size (max len(airportCodes)).
	Airports int
}

// DefaultFlightsConfig is sized for unit tests; benchmarks scale Rows up.
func DefaultFlightsConfig() FlightsConfig {
	return FlightsConfig{Rows: 20_000, Days: 120, Seed: 1, Carriers: 10, Airports: 30}
}

var carrierNames = []struct{ code, name string }{
	{"WN", "Southwest Airlines"},
	{"AA", "American Airlines"},
	{"DL", "Delta Air Lines"},
	{"UA", "United Airlines"},
	{"US", "US Airways"},
	{"B6", "JetBlue Airways"},
	{"AS", "Alaska Airlines"},
	{"NK", "Spirit Airlines"},
	{"F9", "Frontier Airlines"},
	{"HA", "Hawaiian Airlines"},
	{"VX", "Virgin America"},
	{"EV", "ExpressJet"},
}

var airportCodes = []struct{ code, state string }{
	{"ATL", "GA"}, {"LAX", "CA"}, {"ORD", "IL"}, {"DFW", "TX"}, {"DEN", "CO"},
	{"JFK", "NY"}, {"SFO", "CA"}, {"SEA", "WA"}, {"LAS", "NV"}, {"MCO", "FL"},
	{"EWR", "NJ"}, {"CLT", "NC"}, {"PHX", "AZ"}, {"IAH", "TX"}, {"MIA", "FL"},
	{"BOS", "MA"}, {"MSP", "MN"}, {"FLL", "FL"}, {"DTW", "MI"}, {"PHL", "PA"},
	{"LGA", "NY"}, {"BWI", "MD"}, {"SLC", "UT"}, {"SAN", "CA"}, {"IAD", "VA"},
	{"DCA", "VA"}, {"MDW", "IL"}, {"TPA", "FL"}, {"PDX", "OR"}, {"HNL", "HI"},
	{"OGG", "HI"}, {"STL", "MO"}, {"HOU", "TX"}, {"OAK", "CA"}, {"MSY", "LA"},
}

// epochDay is 2015-01-01 as days since the Unix epoch, the start of the
// generated window.
var epochDay = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).Unix() / 86400

// BuildFlightsDB generates the flights fact table plus carrier and airport
// dimension tables in the Extract schema.
//
// The fact table is sorted by (date, hour), carrying realistic skew: carrier
// and airport popularity follow a power-ish law, delays are mostly small
// with a heavy tail, ~1.5% of flights are cancelled (null delay).
func BuildFlightsDB(cfg FlightsConfig) (*storage.Database, error) {
	if cfg.Carriers <= 0 || cfg.Carriers > len(carrierNames) {
		cfg.Carriers = len(carrierNames)
	}
	if cfg.Airports <= 0 || cfg.Airports > len(airportCodes) {
		cfg.Airports = len(airportCodes)
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows

	dates := make([]storage.Value, n)
	hours := make([]storage.Value, n)
	origins := make([]storage.Value, n)
	dests := make([]storage.Value, n)
	markets := make([]storage.Value, n)
	carriers := make([]storage.Value, n)
	delays := make([]storage.Value, n)
	cancelled := make([]storage.Value, n)
	distances := make([]storage.Value, n)

	pickSkewed := func(max int) int {
		// Power-law-ish pick favoring low indices.
		f := rng.Float64()
		return int(f * f * float64(max))
	}

	for i := 0; i < n; i++ {
		day := int64(i * cfg.Days / n) // sorted by construction
		dates[i] = storage.Value{Type: storage.TDate, I: epochDay + day}
		hour := 5 + pickSkewed(18)
		hours[i] = storage.IntValue(int64(hour))
		o := pickSkewed(cfg.Airports)
		d := pickSkewed(cfg.Airports)
		if d == o {
			d = (d + 1) % cfg.Airports
		}
		origins[i] = storage.StrValue(airportCodes[o].code)
		dests[i] = storage.StrValue(airportCodes[d].code)
		markets[i] = storage.StrValue(airportCodes[o].code + "-" + airportCodes[d].code)
		c := pickSkewed(cfg.Carriers)
		carriers[i] = storage.StrValue(carrierNames[c].code)
		if rng.Float64() < 0.015 {
			cancelled[i] = storage.BoolValue(true)
			delays[i] = storage.NullValue(storage.TFloat)
		} else {
			cancelled[i] = storage.BoolValue(false)
			d := rng.NormFloat64()*12 + 4
			if rng.Float64() < 0.05 {
				d += rng.Float64() * 180 // heavy tail
			}
			delays[i] = storage.FloatValue(d)
		}
		distances[i] = storage.IntValue(int64(150 + rng.Intn(2800)))
	}

	db := storage.NewDatabase("flights")
	build := func(name string, t storage.Type, coll storage.Collation, vals []storage.Value) (*storage.Column, error) {
		return storage.BuildColumn(name, t, coll, vals, storage.BuildOptions{})
	}
	var cols []*storage.Column
	for _, spec := range []struct {
		name string
		t    storage.Type
		coll storage.Collation
		vals []storage.Value
	}{
		{"date", storage.TDate, storage.CollBinary, dates},
		{"hour", storage.TInt, storage.CollBinary, hours},
		{"origin", storage.TStr, storage.CollCI, origins},
		{"dest", storage.TStr, storage.CollCI, dests},
		{"market", storage.TStr, storage.CollCI, markets},
		{"carrier", storage.TStr, storage.CollCI, carriers},
		{"delay", storage.TFloat, storage.CollBinary, delays},
		{"cancelled", storage.TBool, storage.CollBinary, cancelled},
		{"distance", storage.TInt, storage.CollBinary, distances},
	} {
		col, err := build(spec.name, spec.t, spec.coll, spec.vals)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		cols = append(cols, col)
	}
	fact, err := storage.NewTable("Extract", "flights", cols)
	if err != nil {
		return nil, err
	}
	fact.SortKey = []string{"date", "hour"}
	if err := db.AddTable(fact); err != nil {
		return nil, err
	}

	// Carrier dimension: code -> airline name.
	var cCode, cName []storage.Value
	for i := 0; i < cfg.Carriers; i++ {
		cCode = append(cCode, storage.StrValue(carrierNames[i].code))
		cName = append(cName, storage.StrValue(carrierNames[i].name))
	}
	code, err := build("carrier", storage.TStr, storage.CollCI, cCode)
	if err != nil {
		return nil, err
	}
	cname, err := build("airline_name", storage.TStr, storage.CollBinary, cName)
	if err != nil {
		return nil, err
	}
	dim, err := storage.NewTable("Extract", "carriers", []*storage.Column{code, cname})
	if err != nil {
		return nil, err
	}
	dim.UniqueKeys = [][]string{{"carrier"}}
	if err := db.AddTable(dim); err != nil {
		return nil, err
	}

	// Airport dimension: code -> state.
	var aCode, aState []storage.Value
	for i := 0; i < cfg.Airports; i++ {
		aCode = append(aCode, storage.StrValue(airportCodes[i].code))
		aState = append(aState, storage.StrValue(airportCodes[i].state))
	}
	acol, err := build("airport", storage.TStr, storage.CollCI, aCode)
	if err != nil {
		return nil, err
	}
	scol, err := build("state", storage.TStr, storage.CollCI, aState)
	if err != nil {
		return nil, err
	}
	air, err := storage.NewTable("Extract", "airports", []*storage.Column{acol, scol})
	if err != nil {
		return nil, err
	}
	air.UniqueKeys = [][]string{{"airport"}}
	if err := db.AddTable(air); err != nil {
		return nil, err
	}
	return db, nil
}

// CarrierCodes returns the first n carrier codes the generator uses.
func CarrierCodes(n int) []string {
	if n <= 0 || n > len(carrierNames) {
		n = len(carrierNames)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = carrierNames[i].code
	}
	return out
}

// AirportCodesList returns the first n airport codes the generator uses.
func AirportCodesList(n int) []string {
	if n <= 0 || n > len(airportCodes) {
		n = len(airportCodes)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = airportCodes[i].code
	}
	return out
}
