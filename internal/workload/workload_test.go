package workload

import (
	"testing"

	"vizq/internal/tde/storage"
)

func TestBuildFlightsDBDeterministic(t *testing.T) {
	cfg := FlightsConfig{Rows: 2000, Days: 30, Seed: 5, Carriers: 6, Airports: 12}
	a, err := BuildFlightsDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFlightsDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Table("Extract", "flights")
	tb, _ := b.Table("Extract", "flights")
	if ta.Rows != tb.Rows {
		t.Fatal("row counts differ")
	}
	for c := range ta.Cols {
		for i := 0; i < int(ta.Rows); i += 97 {
			va, vb := ta.Cols[c].Value(i), tb.Cols[c].Value(i)
			if !storage.Equal(va, vb, ta.Cols[c].Coll) {
				t.Fatalf("nondeterministic at col %d row %d: %v vs %v", c, i, va, vb)
			}
		}
	}
}

func TestFlightsSchema(t *testing.T) {
	db, err := BuildFlightsDB(FlightsConfig{Rows: 1000, Days: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fact, err := db.Table("Extract", "flights")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"date", "hour", "origin", "dest", "market", "carrier", "delay", "cancelled", "distance"}
	if len(fact.Cols) != len(wantCols) {
		t.Fatalf("cols = %d", len(fact.Cols))
	}
	for i, w := range wantCols {
		if fact.Cols[i].Name != w {
			t.Errorf("col %d = %s, want %s", i, fact.Cols[i].Name, w)
		}
	}
	// Sorted by (date, hour)? date must be non-decreasing.
	if len(fact.SortKey) != 2 || fact.SortKey[0] != "date" {
		t.Errorf("sort key = %v", fact.SortKey)
	}
	date := fact.Column("date")
	for i := 1; i < int(fact.Rows); i++ {
		if date.Value(i).I < date.Value(i-1).I {
			t.Fatal("date column not sorted")
		}
	}
	// Dimension tables exist with unique keys.
	carriers, err := db.Table("Extract", "carriers")
	if err != nil {
		t.Fatal(err)
	}
	if !carriers.HasUniqueKey([]string{"carrier"}) {
		t.Error("carriers.carrier must be unique")
	}
	airports, err := db.Table("Extract", "airports")
	if err != nil {
		t.Fatal(err)
	}
	if !airports.HasUniqueKey([]string{"airport"}) {
		t.Error("airports.airport must be unique")
	}
}

func TestFlightsSkewAndNulls(t *testing.T) {
	db, err := BuildFlightsDB(FlightsConfig{Rows: 20_000, Days: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fact, _ := db.Table("Extract", "flights")
	// Carrier skew: the most popular carrier should dominate.
	counts := map[string]int{}
	carrier := fact.Column("carrier")
	for i := 0; i < int(fact.Rows); i++ {
		counts[carrier.Value(i).S]++
	}
	if counts["WN"] < counts["EV"]*3 {
		t.Errorf("expected power-law skew, got WN=%d EV=%d", counts["WN"], counts["EV"])
	}
	// ~1.5% cancelled with null delay.
	delay := fact.Column("delay")
	nulls := int(delay.Stats.Nulls)
	if nulls < 100 || nulls > 1000 {
		t.Errorf("null delays = %d", nulls)
	}
}

func TestCodeHelpers(t *testing.T) {
	if got := CarrierCodes(3); len(got) != 3 || got[0] != "WN" {
		t.Errorf("CarrierCodes = %v", got)
	}
	if got := AirportCodesList(2); len(got) != 2 || got[0] != "ATL" {
		t.Errorf("AirportCodesList = %v", got)
	}
	if got := CarrierCodes(0); len(got) == 0 {
		t.Error("0 should return all")
	}
}

func TestConfigClamps(t *testing.T) {
	db, err := BuildFlightsDB(FlightsConfig{Rows: 100, Days: 0, Seed: 1, Carriers: 999, Airports: 999})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("Extract", "flights"); err != nil {
		t.Fatal(err)
	}
}
