// Package sqlgen translates internal queries into textual queries in the
// dialect of the target data source (Sect. 3.1: "a simplified query is
// subsequently translated into a textual representation that matches the
// dialect of the underlying data source ... each has their own exceptions
// to the standard"). Dialects declare their capabilities so the compiler
// can decide what must be post-processed locally or externalized into
// temporary structures.
package sqlgen

import (
	"fmt"
	"strings"

	"vizq/internal/query"
	"vizq/internal/tde/storage"
)

// Caps describes what a backend supports.
type Caps struct {
	// TempTables: session-local temporary table creation.
	TempTables bool
	// Subqueries: derived tables in FROM.
	Subqueries bool
	// MaxInList bounds IN-list size before externalization is required
	// (0 = unlimited).
	MaxInList int
	// ParallelPlans: backend parallelizes a single query across cores.
	ParallelPlans bool
}

// Dialect renders identifiers, literals and query clauses for one backend
// family.
type Dialect interface {
	Name() string
	Capabilities() Caps
	Quote(ident string) string
	Literal(v storage.Value) string
	// TopNClause returns the prefix ("SELECT TOP 5") and suffix
	// ("LIMIT 5") forms; exactly one is non-empty.
	TopNClause(n int) (selectPrefix, suffix string)
	// AggFunc renders an aggregate call.
	AggFunc(fn query.AggFunc, arg string) string
}

// Generate renders the internal query as SQL text in the dialect.
func Generate(q *query.Query, d Dialect) (string, error) {
	if err := q.Validate(); err != nil {
		return "", err
	}
	var sel []string
	var groups []string
	for _, dim := range q.Dims {
		expr := d.Quote(dim.Col)
		if dim.Expr != "" {
			return "", fmt.Errorf("sqlgen: calculated dimension %q must be compiled per dialect", dim.Expr)
		}
		groups = append(groups, expr)
		sel = append(sel, fmt.Sprintf("%s AS %s", expr, d.Quote(dim.Name())))
	}
	for _, m := range q.Measures {
		arg := "*"
		if m.Col != "" {
			arg = d.Quote(m.Col)
		}
		sel = append(sel, fmt.Sprintf("%s AS %s", d.AggFunc(m.Fn, arg), d.Quote(m.Name())))
	}

	from := d.Quote(q.View.Table)
	for _, j := range q.View.Joins {
		from += fmt.Sprintf(" INNER JOIN %s ON %s.%s = %s.%s",
			d.Quote(j.Table),
			d.Quote(q.View.Table), d.Quote(j.LeftCol),
			d.Quote(j.Table), d.Quote(j.RightCol))
	}

	var where []string
	for _, f := range q.Filters {
		clause, err := filterSQL(f, d)
		if err != nil {
			return "", err
		}
		where = append(where, clause)
	}

	prefix, suffix := "", ""
	if q.N > 0 {
		prefix, suffix = d.TopNClause(q.N)
	}

	var b strings.Builder
	b.WriteString("SELECT ")
	if prefix != "" {
		b.WriteString(prefix)
		b.WriteString(" ")
	}
	b.WriteString(strings.Join(sel, ", "))
	b.WriteString(" FROM ")
	b.WriteString(from)
	if len(where) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(where, " AND "))
	}
	if len(groups) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(groups, ", "))
	}
	if len(q.OrderBy) > 0 {
		var keys []string
		for _, o := range q.OrderBy {
			dir := "ASC"
			if o.Desc {
				dir = "DESC"
			}
			keys = append(keys, fmt.Sprintf("%s %s", d.Quote(o.Col), dir))
		}
		b.WriteString(" ORDER BY ")
		b.WriteString(strings.Join(keys, ", "))
	}
	if suffix != "" {
		b.WriteString(" ")
		b.WriteString(suffix)
	}
	return b.String(), nil
}

func filterSQL(f query.Filter, d Dialect) (string, error) {
	col := d.Quote(f.Col)
	if f.Kind == query.FilterIn {
		if caps := d.Capabilities(); caps.MaxInList > 0 && len(f.In) > caps.MaxInList {
			return "", fmt.Errorf("sqlgen: IN list on %s exceeds dialect limit (%d > %d); externalize into a temporary table",
				f.Col, len(f.In), caps.MaxInList)
		}
		vals := make([]string, len(f.In))
		for i, v := range f.In {
			vals[i] = d.Literal(v)
		}
		return fmt.Sprintf("%s IN (%s)", col, strings.Join(vals, ", ")), nil
	}
	var parts []string
	if f.LoSet {
		op := ">="
		if f.LoOpen {
			op = ">"
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", col, op, d.Literal(f.Lo)))
	}
	if f.HiSet {
		op := "<="
		if f.HiOpen {
			op = "<"
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", col, op, d.Literal(f.Hi)))
	}
	return strings.Join(parts, " AND "), nil
}

// ---- dialect implementations ----

// Generic is an ANSI-ish dialect with LIMIT, double-quote quoting and full
// capabilities; it stands in for modern column stores.
type Generic struct{}

// Name implements Dialect.
func (Generic) Name() string { return "generic" }

// Capabilities implements Dialect.
func (Generic) Capabilities() Caps {
	return Caps{TempTables: true, Subqueries: true, MaxInList: 0, ParallelPlans: true}
}

// Quote implements Dialect.
func (Generic) Quote(ident string) string {
	return `"` + strings.ReplaceAll(ident, `"`, `""`) + `"`
}

// Literal implements Dialect.
func (Generic) Literal(v storage.Value) string { return ansiLiteral(v) }

// TopNClause implements Dialect.
func (Generic) TopNClause(n int) (string, string) { return "", fmt.Sprintf("LIMIT %d", n) }

// AggFunc implements Dialect.
func (Generic) AggFunc(fn query.AggFunc, arg string) string { return ansiAgg(fn, arg) }

// MSSQL mimics SQL Server: bracket quoting, SELECT TOP, bounded IN lists.
type MSSQL struct{}

// Name implements Dialect.
func (MSSQL) Name() string { return "mssql" }

// Capabilities implements Dialect.
func (MSSQL) Capabilities() Caps {
	return Caps{TempTables: true, Subqueries: true, MaxInList: 2000, ParallelPlans: true}
}

// Quote implements Dialect.
func (MSSQL) Quote(ident string) string {
	return "[" + strings.ReplaceAll(ident, "]", "]]") + "]"
}

// Literal implements Dialect.
func (MSSQL) Literal(v storage.Value) string {
	if !v.Null && v.Type == storage.TBool {
		if v.I != 0 {
			return "1"
		}
		return "0"
	}
	return ansiLiteral(v)
}

// TopNClause implements Dialect.
func (MSSQL) TopNClause(n int) (string, string) { return fmt.Sprintf("TOP %d", n), "" }

// AggFunc implements Dialect.
func (MSSQL) AggFunc(fn query.AggFunc, arg string) string { return ansiAgg(fn, arg) }

// Legacy models an old single-threaded backend without temp-table support
// and a small IN-list bound; it exercises the rewrite-without-temp-table
// paths (Sect. 5.3).
type Legacy struct{}

// Name implements Dialect.
func (Legacy) Name() string { return "legacy" }

// Capabilities implements Dialect.
func (Legacy) Capabilities() Caps {
	return Caps{TempTables: false, Subqueries: false, MaxInList: 500, ParallelPlans: false}
}

// Quote implements Dialect.
func (Legacy) Quote(ident string) string { return `"` + ident + `"` }

// Literal implements Dialect.
func (Legacy) Literal(v storage.Value) string { return ansiLiteral(v) }

// TopNClause implements Dialect.
func (Legacy) TopNClause(n int) (string, string) { return "", fmt.Sprintf("LIMIT %d", n) }

// AggFunc implements Dialect.
func (Legacy) AggFunc(fn query.AggFunc, arg string) string { return ansiAgg(fn, arg) }

func ansiLiteral(v storage.Value) string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case storage.TStr:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case storage.TDate:
		return "DATE '" + v.String() + "'"
	case storage.TDateTime:
		return "TIMESTAMP '" + v.String() + "'"
	case storage.TBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}

func ansiAgg(fn query.AggFunc, arg string) string {
	switch fn {
	case query.CountD:
		return fmt.Sprintf("COUNT(DISTINCT %s)", arg)
	case query.Count:
		return fmt.Sprintf("COUNT(%s)", arg)
	default:
		return fmt.Sprintf("%s(%s)", strings.ToUpper(string(fn)), arg)
	}
}

// Dialects returns the registered dialects by name.
func Dialects() map[string]Dialect {
	return map[string]Dialect{
		"generic": Generic{},
		"mssql":   MSSQL{},
		"legacy":  Legacy{},
	}
}
