package sqlgen

import (
	"strings"
	"testing"

	"vizq/internal/query"
	"vizq/internal/tde/storage"
)

func flightsQuery() *query.Query {
	return &query.Query{
		DataSource: "warehouse",
		View:       query.View{Table: "flights", Joins: []query.JoinSpec{{Table: "carriers", LeftCol: "carrier", RightCol: "carrier"}}},
		Dims:       []query.Dim{{Col: "airline_name"}},
		Measures: []query.Measure{
			{Fn: query.Count, As: "n"},
			{Fn: query.Avg, Col: "delay", As: "avgdelay"},
			{Fn: query.CountD, Col: "market", As: "markets"},
		},
		Filters: []query.Filter{
			query.InFilter("origin", storage.StrValue(`LAX`), storage.StrValue("O'HARE")),
			query.RangeFilter("date", storage.DateValue(2015, 1, 1), storage.DateValue(2015, 3, 31)),
		},
		OrderBy: []query.Order{{Col: "n", Desc: true}},
		N:       5,
	}
}

func TestGenericSQL(t *testing.T) {
	sql, err := Generate(flightsQuery(), Generic{})
	if err != nil {
		t.Fatal(err)
	}
	want := `SELECT "airline_name" AS "airline_name", COUNT(*) AS "n", AVG("delay") AS "avgdelay", COUNT(DISTINCT "market") AS "markets" FROM "flights" INNER JOIN "carriers" ON "flights"."carrier" = "carriers"."carrier" WHERE "origin" IN ('LAX', 'O''HARE') AND "date" >= DATE '2015-01-01' AND "date" <= DATE '2015-03-31' GROUP BY "airline_name" ORDER BY "n" DESC LIMIT 5`
	if sql != want {
		t.Errorf("generic SQL:\n got %s\nwant %s", sql, want)
	}
}

func TestMSSQLDialect(t *testing.T) {
	sql, err := Generate(flightsQuery(), MSSQL{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sql, "SELECT TOP 5 ") {
		t.Errorf("mssql should use TOP: %s", sql)
	}
	if !strings.Contains(sql, "[airline_name]") {
		t.Errorf("mssql should bracket-quote: %s", sql)
	}
	if strings.Contains(sql, "LIMIT") {
		t.Errorf("mssql must not emit LIMIT: %s", sql)
	}
}

func TestInListLimit(t *testing.T) {
	q := &query.Query{
		View: query.View{Table: "t"},
		Dims: []query.Dim{{Col: "a"}},
	}
	var vals []storage.Value
	for i := 0; i < 600; i++ {
		vals = append(vals, storage.IntValue(int64(i)))
	}
	q.Filters = []query.Filter{query.InFilter("a", vals...)}
	if _, err := Generate(q, Legacy{}); err == nil {
		t.Error("legacy dialect should reject a 600-item IN list")
	}
	if _, err := Generate(q, Generic{}); err != nil {
		t.Errorf("generic dialect should accept it: %v", err)
	}
}

func TestBoolLiteralPerDialect(t *testing.T) {
	q := &query.Query{
		View:    query.View{Table: "t"},
		Dims:    []query.Dim{{Col: "a"}},
		Filters: []query.Filter{query.InFilter("cancelled", storage.BoolValue(true))},
	}
	g, err := Generate(q, Generic{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g, "IN (TRUE)") {
		t.Errorf("generic bool: %s", g)
	}
	m, err := Generate(q, MSSQL{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "IN (1)") {
		t.Errorf("mssql bool: %s", m)
	}
}

func TestCalculatedDimRejected(t *testing.T) {
	q := &query.Query{
		View: query.View{Table: "t"},
		Dims: []query.Dim{{Expr: "(weekday date)", As: "wd"}},
	}
	if _, err := Generate(q, Generic{}); err == nil {
		t.Error("calculated dims need per-dialect compilation and must error for now")
	}
}

func TestDialectsRegistry(t *testing.T) {
	ds := Dialects()
	for _, name := range []string{"generic", "mssql", "legacy"} {
		d, ok := ds[name]
		if !ok || d.Name() != name {
			t.Errorf("dialect %s missing", name)
		}
	}
	if (Legacy{}).Capabilities().TempTables {
		t.Error("legacy must not support temp tables")
	}
	if !(MSSQL{}).Capabilities().ParallelPlans {
		t.Error("mssql supports parallel plans")
	}
}
