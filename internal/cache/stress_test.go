package cache

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"vizq/internal/query"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/storage"
)

// TestCacheStress hammers one intelligent cache (best-match enabled) and
// one literal cache from many goroutines with a mix of Put, exact Get,
// derived Get and best-match lookups. It asserts nothing about hit rates;
// it exists so `go test -race` can observe the locking under contention.
func TestCacheStress(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping cache stress test in -short mode")
	}

	// Build a few real query/result pairs single-threaded up front.
	base := baseQuery()
	baseRes := run(t, base)
	narrow := base.Clone()
	narrow.Dims = []query.Dim{{Col: "carrier"}}
	narrowRes := run(t, narrow)
	filtered := base.Clone()
	filtered.Filters = []query.Filter{query.InFilter("origin", storage.StrValue("LAX"), storage.StrValue("ATL"))}
	filteredRes := run(t, filtered)

	pairs := []struct {
		q   *query.Query
		res *exec.Result
	}{
		{base, baseRes},
		{narrow, narrowRes},
		{filtered, filteredRes},
	}

	opts := DefaultOptions()
	opts.BestMatch = true
	opts.MaxEntries = 2 // below the distinct key count, so eviction churns
	intel := NewIntelligentCache(opts)
	lit := NewLiteralCache(Options{MaxEntries: 4})

	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				p := pairs[rng.Intn(len(pairs))]
				switch rng.Intn(4) {
				case 0:
					// Vary the recorded cost so eviction ordering churns.
					intel.Put(p.q.Clone(), p.res, time.Duration(rng.Intn(10)+1)*time.Millisecond)
				case 1:
					if res, ok := intel.Get(p.q.Clone()); ok && res == nil {
						t.Error("hit returned a nil result")
					}
				case 2:
					// A filtered roll-up matches no stored key exactly, so a
					// hit must go through subsumption matching and, with
					// BestMatch on, candidate scoring.
					r := base.Clone()
					r.Dims = []query.Dim{{Col: "carrier"}}
					r.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue("WN"), storage.StrValue("AA"))}
					intel.Get(r)
				case 3:
					key := p.q.ToTQL()
					lit.Put(key, p.res, time.Millisecond)
					lit.Get(key)
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()

	if n := intel.Len(); n > opts.MaxEntries {
		t.Errorf("intelligent cache holds %d entries, cap is %d", n, opts.MaxEntries)
	}
	if n := lit.Len(); n > 4 {
		t.Errorf("literal cache holds %d entries, cap is 4", n)
	}
	st := intel.Stats()
	t.Logf("stress: exact=%d derived=%d miss=%d evict=%d", st.ExactHits, st.DerivedHits, st.Misses, st.Evictions)
}
