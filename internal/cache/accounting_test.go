package cache

import (
	"testing"
	"time"

	"vizq/internal/query"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// TestExactHitAccountingOnFailedDerive is the regression for the exact-hit
// double count: two queries can share a structural Key (the filter key
// renders IntValue(1) and StrValue("1") identically) while Derive still
// rejects the pair. The old Get counted an ExactHit and bumped Uses BEFORE
// trying Derive, then fell through and counted a Miss too — one Get, two
// stat counts, plus LRU pollution on an entry that served nothing.
func TestExactHitAccountingOnFailedDerive(t *testing.T) {
	s := &query.Query{
		DataSource: "flights",
		View:       query.View{Table: "flights"},
		Dims:       []query.Dim{{Col: "carrier"}},
		Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
		Filters:    []query.Filter{query.InFilter("cancelled", storage.StrValue("1"))},
	}
	r := s.Clone()
	r.Filters = []query.Filter{query.InFilter("cancelled", storage.IntValue(1))}
	if s.Key() != r.Key() {
		t.Fatalf("fixture: keys must collide\n s=%s\n r=%s", s.Key(), r.Key())
	}

	c := NewIntelligentCache(DefaultOptions())
	c.Put(s, exec.NewResult(nil), time.Millisecond)
	if _, ok := c.Get(r); ok {
		t.Fatal("underivable exact-key entry must miss")
	}
	st := c.Stats()
	if st.ExactHits != 0 {
		t.Errorf("failed derive counted as exact hit: %+v", st)
	}
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if total := st.ExactHits + st.DerivedHits + st.Misses; total != 1 {
		t.Errorf("one Get produced %d outcome counts: %+v", total, st)
	}
	// LRU state untouched: the entry served nothing.
	e := c.shardFor(s).byKey[s.Key()]
	if e == nil {
		t.Fatal("entry vanished")
	}
	if e.Uses != 0 {
		t.Errorf("failed derive bumped Uses to %d", e.Uses)
	}
}

// TestLiteralPutRefreshKeepsUsageHistory is the regression for the
// Put-refresh cold-start: refreshing an existing key used to discard the
// old entry's Uses/Created, so hot frequently-refreshed entries scored like
// cold ones and were evicted first.
func TestLiteralPutRefreshKeepsUsageHistory(t *testing.T) {
	c := NewLiteralCache(Options{MaxEntries: 8, Shards: 1})
	t0 := time.Unix(1_000_000, 0)
	now := t0
	c.setClock(func() time.Time { return now })

	res := exec.NewResult(nil)
	c.Put("hot", res, time.Millisecond)
	for i := 0; i < 5; i++ {
		c.Get("hot")
	}
	now = t0.Add(time.Minute)
	c.Put("hot", res, time.Millisecond) // refresh

	e := c.shardFor("hot").entries["hot"]
	if e.Uses != 5 {
		t.Errorf("refresh dropped usage history: Uses = %d, want 5", e.Uses)
	}
	if !e.Created.Equal(t0) {
		t.Errorf("refresh reset Created to %v, want %v", e.Created, t0)
	}
	if !e.LastUsed.Equal(now) {
		t.Errorf("refresh should update LastUsed: %v", e.LastUsed)
	}
}

// TestIntelligentPutRefreshKeepsUsageHistory mirrors the literal-cache
// refresh regression for the intelligent cache.
func TestIntelligentPutRefreshKeepsUsageHistory(t *testing.T) {
	c := NewIntelligentCache(Options{MaxEntries: 8, Shards: 1})
	t0 := time.Unix(2_000_000, 0)
	now := t0
	c.setClock(func() time.Time { return now })

	q := &query.Query{
		DataSource: "flights",
		View:       query.View{Table: "flights"},
		Dims:       []query.Dim{{Col: "carrier"}},
		Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
	}
	res := exec.NewResult([]plan.ColInfo{
		{Name: "carrier", Type: storage.TStr},
		{Name: "n", Type: storage.TInt},
	})
	res.AppendRow([]storage.Value{storage.StrValue("AA"), storage.IntValue(3)})
	c.Put(q, res, time.Millisecond)
	for i := 0; i < 3; i++ {
		c.Get(q.Clone())
	}
	now = t0.Add(time.Minute)
	c.Put(q.Clone(), res, 2*time.Millisecond) // refresh

	e := c.shardFor(q).byKey[q.Key()]
	if e.Uses != 3 {
		t.Errorf("refresh dropped usage history: Uses = %d, want 3", e.Uses)
	}
	if !e.Created.Equal(t0) {
		t.Errorf("refresh reset Created to %v, want %v", e.Created, t0)
	}
	if e.Cost != 2*time.Millisecond {
		t.Errorf("refresh should take the new cost: %v", e.Cost)
	}
	// The bucket must hold exactly one candidate after a refresh.
	if n := len(c.shardFor(q).buckets[q.GroupKey()]); n != 1 {
		t.Errorf("bucket has %d candidates after refresh, want 1", n)
	}
}
