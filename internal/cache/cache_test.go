package cache

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"vizq/internal/kvstore"
	"vizq/internal/query"
	"vizq/internal/tde/engine"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

var eng *engine.Engine

func getEngine(t testing.TB) *engine.Engine {
	if eng == nil {
		db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 10_000, Days: 90, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		eng = engine.New(db)
	}
	return eng
}

func run(t testing.TB, q *query.Query) *exec.Result {
	t.Helper()
	res, err := getEngine(t).Query(context.Background(), q.ToTQL())
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, q.ToTQL())
	}
	return res
}

func canon(r *exec.Result) []string {
	out := make([]string, r.N)
	for i := 0; i < r.N; i++ {
		parts := make([]string, len(r.Cols))
		for c := range r.Cols {
			v := r.Value(i, c)
			if v.Type == storage.TFloat && !v.Null {
				parts[c] = fmt.Sprintf("%.6f", v.F)
			} else {
				parts[c] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func sameResult(t *testing.T, got, want *exec.Result) {
	t.Helper()
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("rows: got %d want %d\ngot: %v\nwant: %v", len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d:\n got %s\nwant %s", i, g[i], w[i])
		}
	}
}

func baseQuery() *query.Query {
	return &query.Query{
		DataSource: "flights",
		View:       query.View{Table: "flights"},
		Dims:       []query.Dim{{Col: "carrier"}, {Col: "origin"}},
		Measures: []query.Measure{
			{Fn: query.Count, As: "n"},
			{Fn: query.Sum, Col: "distance", As: "dist"},
			{Fn: query.Min, Col: "delay", As: "mindelay"},
			{Fn: query.Max, Col: "delay", As: "maxdelay"},
		},
	}
}

func TestDeriveRollup(t *testing.T) {
	s := baseQuery()
	sres := run(t, s)
	// Roll up to carrier only.
	r := s.Clone()
	r.Dims = []query.Dim{{Col: "carrier"}}
	want := run(t, r)
	got, ok := Derive(s, sres, r)
	if !ok {
		t.Fatal("derive failed")
	}
	sameResult(t, got, want)
}

func TestDeriveResidualFilter(t *testing.T) {
	s := baseQuery()
	sres := run(t, s)
	// The Fig. 1 interaction: deselect some filter values — the intelligent
	// cache filters the stored rows as long as the filter column is present.
	r := s.Clone()
	r.Filters = []query.Filter{query.InFilter("origin", storage.StrValue("LAX"), storage.StrValue("ATL"))}
	want := run(t, r)
	got, ok := Derive(s, sres, r)
	if !ok {
		t.Fatal("derive failed")
	}
	sameResult(t, got, want)
}

func TestDeriveFilterPlusRollup(t *testing.T) {
	s := baseQuery()
	sres := run(t, s)
	r := s.Clone()
	r.Dims = []query.Dim{{Col: "origin"}}
	r.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue("WN"), storage.StrValue("AA"))}
	want := run(t, r)
	got, ok := Derive(s, sres, r)
	if !ok {
		t.Fatal("derive failed")
	}
	sameResult(t, got, want)
}

func TestDeriveTighterRange(t *testing.T) {
	s := baseQuery()
	s.Dims = append(s.Dims, query.Dim{Col: "date"})
	s.Filters = []query.Filter{query.RangeFilter("date", storage.DateValue(2015, 1, 1), storage.DateValue(2015, 3, 31))}
	sres := run(t, s)
	r := s.Clone()
	r.Filters = []query.Filter{query.RangeFilter("date", storage.DateValue(2015, 2, 1), storage.DateValue(2015, 2, 28))}
	want := run(t, r)
	got, ok := Derive(s, sres, r)
	if !ok {
		t.Fatal("tighter range should derive")
	}
	sameResult(t, got, want)
}

func TestDeriveAvgFromPartials(t *testing.T) {
	r := &query.Query{
		DataSource: "flights",
		View:       query.View{Table: "flights"},
		Dims:       []query.Dim{{Col: "carrier"}},
		Measures:   []query.Measure{{Fn: query.Avg, Col: "delay", As: "avgdelay"}},
	}
	s := AdjustForReuse(r)
	if len(s.Measures) != 2 {
		t.Fatalf("adjusted measures = %v", s.Measures)
	}
	// Execute the adjusted query at finer grain, then derive the requested
	// avg at carrier grain — only possible because of the adjustment.
	s.Dims = []query.Dim{{Col: "carrier"}, {Col: "origin"}}
	sres := run(t, s)
	want := run(t, r)
	got, ok := Derive(s, sres, r)
	if !ok {
		t.Fatal("avg should derive from sum+count partials")
	}
	if got.N != want.N {
		t.Fatalf("rows %d vs %d", got.N, want.N)
	}
	wi := map[string]float64{}
	for i := 0; i < want.N; i++ {
		wi[want.Value(i, 0).S] = want.Value(i, 1).F
	}
	for i := 0; i < got.N; i++ {
		k := got.Value(i, 0).S
		if math.Abs(got.Value(i, 1).F-wi[k]) > 1e-9 {
			t.Errorf("%s: %v vs %v", k, got.Value(i, 1).F, wi[k])
		}
	}
}

func TestDeriveAvgWithoutPartialsNeedsSameDims(t *testing.T) {
	s := &query.Query{
		DataSource: "flights",
		View:       query.View{Table: "flights"},
		Dims:       []query.Dim{{Col: "carrier"}, {Col: "origin"}},
		Measures:   []query.Measure{{Fn: query.Avg, Col: "delay", As: "a"}},
	}
	sres := run(t, s)
	// Same dims, residual filter: whole groups drop, avg stays valid.
	r := s.Clone()
	r.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue("WN"))}
	want := run(t, r)
	got, ok := Derive(s, sres, r)
	if !ok {
		t.Fatal("avg with unchanged grouping should derive")
	}
	sameResult(t, got, want)
	// Roll-up of a bare avg is NOT derivable.
	r2 := s.Clone()
	r2.Dims = []query.Dim{{Col: "carrier"}}
	if _, ok := Derive(s, sres, r2); ok {
		t.Fatal("avg roll-up without partials must not derive")
	}
}

func TestDeriveCountD(t *testing.T) {
	s := &query.Query{
		DataSource: "flights",
		View:       query.View{Table: "flights"},
		Dims:       []query.Dim{{Col: "carrier"}},
		Measures:   []query.Measure{{Fn: query.CountD, Col: "market", As: "mkts"}},
	}
	sres := run(t, s)
	r := s.Clone()
	r.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue("DL"))}
	want := run(t, r)
	got, ok := Derive(s, sres, r)
	if !ok {
		t.Fatal("countd with unchanged grouping should derive")
	}
	sameResult(t, got, want)
	// Roll-up across countd is impossible.
	r2 := s.Clone()
	r2.Dims = nil
	r2.Measures = []query.Measure{{Fn: query.CountD, Col: "market", As: "mkts"}}
	if _, ok := Derive(s, sres, r2); ok {
		t.Fatal("countd roll-up must not derive")
	}
}

func TestDeriveTopNLocally(t *testing.T) {
	s := baseQuery()
	sres := run(t, s)
	r := s.Clone()
	r.Dims = []query.Dim{{Col: "carrier"}}
	r.OrderBy = []query.Order{{Col: "n", Desc: true}}
	r.N = 3
	want := run(t, r)
	got, ok := Derive(s, sres, r)
	if !ok {
		t.Fatal("local top-n should derive")
	}
	sameResult(t, got, want)
}

func TestDeriveRefusals(t *testing.T) {
	s := baseQuery()
	s.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue("WN"), storage.StrValue("AA"))}
	sres := run(t, s)

	// Requested is wider than stored: no subsumption.
	r := s.Clone()
	r.Filters = nil
	if _, ok := Derive(s, sres, r); ok {
		t.Error("wider query must not derive from narrower cache entry")
	}
	// Filter on a column not in the stored dims.
	r = s.Clone()
	r.Filters = append(r.Filters, query.GtFilter("distance", storage.IntValue(500)))
	if _, ok := Derive(s, sres, r); ok {
		t.Error("residual filter on a missing column must not derive")
	}
	// Dim not stored.
	r = s.Clone()
	r.Dims = append(r.Dims, query.Dim{Col: "dest"})
	if _, ok := Derive(s, sres, r); ok {
		t.Error("missing dimension must not derive")
	}
	// Different view.
	r = s.Clone()
	r.View.Table = "carriers"
	if _, ok := Derive(s, sres, r); ok {
		t.Error("different view must not derive")
	}
	// Stored top-n only answers itself.
	sTop := baseQuery()
	sTop.Dims = []query.Dim{{Col: "carrier"}}
	sTop.OrderBy = []query.Order{{Col: "n", Desc: true}}
	sTop.N = 3
	topRes := run(t, sTop)
	r = sTop.Clone()
	r.N = 5
	if _, ok := Derive(sTop, topRes, r); ok {
		t.Error("stored top-3 must not answer top-5")
	}
}

func TestIntelligentCacheFlow(t *testing.T) {
	c := NewIntelligentCache(DefaultOptions())
	s := baseQuery()
	sres := run(t, s)
	c.Put(s, sres, 10*time.Millisecond)

	// Exact hit.
	if _, ok := c.Get(s.Clone()); !ok {
		t.Fatal("exact hit missed")
	}
	// Derived hit.
	r := s.Clone()
	r.Dims = []query.Dim{{Col: "carrier"}}
	if _, ok := c.Get(r); !ok {
		t.Fatal("derived hit missed")
	}
	// Miss.
	m := s.Clone()
	m.Dims = append(m.Dims, query.Dim{Col: "dest"})
	if _, ok := c.Get(m); ok {
		t.Fatal("unexpected hit")
	}
	st := c.Stats()
	if st.ExactHits != 1 || st.DerivedHits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLiteralCache(t *testing.T) {
	// One shard: with a cache-wide budget of 2 the survivor set is exact.
	c := NewLiteralCache(Options{MaxEntries: 2, Shards: 1})
	res := exec.NewResult(nil)
	c.Put("q1", res, time.Millisecond)
	c.Put("q2", res, time.Second) // expensive: should survive eviction
	if _, ok := c.Get("q1"); !ok {
		t.Error("q1 missing")
	}
	c.Put("q3", res, time.Millisecond)
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	if _, ok := c.Get("q2"); !ok {
		t.Error("expensive entry should survive eviction")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Error("clear failed")
	}
}

func TestIntelligentEvictionByCount(t *testing.T) {
	// One shard: all six entries share a GroupKey, so the per-shard budget
	// must equal the cache-wide budget for the eviction count to be exact.
	c := NewIntelligentCache(Options{MaxEntries: 3, Shards: 1})
	for i := 0; i < 6; i++ {
		q := baseQuery()
		q.Filters = []query.Filter{query.GtFilter("distance", storage.IntValue(int64(i)))}
		c.Put(q, exec.NewResult(nil), time.Duration(i)*time.Millisecond)
	}
	if c.Len() != 3 {
		t.Errorf("len = %d", c.Len())
	}
	if c.Stats().Evictions != 3 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := NewIntelligentCache(DefaultOptions())
	s := baseQuery()
	sres := run(t, s)
	c.Put(s, sres, 5*time.Millisecond)
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	// A new session loads the persisted cache and serves derived hits.
	c2 := NewIntelligentCache(DefaultOptions())
	if err := c2.Load(path); err != nil {
		t.Fatal(err)
	}
	r := s.Clone()
	r.Dims = []query.Dim{{Col: "carrier"}}
	got, ok := c2.Get(r)
	if !ok {
		t.Fatal("persisted entry should serve derived queries")
	}
	want := run(t, r)
	sameResult(t, got, want)
	// Loading a missing file is fine.
	c3 := NewIntelligentCache(DefaultOptions())
	if err := c3.Load(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatal(err)
	}
}

func TestLiteralCachePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "literal.json")
	c := NewLiteralCache(DefaultOptions())
	s := baseQuery()
	sres := run(t, s)
	c.Put(s.ToTQL(), sres, 3*time.Millisecond)
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	c2 := NewLiteralCache(DefaultOptions())
	if err := c2.Load(path); err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(s.ToTQL())
	if !ok {
		t.Fatal("persisted literal entry missing")
	}
	sameResult(t, got, sres)
	if err := c2.Load(filepath.Join(t.TempDir(), "missing.json")); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedCache(t *testing.T) {
	store := kvstore.NewStore(64 << 20)
	srv, err := kvstore.Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mkNode := func() *Distributed {
		cl, err := kvstore.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return NewDistributed(NewIntelligentCache(DefaultOptions()), cl, time.Minute)
	}
	nodeA, nodeB := mkNode(), mkNode()

	s := baseQuery()
	sres := run(t, s)
	nodeA.Put(s, sres, 10*time.Millisecond)

	// Node B, which never executed the query, answers it from the shared
	// store ("keeping data warm regardless of which node handles particular
	// requests").
	got, ok := nodeB.Get(s.Clone())
	if !ok {
		t.Fatal("node B should hit via the shared store")
	}
	sameResult(t, got, sres)
	if hits, _, errs := nodeB.RemoteStats(); hits != 1 || errs != 0 {
		t.Errorf("remote hits = %d errors = %d", hits, errs)
	}
	// After warming, node B can serve derived queries locally.
	r := s.Clone()
	r.Dims = []query.Dim{{Col: "carrier"}}
	if _, ok := nodeB.Get(r); !ok {
		t.Fatal("warmed node should serve derived queries")
	}
	if nodeB.Local.Stats().DerivedHits != 1 {
		t.Error("derived hit should be local")
	}
}

func TestKVStoreBasics(t *testing.T) {
	s := kvstore.NewStore(0)
	s.Set("a", []byte("1"), 0)
	if v, ok := s.Get("a"); !ok || string(v) != "1" {
		t.Error("get failed")
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Error("delete failed")
	}
	// TTL expiry with a fake clock.
	now := time.Now()
	s.SetClock(func() time.Time { return now })
	s.Set("b", []byte("2"), time.Second)
	now = now.Add(2 * time.Second)
	if _, ok := s.Get("b"); ok {
		t.Error("expired entry served")
	}
	// LRU byte cap.
	small := kvstore.NewStore(64)
	small.Set("k1", make([]byte, 40), 0)
	small.Set("k2", make([]byte, 40), 0)
	if small.Len() != 1 {
		t.Errorf("len = %d", small.Len())
	}
}

func TestKVStoreNetwork(t *testing.T) {
	store := kvstore.NewStore(0)
	srv, err := kvstore.Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := kvstore.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set("x", []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get("x")
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	if err := cl.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get("x"); ok {
		t.Error("deleted key served")
	}
}
