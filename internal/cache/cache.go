// Package cache implements Tableau's two levels of query caching
// (Sect. 3.2): the literal cache, keyed on final query text, and the
// intelligent cache, a semantic view-matching component that answers a new
// query from a stored result when the stored query provably subsumes it,
// applying local post-processing (roll-up, filtering, projection). It also
// provides persistence (Desktop), a distributed layer over a networked
// key-value store (Server), and a single-flight layer that coalesces
// concurrent identical remote executions.
//
// Both caches are sharded (see shard.go) so concurrent server workloads do
// not serialize behind one mutex, and use sampled eviction so eviction cost
// is independent of cache size.
package cache

import (
	"time"

	"vizq/internal/obs"
	"vizq/internal/query"
	"vizq/internal/tde/exec"
)

// Cache-tier metrics, shared process-wide: the hit-tier counters are how
// the per-stage latency story of Sect. 3.2 becomes visible at runtime.
var (
	cLitHits    = obs.C("cache.literal.hits")
	cLitMisses  = obs.C("cache.literal.misses")
	cLitEvicts  = obs.C("cache.literal.evictions")
	cIntExact   = obs.C("cache.intelligent.exact_hits")
	cIntDerived = obs.C("cache.intelligent.derived_hits")
	cIntMisses  = obs.C("cache.intelligent.misses")
	cIntEvicts  = obs.C("cache.intelligent.evictions")
	// cStaleServed counts degraded reads: expired entries served inside
	// their StaleUntil grace window because the backend was unreachable.
	cStaleServed = obs.C("cache.stale_served")
)

// Entry is one cached query result with the bookkeeping eviction needs:
// "entries ... are purged based upon a combination of entry age, usage, and
// the expense of re-evaluating the query."
type Entry struct {
	Query    *query.Query // nil for literal entries
	Text     string       // literal cache key
	Result   *exec.Result
	Cost     time.Duration // time the query took to compute
	Created  time.Time
	LastUsed time.Time
	Uses     int64
	// FreshUntil ends the entry's fresh lifetime (zero = fresh forever).
	// Past it, normal Gets treat the entry as a miss.
	FreshUntil time.Time
	// StaleUntil ends the stale grace window (zero = no grace). Between
	// FreshUntil and StaleUntil the entry is served only by GetStale —
	// the graceful-degradation path taken when the backend is down.
	StaleUntil time.Time
}

// fresh reports whether the entry may satisfy a normal Get at now.
func (e *Entry) fresh(now time.Time) bool {
	return e.FreshUntil.IsZero() || !now.After(e.FreshUntil)
}

// usableStale reports whether the entry may satisfy a degraded GetStale
// at now: fresh entries qualify trivially, expired ones only inside the
// grace window.
func (e *Entry) usableStale(now time.Time) bool {
	return e.fresh(now) || !now.After(e.StaleUntil)
}

func (e *Entry) sizeBytes() int64 { return e.Result.SizeBytes() + 256 }

// score values an entry for retention: cheap-to-recompute, old, rarely-used
// entries go first.
func (e *Entry) score(now time.Time) float64 {
	age := now.Sub(e.LastUsed).Seconds() + 1
	return float64(e.Cost.Microseconds()+1) * float64(e.Uses+1) / age
}

// Stats counts cache outcomes.
type Stats struct {
	ExactHits   int64
	DerivedHits int64
	Misses      int64
	Evictions   int64
	// StaleServed counts degraded GetStale hits: expired entries served
	// inside their grace window during a backend outage.
	StaleServed int64
}

func (s *Stats) add(o Stats) {
	s.ExactHits += o.ExactHits
	s.DerivedHits += o.DerivedHits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.StaleServed += o.StaleServed
}

// Options bounds a cache.
type Options struct {
	MaxEntries int
	MaxBytes   int64
	// MaxResultBytes rejects oversized results at admission ("we cache all
	// the query results unless ... the results are excessively large").
	MaxResultBytes int64
	// BestMatch makes the intelligent cache score all subsuming candidates
	// and pick the one needing the least post-processing, instead of
	// accepting the first match. The paper ships first-match and names
	// best-match as the planned improvement (Sect. 3.2).
	BestMatch bool
	// Shards is the lock-stripe count (0 = default). The effective count is
	// clamped so each shard can hold at least one entry and one
	// maximum-size result; Shards=1 restores single-mutex behaviour (and
	// with it, exact cache-wide budget enforcement — sharded budgets are
	// enforced per shard).
	Shards int
	// FreshFor bounds an entry's fresh lifetime from Put (0 = fresh
	// forever, the historical behaviour). Past it, normal Gets miss.
	FreshFor time.Duration
	// StaleGrace extends an expired entry's life past FreshFor for
	// degraded reads only: GetStale may serve it while the backend is
	// down, normal Gets never will. Ignored when FreshFor is zero.
	StaleGrace time.Duration
}

// DefaultOptions sizes caches for a desktop session.
func DefaultOptions() Options {
	return Options{MaxEntries: 4096, MaxBytes: 256 << 20, MaxResultBytes: 32 << 20}
}

// LiteralCache maps low-level query text to results: it catches internal
// queries "that end up having the same textual representation but where a
// match could not be proven upfront". Shards are selected by text hash.
type LiteralCache struct {
	opt    Options
	shards []*litShard
}

// NewLiteralCache creates a literal cache.
func NewLiteralCache(opt Options) *LiteralCache {
	n := shardCount(opt)
	sopt := perShardOptions(opt, n)
	c := &LiteralCache{opt: opt, shards: make([]*litShard, n)}
	for i := range c.shards {
		c.shards[i] = &litShard{opt: sopt, entries: make(map[string]*Entry), clock: time.Now}
	}
	return c
}

func (c *LiteralCache) shardFor(text string) *litShard {
	return c.shards[shardIndex(text, len(c.shards))]
}

// Get looks up a query text.
func (c *LiteralCache) Get(text string) (*exec.Result, bool) {
	return c.shardFor(text).get(text)
}

// GetStale looks up a query text for a degraded read: it will serve an
// expired entry as long as it is within its StaleUntil grace window.
// Callers use it only after the fresh path failed (breaker open, retries
// exhausted), so a hit is counted as stale-served, never as a normal hit.
func (c *LiteralCache) GetStale(text string) (*exec.Result, bool) {
	return c.shardFor(text).getStale(text)
}

// Put stores a result under its text.
func (c *LiteralCache) Put(text string, res *exec.Result, cost time.Duration) {
	if c.opt.MaxResultBytes > 0 && res.SizeBytes() > c.opt.MaxResultBytes {
		return
	}
	c.shardFor(text).put(text, res, cost)
}

// Clear empties the cache (connection closed or refreshed).
func (c *LiteralCache) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.entries = make(map[string]*Entry)
		s.curBytes = 0
		s.mu.Unlock()
	}
}

// Len returns the number of entries.
func (c *LiteralCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Shards reports the effective lock-stripe count.
func (c *LiteralCache) Shards() int { return len(c.shards) }

// Stats returns counters aggregated across shards.
func (c *LiteralCache) Stats() Stats {
	var st Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st.add(s.stats)
		s.mu.Unlock()
	}
	return st
}

// setClock pins the cache's clock (tests).
func (c *LiteralCache) setClock(fn func() time.Time) {
	for _, s := range c.shards {
		s.clock = fn
	}
}

// snapshot copies all live entries (persistence).
func (c *LiteralCache) snapshot() []*Entry {
	var out []*Entry
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.entries {
			out = append(out, e)
		}
		s.mu.Unlock()
	}
	return out
}

// IntelligentCache maps internal query structure to results and matches new
// queries by subsumption, post-processing stored results locally. Shards
// are selected by GroupKey hash, keeping each subsumption bucket (one data
// source + view) within a single shard.
type IntelligentCache struct {
	opt    Options
	shards []*intelShard
}

// NewIntelligentCache creates an intelligent cache.
func NewIntelligentCache(opt Options) *IntelligentCache {
	n := shardCount(opt)
	sopt := perShardOptions(opt, n)
	c := &IntelligentCache{opt: opt, shards: make([]*intelShard, n)}
	for i := range c.shards {
		c.shards[i] = &intelShard{
			opt:     sopt,
			byKey:   make(map[string]*Entry),
			buckets: make(map[string][]*Entry),
			clock:   time.Now,
		}
	}
	return c
}

func (c *IntelligentCache) shardFor(q *query.Query) *intelShard {
	return c.shards[shardIndex(q.GroupKey(), len(c.shards))]
}

// Get answers q from the cache: an exact structural match first, otherwise
// the first stored candidate that provably subsumes q, with roll-up,
// residual filtering and projection applied locally ("while currently we
// accept the first match...").
func (c *IntelligentCache) Get(q *query.Query) (*exec.Result, bool) {
	return c.shardFor(q).get(q)
}

// GetStale answers q for a degraded read, accepting entries past their
// fresh lifetime but within their StaleUntil grace window — exact match
// first, then subsumption like Get. Used when the backend is unreachable.
func (c *IntelligentCache) GetStale(q *query.Query) (*exec.Result, bool) {
	return c.shardFor(q).getStale(q)
}

// Put stores a result for the (already executed) query.
func (c *IntelligentCache) Put(q *query.Query, res *exec.Result, cost time.Duration) {
	if c.opt.MaxResultBytes > 0 && res.SizeBytes() > c.opt.MaxResultBytes {
		return
	}
	c.shardFor(q).put(q, res, cost)
}

// Clear empties the cache.
func (c *IntelligentCache) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.byKey = make(map[string]*Entry)
		s.buckets = make(map[string][]*Entry)
		s.curBytes = 0
		s.mu.Unlock()
	}
}

// Len returns the number of entries.
func (c *IntelligentCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.byKey)
		s.mu.Unlock()
	}
	return n
}

// Shards reports the effective lock-stripe count.
func (c *IntelligentCache) Shards() int { return len(c.shards) }

// Stats returns counters aggregated across shards.
func (c *IntelligentCache) Stats() Stats {
	var st Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st.add(s.stats)
		s.mu.Unlock()
	}
	return st
}

// setClock pins the cache's clock (tests).
func (c *IntelligentCache) setClock(fn func() time.Time) {
	for _, s := range c.shards {
		s.clock = fn
	}
}

// Entries snapshots the cache content (persistence).
func (c *IntelligentCache) Entries() []*Entry {
	var out []*Entry
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.byKey {
			out = append(out, e)
		}
		s.mu.Unlock()
	}
	return out
}
