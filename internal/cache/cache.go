// Package cache implements Tableau's two levels of query caching
// (Sect. 3.2): the literal cache, keyed on final query text, and the
// intelligent cache, a semantic view-matching component that answers a new
// query from a stored result when the stored query provably subsumes it,
// applying local post-processing (roll-up, filtering, projection). It also
// provides persistence (Desktop) and a distributed layer over a networked
// key-value store (Server).
package cache

import (
	"sync"
	"time"

	"vizq/internal/obs"
	"vizq/internal/query"
	"vizq/internal/tde/exec"
)

// Cache-tier metrics, shared process-wide: the hit-tier counters are how
// the per-stage latency story of Sect. 3.2 becomes visible at runtime.
var (
	cLitHits    = obs.C("cache.literal.hits")
	cLitMisses  = obs.C("cache.literal.misses")
	cLitEvicts  = obs.C("cache.literal.evictions")
	cIntExact   = obs.C("cache.intelligent.exact_hits")
	cIntDerived = obs.C("cache.intelligent.derived_hits")
	cIntMisses  = obs.C("cache.intelligent.misses")
	cIntEvicts  = obs.C("cache.intelligent.evictions")
)

// Entry is one cached query result with the bookkeeping eviction needs:
// "entries ... are purged based upon a combination of entry age, usage, and
// the expense of re-evaluating the query."
type Entry struct {
	Query    *query.Query // nil for literal entries
	Text     string       // literal cache key
	Result   *exec.Result
	Cost     time.Duration // time the query took to compute
	Created  time.Time
	LastUsed time.Time
	Uses     int64
}

func (e *Entry) sizeBytes() int64 { return e.Result.SizeBytes() + 256 }

// score values an entry for retention: cheap-to-recompute, old, rarely-used
// entries go first.
func (e *Entry) score(now time.Time) float64 {
	age := now.Sub(e.LastUsed).Seconds() + 1
	return float64(e.Cost.Microseconds()+1) * float64(e.Uses+1) / age
}

// Stats counts cache outcomes.
type Stats struct {
	ExactHits   int64
	DerivedHits int64
	Misses      int64
	Evictions   int64
}

// Options bounds a cache.
type Options struct {
	MaxEntries int
	MaxBytes   int64
	// MaxResultBytes rejects oversized results at admission ("we cache all
	// the query results unless ... the results are excessively large").
	MaxResultBytes int64
	// BestMatch makes the intelligent cache score all subsuming candidates
	// and pick the one needing the least post-processing, instead of
	// accepting the first match. The paper ships first-match and names
	// best-match as the planned improvement (Sect. 3.2).
	BestMatch bool
}

// DefaultOptions sizes caches for a desktop session.
func DefaultOptions() Options {
	return Options{MaxEntries: 4096, MaxBytes: 256 << 20, MaxResultBytes: 32 << 20}
}

// LiteralCache maps low-level query text to results: it catches internal
// queries "that end up having the same textual representation but where a
// match could not be proven upfront".
type LiteralCache struct {
	mu       sync.Mutex
	opt      Options
	entries  map[string]*Entry
	curBytes int64
	stats    Stats
	clock    func() time.Time
}

// NewLiteralCache creates a literal cache.
func NewLiteralCache(opt Options) *LiteralCache {
	return &LiteralCache{opt: opt, entries: make(map[string]*Entry), clock: time.Now}
}

// Get looks up a query text.
func (c *LiteralCache) Get(text string) (*exec.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[text]
	if !ok {
		c.stats.Misses++
		cLitMisses.Inc()
		return nil, false
	}
	e.Uses++
	e.LastUsed = c.clock()
	c.stats.ExactHits++
	cLitHits.Inc()
	return e.Result, true
}

// Put stores a result under its text.
func (c *LiteralCache) Put(text string, res *exec.Result, cost time.Duration) {
	if c.opt.MaxResultBytes > 0 && res.SizeBytes() > c.opt.MaxResultBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	if old, ok := c.entries[text]; ok {
		c.curBytes -= old.sizeBytes()
	}
	e := &Entry{Text: text, Result: res, Cost: cost, Created: now, LastUsed: now}
	c.entries[text] = e
	c.curBytes += e.sizeBytes()
	c.evictLocked()
}

// Clear empties the cache (connection closed or refreshed).
func (c *LiteralCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*Entry)
	c.curBytes = 0
}

// Len returns the number of entries.
func (c *LiteralCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns counters.
func (c *LiteralCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *LiteralCache) evictLocked() {
	now := c.clock()
	for (c.opt.MaxEntries > 0 && len(c.entries) > c.opt.MaxEntries) ||
		(c.opt.MaxBytes > 0 && c.curBytes > c.opt.MaxBytes) {
		var worst *Entry
		var worstKey string
		for k, e := range c.entries {
			if worst == nil || e.score(now) < worst.score(now) {
				worst, worstKey = e, k
			}
		}
		if worst == nil {
			return
		}
		delete(c.entries, worstKey)
		c.curBytes -= worst.sizeBytes()
		c.stats.Evictions++
		cLitEvicts.Inc()
	}
}

// IntelligentCache maps internal query structure to results and matches new
// queries by subsumption, post-processing stored results locally.
type IntelligentCache struct {
	mu       sync.Mutex
	opt      Options
	byKey    map[string]*Entry
	buckets  map[string][]*Entry // GroupKey -> candidates in insertion order
	curBytes int64
	stats    Stats
	clock    func() time.Time
}

// NewIntelligentCache creates an intelligent cache.
func NewIntelligentCache(opt Options) *IntelligentCache {
	return &IntelligentCache{
		opt:     opt,
		byKey:   make(map[string]*Entry),
		buckets: make(map[string][]*Entry),
		clock:   time.Now,
	}
}

// Get answers q from the cache: an exact structural match first, otherwise
// the first stored candidate that provably subsumes q, with roll-up,
// residual filtering and projection applied locally ("while currently we
// accept the first match...").
func (c *IntelligentCache) Get(q *query.Query) (*exec.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	if e, ok := c.byKey[q.Key()]; ok {
		e.Uses++
		e.LastUsed = now
		c.stats.ExactHits++
		cIntExact.Inc()
		// Exact key match may still need projection/ordering when the
		// stored query was adjusted; Derive handles identity cheaply.
		if res, ok := Derive(e.Query, e.Result, q); ok {
			return res, true
		}
	}
	if c.opt.BestMatch {
		// Least-post-processing selection: the dominant local cost is the
		// number of stored rows to filter and re-group.
		var best *Entry
		for _, e := range c.buckets[q.GroupKey()] {
			if !Subsumes(e.Query, q) {
				continue
			}
			if best == nil || e.Result.N < best.Result.N {
				best = e
			}
		}
		if best != nil {
			if res, ok := Derive(best.Query, best.Result, q); ok {
				best.Uses++
				best.LastUsed = now
				c.stats.DerivedHits++
				cIntDerived.Inc()
				return res, true
			}
		}
	} else {
		for _, e := range c.buckets[q.GroupKey()] {
			if res, ok := Derive(e.Query, e.Result, q); ok {
				e.Uses++
				e.LastUsed = now
				c.stats.DerivedHits++
				cIntDerived.Inc()
				return res, true
			}
		}
	}
	c.stats.Misses++
	cIntMisses.Inc()
	return nil, false
}

// Put stores a result for the (already executed) query.
func (c *IntelligentCache) Put(q *query.Query, res *exec.Result, cost time.Duration) {
	if c.opt.MaxResultBytes > 0 && res.SizeBytes() > c.opt.MaxResultBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := q.Key()
	if old, ok := c.byKey[key]; ok {
		c.removeLocked(old)
	}
	now := c.clock()
	e := &Entry{Query: q.Clone(), Result: res, Cost: cost, Created: now, LastUsed: now}
	c.byKey[key] = e
	c.buckets[q.GroupKey()] = append(c.buckets[q.GroupKey()], e)
	c.curBytes += e.sizeBytes()
	c.evictLocked()
}

// Clear empties the cache.
func (c *IntelligentCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byKey = make(map[string]*Entry)
	c.buckets = make(map[string][]*Entry)
	c.curBytes = 0
}

// Len returns the number of entries.
func (c *IntelligentCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// Stats returns counters.
func (c *IntelligentCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Entries snapshots the cache content (persistence).
func (c *IntelligentCache) Entries() []*Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Entry, 0, len(c.byKey))
	for _, e := range c.byKey {
		out = append(out, e)
	}
	return out
}

func (c *IntelligentCache) removeLocked(e *Entry) {
	key := e.Query.Key()
	delete(c.byKey, key)
	gk := e.Query.GroupKey()
	bucket := c.buckets[gk]
	for i, b := range bucket {
		if b == e {
			c.buckets[gk] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	c.curBytes -= e.sizeBytes()
}

func (c *IntelligentCache) evictLocked() {
	now := c.clock()
	for (c.opt.MaxEntries > 0 && len(c.byKey) > c.opt.MaxEntries) ||
		(c.opt.MaxBytes > 0 && c.curBytes > c.opt.MaxBytes) {
		var worst *Entry
		for _, e := range c.byKey {
			if worst == nil || e.score(now) < worst.score(now) {
				worst = e
			}
		}
		if worst == nil {
			return
		}
		c.removeLocked(worst)
		c.stats.Evictions++
		cIntEvicts.Inc()
	}
}
