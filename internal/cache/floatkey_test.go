package cache

import (
	"bytes"
	"math"
	"testing"

	"vizq/internal/query"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

func floatKey(f float64) []byte {
	return appendValueKey(nil, storage.FloatValue(f), storage.CollBinary)
}

// TestFloatKeyDistinguishesLargeValues is the regression for the grouping
// key overflow: the old uint64(int64(v.F*1e9)) encoding overflowed for any
// |v| >= ~9.22e9, collapsing distinct large floats into one roll-up group,
// and also collided values closer than 1e-9.
func TestFloatKeyDistinguishesLargeValues(t *testing.T) {
	collisions := [][2]float64{
		{1e10, 2e10},      // both overflow int64(v*1e9) pre-fix
		{9.3e9, -9.3e9},   // overflow in both directions
		{1e18, 1e18 + 1e3},
		{1.0, 1.0 + 1e-10}, // below the old 1e-9 granularity
	}
	for _, pair := range collisions {
		if bytes.Equal(floatKey(pair[0]), floatKey(pair[1])) {
			t.Errorf("keys for %g and %g collide", pair[0], pair[1])
		}
	}
	// -0.0 and +0.0 are the same group.
	if !bytes.Equal(floatKey(math.Copysign(0, -1)), floatKey(0)) {
		t.Error("-0.0 and +0.0 must share a grouping key")
	}
}

// TestFloatKeyOrderPreserving checks that the encoded bytes sort like the
// floats (sign-flip canonicalization of the IEEE-754 bits).
func TestFloatKeyOrderPreserving(t *testing.T) {
	sorted := []float64{math.Inf(-1), -1e300, -9.3e9, -5.25, -1e-12, 0, 1e-12, 3.14, 9.3e9, 1e300, math.Inf(1)}
	for i := 1; i < len(sorted); i++ {
		if bytes.Compare(floatKey(sorted[i-1]), floatKey(sorted[i])) >= 0 {
			t.Errorf("key(%g) should sort before key(%g)", sorted[i-1], sorted[i])
		}
	}
}

// TestDeriveFloatGroupingRegression drives the overflow through Derive:
// a stored result with two large distinct float dimension values must not
// collapse into one group (pre-fix it did, corrupting the roll-up sum).
func TestDeriveFloatGroupingRegression(t *testing.T) {
	s := &query.Query{
		DataSource: "metrics",
		View:       query.View{Table: "metrics"},
		Dims:       []query.Dim{{Col: "bucket"}},
		Measures:   []query.Measure{{Fn: query.Sum, Col: "x", As: "sx"}},
	}
	sres := exec.NewResult([]plan.ColInfo{
		{Name: "bucket", Type: storage.TFloat},
		{Name: "sx", Type: storage.TInt},
	})
	sres.AppendRow([]storage.Value{storage.FloatValue(1e10), storage.IntValue(7)})
	sres.AppendRow([]storage.Value{storage.FloatValue(2e10), storage.IntValue(5)})

	got, ok := Derive(s, sres, s.Clone())
	if !ok {
		t.Fatal("identity derive failed")
	}
	if got.N != 2 {
		t.Fatalf("distinct large float buckets merged: got %d rows, want 2", got.N)
	}
	sums := map[float64]int64{}
	for i := 0; i < got.N; i++ {
		sums[got.Value(i, 0).F] = got.Value(i, 1).I
	}
	if sums[1e10] != 7 || sums[2e10] != 5 {
		t.Fatalf("roll-up sums corrupted: %v", sums)
	}
}
