package cache

import (
	"testing"
	"time"

	"vizq/internal/query"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// Staleness semantics: with FreshFor set, entries expire for the normal Get
// path but remain reachable through GetStale for a further StaleGrace
// window — the graceful-degradation read used while a backend is down.

func staleTestQuery() *query.Query {
	return &query.Query{
		DataSource: "flights",
		View:       query.View{Table: "flights"},
		Dims:       []query.Dim{{Col: "carrier"}},
		Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
	}
}

func staleTestResult() *exec.Result {
	res := exec.NewResult([]plan.ColInfo{
		{Name: "carrier", Type: storage.TStr},
		{Name: "n", Type: storage.TInt},
	})
	res.AppendRow([]storage.Value{storage.StrValue("AA"), storage.IntValue(3)})
	return res
}

func TestLiteralFreshForExpiresGets(t *testing.T) {
	c := NewLiteralCache(Options{MaxEntries: 8, Shards: 1,
		FreshFor: time.Minute, StaleGrace: time.Hour})
	t0 := time.Unix(1_000_000, 0)
	now := t0
	c.setClock(func() time.Time { return now })

	c.Put("q", exec.NewResult(nil), time.Millisecond)
	if _, ok := c.Get("q"); !ok {
		t.Fatal("fresh entry missed")
	}
	now = t0.Add(time.Minute) // exactly FreshUntil: still fresh (inclusive)
	if _, ok := c.Get("q"); !ok {
		t.Fatal("entry at its exact FreshUntil instant missed")
	}
	now = t0.Add(time.Minute + time.Second)
	if _, ok := c.Get("q"); ok {
		t.Fatal("expired entry served by the fresh path")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("expired Get accounted as %+v, want exactly 1 miss", st)
	}
}

func TestLiteralGetStaleServesWithinGrace(t *testing.T) {
	c := NewLiteralCache(Options{MaxEntries: 8, Shards: 1,
		FreshFor: time.Minute, StaleGrace: time.Hour})
	t0 := time.Unix(1_000_000, 0)
	now := t0
	c.setClock(func() time.Time { return now })

	c.Put("q", exec.NewResult(nil), time.Millisecond)
	now = t0.Add(30 * time.Minute) // expired, inside grace
	if _, ok := c.Get("q"); ok {
		t.Fatal("expired entry served fresh")
	}
	if _, ok := c.GetStale("q"); !ok {
		t.Fatal("GetStale refused an entry inside its grace window")
	}
	if st := c.Stats(); st.StaleServed != 1 {
		t.Fatalf("StaleServed = %d, want 1", st.StaleServed)
	}
	// GetStale also serves fresh entries: callers reach it only after the
	// backend failed, and a fresh answer is strictly better than none.
	c.Put("q2", exec.NewResult(nil), time.Millisecond)
	if _, ok := c.GetStale("q2"); !ok {
		t.Fatal("GetStale refused a fresh entry")
	}
	// Past the grace window nothing is served, fresh or stale.
	now = t0.Add(time.Minute + time.Hour + time.Second)
	if _, ok := c.GetStale("q"); ok {
		t.Fatal("GetStale served past StaleUntil")
	}
	if _, ok := c.Get("q"); ok {
		t.Fatal("Get served past StaleUntil")
	}
}

func TestLiteralDeadEntryIsDroppedAndAccounted(t *testing.T) {
	c := NewLiteralCache(Options{MaxEntries: 8, Shards: 1,
		FreshFor: time.Minute, StaleGrace: time.Minute})
	t0 := time.Unix(1_000_000, 0)
	now := t0
	c.setClock(func() time.Time { return now })

	c.Put("q", exec.NewResult(nil), time.Millisecond)
	sh := c.shardFor("q")
	now = t0.Add(3 * time.Minute) // past StaleUntil
	if _, ok := c.Get("q"); ok {
		t.Fatal("dead entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("dead entry not dropped: Len = %d", c.Len())
	}
	if sh.curBytes != 0 {
		t.Fatalf("byte accounting leaked %d bytes after drop", sh.curBytes)
	}
}

func TestLiteralPutRefreshRestartsFreshness(t *testing.T) {
	c := NewLiteralCache(Options{MaxEntries: 8, Shards: 1,
		FreshFor: time.Minute, StaleGrace: time.Hour})
	t0 := time.Unix(1_000_000, 0)
	now := t0
	c.setClock(func() time.Time { return now })

	c.Put("q", exec.NewResult(nil), time.Millisecond)
	now = t0.Add(30 * time.Minute) // stale now
	c.Put("q", exec.NewResult(nil), time.Millisecond)
	if _, ok := c.Get("q"); !ok {
		t.Fatal("refreshed entry inherited the old entry's expiry")
	}
	e := c.shardFor("q").entries["q"]
	if !e.FreshUntil.Equal(now.Add(time.Minute)) {
		t.Fatalf("FreshUntil = %v, want %v", e.FreshUntil, now.Add(time.Minute))
	}
}

func TestZeroFreshForIsFreshForever(t *testing.T) {
	c := NewLiteralCache(Options{MaxEntries: 8, Shards: 1})
	t0 := time.Unix(1_000_000, 0)
	now := t0
	c.setClock(func() time.Time { return now })

	c.Put("q", exec.NewResult(nil), time.Millisecond)
	now = t0.Add(24 * 365 * time.Hour)
	if _, ok := c.Get("q"); !ok {
		t.Fatal("entry without FreshFor expired")
	}
	if _, ok := c.GetStale("q"); !ok {
		t.Fatal("GetStale refused an immortal entry")
	}
}

func TestIntelligentFreshForExpiresGets(t *testing.T) {
	c := NewIntelligentCache(Options{MaxEntries: 8, Shards: 1,
		FreshFor: time.Minute, StaleGrace: time.Hour})
	t0 := time.Unix(2_000_000, 0)
	now := t0
	c.setClock(func() time.Time { return now })

	q := staleTestQuery()
	c.Put(q, staleTestResult(), time.Millisecond)
	if _, ok := c.Get(q.Clone()); !ok {
		t.Fatal("fresh entry missed")
	}
	now = t0.Add(2 * time.Minute)
	if _, ok := c.Get(q.Clone()); ok {
		t.Fatal("expired entry served by the fresh path")
	}
	// Subsumption must not resurrect expired entries either: a roll-up of
	// the stored query would normally be a derived hit.
	r := q.Clone()
	r.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue("AA"))}
	if _, ok := c.Get(r); ok {
		t.Fatal("expired entry served through subsumption")
	}
}

func TestIntelligentBucketScanDropsDeadEntries(t *testing.T) {
	c := NewIntelligentCache(Options{MaxEntries: 8, Shards: 1,
		FreshFor: time.Minute, StaleGrace: time.Minute})
	t0 := time.Unix(2_000_000, 0)
	now := t0
	c.setClock(func() time.Time { return now })

	q := staleTestQuery()
	c.Put(q, staleTestResult(), time.Millisecond)
	sh := c.shardFor(q)
	now = t0.Add(3 * time.Minute) // past StaleUntil: dead weight

	// A same-bucket query whose exact key misses exercises the subsumption
	// scan; it must reclaim the dead entry's budget, not just skip it.
	r := q.Clone()
	r.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue("AA"))}
	if _, ok := c.Get(r); ok {
		t.Fatal("dead entry served through subsumption")
	}
	if c.Len() != 0 {
		t.Fatalf("dead entry not dropped by the bucket scan: Len = %d", c.Len())
	}
	if sh.curBytes != 0 {
		t.Fatalf("byte accounting leaked %d bytes after sweep", sh.curBytes)
	}
	if len(sh.buckets) != 0 {
		t.Fatalf("dead entry still bucketed: %d buckets live", len(sh.buckets))
	}

	// The degraded-read scan sweeps the same way.
	c.Put(q, staleTestResult(), time.Millisecond)
	now = now.Add(3 * time.Minute)
	if _, ok := c.GetStale(r); ok {
		t.Fatal("GetStale served a dead entry")
	}
	if c.Len() != 0 || sh.curBytes != 0 {
		t.Fatalf("GetStale scan left dead weight: Len = %d, curBytes = %d", c.Len(), sh.curBytes)
	}
}

func TestIntelligentGetStaleExactAndDerived(t *testing.T) {
	c := NewIntelligentCache(Options{MaxEntries: 8, Shards: 1,
		FreshFor: time.Minute, StaleGrace: time.Hour})
	t0 := time.Unix(2_000_000, 0)
	now := t0
	c.setClock(func() time.Time { return now })

	q := staleTestQuery()
	c.Put(q, staleTestResult(), time.Millisecond)
	now = t0.Add(30 * time.Minute) // expired, inside grace

	if _, ok := c.GetStale(q.Clone()); !ok {
		t.Fatal("GetStale missed the exact stale entry")
	}
	// Derived stale answer: a filter of the stored query.
	r := q.Clone()
	r.Filters = []query.Filter{query.InFilter("carrier", storage.StrValue("AA"))}
	res, ok := c.GetStale(r)
	if !ok {
		t.Fatal("GetStale could not derive from the stale entry")
	}
	if res.N != 1 {
		t.Fatalf("derived stale result has %d rows, want 1", res.N)
	}
	if st := c.Stats(); st.StaleServed != 2 {
		t.Fatalf("StaleServed = %d, want 2", st.StaleServed)
	}
	// Past grace: dead for GetStale too.
	now = t0.Add(2 * time.Hour)
	if _, ok := c.GetStale(q.Clone()); ok {
		t.Fatal("GetStale served past StaleUntil")
	}
}
