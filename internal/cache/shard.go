package cache

import (
	"sync"
	"time"

	"vizq/internal/obs"
	"vizq/internal/query"
	"vizq/internal/tde/exec"
)

// The caches are lock-striped: N independent shards, each with its own
// mutex, entry maps and byte/entry budget. The literal cache shards by
// query-text hash; the intelligent cache shards by GroupKey hash so every
// subsumption bucket (all candidates for one data source + view) stays
// within a single shard and a Get never crosses shard boundaries.
//
// Eviction is Redis-style sampled eviction: instead of scanning the whole
// shard for the globally worst-scored entry (O(n) per eviction), each round
// samples up to evictSampleSize entries — Go's randomized map iteration
// order is the sampler — and evicts the worst of the sample, making
// eviction O(K) regardless of cache size.

// defaultShardCount is used when Options.Shards is zero.
const defaultShardCount = 16

// evictSampleSize is the per-round eviction sample (Redis uses 5; 8 biases
// slightly toward accuracy since our score spread is wide).
const evictSampleSize = 8

// Per-shard eviction metrics: sampled counts how many entries eviction
// rounds examined, which bounds eviction cost and exposes sampling health.
var (
	cLitEvictSampled = obs.C("cache.literal.evict_sampled")
	cIntEvictSampled = obs.C("cache.intelligent.evict_sampled")
)

// shardIndex hashes a key onto one of n shards (FNV-1a, inlined to keep the
// hot path allocation-free).
func shardIndex(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// shardCount resolves the effective shard count for opt: the configured (or
// default) count, clamped so every shard can hold at least one entry and at
// least one maximum-size result.
func shardCount(opt Options) int {
	n := opt.Shards
	if n <= 0 {
		n = defaultShardCount
	}
	if opt.MaxEntries > 0 && n > opt.MaxEntries {
		n = opt.MaxEntries
	}
	if opt.MaxBytes > 0 && opt.MaxResultBytes > 0 {
		if m := int(opt.MaxBytes / opt.MaxResultBytes); m >= 1 && n > m {
			n = m
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// perShardOptions divides the cache-wide budgets across n shards (rounding
// up so n*perShard >= total).
func perShardOptions(opt Options, n int) Options {
	s := opt
	if s.MaxEntries > 0 {
		s.MaxEntries = (opt.MaxEntries + n - 1) / n
	}
	if s.MaxBytes > 0 {
		s.MaxBytes = (opt.MaxBytes + int64(n) - 1) / int64(n)
	}
	return s
}

// litShard is one lock-striped stripe of the literal cache.
type litShard struct {
	mu       sync.Mutex
	opt      Options // per-shard budgets
	entries  map[string]*Entry
	curBytes int64
	stats    Stats
	clock    func() time.Time
}

func (s *litShard) get(text string) (*exec.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	e, ok := s.entries[text]
	if ok && !e.fresh(now) {
		// An expired entry is a miss for the fresh path; once even the
		// stale grace window has passed it is dead weight and is dropped.
		if !e.usableStale(now) {
			delete(s.entries, text)
			s.curBytes -= e.sizeBytes()
		}
		ok = false
	}
	if !ok {
		s.stats.Misses++
		cLitMisses.Inc()
		return nil, false
	}
	e.Uses++
	e.LastUsed = now
	s.stats.ExactHits++
	cLitHits.Inc()
	return e.Result, true
}

// getStale is the degraded-read path: it serves entries that are fresh or
// merely expired (within grace), never entries past StaleUntil.
func (s *litShard) getStale(text string) (*exec.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	e, ok := s.entries[text]
	if !ok || !e.usableStale(now) {
		return nil, false
	}
	e.Uses++
	e.LastUsed = now
	s.stats.StaleServed++
	cStaleServed.Inc()
	return e.Result, true
}

func (s *litShard) put(text string, res *exec.Result, cost time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	e := &Entry{Text: text, Result: res, Cost: cost, Created: now, LastUsed: now}
	setLifetimes(e, s.opt, now)
	if old, ok := s.entries[text]; ok {
		s.curBytes -= old.sizeBytes()
		// Refreshing a key must not make a hot entry look cold: carry the
		// usage history across the replacement so eviction scoring still
		// sees the entry's real popularity and age. Freshness is NOT
		// carried: the new result restarts its own lifetime.
		e.Uses = old.Uses
		e.Created = old.Created
	}
	s.entries[text] = e
	s.curBytes += e.sizeBytes()
	s.evictLocked()
}

// setLifetimes stamps an entry's fresh/stale horizon from the shard's
// options at write time.
func setLifetimes(e *Entry, opt Options, now time.Time) {
	if opt.FreshFor > 0 {
		e.FreshUntil = now.Add(opt.FreshFor)
		if opt.StaleGrace > 0 {
			e.StaleUntil = e.FreshUntil.Add(opt.StaleGrace)
		}
	}
}

func (s *litShard) evictLocked() {
	now := s.clock()
	for (s.opt.MaxEntries > 0 && len(s.entries) > s.opt.MaxEntries) ||
		(s.opt.MaxBytes > 0 && s.curBytes > s.opt.MaxBytes) {
		var worst *Entry
		var worstKey string
		sampled := 0
		for k, e := range s.entries {
			if worst == nil || e.score(now) < worst.score(now) {
				worst, worstKey = e, k
			}
			sampled++
			if sampled >= evictSampleSize {
				break
			}
		}
		if worst == nil {
			return
		}
		cLitEvictSampled.Add(int64(sampled))
		delete(s.entries, worstKey)
		s.curBytes -= worst.sizeBytes()
		s.stats.Evictions++
		cLitEvicts.Inc()
	}
}

// intelShard is one lock-striped stripe of the intelligent cache. All
// entries sharing a GroupKey live in the same shard, so subsumption
// matching stays shard-local.
type intelShard struct {
	mu       sync.Mutex
	opt      Options // per-shard budgets
	byKey    map[string]*Entry
	buckets  map[string][]*Entry // GroupKey -> candidates in insertion order
	curBytes int64
	stats    Stats
	clock    func() time.Time
}

func (s *intelShard) get(q *query.Query) (*exec.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	if e, ok := s.byKey[q.Key()]; ok {
		if !e.fresh(now) {
			// Expired: invisible to the fresh path. Entries past even the
			// stale grace window are dropped outright.
			if !e.usableStale(now) {
				s.removeLocked(e)
			}
		} else if res, ok := Derive(e.Query, e.Result, q); ok {
			// Exact key match may still need projection/ordering when the
			// stored query was adjusted; Derive handles identity cheaply.
			// The hit is accounted only after Derive succeeds — a failed
			// derive must fall through as a miss, not bump Uses or
			// ExactHits.
			e.Uses++
			e.LastUsed = now
			s.stats.ExactHits++
			cIntExact.Inc()
			return res, true
		}
	}
	s.sweepBucketLocked(q.GroupKey(), now)
	if s.opt.BestMatch {
		// Least-post-processing selection: the dominant local cost is the
		// number of stored rows to filter and re-group.
		var best *Entry
		for _, e := range s.buckets[q.GroupKey()] {
			if !e.fresh(now) || !Subsumes(e.Query, q) {
				continue
			}
			if best == nil || e.Result.N < best.Result.N {
				best = e
			}
		}
		if best != nil {
			if res, ok := Derive(best.Query, best.Result, q); ok {
				best.Uses++
				best.LastUsed = now
				s.stats.DerivedHits++
				cIntDerived.Inc()
				return res, true
			}
		}
	} else {
		for _, e := range s.buckets[q.GroupKey()] {
			if !e.fresh(now) {
				continue
			}
			if res, ok := Derive(e.Query, e.Result, q); ok {
				e.Uses++
				e.LastUsed = now
				s.stats.DerivedHits++
				cIntDerived.Inc()
				return res, true
			}
		}
	}
	s.stats.Misses++
	cIntMisses.Inc()
	return nil, false
}

// getStale is the degraded-read path: exact structural match first, then
// subsumption, accepting entries that are fresh or merely expired (within
// their grace window), never entries past StaleUntil.
func (s *intelShard) getStale(q *query.Query) (*exec.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	s.sweepBucketLocked(q.GroupKey(), now)
	if e, ok := s.byKey[q.Key()]; ok && e.usableStale(now) {
		if res, ok := Derive(e.Query, e.Result, q); ok {
			e.Uses++
			e.LastUsed = now
			s.stats.StaleServed++
			cStaleServed.Inc()
			return res, true
		}
	}
	for _, e := range s.buckets[q.GroupKey()] {
		if !e.usableStale(now) {
			continue
		}
		if res, ok := Derive(e.Query, e.Result, q); ok {
			e.Uses++
			e.LastUsed = now
			s.stats.StaleServed++
			cStaleServed.Inc()
			return res, true
		}
	}
	return nil, false
}

func (s *intelShard) put(q *query.Query, res *exec.Result, cost time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := q.Key()
	now := s.clock()
	e := &Entry{Query: q.Clone(), Result: res, Cost: cost, Created: now, LastUsed: now}
	setLifetimes(e, s.opt, now)
	if old, ok := s.byKey[key]; ok {
		s.removeLocked(old)
		// Carry usage history across a refresh (same rationale as the
		// literal cache): hot entries stay hot. Freshness is NOT carried:
		// the new result restarts its own lifetime.
		e.Uses = old.Uses
		e.Created = old.Created
	}
	s.byKey[key] = e
	s.buckets[q.GroupKey()] = append(s.buckets[q.GroupKey()], e)
	s.curBytes += e.sizeBytes()
	s.evictLocked()
}

// sweepBucketLocked drops entries past their stale grace window from one
// subsumption bucket before it is scanned: dead entries can never satisfy
// a fresh or degraded read, so leaving them in place (as skip-only scans
// would) lets them consume the byte/entry budget until eviction pressure.
// The exact-key path drops dead entries on contact; this keeps the bucket
// scans symmetric.
func (s *intelShard) sweepBucketLocked(gk string, now time.Time) {
	var dead []*Entry
	for _, e := range s.buckets[gk] {
		if !e.usableStale(now) {
			dead = append(dead, e)
		}
	}
	for _, e := range dead {
		s.removeLocked(e)
	}
}

func (s *intelShard) removeLocked(e *Entry) {
	key := e.Query.Key()
	delete(s.byKey, key)
	gk := e.Query.GroupKey()
	bucket := s.buckets[gk]
	for i, b := range bucket {
		if b == e {
			s.buckets[gk] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(s.buckets[gk]) == 0 {
		delete(s.buckets, gk)
	}
	s.curBytes -= e.sizeBytes()
}

func (s *intelShard) evictLocked() {
	now := s.clock()
	for (s.opt.MaxEntries > 0 && len(s.byKey) > s.opt.MaxEntries) ||
		(s.opt.MaxBytes > 0 && s.curBytes > s.opt.MaxBytes) {
		var worst *Entry
		sampled := 0
		for _, e := range s.byKey {
			if worst == nil || e.score(now) < worst.score(now) {
				worst = e
			}
			sampled++
			if sampled >= evictSampleSize {
				break
			}
		}
		if worst == nil {
			return
		}
		cIntEvictSampled.Add(int64(sampled))
		s.removeLocked(worst)
		s.stats.Evictions++
		cIntEvicts.Inc()
	}
}
