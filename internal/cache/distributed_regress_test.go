package cache

import (
	"testing"
	"time"

	"vizq/internal/kvstore"
	"vizq/internal/query"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

func distQuery(ds string, dim string) *query.Query {
	return &query.Query{
		DataSource: ds,
		View:       query.View{Table: ds},
		Dims:       []query.Dim{{Col: dim}},
		Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
	}
}

func distResult(dim string) *exec.Result {
	res := exec.NewResult([]plan.ColInfo{
		{Name: dim, Type: storage.TStr},
		{Name: "n", Type: storage.TInt},
	})
	res.AppendRow([]storage.Value{storage.StrValue("x"), storage.IntValue(1)})
	return res
}

// TestDistributedTransportErrorIsNotMiss is the regression for error
// accounting: a dead shared store must surface as errors, not inflate the
// miss rate (a miss means "the cluster has not computed this"; an error
// means "the store is unhealthy").
func TestDistributedTransportErrorIsNotMiss(t *testing.T) {
	srv, err := kvstore.Serve("127.0.0.1:0", kvstore.NewStore(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := kvstore.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // kill the store out from under the client

	d := NewDistributed(NewIntelligentCache(DefaultOptions()), cl, time.Minute)
	if _, ok := d.Get(distQuery("flights", "carrier")); ok {
		t.Fatal("Get against a dead store must not hit")
	}
	hits, misses, errs := d.RemoteStats()
	if errs != 1 {
		t.Errorf("errors = %d, want 1", errs)
	}
	if hits != 0 || misses != 0 {
		t.Errorf("transport failure misattributed: hits=%d misses=%d", hits, misses)
	}
}

// TestDistributedFailedDeriveIsMiss is the regression for remote hit
// accounting: a shared entry that exists under q's exact key but cannot be
// derived into q's answer must count as a miss and must NOT be pulled into
// the local tier (pre-fix it counted a hit and warmed local with a result
// that served nothing).
func TestDistributedFailedDeriveIsMiss(t *testing.T) {
	store := kvstore.NewStore(1 << 20)
	srv, err := kvstore.Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := kvstore.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Plant an unrelated entry under q's key — the shared tier is exact-key
	// addressed, so a key collision (or a stale writer) makes the stored
	// query underivable for q.
	q := distQuery("flights", "carrier")
	other := distQuery("flights", "market")
	data, err := EncodeEntry(other, distResult("market"), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(q.Key(), data, time.Minute); err != nil {
		t.Fatal(err)
	}

	d := NewDistributed(NewIntelligentCache(DefaultOptions()), cl, time.Minute)
	if _, ok := d.Get(q); ok {
		t.Fatal("underivable shared entry must miss")
	}
	hits, misses, errs := d.RemoteStats()
	if hits != 0 {
		t.Errorf("failed derive counted as remote hit (hits=%d)", hits)
	}
	if misses != 1 || errs != 0 {
		t.Errorf("misses=%d errs=%d, want 1/0", misses, errs)
	}
	if n := d.Local.Len(); n != 0 {
		t.Errorf("failed derive warmed the local tier (%d entries)", n)
	}
}

// TestDistributedDecodeErrorCounted: garbage bytes in the shared store are
// an error, not a miss.
func TestDistributedDecodeErrorCounted(t *testing.T) {
	store := kvstore.NewStore(1 << 20)
	srv, err := kvstore.Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := kvstore.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	q := distQuery("flights", "carrier")
	if err := cl.Set(q.Key(), []byte("not an entry"), time.Minute); err != nil {
		t.Fatal(err)
	}
	d := NewDistributed(NewIntelligentCache(DefaultOptions()), cl, time.Minute)
	if _, ok := d.Get(q); ok {
		t.Fatal("garbage entry must not hit")
	}
	if _, misses, errs := d.RemoteStats(); errs != 1 || misses != 0 {
		t.Errorf("misses=%d errs=%d, want 0/1", misses, errs)
	}
}
