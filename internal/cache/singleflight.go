package cache

import (
	"context"
	"sync"

	"vizq/internal/obs"
	"vizq/internal/tde/exec"
)

// Single-flight metrics, shared process-wide: leader counts executions that
// ran the remote query; shared counts callers that joined an in-flight
// execution instead of issuing a duplicate.
var (
	cSFLeader = obs.C("cache.singleflight.leader")
	cSFShared = obs.C("cache.singleflight.shared")
)

// flightCall is one in-flight execution. done closes when res/err are set.
type flightCall struct {
	done chan struct{}
	res  *exec.Result
	err  error
}

// Flight coalesces concurrent executions of the same key (the structural
// query identity): the first caller becomes the leader and runs fn; callers
// arriving while the leader is in flight block and share its result. This
// is the request-coalescing answer to the correlated-miss stampede — K
// sessions rendering the same fresh dashboard send 1 remote query, not K
// (cf. memcached-style leases against thundering herds).
//
// Errors propagate to every waiter but do not poison the slot: the call is
// deregistered before waiters wake, so the next request for the key starts
// a fresh execution.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// NewFlight creates an empty flight group.
func NewFlight() *Flight {
	return &Flight{calls: make(map[string]*flightCall)}
}

// Do executes fn once per key among concurrent callers. It returns fn's
// result, whether this caller shared another caller's execution, and fn's
// error. A waiter whose ctx is cancelled unblocks with ctx.Err() while the
// leader keeps running for the remaining waiters.
func (f *Flight) Do(ctx context.Context, key string, fn func() (*exec.Result, error)) (res *exec.Result, shared bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		cSFShared.Inc()
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	cSFLeader.Inc()
	c.res, c.err = fn()

	// Deregister before waking waiters so an error never poisons the slot:
	// any caller arriving after this point starts a fresh flight.
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
	return c.res, false, c.err
}

// Pending reports the number of in-flight keys (tests, introspection).
func (f *Flight) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
