package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vizq/internal/query"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

func shardQuery(ds string, i int) *query.Query {
	return &query.Query{
		DataSource: ds,
		View:       query.View{Table: ds},
		Dims:       []query.Dim{{Col: "carrier"}},
		Measures:   []query.Measure{{Fn: query.Count, As: "n"}},
		Filters:    []query.Filter{query.InFilter("day", storage.IntValue(int64(i)))},
	}
}

func shardResult() *exec.Result {
	res := exec.NewResult([]plan.ColInfo{
		{Name: "carrier", Type: storage.TStr},
		{Name: "n", Type: storage.TInt},
	})
	res.AppendRow([]storage.Value{storage.StrValue("AA"), storage.IntValue(1)})
	return res
}

func TestShardCountNormalization(t *testing.T) {
	cases := []struct {
		opt  Options
		want int
	}{
		{Options{}, defaultShardCount},
		{Options{Shards: 4}, 4},
		{Options{Shards: 1}, 1},
		{Options{Shards: 64, MaxEntries: 10}, 10},      // >= 1 entry per shard
		{Options{MaxBytes: 1 << 20, MaxResultBytes: 1 << 18}, 4}, // >= 1 max result per shard
		{Options{Shards: -3}, defaultShardCount},
	}
	for _, tc := range cases {
		if got := shardCount(tc.opt); got != tc.want {
			t.Errorf("shardCount(%+v) = %d, want %d", tc.opt, got, tc.want)
		}
	}
	if got := NewLiteralCache(Options{Shards: 5}).Shards(); got != 5 {
		t.Errorf("LiteralCache.Shards() = %d, want 5", got)
	}
	if got := NewIntelligentCache(Options{Shards: 5}).Shards(); got != 5 {
		t.Errorf("IntelligentCache.Shards() = %d, want 5", got)
	}
}

// TestShardedStatsAggregation is the property test: cache-wide Stats() and
// Len() must equal the sum over shards, and the hit/miss counts must add up
// to the number of Gets issued, no matter how keys spread across shards.
func TestShardedStatsAggregation(t *testing.T) {
	c := NewIntelligentCache(Options{Shards: 8})
	const sources = 24 // distinct GroupKeys, spread over 8 shards
	gets, puts := 0, 0
	for s := 0; s < sources; s++ {
		ds := fmt.Sprintf("ds%02d", s)
		for i := 0; i < 4; i++ {
			c.Put(shardQuery(ds, i), shardResult(), time.Millisecond)
			puts++
		}
		for i := 0; i < 6; i++ { // 4 hits + 2 misses per source
			c.Get(shardQuery(ds, i))
			gets++
		}
	}
	st := c.Stats()
	var sum Stats
	lenSum := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		sum.add(sh.stats)
		lenSum += len(sh.byKey)
		sh.mu.Unlock()
	}
	if st != sum {
		t.Errorf("Stats() = %+v != shard sum %+v", st, sum)
	}
	if c.Len() != lenSum || c.Len() != puts {
		t.Errorf("Len() = %d, shard sum %d, want %d", c.Len(), lenSum, puts)
	}
	if got := st.ExactHits + st.DerivedHits + st.Misses; int(got) != gets {
		t.Errorf("hits+misses = %d, want %d gets", got, gets)
	}
	if st.ExactHits != sources*4 || st.Misses != sources*2 {
		t.Errorf("unexpected split: %+v", st)
	}
	// Keys must actually be spread: with 24 group keys and 8 shards the
	// chance of all landing in one shard is astronomically small.
	occupied := 0
	for _, sh := range c.shards {
		if len(sh.byKey) > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Errorf("all %d group keys hashed to %d shard(s)", sources, occupied)
	}
}

// TestLiteralShardedBudgets checks that cache-wide budgets hold across
// shards: total entries never exceed MaxEntries and eviction stats
// aggregate.
func TestLiteralShardedBudgets(t *testing.T) {
	c := NewLiteralCache(Options{MaxEntries: 32, Shards: 8})
	res := shardResult()
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("select %d", i), res, time.Millisecond)
	}
	if c.Len() > 32 {
		t.Errorf("Len() = %d exceeds MaxEntries 32", c.Len())
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions under entry pressure")
	}
	if int(st.Evictions)+c.Len() != 200 {
		t.Errorf("evictions %d + len %d != 200 puts", st.Evictions, c.Len())
	}
}

// TestShardedCachesConcurrent hammers both caches from many goroutines with
// overlapping keys; run under -race this is the lock-striping correctness
// gate. Invariants checked after the storm: budgets hold and per-shard
// stats sum to the observed operation count.
func TestShardedCachesConcurrent(t *testing.T) {
	lit := NewLiteralCache(Options{MaxEntries: 64, Shards: 8})
	intel := NewIntelligentCache(Options{MaxEntries: 64, Shards: 8})
	const workers = 8
	const opsPer = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := shardResult()
			for i := 0; i < opsPer; i++ {
				k := (w + i) % 96 // overlap across workers
				text := fmt.Sprintf("q%d", k)
				q := shardQuery(fmt.Sprintf("ds%d", k%12), k)
				switch i % 3 {
				case 0:
					lit.Put(text, res, time.Millisecond)
					intel.Put(q, res, time.Millisecond)
				default:
					lit.Get(text)
					intel.Get(q)
				}
			}
		}(w)
	}
	wg.Wait()

	if lit.Len() > 64 {
		t.Errorf("literal Len() = %d exceeds MaxEntries", lit.Len())
	}
	if intel.Len() > 64 {
		t.Errorf("intelligent Len() = %d exceeds MaxEntries", intel.Len())
	}
	wantGets := int64(workers * opsPer * 2 / 3)
	lst, ist := lit.Stats(), intel.Stats()
	if got := lst.ExactHits + lst.Misses; got != wantGets {
		t.Errorf("literal hits+misses = %d, want %d", got, wantGets)
	}
	if got := ist.ExactHits + ist.DerivedHits + ist.Misses; got != wantGets {
		t.Errorf("intelligent outcomes = %d, want %d", got, wantGets)
	}
}

// BenchmarkLiteralCacheParallel compares sharded vs single-mutex literal
// cache throughput under parallel mixed Get/Put load.
func BenchmarkLiteralCacheParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := NewLiteralCache(Options{MaxEntries: 4096, Shards: shards})
			res := shardResult()
			for i := 0; i < 512; i++ {
				c.Put(fmt.Sprintf("q%d", i), res, time.Millisecond)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					if i%8 == 0 {
						c.Put(fmt.Sprintf("q%d", i%1024), res, time.Millisecond)
					} else {
						c.Get(fmt.Sprintf("q%d", i%1024))
					}
				}
			})
		})
	}
}
