package cache

import (
	"math"
	"sort"
	"strings"

	"vizq/internal/query"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// Derive answers the requested query R from the stored query S's result, if
// S provably subsumes R. The post-processing repertoire matches Sect. 3.2:
// roll-up, filtering, calculation projection and column restriction.
//
// Subsumption conditions:
//   - Same data source and view.
//   - Every R dimension appears among S's dimensions.
//   - R's filters imply S's filters; residual (tighter or extra) filters
//     apply locally, which requires their columns among S's dimensions.
//   - Every R measure is derivable: identical measures roll up by their
//     merge function (COUNT and SUM by summing, MIN/MAX by re-minimizing);
//     AVG derives from stored SUM+COUNT; AVG and COUNTD pass through only
//     when no roll-up is needed (residual filtering drops whole groups, so
//     per-group values stay valid).
//   - A stored top-n result answers only the identical query.
func Derive(s *query.Query, sres *exec.Result, r *query.Query) (*exec.Result, bool) {
	if s.GroupKey() != r.GroupKey() {
		return nil, false
	}
	// Top-n and having-filtered results are not subsumption sources or
	// targets beyond exact identity: their row sets depend on the full
	// aggregation.
	if (s.N > 0 || len(s.Having) > 0 || len(r.Having) > 0) && s.Key() != r.Key() {
		return nil, false
	}

	// Dimension mapping: R dim -> stored column index.
	sDimIdx := map[string]int{}
	for i, d := range s.Dims {
		sDimIdx[dimKey(d)] = i
	}
	dimSrc := make([]int, len(r.Dims))
	for i, d := range r.Dims {
		idx, ok := sDimIdx[dimKey(d)]
		if !ok {
			return nil, false
		}
		dimSrc[i] = idx
	}
	needRollup := len(r.Dims) != len(s.Dims)

	// Filter analysis.
	type residual struct {
		f   query.Filter
		col int // stored column index
	}
	var residuals []residual
	collFor := func(col int) storage.Collation { return sres.Schema[col].Coll }
	// Every stored filter must be implied by some requested filter.
	for _, g := range s.Filters {
		implied := false
		for _, f := range r.Filters {
			if f.Implies(g, collForName(sres, g.Col)) {
				implied = true
				break
			}
		}
		if !implied {
			return nil, false
		}
	}
	// Requested filters not identically present are applied locally.
	for _, f := range r.Filters {
		identical := false
		for _, g := range s.Filters {
			if f.Equals(g, collForName(sres, f.Col)) {
				identical = true
				break
			}
		}
		if identical {
			continue
		}
		if f.Kind == query.FilterTemp {
			return nil, false // opaque temp contents cannot be applied locally
		}
		idx, ok := sDimIdx["c:"+strings.ToLower(f.Col)]
		if !ok {
			return nil, false // filter column not in the stored output
		}
		residuals = append(residuals, residual{f: f, col: idx})
	}

	// Measure derivation plans.
	type measurePlan struct {
		kind    byte // 'm' merge, 'a' avg-from-partials
		src     int  // stored column (merge)
		sumCol  int  // avg partials
		cntCol  int
		mergeFn plan.AggFn
	}
	sMeasIdx := map[string]int{}
	for i, m := range s.Measures {
		sMeasIdx[measKey(m)] = len(s.Dims) + i
	}
	plans := make([]measurePlan, len(r.Measures))
	for i, m := range r.Measures {
		if idx, ok := sMeasIdx[measKey(m)]; ok {
			mp := measurePlan{kind: 'm', src: idx}
			switch m.Fn {
			case query.Count, query.Sum:
				mp.mergeFn = plan.AggSum
			case query.Min:
				mp.mergeFn = plan.AggMin
			case query.Max:
				mp.mergeFn = plan.AggMax
			case query.Avg, query.CountD:
				if needRollup {
					return nil, false
				}
				mp.mergeFn = plan.AggMax // unused: passthrough, no rollup
			}
			plans[i] = mp
			continue
		}
		if m.Fn == query.Avg {
			sumIdx, okS := sMeasIdx[measKey(query.Measure{Fn: query.Sum, Col: m.Col})]
			cntIdx, okC := sMeasIdx[measKey(query.Measure{Fn: query.Count, Col: m.Col})]
			if okS && okC {
				plans[i] = measurePlan{kind: 'a', sumCol: sumIdx, cntCol: cntIdx}
				continue
			}
		}
		return nil, false
	}

	// ---- execute the local post-processing ----
	outSchema := make([]plan.ColInfo, 0, len(r.Dims)+len(r.Measures))
	for i, d := range r.Dims {
		src := sres.Schema[dimSrc[i]]
		outSchema = append(outSchema, plan.ColInfo{Name: d.Name(), Type: src.Type, Coll: src.Coll})
	}
	for i, m := range r.Measures {
		var t storage.Type
		if plans[i].kind == 'a' {
			t = storage.TFloat
		} else {
			t = sres.Schema[plans[i].src].Type
		}
		outSchema = append(outSchema, plan.ColInfo{Name: m.Name(), Type: t, Coll: storage.CollBinary})
	}
	out := exec.NewResult(outSchema)

	type acc struct {
		keys []storage.Value
		vals []storage.Value // merge state per measure
		sums []float64       // avg partials
		cnts []int64
		set  []bool
	}
	groups := map[string]*acc{}
	var order []*acc
	var keyBuf []byte

	for row := 0; row < sres.N; row++ {
		keep := true
		for _, rf := range residuals {
			if !filterAccepts(rf.f, sres.Value(row, rf.col), collFor(rf.col)) {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		keyBuf = keyBuf[:0]
		for i := range r.Dims {
			keyBuf = appendValueKey(keyBuf, sres.Value(row, dimSrc[i]), collFor(dimSrc[i]))
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &acc{
				keys: make([]storage.Value, len(r.Dims)),
				vals: make([]storage.Value, len(r.Measures)),
				sums: make([]float64, len(r.Measures)),
				cnts: make([]int64, len(r.Measures)),
				set:  make([]bool, len(r.Measures)),
			}
			for i := range r.Dims {
				g.keys[i] = sres.Value(row, dimSrc[i])
			}
			groups[string(keyBuf)] = g
			order = append(order, g)
		}
		for i := range r.Measures {
			mp := plans[i]
			if mp.kind == 'a' {
				sv, cv := sres.Value(row, mp.sumCol), sres.Value(row, mp.cntCol)
				if !sv.Null {
					g.sums[i] += sv.AsFloat()
				}
				if !cv.Null {
					g.cnts[i] += cv.I
				}
				g.set[i] = g.set[i] || !cv.Null
				continue
			}
			v := sres.Value(row, mp.src)
			if v.Null {
				continue
			}
			if !g.set[i] {
				g.vals[i] = v
				g.set[i] = true
				continue
			}
			switch mp.mergeFn {
			case plan.AggSum:
				if v.Type == storage.TFloat {
					g.vals[i] = storage.FloatValue(g.vals[i].F + v.F)
				} else {
					g.vals[i] = storage.Value{Type: v.Type, I: g.vals[i].I + v.I}
				}
			case plan.AggMin:
				if storage.Compare(v, g.vals[i], collFor(mp.src)) < 0 {
					g.vals[i] = v
				}
			case plan.AggMax:
				if storage.Compare(v, g.vals[i], collFor(mp.src)) > 0 {
					g.vals[i] = v
				}
			}
		}
	}

	for _, g := range order {
		row := make([]storage.Value, 0, len(outSchema))
		row = append(row, g.keys...)
		for i, m := range r.Measures {
			switch {
			case plans[i].kind == 'a':
				if g.cnts[i] == 0 {
					row = append(row, storage.NullValue(storage.TFloat))
				} else {
					row = append(row, storage.FloatValue(g.sums[i]/float64(g.cnts[i])))
				}
			case !g.set[i]:
				if m.Fn == query.Count || m.Fn == query.CountD {
					row = append(row, storage.IntValue(0))
				} else {
					row = append(row, storage.NullValue(outSchema[len(r.Dims)+i].Type))
				}
			default:
				row = append(row, g.vals[i])
			}
		}
		out.AppendRow(row)
	}

	applyOrder(out, r)
	return out, true
}

func dimKey(d query.Dim) string {
	if d.Expr != "" {
		return "e:" + d.Expr
	}
	return "c:" + strings.ToLower(d.Col)
}

func measKey(m query.Measure) string {
	return string(m.Fn) + "(" + strings.ToLower(m.Col) + ")"
}

func collForName(res *exec.Result, col string) storage.Collation {
	if i := res.ColumnIndex(col); i >= 0 {
		return res.Schema[i].Coll
	}
	return storage.CollBinary
}

func filterAccepts(f query.Filter, v storage.Value, coll storage.Collation) bool {
	if v.Null {
		return false
	}
	if f.Kind == query.FilterIn {
		for _, x := range f.In {
			if storage.Equal(x, v, coll) {
				return true
			}
		}
		return false
	}
	if f.LoSet {
		c := storage.Compare(v, f.Lo, coll)
		if c < 0 || (c == 0 && f.LoOpen) {
			return false
		}
	}
	if f.HiSet {
		c := storage.Compare(v, f.Hi, coll)
		if c > 0 || (c == 0 && f.HiOpen) {
			return false
		}
	}
	return true
}

func appendValueKey(buf []byte, v storage.Value, coll storage.Collation) []byte {
	if v.Null {
		return append(buf, 0)
	}
	switch v.Type {
	case storage.TStr:
		buf = append(buf, 3)
		buf = append(buf, coll.Key(v.S)...)
		return append(buf, 0)
	case storage.TFloat:
		buf = append(buf, 2)
		// Order-preserving IEEE-754 encoding: flip the sign bit on
		// non-negatives and complement negatives so the uint64 (and its
		// big-endian bytes) sort like the float. Unlike a fixed-point
		// int64 conversion, this neither overflows for |v| >= ~9.22e9 nor
		// collides floats closer than 1e-9.
		u := math.Float64bits(v.F)
		if v.F == 0 {
			u = 0 // -0.0 and +0.0 group together
		}
		if u&(1<<63) != 0 {
			u = ^u
		} else {
			u |= 1 << 63
		}
		for s := 56; s >= 0; s -= 8 {
			buf = append(buf, byte(u>>uint(s)))
		}
		return buf
	default:
		buf = append(buf, 1)
		u := uint64(v.I)
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(u>>s))
		}
		return buf
	}
}

func applyOrder(res *exec.Result, r *query.Query) {
	if len(r.OrderBy) == 0 {
		return
	}
	cols := make([]int, len(r.OrderBy))
	for i, o := range r.OrderBy {
		cols[i] = res.ColumnIndex(o.Col)
		if cols[i] < 0 {
			return
		}
	}
	idx := make([]int32, res.N)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, o := range r.OrderBy {
			c := storage.Compare(res.Value(int(idx[a]), cols[k]), res.Value(int(idx[b]), cols[k]), res.Schema[cols[k]].Coll)
			if c != 0 {
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	for c, v := range res.Cols {
		res.Cols[c] = v.Gather(idx)
	}
	if r.N > 0 && res.N > r.N {
		res.Truncate(r.N)
	}
}

// Subsumes reports whether a (future) result of s could answer r — the
// dry-run form of Derive used when planning a query batch's cache-hit
// opportunity graph (Sect. 3.3: "edges pointing from qi to qj iff the
// result of qj can be computed from the results of qi ... determined by the
// matching logic of the intelligent query cache").
func Subsumes(s, r *query.Query) bool {
	schema := make([]plan.ColInfo, 0, len(s.Dims)+len(s.Measures))
	for _, d := range s.Dims {
		schema = append(schema, plan.ColInfo{Name: d.Name(), Type: storage.TStr})
	}
	for _, m := range s.Measures {
		schema = append(schema, plan.ColInfo{Name: m.Name(), Type: storage.TFloat})
	}
	_, ok := Derive(s, exec.NewResult(schema), r)
	return ok
}

// AdjustForReuse rewrites the query the processor actually sends so the
// cached result is more useful for future reuse (Sect. 3.2: "the query
// processor might choose to adjust queries before sending"): AVG measures
// are fetched as SUM and COUNT partials so later roll-ups can derive any
// AVG over coarser groupings.
func AdjustForReuse(q *query.Query) *query.Query {
	hasAvg := false
	for _, m := range q.Measures {
		if m.Fn == query.Avg {
			hasAvg = true
			break
		}
	}
	if !hasAvg || q.N > 0 || len(q.Having) > 0 {
		// Top-n and having results are only reusable verbatim; adjusting
		// would change the ranking/threshold column set.
		return q
	}
	adj := q.Clone()
	var out []query.Measure
	have := map[string]bool{}
	for _, m := range adj.Measures {
		if m.Fn != query.Avg {
			out = append(out, m)
			have[measKey(m)] = true
		}
	}
	for _, m := range adj.Measures {
		if m.Fn != query.Avg {
			continue
		}
		s := query.Measure{Fn: query.Sum, Col: m.Col, As: "$sum_" + m.Col}
		c := query.Measure{Fn: query.Count, Col: m.Col, As: "$cnt_" + m.Col}
		if !have[measKey(s)] {
			out = append(out, s)
			have[measKey(s)] = true
		}
		if !have[measKey(c)] {
			out = append(out, c)
			have[measKey(c)] = true
		}
	}
	adj.Measures = out
	// Ordering by a dropped AVG column cannot be pushed remotely; it is
	// re-applied locally by Derive.
	var keep []query.Order
	for _, o := range adj.OrderBy {
		found := false
		for _, c := range adj.OutputColumns() {
			if strings.EqualFold(c, o.Col) {
				found = true
				break
			}
		}
		if found {
			keep = append(keep, o)
		}
	}
	adj.OrderBy = keep
	return adj
}
