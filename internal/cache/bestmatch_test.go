package cache

import (
	"testing"
	"time"

	"vizq/internal/query"
)

func TestBestMatchPicksCheapestEntry(t *testing.T) {
	// Two stored entries both subsume the request; the fine-grained one has
	// far more rows. Best-match must pick the small one.
	broad := baseQuery() // carrier x origin
	broadRes := run(t, broad)
	narrow := broad.Clone()
	narrow.Dims = []query.Dim{{Col: "carrier"}}
	narrowRes := run(t, narrow)
	if narrowRes.N >= broadRes.N {
		t.Fatalf("fixture: narrow (%d) should have fewer rows than broad (%d)", narrowRes.N, broadRes.N)
	}

	req := narrow.Clone() // identical to the narrow entry -> zero post-processing

	opts := DefaultOptions()
	opts.BestMatch = true
	best := NewIntelligentCache(opts)
	// Insert the broad (expensive to post-process) entry FIRST so a
	// first-match policy would pick it.
	best.Put(broad, broadRes, 10*time.Millisecond)
	best.Put(narrow, narrowRes, 10*time.Millisecond)

	// Delete the exact-key entry to force the subsumption path.
	reqVariant := req.Clone()
	reqVariant.Measures = []query.Measure{{Fn: query.Count, As: "n"}}
	got, ok := best.Get(reqVariant)
	if !ok {
		t.Fatal("best-match should hit")
	}
	want := run(t, reqVariant)
	sameResult(t, got, want)

	// First-match behaves the same semantically but may use the broad entry;
	// verify both give correct answers.
	fm := NewIntelligentCache(DefaultOptions())
	fm.Put(broad, broadRes, 10*time.Millisecond)
	fm.Put(narrow, narrowRes, 10*time.Millisecond)
	got2, ok := fm.Get(reqVariant.Clone())
	if !ok {
		t.Fatal("first-match should hit")
	}
	sameResult(t, got2, want)
}
