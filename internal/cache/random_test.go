package cache

import (
	"math/rand"
	"testing"

	"vizq/internal/query"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

// TestDeriveRandomized is the cache's strongest correctness check: generate
// random stored/requested query pairs where the request is constructed to be
// subsumed (drop dimensions, tighten filters, restrict measures), and verify
// that Derive's locally post-processed answer matches executing the request
// directly against the engine.
func TestDeriveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	dims := []string{"carrier", "origin", "dest", "hour"}
	carriers := workload.CarrierCodes(0)
	airports := workload.AirportCodesList(0)

	const trials = 60
	derived := 0
	for trial := 0; trial < trials; trial++ {
		// Random stored query: 2-4 dims, several measures, 0-1 filters.
		nd := 2 + rng.Intn(3)
		perm := rng.Perm(len(dims))[:nd]
		s := &query.Query{View: query.View{Table: "flights"}}
		for _, pi := range perm {
			s.Dims = append(s.Dims, query.Dim{Col: dims[pi]})
		}
		s.Measures = []query.Measure{
			{Fn: query.Count, As: "n"},
			{Fn: query.Sum, Col: "distance", As: "sd"},
			{Fn: query.Min, Col: "delay", As: "mn"},
			{Fn: query.Max, Col: "delay", As: "mx"},
			{Fn: query.Sum, Col: "delay", As: "sdel"},
			{Fn: query.Count, Col: "delay", As: "cdel"},
		}
		if rng.Intn(2) == 0 {
			s.Filters = append(s.Filters,
				query.RangeFilter("distance", storage.IntValue(int64(rng.Intn(500))), storage.IntValue(int64(1500+rng.Intn(1500)))))
		}

		// Derived request: subset of dims, fewer measures, extra filters on
		// stored dims, possibly tightened stored filter, maybe avg from
		// partials, maybe a local top-n.
		r := s.Clone()
		keep := 1 + rng.Intn(len(s.Dims))
		r.Dims = r.Dims[:keep]
		r.Measures = []query.Measure{{Fn: query.Count, As: "n"}}
		if rng.Intn(2) == 0 {
			r.Measures = append(r.Measures, query.Measure{Fn: query.Sum, Col: "distance", As: "sd"})
		}
		if rng.Intn(2) == 0 {
			r.Measures = append(r.Measures, query.Measure{Fn: query.Avg, Col: "delay", As: "avg_delay"})
		}
		switch rng.Intn(3) {
		case 0:
			hasCarrierDim := false
			for _, d := range s.Dims {
				if d.Col == "carrier" {
					hasCarrierDim = true
				}
			}
			if hasCarrierDim {
				pick := []storage.Value{
					storage.StrValue(carriers[rng.Intn(len(carriers))]),
					storage.StrValue(carriers[rng.Intn(len(carriers))]),
				}
				r.Filters = append(r.Filters, query.InFilter("carrier", pick...))
			}
		case 1:
			hasOriginDim := false
			for _, d := range s.Dims {
				if d.Col == "origin" {
					hasOriginDim = true
				}
			}
			if hasOriginDim {
				r.Filters = append(r.Filters, query.InFilter("origin",
					storage.StrValue(airports[rng.Intn(len(airports))]),
					storage.StrValue(airports[rng.Intn(len(airports))]),
					storage.StrValue(airports[rng.Intn(len(airports))])))
			}
		case 2:
			if len(s.Filters) == 1 {
				// Tighten the stored range.
				f := s.Filters[0]
				f.Lo = storage.IntValue(f.Lo.I + 100)
				f.Hi = storage.IntValue(f.Hi.I - 100)
				r.Filters = []query.Filter{f}
			}
		}
		if rng.Intn(3) == 0 {
			r.OrderBy = []query.Order{{Col: "n", Desc: true}}
			r.N = 1 + rng.Intn(5)
		}

		sres := run(t, s)
		got, ok := Derive(s, sres, r)
		if !ok {
			// Some random combinations are legitimately non-derivable (avg
			// requested with roll-up but partials dropped from r, etc.).
			// Verify Subsumes agrees so planning and execution stay in sync.
			if Subsumes(s, r) {
				t.Fatalf("trial %d: Subsumes=true but Derive failed\nS=%s\nR=%s", trial, s.Key(), r.Key())
			}
			continue
		}
		derived++
		want := run(t, r)
		g, w := canon(got), canon(want)
		if len(g) != len(w) {
			t.Fatalf("trial %d: rows %d vs %d\nS=%s\nR=%s", trial, len(g), len(w), s.Key(), r.Key())
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("trial %d row %d:\n got %s\nwant %s\nS=%s\nR=%s", trial, i, g[i], w[i], s.Key(), r.Key())
			}
		}
	}
	if derived < trials/2 {
		t.Errorf("only %d/%d trials derived; generator too restrictive", derived, trials)
	}
	t.Logf("derived %d/%d random subsumption pairs correctly", derived, trials)
}
