package cache

import (
	"encoding/json"
	"os"
	"time"

	"vizq/internal/query"
	"vizq/internal/tde/exec"
)

// Desktop persists query caches to disk "to enable fast response times
// across different sessions with the application" (Sect. 3.2).

type persistedEntry struct {
	Query  *query.Query
	Result *exec.Result
	CostNS int64
}

type persistedCache struct {
	Version int
	Entries []persistedEntry
}

// Save writes the intelligent cache contents to a file.
func (c *IntelligentCache) Save(path string) error {
	entries := c.Entries()
	p := persistedCache{Version: 1, Entries: make([]persistedEntry, 0, len(entries))}
	for _, e := range entries {
		p.Entries = append(p.Entries, persistedEntry{Query: e.Query, Result: e.Result, CostNS: int64(e.Cost)})
	}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load restores persisted entries into the cache; missing files are not an
// error (fresh session).
func (c *IntelligentCache) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var p persistedCache
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	for _, e := range p.Entries {
		if e.Query == nil || e.Result == nil {
			continue
		}
		c.Put(e.Query, e.Result, time.Duration(e.CostNS))
	}
	return nil
}

type persistedLiteral struct {
	Text   string
	Result *exec.Result
	CostNS int64
}

type persistedLiteralCache struct {
	Version int
	Entries []persistedLiteral
}

// Save writes the literal cache to a file (Desktop persists both cache
// levels across sessions).
func (c *LiteralCache) Save(path string) error {
	p := persistedLiteralCache{Version: 1}
	for _, e := range c.snapshot() {
		p.Entries = append(p.Entries, persistedLiteral{Text: e.Text, Result: e.Result, CostNS: int64(e.Cost)})
	}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load restores persisted literal entries; a missing file is a fresh
// session, not an error.
func (c *LiteralCache) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var p persistedLiteralCache
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	for _, e := range p.Entries {
		if e.Result == nil {
			continue
		}
		c.Put(e.Text, e.Result, time.Duration(e.CostNS))
	}
	return nil
}

// EncodeEntry serializes a query+result pair for the distributed layer.
func EncodeEntry(q *query.Query, res *exec.Result, cost time.Duration) ([]byte, error) {
	return json.Marshal(persistedEntry{Query: q, Result: res, CostNS: int64(cost)})
}

// DecodeEntry parses a distributed-layer payload.
func DecodeEntry(data []byte) (*query.Query, *exec.Result, time.Duration, error) {
	var e persistedEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, nil, 0, err
	}
	return e.Query, e.Result, time.Duration(e.CostNS), nil
}
