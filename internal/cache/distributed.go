package cache

import (
	"sync/atomic"
	"time"

	"vizq/internal/kvstore"
	"vizq/internal/obs"
	"vizq/internal/query"
	"vizq/internal/tde/exec"
)

// Distributed-tier metrics, shared process-wide. Errors count wire and
// decode failures separately from misses so an unhealthy shared store is
// distinguishable from a cold one.
var (
	cDistHits   = obs.C("cache.distributed.hits")
	cDistMisses = obs.C("cache.distributed.misses")
	cDistErrors = obs.C("cache.distributed.errors")
)

// Distributed layers a node-local intelligent cache over a shared networked
// key-value store. A lookup tries the local tier (with full subsumption
// matching), then the shared store by exact structural key; shared hits are
// pulled into the local tier so "recent entries are also stored in memory
// on the nodes processing particular queries" (Sect. 3.2).
type Distributed struct {
	Local  *IntelligentCache
	Remote *kvstore.Client
	// TTL bounds shared entries' lifetime.
	TTL time.Duration

	// Counters are atomic: Get runs concurrently on server worker
	// goroutines and a torn increment is a data race under -race.
	remoteHits   atomic.Int64
	remoteMisses atomic.Int64
	remoteErrors atomic.Int64
}

// NewDistributed wires a local cache to a kvstore client.
func NewDistributed(local *IntelligentCache, remote *kvstore.Client, ttl time.Duration) *Distributed {
	return &Distributed{Local: local, Remote: remote, TTL: ttl}
}

// Get answers q from the local tier or the shared store.
func (d *Distributed) Get(q *query.Query) (*exec.Result, bool) {
	if res, ok := d.Local.Get(q); ok {
		return res, true
	}
	if d.Remote == nil {
		return nil, false
	}
	data, ok, err := d.Remote.Get(q.Key())
	if err != nil {
		// A transport failure is not a cold cache: count it separately.
		d.remoteErrors.Add(1)
		cDistErrors.Inc()
		return nil, false
	}
	if !ok {
		d.remoteMisses.Add(1)
		cDistMisses.Inc()
		return nil, false
	}
	sq, sres, cost, err := DecodeEntry(data)
	if err != nil {
		d.remoteErrors.Add(1)
		cDistErrors.Inc()
		return nil, false
	}
	res, ok := Derive(sq, sres, q)
	if !ok {
		// The shared entry exists but cannot answer q: that is a miss, and
		// a result that failed to serve must not warm the local tier.
		d.remoteMisses.Add(1)
		cDistMisses.Inc()
		return nil, false
	}
	d.remoteHits.Add(1)
	cDistHits.Inc()
	// Warm the local tier: future queries on this node can match by
	// subsumption, not only by exact key.
	d.Local.Put(sq, sres, cost)
	return res, true
}

// Put stores into both tiers.
func (d *Distributed) Put(q *query.Query, res *exec.Result, cost time.Duration) {
	d.Local.Put(q, res, cost)
	if d.Remote == nil {
		return
	}
	if data, err := EncodeEntry(q, res, cost); err == nil {
		_ = d.Remote.Set(q.Key(), data, d.TTL) // best-effort: cache, not storage
	}
}

// RemoteStats reports shared-store outcomes for this node. errors counts
// transport and decode failures, kept apart from misses.
func (d *Distributed) RemoteStats() (hits, misses, errors int64) {
	return d.remoteHits.Load(), d.remoteMisses.Load(), d.remoteErrors.Load()
}
