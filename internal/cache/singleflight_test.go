package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vizq/internal/tde/exec"
)

// TestFlightCoalesces checks the core guarantee: N concurrent Do calls for
// one key execute fn exactly once; everyone gets the leader's result and
// all but one report shared=true.
func TestFlightCoalesces(t *testing.T) {
	f := NewFlight()
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	want := exec.NewResult(nil)
	shared0 := cSFShared.Value()

	const n = 8
	results := make([]*exec.Result, n)
	shared := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, sh, err := f.Do(context.Background(), "q", func() (*exec.Result, error) {
				calls.Add(1)
				close(entered)
				<-release
				return want, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i], shared[i] = res, sh
		}(i)
	}
	<-entered // leader is inside fn
	// cSFShared increments only after a caller has joined the in-flight
	// call, so this barrier guarantees all n-1 waiters coalesced before the
	// leader is released.
	for cSFShared.Value()-shared0 < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if results[i] != want {
			t.Errorf("waiter %d got a different result", i)
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d callers report shared=false, want exactly 1", leaders)
	}
	if f.Pending() != 0 {
		t.Errorf("Pending() = %d after completion", f.Pending())
	}
}

// TestFlightErrorDoesNotPoison checks that a failing leader propagates its
// error to every waiter AND deregisters the slot, so the next Do for the
// same key executes fresh instead of replaying the stale failure.
func TestFlightErrorDoesNotPoison(t *testing.T) {
	f := NewFlight()
	boom := errors.New("backend down")
	entered := make(chan struct{})
	release := make(chan struct{})
	shared0 := cSFShared.Value()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = f.Do(context.Background(), "q", func() (*exec.Result, error) {
				close(entered)
				<-release
				return nil, boom
			})
		}(i)
	}
	<-entered
	for cSFShared.Value()-shared0 < 3 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("waiter %d: err = %v, want %v", i, err, boom)
		}
	}

	// The failed slot must be gone: a fresh Do re-executes and succeeds.
	res, sh, err := f.Do(context.Background(), "q", func() (*exec.Result, error) {
		return exec.NewResult(nil), nil
	})
	if err != nil || res == nil || sh {
		t.Fatalf("flight poisoned by prior error: res=%v shared=%v err=%v", res, sh, err)
	}
}

// TestFlightWaiterCancel checks that a waiter whose context is cancelled
// unblocks with ctx.Err() while the leader keeps running to completion.
func TestFlightWaiterCancel(t *testing.T) {
	f := NewFlight()
	entered := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := f.Do(context.Background(), "q", func() (*exec.Result, error) {
			close(entered)
			<-release
			return exec.NewResult(nil), nil
		})
		leaderDone <- err
	}()
	<-entered

	shared0 := cSFShared.Value()
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := f.Do(ctx, "q", func() (*exec.Result, error) {
			t.Error("cancelled waiter must not run fn")
			return nil, nil
		})
		waiterDone <- err
	}()
	for cSFShared.Value() == shared0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Errorf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Errorf("leader err = %v, want nil", err)
	}
}

// TestFlightStress drives many keys and goroutines, with injected errors,
// under -race: per key fn runs at least once and never concurrently with
// itself, and errors never leak into later rounds.
func TestFlightStress(t *testing.T) {
	f := NewFlight()
	const keys = 16
	var inflight [keys]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (w*7 + i) % keys
				_, _, err := f.Do(context.Background(), fmt.Sprintf("k%d", k), func() (*exec.Result, error) {
					if n := inflight[k].Add(1); n != 1 {
						t.Errorf("key %d: %d concurrent executions", k, n)
					}
					defer inflight[k].Add(-1)
					if i%17 == 0 {
						return nil, errors.New("transient")
					}
					return exec.NewResult(nil), nil
				})
				if err != nil && err.Error() != "transient" {
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Pending() != 0 {
		t.Errorf("Pending() = %d after stress", f.Pending())
	}
}

// TestFlightLateWaitersDuringRetryingLeader models a leader whose fn is a
// multi-attempt retry loop: waiters that join between the leader's attempts
// — deep into the flight's lifetime — must still share the leader's final
// error, and the slot must come out clean for the next request.
func TestFlightLateWaitersDuringRetryingLeader(t *testing.T) {
	f := NewFlight()
	boom := errors.New("transport: backend died mid-retry")
	firstAttemptFailed := make(chan struct{})
	release := make(chan struct{})
	shared0 := cSFShared.Value()

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := f.Do(context.Background(), "q", func() (*exec.Result, error) {
			// Attempt 1 fails, then the "backoff" holds the flight open.
			close(firstAttemptFailed)
			<-release
			// Attempt 2 fails too: the whole retry budget is spent.
			return nil, boom
		})
		leaderErr <- err
	}()

	// Waiters arrive only after the leader's first attempt has already
	// failed — mid-retry, not at flight start.
	<-firstAttemptFailed
	const late = 5
	var wg sync.WaitGroup
	errs := make([]error, late)
	for i := 0; i < late; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, shared, err := f.Do(context.Background(), "q", func() (*exec.Result, error) {
				t.Error("late waiter became a leader while the flight was live")
				return nil, nil
			})
			if !shared {
				t.Errorf("late waiter %d did not join the flight", i)
			}
			errs[i] = err
		}(i)
	}
	for cSFShared.Value()-shared0 < late {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if err := <-leaderErr; !errors.Is(err, boom) {
		t.Errorf("leader err = %v, want %v", err, boom)
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("late waiter %d: err = %v, want the leader's error", i, err)
		}
	}
	if f.Pending() != 0 {
		t.Fatalf("flight slot leaked: Pending = %d", f.Pending())
	}
	// The failed slot must not be poisoned: a fresh Do leads and succeeds.
	res, sh, err := f.Do(context.Background(), "q", func() (*exec.Result, error) {
		return exec.NewResult(nil), nil
	})
	if err != nil || res == nil || sh {
		t.Fatalf("flight poisoned after retried failure: res=%v shared=%v err=%v", res, sh, err)
	}
}
