// Cluster-wide admission coordination. The paper's deployment (Sect.
// 4.1.4) runs many Data Servers behind a load balancer; per-node
// admission alone lets a hot source shed on one node while its replicas
// keep queueing, so fleet behavior under overload is inconsistent. Each
// node therefore periodically publishes a compact per-source load digest
// (current AIMD limit, queue depth, EWMA queued wait, shed rate) through
// the kvstore tier — the same distributed layer that shares caches
// across the cluster — and blends what it reads back into local
// decisions:
//
//   - Deadline-shed estimates inflate with average peer queue depth, so
//     a query that would starve anywhere is shed everywhere.
//   - AIMD limits nudge one step toward the fleet mean per observation,
//     converging instead of oscillating per node.
//   - A source shedding on a majority of nodes clamps every node's
//     per-user queue bound, so the hot user's backlog sheds
//     consistently fleet-wide (stale-on-shed still applies downstream).
//
// The digests are advisory, not consensus: every decision stays local
// and correct with zero peers, stale peers are ignored (StaleAfter), and
// when the bus is unreachable — or the coordinator dies — the advisory
// state expires after a short hold and nodes degrade to exactly the
// per-node admission they had before this layer existed.
package sched

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"vizq/internal/obs"
)

// Cluster metrics, shared process-wide.
var (
	cClusterPublish    = obs.C("sched.cluster.publish")
	cClusterPublishErr = obs.C("sched.cluster.publish_errors")
	cClusterListErr    = obs.C("sched.cluster.list_errors")
	cClusterStale      = obs.C("sched.cluster.stale_digests")
	cClusterShed       = obs.C("sched.cluster.shed")
	cClusterConverge   = obs.C("sched.cluster.converge")
	gClusterPeers      = obs.G("sched.cluster.peers")
	gClusterDigestAge  = obs.G("sched.cluster.digest_age_ms")
	gClusterFleetLim   = obs.G("sched.cluster.fleet_limit")
)

// clusterHold is how long peer advisory state stays actionable after the
// last ObservePeers refresh (wall clock). It is deliberately generous —
// several publish intervals — because its job is only to stop a dead
// coordinator from freezing stale fleet pressure into admission forever.
const clusterHold = 10 * time.Second

// Bus is the coordination transport: a shared key-value namespace with
// TTL and prefix listing. internal/kvstore provides both an in-process
// implementation (LocalBus) and a reconnecting networked one (RemoteBus);
// sched depends only on this shape.
type Bus interface {
	Set(key string, val []byte, ttl time.Duration) error
	List(prefix string) (map[string][]byte, error)
}

// Digest is one node's published load summary for one source.
type Digest struct {
	Node          string
	Source        string
	Published     time.Time // publisher's clock; staleness is judged by the reader's clock
	Limit         int       // current AIMD in-flight limit
	QueueDepth    int       // waiters right now
	Inflight      int
	EWMAService   time.Duration
	EWMAWait      time.Duration
	ShedRate      float64 // sheds / (sheds + admissions) over the last publish interval
	ShedTotal     int64   // cumulative, for cross-node consistency accounting
	AdmittedTotal int64
	// Draining advertises a graceful drain in progress: peers' balancers
	// stop steering sessions here before the node goes away.
	Draining bool
}

// pressured reports whether the digest advertises shed pressure: the
// node actively shed this source over its last interval, or its queue
// has reached its concurrency limit (every new arrival there waits at
// least one full drain).
func (d Digest) pressured(shedRate float64) bool {
	return d.ShedRate >= shedRate || (d.Limit > 0 && d.QueueDepth >= d.Limit)
}

// digestVersion guards the wire codec; unknown versions are rejected so
// a mixed-version fleet degrades to local-only instead of misreading.
// v2 appended the flags byte (bit 0: draining).
const digestVersion = 2

// digestFlagDraining is bit 0 of the trailing flags byte.
const digestFlagDraining = 1 << 0

// Encode serializes the digest (version byte, length-prefixed strings,
// little-endian fixed-width numbers).
func (d Digest) Encode() []byte {
	out := make([]byte, 0, 80+len(d.Node)+len(d.Source))
	out = append(out, digestVersion)
	out = appendBusString(out, d.Node)
	out = appendBusString(out, d.Source)
	out = binary.LittleEndian.AppendUint64(out, uint64(d.Published.UnixNano()))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Limit))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.QueueDepth))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Inflight))
	out = binary.LittleEndian.AppendUint64(out, uint64(d.EWMAService))
	out = binary.LittleEndian.AppendUint64(out, uint64(d.EWMAWait))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(d.ShedRate))
	out = binary.LittleEndian.AppendUint64(out, uint64(d.ShedTotal))
	out = binary.LittleEndian.AppendUint64(out, uint64(d.AdmittedTotal))
	var flags byte
	if d.Draining {
		flags |= digestFlagDraining
	}
	out = append(out, flags)
	return out
}

func appendBusString(out []byte, s string) []byte {
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

// DecodeDigest parses an encoded digest, rejecting torn or
// unknown-version payloads.
func DecodeDigest(b []byte) (Digest, error) {
	var d Digest
	if len(b) < 1 {
		return d, errors.New("sched: empty digest")
	}
	if b[0] != digestVersion {
		return d, errors.New("sched: unknown digest version")
	}
	b = b[1:]
	str := func() (string, error) {
		if len(b) < 2 {
			return "", errors.New("sched: torn digest")
		}
		n := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return "", errors.New("sched: torn digest")
		}
		s := string(b[:n])
		b = b[n:]
		return s, nil
	}
	u64 := func() (uint64, error) {
		if len(b) < 8 {
			return 0, errors.New("sched: torn digest")
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, nil
	}
	u32 := func() (uint32, error) {
		if len(b) < 4 {
			return 0, errors.New("sched: torn digest")
		}
		v := binary.LittleEndian.Uint32(b)
		b = b[4:]
		return v, nil
	}
	var err error
	if d.Node, err = str(); err != nil {
		return d, err
	}
	if d.Source, err = str(); err != nil {
		return d, err
	}
	pub, err := u64()
	if err != nil {
		return d, err
	}
	d.Published = time.Unix(0, int64(pub))
	lim, err := u32()
	if err != nil {
		return d, err
	}
	d.Limit = int(lim)
	depth, err := u32()
	if err != nil {
		return d, err
	}
	d.QueueDepth = int(depth)
	inf, err := u32()
	if err != nil {
		return d, err
	}
	d.Inflight = int(inf)
	svc, err := u64()
	if err != nil {
		return d, err
	}
	d.EWMAService = time.Duration(svc)
	wait, err := u64()
	if err != nil {
		return d, err
	}
	d.EWMAWait = time.Duration(wait)
	rate, err := u64()
	if err != nil {
		return d, err
	}
	d.ShedRate = math.Float64frombits(rate)
	shed, err := u64()
	if err != nil {
		return d, err
	}
	d.ShedTotal = int64(shed)
	adm, err := u64()
	if err != nil {
		return d, err
	}
	d.AdmittedTotal = int64(adm)
	if len(b) < 1 {
		return d, errors.New("sched: torn digest")
	}
	d.Draining = b[0]&digestFlagDraining != 0
	return d, nil
}

// ClusterConfig tunes one node's coordinator. Zero fields take the
// defaults noted on them.
type ClusterConfig struct {
	// Node is this node's unique id within the fleet (required).
	Node string
	// Bus is the coordination transport (required).
	Bus Bus
	// Prefix namespaces digest keys on the bus (default "sched/digest").
	// Keys are Prefix/<source>/<node>.
	Prefix string
	// Interval is the publish-and-observe period (default 250ms).
	Interval time.Duration
	// TTL bounds how long a digest outlives its publisher on the bus
	// (default 4*Interval): a crashed node's entry expires on its own.
	TTL time.Duration
	// StaleAfter is the maximum digest age (reader's clock) still blended
	// into decisions (default 3*Interval). Older peers are ignored — a
	// partitioned node must not steer the fleet with frozen state.
	StaleAfter time.Duration
	// Clock supplies publish timestamps and staleness judgments
	// (default time.Now; tests inject a fake).
	Clock func() time.Time
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Prefix == "" {
		c.Prefix = "sched/digest"
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.TTL <= 0 {
		c.TTL = 4 * c.Interval
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 3 * c.Interval
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// clusterSource is one registered scheduler's coordination bookkeeping.
type clusterSource struct {
	sched        *Scheduler
	prevShed     int64
	prevAdmitted int64
	lastSelf     Digest
	lastPeers    []Digest
}

// Coordinator publishes digests for this node's registered sources and
// feeds peer digests back into their schedulers. One per Data Server.
type Coordinator struct {
	cfg ClusterConfig

	mu      sync.Mutex
	sources map[string]*clusterSource
	stop    chan struct{}
	started bool
	wg      sync.WaitGroup
}

// NewCoordinator builds a coordinator from cfg.
func NewCoordinator(cfg ClusterConfig) (*Coordinator, error) {
	if cfg.Node == "" {
		return nil, errors.New("sched: cluster node id required")
	}
	if cfg.Bus == nil {
		return nil, errors.New("sched: cluster bus required")
	}
	cfg = cfg.withDefaults()
	return &Coordinator{cfg: cfg, sources: make(map[string]*clusterSource)}, nil
}

// Register adds a source's scheduler to the publish set.
func (c *Coordinator) Register(source string, s *Scheduler) {
	if s == nil {
		return
	}
	c.mu.Lock()
	c.sources[source] = &clusterSource{sched: s}
	c.mu.Unlock()
}

// Unregister drops a source (Unpublish).
func (c *Coordinator) Unregister(source string) {
	c.mu.Lock()
	delete(c.sources, source)
	c.mu.Unlock()
}

// Node returns this coordinator's node id.
func (c *Coordinator) Node() string { return c.cfg.Node }

// Interval returns the publish period.
func (c *Coordinator) Interval() time.Duration { return c.cfg.Interval }

// LastDigest returns the digest most recently published for source.
func (c *Coordinator) LastDigest(source string) (Digest, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	src, ok := c.sources[source]
	if !ok || src.lastSelf.Node == "" {
		return Digest{}, false
	}
	return src.lastSelf, true
}

// Peers returns the fresh peer digests observed for source at the last
// Step, sorted by node.
func (c *Coordinator) Peers(source string) []Digest {
	c.mu.Lock()
	defer c.mu.Unlock()
	src, ok := c.sources[source]
	if !ok {
		return nil
	}
	out := make([]Digest, len(src.lastPeers))
	copy(out, src.lastPeers)
	return out
}

// Step runs one publish-and-observe round for every registered source at
// time now. The background loop calls it each Interval; tests and the
// cluster harness call it directly with an injected clock.
func (c *Coordinator) Step(now time.Time) {
	c.mu.Lock()
	names := make([]string, 0, len(c.sources))
	for name := range c.sources {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		c.stepSource(name, now)
	}
}

func (c *Coordinator) stepSource(name string, now time.Time) {
	c.mu.Lock()
	src, ok := c.sources[name]
	if !ok {
		c.mu.Unlock()
		return
	}
	st := src.sched.Stats()
	admitted := st.AdmittedInteractive + st.AdmittedBackground
	dShed := st.Shed - src.prevShed
	dAdm := admitted - src.prevAdmitted
	src.prevShed, src.prevAdmitted = st.Shed, admitted
	rate := 0.0
	if dShed+dAdm > 0 {
		rate = float64(dShed) / float64(dShed+dAdm)
	}
	self := Digest{
		Node:          c.cfg.Node,
		Source:        name,
		Published:     now,
		Limit:         st.Limit,
		QueueDepth:    st.Queued,
		Inflight:      st.Inflight,
		EWMAService:   st.EWMAService,
		EWMAWait:      st.EWMAWait,
		ShedRate:      rate,
		ShedTotal:     st.Shed,
		AdmittedTotal: admitted,
		Draining:      st.Draining,
	}
	src.lastSelf = self
	sched := src.sched
	c.mu.Unlock()

	// Bus I/O happens outside the coordinator lock so a stalled link
	// cannot block Register/Unregister.
	keyPrefix := c.cfg.Prefix + "/" + name + "/"
	if err := c.cfg.Bus.Set(keyPrefix+c.cfg.Node, self.Encode(), c.cfg.TTL); err != nil {
		cClusterPublishErr.Inc()
	} else {
		cClusterPublish.Inc()
	}
	vals, err := c.cfg.Bus.List(keyPrefix)
	if err != nil {
		// Unreachable bus: drop to local-only immediately rather than
		// steering on whatever was last seen.
		cClusterListErr.Inc()
		sched.ObservePeers(self, nil)
		c.storePeers(name, nil)
		return
	}
	peers := make([]Digest, 0, len(vals))
	var maxAge time.Duration
	for _, raw := range vals {
		d, derr := DecodeDigest(raw)
		if derr != nil || d.Source != name {
			cClusterStale.Inc()
			continue
		}
		if d.Node == c.cfg.Node {
			continue
		}
		age := now.Sub(d.Published)
		if age < 0 {
			age = 0
		}
		if age > c.cfg.StaleAfter {
			cClusterStale.Inc()
			continue
		}
		if age > maxAge {
			maxAge = age
		}
		peers = append(peers, d)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Node < peers[j].Node })
	gClusterDigestAge.Set(maxAge.Milliseconds())
	sched.ObservePeers(self, peers)
	c.storePeers(name, peers)
}

func (c *Coordinator) storePeers(name string, peers []Digest) {
	c.mu.Lock()
	if src, ok := c.sources[name]; ok {
		src.lastPeers = peers
	}
	c.mu.Unlock()
}

// Start launches the background publish loop. Idempotent.
func (c *Coordinator) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.stop = make(chan struct{})
	stop := c.stop
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Step(c.cfg.Clock())
			}
		}
	}()
}

// Stop halts the background loop and waits for it. Idempotent.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	stop := c.stop
	c.mu.Unlock()
	close(stop)
	c.wg.Wait()
}

// ObservePeers blends the fleet's state into local admission. self is
// the digest just published for this scheduler; peers are the fresh
// digests of every other node serving the same source (may be empty —
// zero peers means local-only admission, exactly the pre-cluster
// behavior). Decisions taken here:
//
//   - Majority shed: count pressured nodes across the fleet (self
//     included). Strictly more than half → the per-user cluster clamp
//     arms (see Admit).
//   - Backlog estimate: remember average peer queue depth for
//     estimateLocked's inflation term.
//   - Limit convergence: nudge the local limit one step toward the
//     fleet's mean limit. One step per observation keeps the governor
//     authoritative — coordination biases it, never overrides it.
func (s *Scheduler) ObservePeers(self Digest, peers []Digest) {
	if s == nil {
		return
	}
	if len(peers) == 0 {
		s.mu.Lock()
		s.peerCount = 0
		s.peerQueueAvg = 0
		s.clusterShed = false
		s.peerExpiry = time.Time{}
		s.mu.Unlock()
		gClusterPeers.Set(0)
		return
	}
	now := time.Now()
	s.mu.Lock()
	fleet := len(peers) + 1
	pressured := 0
	if self.pressured(s.cfg.PressureShedRate) {
		pressured++
	}
	qSum := 0.0
	limSum := s.limit
	for _, d := range peers {
		if d.pressured(s.cfg.PressureShedRate) {
			pressured++
		}
		qSum += float64(d.QueueDepth)
		limSum += d.Limit
	}
	s.peerCount = len(peers)
	s.peerQueueAvg = qSum / float64(len(peers))
	s.clusterShed = pressured*2 > fleet
	s.peerExpiry = now.Add(clusterHold)

	target := int(math.Round(float64(limSum) / float64(fleet)))
	old := s.limit
	switch {
	case s.limit < target && s.limit < s.cfg.MaxLimit:
		s.limit++
	case s.limit > target && s.limit > s.cfg.MinLimit:
		s.limit--
	}
	changed := s.limit != old
	if changed {
		gLimit.Set(int64(s.limit))
	}
	if s.limit > old {
		// A raised limit frees capacity; grant it to queued waiters now
		// rather than on the next completion.
		s.dispatchLocked()
	}
	s.mu.Unlock()
	if changed {
		cClusterConverge.Inc()
	}
	gClusterPeers.Set(int64(len(peers)))
	gClusterFleetLim.Set(int64(target))
}
