package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDrainShedsNewArrivals: a draining scheduler refuses every Admit
// with reason "draining", and errors.Is(err, ErrShed) holds so
// stale-on-shed degraded reads still apply.
func TestDrainShedsNewArrivals(t *testing.T) {
	s := New(Config{Limit: 2})
	s.SetDraining(true)
	if !s.Draining() {
		t.Fatal("Draining() = false after SetDraining(true)")
	}
	_, err := s.Admit(context.Background())
	if err == nil {
		t.Fatal("draining scheduler admitted")
	}
	if !errors.Is(err, ErrShed) {
		t.Fatalf("drain shed does not wrap ErrShed: %v", err)
	}
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "draining" {
		t.Fatalf("shed reason = %v, want draining", err)
	}
	st := s.Stats()
	if st.ShedDraining != 1 || !st.Draining {
		t.Fatalf("stats = %+v, want ShedDraining=1 Draining=true", st)
	}

	// Undrain resumes normal admission.
	s.SetDraining(false)
	tk, err := s.Admit(context.Background())
	if err != nil {
		t.Fatalf("post-undrain admit: %v", err)
	}
	tk.Done()
}

// TestDrainFlushesQueuedWaiters: waiters queued before the drain are
// flushed immediately with the draining shed, not left to burn their
// deadlines waiting on capacity the node is giving up.
func TestDrainFlushesQueuedWaiters(t *testing.T) {
	s := New(Config{Limit: 1})
	hold, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const queued = 4
	errs := make(chan error, queued)
	var started sync.WaitGroup
	for i := 0; i < queued; i++ {
		started.Add(1)
		go func() {
			ctx := WithSession(context.Background(), "s1")
			started.Done()
			_, aerr := s.Admit(ctx)
			errs <- aerr
		}()
	}
	started.Wait()
	waitForQueued(t, s, queued)

	s.SetDraining(true)
	for i := 0; i < queued; i++ {
		select {
		case aerr := <-errs:
			var se *ShedError
			if !errors.As(aerr, &se) || se.Reason != "draining" {
				t.Fatalf("flushed waiter got %v, want draining shed", aerr)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("queued waiter not flushed by drain")
		}
	}
	if st := s.Stats(); st.ShedDraining != queued || st.Queued != 0 {
		t.Fatalf("stats = %+v, want ShedDraining=%d Queued=0", st, queued)
	}
	hold.Done()
}

// TestQuiesceWaitsForInflight: Quiesce returns only after in-flight
// tickets are returned, and honors its context deadline while work is
// still out.
func TestQuiesceWaitsForInflight(t *testing.T) {
	s := New(Config{Limit: 2})
	tk, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s.SetDraining(true)

	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if qerr := s.Quiesce(short); !errors.Is(qerr, context.DeadlineExceeded) {
		t.Fatalf("Quiesce with work in flight = %v, want deadline exceeded", qerr)
	}

	done := make(chan error, 1)
	go func() { done <- s.Quiesce(context.Background()) }()
	tk.Done()
	select {
	case qerr := <-done:
		if qerr != nil {
			t.Fatalf("Quiesce after Done: %v", qerr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Quiesce did not wake when the last ticket returned")
	}
	// An idle scheduler quiesces immediately.
	if qerr := s.Quiesce(context.Background()); qerr != nil {
		t.Fatalf("idle Quiesce: %v", qerr)
	}
}

// TestNilSchedulerDrainOps: drain APIs are nil-safe like the rest of the
// scheduler surface.
func TestNilSchedulerDrainOps(t *testing.T) {
	var s *Scheduler
	s.SetDraining(true)
	if s.Draining() {
		t.Fatal("nil scheduler reports draining")
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatalf("nil Quiesce: %v", err)
	}
}

// TestDigestCarriesDraining: the draining bit survives the wire codec,
// and a v2 digest missing its flags byte is rejected as torn.
func TestDigestCarriesDraining(t *testing.T) {
	d := Digest{Node: "n1", Source: "src", Published: time.Unix(5, 0), Limit: 4, Draining: true}
	got, err := DecodeDigest(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Draining {
		t.Fatal("draining bit lost in round trip")
	}
	d.Draining = false
	if got, err = DecodeDigest(d.Encode()); err != nil || got.Draining {
		t.Fatalf("clear round trip: %v draining=%v", err, got.Draining)
	}
	enc := d.Encode()
	if _, err := DecodeDigest(enc[:len(enc)-1]); err == nil {
		t.Fatal("digest without flags byte decoded")
	}
}

// waitForQueued polls until the scheduler reports n queued waiters.
func waitForQueued(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().Queued >= n {
			return
		}
		time.Sleep(time.Millisecond) //vizlint:allow sleep -- test poll for queue depth
	}
	t.Fatalf("queue never reached %d (at %d)", n, s.Stats().Queued)
}
