// Package sched is the Data Server's admission-control and scheduling
// layer. connection.Pool bounds how many queries one data source executes
// at once, but nothing above it bounds how many queries *wait*: an
// overload burst queues unboundedly inside the pool, every queued query
// eventually burns its full client timeout, and interactive p99 collapses
// to the timeout. Interactive-at-scale systems (Hillview, IDEBench) keep
// tail latency bounded with explicit arrival discipline, not just caching;
// this package supplies it per published source:
//
//   - Priority classes. Queries carry a Class (Interactive vs Background)
//     in their context; dashboard renders outrank extract refreshes.
//   - Hierarchical weighted fair queuing. Waiting queries are queued per
//     user and, within a user, per session. Dequeues go class-priority-
//     first, weighted round-robin across *users* within a class, then
//     weighted round-robin across the user's *sessions* — so a user's
//     share of the source is constant no matter how many dashboards
//     (sessions) they open, and within that share no single session can
//     starve the user's others.
//   - Deadline-aware load shedding. A query whose context deadline will
//     expire before its estimated queue wait (EWMA of recent service
//     times x the work fair queuing will serve ahead of it, divided by
//     the concurrency limit) is rejected immediately with ErrShed instead
//     of timing out slowly.
//   - An adaptive concurrency governor. The in-flight limit starts at the
//     pool's Max and adjusts around it using observed service latency:
//     sustained latency inflation shrinks the limit, headroom with queued
//     demand grows it.
//
// A shed is not a backend failure: it never reaches the circuit breaker,
// and the pipeline may answer it from a stale cache entry (see
// internal/core's degraded-read path).
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vizq/internal/obs"
)

// Scheduler metrics, shared process-wide across schedulers.
var (
	cAdmitted    = obs.C("sched.admitted")
	cAdmittedInt = obs.C("sched.admitted.interactive")
	cAdmittedBg  = obs.C("sched.admitted.background")
	cAdmitDirect = obs.C("sched.admitted.direct")
	cShed        = obs.C("sched.shed")
	cShedFull    = obs.C("sched.shed.queue_full")
	cShedDrain   = obs.C("sched.shed.draining")
	cShedUser    = obs.C("sched.user.shed.queue_full")
	cQueued      = obs.C("sched.queued")
	cCanceled    = obs.C("sched.canceled")
	gInflight    = obs.G("sched.inflight")
	gLimit       = obs.G("sched.limit")
	gDepth       = obs.G("sched.queue.depth")
	gUsers       = obs.G("sched.user.queued")
	mWaitNS      = obs.H("sched.wait.ns")
	mServiceNS   = obs.H("sched.service.ns")
)

// Class is a query's priority class.
type Class uint8

// The two classes: dashboard renders are Interactive, extract refreshes
// and other maintenance traffic are Background. Interactive is the zero
// value — an untagged context is someone waiting on a spinner.
const (
	Interactive Class = iota
	Background
)

// numClasses sizes per-class arrays.
const numClasses = 2

// String names the class.
func (c Class) String() string {
	if c == Background {
		return "background"
	}
	return "interactive"
}

type classKey struct{}
type userKey struct{}
type sessionKey struct{}

// WithClass tags the context with a priority class.
func WithClass(ctx context.Context, c Class) context.Context {
	return context.WithValue(ctx, classKey{}, c)
}

// ClassOf reads the context's class; untagged contexts are Interactive.
func ClassOf(ctx context.Context) Class {
	if c, ok := ctx.Value(classKey{}).(Class); ok {
		return c
	}
	return Interactive
}

// EnsureClass tags the context with c only if no class is set yet, so an
// upstream tag (an extract refresh marking itself Background) survives
// the Data Server's default.
func EnsureClass(ctx context.Context, c Class) context.Context {
	if _, ok := ctx.Value(classKey{}).(Class); ok {
		return ctx
	}
	return WithClass(ctx, c)
}

// WithUser tags the context with a fair-queuing user identity (the human
// behind the sessions — typically the authenticated Data Server user).
// All of a user's sessions share one fair-queuing share.
func WithUser(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, userKey{}, id)
}

// UserOf reads the context's user identity ("" when untagged; all
// untagged queries share one user, which degrades gracefully to the old
// flat per-session fairness).
func UserOf(ctx context.Context) string {
	if u, ok := ctx.Value(userKey{}).(string); ok {
		return u
	}
	return ""
}

// EnsureUser tags the context with id only if no user is set yet.
func EnsureUser(ctx context.Context, id string) context.Context {
	if _, ok := ctx.Value(userKey{}).(string); ok {
		return ctx
	}
	return WithUser(ctx, id)
}

// WithSession tags the context with a fair-queuing session identity
// (typically one client connection or one dashboard).
func WithSession(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, sessionKey{}, id)
}

// SessionOf reads the context's session identity ("" when untagged; all
// untagged queries share one queue).
func SessionOf(ctx context.Context) string {
	if s, ok := ctx.Value(sessionKey{}).(string); ok {
		return s
	}
	return ""
}

// EnsureSession tags the context with id only if no session is set yet.
func EnsureSession(ctx context.Context, id string) context.Context {
	if _, ok := ctx.Value(sessionKey{}).(string); ok {
		return ctx
	}
	return WithSession(ctx, id)
}

// ErrShed is the sentinel all load-shedding rejections wrap: the query was
// refused *before* consuming backend capacity, in microseconds rather than
// after a timeout-length wait. Callers distinguish it from backend errors
// with errors.Is(err, ErrShed).
var ErrShed = errors.New("sched: load shed")

// ShedError carries why a query was shed and what the scheduler estimated.
type ShedError struct {
	Reason  string        // "deadline", "queue-full", "cluster-pressure" or "draining"
	EstWait time.Duration // estimated queue wait at rejection time
	Budget  time.Duration // remaining context budget (0 when none)
}

// Error renders the rejection.
func (e *ShedError) Error() string {
	if e.Reason == "deadline" {
		return fmt.Sprintf("sched: load shed (estimated wait %v exceeds remaining budget %v)", e.EstWait, e.Budget)
	}
	return fmt.Sprintf("sched: load shed (%s)", e.Reason)
}

// Unwrap makes errors.Is(err, ErrShed) hold.
func (e *ShedError) Unwrap() error { return ErrShed }

// Config tunes one source's scheduler. Zero fields take the defaults
// noted on them.
type Config struct {
	// Limit is the initial in-flight bound — normally the source's pool
	// Max, which the Data Server fills in at Publish (default 4).
	Limit int
	// MinLimit / MaxLimit bound the governor's adjustment range around
	// Limit (defaults 1 and 2*Limit).
	MinLimit int
	MaxLimit int
	// MaxQueue bounds the total number of waiting queries per source
	// (default 128). Beyond it every arrival is shed.
	MaxQueue int
	// MaxUserQueue bounds one user's total waiting queries summed across
	// all their sessions (default 64): a user opening ten dashboards
	// cannot buy ten sessions' worth of queue either.
	MaxUserQueue int
	// MaxSessionQueue bounds one session's waiting queries (default 16):
	// a chatty dashboard sheds before it can monopolize the queue.
	MaxSessionQueue int
	// DeadlineSafety is the fraction of a query's remaining deadline
	// budget its estimated wait may consume before it is shed
	// (default 0.85). Lower values shed earlier and keep admitted-query
	// latency further under the deadline.
	DeadlineSafety float64
	// UserWeights maps user ids to fair-queuing weights (default 1 each):
	// a user with weight 2 gets two dequeues per round-robin turn across
	// users.
	UserWeights map[string]int
	// Weights maps session ids to fair-queuing weights (default 1 each)
	// applied *within* the session's user: a session with weight 2 gets
	// two dequeues per turn of its user's session round-robin.
	Weights map[string]int
	// Tolerance is the governor's latency slack: the limit shrinks when
	// the service EWMA exceeds Tolerance x the observed latency floor
	// (default 2.0).
	Tolerance float64
	// AdjustEvery is how many completions pass between governor steps
	// (default 8).
	AdjustEvery int
	// PeerBacklogWeight scales how strongly peer queue depth (from cluster
	// digests) inflates local deadline-shed estimates (default 0.25; set
	// negative to disable). With W = PeerBacklogWeight and Q the average
	// peer queue depth, the local estimate is multiplied by
	// 1 + W*Q/limit — fleet-wide backlog sheds deadline-bound queries a
	// little earlier everywhere.
	PeerBacklogWeight float64
	// ClusterUserQueue is the per-user queue bound applied while a
	// majority of the fleet reports shed pressure for this source
	// (default 1). Clamping the *user* bound — not the source bound —
	// sheds the hot user's backlog consistently on every node while
	// light users keep queueing normally.
	ClusterUserQueue int
	// PressureShedRate is the shed-rate threshold above which a peer's
	// digest counts as "pressured" for the majority-shed rule
	// (default 0.05).
	PressureShedRate float64
}

func (c Config) withDefaults() Config {
	if c.Limit <= 0 {
		c.Limit = 4
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 2 * c.Limit
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 128
	}
	if c.MaxUserQueue <= 0 {
		c.MaxUserQueue = 64
	}
	if c.MaxSessionQueue <= 0 {
		c.MaxSessionQueue = 16
	}
	if c.DeadlineSafety <= 0 || c.DeadlineSafety > 1 {
		c.DeadlineSafety = 0.85
	}
	if c.Tolerance <= 1 {
		c.Tolerance = 2.0
	}
	if c.AdjustEvery <= 0 {
		c.AdjustEvery = 8
	}
	if c.PeerBacklogWeight == 0 {
		c.PeerBacklogWeight = 0.25
	} else if c.PeerBacklogWeight < 0 {
		c.PeerBacklogWeight = 0
	}
	if c.ClusterUserQueue <= 0 {
		c.ClusterUserQueue = 1
	}
	if c.PressureShedRate <= 0 {
		c.PressureShedRate = 0.05
	}
	return c
}

// Stats snapshots one scheduler's activity.
type Stats struct {
	AdmittedInteractive int64
	AdmittedBackground  int64
	// AdmittedDirect counts uncontended fast-path admissions (no queue
	// wait at all); they are excluded from the queue-wait histogram.
	AdmittedDirect int64
	Shed           int64
	ShedDeadline   int64
	ShedQueueFull  int64
	// ShedUserQueueFull counts queue-full sheds caused by the per-user
	// bound specifically (the source queue still had room).
	ShedUserQueueFull int64
	Canceled          int64 // left the queue, or returned a granted slot, on context cancellation
	Completed         int64 // ran to completion and returned the slot via Done
	Inflight          int
	Queued            int
	// QueuedUsers is the number of distinct user queues currently holding
	// waiters (per class; a user waiting in both classes counts twice).
	QueuedUsers int
	Limit       int
	// EWMAService is the current service-time estimate admission math uses.
	EWMAService time.Duration
	// ShedClusterPressure counts sheds forced by the fleet-majority rule:
	// this node still had queue room, but the source was shedding on a
	// majority of nodes.
	ShedClusterPressure int64
	// ShedDraining counts sheds caused by a graceful drain: arrivals
	// refused while draining plus queued waiters flushed when the drain
	// began. Stale-on-shed still applies to them downstream.
	ShedDraining int64
	// Draining reports whether the scheduler is refusing new admissions;
	// it is advertised in cluster digests so peers stop steering here.
	Draining bool
	// EWMAWait is the smoothed queue wait published in cluster digests.
	EWMAWait time.Duration
	// ClusterPeers is the number of fresh peer digests currently blended
	// into admission decisions (0 = running local-only).
	ClusterPeers int
	// ClusterShedActive reports whether the fleet-majority shed clamp is
	// in force right now.
	ClusterShedActive bool
}

// waiter is one queued admission request.
type waiter struct {
	class   Class
	ready   chan struct{}
	granted bool       // guarded by Scheduler.mu
	shed    *ShedError // set (before ready closes) when flushed by a drain
}

// sessionQueue is one session's FIFO of waiters within a user.
type sessionQueue struct {
	id     string
	items  []*waiter
	weight int
	credit int // remaining dequeues this turn of the user's session ring
}

// userQueue is one user's set of session queues within a class; dequeues
// round-robin across the user's sessions.
type userQueue struct {
	id       string
	sessions map[string]*sessionQueue
	ring     []*sessionQueue // visit order; empty sessions are removed
	cursor   int
	waiting  int // queued across all of this user's sessions
	weight   int
	credit   int // remaining dequeues this turn of the class's user ring
}

// classQueue weighted-round-robins across the class's users.
type classQueue struct {
	users   map[string]*userQueue
	ring    []*userQueue // visit order; empty users are removed
	cursor  int
	waiting int
}

// Scheduler is one source's admission controller. Safe for concurrent use.
type Scheduler struct {
	cfg Config

	mu          sync.Mutex
	inflight    int
	limit       int
	classes     [numClasses]classQueue
	waiting     int
	queuedUsers int // user queues holding waiters, across classes

	// ewmaNS estimates service time; floorNS tracks the lowest smoothed
	// latency seen (slowly decaying upward) as the governor's baseline.
	ewmaNS      float64
	floorNS     float64
	sinceAdjust int

	// ewmaWaitNS smooths observed queue waits for the cluster digest.
	ewmaWaitNS float64

	// draining refuses new admissions (graceful drain); quiesce is a
	// lazily-created broadcast channel closed when inflight and waiting
	// both reach zero, for Quiesce waiters.
	draining bool
	quiesce  chan struct{}

	// Cluster advisory state, refreshed by ObservePeers. It expires
	// clusterHold after the last refresh (wall clock): a dead coordinator
	// or unreachable bus must decay the fleet's influence back to
	// local-only admission, never freeze it in.
	peerCount    int
	peerQueueAvg float64
	clusterShed  bool
	peerExpiry   time.Time

	stats Stats
}

// New builds a scheduler from cfg.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, limit: cfg.Limit}
	for i := range s.classes {
		s.classes[i].users = make(map[string]*userQueue)
	}
	return s
}

// Stats snapshots counters. Nil-safe (no scheduler = zero stats).
func (s *Scheduler) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Inflight = s.inflight
	st.Queued = s.waiting
	st.QueuedUsers = s.queuedUsers
	st.Limit = s.limit
	st.EWMAService = time.Duration(s.ewmaNS)
	st.EWMAWait = time.Duration(s.ewmaWaitNS)
	st.Draining = s.draining
	if s.clusterFreshLocked(time.Now()) {
		st.ClusterPeers = s.peerCount
		st.ClusterShedActive = s.clusterShed
	}
	return st
}

// Limit reads the governor's current in-flight limit.
func (s *Scheduler) Limit() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limit
}

// Ticket is one admitted query's capacity slot. Done returns it; every
// admitted ticket must be Done exactly once.
type Ticket struct {
	s     *Scheduler
	start time.Time
	done  bool
}

// Done releases the slot, feeding the observed service time to the wait
// estimator and the governor. Nil-safe and idempotent.
func (t *Ticket) Done() {
	if t == nil || t.done {
		return
	}
	t.done = true
	t.s.finish(time.Since(t.start), true)
}

// cancel releases the slot without a latency observation and without
// counting a completion (the caller's context died between grant and use;
// the query never ran).
func (t *Ticket) cancel() {
	if t == nil || t.done {
		return
	}
	t.done = true
	t.s.finish(0, false)
}

// Admit asks for capacity to run one query. It returns immediately when
// the source has headroom, queues under the context's class, user and
// session when it does not, and sheds — returning an error wrapping
// ErrShed within microseconds — when a queue bound (source, user or
// session) is hit or the context's deadline would expire before the
// estimated queue wait. A nil scheduler admits everything with a nil
// Ticket (Done on a nil Ticket is a no-op).
func (s *Scheduler) Admit(ctx context.Context) (*Ticket, error) {
	if s == nil {
		return nil, nil
	}
	_, sp := obs.StartSpan(ctx, obs.SpanSchedAdmit)
	defer sp.Finish()
	class := ClassOf(ctx)
	user := UserOf(ctx)
	sess := SessionOf(ctx)
	sp.Annotate("class", class.String())
	if user != "" {
		sp.Annotate("user", user)
	}
	start := time.Now()

	s.mu.Lock()
	// A draining scheduler admits nothing: the node is about to go away,
	// so the query belongs on a peer (the balancer sees the draining bit
	// via the digest) or a stale cache entry (ErrShed-wrapping errors get
	// degraded reads downstream).
	if s.draining {
		s.stats.Shed++
		s.stats.ShedDraining++
		s.mu.Unlock()
		cShed.Inc()
		cShedDrain.Inc()
		sp.Annotate("via", "shed-draining")
		return nil, &ShedError{Reason: "draining"}
	}
	// Fast path: capacity free and nobody of same-or-higher priority
	// waiting (admitting past waiters would reorder the fair queue).
	// Direct admissions have no queue wait by definition: they are
	// counted, not observed, so the wait histogram only describes
	// queries that actually queued.
	if s.inflight < s.limit && !s.queuedAtOrAbove(class) {
		s.admitLocked(class)
		s.stats.AdmittedDirect++
		s.mu.Unlock()
		sp.Annotate("via", "direct")
		cAdmitDirect.Inc()
		return &Ticket{s: s, start: time.Now()}, nil
	}

	// Deadline-aware shedding: reject now if the estimated wait consumes
	// the context's remaining budget. The estimate is fair-share aware:
	// it counts the work hierarchical WRR would actually serve ahead of
	// this arrival, not the whole backlog.
	est := s.estimateLocked(class, user)
	var budget time.Duration
	if deadline, ok := ctx.Deadline(); ok {
		budget = time.Until(deadline)
		if float64(est) > s.cfg.DeadlineSafety*float64(budget) {
			s.stats.Shed++
			s.stats.ShedDeadline++
			s.mu.Unlock()
			cShed.Inc()
			sp.Annotate("via", "shed-deadline")
			return nil, &ShedError{Reason: "deadline", EstWait: est, Budget: budget}
		}
	}

	// Bounded queues at every level: per source, per user, per session.
	// While a majority of the fleet reports shed pressure for this source,
	// the per-user bound clamps to ClusterUserQueue: the hot user's
	// backlog sheds here too — even though this node alone still has
	// queue room — so overload behavior is consistent fleet-wide.
	userCap := s.cfg.MaxUserQueue
	clusterClamp := s.clusterShedActiveLocked(start)
	if clusterClamp {
		userCap = s.cfg.ClusterUserQueue
	}
	cq := &s.classes[class]
	uq := cq.users[user]
	var sq *sessionQueue
	if uq != nil {
		sq = uq.sessions[sess]
	}
	userFull := uq != nil && uq.waiting >= userCap
	if s.waiting >= s.cfg.MaxQueue || userFull ||
		(sq != nil && len(sq.items) >= s.cfg.MaxSessionQueue) {
		s.stats.Shed++
		if clusterClamp && userFull && uq.waiting < s.cfg.MaxUserQueue {
			// Only the cluster clamp rejected this query; locally it would
			// still have queued.
			s.stats.ShedClusterPressure++
			s.mu.Unlock()
			cShed.Inc()
			cClusterShed.Inc()
			sp.Annotate("via", "shed-cluster-pressure")
			return nil, &ShedError{Reason: "cluster-pressure", EstWait: est, Budget: budget}
		}
		s.stats.ShedQueueFull++
		if userFull && s.waiting < s.cfg.MaxQueue {
			s.stats.ShedUserQueueFull++
		}
		s.mu.Unlock()
		cShed.Inc()
		cShedFull.Inc()
		if userFull {
			cShedUser.Inc()
		}
		sp.Annotate("via", "shed-queue-full")
		return nil, &ShedError{Reason: "queue-full", EstWait: est, Budget: budget}
	}
	w := s.enqueueLocked(class, user, sess)
	s.mu.Unlock()
	cQueued.Inc()
	sp.Annotate("via", "queue")

	select {
	case <-w.ready:
		if w.shed != nil {
			// The drain flushed this waiter: ready closed with a shed
			// verdict instead of a grant (shed stats were counted by the
			// flush; the close of w.ready orders the write of w.shed).
			sp.Annotate("via", "shed-draining")
			return nil, w.shed
		}
		wait := time.Since(start)
		mWaitNS.ObserveDuration(wait)
		s.mu.Lock()
		s.observeWaitLocked(wait)
		s.mu.Unlock()
		return &Ticket{s: s, start: time.Now()}, nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.shed != nil {
			// The drain flush raced the cancellation; the waiter already
			// left the queue and was counted as shed.
			s.mu.Unlock()
			sp.Annotate("via", "shed-draining")
			return nil, w.shed
		}
		if w.granted {
			// The grant raced the cancellation: the slot is ours and must
			// go back, but the query never ran — it counts as a
			// cancellation, never as a completion, and nothing is observed.
			s.mu.Unlock()
			(&Ticket{s: s}).cancel()
			sp.Annotate("via", "canceled-after-grant")
			return nil, ctx.Err()
		}
		s.removeLocked(class, user, sess, w)
		s.stats.Canceled++
		s.notifyQuiesceLocked()
		s.mu.Unlock()
		cCanceled.Inc()
		sp.Annotate("via", "canceled")
		return nil, ctx.Err()
	}
}

// SetDraining toggles drain mode. Turning it on flushes every queued
// waiter with a ShedError reason "draining" (they would otherwise wait
// on capacity this node intends to give up) and makes every subsequent
// Admit shed the same way; in-flight work keeps its slots — drain bounds
// *new* work, Quiesce waits out the old. Turning it off resumes normal
// admission. Nil-safe.
func (s *Scheduler) SetDraining(on bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.draining == on {
		s.mu.Unlock()
		return
	}
	s.draining = on
	var flushed []*waiter
	if on {
		// nextLocked maintains every queue invariant (counts, rings,
		// gauges), so draining through it flushes in fair order.
		for {
			w := s.nextLocked()
			if w == nil {
				break
			}
			w.shed = &ShedError{Reason: "draining"}
			flushed = append(flushed, w)
			s.stats.Shed++
			s.stats.ShedDraining++
		}
		s.notifyQuiesceLocked()
	}
	s.mu.Unlock()
	for _, w := range flushed {
		close(w.ready)
	}
	cShed.Add(int64(len(flushed)))
	cShedDrain.Add(int64(len(flushed)))
}

// Draining reports whether the scheduler is refusing new admissions.
// Nil-safe.
func (s *Scheduler) Draining() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Quiesce blocks until the scheduler holds no work — nothing in flight
// and nothing queued — or ctx expires. It is the drain deadline's wait
// primitive: call SetDraining(true) first so the waiting count only
// falls. Nil-safe.
func (s *Scheduler) Quiesce(ctx context.Context) error {
	if s == nil {
		return nil
	}
	for {
		s.mu.Lock()
		if s.inflight == 0 && s.waiting == 0 {
			s.mu.Unlock()
			return nil
		}
		if s.quiesce == nil {
			s.quiesce = make(chan struct{})
		}
		ch := s.quiesce
		s.mu.Unlock()
		select {
		case <-ch:
			// Re-check from the top: a grant between the notify and this
			// wake can raise inflight again only via dispatch of queued
			// work, which the zero check catches.
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// notifyQuiesceLocked wakes Quiesce waiters when the scheduler goes
// idle. Callers hold s.mu.
func (s *Scheduler) notifyQuiesceLocked() {
	if s.quiesce != nil && s.inflight == 0 && s.waiting == 0 {
		close(s.quiesce)
		s.quiesce = nil
	}
}

// admitLocked counts one admission.
func (s *Scheduler) admitLocked(class Class) {
	s.inflight++
	gInflight.Set(int64(s.inflight))
	cAdmitted.Inc()
	if class == Background {
		s.stats.AdmittedBackground++
		cAdmittedBg.Inc()
	} else {
		s.stats.AdmittedInteractive++
		cAdmittedInt.Inc()
	}
}

// queuedAtOrAbove reports whether any waiter of class c or higher priority
// (lower value) is queued.
func (s *Scheduler) queuedAtOrAbove(c Class) bool {
	for i := Class(0); i <= c; i++ {
		if s.classes[i].waiting > 0 {
			return true
		}
	}
	return false
}

// estimateLocked predicts how long a new arrival of class c from the
// given user would wait. Everything in flight and everything queued in
// higher-priority classes is served first. Within the arrival's own
// class, hierarchical WRR does NOT serve the whole backlog ahead of it:
// each other user only gets its weight-proportional share of the rounds
// it takes to drain this user's own queue (plus the new arrival), so a
// light user's estimate stays small even behind a greedy user's deep
// backlog. Everything ahead costs one EWMA service time, drained
// limit-wide, plus the arrival's own service time. An unwarmed estimator
// (no completions yet) returns 0 and admission falls back to the queue
// bounds alone.
func (s *Scheduler) estimateLocked(c Class, user string) time.Duration {
	if s.ewmaNS <= 0 {
		return 0
	}
	ahead := s.inflight
	for i := Class(0); i < c; i++ {
		ahead += s.classes[i].waiting
	}
	cq := &s.classes[c]
	own := 0
	if uq := cq.users[user]; uq != nil {
		own = uq.waiting
	}
	ahead += own
	// Rounds of the user WRR needed to reach this arrival at the back of
	// its user's queue, scaled by each competitor's weight.
	turns := float64(own+1) / float64(s.userWeight(user))
	for id, uq := range cq.users {
		if id == user {
			continue
		}
		share := int(turns * float64(uq.weight))
		if share > uq.waiting {
			share = uq.waiting
		}
		ahead += share
	}
	limit := s.limit
	if limit < 1 {
		limit = 1
	}
	est := s.ewmaNS * (float64(ahead)/float64(limit) + 1)
	// Fleet-backlog blending: peers queueing deeply for this source mean
	// the fleet is behind even when this node looks calm — a query sent
	// anywhere waits longer than the local backlog suggests, so inflate
	// the estimate and shed deadline-bound arrivals a little earlier.
	if s.peerQueueAvg > 0 && s.clusterFreshLocked(time.Now()) {
		est *= 1 + s.cfg.PeerBacklogWeight*s.peerQueueAvg/float64(limit)
	}
	return time.Duration(est)
}

// observeWaitLocked smooths one observed queue wait into the digest's
// wait estimate.
func (s *Scheduler) observeWaitLocked(d time.Duration) {
	const alpha = 0.2
	ns := float64(d.Nanoseconds())
	if s.ewmaWaitNS == 0 {
		s.ewmaWaitNS = ns
	} else {
		s.ewmaWaitNS = (1-alpha)*s.ewmaWaitNS + alpha*ns
	}
}

// clusterFreshLocked reports whether peer advisory state is recent enough
// to act on; past the hold window admission falls back to local-only.
func (s *Scheduler) clusterFreshLocked(now time.Time) bool {
	return s.peerCount > 0 && now.Before(s.peerExpiry)
}

// clusterShedActiveLocked reports whether the fleet-majority shed clamp
// applies right now.
func (s *Scheduler) clusterShedActiveLocked(now time.Time) bool {
	return s.clusterShed && s.clusterFreshLocked(now)
}

func (s *Scheduler) userWeight(id string) int {
	if w, ok := s.cfg.UserWeights[id]; ok && w > 0 {
		return w
	}
	return 1
}

func (s *Scheduler) sessionWeight(id string) int {
	if w, ok := s.cfg.Weights[id]; ok && w > 0 {
		return w
	}
	return 1
}

// enqueueLocked appends a new waiter under (class, user, session),
// creating the user and session queues on first use. Every enqueue must
// be balanced by a dequeue (nextLocked) or a removal (removeLocked) —
// the vizlint release check pins this on the caller's paths.
func (s *Scheduler) enqueueLocked(class Class, user, sess string) *waiter {
	cq := &s.classes[class]
	uq := cq.users[user]
	if uq == nil {
		uq = &userQueue{
			id:       user,
			sessions: make(map[string]*sessionQueue),
			weight:   s.userWeight(user),
		}
		cq.users[user] = uq
		cq.ring = append(cq.ring, uq)
		s.queuedUsers++
		gUsers.Set(int64(s.queuedUsers))
	}
	sq := uq.sessions[sess]
	if sq == nil {
		sq = &sessionQueue{id: sess, weight: s.sessionWeight(sess)}
		uq.sessions[sess] = sq
		uq.ring = append(uq.ring, sq)
	}
	w := &waiter{class: class, ready: make(chan struct{})}
	sq.items = append(sq.items, w)
	uq.waiting++
	cq.waiting++
	s.waiting++
	gDepth.Set(int64(s.waiting))
	return w
}

// removeLocked drops a canceled waiter from its session queue.
func (s *Scheduler) removeLocked(class Class, user, sess string, w *waiter) {
	cq := &s.classes[class]
	uq := cq.users[user]
	if uq == nil {
		return
	}
	sq := uq.sessions[sess]
	if sq == nil {
		return
	}
	for i, x := range sq.items {
		if x == w {
			sq.items = append(sq.items[:i], sq.items[i+1:]...)
			uq.waiting--
			cq.waiting--
			s.waiting--
			gDepth.Set(int64(s.waiting))
			break
		}
	}
	if len(sq.items) == 0 {
		s.dropSessionLocked(uq, sq)
	}
	if uq.waiting == 0 {
		s.dropUserLocked(cq, uq)
	}
}

// dropSessionLocked removes an empty session from its user's map and ring.
func (s *Scheduler) dropSessionLocked(uq *userQueue, sq *sessionQueue) {
	delete(uq.sessions, sq.id)
	for i, x := range uq.ring {
		if x == sq {
			uq.ring = append(uq.ring[:i], uq.ring[i+1:]...)
			if uq.cursor > i {
				uq.cursor--
			}
			if len(uq.ring) > 0 {
				uq.cursor %= len(uq.ring)
			} else {
				uq.cursor = 0
			}
			return
		}
	}
}

// dropUserLocked removes an empty user from the class map and ring.
func (s *Scheduler) dropUserLocked(cq *classQueue, uq *userQueue) {
	if _, ok := cq.users[uq.id]; !ok {
		return
	}
	delete(cq.users, uq.id)
	s.queuedUsers--
	gUsers.Set(int64(s.queuedUsers))
	for i, x := range cq.ring {
		if x == uq {
			cq.ring = append(cq.ring[:i], cq.ring[i+1:]...)
			if cq.cursor > i {
				cq.cursor--
			}
			if len(cq.ring) > 0 {
				cq.cursor %= len(cq.ring)
			} else {
				cq.cursor = 0
			}
			return
		}
	}
}

// finish returns one slot. A completed query (Done) feeds the estimator
// and the governor and counts toward Completed; a canceled grant only
// returns capacity and counts toward Canceled — it never ran, so it must
// not inflate the completion count or the service estimate. Either way,
// freed capacity is granted to queued waiters.
func (s *Scheduler) finish(d time.Duration, completed bool) {
	s.mu.Lock()
	s.inflight--
	if completed {
		s.stats.Completed++
		mServiceNS.ObserveDuration(d)
		const alpha = 0.2
		ns := float64(d.Nanoseconds())
		if s.ewmaNS == 0 {
			s.ewmaNS = ns
		} else {
			s.ewmaNS = (1-alpha)*s.ewmaNS + alpha*ns
		}
		// The floor chases the best smoothed latency seen, decaying upward
		// slowly so a legitimately slower regime resets the baseline.
		if s.floorNS == 0 || s.ewmaNS < s.floorNS {
			s.floorNS = s.ewmaNS
		} else {
			s.floorNS *= 1.002
		}
		s.governLocked()
	} else {
		s.stats.Canceled++
	}
	s.dispatchLocked()
	gInflight.Set(int64(s.inflight))
	s.notifyQuiesceLocked()
	s.mu.Unlock()
	if !completed {
		cCanceled.Inc()
	}
}

// governLocked adapts the in-flight limit around the configured base:
// additive decrease when the service EWMA inflates past Tolerance x the
// latency floor (the backend is congesting — more concurrency would only
// queue inside it), additive increase when latency is healthy and demand
// is queued. Steps at most once per AdjustEvery completions.
func (s *Scheduler) governLocked() {
	s.sinceAdjust++
	if s.sinceAdjust < s.cfg.AdjustEvery {
		return
	}
	s.sinceAdjust = 0
	switch {
	case s.ewmaNS > s.floorNS*s.cfg.Tolerance && s.limit > s.cfg.MinLimit:
		s.limit--
	case s.waiting > 0 && s.ewmaNS <= s.floorNS*s.cfg.Tolerance && s.limit < s.cfg.MaxLimit:
		s.limit++
	}
	gLimit.Set(int64(s.limit))
}

// dispatchLocked grants freed capacity: Interactive before Background,
// weighted round-robin across users within a class, weighted round-robin
// across sessions within a user.
func (s *Scheduler) dispatchLocked() {
	for s.inflight < s.limit {
		w := s.nextLocked()
		if w == nil {
			return
		}
		w.granted = true
		s.admitLocked(w.class)
		close(w.ready)
	}
}

// nextLocked pops the next waiter in scheduling order, or nil. The outer
// loop is the user-level WRR; one dequeue charges one unit of the user's
// credit and one unit of the chosen session's credit.
func (s *Scheduler) nextLocked() *waiter {
	for ci := range s.classes {
		cq := &s.classes[ci]
		if cq.waiting == 0 {
			continue
		}
		for range cq.ring { // at most one full ring scan finds a waiter
			uq := cq.ring[cq.cursor]
			if uq.credit <= 0 {
				uq.credit = uq.weight
			}
			if uq.waiting == 0 {
				// Defensive: empty users are dropped eagerly, but keep the
				// scan robust if one slips through.
				s.dropUserLocked(cq, uq)
				if len(cq.ring) == 0 {
					break
				}
				continue
			}
			w := s.popSessionLocked(cq, uq)
			if w == nil {
				// The user's session ring was all-empty despite a positive
				// waiting count; resync by dropping it.
				s.dropUserLocked(cq, uq)
				if len(cq.ring) == 0 {
					break
				}
				continue
			}
			uq.credit--
			if uq.waiting == 0 {
				s.dropUserLocked(cq, uq)
			} else if uq.credit <= 0 {
				cq.cursor = (cq.cursor + 1) % len(cq.ring)
			}
			return w
		}
	}
	return nil
}

// popSessionLocked dequeues one waiter from the user's session ring in
// weighted round-robin order, or nil when every session is empty.
func (s *Scheduler) popSessionLocked(cq *classQueue, uq *userQueue) *waiter {
	for range uq.ring {
		sq := uq.ring[uq.cursor]
		if sq.credit <= 0 {
			sq.credit = sq.weight
		}
		if len(sq.items) == 0 {
			// Defensive: empty sessions are dropped eagerly, but keep the
			// scan robust if one slips through.
			s.dropSessionLocked(uq, sq)
			if len(uq.ring) == 0 {
				return nil
			}
			continue
		}
		w := sq.items[0]
		sq.items = sq.items[1:]
		sq.credit--
		uq.waiting--
		cq.waiting--
		s.waiting--
		gDepth.Set(int64(s.waiting))
		if len(sq.items) == 0 {
			s.dropSessionLocked(uq, sq)
		} else if sq.credit <= 0 {
			uq.cursor = (uq.cursor + 1) % len(uq.ring)
		}
		return w
	}
	return nil
}
