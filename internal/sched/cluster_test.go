package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// memBus is an in-memory Bus with injectable failures for coordinator
// tests (kvstore.LocalBus is the production equivalent; sched tests must
// not import kvstore).
type memBus struct {
	mu      sync.Mutex
	entries map[string][]byte
	setErr  error
	listErr error
}

func newMemBus() *memBus { return &memBus{entries: make(map[string][]byte)} }

func (b *memBus) Set(key string, val []byte, _ time.Duration) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.setErr != nil {
		return b.setErr
	}
	b.entries[key] = val
	return nil
}

func (b *memBus) List(prefix string) (map[string][]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.listErr != nil {
		return nil, b.listErr
	}
	out := make(map[string][]byte)
	for k, v := range b.entries {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out[k] = v
		}
	}
	return out, nil
}

func (b *memBus) fail(set, list error) {
	b.mu.Lock()
	b.setErr, b.listErr = set, list
	b.mu.Unlock()
}

func TestDigestCodecRoundTrip(t *testing.T) {
	d := Digest{
		Node:          "node-b",
		Source:        "sales",
		Published:     time.Unix(0, 1723100000000000000),
		Limit:         7,
		QueueDepth:    12,
		Inflight:      7,
		EWMAService:   83 * time.Millisecond,
		EWMAWait:      210 * time.Millisecond,
		ShedRate:      0.375,
		ShedTotal:     41,
		AdmittedTotal: 1003,
	}
	got, err := DecodeDigest(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Published.Equal(d.Published) {
		t.Fatalf("published %v != %v", got.Published, d.Published)
	}
	got.Published = d.Published
	if got != d {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
}

func TestDigestDecodeRejectsTornAndUnknownVersion(t *testing.T) {
	enc := Digest{Node: "a", Source: "s"}.Encode()
	if _, err := DecodeDigest(nil); err == nil {
		t.Fatal("empty payload should fail")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := DecodeDigest(bad); err == nil {
		t.Fatal("unknown version should fail")
	}
	// Every truncation point must fail cleanly, never panic.
	for i := 1; i < len(enc); i++ {
		if _, err := DecodeDigest(enc[:i]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", i)
		}
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(ClusterConfig{Bus: newMemBus()}); err == nil {
		t.Fatal("missing node id should fail")
	}
	if _, err := NewCoordinator(ClusterConfig{Node: "a"}); err == nil {
		t.Fatal("missing bus should fail")
	}
	c, err := NewCoordinator(ClusterConfig{Node: "a", Bus: newMemBus()})
	if err != nil {
		t.Fatal(err)
	}
	if c.Node() != "a" {
		t.Fatalf("node = %q", c.Node())
	}
	if c.Interval() != 250*time.Millisecond {
		t.Fatalf("default interval = %v", c.Interval())
	}
	if _, ok := c.LastDigest("unknown"); ok {
		t.Fatal("unknown source should have no digest")
	}
	if c.Peers("unknown") != nil {
		t.Fatal("unknown source should have no peers")
	}
}

// twoNodes wires two coordinators to one shared bus with a fake clock
// and returns everything the digest-propagation tests need.
func twoNodes(t *testing.T) (*memBus, *Coordinator, *Coordinator, *Scheduler, *Scheduler, *time.Time) {
	t.Helper()
	bus := newMemBus()
	now := time.Unix(1_723_000_000, 0)
	clock := func() time.Time { return now }
	ca, err := NewCoordinator(ClusterConfig{Node: "a", Bus: bus, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewCoordinator(ClusterConfig{Node: "b", Bus: bus, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	sa := New(Config{Limit: 2})
	sb := New(Config{Limit: 2})
	ca.Register("src", sa)
	cb.Register("src", sb)
	return bus, ca, cb, sa, sb, &now
}

func TestCoordinatorPropagatesDigests(t *testing.T) {
	_, ca, cb, sa, sb, now := twoNodes(t)
	ca.Step(*now)
	cb.Step(*now)
	// a published before b listed, so b sees a; a stepped first and saw
	// nothing. One more round and both see each other.
	ca.Step(*now)

	if peers := cb.Peers("src"); len(peers) != 1 || peers[0].Node != "a" {
		t.Fatalf("b peers = %+v", peers)
	}
	if peers := ca.Peers("src"); len(peers) != 1 || peers[0].Node != "b" {
		t.Fatalf("a peers = %+v", peers)
	}
	if d, ok := ca.LastDigest("src"); !ok || d.Node != "a" || d.Source != "src" || d.Limit != 2 {
		t.Fatalf("a self digest = %+v ok=%v", d, ok)
	}
	if st := sa.Stats(); st.ClusterPeers != 1 {
		t.Fatalf("a should blend 1 peer, stats=%+v", st)
	}
	if st := sb.Stats(); st.ClusterPeers != 1 {
		t.Fatalf("b should blend 1 peer, stats=%+v", st)
	}
}

func TestCoordinatorIgnoresStaleDigests(t *testing.T) {
	_, ca, cb, sa, _, now := twoNodes(t)
	cb.Step(*now) // b publishes at t0
	ca.Step(*now)
	if st := sa.Stats(); st.ClusterPeers != 1 {
		t.Fatalf("fresh peer should count, stats=%+v", st)
	}
	// Advance past StaleAfter (default 750ms) without b republishing:
	// b's digest is still on the bus (TTL 1s) but must be ignored.
	*now = now.Add(900 * time.Millisecond)
	ca.Step(*now)
	if st := sa.Stats(); st.ClusterPeers != 0 {
		t.Fatalf("stale peer should be dropped, stats=%+v", st)
	}
	if peers := ca.Peers("src"); len(peers) != 0 {
		t.Fatalf("stale peers retained: %+v", peers)
	}
}

func TestCoordinatorBusFailureFallsBackToLocal(t *testing.T) {
	bus, ca, cb, sa, _, now := twoNodes(t)
	cb.Step(*now)
	ca.Step(*now)
	if st := sa.Stats(); st.ClusterPeers != 1 {
		t.Fatalf("want 1 peer before failure, stats=%+v", st)
	}
	bus.fail(errors.New("down"), errors.New("down"))
	ca.Step(*now)
	if st := sa.Stats(); st.ClusterPeers != 0 || st.ClusterShedActive {
		t.Fatalf("bus failure must drop to local-only, stats=%+v", st)
	}
	bus.fail(nil, nil)
	cb.Step(*now)
	ca.Step(*now)
	if st := sa.Stats(); st.ClusterPeers != 1 {
		t.Fatalf("healed bus should restore peers, stats=%+v", st)
	}
}

func TestCoordinatorSkipsTornAndForeignEntries(t *testing.T) {
	bus, ca, _, sa, _, now := twoNodes(t)
	// A torn payload and a digest for a different source under this
	// source's prefix must both be skipped without affecting state.
	_ = bus.Set("sched/digest/src/zz", []byte{digestVersion, 0xff}, 0)
	other := Digest{Node: "b", Source: "other", Published: *now}
	_ = bus.Set("sched/digest/src/b", other.Encode(), 0)
	ca.Step(*now)
	if st := sa.Stats(); st.ClusterPeers != 0 {
		t.Fatalf("torn/foreign digests must not count as peers, stats=%+v", st)
	}
}

func TestCoordinatorUnregisterStopsPublishing(t *testing.T) {
	bus, ca, _, _, _, now := twoNodes(t)
	ca.Step(*now)
	if got, _ := bus.List("sched/digest/src/"); len(got) != 1 {
		t.Fatalf("expected 1 digest, got %d", len(got))
	}
	ca.Unregister("src")
	ca.Step(*now)
	if _, ok := ca.LastDigest("src"); ok {
		t.Fatal("unregistered source should have no digest")
	}
}

func TestObservePeersMajorityShedClamp(t *testing.T) {
	s := New(Config{Limit: 1, MaxUserQueue: 8})
	// Occupy the only slot so arrivals queue.
	tk, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Done()

	ctx := WithUser(WithSession(context.Background(), "sess"), "hot")
	var wg sync.WaitGroup
	admit := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := s.Admit(ctx)
			if err == nil {
				tk.Done()
			}
		}()
	}
	admit() // hot user's 1 queued query: allowed even under the clamp
	waitFor(t, func() bool { return s.Stats().Queued == 1 })

	// 2 of 3 fleet nodes pressured (both peers shed; self is calm) →
	// strict majority → clamp arms.
	self := Digest{Node: "a", Source: "src"}
	peers := []Digest{
		{Node: "b", ShedRate: 0.5, Limit: 1, QueueDepth: 3},
		{Node: "c", ShedRate: 0.2, Limit: 1, QueueDepth: 2},
	}
	s.ObservePeers(self, peers)
	if st := s.Stats(); !st.ClusterShedActive || st.ClusterPeers != 2 {
		t.Fatalf("majority pressure should arm the clamp, stats=%+v", st)
	}

	// The hot user's second queued query now sheds with the cluster
	// reason, even though MaxUserQueue=8 has plenty of room.
	_, err = s.Admit(ctx)
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "cluster-pressure" {
		t.Fatalf("want cluster-pressure shed, got %v", err)
	}
	if !errors.Is(err, ErrShed) {
		t.Fatal("cluster shed must wrap ErrShed for stale-on-shed")
	}
	if st := s.Stats(); st.ShedClusterPressure != 1 {
		t.Fatalf("ShedClusterPressure = %d", st.ShedClusterPressure)
	}

	// A different (victim) user with an empty queue still gets to queue.
	victim := WithUser(WithSession(context.Background(), "v1"), "victim")
	cctx, cancel := context.WithCancel(victim)
	done := make(chan error, 1)
	go func() {
		tk, err := s.Admit(cctx)
		if err == nil {
			tk.Done()
		}
		done <- err
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 2 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("victim should have queued then canceled, got %v", err)
	}

	// Minority pressure disarms the clamp.
	s.ObservePeers(self, []Digest{
		{Node: "b", ShedRate: 0.0, Limit: 4, QueueDepth: 0},
		{Node: "c", ShedRate: 0.0, Limit: 4, QueueDepth: 0},
	})
	if st := s.Stats(); st.ClusterShedActive {
		t.Fatalf("minority pressure should disarm the clamp, stats=%+v", st)
	}
	tk.Done()
	wg.Wait()
}

func TestObservePeersSelfPressureCounts(t *testing.T) {
	s := New(Config{Limit: 1})
	// Fleet of 2: self pressured + calm peer = majority (2*1 > 2 is
	// false — so NOT a majority; then a pressured peer tips it).
	self := Digest{Node: "a", ShedRate: 0.9, Limit: 1, QueueDepth: 5}
	calm := Digest{Node: "b", Limit: 4}
	s.ObservePeers(self, []Digest{calm})
	if s.Stats().ClusterShedActive {
		t.Fatal("1 of 2 pressured is not a strict majority")
	}
	hot := Digest{Node: "b", ShedRate: 0.9, Limit: 1, QueueDepth: 5}
	s.ObservePeers(self, []Digest{hot})
	if !s.Stats().ClusterShedActive {
		t.Fatal("2 of 2 pressured is a majority")
	}
}

func TestObservePeersLimitConvergence(t *testing.T) {
	// Disable the AIMD governor (huge AdjustEvery) to isolate the
	// convergence nudge. Fleet limits {1, 7}: mean 4. Each observation
	// moves one step toward it from both ends.
	s := New(Config{Limit: 1, MaxLimit: 16, AdjustEvery: 1 << 30})
	peer := Digest{Node: "b", Limit: 7}
	for i := 0; i < 10; i++ {
		s.ObservePeers(Digest{Node: "a", Limit: s.Limit()}, []Digest{peer})
	}
	// From 1: targets round((1+7)/2)=4, then recomputes each step as the
	// local limit moves; it must settle within one step of the peer mean
	// region and stop oscillating.
	got := s.Limit()
	if got < 4 || got > 7 {
		t.Fatalf("limit should converge toward the fleet mean, got %d", got)
	}
	settled := s.Limit()
	s.ObservePeers(Digest{Node: "a", Limit: settled}, []Digest{{Node: "b", Limit: settled}})
	if s.Limit() != settled {
		t.Fatalf("equal fleet limits must not move: %d -> %d", settled, s.Limit())
	}
}

func TestObservePeersRaisedLimitDispatchesWaiters(t *testing.T) {
	s := New(Config{Limit: 1, MaxLimit: 8, AdjustEvery: 1 << 30})
	tk, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan struct{})
	go func() {
		tk2, err := s.Admit(context.Background())
		if err == nil {
			defer tk2.Done()
		}
		close(granted)
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })
	// Peers run at limit 5 → convergence raises ours → the waiter must
	// be granted by the raise itself, not by a later completion.
	s.ObservePeers(Digest{Node: "a", Limit: 1}, []Digest{{Node: "b", Limit: 5}})
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("raised limit did not dispatch the queued waiter")
	}
	tk.Done()
}

func TestObservePeersExpiryFallsBackToLocal(t *testing.T) {
	s := New(Config{Limit: 1})
	hot := []Digest{
		{Node: "b", ShedRate: 0.9, Limit: 1, QueueDepth: 9},
		{Node: "c", ShedRate: 0.9, Limit: 1, QueueDepth: 9},
	}
	s.ObservePeers(Digest{Node: "a"}, hot)
	if !s.Stats().ClusterShedActive {
		t.Fatal("clamp should arm")
	}
	// Simulate a dead coordinator: force the hold window into the past.
	s.mu.Lock()
	s.peerExpiry = time.Now().Add(-time.Second)
	s.mu.Unlock()
	if st := s.Stats(); st.ClusterShedActive || st.ClusterPeers != 0 {
		t.Fatalf("expired advisory state must read as local-only, stats=%+v", st)
	}
	// And Admit must not clamp either.
	ctx := WithUser(context.Background(), "hot")
	tk, err := s.Admit(ctx)
	if err != nil {
		t.Fatalf("expired clamp must not shed: %v", err)
	}
	tk.Done()
}

func TestPeerBacklogInflatesDeadlineEstimate(t *testing.T) {
	s := New(Config{Limit: 1, PeerBacklogWeight: 1.0})
	// Warm the estimator: one completion at ~50ms.
	tk, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.ewmaNS = float64(50 * time.Millisecond)
	s.mu.Unlock()

	// Local estimate for a new arrival: inflight=1 → (1/1 + 1)*50ms =
	// 100ms. A 150ms budget clears it (0.85*150 = 127.5ms).
	ctx1, cancel1 := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel1()
	s.mu.Lock()
	est := s.estimateLocked(Interactive, "u")
	s.mu.Unlock()
	if est != 100*time.Millisecond {
		t.Fatalf("baseline estimate = %v", est)
	}
	_ = ctx1

	// Peers carrying deep backlog (avg queue 2, weight 1, limit 1)
	// triple the estimate: 100ms * (1 + 1*2/1) = 300ms → shed.
	s.ObservePeers(Digest{Node: "a"}, []Digest{
		{Node: "b", Limit: 1, QueueDepth: 2},
		{Node: "c", Limit: 1, QueueDepth: 2},
	})
	s.mu.Lock()
	est = s.estimateLocked(Interactive, "u")
	s.mu.Unlock()
	if est != 300*time.Millisecond {
		t.Fatalf("peer-inflated estimate = %v, want 300ms", est)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel2()
	_, err = s.Admit(ctx2)
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "deadline" {
		t.Fatalf("want deadline shed from peer backlog, got %v", err)
	}
	tk.Done()
}

func TestObservePeersNilAndEmpty(t *testing.T) {
	var nilSched *Scheduler
	nilSched.ObservePeers(Digest{}, nil) // must not panic

	s := New(Config{Limit: 2})
	s.ObservePeers(Digest{Node: "a"}, []Digest{{Node: "b", ShedRate: 1, QueueDepth: 9, Limit: 1}})
	s.ObservePeers(Digest{Node: "a"}, nil)
	if st := s.Stats(); st.ClusterPeers != 0 || st.ClusterShedActive {
		t.Fatalf("empty peer set must clear advisory state, stats=%+v", st)
	}
}

func TestCoordinatorStartStopPublishes(t *testing.T) {
	bus := newMemBus()
	c, err := NewCoordinator(ClusterConfig{
		Node: "a", Bus: bus, Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Register("src", New(Config{Limit: 1}))
	c.Start()
	c.Start() // idempotent
	waitFor(t, func() bool {
		got, _ := bus.List("sched/digest/src/")
		return len(got) == 1
	})
	c.Stop()
	c.Stop() // idempotent
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond) //vizlint:allow sleep -- test poll loop with deadline
	}
	t.Fatal("condition not reached in time")
}

func TestDigestPressured(t *testing.T) {
	cases := []struct {
		d    Digest
		want bool
	}{
		{Digest{ShedRate: 0.1, Limit: 4, QueueDepth: 0}, true},  // shedding
		{Digest{ShedRate: 0.0, Limit: 4, QueueDepth: 4}, true},  // queue at limit
		{Digest{ShedRate: 0.0, Limit: 4, QueueDepth: 3}, false}, // headroom
		{Digest{ShedRate: 0.0, Limit: 0, QueueDepth: 9}, false}, // no limit known
	}
	for i, c := range cases {
		if got := c.d.pressured(0.05); got != c.want {
			t.Errorf("case %d: pressured(%+v) = %v, want %v", i, c.d, got, c.want)
		}
	}
}

func TestClusterShedRateInDigest(t *testing.T) {
	bus := newMemBus()
	now := time.Unix(1_723_000_000, 0)
	c, err := NewCoordinator(ClusterConfig{Node: "a", Bus: bus, Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Limit: 1, MaxQueue: 1})
	c.Register("src", s)

	// Round 1: 1 admit, no sheds → rate 0.
	tk, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c.Step(now)
	if d, _ := c.LastDigest("src"); d.ShedRate != 0 {
		t.Fatalf("round 1 shed rate = %v", d.ShedRate)
	}

	// Round 2: with the slot held and MaxQueue=1, one waiter fills the
	// queue and the next arrival sheds → 1 shed, 0 admissions → rate 1.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk2, err := s.Admit(context.Background())
		if err == nil {
			tk2.Done()
		}
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })
	if _, err := s.Admit(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("want queue-full shed, got %v", err)
	}
	c.Step(now)
	if d, _ := c.LastDigest("src"); d.ShedRate != 1 {
		t.Fatalf("round 2 shed rate = %v, want 1", d.ShedRate)
	}
	tk.Done()
	wg.Wait()

	// Digest totals are cumulative.
	c.Step(now)
	d, _ := c.LastDigest("src")
	if d.ShedTotal != 1 || d.AdmittedTotal != 2 {
		t.Fatalf("cumulative totals = shed %d admitted %d", d.ShedTotal, d.AdmittedTotal)
	}
	if fmt.Sprintf("%s", d.Source) != "src" {
		t.Fatalf("source = %q", d.Source)
	}
}
