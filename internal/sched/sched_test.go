package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestClassAndSessionContext(t *testing.T) {
	ctx := context.Background()
	if ClassOf(ctx) != Interactive {
		t.Fatal("untagged context should default to Interactive")
	}
	if SessionOf(ctx) != "" {
		t.Fatal("untagged context should have empty session")
	}
	ctx = WithClass(ctx, Background)
	ctx = WithSession(ctx, "u1")
	if ClassOf(ctx) != Background || SessionOf(ctx) != "u1" {
		t.Fatalf("got class=%v session=%q", ClassOf(ctx), SessionOf(ctx))
	}
	// Ensure* must not overwrite an existing tag.
	ctx = EnsureClass(ctx, Interactive)
	ctx = EnsureSession(ctx, "u2")
	if ClassOf(ctx) != Background || SessionOf(ctx) != "u1" {
		t.Fatalf("Ensure overwrote tags: class=%v session=%q", ClassOf(ctx), SessionOf(ctx))
	}
	if EnsureClass(context.Background(), Background) == nil || ClassOf(EnsureClass(context.Background(), Background)) != Background {
		t.Fatal("EnsureClass should tag an untagged context")
	}
	if Interactive.String() != "interactive" || Background.String() != "background" {
		t.Fatalf("bad class names %q %q", Interactive.String(), Background.String())
	}
}

func TestNilSchedulerAdmitsEverything(t *testing.T) {
	var s *Scheduler
	tk, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tk.Done() // nil ticket: no-op
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil scheduler stats = %+v", st)
	}
	if s.Limit() != 0 {
		t.Fatal("nil scheduler limit should be 0")
	}
}

func TestDirectAdmitUpToLimit(t *testing.T) {
	s := New(Config{Limit: 2})
	t1, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Inflight != 2 || st.AdmittedInteractive != 2 {
		t.Fatalf("stats after two admits: %+v", st)
	}
	t1.Done()
	t2.Done()
	t2.Done() // idempotent
	if st := s.Stats(); st.Inflight != 0 || st.Completed != 2 {
		t.Fatalf("stats after release: %+v", st)
	}
}

func TestQueueGrantsFIFOOnRelease(t *testing.T) {
	s := New(Config{Limit: 1})
	first, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := s.Admit(context.Background())
			if err != nil {
				t.Errorf("queued admit %d: %v", i, err)
				return
			}
			got <- i
			time.Sleep(5 * time.Millisecond)
			tk.Done()
		}(i)
		// Order the enqueues deterministically.
		waitUntil(t, func() bool { return s.Stats().Queued == i })
	}
	first.Done()
	wg.Wait()
	if a, b := <-got, <-got; a != 1 || b != 2 {
		t.Fatalf("grant order %d,%d; want 1,2", a, b)
	}
}

func TestDeadlineShedFailsFast(t *testing.T) {
	s := New(Config{Limit: 1, DeadlineSafety: 0.85})
	// Warm the estimator: one completed query with a known service time.
	seedEWMA(s, 50*time.Millisecond)

	hold, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Done()

	// Remaining budget 10ms, estimated wait >= 100ms: shed immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.Admit(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "deadline" || se.EstWait <= 0 {
		t.Fatalf("shed detail: %+v", se)
	}
	if elapsed > 5*time.Millisecond {
		t.Fatalf("shed took %v; must fail fast, not wait", elapsed)
	}
	if st := s.Stats(); st.Shed != 1 || st.ShedDeadline != 1 {
		t.Fatalf("shed stats %+v", st)
	}
}

func TestNoDeadlineNeverDeadlineShed(t *testing.T) {
	s := New(Config{Limit: 1})
	seedEWMA(s, time.Hour) // absurd estimate; without a deadline it is moot
	hold, _ := s.Admit(context.Background())
	defer hold.Done()
	done := make(chan struct{})
	go func() {
		defer close(done)
		tk, err := s.Admit(context.Background())
		if err != nil {
			t.Errorf("deadline-less admit: %v", err)
			return
		}
		tk.Done()
	}()
	waitUntil(t, func() bool { return s.Stats().Queued == 1 })
	hold.Done()
	<-done
}

func TestQueueFullSheds(t *testing.T) {
	s := New(Config{Limit: 1, MaxQueue: 2})
	hold, _ := s.Admit(context.Background())
	defer hold.Done()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := s.Admit(context.Background())
			if err == nil {
				tk.Done()
			}
		}()
	}
	waitUntil(t, func() bool { return s.Stats().Queued == 2 })
	_, err := s.Admit(context.Background())
	if !errors.Is(err, ErrShed) {
		t.Fatalf("queue-full admit: want ErrShed, got %v", err)
	}
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "queue-full" {
		t.Fatalf("shed detail: %+v", se)
	}
	hold.Done()
	wg.Wait()
}

func TestPerSessionQueueBound(t *testing.T) {
	s := New(Config{Limit: 1, MaxSessionQueue: 1, MaxQueue: 100})
	hold, _ := s.Admit(context.Background())
	defer hold.Done()
	chatty := WithSession(context.Background(), "chatty")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk, err := s.Admit(chatty)
		if err == nil {
			tk.Done()
		}
	}()
	waitUntil(t, func() bool { return s.Stats().Queued == 1 })
	if _, err := s.Admit(chatty); !errors.Is(err, ErrShed) {
		t.Fatalf("session bound: want ErrShed, got %v", err)
	}
	// A different session still queues fine.
	done := make(chan struct{})
	go func() {
		defer close(done)
		tk, err := s.Admit(WithSession(context.Background(), "quiet"))
		if err != nil {
			t.Errorf("quiet session shed: %v", err)
			return
		}
		tk.Done()
	}()
	waitUntil(t, func() bool { return s.Stats().Queued == 2 })
	hold.Done()
	wg.Wait()
	<-done
}

func TestInteractiveOutranksBackground(t *testing.T) {
	s := New(Config{Limit: 1})
	hold, _ := s.Admit(context.Background())

	order := make(chan Class, 2)
	start := func(c Class) {
		go func() {
			tk, err := s.Admit(WithClass(context.Background(), c))
			if err != nil {
				t.Errorf("%v admit: %v", c, err)
				return
			}
			order <- c
			tk.Done()
		}()
	}
	start(Background) // queued first...
	waitUntil(t, func() bool { return s.Stats().Queued == 1 })
	start(Interactive) // ...but interactive must be granted first
	waitUntil(t, func() bool { return s.Stats().Queued == 2 })

	hold.Done()
	if first := <-order; first != Interactive {
		t.Fatalf("first grant went to %v; interactive must outrank background", first)
	}
	<-order
}

// TestFairnessAcrossSessions pins the WFQ property the scheduler exists
// for: with one chatty session holding a deep queue and one light session
// holding a single query, the light query is granted on the first or
// second dequeue, not behind the chatty backlog.
func TestFairnessAcrossSessions(t *testing.T) {
	s := New(Config{Limit: 1})
	hold, _ := s.Admit(context.Background())

	const chattyDepth = 8
	order := make(chan string, chattyDepth+1)
	var wg sync.WaitGroup
	enqueue := func(sess string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := s.Admit(WithSession(context.Background(), sess))
			if err != nil {
				t.Errorf("%s admit: %v", sess, err)
				return
			}
			order <- sess
			tk.Done()
		}()
	}
	for i := 0; i < chattyDepth; i++ {
		enqueue("chatty")
		waitUntil(t, func() bool { return s.Stats().Queued == i+1 })
	}
	enqueue("light")
	waitUntil(t, func() bool { return s.Stats().Queued == chattyDepth+1 })

	hold.Done()
	wg.Wait()
	close(order)
	var grants []string
	for g := range order {
		grants = append(grants, g)
	}
	for i, g := range grants {
		if g == "light" {
			if i > 1 {
				t.Fatalf("light session granted at position %d behind the chatty backlog: %v", i, grants)
			}
			return
		}
	}
	t.Fatalf("light session never granted: %v", grants)
}

func TestWeightedSessionsGetProportionalDequeues(t *testing.T) {
	s := New(Config{Limit: 1, Weights: map[string]int{"heavy": 2}})
	hold, _ := s.Admit(context.Background())

	order := make(chan string, 6)
	var wg sync.WaitGroup
	enqueue := func(sess string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			before := s.Stats().Queued
			go func() {
				defer wg.Done()
				tk, err := s.Admit(WithSession(context.Background(), sess))
				if err != nil {
					t.Errorf("%s admit: %v", sess, err)
					return
				}
				order <- sess
				tk.Done()
			}()
			waitUntil(t, func() bool { return s.Stats().Queued == before+1 })
		}
	}
	enqueue("heavy", 4)
	enqueue("plain", 2)

	hold.Done()
	wg.Wait()
	close(order)
	var grants []string
	for g := range order {
		grants = append(grants, g)
	}
	// Weight 2 vs 1: the first three grants must contain two heavy and one
	// plain (2:1 interleave), not three heavy.
	heavy := 0
	for _, g := range grants[:3] {
		if g == "heavy" {
			heavy++
		}
	}
	if heavy != 2 {
		t.Fatalf("first three grants %v: want exactly 2 heavy (weight 2:1)", grants[:3])
	}
}

func TestCancelWhileQueuedRemovesWaiter(t *testing.T) {
	s := New(Config{Limit: 1})
	hold, _ := s.Admit(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx)
		errc <- err
	}()
	waitUntil(t, func() bool { return s.Stats().Queued == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitUntil(t, func() bool { return s.Stats().Queued == 0 })
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("canceled count %d", st.Canceled)
	}
	hold.Done()
	// Capacity must not have leaked: a fresh admit succeeds directly.
	tk, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tk.Done()
}

func TestGovernorShrinksOnLatencyGrowsOnDemand(t *testing.T) {
	s := New(Config{Limit: 4, MinLimit: 1, MaxLimit: 8, Tolerance: 2, AdjustEvery: 1})
	// Establish a 1ms floor.
	for i := 0; i < 8; i++ {
		feedService(s, time.Millisecond)
	}
	if got := s.Limit(); got != 4 {
		t.Fatalf("healthy latency moved the limit to %d", got)
	}
	// Latency inflates 10x: the limit must back off toward MinLimit.
	for i := 0; i < 32; i++ {
		feedService(s, 10*time.Millisecond)
	}
	if got := s.Limit(); got >= 4 {
		t.Fatalf("limit %d did not shrink under 10x latency inflation", got)
	}
	// Latency recovers and demand queues: the limit must grow again.
	hold := make([]*Ticket, 0, 8)
	for s.Stats().Inflight < s.Stats().Limit {
		tk, err := s.Admit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		hold = append(hold, tk)
	}
	queued := make(chan *Ticket, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := s.Admit(context.Background())
			if err == nil {
				queued <- tk
			}
		}()
	}
	waitUntil(t, func() bool { return s.Stats().Queued == 4 })
	low := s.Limit()
	// Healthy completions with demand present raise the limit. The floor
	// has decayed upward only slightly, so 1ms readings stay in tolerance.
	for i := 0; i < 64; i++ {
		feedService(s, time.Millisecond)
	}
	if got := s.Limit(); got <= low {
		t.Fatalf("limit %d did not grow from %d with healthy latency and queued demand", got, low)
	}
	for _, tk := range hold {
		tk.Done()
	}
	wg.Wait()
	close(queued)
	for tk := range queued {
		tk.Done()
	}
}

// TestAdmitReleaseStress hammers the scheduler from many goroutines with
// random cancellations and verifies no capacity is leaked: afterwards the
// scheduler is empty and admits directly.
func TestAdmitReleaseStress(t *testing.T) {
	s := New(Config{Limit: 3, MaxQueue: 64, MaxSessionQueue: 64})
	var wg sync.WaitGroup
	var admitted, shed, canceled atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				ctx := WithSession(context.Background(), fmt.Sprintf("s%d", g%4))
				if g%2 == 1 {
					ctx = WithClass(ctx, Background)
				}
				var cancel context.CancelFunc
				if rng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				tk, err := s.Admit(ctx)
				switch {
				case err == nil:
					admitted.Add(1)
					if rng.Intn(8) == 0 {
						time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
					}
					tk.Done()
				case errors.Is(err, ErrShed):
					shed.Add(1)
				default:
					canceled.Add(1)
				}
				if cancel != nil {
					cancel()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("leaked capacity: %+v", st)
	}
	if admitted.Load() == 0 {
		t.Fatal("stress admitted nothing")
	}
	// Accounting must match client-observed outcomes exactly: every
	// successful Admit+Done is one completion, every context loss — whether
	// removed from the queue or canceled after a racing grant — is one
	// cancellation. (Pre-fix, grants racing cancellation counted as
	// Completed.)
	if st.Completed != admitted.Load() {
		t.Fatalf("Completed = %d, clients completed %d", st.Completed, admitted.Load())
	}
	if st.Canceled != canceled.Load() {
		t.Fatalf("Canceled = %d, clients canceled %d", st.Canceled, canceled.Load())
	}
	tk, err := s.Admit(context.Background())
	if err != nil {
		t.Fatalf("post-stress admit: %v", err)
	}
	tk.Done()
	t.Logf("admitted=%d shed=%d canceled=%d", admitted.Load(), shed.Load(), canceled.Load())
}

func TestShedErrorMessage(t *testing.T) {
	e := &ShedError{Reason: "deadline", EstWait: time.Second, Budget: time.Millisecond}
	if e.Error() == "" || !errors.Is(e, ErrShed) {
		t.Fatalf("bad ShedError: %v", e)
	}
	f := &ShedError{Reason: "queue-full"}
	if f.Error() == "" || !errors.Is(f, ErrShed) {
		t.Fatalf("bad ShedError: %v", f)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Limit != 4 || c.MinLimit != 1 || c.MaxLimit != 8 || c.MaxQueue != 128 ||
		c.MaxUserQueue != 64 || c.MaxSessionQueue != 16 ||
		c.DeadlineSafety != 0.85 || c.Tolerance != 2.0 || c.AdjustEvery != 8 {
		t.Fatalf("defaults: %+v", c)
	}
	c = Config{MinLimit: 6, MaxLimit: 2}.withDefaults()
	if c.MaxLimit < c.MinLimit {
		t.Fatalf("MaxLimit %d below MinLimit %d", c.MaxLimit, c.MinLimit)
	}
}

// seedEWMA primes the service-time estimator with one synthetic completion.
func seedEWMA(s *Scheduler, d time.Duration) {
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
	s.finish(d, true)
}

// feedService runs one admit/done cycle reporting a fixed service time
// without actually sleeping (the estimator trusts the Done measurement
// path, so tests feed finish directly).
func feedService(s *Scheduler, d time.Duration) {
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
	s.finish(d, true)
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
