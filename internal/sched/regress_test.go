package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"vizq/internal/obs"
)

// TestGrantedSlotReturnCountsCanceledNotCompleted is the regression test
// for the Completed overcount: when a queued waiter's grant races its
// context cancellation, Admit returns the already-granted slot via
// (&Ticket{s: s}).cancel(). Pre-fix, that path ran the same accounting as
// Done and counted a query that never ran as Completed. The slot return
// must count as Canceled, feed nothing to the service estimator, and
// still free the capacity.
func TestGrantedSlotReturnCountsCanceledNotCompleted(t *testing.T) {
	s := New(Config{Limit: 1})
	tk, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tk.Done() // the only genuine completion in this test

	// Replay the racing branch of Admit deterministically: the dispatcher
	// granted the slot (admitLocked) but the waiter's context died, so the
	// slot goes back through the cancel path.
	s.mu.Lock()
	s.admitLocked(Interactive)
	s.mu.Unlock()
	(&Ticket{s: s}).cancel()

	st := s.Stats()
	if st.Completed != 1 {
		t.Fatalf("Completed = %d, want 1: a canceled grant must not count as completed", st.Completed)
	}
	if st.Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1", st.Canceled)
	}
	if st.Inflight != 0 {
		t.Fatalf("Inflight = %d: canceled grant leaked the slot", st.Inflight)
	}
	// A zero-duration cancel must not have polluted the service estimator
	// (one real completion set it; the cancel would have dragged it down).
	if st.EWMAService <= 0 {
		t.Fatalf("EWMAService = %v: cancel path fed the estimator a zero", st.EWMAService)
	}
}

// TestShedErrorFieldConsistency is the regression test for the queue-full
// shed dropping the deadline: both shed reasons must populate Budget when
// the context has a deadline, so callers logging shed decisions see the
// same fields on either path.
func TestShedErrorFieldConsistency(t *testing.T) {
	s := New(Config{Limit: 1, MaxQueue: 1, MaxSessionQueue: 1})
	seedEWMA(s, 10*time.Millisecond)
	hold, _ := s.Admit(context.Background())
	defer hold.Done()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk, err := s.Admit(WithSession(context.Background(), "filler"))
		if err == nil {
			tk.Done()
		}
	}()
	waitUntil(t, func() bool { return s.Stats().Queued == 1 })

	// Queue-full shed WITH a deadline: Budget must carry the remaining
	// budget, exactly as the deadline shed does.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	_, err := s.Admit(ctx)
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "queue-full" {
		t.Fatalf("want queue-full shed, got %v", err)
	}
	if se.Budget <= 0 || se.Budget > time.Hour {
		t.Fatalf("queue-full shed Budget = %v: must expose the remaining deadline budget", se.Budget)
	}
	if se.EstWait <= 0 {
		t.Fatalf("queue-full shed EstWait = %v: estimator was warmed, must be exposed", se.EstWait)
	}

	// Queue-full shed WITHOUT a deadline: Budget stays zero.
	_, err = s.Admit(context.Background())
	if !errors.As(err, &se) || se.Reason != "queue-full" || se.Budget != 0 {
		t.Fatalf("deadline-less queue-full shed: %v", err)
	}

	// Deadline shed exposes the same pair.
	s2 := New(Config{Limit: 1})
	seedEWMA(s2, time.Minute)
	hold2, _ := s2.Admit(context.Background())
	defer hold2.Done()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	_, err = s2.Admit(ctx2)
	if !errors.As(err, &se) || se.Reason != "deadline" || se.Budget <= 0 || se.EstWait <= 0 {
		t.Fatalf("deadline shed fields: %v", err)
	}

	hold.Done()
	wg.Wait()
}

// TestDirectAdmitsSkipWaitHistogram is the regression test for the
// wait-histogram skew: uncontended fast-path admissions must be counted
// (AdmittedDirect / sched.admitted.direct), not recorded as zero-duration
// waits — pre-fix they flooded the histogram's zero bucket and made queue
// p99 meaningless under light load.
func TestDirectAdmitsSkipWaitHistogram(t *testing.T) {
	h := obs.H("sched.wait.ns")
	before := h.Count()

	s := New(Config{Limit: 2})
	t1, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Count(); got != before {
		t.Fatalf("wait histogram count grew by %d on direct admissions; direct waits must not be observed", got-before)
	}
	if st := s.Stats(); st.AdmittedDirect != 2 {
		t.Fatalf("AdmittedDirect = %d, want 2", st.AdmittedDirect)
	}

	// A genuinely queued admission IS observed.
	granted := make(chan struct{})
	go func() {
		defer close(granted)
		tk, err := s.Admit(context.Background())
		if err != nil {
			t.Errorf("queued admit: %v", err)
			return
		}
		tk.Done()
	}()
	waitUntil(t, func() bool { return s.Stats().Queued == 1 })
	t1.Done()
	<-granted
	if got := h.Count(); got != before+1 {
		t.Fatalf("wait histogram count delta = %d after one queued admission, want 1", got-before)
	}
	if st := s.Stats(); st.AdmittedDirect != 2 {
		t.Fatalf("queued admission bumped AdmittedDirect: %+v", st)
	}
	t2.Done()
}
