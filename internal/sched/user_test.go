package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestUserContext(t *testing.T) {
	ctx := context.Background()
	if UserOf(ctx) != "" {
		t.Fatal("untagged context should have empty user")
	}
	ctx = WithUser(ctx, "alice")
	if UserOf(ctx) != "alice" {
		t.Fatalf("UserOf = %q", UserOf(ctx))
	}
	// EnsureUser must not overwrite an existing tag.
	ctx = EnsureUser(ctx, "bob")
	if UserOf(ctx) != "alice" {
		t.Fatalf("EnsureUser overwrote tag: %q", UserOf(ctx))
	}
	if UserOf(EnsureUser(context.Background(), "bob")) != "bob" {
		t.Fatal("EnsureUser should tag an untagged context")
	}
}

// TestUserFairnessGreedyVsSingles pins the tentpole property: a user
// opening many sessions gets ONE user's share, not one share per session.
// One greedy user holds 8 sessions x 2 queued queries; three single-session
// users hold one query each. Under user-level WRR every single-session
// user is granted within the first user round-robin round (positions
// 0..3). Under flat per-session WRR (the pre-fix behavior) the singles
// queue behind 8 greedy sessions and the last is granted at position 10.
func TestUserFairnessGreedyVsSingles(t *testing.T) {
	s := New(Config{Limit: 1})
	hold, _ := s.Admit(context.Background())

	order := make(chan string, 32)
	var wg sync.WaitGroup
	enqueue := func(user, sess string) {
		wg.Add(1)
		before := s.Stats().Queued
		go func() {
			defer wg.Done()
			ctx := WithUser(context.Background(), user)
			ctx = WithSession(ctx, sess)
			tk, err := s.Admit(ctx)
			if err != nil {
				t.Errorf("%s/%s admit: %v", user, sess, err)
				return
			}
			order <- user
			tk.Done()
		}()
		waitUntil(t, func() bool { return s.Stats().Queued == before+1 })
	}
	for i := 0; i < 8; i++ {
		enqueue("greedy", fmt.Sprintf("g%d", i))
	}
	for i := 0; i < 8; i++ { // second query per greedy session
		enqueue("greedy", fmt.Sprintf("g%d", i))
	}
	for i := 0; i < 3; i++ {
		enqueue(fmt.Sprintf("single-%d", i), "main")
	}
	if st := s.Stats(); st.QueuedUsers != 4 {
		t.Fatalf("QueuedUsers = %d, want 4", st.QueuedUsers)
	}

	hold.Done()
	wg.Wait()
	close(order)
	var grants []string
	for g := range order {
		grants = append(grants, g)
	}
	for i := 0; i < 3; i++ {
		user := fmt.Sprintf("single-%d", i)
		pos := -1
		for j, g := range grants {
			if g == user {
				pos = j
				break
			}
		}
		if pos < 0 || pos > 3 {
			t.Fatalf("%s granted at position %d behind the greedy user's 16-deep backlog: %v", user, pos, grants)
		}
	}
}

func TestUserWeightsProportional(t *testing.T) {
	s := New(Config{Limit: 1, UserWeights: map[string]int{"vip": 2}})
	hold, _ := s.Admit(context.Background())

	order := make(chan string, 8)
	var wg sync.WaitGroup
	enqueue := func(user string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			before := s.Stats().Queued
			go func() {
				defer wg.Done()
				tk, err := s.Admit(WithUser(context.Background(), user))
				if err != nil {
					t.Errorf("%s admit: %v", user, err)
					return
				}
				order <- user
				tk.Done()
			}()
			waitUntil(t, func() bool { return s.Stats().Queued == before+1 })
		}
	}
	enqueue("vip", 4)
	enqueue("std", 2)

	hold.Done()
	wg.Wait()
	close(order)
	var grants []string
	for g := range order {
		grants = append(grants, g)
	}
	// Weight 2 vs 1: the first three grants must be two vip and one std.
	vip := 0
	for _, g := range grants[:3] {
		if g == "vip" {
			vip++
		}
	}
	if vip != 2 {
		t.Fatalf("first three grants %v: want exactly 2 vip (user weight 2:1)", grants[:3])
	}
}

// TestMaxUserQueueAcrossSessions pins the per-user bound: the cap applies
// to a user's TOTAL queued queries, summed across sessions — opening more
// sessions does not buy more queue.
func TestMaxUserQueueAcrossSessions(t *testing.T) {
	s := New(Config{Limit: 1, MaxUserQueue: 2, MaxQueue: 100, MaxSessionQueue: 100})
	hold, _ := s.Admit(context.Background())
	defer hold.Done()

	greedy := func(sess string) context.Context {
		return WithSession(WithUser(context.Background(), "greedy"), sess)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		sess := fmt.Sprintf("s%d", i)
		go func() {
			defer wg.Done()
			tk, err := s.Admit(greedy(sess))
			if err == nil {
				tk.Done()
			}
		}()
		waitUntil(t, func() bool { return s.Stats().Queued == i+1 })
	}
	// Third query from a FRESH session of the same user: still over quota.
	if _, err := s.Admit(greedy("s2")); !errors.Is(err, ErrShed) {
		t.Fatalf("user bound across sessions: want ErrShed, got %v", err)
	}
	if st := s.Stats(); st.ShedUserQueueFull != 1 || st.ShedQueueFull != 1 {
		t.Fatalf("user-bound shed stats: %+v", st)
	}
	// A different user is unaffected by the greedy user's quota.
	done := make(chan struct{})
	go func() {
		defer close(done)
		tk, err := s.Admit(WithUser(context.Background(), "other"))
		if err != nil {
			t.Errorf("other user shed: %v", err)
			return
		}
		tk.Done()
	}()
	waitUntil(t, func() bool { return s.Stats().Queued == 3 })
	hold.Done()
	wg.Wait()
	<-done
}

// TestSameSessionIDDifferentUsers pins that session queues are scoped
// inside their user: two users reusing the session id "main" must not
// share a queue or a session bound.
func TestSameSessionIDDifferentUsers(t *testing.T) {
	s := New(Config{Limit: 1, MaxSessionQueue: 1, MaxQueue: 100})
	hold, _ := s.Admit(context.Background())
	var wg sync.WaitGroup
	for i, user := range []string{"alice", "bob"} {
		wg.Add(1)
		u := user
		go func() {
			defer wg.Done()
			ctx := WithSession(WithUser(context.Background(), u), "main")
			tk, err := s.Admit(ctx)
			if err != nil {
				t.Errorf("%s admit: %v", u, err)
				return
			}
			tk.Done()
		}()
		waitUntil(t, func() bool { return s.Stats().Queued == i+1 })
	}
	// alice/main holds one queued query at MaxSessionQueue=1; bob/main
	// queued fine above, proving the bound did not cross users.
	hold.Done()
	wg.Wait()
	if st := s.Stats(); st.Queued != 0 || st.QueuedUsers != 0 {
		t.Fatalf("leaked queue state: %+v", st)
	}
}
