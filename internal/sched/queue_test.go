package sched

// White-box tests for the dispatch machinery's edge cases: ring-cursor
// correctness when queues empty out at or before the cursor, credit reset
// across empty-then-refilled queues, and the defensive branches that
// resync a ring whose waiting counts drifted. They drive the locked
// internals directly so every scenario is deterministic, at both levels
// of the hierarchy (session rings within a user, user rings within a
// class).

import (
	"context"
	"testing"
)

// enq enqueues one waiter under (user, sess) and returns it.
func enq(s *Scheduler, user, sess string) *waiter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enqueueLocked(Interactive, user, sess)
}

// drainOrder pops waiters until the queue is empty, returning the session
// ids (or user ids, via the label map) in grant order.
func drainOrder(s *Scheduler, label map[*waiter]string) []string {
	var order []string
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		w := s.nextLocked()
		if w == nil {
			return order
		}
		order = append(order, label[w])
	}
}

func TestSessionRingCursorOnRemoval(t *testing.T) {
	cases := []struct {
		name     string
		cursor   int // session-ring cursor before the removal
		remove   string
		wantNext []string // drain order after removing session "b"'s waiter
	}{
		// Ring is [a b c], one waiter each, all under one user.
		{"remove-before-cursor", 2, "b", []string{"c", "a"}},
		{"remove-at-cursor", 1, "b", []string{"c", "a"}},
		{"remove-after-cursor", 0, "b", []string{"a", "c"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{Limit: 1})
			label := map[*waiter]string{}
			ws := map[string]*waiter{}
			for _, id := range []string{"a", "b", "c"} {
				w := enq(s, "u", id)
				label[w] = id
				ws[id] = w
			}
			s.mu.Lock()
			s.classes[Interactive].users["u"].cursor = tc.cursor
			s.removeLocked(Interactive, "u", tc.remove, ws[tc.remove])
			s.mu.Unlock()
			got := drainOrder(s, label)
			if len(got) != len(tc.wantNext) {
				t.Fatalf("drain order %v, want %v", got, tc.wantNext)
			}
			for i := range got {
				if got[i] != tc.wantNext[i] {
					t.Fatalf("drain order %v, want %v", got, tc.wantNext)
				}
			}
			if st := s.Stats(); st.Queued != 0 || st.QueuedUsers != 0 {
				t.Fatalf("residual queue state: %+v", st)
			}
		})
	}
}

func TestUserRingCursorOnRemoval(t *testing.T) {
	cases := []struct {
		name     string
		cursor   int // class-level user-ring cursor before the removal
		wantNext []string
	}{
		// Ring is [ua ub uc], one single-waiter session each; ub's waiter
		// is canceled, emptying and dropping user ub.
		{"drop-before-cursor", 2, []string{"uc", "ua"}},
		{"drop-at-cursor", 1, []string{"uc", "ua"}},
		{"drop-after-cursor", 0, []string{"ua", "uc"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{Limit: 1})
			label := map[*waiter]string{}
			var wb *waiter
			for _, u := range []string{"ua", "ub", "uc"} {
				w := enq(s, u, "main")
				label[w] = u
				if u == "ub" {
					wb = w
				}
			}
			s.mu.Lock()
			s.classes[Interactive].cursor = tc.cursor
			s.removeLocked(Interactive, "ub", "main", wb)
			s.mu.Unlock()
			got := drainOrder(s, label)
			if len(got) != 2 || got[0] != tc.wantNext[0] || got[1] != tc.wantNext[1] {
				t.Fatalf("drain order %v, want %v", got, tc.wantNext)
			}
		})
	}
}

// TestCreditResetAcrossRefill pins that a weighted queue which empties,
// drops off the ring, and later refills starts a fresh turn with full
// credit — credit must not persist (or leak) across the queue's lifetime.
func TestCreditResetAcrossRefill(t *testing.T) {
	t.Run("session-level", func(t *testing.T) {
		s := New(Config{Limit: 1, Weights: map[string]int{"w": 2}})
		label := map[*waiter]string{}
		label[enq(s, "u", "w")] = "w"
		label[enq(s, "u", "x")] = "x"
		// First round: w dequeues once (1 of its 2 credits), empties, drops.
		if got := drainOrder(s, label); len(got) != 2 || got[0] != "w" {
			t.Fatalf("first round order %v", got)
		}
		// Refill: w must again get 2 consecutive dequeues before x.
		label[enq(s, "u", "w")] = "w"
		label[enq(s, "u", "w")] = "w"
		label[enq(s, "u", "x")] = "x"
		got := drainOrder(s, label)
		want := []string{"w", "w", "x"}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("refill order %v, want %v", got, want)
			}
		}
	})
	t.Run("user-level", func(t *testing.T) {
		s := New(Config{Limit: 1, UserWeights: map[string]int{"vip": 2}})
		label := map[*waiter]string{}
		label[enq(s, "vip", "m")] = "vip"
		label[enq(s, "std", "m")] = "std"
		if got := drainOrder(s, label); len(got) != 2 || got[0] != "vip" {
			t.Fatalf("first round order %v", got)
		}
		label[enq(s, "vip", "m")] = "vip"
		label[enq(s, "vip", "m")] = "vip"
		label[enq(s, "std", "m")] = "std"
		got := drainOrder(s, label)
		want := []string{"vip", "vip", "std"}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("refill order %v, want %v", got, want)
			}
		}
	})
}

// TestDefensiveEmptyBranches drives the resync paths: an empty session or
// user that somehow survives on a ring (the invariant says it cannot, but
// the scan must not spin or grant nil if one slips through).
func TestDefensiveEmptyBranches(t *testing.T) {
	t.Run("empty-session-on-ring", func(t *testing.T) {
		s := New(Config{Limit: 1})
		real := enq(s, "u", "real")
		s.mu.Lock()
		uq := s.classes[Interactive].users["u"]
		phantom := &sessionQueue{id: "phantom", weight: 1}
		uq.sessions["phantom"] = phantom
		uq.ring = append([]*sessionQueue{phantom}, uq.ring...)
		uq.cursor = 0
		w := s.nextLocked()
		s.mu.Unlock()
		if w != real {
			t.Fatal("scan did not skip the phantom empty session")
		}
		if st := s.Stats(); st.Queued != 0 || st.QueuedUsers != 0 {
			t.Fatalf("residual state after resync: %+v", st)
		}
	})
	t.Run("empty-user-on-ring", func(t *testing.T) {
		s := New(Config{Limit: 1})
		real := enq(s, "u", "main")
		s.mu.Lock()
		cq := &s.classes[Interactive]
		phantom := &userQueue{id: "phantom", sessions: map[string]*sessionQueue{}, weight: 1}
		cq.users["phantom"] = phantom
		cq.ring = append([]*userQueue{phantom}, cq.ring...)
		cq.cursor = 0
		s.queuedUsers++
		w := s.nextLocked()
		gone := cq.users["phantom"] == nil
		s.mu.Unlock()
		if w != real {
			t.Fatal("scan did not skip the phantom empty user")
		}
		if !gone {
			t.Fatal("phantom user not dropped by the defensive branch")
		}
	})
	t.Run("user-with-all-empty-sessions", func(t *testing.T) {
		// waiting>0 but every session ring entry is empty: popSessionLocked
		// returns nil and nextLocked must resync by dropping the user, then
		// still grant the real waiter behind it.
		s := New(Config{Limit: 1})
		real := enq(s, "u", "main")
		s.mu.Lock()
		cq := &s.classes[Interactive]
		broken := &userQueue{id: "broken", sessions: map[string]*sessionQueue{}, weight: 1, waiting: 1}
		cq.users["broken"] = broken
		cq.ring = append([]*userQueue{broken}, cq.ring...)
		cq.cursor = 0
		s.queuedUsers++
		w := s.nextLocked()
		gone := cq.users["broken"] == nil
		s.mu.Unlock()
		if w != real {
			t.Fatal("scan did not resync past the broken user")
		}
		if !gone {
			t.Fatal("broken user not dropped")
		}
	})
}

// TestDrainAfterEdgeCases exercises the same machinery end-to-end: after
// cursor surgery the scheduler still grants every waiter exactly once.
func TestDrainAfterEdgeCases(t *testing.T) {
	s := New(Config{Limit: 1})
	hold, _ := s.Admit(context.Background())
	n := 6
	got := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		ctx := WithUser(context.Background(), []string{"a", "b", "c"}[i%3])
		before := s.Stats().Queued
		go func() {
			tk, err := s.Admit(ctx)
			if err != nil {
				t.Errorf("admit: %v", err)
				return
			}
			got <- struct{}{}
			tk.Done()
		}()
		waitUntil(t, func() bool { return s.Stats().Queued == before+1 })
	}
	hold.Done()
	for i := 0; i < n; i++ {
		<-got
	}
	if st := s.Stats(); st.Queued != 0 || st.Inflight != 0 || st.QueuedUsers != 0 {
		t.Fatalf("residual state: %+v", st)
	}
}
