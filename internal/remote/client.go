package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vizq/internal/obs"
	"vizq/internal/tde/exec"
)

// Round-trip metrics, shared process-wide.
var (
	mRoundTripNS = obs.H("remote.roundtrip.ns")
	cBroken      = obs.C("remote.conns_broken")
)

// Conn is one client connection to a simulated remote database. A single
// connection executes one request at a time — concurrent queries require
// multiple connections, the strategy most backends mandate (Sect. 3.5).
type Conn struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	created time.Time
	lastUse time.Time
	closed  bool
}

// Dial opens a connection to a remote server.
func Dial(addr string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	return &Conn{
		conn:    nc,
		r:       bufio.NewReaderSize(nc, 1<<16),
		w:       bufio.NewWriterSize(nc, 1<<16),
		created: now,
		lastUse: now,
	}, nil
}

// Close shuts the connection, releasing session state on the server.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// Closed reports whether Close has been called.
func (c *Conn) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Age returns how long the connection has existed.
func (c *Conn) Age() time.Duration { return time.Since(c.created) }

// IdleFor returns the time since the last request.
func (c *Conn) IdleFor() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Since(c.lastUse)
}

func (c *Conn) roundTrip(ctx context.Context, req *Request) (*Response, error) {
	_, sp := obs.StartSpan(ctx, obs.SpanRemote)
	defer sp.Finish()
	sp.Annotate("op", string(req.Op))
	start := time.Now()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("remote: connection closed")
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(deadline)
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.w, req); err != nil {
		c.breakLocked()
		return nil, err
	}
	resp, err := readFrame[Response](c.r)
	if err != nil {
		c.breakLocked()
		return nil, err
	}
	c.lastUse = time.Now()
	mRoundTripNS.ObserveDuration(time.Since(start))
	if resp.Err != "" {
		return nil, fmt.Errorf("remote: %s", resp.Err)
	}
	return resp, nil
}

// breakLocked takes the connection out of service after a transport fault.
// On a deadline-exceeded read the response frame may still be in flight; a
// reused connection would read that stale frame as the answer to its next
// request (cross-request frame bleed), so any write/read error is terminal.
// Callers hold c.mu, hence the direct conn.Close rather than c.Close.
func (c *Conn) breakLocked() {
	if c.closed {
		return
	}
	c.closed = true
	cBroken.Inc()
	_ = c.conn.Close()
}

// Ping checks liveness.
func (c *Conn) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, &Request{Op: OpPing})
	return err
}

// Query executes TQL on the server.
func (c *Conn) Query(ctx context.Context, tql string) (*exec.Result, error) {
	resp, err := c.roundTrip(ctx, &Request{Op: OpQuery, TQL: tql})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, errors.New("remote: empty result")
	}
	return resp.Result, nil
}

// CreateTempTable uploads rows as a session-local temporary table and
// returns its qualified name for use in subsequent queries.
func (c *Conn) CreateTempTable(ctx context.Context, alias string, rows *exec.Result) (string, error) {
	resp, err := c.roundTrip(ctx, &Request{Op: OpTempCreate, Name: alias, Result: rows})
	if err != nil {
		return "", err
	}
	return resp.Name, nil
}

// DropTempTable removes a session temp table by alias.
func (c *Conn) DropTempTable(ctx context.Context, alias string) error {
	_, err := c.roundTrip(ctx, &Request{Op: OpTempDrop, Name: alias})
	return err
}

// Metadata returns a table's schema as a zero-row result.
func (c *Conn) Metadata(ctx context.Context, table string) (*exec.Result, error) {
	resp, err := c.roundTrip(ctx, &Request{Op: OpMetadata, Name: table})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, errors.New("remote: empty metadata")
	}
	return resp.Result, nil
}
