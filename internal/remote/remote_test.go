package remote

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"vizq/internal/tde/engine"
	"vizq/internal/workload"
)

func startServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 5000, Days: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(engine.New(db), cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestQueryRoundTrip(t *testing.T) {
	srv := startServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), `(aggregate (table flights) (groupby carrier) (aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < res.N; i++ {
		total += res.Value(i, 1).I
	}
	if total != 5000 {
		t.Errorf("total = %d", total)
	}
	if srv.Stats().Queries != 1 {
		t.Errorf("queries = %d", srv.Stats().Queries)
	}
}

func TestQueryErrorPropagates(t *testing.T) {
	srv := startServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(context.Background(), `(table nosuch)`)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
	// Connection remains usable after a query error.
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSessionTempTables(t *testing.T) {
	srv := startServer(t, Config{})
	ctx := context.Background()
	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Build a small value table locally and upload it.
	vals, err := c1.Query(ctx, `(topn (distinct (project (table flights) (carrier carrier))) 3 (asc carrier))`)
	if err != nil {
		t.Fatal(err)
	}
	name, err := c1.CreateTempTable(ctx, "filter1", vals)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c1.Query(ctx, `
		(aggregate (join (table flights) (table `+name+`) (on (= flights.carrier carrier)))
			(groupby) (aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, 0).I == 0 {
		t.Error("temp join returned nothing")
	}

	// Another session cannot see it by alias; the unique name is session
	// independent in the engine but dropped with the owning session.
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		_, err = c2.Query(ctx, `(aggregate (table `+name+`) (groupby) (aggs (n count *)))`)
		if err != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err == nil {
		t.Error("session temp table should be reclaimed on close")
	}
	if srv.Stats().TempCreates != 1 {
		t.Errorf("temp creates = %d", srv.Stats().TempCreates)
	}
}

func TestMetadataOp(t *testing.T) {
	srv := startServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	md, err := c.Metadata(context.Background(), "flights")
	if err != nil {
		t.Fatal(err)
	}
	if md.N != 0 {
		t.Errorf("metadata should carry no rows, got %d", md.N)
	}
	if md.ColumnIndex("carrier") < 0 || md.ColumnIndex("delay") < 0 {
		t.Errorf("schema missing columns: %+v", md.Schema)
	}
	// Qualified names resolve too.
	if _, err := c.Metadata(context.Background(), "Extract.carriers"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Metadata(context.Background(), "nope"); err == nil {
		t.Error("unknown table metadata should fail")
	}
}

func TestConcurrencyThrottle(t *testing.T) {
	srv := startServer(t, Config{MaxConcurrent: 2, Latency: 5 * time.Millisecond})
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			if _, err := c.Query(context.Background(),
				`(aggregate (table flights) (groupby market) (aggs (n count *)))`); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := srv.Stats()
	if st.Queries != n {
		t.Errorf("queries = %d", st.Queries)
	}
	if st.MaxInFlight > 2 {
		t.Errorf("throttle violated: max in flight = %d", st.MaxInFlight)
	}
}

func TestSingleConnectionIsSerial(t *testing.T) {
	srv := startServer(t, Config{Latency: 20 * time.Millisecond})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Query(context.Background(),
				`(aggregate (table flights) (groupby) (aggs (n count *)))`); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Errorf("single connection must serialize: took %v", el)
	}
}
