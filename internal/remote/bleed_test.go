package remote

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"
)

// slowEchoServer speaks the wire protocol but answers every request only
// after delay, tagging the response Name with the request it answers. When
// maxRequests > 0 the connection is dropped after that many responses. It
// keeps serving after a client's deadline fires, so the late frame is on
// the wire when the client next reads.
func slowEchoServer(t *testing.T, delay time.Duration, maxRequests int) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				for served := 0; maxRequests <= 0 || served < maxRequests; served++ {
					req, err := readFrame[Request](r)
					if err != nil {
						return
					}
					time.Sleep(delay)
					if err := writeFrame(w, &Response{Name: "resp-for-" + req.Name}); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln
}

// TestDeadlineErrorPoisonsNoFurtherRequest is the regression test for the
// cross-request frame-bleed bug: after a deadline-exceeded read the response
// frame is still in flight; a connection reused for the next request would
// read the stale frame as that request's answer. The connection must be
// marked broken on any read/write error so it cannot be reused.
func TestDeadlineErrorPoisonsNoFurtherRequest(t *testing.T) {
	ln := slowEchoServer(t, 150*time.Millisecond, 0)
	defer ln.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.CreateTempTable(ctx, "first", nil); err == nil {
		t.Fatal("expected a deadline error on the slow first request")
	}

	if !c.Closed() {
		t.Fatal("connection must be marked broken after a read error (stale response frame still in flight)")
	}

	// Even if a caller ignores the broken state, the next request must not
	// receive the first request's late frame. Give the server time to flush
	// the stale response onto the wire first.
	time.Sleep(200 * time.Millisecond)
	name, err := c.CreateTempTable(context.Background(), "second", nil)
	if err == nil && name == "resp-for-first" {
		t.Fatalf("stale frame bleed: second request answered with %q", name)
	}
}

// TestPeerDropPoisonsConn covers the EOF half: once the peer hangs up, the
// first failing round trip must take the connection out of service.
func TestPeerDropPoisonsConn(t *testing.T) {
	ln := slowEchoServer(t, 0, 1) // server drops the conn after one response
	defer ln.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("warm request failed: %v", err)
	}
	// The server has now dropped its end. The next round trip fails (EOF on
	// read, or a reset on write) and must mark the connection broken.
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("expected an error on the dropped connection")
	}
	if !c.Closed() {
		t.Fatal("connection must be marked broken after a round-trip error")
	}
}
