// Package remote simulates an external database server plus the client
// connection machinery Tableau uses to talk to it. The server executes TQL
// (its "dialect") against a TDE engine behind a configurable performance
// model: per-request latency, a concurrency throttle, and a
// serial-per-query vs parallel-plan execution model. Those are exactly the
// backend properties Sect. 3.5 identifies as governing concurrent workload
// behaviour; any vendor engine is interchangeable with this simulator for
// the experiments.
//
// Session-local temporary tables live for the duration of one client
// connection and are reclaimed when it closes (Sect. 5.4).
package remote

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vizq/internal/tde/engine"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/opt"
	"vizq/internal/tde/plan"
)

// Config is the server's performance model.
type Config struct {
	// Latency is added to every request (network round trip + dispatch).
	Latency time.Duration
	// MaxConcurrent throttles simultaneously executing queries (0 =
	// unlimited): "the database is likely to throttle them based on
	// available resources or a hard-coded threshold."
	MaxConcurrent int
	// QueryDOP is the degree of parallelism of a single query: 1 models the
	// common thread-per-query architecture; >1 models engines with parallel
	// plans (SQL Server, the TDE).
	QueryDOP int
	// PerRowCost adds artificial work proportional to result rows,
	// amplifying the gap between remote execution and cache hits (0 = none).
	PerRowCost time.Duration
	// ScanBatchDelay simulates disk-bound scans in the backing engine (see
	// exec.Config); it makes the backend's resource behaviour realistic on
	// in-memory substrates.
	ScanBatchDelay time.Duration
}

// Stats counts server-side activity.
type Stats struct {
	Queries     int64
	TempCreates int64
	TempDrops   int64
	MaxInFlight int64
}

// Server is a simulated remote database.
type Server struct {
	eng *engine.Engine
	cfg Config
	ln  net.Listener
	wg  sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
	sessSeq  int64
	inFlight int64
	stats    Stats

	sem chan struct{}
}

// NewServer wraps an engine with the performance model. The engine's
// optimizer options are adjusted to the configured QueryDOP.
func NewServer(eng *engine.Engine, cfg Config) *Server {
	if cfg.QueryDOP <= 0 {
		cfg.QueryDOP = 1
	}
	o := eng.Options()
	o.MaxDOP = cfg.QueryDOP
	eng.SetOptions(o)
	s := &Server{eng: eng, cfg: cfg, conns: make(map[net.Conn]struct{})}
	if cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return s
}

// Engine exposes the backing engine (test setup).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Start listens on addr ("127.0.0.1:0" for ephemeral).
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops the server and drops all sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.sessSeq++
		sessID := s.sessSeq
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveSession(conn, sessID)
		}()
	}
}

// session-local state: temp tables created over this connection.
type session struct {
	id    int64
	temps map[string]string // client alias -> qualified engine name
	seq   int
}

func (s *Server) serveSession(conn net.Conn, id int64) {
	sess := &session{id: id, temps: make(map[string]string)}
	defer func() {
		// Reclaim session state when the connection closes (Sect. 5.4).
		for _, qualified := range sess.temps {
			_ = s.eng.DropTempTable(qualified)
		}
	}()
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	for {
		req, err := readFrame[Request](r)
		if err != nil {
			return
		}
		resp := s.handle(sess, req)
		if err := writeFrame(w, resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(sess *session, req *Request) *Response {
	if s.cfg.Latency > 0 {
		time.Sleep(s.cfg.Latency) //vizlint:allow sleep -- simulated network round trip (performance model)
	}
	switch req.Op {
	case OpPing:
		return &Response{}
	case OpQuery:
		return s.handleQuery(req)
	case OpTempCreate:
		return s.handleTempCreate(sess, req)
	case OpTempDrop:
		return s.handleTempDrop(sess, req)
	case OpMetadata:
		return s.handleMetadata(req)
	default:
		return &Response{Err: fmt.Sprintf("remote: unknown op %q", req.Op)}
	}
}

func (s *Server) handleQuery(req *Request) *Response {
	if s.sem != nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	cur := atomic.AddInt64(&s.inFlight, 1)
	defer atomic.AddInt64(&s.inFlight, -1)
	s.mu.Lock()
	s.stats.Queries++
	if cur > s.stats.MaxInFlight {
		s.stats.MaxInFlight = cur
	}
	s.mu.Unlock()

	start := time.Now()
	ctx := context.Background()
	if s.cfg.ScanBatchDelay > 0 {
		ctx = exec.WithConfig(ctx, exec.Config{ScanBatchDelay: s.cfg.ScanBatchDelay})
	}
	res, err := s.eng.Query(ctx, req.TQL)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	if s.cfg.PerRowCost > 0 {
		time.Sleep(time.Duration(res.N) * s.cfg.PerRowCost) //vizlint:allow sleep -- simulated per-row backend cost (performance model)
	}
	return &Response{Result: res, ExecNS: time.Since(start).Nanoseconds()}
}

func (s *Server) handleTempCreate(sess *session, req *Request) *Response {
	if req.Result == nil {
		return &Response{Err: "remote: temp create without data"}
	}
	s.mu.Lock()
	s.stats.TempCreates++
	s.mu.Unlock()
	sess.seq++
	unique := fmt.Sprintf("s%d_%d_%s", sess.id, sess.seq, req.Name)
	qualified, err := s.eng.CreateTempTable(unique, req.Result)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	sess.temps[req.Name] = qualified
	return &Response{Name: qualified}
}

func (s *Server) handleMetadata(req *Request) *Response {
	schema, name := "Extract", req.Name
	if dot := lastDot(name); dot > 0 {
		schema, name = req.Name[:dot], req.Name[dot+1:]
	}
	tbl, err := s.eng.Database().Table(schema, name)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	cols := make([]plan.ColInfo, len(tbl.Cols))
	for i, c := range tbl.Cols {
		cols[i] = plan.ColInfo{Name: c.Name, Type: c.Type, Coll: c.Coll}
	}
	return &Response{Result: exec.NewResult(cols)}
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

func (s *Server) handleTempDrop(sess *session, req *Request) *Response {
	s.mu.Lock()
	s.stats.TempDrops++
	s.mu.Unlock()
	qualified, ok := sess.temps[req.Name]
	if !ok {
		qualified = req.Name
	}
	if err := s.eng.DropTempTable(qualified); err != nil {
		return &Response{Err: err.Error()}
	}
	delete(sess.temps, req.Name)
	return &Response{}
}

// ---- wire protocol: u32 length-prefixed JSON frames ----

// Op identifies a request type.
type Op string

// Request operations.
const (
	OpPing       Op = "ping"
	OpQuery      Op = "query"
	OpTempCreate Op = "tempcreate"
	OpTempDrop   Op = "tempdrop"
	// OpMetadata returns a zero-row result carrying a table's schema
	// (column names, types, collations).
	OpMetadata Op = "metadata"
)

// Request is one client->server message.
type Request struct {
	Op     Op
	TQL    string       `json:",omitempty"`
	Name   string       `json:",omitempty"`
	Result *exec.Result `json:",omitempty"`
}

// Response is one server->client message.
type Response struct {
	Err    string       `json:",omitempty"`
	Result *exec.Result `json:",omitempty"`
	Name   string       `json:",omitempty"`
	ExecNS int64        `json:",omitempty"`
}

func writeFrame[T any](w *bufio.Writer, v *T) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame[T any](r *bufio.Reader) (*T, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 1<<30 {
		return nil, fmt.Errorf("remote: frame too large (%d)", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	v := new(T)
	if err := json.Unmarshal(data, v); err != nil {
		return nil, err
	}
	return v, nil
}

// SetDOPOption exposes opt.Options tuning for tests.
func SetDOPOption(eng *engine.Engine, dop int) {
	o := eng.Options()
	o.MaxDOP = dop
	if o.GrainWork == 0 {
		o = opt.DefaultOptions()
		o.MaxDOP = dop
	}
	eng.SetOptions(o)
}
