package extract

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vizq/internal/tde/storage"
)

const sampleCSV = `date,carrier,delay,distance,cancelled
2015-01-01,WN,12.5,300,false
2015-01-01,AA,-3.0,1250,false
2015-01-02,WN,,500,true
2015-01-02,DL,45.25,2475,false
2015-01-03,"WN",0.5,"300",false
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseWithInference(t *testing.T) {
	tt, err := Parse(strings.NewReader(sampleCSV), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Schema.HasHeader {
		t.Fatal("header not detected")
	}
	wantTypes := map[string]storage.Type{
		"date": storage.TDate, "carrier": storage.TStr, "delay": storage.TFloat,
		"distance": storage.TInt, "cancelled": storage.TBool,
	}
	if len(tt.Schema.Cols) != 5 {
		t.Fatalf("cols = %d", len(tt.Schema.Cols))
	}
	for _, c := range tt.Schema.Cols {
		if wantTypes[c.Name] != c.Type {
			t.Errorf("%s inferred as %v, want %v", c.Name, c.Type, wantTypes[c.Name])
		}
	}
	if len(tt.Rows) != 5 {
		t.Errorf("rows = %d", len(tt.Rows))
	}
}

func TestParseQuoting(t *testing.T) {
	csv := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n\"multi\nline\",2\n"
	tt, err := Parse(strings.NewReader(csv), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tt.Rows[0][0] != "x,y" || tt.Rows[0][1] != `say "hi"` {
		t.Errorf("quoting: %q", tt.Rows[0])
	}
	if tt.Rows[1][0] != "multi\nline" {
		t.Errorf("embedded newline: %q", tt.Rows[1][0])
	}
}

func TestParseCRLFAndDelimiter(t *testing.T) {
	tsv := "x\t1\r\ny\t2\r\n"
	tt, err := Parse(strings.NewReader(tsv), ParseOptions{Delimiter: '\t'})
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Rows) != 2 || tt.Rows[1][0] != "y" || tt.Rows[1][1] != "2" {
		t.Errorf("rows = %v", tt.Rows)
	}
	if tt.Schema.HasHeader {
		t.Error("no header expected")
	}
	if tt.Schema.Cols[0].Name != "F1" {
		t.Errorf("default name = %q", tt.Schema.Cols[0].Name)
	}
}

func TestSchemaFile(t *testing.T) {
	schemaText := `
# flights schema
header
date:date
carrier:str:ci
delay:float
distance:int
cancelled:bool
`
	s, err := ParseSchema(strings.NewReader(schemaText))
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasHeader || len(s.Cols) != 5 {
		t.Fatalf("schema = %+v", s)
	}
	if s.Cols[1].Coll != storage.CollCI {
		t.Error("collation not parsed")
	}
	tt, err := Parse(strings.NewReader(sampleCSV), ParseOptions{Schema: s})
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Rows) != 5 {
		t.Errorf("rows = %d", len(tt.Rows))
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := ParseSchema(strings.NewReader("date")); err == nil {
		t.Error("bad line should fail")
	}
	if _, err := ParseSchema(strings.NewReader("a:blob")); err == nil {
		t.Error("bad type should fail")
	}
	if _, err := ParseSchema(strings.NewReader("# only comments")); err == nil {
		t.Error("empty schema should fail")
	}
}

func TestBuildTableAndQuery(t *testing.T) {
	p := writeTemp(t, sampleCSV)
	db, err := CreateExtract(p, "flights", ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("Extract", "flights")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows != 5 {
		t.Errorf("rows = %d", tbl.Rows)
	}
	if !tbl.Column("delay").Value(2).Null {
		t.Error("empty field should be null")
	}
	res, err := QueryWithoutExtract(context.Background(), p, "flights",
		`(aggregate (table flights) (groupby carrier) (aggs (n count *)))`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 {
		t.Errorf("carriers = %d", res.N)
	}
}

func TestShadowManagerReuse(t *testing.T) {
	p := writeTemp(t, sampleCSV)
	m := NewShadowManager()
	_, extracted, err := m.Engine(p, "flights", ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !extracted {
		t.Fatal("first call should extract")
	}
	_, extracted, err = m.Engine(p, "flights", ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if extracted {
		t.Fatal("second call should reuse the extract")
	}
	res, err := m.Query(context.Background(), p, "flights",
		`(aggregate (table flights) (groupby) (aggs (n count *)))`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, 0).I != 5 {
		t.Errorf("count = %d", res.Value(0, 0).I)
	}
}

func TestShadowManagerInvalidation(t *testing.T) {
	p := writeTemp(t, sampleCSV)
	m := NewShadowManager()
	if _, _, err := m.Engine(p, "flights", ParseOptions{}); err != nil {
		t.Fatal(err)
	}
	// Rewrite the file with one more row and a different mtime.
	bigger := sampleCSV + "2015-01-04,UA,9.0,800,false\n"
	if err := os.WriteFile(p, []byte(bigger), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, extracted, err := m.Engine(p, "flights", ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !extracted {
		t.Fatal("changed file should re-extract")
	}
	res, err := eng.Query(context.Background(), `(aggregate (table flights) (groupby) (aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, 0).I != 6 {
		t.Errorf("count = %d", res.Value(0, 0).I)
	}
}

func TestShadowPersistence(t *testing.T) {
	p := writeTemp(t, sampleCSV)
	dir := t.TempDir()
	m1 := NewShadowManager()
	m1.PersistDir = dir
	if _, extracted, err := m1.Engine(p, "flights", ParseOptions{}); err != nil || !extracted {
		t.Fatalf("first extract: %v %v", extracted, err)
	}
	// A new manager (a new session) finds the persisted extract.
	m2 := NewShadowManager()
	m2.PersistDir = dir
	_, extracted, err := m2.Engine(p, "flights", ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if extracted {
		t.Error("persisted extract should be reused across sessions")
	}
}

func TestParseLargeNoLimit(t *testing.T) {
	// The Jet driver had a 4GB limit; ours parses arbitrarily long input.
	var b strings.Builder
	b.WriteString("id,v\n")
	for i := 0; i < 50_000; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i*3)
	}
	tt, err := Parse(strings.NewReader(b.String()), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Rows) != 50_000 {
		t.Errorf("rows = %d", len(tt.Rows))
	}
}

func TestRaggedRows(t *testing.T) {
	if _, err := Parse(strings.NewReader("a,b\n1,2\n3\n"), ParseOptions{}); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestMaxRows(t *testing.T) {
	tt, err := Parse(strings.NewReader(sampleCSV), ParseOptions{MaxRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Rows) != 2 {
		t.Errorf("rows = %d", len(tt.Rows))
	}
}

func TestConvertValueErrors(t *testing.T) {
	if _, err := ConvertValue("notanint", storage.TInt); err == nil {
		t.Error("bad int should fail")
	}
	if _, err := ConvertValue("2015-13-99", storage.TDate); err == nil {
		t.Error("bad date should fail")
	}
	v, err := ConvertValue("", storage.TInt)
	if err != nil || !v.Null {
		t.Error("empty should be null")
	}
}
