package extract

import (
	"context"
	"fmt"
	"os"
	"sync"

	"vizq/internal/tde/engine"
	"vizq/internal/tde/exec"
	"vizq/internal/tde/storage"
)

// BuildTable converts a parsed text table into a TDE table.
func BuildTable(schema, name string, tt *TextTable) (*storage.Table, error) {
	width := len(tt.Schema.Cols)
	cols := make([]*storage.Column, width)
	for c := 0; c < width; c++ {
		spec := tt.Schema.Cols[c]
		vals := make([]storage.Value, len(tt.Rows))
		for i, row := range tt.Rows {
			v, err := ConvertValue(row[c], spec.Type)
			if err != nil {
				return nil, fmt.Errorf("row %d column %s: %w", i+1, spec.Name, err)
			}
			vals[i] = v
		}
		col, err := storage.BuildColumn(spec.Name, spec.Type, spec.Coll, vals, storage.BuildOptions{})
		if err != nil {
			return nil, err
		}
		cols[c] = col
	}
	return storage.NewTable(schema, name, cols)
}

// CreateExtract parses a text file and loads it as a table into a fresh
// database (the one-time cost of creating the temporary database).
func CreateExtract(path, tableName string, opt ParseOptions) (*storage.Database, error) {
	tt, err := ParseFile(path, opt)
	if err != nil {
		return nil, err
	}
	tbl, err := BuildTable("Extract", tableName, tt)
	if err != nil {
		return nil, err
	}
	db := storage.NewDatabase(tableName)
	if err := db.AddTable(tbl); err != nil {
		return nil, err
	}
	return db, nil
}

// FileSignature identifies a file version for shadow-extract reuse.
type FileSignature struct {
	Path    string
	Size    int64
	ModTime int64
}

// Signature stats the file and builds its signature.
func Signature(path string) (FileSignature, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return FileSignature{}, err
	}
	return FileSignature{Path: path, Size: fi.Size(), ModTime: fi.ModTime().UnixNano()}, nil
}

// ShadowManager keeps shadow extracts: on the first query against a text
// file it extracts the data into a TDE database; subsequent queries run
// against the engine instead of re-parsing the file (Sect. 4.4). Extracts
// are invalidated when the file changes.
type ShadowManager struct {
	mu      sync.Mutex
	entries map[string]*shadowEntry
	// PersistDir, when set, stores extracts as .tde files so later sessions
	// skip re-extraction ("the system can persist extracts in workbooks to
	// avoid recreating temporary tables at every load").
	PersistDir string
}

type shadowEntry struct {
	sig    FileSignature
	engine *engine.Engine
}

// NewShadowManager creates an empty manager.
func NewShadowManager() *ShadowManager {
	return &ShadowManager{entries: make(map[string]*shadowEntry)}
}

// Engine returns the shadow-extract engine for a file, creating (or
// reloading) the extract when missing or stale. The bool reports whether an
// extraction was performed on this call.
func (m *ShadowManager) Engine(path, tableName string, opt ParseOptions) (*engine.Engine, bool, error) {
	sig, err := Signature(path)
	if err != nil {
		return nil, false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[path]; ok && e.sig == sig {
		return e.engine, false, nil
	}
	if m.PersistDir != "" {
		if eng, ok := m.loadPersisted(sig); ok {
			m.entries[path] = &shadowEntry{sig: sig, engine: eng}
			return eng, false, nil
		}
	}
	db, err := CreateExtract(path, tableName, opt)
	if err != nil {
		return nil, false, err
	}
	eng := engine.New(db)
	m.entries[path] = &shadowEntry{sig: sig, engine: eng}
	if m.PersistDir != "" {
		// Best-effort persistence; queries proceed regardless.
		_ = storage.SaveDatabase(db, m.persistPath(sig))
	}
	return eng, true, nil
}

// Query runs TQL against the file's shadow extract.
func (m *ShadowManager) Query(ctx context.Context, path, tableName, tqlSrc string, opt ParseOptions) (*exec.Result, error) {
	eng, _, err := m.Engine(path, tableName, opt)
	if err != nil {
		return nil, err
	}
	return eng.Query(ctx, tqlSrc)
}

// Invalidate drops the cached extract for a path.
func (m *ShadowManager) Invalidate(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, path)
}

func (m *ShadowManager) persistPath(sig FileSignature) string {
	return fmt.Sprintf("%s/shadow_%x_%x.tde", m.PersistDir, hashString(sig.Path), uint64(sig.ModTime)^uint64(sig.Size))
}

func (m *ShadowManager) loadPersisted(sig FileSignature) (*engine.Engine, bool) {
	db, err := storage.OpenDatabase(m.persistPath(sig))
	if err != nil {
		return nil, false
	}
	return engine.New(db), true
}

// hashString is a small FNV-1a for stable persisted file names.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// QueryWithoutExtract parses the file and evaluates the query against a
// throwaway database — the pre-shadow-extract behaviour ("the system had to
// parse the file for every query"), kept as the baseline for E7.
func QueryWithoutExtract(ctx context.Context, path, tableName, tqlSrc string, opt ParseOptions) (*exec.Result, error) {
	db, err := CreateExtract(path, tableName, opt)
	if err != nil {
		return nil, err
	}
	return engine.New(db).Query(ctx, tqlSrc)
}
