// Package extract implements text-file data sources and shadow extracts
// (Sect. 4.4 of the paper): an in-house delimited-text parser with schema
// files and type/column-name inference, extraction of parsed files into TDE
// tables, and the shadow-extract manager that replaces per-query file
// parsing with one-time extraction.
package extract

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"vizq/internal/tde/storage"
)

// ParseOptions configures the text parser.
type ParseOptions struct {
	// Delimiter separates fields; 0 means comma.
	Delimiter byte
	// Schema, when non-nil, pins column names and types; otherwise both are
	// inferred ("the text parser accepts a schema file as additional input
	// if one is available; otherwise it attempts to discover the metadata by
	// performing type and column name inference").
	Schema *FileSchema
	// MaxRows bounds parsing (0 = no limit).
	MaxRows int
}

// FileSchema describes the columns of a text file.
type FileSchema struct {
	Cols      []SchemaCol
	HasHeader bool
}

// SchemaCol is one declared column.
type SchemaCol struct {
	Name string
	Type storage.Type
	Coll storage.Collation
}

// LoadSchemaFile reads a schema file: one "name:type[:collation]" line per
// column; a leading "header" line marks the data file as having a header row.
func LoadSchemaFile(path string) (*FileSchema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseSchema(f)
}

// ParseSchema parses schema text (see LoadSchemaFile).
func ParseSchema(r io.Reader) (*FileSchema, error) {
	s := &FileSchema{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.EqualFold(text, "header") {
			s.HasHeader = true
			continue
		}
		parts := strings.Split(text, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("extract: schema line %d: want name:type[:collation]", line)
		}
		t, err := storage.ParseType(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("extract: schema line %d: %w", line, err)
		}
		coll := storage.CollBinary
		if len(parts) == 3 {
			coll, err = storage.ParseCollation(strings.TrimSpace(parts[2]))
			if err != nil {
				return nil, fmt.Errorf("extract: schema line %d: %w", line, err)
			}
		}
		s.Cols = append(s.Cols, SchemaCol{Name: strings.TrimSpace(parts[0]), Type: t, Coll: coll})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Cols) == 0 {
		return nil, fmt.Errorf("extract: schema declares no columns")
	}
	return s, nil
}

// TextTable is the parsed form of a delimited file before extraction.
type TextTable struct {
	Schema *FileSchema
	// Rows holds raw field text; empty fields are null.
	Rows [][]string
}

// ParseFile parses a delimited text file from disk.
func ParseFile(path string, opt ParseOptions) (*TextTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f, opt)
}

// Parse reads delimited text. Fields may be double-quoted with "" escapes;
// records are newline-separated (CRLF tolerated). Unlike the Jet/Ace driver
// path the paper replaced, there is no file-size limit.
func Parse(r io.Reader, opt ParseOptions) (*TextTable, error) {
	delim := opt.Delimiter
	if delim == 0 {
		delim = ','
	}
	br := bufio.NewReaderSize(r, 1<<16)
	var rows [][]string
	lineNo := 0
	for {
		record, err := readRecord(br, delim)
		if record != nil {
			lineNo++
			rows = append(rows, record)
			if opt.MaxRows > 0 && len(rows) >= opt.MaxRows+1 {
				break
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("extract: line %d: %w", lineNo+1, err)
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("extract: empty input")
	}

	schema := opt.Schema
	if schema == nil {
		schema = inferSchema(rows)
	}
	width := len(schema.Cols)
	start := 0
	if schema.HasHeader {
		start = 1
	}
	data := rows[start:]
	if opt.MaxRows > 0 && len(data) > opt.MaxRows {
		data = data[:opt.MaxRows]
	}
	for i, row := range data {
		if len(row) != width {
			return nil, fmt.Errorf("extract: row %d has %d fields, want %d", start+i+1, len(row), width)
		}
	}
	return &TextTable{Schema: schema, Rows: data}, nil
}

// readRecord parses one record, honoring quoted fields that may contain the
// delimiter and newlines. Returns io.EOF with the final record (if any).
func readRecord(br *bufio.Reader, delim byte) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuotes := false
	sawAny := false
	for {
		ch, err := br.ReadByte()
		if err == io.EOF {
			if !sawAny && cur.Len() == 0 && len(fields) == 0 {
				return nil, io.EOF
			}
			fields = append(fields, cur.String())
			return fields, io.EOF
		}
		if err != nil {
			return nil, err
		}
		sawAny = true
		if inQuotes {
			if ch == '"' {
				next, err := br.ReadByte()
				if err == nil && next == '"' {
					cur.WriteByte('"')
					continue
				}
				if err == nil {
					if e := br.UnreadByte(); e != nil {
						return nil, e
					}
				}
				inQuotes = false
				continue
			}
			cur.WriteByte(ch)
			continue
		}
		switch ch {
		case '"':
			inQuotes = true
		case delim:
			fields = append(fields, cur.String())
			cur.Reset()
		case '\r':
			// swallow; expect \n next
		case '\n':
			fields = append(fields, cur.String())
			return fields, nil
		default:
			cur.WriteByte(ch)
		}
	}
}

// ---- inference ----

// inferSchema discovers column names and types: it samples the data rows to
// pick the narrowest type per column, and treats the first row as a header
// when its fields do not fit the types inferred from the rest.
func inferSchema(rows [][]string) *FileSchema {
	width := 0
	for _, r := range rows {
		if len(r) > width {
			width = len(r)
		}
	}
	sample := rows
	if len(sample) > 1000 {
		sample = sample[:1000]
	}
	body := sample
	if len(sample) > 1 {
		body = sample[1:]
	}
	types := make([]storage.Type, width)
	for c := 0; c < width; c++ {
		types[c] = inferColumnType(body, c)
	}
	hasHeader := false
	if len(rows) > 1 {
		for c := 0; c < width && c < len(rows[0]); c++ {
			if rows[0][c] == "" {
				continue
			}
			if types[c] != storage.TStr && !fits(rows[0][c], types[c]) {
				hasHeader = true
				break
			}
		}
		// All-string files: a header of short unique names is assumed when
		// every first-row cell is non-numeric and non-empty.
		if !hasHeader && allStrings(types) && looksLikeHeader(rows[0]) {
			hasHeader = true
		}
	}
	s := &FileSchema{HasHeader: hasHeader}
	for c := 0; c < width; c++ {
		name := fmt.Sprintf("F%d", c+1)
		if hasHeader && c < len(rows[0]) && strings.TrimSpace(rows[0][c]) != "" {
			name = strings.TrimSpace(rows[0][c])
		}
		s.Cols = append(s.Cols, SchemaCol{Name: name, Type: types[c], Coll: storage.CollBinary})
	}
	return s
}

func allStrings(types []storage.Type) bool {
	for _, t := range types {
		if t != storage.TStr {
			return false
		}
	}
	return true
}

func looksLikeHeader(row []string) bool {
	for _, f := range row {
		f = strings.TrimSpace(f)
		if f == "" || len(f) > 64 {
			return false
		}
		if _, err := strconv.ParseFloat(f, 64); err == nil {
			return false
		}
	}
	return len(row) > 0
}

// inferColumnType returns the narrowest type every non-empty sampled value
// fits: bool < int < float, else date, datetime, string.
func inferColumnType(rows [][]string, c int) storage.Type {
	candidates := []storage.Type{storage.TBool, storage.TInt, storage.TFloat, storage.TDate, storage.TDateTime}
	alive := make(map[storage.Type]bool, len(candidates))
	for _, t := range candidates {
		alive[t] = true
	}
	seen := false
	for _, row := range rows {
		if c >= len(row) || row[c] == "" {
			continue
		}
		seen = true
		for _, t := range candidates {
			if alive[t] && !fits(row[c], t) {
				alive[t] = false
			}
		}
	}
	if !seen {
		return storage.TStr
	}
	for _, t := range candidates {
		if alive[t] {
			return t
		}
	}
	return storage.TStr
}

func fits(s string, t storage.Type) bool {
	s = strings.TrimSpace(s)
	switch t {
	case storage.TBool:
		switch strings.ToLower(s) {
		case "true", "false", "0", "1":
			return true
		}
		return false
	case storage.TInt:
		_, err := strconv.ParseInt(s, 10, 64)
		return err == nil
	case storage.TFloat:
		_, err := strconv.ParseFloat(s, 64)
		return err == nil
	case storage.TDate:
		_, err := time.Parse("2006-01-02", s)
		return err == nil
	case storage.TDateTime:
		_, err := time.Parse("2006-01-02 15:04:05", s)
		return err == nil
	}
	return true
}

// ConvertValue parses field text into a typed value; empty text is null.
func ConvertValue(s string, t storage.Type) (storage.Value, error) {
	if s == "" {
		return storage.NullValue(t), nil
	}
	s = strings.TrimSpace(s)
	switch t {
	case storage.TBool:
		switch strings.ToLower(s) {
		case "true", "1":
			return storage.BoolValue(true), nil
		case "false", "0":
			return storage.BoolValue(false), nil
		}
		return storage.Value{}, fmt.Errorf("extract: bad bool %q", s)
	case storage.TInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("extract: bad int %q", s)
		}
		return storage.IntValue(i), nil
	case storage.TFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("extract: bad float %q", s)
		}
		return storage.FloatValue(f), nil
	case storage.TDate:
		d, err := time.Parse("2006-01-02", s)
		if err != nil {
			return storage.Value{}, fmt.Errorf("extract: bad date %q", s)
		}
		return storage.Value{Type: storage.TDate, I: d.Unix() / 86400}, nil
	case storage.TDateTime:
		d, err := time.Parse("2006-01-02 15:04:05", s)
		if err != nil {
			return storage.Value{}, fmt.Errorf("extract: bad datetime %q", s)
		}
		return storage.DateTimeValue(d), nil
	default:
		return storage.StrValue(s), nil
	}
}
