package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracingIsNilSafe(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, SpanQuery)
	if sp != nil {
		t.Fatalf("expected nil span without tracer, got %v", sp)
	}
	if ctx2 != ctx {
		t.Fatalf("expected identical context without tracer")
	}
	// Every method must be a no-op on nil.
	sp.Annotate("k", "v")
	sp.Annotatef("k", "%d", 1)
	sp.Finish()
	if sp.Duration() != 0 || sp.Children() != nil || sp.Attrs() != nil {
		t.Fatalf("nil span accessors must return zero values")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatalf("TracerFrom did not return the attached tracer")
	}

	ctx, root := StartSpan(ctx, SpanBatch)
	_, probe := StartSpan(ctx, SpanCacheProbe)
	probe.Annotate("hit", "false")
	probe.Finish()
	cctx, remote := StartSpan(ctx, SpanRemote)
	_, inner := StartSpan(cctx, SpanPoolAcquire)
	inner.Finish()
	remote.Finish()
	root.Finish()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != SpanBatch {
		t.Fatalf("roots = %v, want one %q", roots, SpanBatch)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name != SpanCacheProbe || kids[1].Name != SpanRemote {
		t.Fatalf("children = %v", kids)
	}
	if got := kids[1].Children(); len(got) != 1 || got[0].Name != SpanPoolAcquire {
		t.Fatalf("grandchildren = %v", got)
	}
	if attrs := kids[0].Attrs(); len(attrs) != 1 || attrs[0].Key != "hit" {
		t.Fatalf("attrs = %v", attrs)
	}
}

func TestConcurrentChildSpans(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, SpanBatch)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(ctx, SpanRemote)
			sp.Finish()
		}()
	}
	wg.Wait()
	root.Finish()
	if got := len(tr.Roots()[0].Children()); got != 32 {
		t.Fatalf("children = %d, want 32", got)
	}
}

func TestStagesAggregation(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, SpanBatch)
	for i := 0; i < 3; i++ {
		_, sp := StartSpan(ctx, SpanRemote)
		sp.Finish()
	}
	root.Finish()
	stages := tr.Stages()
	byName := map[string]StageStat{}
	for _, s := range stages {
		byName[s.Name] = s
	}
	if byName[SpanRemote].Count != 3 || byName[SpanBatch].Count != 1 {
		t.Fatalf("stages = %+v", stages)
	}
	text := FormatStages(stages)
	if !strings.Contains(text, SpanRemote) || !strings.Contains(text, "count") {
		t.Fatalf("FormatStages output missing content:\n%s", text)
	}

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), SpanBatch) {
		t.Fatalf("WriteText output missing root span:\n%s", buf.String())
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x.count") != c {
		t.Fatalf("counter not interned by name")
	}

	g := r.Gauge("x.depth")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.Max() != 5 {
		t.Fatalf("gauge = %d max %d, want 1 max 5", g.Value(), g.Max())
	}
	g.Set(7)
	if g.Value() != 7 || g.Max() != 7 {
		t.Fatalf("gauge after Set = %d max %d", g.Value(), g.Max())
	}

	h := r.Histogram("x.ns")
	for i := 0; i < 100; i++ {
		h.Observe(int64(i))
	}
	h.ObserveDuration(2 * time.Millisecond)
	if h.Count() != 101 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 < 31 || p50 > 127 {
		t.Fatalf("p50 = %d, want within [31,127]", p50)
	}
	if p99 := h.Quantile(0.999); p99 < 2_000_000-1 {
		t.Fatalf("p99.9 = %d, want to land in the 2ms bucket", p99)
	}
	if h.Quantile(0.0) != 0 && h.Count() > 0 && h.Quantile(0.0) > 1 {
		t.Fatalf("q0 = %d", h.Quantile(0.0))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestRegistryDumps(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.hits").Add(2)
	r.Gauge("b.depth").Set(3)
	r.Histogram("c.wait.ns").ObserveDuration(time.Millisecond)
	r.Histogram("d.rows").Observe(42)

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.hits", "b.depth", "c.wait.ns", "d.rows"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("WriteText missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, js.String())
	}
	if snap.Counters["a.hits"] != 2 || snap.Histograms["d.rows"].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// The default registry must intern by name process-wide: two packages asking
// for the same metric share one atomic.
func TestDefaultRegistryHelpers(t *testing.T) {
	c1, c2 := C("obs.test.shared"), C("obs.test.shared")
	if c1 != c2 {
		t.Fatal("C() did not intern")
	}
	if G("obs.test.g") != G("obs.test.g") || H("obs.test.h") != H("obs.test.h") {
		t.Fatal("G()/H() did not intern")
	}
}
