// Package obs is the observability layer for the query stack: per-query
// span trees (tracing) and named process-wide counters/gauges/histograms
// (metrics), both stdlib-only.
//
// Tracing is opt-in per request: attach a *Tracer to the context with
// WithTracer and every instrumented stage along the query path — batch
// planning, cache probes, fusion, pool acquisition, remote round trips,
// local answers, post-processing — records a span. Without a tracer in the
// context, StartSpan returns a nil *Span whose methods are no-ops, so the
// disabled path costs one context lookup and no allocation.
//
// Metrics are always on: hot paths increment lock-free atomics in the
// package-level Default registry. Registry dumps render as aligned text
// (WriteText) or JSON (WriteJSON).
package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span names used across the query path (the span taxonomy). Instrumented
// packages share these constants so stage aggregation lines up.
const (
	SpanBatch       = "batch"              // one ExecuteBatch call
	SpanQuery       = "query"              // one Execute call
	SpanCacheProbe  = "cache.probe"        // intelligent/literal cache lookup
	SpanFuse        = "fuse"               // opportunity graph + fusion planning
	SpanPoolAcquire = "pool.acquire"       // waiting for / dialing a connection
	SpanRemote      = "remote.roundtrip"   // one request/response on a connection
	SpanLocalAnswer = "local.answer"       // answering a query from a predecessor
	SpanPostProcess = "postprocess"        // deriving member results from a fused result
	SpanTempTable   = "temptable"          // externalizing filters into session temp tables
	SpanDSQuery     = "ds.query"           // one Data Server client query
	SpanRetry       = "resilience.retry"   // one retried attempt (attempt >= 2) incl. its backoff
	SpanBreaker     = "resilience.breaker" // a circuit-breaker fast-fail (near-zero duration by design)
	SpanSchedAdmit  = "sched.admit"        // admission control: direct admit, queue wait, or shed
	SpanHealthProbe = "balancer.probe"     // one half-open health probe against an ejected node
	SpanDrain       = "ds.drain"           // one graceful Data Server drain (quiesce + shed)
)

// Tracer collects finished root spans for one traced unit of work (a
// request, a benchmark pass, a load-sim session). It is safe for use from
// the concurrent goroutines a query batch spawns.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// New creates an empty tracer.
func New() *Tracer { return &Tracer{} }

// Span is one timed stage. Fields are written by the goroutine running the
// stage and read after Finish; child lists are mutex-guarded because sibling
// stages run concurrently.
type Span struct {
	Name  string
	Start time.Time
	End   time.Time

	tracer *Tracer
	parent *Span

	mu       sync.Mutex
	children []*Span
	attrs    []Attr
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

type ctxKey struct{}

type ctxVal struct {
	tracer *Tracer
	span   *Span
}

// WithTracer attaches a tracer to the context; subsequent StartSpan calls
// along this context record spans into it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{tracer: t})
}

// TracerFrom returns the tracer attached to the context, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.tracer
	}
	return nil
}

// StartSpan begins a span under the context's current span (or as a root).
// When the context carries no tracer it returns (ctx, nil) without
// allocating; all Span methods are nil-safe, so instrumentation sites need
// no branching.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok || v.tracer == nil {
		return ctx, nil
	}
	sp := &Span{Name: name, Start: time.Now(), tracer: v.tracer, parent: v.span}
	if v.span != nil {
		v.span.mu.Lock()
		v.span.children = append(v.span.children, sp)
		v.span.mu.Unlock()
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{tracer: v.tracer, span: sp}), sp
}

// Finish stamps the span's end time; root spans register with the tracer.
// Safe on a nil span.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.End = time.Now()
	if s.parent == nil {
		s.tracer.mu.Lock()
		s.tracer.roots = append(s.tracer.roots, s)
		s.tracer.mu.Unlock()
	}
}

// Annotate attaches a key/value pair. Safe on a nil span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Annotatef attaches a formatted value. Safe on a nil span.
func (s *Span) Annotatef(key, format string, args ...any) {
	if s == nil {
		return
	}
	s.Annotate(key, fmt.Sprintf(format, args...))
}

// Duration is the span's elapsed time (zero before Finish).
func (s *Span) Duration() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Children snapshots the child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs snapshots the annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Roots snapshots the finished root spans in finish order.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// StageStat aggregates all spans of one name across the tracer's trees.
type StageStat struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Stages walks every recorded span tree and aggregates by span name. The
// result is sorted by descending total time.
func (t *Tracer) Stages() []StageStat {
	acc := make(map[string]*StageStat)
	var walk func(*Span)
	walk = func(s *Span) {
		st := acc[s.Name]
		if st == nil {
			st = &StageStat{Name: s.Name}
			acc[s.Name] = st
		}
		st.Count++
		d := s.Duration()
		st.Total += d
		if d > st.Max {
			st.Max = d
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
	out := make([]StageStat, 0, len(acc))
	for _, st := range acc {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FormatStages renders stage aggregates as one aligned block, suitable for
// benchrunner's per-experiment breakdown.
func FormatStages(stats []StageStat) string {
	if len(stats) == 0 {
		return "(no spans recorded)"
	}
	var b strings.Builder
	nameW := len("stage")
	for _, s := range stats {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %7s  %10s  %10s  %10s\n", nameW, "stage", "count", "total", "mean", "max")
	for _, s := range stats {
		mean := time.Duration(0)
		if s.Count > 0 {
			mean = s.Total / time.Duration(s.Count)
		}
		fmt.Fprintf(&b, "%-*s  %7d  %10s  %10s  %10s\n", nameW, s.Name, s.Count,
			roundDur(s.Total), roundDur(mean), roundDur(s.Max))
	}
	return b.String()
}

// WriteText renders every span tree, indented, with durations and attrs.
func (t *Tracer) WriteText(w io.Writer) error {
	var write func(s *Span, depth int) error
	write = func(s *Span, depth int) error {
		attrs := ""
		for _, a := range s.Attrs() {
			attrs += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		if _, err := fmt.Fprintf(w, "%s%s %s%s\n",
			strings.Repeat("  ", depth), s.Name, roundDur(s.Duration()), attrs); err != nil {
			return err
		}
		for _, c := range s.Children() {
			if err := write(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range t.Roots() {
		if err := write(r, 0); err != nil {
			return err
		}
	}
	return nil
}

func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}
