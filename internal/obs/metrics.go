package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. Registration (first lookup of a name) takes
// a lock; every subsequent operation on the returned metric is a lock-free
// atomic, so instrumented hot paths fetch their metrics once at package
// init and never touch the registry again.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the instrumented packages use.
var Default = NewRegistry()

// C returns (registering if needed) the named counter in Default.
func C(name string) *Counter { return Default.Counter(name) }

// G returns (registering if needed) the named gauge in Default.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns (registering if needed) the named histogram in Default.
func H(name string) *Histogram { return Default.Histogram(name) }

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (e.g. pool depth) that also tracks its
// high-water mark.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by delta, updating the high-water mark.
func (g *Gauge) Add(delta int64) {
	cur := g.v.Add(delta)
	for {
		m := g.max.Load()
		if cur <= m || g.max.CompareAndSwap(m, cur) {
			return
		}
	}
}

// Set pins the gauge to v, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max reads the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// histBuckets is the fixed bucket count: bucket i holds observations v with
// bit-length i, i.e. v in [2^(i-1), 2^i). 48 buckets cover nanosecond
// durations up to ~3.2 days and row counts up to ~10^14.
const histBuckets = 48

// Histogram is a lock-free exponential histogram over non-negative int64
// observations (durations in nanoseconds, row counts, sizes). Buckets are
// powers of two: coarse, but enough to read off medians and tails without
// any locking or allocation on the observe path.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for quantile q in [0,1]: the top of the
// bucket containing the q-th observation. Coarse (power-of-two buckets) but
// monotone and lock-free.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<uint(histBuckets-1) - 1
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry, JSON-encodable.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]GaugeSnap     `json:"gauges"`
	Histograms map[string]HistogramSnap `json:"histograms"`
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramSnap is one histogram's snapshot.
type HistogramSnap struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]GaugeSnap, len(r.gauges)),
		Histograms: make(map[string]HistogramSnap, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnap{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnap{
			Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		}
	}
	return s
}

// WriteJSON dumps the registry as one indented JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText dumps the registry as sorted, aligned text. Histogram names
// ending in ".ns" render their statistics as durations.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter  %-32s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		if _, err := fmt.Fprintf(w, "gauge    %-32s %d (max %d)\n", name, g.Value, g.Max); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		var err error
		if len(name) > 3 && name[len(name)-3:] == ".ns" {
			_, err = fmt.Fprintf(w, "hist     %-32s n=%d mean=%s p50=%s p95=%s p99=%s\n", name,
				h.Count, roundDur(time.Duration(int64(h.Mean))),
				roundDur(time.Duration(h.P50)), roundDur(time.Duration(h.P95)), roundDur(time.Duration(h.P99)))
		} else {
			_, err = fmt.Fprintf(w, "hist     %-32s n=%d mean=%.1f p50=%d p95=%d p99=%d\n", name,
				h.Count, h.Mean, h.P50, h.P95, h.P99)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
