package query

import (
	"context"
	"testing"

	"vizq/internal/tde/engine"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

// TestHavingFilter reproduces the Fig. 2 Carrier zone shape: "the top 5
// carriers, based upon number of flights, that have more than N flights".
func TestHavingFilter(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 6000, Days: 60, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(db)
	ctx := context.Background()

	all := &Query{
		View:     View{Table: "flights"},
		Dims:     []Dim{{Col: "carrier"}},
		Measures: []Measure{{Fn: Count, As: "flights"}},
		OrderBy:  []Order{{Col: "flights", Desc: true}},
	}
	allRes, err := e.Query(ctx, all.ToTQL())
	if err != nil {
		t.Fatal(err)
	}
	threshold := allRes.Value(2, 1).I // the 3rd-busiest carrier's count

	top5having := all.Clone()
	top5having.Having = []Filter{GtFilter("flights", storage.IntValue(threshold-1))}
	top5having.N = 5
	res, err := e.Query(ctx, top5having.ToTQL())
	if err != nil {
		t.Fatalf("having query failed: %v\n%s", err, top5having.ToTQL())
	}
	// Only carriers at/above the threshold survive, capped at 5.
	if res.N != 3 {
		t.Fatalf("having kept %d carriers, want 3", res.N)
	}
	for i := 0; i < res.N; i++ {
		if res.Value(i, 1).I < threshold {
			t.Errorf("carrier below threshold leaked: %v", res.Row(i))
		}
	}
	// Key identity: having changes the cache key.
	if all.Key() == top5having.Key() {
		t.Error("having must change the query key")
	}
	if err := top5having.Validate(); err != nil {
		t.Fatal(err)
	}
}
