package query

import (
	"strings"
	"testing"

	"vizq/internal/tde/storage"
)

func TestTempFilter(t *testing.T) {
	f := TempFilter("carrier", "majors")
	if f.Kind != FilterTemp || f.Temp != "majors" {
		t.Fatalf("temp filter = %+v", f)
	}
	g := TempFilter("carrier", "MAJORS")
	if !f.Implies(g, storage.CollBinary) || !f.Equals(g, storage.CollBinary) {
		t.Error("temp filters with same name should be equal (case-insensitive)")
	}
	other := TempFilter("carrier", "minors")
	if f.Implies(other, storage.CollBinary) {
		t.Error("different temp names are opaque")
	}
	in := InFilter("carrier", storage.StrValue("WN"))
	if f.Implies(in, storage.CollBinary) || in.Implies(f, storage.CollBinary) {
		t.Error("temp vs in is unprovable")
	}
	// Key stability + validation.
	if f.key() == other.key() {
		t.Error("keys must differ")
	}
	q := &Query{View: View{Table: "t"}, Dims: []Dim{{Col: "a"}},
		Filters: []Filter{{Col: "a", Kind: FilterTemp}}}
	if err := q.Validate(); err == nil {
		t.Error("temp filter without name should fail validation")
	}
	// Rendering an unresolved temp filter produces an unparsable marker.
	if !strings.Contains(FilterTQL(f), "unresolved-temp-filter") {
		t.Errorf("render = %s", FilterTQL(f))
	}
}

func TestLtGtFilters(t *testing.T) {
	lt := LtFilter("x", storage.IntValue(10))
	if !lt.HiSet || !lt.HiOpen || lt.LoSet {
		t.Fatalf("lt = %+v", lt)
	}
	gt := GtFilter("x", storage.IntValue(0))
	if !gt.LoSet || !gt.LoOpen || gt.HiSet {
		t.Fatalf("gt = %+v", gt)
	}
	closed := RangeFilter("x", storage.IntValue(1), storage.IntValue(9))
	if !closed.Implies(lt, storage.CollBinary) {
		t.Error("[1,9] implies <10")
	}
	if !closed.Implies(gt, storage.CollBinary) {
		t.Error("[1,9] implies >0")
	}
	if lt.Implies(closed, storage.CollBinary) {
		t.Error("<10 does not imply [1,9]")
	}
}

func TestFilterEquals(t *testing.T) {
	a := InFilter("c", storage.StrValue("x"), storage.StrValue("y"))
	b := InFilter("c", storage.StrValue("y"), storage.StrValue("x"))
	if !a.Equals(b, storage.CollBinary) {
		t.Error("order-insensitive equality")
	}
	c := InFilter("c", storage.StrValue("x"))
	if a.Equals(c, storage.CollBinary) {
		t.Error("different sets are unequal")
	}
	r1 := RangeFilter("c", storage.IntValue(1), storage.IntValue(2))
	r2 := RangeFilter("c", storage.IntValue(1), storage.IntValue(2))
	if !r1.Equals(r2, storage.CollBinary) {
		t.Error("identical ranges are equal")
	}
}

func TestOutputColumnsAndNames(t *testing.T) {
	q := &Query{
		View: View{Table: "t"},
		Dims: []Dim{{Col: "a"}, {Col: "b", As: "bee"}, {Expr: "(weekday d)", As: "wd"}},
		Measures: []Measure{
			{Fn: Count},
			{Fn: Sum, Col: "x"},
			{Fn: Avg, Col: "y", As: "avg_y"},
		},
	}
	got := q.OutputColumns()
	want := []string{"a", "bee", "wd", "count", "sum_x", "avg_y"}
	if len(got) != len(want) {
		t.Fatalf("cols = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("col %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestViewKeyStability(t *testing.T) {
	v1 := View{Table: "f", Joins: []JoinSpec{{Table: "a", LeftCol: "x", RightCol: "y"}, {Table: "b", LeftCol: "p", RightCol: "q"}}}
	v2 := View{Table: "F", Joins: []JoinSpec{{Table: "B", LeftCol: "P", RightCol: "Q"}, {Table: "A", LeftCol: "X", RightCol: "Y"}}}
	if v1.Key() != v2.Key() {
		t.Errorf("view keys differ:\n%s\n%s", v1.Key(), v2.Key())
	}
}
