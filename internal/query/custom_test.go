package query

import (
	"context"
	"testing"

	"vizq/internal/tde/engine"
	"vizq/internal/workload"
)

func TestCustomRelationView(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 4000, Days: 30, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(db)
	// A "custom SQL" style relation: a pre-filtered subselect.
	q := &Query{
		View: View{Custom: `(select (table flights) (> distance 1000))`,
			Joins: []JoinSpec{{Table: "carriers", LeftCol: "carrier", RightCol: "carrier"}}},
		Dims:     []Dim{{Col: "airline_name"}},
		Measures: []Measure{{Fn: Count, As: "n"}},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(context.Background(), q.ToTQL())
	if err != nil {
		t.Fatalf("custom view failed: %v\n%s", err, q.ToTQL())
	}
	if res.N == 0 {
		t.Fatal("no rows")
	}
	var total int64
	for i := 0; i < res.N; i++ {
		total += res.Value(i, 1).I
	}
	if total == 0 || total >= 4000 {
		t.Errorf("filtered custom relation total = %d", total)
	}
	// Identity: two queries over different custom text never share a bucket.
	q2 := q.Clone()
	q2.View.Custom = `(select (table flights) (> distance 2000))`
	if q.GroupKey() == q2.GroupKey() {
		t.Error("different custom relations must have different group keys")
	}
	// Missing both table and custom fails validation.
	bad := &Query{View: View{}, Dims: []Dim{{Col: "a"}}}
	if err := bad.Validate(); err == nil {
		t.Error("empty view should fail")
	}
}
