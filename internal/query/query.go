// Package query defines Tableau's internal query model: the
// aggregate-select-project queries that dashboard zones generate
// (Sect. 3.1). Internal queries are structural — dimensions, measures and
// canonical filters over a view of one data source — so the intelligent
// cache can reason about subsumption before any dialect text is produced.
package query

import (
	"fmt"
	"sort"
	"strings"

	"vizq/internal/tde/storage"
)

// AggFunc names an aggregate in the internal model.
type AggFunc string

// Supported aggregates.
const (
	Count  AggFunc = "count"
	Sum    AggFunc = "sum"
	Avg    AggFunc = "avg"
	Min    AggFunc = "min"
	Max    AggFunc = "max"
	CountD AggFunc = "countd"
)

// View names the relation a query runs against: a primary table plus
// optional star-schema joins, or a custom relation (the internal form of
// "parameterized custom SQL queries" — Sect. 3.1). A custom relation is an
// opaque TQL subtree; the cache matches it only by identical text.
type View struct {
	Table string
	Joins []JoinSpec
	// Custom, when non-empty, replaces Table as the base relation; it must
	// be a TQL operator expression (e.g. a select over a table).
	Custom string
}

// JoinSpec joins a dimension table to the view.
type JoinSpec struct {
	Table    string
	LeftCol  string // column of the primary table
	RightCol string // column of the joined table
}

// Key returns the canonical identity of the view.
func (v View) Key() string {
	base := strings.ToLower(v.Table)
	if v.Custom != "" {
		base = "custom:" + v.Custom
	}
	parts := []string{base}
	joins := make([]string, len(v.Joins))
	for i, j := range v.Joins {
		joins[i] = fmt.Sprintf("%s:%s=%s", strings.ToLower(j.Table), strings.ToLower(j.LeftCol), strings.ToLower(j.RightCol))
	}
	sort.Strings(joins)
	return strings.Join(append(parts, joins...), "|")
}

// Dim is a group-by output: a column or a calculation rendered in the
// engine's expression syntax. Calculations match only by identical text.
type Dim struct {
	Col string // column name, or "" when Expr is set
	// Expr is a TQL calculation, e.g. "(weekday date)".
	Expr string
	// As names the output; defaults to Col.
	As string
}

// Name returns the output column name.
func (d Dim) Name() string {
	if d.As != "" {
		return d.As
	}
	return d.Col
}

func (d Dim) key() string {
	if d.Expr != "" {
		return "e:" + d.Expr
	}
	return "c:" + strings.ToLower(d.Col)
}

// Measure is one aggregate output.
type Measure struct {
	Fn  AggFunc
	Col string // "" for count(*)
	As  string
}

// Name returns the output column name.
func (m Measure) Name() string {
	if m.As != "" {
		return m.As
	}
	if m.Col == "" {
		return string(m.Fn)
	}
	return fmt.Sprintf("%s_%s", m.Fn, m.Col)
}

func (m Measure) key() string {
	return fmt.Sprintf("%s(%s)", m.Fn, strings.ToLower(m.Col))
}

// FilterKind discriminates canonical filter shapes.
type FilterKind uint8

// Filter kinds.
const (
	// FilterIn keeps rows whose column is in a value set (categorical
	// filters, multi-select quick filters).
	FilterIn FilterKind = iota
	// FilterRange keeps rows within an interval (range filters, date
	// filters); either bound may be absent.
	FilterRange
	// FilterTemp keeps rows whose column appears in a named client-side
	// temporary table (Sect. 5.3). It is resolved by Data Server — into a
	// join against a backend temp table, or an inline IN list — before any
	// text generation.
	FilterTemp
)

// Filter is one conjunct of the query's predicate, in canonical per-column
// form so implication is decidable (the matching logic of Sect. 3.2).
type Filter struct {
	Col  string
	Kind FilterKind

	// FilterIn payload.
	In []storage.Value

	// FilterRange payload.
	Lo, Hi         storage.Value
	LoSet, HiSet   bool
	LoOpen, HiOpen bool // true = strict inequality

	// FilterTemp payload: the client temp table name.
	Temp string
}

// TempFilter builds a temp-table-backed filter.
func TempFilter(col, temp string) Filter {
	return Filter{Col: col, Kind: FilterTemp, Temp: temp}
}

// InFilter builds a set filter.
func InFilter(col string, vals ...storage.Value) Filter {
	return Filter{Col: col, Kind: FilterIn, In: vals}
}

// RangeFilter builds a closed-interval filter; use the Set flags' zero
// values by passing storage.NullValue for an open end.
func RangeFilter(col string, lo, hi storage.Value) Filter {
	f := Filter{Col: col, Kind: FilterRange}
	if !lo.Null {
		f.Lo, f.LoSet = lo, true
	}
	if !hi.Null {
		f.Hi, f.HiSet = hi, true
	}
	return f
}

// GtFilter builds a strict lower-bound filter.
func GtFilter(col string, lo storage.Value) Filter {
	return Filter{Col: col, Kind: FilterRange, Lo: lo, LoSet: true, LoOpen: true}
}

// LtFilter builds a strict upper-bound filter.
func LtFilter(col string, hi storage.Value) Filter {
	return Filter{Col: col, Kind: FilterRange, Hi: hi, HiSet: true, HiOpen: true}
}

func (f Filter) key() string {
	var b strings.Builder
	b.WriteString(strings.ToLower(f.Col))
	if f.Kind == FilterTemp {
		b.WriteString(" temp:")
		b.WriteString(strings.ToLower(f.Temp))
		return b.String()
	}
	if f.Kind == FilterIn {
		b.WriteString(" in [")
		vals := make([]string, len(f.In))
		for i, v := range f.In {
			vals[i] = v.String()
		}
		sort.Strings(vals)
		b.WriteString(strings.Join(vals, ","))
		b.WriteString("]")
		return b.String()
	}
	if f.LoSet {
		if f.LoOpen {
			fmt.Fprintf(&b, " >%s", f.Lo)
		} else {
			fmt.Fprintf(&b, " >=%s", f.Lo)
		}
	}
	if f.HiSet {
		if f.HiOpen {
			fmt.Fprintf(&b, " <%s", f.Hi)
		} else {
			fmt.Fprintf(&b, " <=%s", f.Hi)
		}
	}
	return b.String()
}

// Implies reports whether rows satisfying f necessarily satisfy g, for
// filters on the same column. This is the per-conjunct implication proof
// the intelligent cache runs (Sect. 3.2: "we attempt to prove that results
// of the stored query subsume the requested data").
func (f Filter) Implies(g Filter, coll storage.Collation) bool {
	if !strings.EqualFold(f.Col, g.Col) {
		return false
	}
	if f.Kind == FilterTemp || g.Kind == FilterTemp {
		// Temp contents are opaque: only identity is provable.
		return f.Kind == g.Kind && strings.EqualFold(f.Temp, g.Temp)
	}
	switch {
	case f.Kind == FilterIn && g.Kind == FilterIn:
		for _, v := range f.In {
			if !containsValue(g.In, v, coll) {
				return false
			}
		}
		return true
	case f.Kind == FilterIn && g.Kind == FilterRange:
		for _, v := range f.In {
			if !g.rangeContains(v, coll) {
				return false
			}
		}
		return true
	case f.Kind == FilterRange && g.Kind == FilterRange:
		if g.LoSet {
			if !f.LoSet {
				return false
			}
			c := storage.Compare(f.Lo, g.Lo, coll)
			if c < 0 || (c == 0 && g.LoOpen && !f.LoOpen) {
				return false
			}
		}
		if g.HiSet {
			if !f.HiSet {
				return false
			}
			c := storage.Compare(f.Hi, g.Hi, coll)
			if c > 0 || (c == 0 && g.HiOpen && !f.HiOpen) {
				return false
			}
		}
		return true
	default: // range ⊆ finite set: not provable without the domain
		return false
	}
}

func (f Filter) rangeContains(v storage.Value, coll storage.Collation) bool {
	if f.LoSet {
		c := storage.Compare(v, f.Lo, coll)
		if c < 0 || (c == 0 && f.LoOpen) {
			return false
		}
	}
	if f.HiSet {
		c := storage.Compare(v, f.Hi, coll)
		if c > 0 || (c == 0 && f.HiOpen) {
			return false
		}
	}
	return true
}

func containsValue(set []storage.Value, v storage.Value, coll storage.Collation) bool {
	for _, s := range set {
		if storage.Equal(s, v, coll) {
			return true
		}
	}
	return false
}

// Equals reports structural filter equality (up to In order).
func (f Filter) Equals(g Filter, coll storage.Collation) bool {
	return f.Implies(g, coll) && g.Implies(f, coll)
}

// Order is one sort key of the query output.
type Order struct {
	Col  string // output column name (dim or measure)
	Desc bool
}

// Query is the internal aggregate-select-project query.
type Query struct {
	// DataSource names the connection or published data source.
	DataSource string
	View       View
	Dims       []Dim
	Measures   []Measure
	Filters    []Filter
	// Having filters apply to the aggregated output (by output column
	// name) — the Fig. 2 Carrier zone keeps "the top 5 carriers ... that
	// have more than 1,400 Flights/Day". Like top-n, having-filtered
	// results answer only identical requests from the cache.
	Having  []Filter
	OrderBy []Order
	// N > 0 requests the top N rows under OrderBy.
	N int
}

// Clone deep-copies the query.
func (q *Query) Clone() *Query {
	c := *q
	c.View.Joins = append([]JoinSpec(nil), q.View.Joins...)
	c.Dims = append([]Dim(nil), q.Dims...)
	c.Measures = append([]Measure(nil), q.Measures...)
	c.Filters = make([]Filter, len(q.Filters))
	for i, f := range q.Filters {
		c.Filters[i] = f
		c.Filters[i].In = append([]storage.Value(nil), f.In...)
	}
	c.Having = make([]Filter, len(q.Having))
	for i, f := range q.Having {
		c.Having[i] = f
		c.Having[i].In = append([]storage.Value(nil), f.In...)
	}
	c.OrderBy = append([]Order(nil), q.OrderBy...)
	return &c
}

// GroupKey identifies the cache bucket: data source + view. Candidates
// within a bucket are checked with the full matching logic.
func (q *Query) GroupKey() string {
	return strings.ToLower(q.DataSource) + "||" + q.View.Key()
}

// Key is the full structural identity of the query (the intelligent cache
// key): stable under filter and In-value reordering.
func (q *Query) Key() string {
	var b strings.Builder
	b.WriteString(q.GroupKey())
	b.WriteString("|d:")
	for _, d := range q.Dims {
		b.WriteString(d.key())
		b.WriteString(",")
	}
	b.WriteString("|m:")
	for _, m := range q.Measures {
		b.WriteString(m.key())
		b.WriteString(",")
	}
	b.WriteString("|f:")
	fkeys := make([]string, len(q.Filters))
	for i, f := range q.Filters {
		fkeys[i] = f.key()
	}
	sort.Strings(fkeys)
	b.WriteString(strings.Join(fkeys, "&"))
	if len(q.Having) > 0 {
		hk := make([]string, len(q.Having))
		for i, h := range q.Having {
			hk[i] = h.key()
		}
		sort.Strings(hk)
		b.WriteString("|h:")
		b.WriteString(strings.Join(hk, "&"))
	}
	if q.N > 0 {
		fmt.Fprintf(&b, "|top:%d", q.N)
		for _, o := range q.OrderBy {
			fmt.Fprintf(&b, ",%s:%v", strings.ToLower(o.Col), o.Desc)
		}
	}
	return b.String()
}

// OutputColumns lists the result column names in order.
func (q *Query) OutputColumns() []string {
	out := make([]string, 0, len(q.Dims)+len(q.Measures))
	for _, d := range q.Dims {
		out = append(out, d.Name())
	}
	for _, m := range q.Measures {
		out = append(out, m.Name())
	}
	return out
}

// Validate performs structural sanity checks.
func (q *Query) Validate() error {
	if q.View.Table == "" && q.View.Custom == "" {
		return fmt.Errorf("query: missing view table")
	}
	if len(q.Dims) == 0 && len(q.Measures) == 0 {
		return fmt.Errorf("query: no outputs")
	}
	seen := map[string]bool{}
	for _, c := range q.OutputColumns() {
		l := strings.ToLower(c)
		if seen[l] {
			return fmt.Errorf("query: duplicate output column %q", c)
		}
		seen[l] = true
	}
	for _, m := range q.Measures {
		switch m.Fn {
		case Count, Sum, Avg, Min, Max, CountD:
		default:
			return fmt.Errorf("query: unknown aggregate %q", m.Fn)
		}
		if m.Col == "" && m.Fn != Count {
			return fmt.Errorf("query: %s requires a column", m.Fn)
		}
	}
	if q.N < 0 {
		return fmt.Errorf("query: negative top-n")
	}
	if q.N > 0 && len(q.OrderBy) == 0 {
		return fmt.Errorf("query: top-n requires an ordering")
	}
	for _, f := range q.Filters {
		if f.Col == "" {
			return fmt.Errorf("query: filter without column")
		}
		if f.Kind == FilterRange && !f.LoSet && !f.HiSet {
			return fmt.Errorf("query: unbounded range filter on %s", f.Col)
		}
		if f.Kind == FilterTemp && f.Temp == "" {
			return fmt.Errorf("query: temp filter without table name on %s", f.Col)
		}
	}
	return nil
}
