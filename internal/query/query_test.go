package query

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"vizq/internal/tde/engine"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

func iv(i int64) storage.Value  { return storage.IntValue(i) }
func sv(s string) storage.Value { return storage.StrValue(s) }

func TestFilterImplication(t *testing.T) {
	coll := storage.CollBinary
	cases := []struct {
		name string
		a, b Filter
		want bool
	}{
		{"subset in", InFilter("c", sv("x")), InFilter("c", sv("x"), sv("y")), true},
		{"superset in", InFilter("c", sv("x"), sv("y")), InFilter("c", sv("x")), false},
		{"equal in reordered", InFilter("c", sv("y"), sv("x")), InFilter("c", sv("x"), sv("y")), true},
		{"different col", InFilter("a", sv("x")), InFilter("b", sv("x")), false},
		{"narrow range", RangeFilter("c", iv(5), iv(10)), RangeFilter("c", iv(0), iv(20)), true},
		{"wide range", RangeFilter("c", iv(0), iv(20)), RangeFilter("c", iv(5), iv(10)), false},
		{"half open implies unbounded", GtFilter("c", iv(5)), RangeFilter("c", iv(0), storage.NullValue(storage.TInt)), true},
		{"unbounded does not imply bounded", RangeFilter("c", iv(0), storage.NullValue(storage.TInt)), RangeFilter("c", iv(0), iv(10)), false},
		{"strict vs closed same bound", GtFilter("c", iv(5)), RangeFilter("c", iv(5), storage.NullValue(storage.TInt)), true},
		{"closed vs strict same bound", RangeFilter("c", iv(5), storage.NullValue(storage.TInt)), GtFilter("c", iv(5)), false},
		{"in implies covering range", InFilter("c", iv(3), iv(7)), RangeFilter("c", iv(0), iv(10)), true},
		{"in outside range", InFilter("c", iv(3), iv(70)), RangeFilter("c", iv(0), iv(10)), false},
		{"range into in unprovable", RangeFilter("c", iv(3), iv(4)), InFilter("c", iv(3), iv(4)), false},
	}
	for _, c := range cases {
		if got := c.a.Implies(c.b, coll); got != c.want {
			t.Errorf("%s: Implies = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFilterImpliesReflexiveQuick(t *testing.T) {
	f := func(vals []int16, lo, hi int16) bool {
		in := make([]storage.Value, len(vals))
		for i, v := range vals {
			in[i] = iv(int64(v))
		}
		a := InFilter("c", in...)
		r := RangeFilter("c", iv(int64(lo)), iv(int64(hi)))
		// Reflexivity.
		if len(in) > 0 && !a.Implies(a, storage.CollBinary) {
			return false
		}
		return r.Implies(r, storage.CollBinary)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterImplicationTransitiveQuick(t *testing.T) {
	// a ⇒ b and b ⇒ c must give a ⇒ c for ranges.
	f := func(a1, a2, b1, b2, c1, c2 int8) bool {
		mk := func(lo, hi int8) Filter {
			if lo > hi {
				lo, hi = hi, lo
			}
			return RangeFilter("x", iv(int64(lo)), iv(int64(hi)))
		}
		a, b, c := mk(a1, a2), mk(b1, b2), mk(c1, c2)
		coll := storage.CollBinary
		if a.Implies(b, coll) && b.Implies(c, coll) && !a.Implies(c, coll) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQueryKeyStability(t *testing.T) {
	q1 := &Query{
		DataSource: "flights",
		View:       View{Table: "flights"},
		Dims:       []Dim{{Col: "carrier"}},
		Measures:   []Measure{{Fn: Count, As: "n"}},
		Filters: []Filter{
			InFilter("origin", sv("LAX"), sv("SFO")),
			GtFilter("delay", storage.FloatValue(0)),
		},
	}
	q2 := q1.Clone()
	// Reorder filters and in-values: key must not change.
	q2.Filters[0], q2.Filters[1] = q2.Filters[1], q2.Filters[0]
	q2.Filters[1].In[0], q2.Filters[1].In[1] = q2.Filters[1].In[1], q2.Filters[1].In[0]
	if q1.Key() != q2.Key() {
		t.Errorf("keys differ:\n%s\n%s", q1.Key(), q2.Key())
	}
	// A different filter value changes the key.
	q3 := q1.Clone()
	q3.Filters[0].In = append(q3.Filters[0].In, sv("JFK"))
	if q1.Key() == q3.Key() {
		t.Error("different filters must have different keys")
	}
	// Same group key though.
	if q1.GroupKey() != q3.GroupKey() {
		t.Error("group keys should match for the same view")
	}
}

func TestValidate(t *testing.T) {
	good := &Query{View: View{Table: "t"}, Dims: []Dim{{Col: "a"}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	bad := []*Query{
		{View: View{}, Dims: []Dim{{Col: "a"}}},
		{View: View{Table: "t"}},
		{View: View{Table: "t"}, Measures: []Measure{{Fn: "median", Col: "x"}}},
		{View: View{Table: "t"}, Measures: []Measure{{Fn: Sum}}},
		{View: View{Table: "t"}, Dims: []Dim{{Col: "a"}}, N: 3},
		{View: View{Table: "t"}, Dims: []Dim{{Col: "a"}, {Col: "A"}}},
		{View: View{Table: "t"}, Dims: []Dim{{Col: "a"}}, Filters: []Filter{{Col: "x", Kind: FilterRange}}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestToTQLExecutes(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 5000, Days: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(db)
	q := &Query{
		DataSource: "flights",
		View:       View{Table: "flights", Joins: []JoinSpec{{Table: "carriers", LeftCol: "carrier", RightCol: "carrier"}}},
		Dims:       []Dim{{Col: "airline_name"}},
		Measures: []Measure{
			{Fn: Count, As: "flights"},
			{Fn: Avg, Col: "delay", As: "avgdelay"},
		},
		Filters: []Filter{
			InFilter("origin", sv("LAX"), sv("SFO"), sv("ATL")),
			GtFilter("distance", iv(200)),
		},
		OrderBy: []Order{{Col: "flights", Desc: true}},
		N:       5,
	}
	src := q.ToTQL()
	res, err := e.Query(context.Background(), src)
	if err != nil {
		t.Fatalf("generated TQL failed: %v\n%s", err, src)
	}
	if res.N == 0 || res.N > 5 {
		t.Errorf("rows = %d", res.N)
	}
	cols := q.OutputColumns()
	for i, c := range cols {
		if !strings.EqualFold(res.Schema[i].Name, c) {
			t.Errorf("column %d = %s, want %s", i, res.Schema[i].Name, c)
		}
	}
	// Sorted descending by flights.
	for i := 1; i < res.N; i++ {
		if res.Value(i, 1).I > res.Value(i-1, 1).I {
			t.Error("top-n not ordered")
		}
	}
}

func TestToTQLCalculatedDim(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 3000, Days: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(db)
	q := &Query{
		View:     View{Table: "flights"},
		Dims:     []Dim{{Expr: "(weekday date)", As: "wd"}},
		Measures: []Measure{{Fn: Count, As: "n"}},
	}
	res, err := e.Query(context.Background(), q.ToTQL())
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 || res.N > 7 {
		t.Errorf("weekday groups = %d", res.N)
	}
}
