package query

import (
	"fmt"
	"strings"

	"vizq/internal/tde/storage"
)

// TQLLiteral renders a value as TQL literal text.
func TQLLiteral(v storage.Value) string {
	if v.Null {
		return "null"
	}
	switch v.Type {
	case storage.TStr:
		return fmt.Sprintf("%q", v.S)
	case storage.TDate:
		return fmt.Sprintf("(date %q)", v.String())
	case storage.TDateTime:
		return fmt.Sprintf("(datetime %q)", v.String())
	default:
		return v.String()
	}
}

// FilterTQL renders a canonical filter as a TQL predicate. Temp-table
// filters must be resolved before text generation; an unresolved one is
// rendered as a marker form that fails binding loudly.
func FilterTQL(f Filter) string {
	if f.Kind == FilterTemp {
		return fmt.Sprintf("(unresolved-temp-filter %s %q)", f.Col, f.Temp)
	}
	if f.Kind == FilterIn {
		vals := make([]string, len(f.In))
		for i, v := range f.In {
			vals[i] = TQLLiteral(v)
		}
		return fmt.Sprintf("(in %s [%s])", f.Col, strings.Join(vals, " "))
	}
	var parts []string
	if f.LoSet {
		op := ">="
		if f.LoOpen {
			op = ">"
		}
		parts = append(parts, fmt.Sprintf("(%s %s %s)", op, f.Col, TQLLiteral(f.Lo)))
	}
	if f.HiSet {
		op := "<="
		if f.HiOpen {
			op = "<"
		}
		parts = append(parts, fmt.Sprintf("(%s %s %s)", op, f.Col, TQLLiteral(f.Hi)))
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(and " + strings.Join(parts, " ") + ")"
}

// ToTQL compiles the internal query into TQL text — the dialect of the TDE
// and of the simulated remote databases.
func (q *Query) ToTQL() string {
	rel := fmt.Sprintf("(table %s)", q.View.Table)
	if q.View.Custom != "" {
		rel = q.View.Custom
	}
	for _, j := range q.View.Joins {
		rel = fmt.Sprintf("(join %s (table %s) (on (= %s %s)))", rel, j.Table, j.LeftCol, j.RightCol)
	}
	if len(q.Filters) > 0 {
		preds := make([]string, len(q.Filters))
		for i, f := range q.Filters {
			preds[i] = FilterTQL(f)
		}
		pred := preds[0]
		if len(preds) > 1 {
			pred = "(and " + strings.Join(preds, " ") + ")"
		}
		rel = fmt.Sprintf("(select %s %s)", rel, pred)
	}

	var groups []string
	for _, d := range q.Dims {
		if d.Expr != "" {
			groups = append(groups, fmt.Sprintf("(%s %s)", d.Name(), d.Expr))
		} else if d.As != "" && !strings.EqualFold(d.As, d.Col) {
			groups = append(groups, fmt.Sprintf("(%s %s)", d.As, d.Col))
		} else {
			groups = append(groups, d.Col)
		}
	}
	var aggs []string
	for _, m := range q.Measures {
		arg := m.Col
		if arg == "" {
			arg = "*"
		}
		aggs = append(aggs, fmt.Sprintf("(%s %s %s)", m.Name(), m.Fn, arg))
	}
	out := fmt.Sprintf("(aggregate %s (groupby %s) (aggs %s))",
		rel, strings.Join(groups, " "), strings.Join(aggs, " "))

	if len(q.Having) > 0 {
		preds := make([]string, len(q.Having))
		for i, h := range q.Having {
			preds[i] = FilterTQL(h)
		}
		pred := preds[0]
		if len(preds) > 1 {
			pred = "(and " + strings.Join(preds, " ") + ")"
		}
		out = fmt.Sprintf("(select %s %s)", out, pred)
	}

	if q.N > 0 {
		keys := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			dir := "asc"
			if o.Desc {
				dir = "desc"
			}
			keys[i] = fmt.Sprintf("(%s %s)", dir, o.Col)
		}
		return fmt.Sprintf("(topn %s %d %s)", out, q.N, strings.Join(keys, " "))
	}
	if len(q.OrderBy) > 0 {
		keys := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			dir := "asc"
			if o.Desc {
				dir = "desc"
			}
			keys[i] = fmt.Sprintf("(%s %s)", dir, o.Col)
		}
		return fmt.Sprintf("(order %s %s)", out, strings.Join(keys, " "))
	}
	return out
}
