package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"vizq/internal/tde/exec"
	"vizq/internal/tde/opt"
	"vizq/internal/tde/storage"
	"vizq/internal/workload"
)

var testEngine *Engine

func getEngine(t testing.TB) *Engine {
	if testEngine == nil {
		db, err := workload.BuildFlightsDB(workload.DefaultFlightsConfig())
		if err != nil {
			t.Fatal(err)
		}
		testEngine = New(db)
	}
	return testEngine
}

func ctx() context.Context { return context.Background() }

// rowsAsStrings renders result rows into sortable strings for order-free
// comparison.
func rowsAsStrings(r *exec.Result) []string {
	out := make([]string, r.N)
	for i := 0; i < r.N; i++ {
		parts := make([]string, len(r.Cols))
		for c := range r.Cols {
			v := r.Value(i, c)
			if v.Type == storage.TFloat && !v.Null {
				parts[c] = fmt.Sprintf("%.6f", v.F)
			} else {
				parts[c] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, a, b *exec.Result) {
	t.Helper()
	ra, rb := rowsAsStrings(a), rowsAsStrings(b)
	if len(ra) != len(rb) {
		t.Fatalf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("row %d differs:\n  %s\n  %s", i, ra[i], rb[i])
		}
	}
}

func TestCountStar(t *testing.T) {
	e := getEngine(t)
	res, err := e.Query(ctx(), `(aggregate (table flights) (groupby) (aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 {
		t.Fatalf("N = %d", res.N)
	}
	want := int64(workload.DefaultFlightsConfig().Rows)
	if got := res.Value(0, 0).I; got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

func TestGroupByCarrier(t *testing.T) {
	e := getEngine(t)
	res, err := e.Query(ctx(), `
		(aggregate (table flights)
			(groupby carrier)
			(aggs (n count *) (total sum distance) (avgdelay avg delay)))`)
	if err != nil {
		t.Fatal(err)
	}

	// Independent reference computation over the raw table.
	tbl, _ := e.Database().Table("Extract", "flights")
	carrier := tbl.Column("carrier")
	delay := tbl.Column("delay")
	dist := tbl.Column("distance")
	type agg struct {
		n, sumD  int64
		sumDelay float64
		nDelay   int64
	}
	ref := map[string]*agg{}
	for i := 0; i < int(tbl.Rows); i++ {
		key := carrier.Value(i).S
		a := ref[key]
		if a == nil {
			a = &agg{}
			ref[key] = a
		}
		a.n++
		a.sumD += dist.Value(i).I
		if dv := delay.Value(i); !dv.Null {
			a.sumDelay += dv.F
			a.nDelay++
		}
	}
	if res.N != len(ref) {
		t.Fatalf("groups = %d, want %d", res.N, len(ref))
	}
	for i := 0; i < res.N; i++ {
		key := res.Value(i, 0).S
		a := ref[key]
		if a == nil {
			t.Fatalf("unexpected group %q", key)
		}
		if res.Value(i, 1).I != a.n {
			t.Errorf("%s count = %d, want %d", key, res.Value(i, 1).I, a.n)
		}
		if res.Value(i, 2).I != a.sumD {
			t.Errorf("%s sum = %d, want %d", key, res.Value(i, 2).I, a.sumD)
		}
		wantAvg := a.sumDelay / float64(a.nDelay)
		if math.Abs(res.Value(i, 3).F-wantAvg) > 1e-9 {
			t.Errorf("%s avg = %v, want %v", key, res.Value(i, 3).F, wantAvg)
		}
	}
}

func TestFilterProjectOrder(t *testing.T) {
	e := getEngine(t)
	res, err := e.Query(ctx(), `
		(order
			(aggregate
				(select (table flights) (and (= carrier "WN") (> distance 1000)))
				(groupby market)
				(aggs (n count *)))
			(desc n) (asc market))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("no rows")
	}
	// Verify ordering.
	for i := 1; i < res.N; i++ {
		prev, cur := res.Value(i-1, 1).I, res.Value(i, 1).I
		if cur > prev {
			t.Fatalf("not sorted desc at %d: %d > %d", i, cur, prev)
		}
		if cur == prev && res.Value(i-1, 0).S > res.Value(i, 0).S {
			t.Fatalf("tie not sorted asc by market at %d", i)
		}
	}
}

func TestTopN(t *testing.T) {
	e := getEngine(t)
	full, err := e.Query(ctx(), `
		(order
			(aggregate (table flights) (groupby carrier) (aggs (n count *)))
			(desc n) (asc carrier))`)
	if err != nil {
		t.Fatal(err)
	}
	top, err := e.Query(ctx(), `
		(topn
			(aggregate (table flights) (groupby carrier) (aggs (n count *)))
			3 (desc n) (asc carrier))`)
	if err != nil {
		t.Fatal(err)
	}
	if top.N != 3 {
		t.Fatalf("topn returned %d rows", top.N)
	}
	for i := 0; i < 3; i++ {
		if top.Value(i, 0).S != full.Value(i, 0).S {
			t.Errorf("top %d = %s, want %s", i, top.Value(i, 0).S, full.Value(i, 0).S)
		}
	}
}

func TestJoinDimension(t *testing.T) {
	e := getEngine(t)
	res, err := e.Query(ctx(), `
		(aggregate
			(join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))
			(groupby airline_name)
			(aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	byCode, err := e.Query(ctx(), `
		(aggregate (table flights) (groupby carrier) (aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != byCode.N {
		t.Fatalf("join groups = %d, code groups = %d", res.N, byCode.N)
	}
	var joinTotal, codeTotal int64
	for i := 0; i < res.N; i++ {
		joinTotal += res.Value(i, 1).I
	}
	for i := 0; i < byCode.N; i++ {
		codeTotal += byCode.Value(i, 1).I
	}
	if joinTotal != codeTotal {
		t.Errorf("join total %d != %d", joinTotal, codeTotal)
	}
}

func TestLeftJoinKeepsUnmatched(t *testing.T) {
	e := getEngine(t)
	// carriers dimension joined against a filtered fact slice that can miss
	// some carriers entirely.
	res, err := e.Query(ctx(), `
		(aggregate
			(join (table carriers)
				(aggregate (select (table flights) (= market "HNL-OGG"))
					(groupby carrier) (aggs (flights count *)))
				(on (= carriers.carrier carrier)) left)
			(groupby airline_name)
			(aggs (total sum flights)))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != workload.DefaultFlightsConfig().Carriers {
		t.Fatalf("left join lost rows: %d", res.N)
	}
	nulls := 0
	for i := 0; i < res.N; i++ {
		if res.Value(i, 1).Null {
			nulls++
		}
	}
	if nulls == 0 {
		t.Log("warning: every carrier flies HNL-OGG in this seed; test weakened")
	}
}

func TestDistinct(t *testing.T) {
	e := getEngine(t)
	res, err := e.Query(ctx(), `(distinct (project (table flights) (carrier carrier)))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != workload.DefaultFlightsConfig().Carriers {
		t.Errorf("distinct carriers = %d", res.N)
	}
}

func TestScalarFunctions(t *testing.T) {
	e := getEngine(t)
	res, err := e.Query(ctx(), `
		(distinct (project (select (table flights) (= carrier "wn"))
			(c (upper carrier))
			(m (month date))
			(half (/ distance 2))))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("case-insensitive carrier filter returned nothing")
	}
	for i := 0; i < res.N; i++ {
		if res.Value(i, 0).S != "WN" {
			t.Errorf("upper(carrier) = %q", res.Value(i, 0).S)
		}
		m := res.Value(i, 1).I
		if m < 1 || m > 12 {
			t.Errorf("month = %d", m)
		}
	}
}

func TestInList(t *testing.T) {
	e := getEngine(t)
	res, err := e.Query(ctx(), `
		(aggregate (select (table flights) (in carrier ["WN" "AA" "DL"]))
			(groupby carrier) (aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 {
		t.Fatalf("in-list groups = %d, want 3", res.N)
	}
}

func TestDateLiteralFilter(t *testing.T) {
	e := getEngine(t)
	res, err := e.Query(ctx(), `
		(aggregate (select (table flights) (< date (date "2015-02-01")))
			(groupby) (aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	n := res.Value(0, 0).I
	if n <= 0 || n >= int64(workload.DefaultFlightsConfig().Rows) {
		t.Errorf("january flights = %d", n)
	}
}

func TestCountDistinct(t *testing.T) {
	e := getEngine(t)
	res, err := e.Query(ctx(), `
		(aggregate (table flights) (groupby) (aggs (d countd carrier)))`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value(0, 0).I; got != int64(workload.DefaultFlightsConfig().Carriers) {
		t.Errorf("countd = %d", got)
	}
}

// TestParallelMatchesSerial is the core execution invariant: every parallel
// plan must produce exactly the rows of the serial plan.
func TestParallelMatchesSerial(t *testing.T) {
	e := getEngine(t)
	queries := []string{
		`(aggregate (table flights) (groupby carrier) (aggs (n count *) (s sum distance) (a avg delay) (mn min delay) (mx max delay)))`,
		`(aggregate (select (table flights) (> delay 30)) (groupby market) (aggs (n count *)))`,
		`(aggregate (table flights) (groupby date) (aggs (n count *) (a avg delay)))`,
		`(aggregate (table flights) (groupby date hour) (aggs (n count *)))`,
		`(aggregate (join (table flights) (table carriers) (on (= flights.carrier carriers.carrier))) (groupby airline_name) (aggs (n count *) (a avg delay)))`,
		`(topn (aggregate (table flights) (groupby market) (aggs (n count *))) 7 (desc n) (asc market))`,
		`(aggregate (table flights) (groupby) (aggs (n count *) (a avg delay) (d countd carrier)))`,
		`(order (aggregate (select (table flights) (in origin ["LAX" "SFO" "JFK"])) (groupby origin dest) (aggs (n count *))) (asc origin) (asc dest))`,
		`(distinct (project (table flights) (carrier carrier) (origin origin)))`,
	}
	for qi, q := range queries {
		serial, err := e.QuerySerial(ctx(), q)
		if err != nil {
			t.Fatalf("query %d serial: %v", qi, err)
		}
		par, err := e.Query(ctx(), q)
		if err != nil {
			t.Fatalf("query %d parallel: %v", qi, err)
		}
		t.Run(fmt.Sprintf("q%d", qi), func(t *testing.T) {
			sameRows(t, serial, par)
		})
	}
}

func TestMaxDOPVariants(t *testing.T) {
	e := getEngine(t)
	q := `(aggregate (table flights) (groupby carrier origin) (aggs (n count *) (a avg delay)))`
	base, err := e.QuerySerial(ctx(), q)
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{2, 3, 8} {
		o := opt.DefaultOptions()
		o.MaxDOP = dop
		o.GrainWork = 1 // force maximal parallelism
		e2 := New(e.Database())
		e2.SetOptions(o)
		res, err := e2.Query(ctx(), q)
		if err != nil {
			t.Fatalf("dop %d: %v", dop, err)
		}
		sameRows(t, base, res)
	}
}

func TestRangePartitionMatches(t *testing.T) {
	e := getEngine(t)
	q := `(aggregate (table flights) (groupby date) (aggs (n count *) (d countd carrier)))`
	o := opt.DefaultOptions()
	o.GrainWork = 1
	forced := New(e.Database())
	forced.SetOptions(o)
	res, err := forced.Query(ctx(), q)
	if err != nil {
		t.Fatal(err)
	}
	base, err := e.QuerySerial(ctx(), q)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, base, res)
}

func TestTempTableRoundTrip(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 2000, Days: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	res, err := e.Query(ctx(), `(distinct (project (table flights) (carrier carrier)))`)
	if err != nil {
		t.Fatal(err)
	}
	name, err := e.CreateTempTable("filtervals", res)
	if err != nil {
		t.Fatal(err)
	}
	if name != "TEMP.filtervals" {
		t.Errorf("temp name = %q", name)
	}
	joined, err := e.Query(ctx(), `
		(aggregate
			(join (table flights) (table TEMP.filtervals) (on (= flights.carrier TEMP.filtervals.carrier)))
			(groupby) (aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	if joined.Value(0, 0).I != 2000 {
		t.Errorf("temp-table join count = %d", joined.Value(0, 0).I)
	}
	if err := e.DropTempTable(name); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(ctx(), `(table TEMP.filtervals)`); err == nil {
		t.Error("dropped temp table should not resolve")
	}
}

func TestQueryErrors(t *testing.T) {
	e := getEngine(t)
	for _, q := range []string{
		`(table nosuch)`,
		`(select (table flights) (+ 1 2))`,           // non-boolean predicate
		`(select (table flights) (= carrier 5))`,     // type mismatch
		`(aggregate (table flights) (groupby nope))`, // unknown column
		`(frobnicate (table flights))`,               // unknown operator
		`(select (table flights)`,                    // unbalanced parens
		`(topn (table flights) -1 (asc date))`,       // bad N
	} {
		if _, err := e.Query(ctx(), q); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestEngineSaveOpen(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 500, Days: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/db.tde"
	if err := storage.SaveDatabase(db, path); err != nil {
		t.Fatal(err)
	}
	e, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(ctx(), `(aggregate (table flights) (groupby) (aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, 0).I != 500 {
		t.Errorf("count after reopen = %d", res.Value(0, 0).I)
	}
}

func TestTableToResultRoundTrip(t *testing.T) {
	e := getEngine(t)
	tbl, _ := e.Database().Table("Extract", "carriers")
	res := TableToResult(tbl)
	if int64(res.N) != tbl.Rows {
		t.Fatalf("rows = %d, want %d", res.N, tbl.Rows)
	}
	back, err := ResultToTable("TEMP", "rt", res)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.N; i++ {
		for c := range tbl.Cols {
			a, b := tbl.Cols[c].Value(i), back.Cols[c].Value(i)
			if !storage.Equal(a, b, tbl.Cols[c].Coll) {
				t.Fatalf("row %d col %d: %v != %v", i, c, a, b)
			}
		}
	}
}
