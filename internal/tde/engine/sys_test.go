package engine

import (
	"testing"

	"vizq/internal/workload"
)

func TestSysTablesQueryable(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 1000, Days: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	res, err := e.Query(ctx(), `(order (table SYS.tables) (asc name))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 { // airports, carriers, flights
		t.Fatalf("SYS.tables rows = %d", res.N)
	}
	nameCol := res.ColumnIndex("name")
	rowsCol := res.ColumnIndex("rows")
	if res.Value(2, nameCol).S != "flights" || res.Value(2, rowsCol).I != 1000 {
		t.Errorf("flights row = %v", res.Row(2))
	}

	// Column metadata is queryable too.
	cols, err := e.Query(ctx(), `
		(select (table SYS.columns) (and (= table "flights") (= name "carrier")))`)
	if err != nil {
		t.Fatal(err)
	}
	if cols.N != 1 {
		t.Fatalf("carrier column rows = %d", cols.N)
	}
	if cols.Value(0, cols.ColumnIndex("type")).S != "str" {
		t.Errorf("carrier type = %v", cols.Value(0, cols.ColumnIndex("type")))
	}
	if cols.Value(0, cols.ColumnIndex("dict_size")).I == 0 {
		t.Error("carrier should be dictionary-compressed")
	}

	// Aggregating over metadata works like any query.
	agg, err := e.Query(ctx(), `
		(aggregate (table SYS.columns) (groupby encoding) (aggs (n count *)))`)
	if err != nil {
		t.Fatal(err)
	}
	if agg.N == 0 {
		t.Error("encoding breakdown empty")
	}
}

func TestSysTablesTrackTempTables(t *testing.T) {
	db, err := workload.BuildFlightsDB(workload.FlightsConfig{Rows: 500, Days: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	res, err := e.Query(ctx(), `(distinct (project (table flights) (carrier carrier)))`)
	if err != nil {
		t.Fatal(err)
	}
	name, err := e.CreateTempTable("snapshot", res)
	if err != nil {
		t.Fatal(err)
	}
	listed, err := e.Query(ctx(), `(select (table SYS.tables) (= schema "TEMP"))`)
	if err != nil {
		t.Fatal(err)
	}
	if listed.N != 1 {
		t.Fatalf("temp tables in SYS = %d", listed.N)
	}
	if err := e.DropTempTable(name); err != nil {
		t.Fatal(err)
	}
	listed, err = e.Query(ctx(), `(select (table SYS.tables) (= schema "TEMP"))`)
	if err != nil {
		t.Fatal(err)
	}
	if listed.N != 0 {
		t.Error("dropped temp table still listed")
	}
}
