// Package engine is the public façade of the Tableau Data Engine
// reproduction: it owns a database, compiles TQL text through the binder and
// the rule-based optimizer, executes plans on the vectorized Volcano
// runtime, and manages temporary tables. It is used standalone (Desktop
// extracts), behind the simulated remote database server, and behind Data
// Server.
package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"vizq/internal/tde/exec"
	"vizq/internal/tde/opt"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
	"vizq/internal/tde/tql"
)

// TempSchema is the schema holding session-created temporary tables.
const TempSchema = "TEMP"

// Engine executes TQL queries against one database.
type Engine struct {
	db  *storage.Database
	opt opt.Options

	mu      sync.Mutex
	tempSeq int
}

// New wraps a database with default optimizer options and builds the SYS
// metadata schema.
func New(db *storage.Database) *Engine {
	e := &Engine{db: db, opt: opt.DefaultOptions()}
	_ = e.RefreshSysTables() // best-effort: SYS is a convenience view
	return e
}

// Open loads a single-file database from disk.
func Open(path string) (*Engine, error) {
	db, err := storage.OpenDatabase(path)
	if err != nil {
		return nil, err
	}
	return New(db), nil
}

// Database exposes the underlying catalog.
func (e *Engine) Database() *storage.Database { return e.db }

// SetOptions replaces the optimizer options (degree of parallelism etc.).
func (e *Engine) SetOptions(o opt.Options) { e.opt = o }

// Options returns the current optimizer options.
func (e *Engine) Options() opt.Options { return e.opt }

// Plan compiles and optimizes a TQL query without executing it.
func (e *Engine) Plan(src string) (plan.Node, error) {
	n, err := tql.Compile(src, e.db, tql.Options{})
	if err != nil {
		return nil, err
	}
	return opt.Optimize(n, e.opt), nil
}

// LogicalPlan compiles and applies only the logical rewrites.
func (e *Engine) LogicalPlan(src string) (plan.Node, error) {
	n, err := tql.Compile(src, e.db, tql.Options{})
	if err != nil {
		return nil, err
	}
	return opt.Logical(n, e.opt), nil
}

// Query compiles, optimizes and executes a TQL query.
func (e *Engine) Query(ctx context.Context, src string) (*exec.Result, error) {
	n, err := e.Plan(src)
	if err != nil {
		return nil, err
	}
	return exec.Run(ctx, n)
}

// QuerySerial executes with parallel plans disabled, for baselines and
// ablations.
func (e *Engine) QuerySerial(ctx context.Context, src string) (*exec.Result, error) {
	n, err := tql.Compile(src, e.db, tql.Options{})
	if err != nil {
		return nil, err
	}
	o := e.opt
	o.MaxDOP = 1
	return exec.Run(ctx, opt.Logical(n, o))
}

// Execute runs an already-optimized plan.
func (e *Engine) Execute(ctx context.Context, n plan.Node) (*exec.Result, error) {
	return exec.Run(ctx, n)
}

// CreateTempTable materializes a result as a table in the TEMP schema and
// returns its qualified name. Temporary tables back the large-filter
// externalization and Data Server features (Sect. 5.3).
func (e *Engine) CreateTempTable(name string, res *exec.Result) (string, error) {
	e.mu.Lock()
	if name == "" {
		e.tempSeq++
		name = fmt.Sprintf("t%06d", e.tempSeq)
	}
	e.mu.Unlock()
	t, err := ResultToTable(TempSchema, name, res)
	if err != nil {
		return "", err
	}
	if err := e.db.AddTable(t); err != nil {
		return "", err
	}
	_ = e.RefreshSysTables()
	return t.QualifiedName(), nil
}

// DropTempTable removes a temporary table by bare or qualified name.
func (e *Engine) DropTempTable(name string) error {
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	if err := e.db.DropTable(TempSchema, name); err != nil {
		return err
	}
	_ = e.RefreshSysTables()
	return nil
}

// ResultToTable converts a materialized result into a storage table,
// rebuilding per-column compression and statistics.
func ResultToTable(schema, name string, res *exec.Result) (*storage.Table, error) {
	cols := make([]*storage.Column, len(res.Schema))
	for c, info := range res.Schema {
		vals := make([]storage.Value, res.N)
		for i := 0; i < res.N; i++ {
			vals[i] = res.Value(i, c)
		}
		col, err := storage.BuildColumn(info.Name, info.Type, info.Coll, vals, storage.BuildOptions{})
		if err != nil {
			return nil, err
		}
		cols[c] = col
	}
	return storage.NewTable(schema, name, cols)
}

// TableToResult materializes a whole stored table as a result.
func TableToResult(t *storage.Table) *exec.Result {
	schema := make([]plan.ColInfo, len(t.Cols))
	idxs := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		schema[i] = plan.ColInfo{Name: c.Name, Type: c.Type, Coll: c.Coll}
		idxs[i] = i
	}
	res := exec.NewResult(schema)
	n := int(t.Rows)
	for from := 0; from < n; from += storage.BatchSize {
		to := from + storage.BatchSize
		if to > n {
			to = n
		}
		vecs := make([]*storage.Vector, len(t.Cols))
		for i, c := range t.Cols {
			vecs[i] = c.ScanRange(from, to)
		}
		res.AppendBatch(storage.NewBatch(vecs))
	}
	return res
}
