package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vizq/internal/tde/opt"
)

// TestRandomQueriesOptimizedEqualsNaive generates random TQL queries over
// the flights schema and checks three pipelines agree row-for-row:
// unoptimized serial, logically-optimized serial, and fully parallelized.
// This is the optimizer's broadest correctness net.
func TestRandomQueriesOptimizedEqualsNaive(t *testing.T) {
	e := getEngine(t)
	rng := rand.New(rand.NewSource(99))

	dims := []string{"carrier", "origin", "dest", "market", "hour", "date", "cancelled"}
	numCols := []string{"distance", "hour"}
	strVals := map[string][]string{
		"carrier": {"WN", "AA", "DL", "UA"},
		"origin":  {"LAX", "ATL", "ORD", "JFK"},
		"dest":    {"SFO", "DEN", "MIA"},
	}

	randPred := func() string {
		switch rng.Intn(4) {
		case 0:
			col := numCols[rng.Intn(len(numCols))]
			op := []string{">", ">=", "<", "<=", "=", "!="}[rng.Intn(6)]
			return fmt.Sprintf("(%s %s %d)", op, col, rng.Intn(2000))
		case 1:
			col := []string{"carrier", "origin", "dest"}[rng.Intn(3)]
			vals := strVals[col]
			n := 1 + rng.Intn(len(vals))
			quoted := make([]string, n)
			for i := 0; i < n; i++ {
				quoted[i] = fmt.Sprintf("%q", vals[rng.Intn(len(vals))])
			}
			return fmt.Sprintf("(in %s [%s])", col, strings.Join(quoted, " "))
		case 2:
			return fmt.Sprintf("(> delay %d.0)", rng.Intn(60)-10)
		default:
			return fmt.Sprintf("(= carrier %q)", strVals["carrier"][rng.Intn(4)])
		}
	}

	randQuery := func() string {
		rel := "(table flights)"
		if rng.Intn(3) == 0 {
			rel = "(join (table flights) (table carriers) (on (= flights.carrier carriers.carrier)))"
		}
		switch rng.Intn(3) {
		case 0:
			rel = fmt.Sprintf("(select %s %s)", rel, randPred())
		case 1:
			rel = fmt.Sprintf("(select %s (and %s %s))", rel, randPred(), randPred())
		}
		nG := 1 + rng.Intn(2)
		groups := map[string]bool{}
		for len(groups) < nG {
			groups[dims[rng.Intn(len(dims))]] = true
		}
		var gl []string
		for g := range groups {
			gl = append(gl, g)
		}
		aggPool := []string{
			"(n count *)", "(s sum distance)", "(a avg delay)",
			"(mn min delay)", "(mx max distance)", "(d countd market)",
		}
		nA := 1 + rng.Intn(3)
		var aggs []string
		for i := 0; i < nA; i++ {
			aggs = append(aggs, aggPool[rng.Intn(len(aggPool))])
		}
		seen := map[string]bool{}
		var uniq []string
		for _, a := range aggs {
			if !seen[a] {
				seen[a] = true
				uniq = append(uniq, a)
			}
		}
		q := fmt.Sprintf("(aggregate %s (groupby %s) (aggs %s))",
			rel, strings.Join(gl, " "), strings.Join(uniq, " "))
		switch rng.Intn(4) {
		case 0:
			q = fmt.Sprintf("(topn %s %d (desc n) (asc %s))", q, 1+rng.Intn(8), gl[0])
		case 1:
			q = fmt.Sprintf("(order %s (asc %s))", q, gl[0])
		}
		return q
	}

	for trial := 0; trial < 40; trial++ {
		src := randQuery()
		if strings.Contains(src, "topn") && !strings.Contains(src, "(n count *)") {
			src = strings.Replace(src, "(aggs ", "(aggs (n count *) ", 1)
		}
		naive, err := e.QuerySerial(ctx(), src)
		if err != nil {
			t.Fatalf("trial %d serial failed: %v\n%s", trial, err, src)
		}
		par, err := e.Query(ctx(), src)
		if err != nil {
			t.Fatalf("trial %d parallel failed: %v\n%s", trial, err, src)
		}
		forced := New(e.Database())
		o := opt.DefaultOptions()
		o.GrainWork = 1
		o.MaxDOP = 3
		forced.SetOptions(o)
		maxPar, err := forced.Query(ctx(), src)
		if err != nil {
			t.Fatalf("trial %d forced-parallel failed: %v\n%s", trial, err, src)
		}
		if strings.HasPrefix(src, "(topn") {
			// Row membership of a top-n can differ on ranking ties; compare
			// counts only.
			if naive.N != par.N || naive.N != maxPar.N {
				t.Fatalf("trial %d: topn row counts %d/%d/%d\n%s", trial, naive.N, par.N, maxPar.N, src)
			}
			continue
		}
		a, b, c := rowsAsStrings(naive), rowsAsStrings(par), rowsAsStrings(maxPar)
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("trial %d: row counts %d/%d/%d\n%s", trial, len(a), len(b), len(c), src)
		}
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				t.Fatalf("trial %d row %d differs:\n%s\n%s\n%s\nquery: %s", trial, i, a[i], b[i], c[i], src)
			}
		}
	}
}
