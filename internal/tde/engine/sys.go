package engine

import (
	"strings"

	"vizq/internal/tde/storage"
)

// RefreshSysTables (re)builds the reserved SYS schema from the current
// catalog: SYS.tables and SYS.columns describe every user table, so the
// metadata is queryable with ordinary TQL (Sect. 4.1.1: "the metadata is
// stored in the reserved SYS schema"). It is called automatically by New and
// after temp-table changes; call it manually after mutating the catalog
// directly.
func (e *Engine) RefreshSysTables() error {
	db := e.db
	_ = db.DropTable(storage.SysSchema, "tables")
	_ = db.DropTable(storage.SysSchema, "columns")

	var tSchema, tName, tSorted []storage.Value
	var tRows []storage.Value
	var cSchema, cTable, cName, cType, cColl, cEnc, cSorted []storage.Value
	var cDistinct, cNulls, cDictSize []storage.Value

	for _, t := range db.AllTables() {
		tSchema = append(tSchema, storage.StrValue(t.Schema))
		tName = append(tName, storage.StrValue(t.Name))
		tRows = append(tRows, storage.IntValue(t.Rows))
		tSorted = append(tSorted, storage.StrValue(strings.Join(t.SortKey, ",")))
		for _, c := range t.Cols {
			cSchema = append(cSchema, storage.StrValue(t.Schema))
			cTable = append(cTable, storage.StrValue(t.Name))
			cName = append(cName, storage.StrValue(c.Name))
			cType = append(cType, storage.StrValue(c.Type.String()))
			cColl = append(cColl, storage.StrValue(c.Coll.String()))
			cEnc = append(cEnc, storage.StrValue(c.Encoding().String()))
			cSorted = append(cSorted, storage.BoolValue(c.Stats.Sorted))
			cDistinct = append(cDistinct, storage.IntValue(c.Stats.Distinct))
			cNulls = append(cNulls, storage.IntValue(c.Stats.Nulls))
			dictSize := int64(0)
			if c.Dict != nil {
				dictSize = int64(c.Dict.Len())
			}
			cDictSize = append(cDictSize, storage.IntValue(dictSize))
		}
	}
	if len(tName) == 0 {
		return nil
	}

	build := func(name string, t storage.Type, vals []storage.Value) (*storage.Column, error) {
		return storage.BuildColumn(name, t, storage.CollCI, vals, storage.BuildOptions{})
	}
	var err error
	mk := func(name string, t storage.Type, vals []storage.Value) *storage.Column {
		if err != nil {
			return nil
		}
		var c *storage.Column
		c, err = build(name, t, vals)
		return c
	}
	tablesTbl := []*storage.Column{
		mk("schema", storage.TStr, tSchema),
		mk("name", storage.TStr, tName),
		mk("rows", storage.TInt, tRows),
		mk("sorted_by", storage.TStr, tSorted),
	}
	columnsTbl := []*storage.Column{
		mk("schema", storage.TStr, cSchema),
		mk("table", storage.TStr, cTable),
		mk("name", storage.TStr, cName),
		mk("type", storage.TStr, cType),
		mk("collation", storage.TStr, cColl),
		mk("encoding", storage.TStr, cEnc),
		mk("sorted", storage.TBool, cSorted),
		mk("distinct", storage.TInt, cDistinct),
		mk("nulls", storage.TInt, cNulls),
		mk("dict_size", storage.TInt, cDictSize),
	}
	if err != nil {
		return err
	}
	tt, err := storage.NewTable(storage.SysSchema, "tables", tablesTbl)
	if err != nil {
		return err
	}
	if err := db.AddTable(tt); err != nil {
		return err
	}
	ct, err := storage.NewTable(storage.SysSchema, "columns", columnsTbl)
	if err != nil {
		return err
	}
	return db.AddTable(ct)
}
