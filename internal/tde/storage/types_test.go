package storage

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TNull: "null", TBool: "bool", TInt: "int", TFloat: "float",
		TStr: "str", TDate: "date", TDateTime: "datetime",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	for name, want := range map[string]Type{
		"int": TInt, "INTEGER": TInt, "float": TFloat, "double": TFloat,
		"str": TStr, "varchar": TStr, "bool": TBool, "date": TDate,
		"datetime": TDateTime, "timestamp": TDateTime,
	} {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestPromote(t *testing.T) {
	cases := []struct {
		a, b, want Type
		ok         bool
	}{
		{TInt, TInt, TInt, true},
		{TInt, TFloat, TFloat, true},
		{TBool, TInt, TInt, true},
		{TNull, TStr, TStr, true},
		{TDate, TDateTime, TDateTime, true},
		{TStr, TInt, TNull, false},
	}
	for _, c := range cases {
		got, err := Promote(c.a, c.b)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Promote(%v,%v) = %v, %v; want %v", c.a, c.b, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Promote(%v,%v) should fail", c.a, c.b)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if Compare(IntValue(1), IntValue(2), CollBinary) != -1 {
		t.Error("1 < 2 expected")
	}
	if Compare(FloatValue(2.5), IntValue(2), CollBinary) != 1 {
		t.Error("2.5 > 2 expected")
	}
	if Compare(NullValue(TInt), IntValue(0), CollBinary) != -1 {
		t.Error("null sorts first")
	}
	if Compare(StrValue("A"), StrValue("a"), CollCI) != 0 {
		t.Error("CI collation equates A and a")
	}
	if Compare(StrValue("A"), StrValue("a"), CollBinary) == 0 {
		t.Error("binary collation separates A and a")
	}
}

func TestValueString(t *testing.T) {
	if got := DateValue(2015, time.May, 31).String(); got != "2015-05-31" {
		t.Errorf("date = %q", got)
	}
	if got := BoolValue(true).String(); got != "true" {
		t.Errorf("bool = %q", got)
	}
	if got := NullValue(TStr).String(); got != "null" {
		t.Errorf("null = %q", got)
	}
	dt := DateTimeValue(time.Date(2015, 5, 31, 12, 30, 0, 0, time.UTC))
	if got := dt.String(); got != "2015-05-31 12:30:00" {
		t.Errorf("datetime = %q", got)
	}
}

func TestCollationKey(t *testing.T) {
	if CollCI.Key("HeLLo") != "hello" {
		t.Error("CI key folds case")
	}
	if CollBinary.Key("HeLLo") != "HeLLo" {
		t.Error("binary key is identity")
	}
	// Property: equal keys iff Compare == 0.
	f := func(a, b string) bool {
		return (CollCI.Key(a) == CollCI.Key(b)) == (CollCI.Compare(a, b) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCollation(t *testing.T) {
	if c, err := ParseCollation("ci"); err != nil || c != CollCI {
		t.Errorf("ci: %v %v", c, err)
	}
	if c, err := ParseCollation(""); err != nil || c != CollBinary {
		t.Errorf("default: %v %v", c, err)
	}
	if _, err := ParseCollation("klingon"); err == nil {
		t.Error("unknown collation should fail")
	}
}
