// Package storage implements the Tableau-Data-Engine-style storage layer:
// typed columns with null support, dictionary compression, run-length and
// delta encodings, column-level collations, the schema/table/column
// namespace, and the single-file database format.
//
// The layer mirrors the description in Sect. 4.1.1 of "On Improving User
// Response Times in Tableau" (SIGMOD 2015): each database holds schemas,
// each schema holds tables, each table holds columns; metadata lives in the
// reserved SYS schema; dictionary compression is visible to upper layers
// while run-length/delta encodings are a storage format.
package storage

import (
	"fmt"
	"strings"
	"time"
)

// Type identifies the logical type of a column or value.
type Type uint8

// Logical types supported by the engine.
const (
	TNull Type = iota
	TBool
	TInt
	TFloat
	TStr
	TDate     // days since 1970-01-01
	TDateTime // seconds since 1970-01-01 UTC
)

// String returns the TQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "null"
	case TBool:
		return "bool"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TStr:
		return "str"
	case TDate:
		return "date"
	case TDateTime:
		return "datetime"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ParseType converts a TQL type name into a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(s) {
	case "bool", "boolean":
		return TBool, nil
	case "int", "integer", "bigint":
		return TInt, nil
	case "float", "double", "real":
		return TFloat, nil
	case "str", "string", "text", "varchar":
		return TStr, nil
	case "date":
		return TDate, nil
	case "datetime", "timestamp":
		return TDateTime, nil
	}
	return TNull, fmt.Errorf("storage: unknown type %q", s)
}

// Numeric reports whether values of the type support arithmetic.
func (t Type) Numeric() bool { return t == TInt || t == TFloat || t == TBool }

// IntBacked reports whether the physical representation is an int64.
func (t Type) IntBacked() bool {
	switch t {
	case TBool, TInt, TDate, TDateTime:
		return true
	}
	return false
}

// Promote returns the common type two operand types are widened to, following
// the engine's promotion lattice (bool < int < float; date/datetime promote
// to themselves; anything mixed with null keeps the non-null type).
func Promote(a, b Type) (Type, error) {
	if a == b {
		return a, nil
	}
	if a == TNull {
		return b, nil
	}
	if b == TNull {
		return a, nil
	}
	if a.Numeric() && b.Numeric() {
		if a == TFloat || b == TFloat {
			return TFloat, nil
		}
		return TInt, nil
	}
	if (a == TDate && b == TDateTime) || (a == TDateTime && b == TDate) {
		return TDateTime, nil
	}
	return TNull, fmt.Errorf("storage: no common type for %s and %s", a, b)
}

// Value is a single scalar used for literals, keys and slow-path access.
// The zero Value is typed null.
type Value struct {
	Type Type
	Null bool
	I    int64   // bool (0/1), int, date, datetime payload
	F    float64 // float payload
	S    string  // string payload
}

// NullValue returns a typed null.
func NullValue(t Type) Value { return Value{Type: t, Null: true} }

// IntValue wraps an int64.
func IntValue(i int64) Value { return Value{Type: TInt, I: i} }

// FloatValue wraps a float64.
func FloatValue(f float64) Value { return Value{Type: TFloat, F: f} }

// StrValue wraps a string.
func StrValue(s string) Value { return Value{Type: TStr, S: s} }

// BoolValue wraps a bool.
func BoolValue(b bool) Value {
	v := Value{Type: TBool}
	if b {
		v.I = 1
	}
	return v
}

// DateValue wraps a civil date as days since the Unix epoch.
func DateValue(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{Type: TDate, I: t.Unix() / 86400}
}

// DateTimeValue wraps a time as seconds since the Unix epoch.
func DateTimeValue(t time.Time) Value { return Value{Type: TDateTime, I: t.Unix()} }

// Bool reports the truth value; null is false.
func (v Value) Bool() bool { return !v.Null && v.I != 0 }

// AsFloat widens any numeric payload to float64.
func (v Value) AsFloat() float64 {
	if v.Type == TFloat {
		return v.F
	}
	return float64(v.I)
}

// String renders the value for display and for literal SQL/TQL generation.
func (v Value) String() string {
	if v.Null {
		return "null"
	}
	switch v.Type {
	case TBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case TInt:
		return fmt.Sprintf("%d", v.I)
	case TFloat:
		return fmt.Sprintf("%g", v.F)
	case TStr:
		return v.S
	case TDate:
		return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
	case TDateTime:
		return time.Unix(v.I, 0).UTC().Format("2006-01-02 15:04:05")
	}
	return "null"
}

// Compare orders two values of the same (or promoted-compatible) type.
// Nulls sort first. Strings use the supplied collation.
func Compare(a, b Value, coll Collation) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	if a.Type == TStr || b.Type == TStr {
		return coll.Compare(a.S, b.S)
	}
	if a.Type == TFloat || b.Type == TFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	switch {
	case a.I < b.I:
		return -1
	case a.I > b.I:
		return 1
	}
	return 0
}

// Equal reports value equality under the collation.
func Equal(a, b Value, coll Collation) bool {
	if a.Null || b.Null {
		return a.Null && b.Null
	}
	return Compare(a, b, coll) == 0
}

// Collation identifies a column-level string collation. The TDE supports
// column-level collated strings so Extract behaviour matches live databases.
type Collation uint8

// Supported collations.
const (
	CollBinary Collation = iota // byte-wise comparison
	CollCI                      // ASCII case-insensitive
)

// String names the collation.
func (c Collation) String() string {
	if c == CollCI {
		return "ci"
	}
	return "binary"
}

// ParseCollation converts a collation name into a Collation.
func ParseCollation(s string) (Collation, error) {
	switch strings.ToLower(s) {
	case "", "binary", "bin":
		return CollBinary, nil
	case "ci", "nocase", "case_insensitive":
		return CollCI, nil
	}
	return CollBinary, fmt.Errorf("storage: unknown collation %q", s)
}

// Compare orders two strings under the collation.
func (c Collation) Compare(a, b string) int {
	if c == CollCI {
		return strings.Compare(foldASCII(a), foldASCII(b))
	}
	return strings.Compare(a, b)
}

// Key returns the canonical comparison key for a string: two strings compare
// equal under the collation iff their keys are byte-equal. Hash joins and
// aggregations group collated strings by this key.
func (c Collation) Key(s string) string {
	if c == CollCI {
		return foldASCII(s)
	}
	return s
}

func foldASCII(s string) string {
	// Fast path: already lower-case.
	upper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			upper = true
			break
		}
	}
	if !upper {
		return s
	}
	b := []byte(s)
	for i, ch := range b {
		if ch >= 'A' && ch <= 'Z' {
			b[i] = ch + 'a' - 'A'
		}
	}
	return string(b)
}
