package storage

import (
	"fmt"
	"sort"
)

// Dictionary holds the distinct values of a dictionary-compressed string
// column, sorted by the column's collation so that token order equals value
// order — range predicates on the column compare tokens directly, which is
// how "decompression modeled as a join" pushes filters to the dictionary
// side (Sect. 4.1.2).
type Dictionary struct {
	Values []string
	Coll   Collation

	index map[string]int32 // collation key -> token, built lazily
}

// NewDictionary builds a dictionary over the distinct values, sorting them by
// the collation.
func NewDictionary(distinct []string, coll Collation) *Dictionary {
	vals := append([]string(nil), distinct...)
	sort.Slice(vals, func(i, j int) bool { return coll.Compare(vals[i], vals[j]) < 0 })
	return &Dictionary{Values: vals, Coll: coll}
}

// Len returns the number of distinct values.
func (d *Dictionary) Len() int { return len(d.Values) }

// Value returns the string for a token.
func (d *Dictionary) Value(tok int32) string { return d.Values[tok] }

// Lookup returns the token for s under the collation, if present.
func (d *Dictionary) Lookup(s string) (int32, bool) {
	if d.index == nil {
		d.index = make(map[string]int32, len(d.Values))
		for i, v := range d.Values {
			d.index[d.Coll.Key(v)] = int32(i)
		}
	}
	tok, ok := d.index[d.Coll.Key(s)]
	return tok, ok
}

// LowerBound returns the first token whose value is >= s under the collation
// (len(Values) when none).
func (d *Dictionary) LowerBound(s string) int32 {
	return int32(sort.Search(len(d.Values), func(i int) bool {
		return d.Coll.Compare(d.Values[i], s) >= 0
	}))
}

// UpperBound returns the first token whose value is > s under the collation.
func (d *Dictionary) UpperBound(s string) int32 {
	return int32(sort.Search(len(d.Values), func(i int) bool {
		return d.Coll.Compare(d.Values[i], s) > 0
	}))
}

// ColStats carries the column metadata the optimizer consumes: domain
// bounds, distinct/null counts and physical sortedness.
type ColStats struct {
	Min, Max Value
	Distinct int64
	Nulls    int64
	Sorted   bool // values are non-decreasing in row order
}

// Column is one column of a table: a logical type plus physical data,
// optionally dictionary-compressed.
type Column struct {
	Name string
	Type Type
	Coll Collation
	// Dict is non-nil for dictionary-compressed columns, in which case Data
	// holds int64 tokens.
	Dict  *Dictionary
	Data  PhysData
	Stats ColStats
}

// Len returns the row count.
func (c *Column) Len() int { return c.Data.Len() }

// Encoding reports the physical encoding of the column data (token array
// for dictionary columns).
func (c *Column) Encoding() Encoding { return c.Data.Encoding() }

// ScanRange materializes rows [from,to). Dictionary columns yield a token
// vector carrying the dictionary — values stay compressed until a consumer
// needs the strings (late materialization).
func (c *Column) ScanRange(from, to int) *Vector {
	n := to - from
	if c.Dict != nil {
		v := &Vector{Type: TStr, Dict: c.Dict, I: make([]int64, n)}
		c.Data.MaterializeRange(v, from, to)
		return v
	}
	v := NewVector(c.Type, n)
	c.Data.MaterializeRange(v, from, to)
	return v
}

// Value returns row i as a scalar (slow path).
func (c *Column) Value(i int) Value {
	if c.Data.NullAt(i) {
		return NullValue(c.Type)
	}
	if c.Dict != nil {
		tok := c.Data.(IntAccessor).IntAt(i)
		return StrValue(c.Dict.Value(int32(tok)))
	}
	switch d := c.Data.(type) {
	case *FloatData:
		return Value{Type: TFloat, F: d.Vals[i]}
	case *StringData:
		return Value{Type: TStr, S: d.Vals[i]}
	case IntAccessor:
		return Value{Type: c.Type, I: d.IntAt(i)}
	}
	panic("storage: unreachable column data type")
}

// RLERuns exposes the run list when the column's physical data is
// run-length encoded; the optimizer turns it into an IndexTable for
// range-skipping scans.
func (c *Column) RLERuns() ([]Run, bool) {
	if d, ok := c.Data.(*RLEIntData); ok {
		return d.Runs, true
	}
	return nil, false
}

// BuildOptions tunes column construction.
type BuildOptions struct {
	// ForceEncoding pins the physical encoding instead of letting the
	// builder choose. EncPlain is still chosen when the forced encoding is
	// inapplicable (e.g. delta over strings).
	ForceEncoding Encoding
	HasForce      bool
	// NoDictionary disables dictionary compression for string columns.
	NoDictionary bool
}

// BuildColumn constructs a column from scalar values, choosing dictionary
// compression and a physical encoding from the data shape, and computing
// statistics.
func BuildColumn(name string, t Type, coll Collation, vals []Value, opt BuildOptions) (*Column, error) {
	col := &Column{Name: name, Type: t, Coll: coll}
	stats := ColStats{Sorted: true}
	var prev Value
	first := true
	distinct := make(map[string]struct{})
	for _, v := range vals {
		if v.Null {
			stats.Nulls++
			continue
		}
		if v.Type != t && !(v.Type.IntBacked() && t.IntBacked()) {
			if pt, err := Promote(v.Type, t); err != nil || pt != t {
				return nil, fmt.Errorf("storage: column %s: value type %s does not fit %s", name, v.Type, t)
			}
		}
		if first {
			stats.Min, stats.Max = v, v
			first = false
		} else {
			if Compare(v, stats.Min, coll) < 0 {
				stats.Min = v
			}
			if Compare(v, stats.Max, coll) > 0 {
				stats.Max = v
			}
			if Compare(v, prev, coll) < 0 {
				stats.Sorted = false
			}
		}
		prev = v
		distinct[distinctKey(v, coll)] = struct{}{}
	}
	stats.Distinct = int64(len(distinct))
	col.Stats = stats

	switch {
	case t == TStr:
		buildString(col, vals, opt)
	case t == TFloat:
		buildFloat(col, vals)
	default:
		buildInt(col, vals, opt, stats.Sorted)
	}
	return col, nil
}

func distinctKey(v Value, coll Collation) string {
	if v.Type == TStr {
		return "s" + coll.Key(v.S)
	}
	if v.Type == TFloat {
		return fmt.Sprintf("f%g", v.F)
	}
	return fmt.Sprintf("i%d", v.I)
}

func buildString(col *Column, vals []Value, opt BuildOptions) {
	n := len(vals)
	// Dictionary-compress unless the distinct ratio makes it pointless.
	useDict := !opt.NoDictionary && (col.Stats.Distinct <= int64(n)/2 || n < 64)
	if opt.HasForce && opt.ForceEncoding == EncPlain && opt.NoDictionary {
		useDict = false
	}
	if !useDict {
		d := &StringData{Vals: make([]string, n)}
		for i, v := range vals {
			if v.Null {
				if d.Nulls == nil {
					d.Nulls = make([]bool, n)
				}
				d.Nulls[i] = true
				continue
			}
			d.Vals[i] = v.S
		}
		col.Data = d
		return
	}
	seen := make(map[string]string, col.Stats.Distinct)
	var distinct []string
	for _, v := range vals {
		if v.Null {
			continue
		}
		k := col.Coll.Key(v.S)
		if _, ok := seen[k]; !ok {
			seen[k] = v.S
			distinct = append(distinct, v.S)
		}
	}
	dict := NewDictionary(dedupeByKey(distinct, col.Coll), col.Coll)
	col.Dict = dict
	toks := make([]Value, n)
	for i, v := range vals {
		if v.Null {
			toks[i] = NullValue(TInt)
			continue
		}
		tok, _ := dict.Lookup(v.S)
		toks[i] = IntValue(int64(tok))
	}
	// Token order follows value order, so sortedness of tokens equals
	// sortedness of the values under the collation.
	buildInt(col, toks, opt, col.Stats.Sorted)
}

func dedupeByKey(vals []string, coll Collation) []string {
	seen := make(map[string]struct{}, len(vals))
	out := vals[:0]
	for _, v := range vals {
		k := coll.Key(v)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, v)
	}
	return out
}

func buildFloat(col *Column, vals []Value) {
	n := len(vals)
	d := &FloatData{Vals: make([]float64, n)}
	for i, v := range vals {
		if v.Null {
			if d.Nulls == nil {
				d.Nulls = make([]bool, n)
			}
			d.Nulls[i] = true
			continue
		}
		d.Vals[i] = v.AsFloat()
	}
	col.Data = d
}

func buildInt(col *Column, vals []Value, opt BuildOptions, sorted bool) {
	n := len(vals)
	ints := make([]int64, n)
	var nulls []bool
	for i, v := range vals {
		if v.Null {
			if nulls == nil {
				nulls = make([]bool, n)
			}
			nulls[i] = true
			continue
		}
		ints[i] = v.I
	}

	enc := chooseIntEncoding(ints, nulls, sorted)
	if opt.HasForce {
		enc = opt.ForceEncoding
	}
	switch enc {
	case EncRLE:
		col.Data = buildRLE(ints, nulls)
	case EncDelta:
		if d, ok := buildDelta(ints, nulls); ok {
			col.Data = d
			return
		}
		col.Data = &IntData{Vals: ints, Nulls: nulls}
	default:
		col.Data = &IntData{Vals: ints, Nulls: nulls}
	}
}

func chooseIntEncoding(ints []int64, nulls []bool, sorted bool) Encoding {
	n := len(ints)
	if n == 0 {
		return EncPlain
	}
	runs := countRuns(ints, nulls)
	if runs*4 <= n {
		return EncRLE
	}
	if sorted && nulls == nil {
		span := ints[n-1] - ints[0]
		if span >= -1<<31 && span < 1<<31 {
			return EncDelta
		}
	}
	return EncPlain
}

func countRuns(ints []int64, nulls []bool) int {
	if len(ints) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(ints); i++ {
		if ints[i] != ints[i-1] || (nulls != nil && nulls[i] != nulls[i-1]) {
			runs++
		}
	}
	return runs
}

func buildRLE(ints []int64, nulls []bool) *RLEIntData {
	d := &RLEIntData{N: int64(len(ints))}
	for i := 0; i < len(ints); {
		j := i + 1
		isNull := nulls != nil && nulls[i]
		for j < len(ints) && ints[j] == ints[i] && (nulls == nil || nulls[j] == isNull) {
			j++
		}
		d.Runs = append(d.Runs, Run{Value: ints[i], Start: int64(i), Count: int64(j - i), Null: isNull})
		i = j
	}
	return d
}

func buildDelta(ints []int64, nulls []bool) (*DeltaIntData, bool) {
	if len(ints) == 0 {
		return &DeltaIntData{}, true
	}
	base := ints[0]
	deltas := make([]int32, len(ints))
	for i, v := range ints {
		d := v - base
		if d < -1<<31 || d >= 1<<31 {
			return nil, false
		}
		deltas[i] = int32(d)
	}
	return &DeltaIntData{Base: base, Deltas: deltas, Nulls: nulls}, true
}
