package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// The single-file database format (Sect. 4.1.1: "compact a database into a
// single file" as a convenience for moving, sharing and publishing data).
// Layout: magic, version, table count, then each table with its metadata and
// column payloads. All integers are little-endian; strings and slices are
// uvarint-length-prefixed.

const (
	fileMagic   = "TDE1"
	fileVersion = 1
)

// WriteDatabase serializes the database into the single-file format.
func WriteDatabase(db *Database, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	e := &encoder{w: bw}
	e.bytes([]byte(fileMagic))
	e.u32(fileVersion)
	e.str(db.Name())

	var tables []*Table
	for _, s := range db.Schemas() {
		tables = append(tables, db.Tables(s)...)
	}
	e.uvarint(uint64(len(tables)))
	for _, t := range tables {
		writeTable(e, t)
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// ReadDatabase parses a database from the single-file format.
func ReadDatabase(r io.Reader) (*Database, error) {
	d := &decoder{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, 4)
	d.bytes(magic)
	if d.err == nil && string(magic) != fileMagic {
		return nil, fmt.Errorf("storage: bad magic %q", magic)
	}
	if v := d.u32(); d.err == nil && v != fileVersion {
		return nil, fmt.Errorf("storage: unsupported file version %d", v)
	}
	db := NewDatabase(d.str())
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		t := readTable(d)
		if d.err == nil {
			if err := db.AddTable(t); err != nil {
				return nil, err
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return db, nil
}

// SaveDatabase packs the database into a single file on disk.
func SaveDatabase(db *Database, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDatabase(db, f); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}

// OpenDatabase unpacks a database file from disk.
func OpenDatabase(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDatabase(f)
}

func writeTable(e *encoder, t *Table) {
	e.str(t.Schema)
	e.str(t.Name)
	e.varint(t.Rows)
	e.strs(t.SortKey)
	e.uvarint(uint64(len(t.UniqueKeys)))
	for _, k := range t.UniqueKeys {
		e.strs(k)
	}
	e.uvarint(uint64(len(t.Cols)))
	for _, c := range t.Cols {
		writeColumn(e, c)
	}
}

func readTable(d *decoder) *Table {
	t := &Table{}
	t.Schema = d.str()
	t.Name = d.str()
	t.Rows = d.varint()
	t.SortKey = d.strs()
	nk := d.uvarint()
	for i := uint64(0); i < nk && d.err == nil; i++ {
		t.UniqueKeys = append(t.UniqueKeys, d.strs())
	}
	nc := d.uvarint()
	for i := uint64(0); i < nc && d.err == nil; i++ {
		t.Cols = append(t.Cols, readColumn(d))
	}
	return t
}

func writeColumn(e *encoder, c *Column) {
	e.str(c.Name)
	e.u8(uint8(c.Type))
	e.u8(uint8(c.Coll))
	if c.Dict != nil {
		e.u8(1)
		e.strs(c.Dict.Values)
	} else {
		e.u8(0)
	}
	writeValue(e, c.Stats.Min)
	writeValue(e, c.Stats.Max)
	e.varint(c.Stats.Distinct)
	e.varint(c.Stats.Nulls)
	e.boolb(c.Stats.Sorted)
	writePhysData(e, c.Data)
}

func readColumn(d *decoder) *Column {
	c := &Column{}
	c.Name = d.str()
	c.Type = Type(d.u8())
	c.Coll = Collation(d.u8())
	if d.u8() == 1 {
		// Values were stored in sorted order; rebuild without re-sorting.
		c.Dict = &Dictionary{Values: d.strs(), Coll: c.Coll}
	}
	c.Stats.Min = readValue(d)
	c.Stats.Max = readValue(d)
	c.Stats.Distinct = d.varint()
	c.Stats.Nulls = d.varint()
	c.Stats.Sorted = d.boolb()
	c.Data = readPhysData(d)
	return c
}

func writeValue(e *encoder, v Value) {
	e.u8(uint8(v.Type))
	e.boolb(v.Null)
	if v.Null {
		return
	}
	switch v.Type {
	case TFloat:
		e.u64(math.Float64bits(v.F))
	case TStr:
		e.str(v.S)
	default:
		e.varint(v.I)
	}
}

func readValue(d *decoder) Value {
	v := Value{Type: Type(d.u8())}
	v.Null = d.boolb()
	if v.Null {
		return v
	}
	switch v.Type {
	case TFloat:
		v.F = math.Float64frombits(d.u64())
	case TStr:
		v.S = d.str()
	default:
		v.I = d.varint()
	}
	return v
}

func writePhysData(e *encoder, p PhysData) {
	switch d := p.(type) {
	case *IntData:
		e.u8(0)
		e.uvarint(uint64(len(d.Vals)))
		for _, v := range d.Vals {
			e.varint(v)
		}
		e.nulls(d.Nulls)
	case *FloatData:
		e.u8(1)
		e.uvarint(uint64(len(d.Vals)))
		for _, v := range d.Vals {
			e.u64(math.Float64bits(v))
		}
		e.nulls(d.Nulls)
	case *StringData:
		e.u8(2)
		e.strs(d.Vals)
		e.nulls(d.Nulls)
	case *RLEIntData:
		e.u8(3)
		e.varint(d.N)
		e.uvarint(uint64(len(d.Runs)))
		for _, r := range d.Runs {
			e.varint(r.Value)
			e.varint(r.Start)
			e.varint(r.Count)
			e.boolb(r.Null)
		}
	case *DeltaIntData:
		e.u8(4)
		e.varint(d.Base)
		e.uvarint(uint64(len(d.Deltas)))
		for _, v := range d.Deltas {
			e.varint(int64(v))
		}
		e.nulls(d.Nulls)
	default:
		e.fail(fmt.Errorf("storage: unknown phys data %T", p))
	}
}

func readPhysData(d *decoder) PhysData {
	switch kind := d.u8(); kind {
	case 0:
		n := d.uvarint()
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = d.varint()
		}
		return &IntData{Vals: vals, Nulls: d.nulls(int(n))}
	case 1:
		n := d.uvarint()
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Float64frombits(d.u64())
		}
		return &FloatData{Vals: vals, Nulls: d.nulls(int(n))}
	case 2:
		vals := d.strs()
		return &StringData{Vals: vals, Nulls: d.nulls(len(vals))}
	case 3:
		out := &RLEIntData{N: d.varint()}
		n := d.uvarint()
		out.Runs = make([]Run, n)
		for i := range out.Runs {
			out.Runs[i] = Run{Value: d.varint(), Start: d.varint(), Count: d.varint(), Null: d.boolb()}
		}
		return out
	case 4:
		out := &DeltaIntData{Base: d.varint()}
		n := d.uvarint()
		out.Deltas = make([]int32, n)
		for i := range out.Deltas {
			out.Deltas[i] = int32(d.varint())
		}
		out.Nulls = d.nulls(int(n))
		return out
	default:
		d.fail(fmt.Errorf("storage: unknown phys data kind %d", kind))
		return &IntData{}
	}
}

// encoder writes primitives with sticky error capture.
type encoder struct {
	w   io.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *encoder) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, err := e.w.Write(b)
	e.fail(err)
}

func (e *encoder) u8(v uint8) { e.bytes([]byte{v}) }
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.bytes(b[:])
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.bytes(b[:])
}
func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.bytes(e.buf[:n])
}
func (e *encoder) varint(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.bytes(e.buf[:n])
}
func (e *encoder) boolb(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.bytes([]byte(s))
}
func (e *encoder) strs(s []string) {
	e.uvarint(uint64(len(s)))
	for _, v := range s {
		e.str(v)
	}
}
func (e *encoder) nulls(n []bool) {
	if n == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.uvarint(uint64(len(n)))
	for _, v := range n {
		e.boolb(v)
	}
}

// decoder reads primitives with sticky error capture.
type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) bytes(b []byte) {
	if d.err != nil {
		return
	}
	_, err := io.ReadFull(d.r, b)
	d.fail(err)
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	d.fail(err)
	return b
}

func (d *decoder) u32() uint32 {
	var b [4]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (d *decoder) u64() uint64 {
	var b [8]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	d.fail(err)
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	d.fail(err)
	return v
}

func (d *decoder) boolb() bool { return d.u8() != 0 }

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	d.bytes(b)
	return string(b)
}

func (d *decoder) strs() []string {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *decoder) nulls(n int) []bool {
	if d.u8() == 0 {
		return nil
	}
	m := d.uvarint()
	if d.err != nil {
		return nil
	}
	_ = n
	out := make([]bool, m)
	for i := range out {
		out[i] = d.boolb()
	}
	return out
}
