package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func intVals(xs ...int64) []Value {
	out := make([]Value, len(xs))
	for i, x := range xs {
		out[i] = IntValue(x)
	}
	return out
}

func strVals(xs ...string) []Value {
	out := make([]Value, len(xs))
	for i, x := range xs {
		out[i] = StrValue(x)
	}
	return out
}

func TestBuildColumnRLEChoice(t *testing.T) {
	// Long runs should pick RLE.
	vals := make([]Value, 1000)
	for i := range vals {
		vals[i] = IntValue(int64(i / 250))
	}
	col, err := BuildColumn("c", TInt, CollBinary, vals, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Encoding() != EncRLE {
		t.Fatalf("encoding = %v, want rle", col.Encoding())
	}
	runs, ok := col.RLERuns()
	if !ok || len(runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(runs))
	}
	if !col.Stats.Sorted || col.Stats.Distinct != 4 {
		t.Errorf("stats = %+v", col.Stats)
	}
}

func TestBuildColumnDeltaChoice(t *testing.T) {
	vals := make([]Value, 1000)
	for i := range vals {
		vals[i] = IntValue(int64(1_000_000 + i))
	}
	col, err := BuildColumn("c", TInt, CollBinary, vals, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Encoding() != EncDelta {
		t.Fatalf("encoding = %v, want delta", col.Encoding())
	}
	if col.Value(500).I != 1_000_500 {
		t.Errorf("Value(500) = %v", col.Value(500))
	}
}

func TestBuildColumnPlainChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]Value, 1000)
	for i := range vals {
		vals[i] = IntValue(rng.Int63())
	}
	col, err := BuildColumn("c", TInt, CollBinary, vals, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Encoding() != EncPlain {
		t.Fatalf("encoding = %v, want plain", col.Encoding())
	}
}

func TestBuildColumnDictionary(t *testing.T) {
	vals := strVals("WN", "AA", "DL", "AA", "WN", "UA", "AA", "DL")
	col, err := BuildColumn("carrier", TStr, CollBinary, vals, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Dict == nil {
		t.Fatal("expected dictionary compression")
	}
	if col.Dict.Len() != 4 {
		t.Fatalf("dict len = %d, want 4", col.Dict.Len())
	}
	// Dictionary is sorted, so tokens order like values.
	want := []string{"AA", "DL", "UA", "WN"}
	for i, w := range want {
		if col.Dict.Value(int32(i)) != w {
			t.Errorf("dict[%d] = %q, want %q", i, col.Dict.Value(int32(i)), w)
		}
	}
	for i, v := range vals {
		if got := col.Value(i); got.S != v.S {
			t.Errorf("Value(%d) = %q, want %q", i, got.S, v.S)
		}
	}
}

func TestDictionaryCollationCI(t *testing.T) {
	vals := strVals("aa", "AA", "bb", "BB", "aa")
	col, err := BuildColumn("c", TStr, CollCI, vals, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Dict == nil || col.Dict.Len() != 2 {
		t.Fatalf("CI dictionary should have 2 entries, got %v", col.Dict)
	}
	tok1, ok1 := col.Dict.Lookup("AA")
	tok2, ok2 := col.Dict.Lookup("aa")
	if !ok1 || !ok2 || tok1 != tok2 {
		t.Errorf("CI lookup: %v/%v %v/%v", tok1, ok1, tok2, ok2)
	}
}

func TestDictionaryBounds(t *testing.T) {
	d := NewDictionary([]string{"b", "d", "f"}, CollBinary)
	if d.LowerBound("a") != 0 || d.LowerBound("b") != 0 || d.LowerBound("c") != 1 {
		t.Error("LowerBound wrong")
	}
	if d.UpperBound("b") != 1 || d.UpperBound("g") != 3 {
		t.Error("UpperBound wrong")
	}
	if _, ok := d.Lookup("zzz"); ok {
		t.Error("Lookup of absent value should fail")
	}
}

func TestColumnNulls(t *testing.T) {
	vals := []Value{IntValue(1), NullValue(TInt), IntValue(3)}
	col, err := BuildColumn("c", TInt, CollBinary, vals, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Stats.Nulls != 1 {
		t.Errorf("null count = %d", col.Stats.Nulls)
	}
	if !col.Value(1).Null {
		t.Error("row 1 should be null")
	}
	v := col.ScanRange(0, 3)
	if !v.IsNull(1) || v.IsNull(0) || v.IsNull(2) {
		t.Error("scan null mask wrong")
	}
}

func TestScanRangeRLE(t *testing.T) {
	vals := make([]Value, 100)
	for i := range vals {
		vals[i] = IntValue(int64(i / 10))
	}
	col, err := BuildColumn("c", TInt, CollBinary, vals, BuildOptions{ForceEncoding: EncRLE, HasForce: true})
	if err != nil {
		t.Fatal(err)
	}
	v := col.ScanRange(15, 35)
	if v.Len() != 20 {
		t.Fatalf("len = %d", v.Len())
	}
	for i := 0; i < 20; i++ {
		want := int64((15 + i) / 10)
		if v.I[i] != want {
			t.Errorf("row %d = %d, want %d", i, v.I[i], want)
		}
	}
}

// Property: every encoding round-trips point access against plain storage.
func TestEncodingRoundTripQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]Value, len(raw))
		for i, r := range raw {
			vals[i] = IntValue(int64(r))
		}
		for _, enc := range []Encoding{EncPlain, EncRLE, EncDelta} {
			col, err := BuildColumn("c", TInt, CollBinary, vals, BuildOptions{ForceEncoding: enc, HasForce: true})
			if err != nil {
				return false
			}
			for i, v := range vals {
				if col.Value(i).I != v.I {
					return false
				}
			}
			got := col.ScanRange(0, len(vals))
			for i, v := range vals {
				if got.I[i] != v.I {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVectorGatherSliceDecode(t *testing.T) {
	vals := strVals("x", "y", "x", "z")
	col, _ := BuildColumn("c", TStr, CollBinary, vals, BuildOptions{})
	v := col.ScanRange(0, 4)
	if v.Dict == nil {
		t.Fatal("expected token vector")
	}
	g := v.Gather([]int32{3, 0})
	dec := g.Decode()
	if dec.S[0] != "z" || dec.S[1] != "x" {
		t.Errorf("gather+decode = %v", dec.S)
	}
	s := v.Slice(1, 3).Decode()
	if s.S[0] != "y" || s.S[1] != "x" {
		t.Errorf("slice+decode = %v", s.S)
	}
}

func TestConstVector(t *testing.T) {
	v := ConstVector(IntValue(7), 5)
	if v.Len() != 5 || v.I[4] != 7 {
		t.Error("const int vector wrong")
	}
	nv := ConstVector(NullValue(TStr), 3)
	if !nv.IsNull(2) {
		t.Error("const null vector wrong")
	}
}
