package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SysSchema is the reserved schema name holding database metadata.
const SysSchema = "SYS"

// Table is a read-only columnar table with optimizer metadata.
type Table struct {
	Schema string
	Name   string
	Cols   []*Column
	Rows   int64
	// SortKey lists column names the table rows are physically ordered by,
	// major first. Range partitioning for parallel aggregation (Sect. 4.2.3)
	// keys off this.
	SortKey []string
	// UniqueKeys lists column-name sets known to be row-unique; join culling
	// needs uniqueness of dimension join keys.
	UniqueKeys [][]string
}

// QualifiedName returns "schema.name".
func (t *Table) QualifiedName() string { return t.Schema + "." + t.Name }

// Column returns the named column (case-insensitive), or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return c
		}
	}
	return nil
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// HasUniqueKey reports whether the given column set is a known unique key.
func (t *Table) HasUniqueKey(cols []string) bool {
	want := make([]string, len(cols))
	for i, c := range cols {
		want[i] = strings.ToLower(c)
	}
	sort.Strings(want)
	for _, key := range t.UniqueKeys {
		if len(key) != len(want) {
			continue
		}
		have := make([]string, len(key))
		for i, c := range key {
			have[i] = strings.ToLower(c)
		}
		sort.Strings(have)
		match := true
		for i := range have {
			if have[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// SortPrefix reports how many leading sort-key columns the given column set
// covers: the longest prefix of SortKey fully contained in cols. Per Lemma 3
// a positive prefix lets aggregation run fully parallel under range
// partitioning.
func (t *Table) SortPrefix(cols []string) int {
	set := make(map[string]bool, len(cols))
	for _, c := range cols {
		set[strings.ToLower(c)] = true
	}
	n := 0
	for _, k := range t.SortKey {
		if !set[strings.ToLower(k)] {
			break
		}
		n++
	}
	return n
}

// NewTable assembles a table from columns, validating consistent lengths.
func NewTable(schema, name string, cols []*Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: table %s.%s has no columns", schema, name)
	}
	n := cols[0].Len()
	seen := make(map[string]bool)
	for _, c := range cols {
		if c.Len() != n {
			return nil, fmt.Errorf("storage: table %s.%s: column %s has %d rows, want %d",
				schema, name, c.Name, c.Len(), n)
		}
		lower := strings.ToLower(c.Name)
		if seen[lower] {
			return nil, fmt.Errorf("storage: table %s.%s: duplicate column %s", schema, name, c.Name)
		}
		seen[lower] = true
	}
	return &Table{Schema: schema, Name: name, Cols: cols, Rows: int64(n)}, nil
}

// Database is the top level of the three-layer namespace: schemas containing
// tables containing columns. It is safe for concurrent readers with
// serialized writers.
type Database struct {
	mu      sync.RWMutex
	name    string
	schemas map[string]map[string]*Table // lower(schema) -> lower(table) -> table
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{name: name, schemas: make(map[string]map[string]*Table)}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// AddTable registers a table, creating its schema on demand.
func (db *Database) AddTable(t *Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := strings.ToLower(t.Schema)
	if db.schemas[s] == nil {
		db.schemas[s] = make(map[string]*Table)
	}
	n := strings.ToLower(t.Name)
	if _, ok := db.schemas[s][n]; ok {
		return fmt.Errorf("storage: table %s already exists", t.QualifiedName())
	}
	db.schemas[s][n] = t
	return nil
}

// DropTable removes a table.
func (db *Database) DropTable(schema, name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := db.schemas[strings.ToLower(schema)]
	if s == nil {
		return fmt.Errorf("storage: schema %s not found", schema)
	}
	n := strings.ToLower(name)
	if _, ok := s[n]; !ok {
		return fmt.Errorf("storage: table %s.%s not found", schema, name)
	}
	delete(s, n)
	return nil
}

// Table resolves a table by schema and name (case-insensitive).
func (db *Database) Table(schema, name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.schemas[strings.ToLower(schema)]
	if s == nil {
		return nil, fmt.Errorf("storage: schema %s not found", schema)
	}
	t := s[strings.ToLower(name)]
	if t == nil {
		return nil, fmt.Errorf("storage: table %s.%s not found", schema, name)
	}
	return t, nil
}

// Schemas returns the schema names in sorted order.
func (db *Database) Schemas() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.schemas))
	for s := range db.schemas {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Tables returns the tables of a schema in name order.
func (db *Database) Tables(schema string) []*Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.schemas[strings.ToLower(schema)]
	out := make([]*Table, 0, len(s))
	for _, t := range s {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllTables returns every table across schemas, SYS excluded.
func (db *Database) AllTables() []*Table {
	var out []*Table
	for _, s := range db.Schemas() {
		if strings.EqualFold(s, SysSchema) {
			continue
		}
		out = append(out, db.Tables(s)...)
	}
	return out
}
