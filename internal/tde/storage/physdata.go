package storage

// Encoding identifies the physical storage format of a column's data.
// Dictionary compression is orthogonal: a dictionary column stores tokens,
// and the token array itself may use any integer encoding. Encodings are
// "invisible outside the storage layer" except where the optimizer exploits
// them (run-length index scans, Sect. 4.3 of the paper).
type Encoding uint8

// Supported encodings.
const (
	EncPlain Encoding = iota // uncompressed fixed-width or string data
	EncRLE                   // run-length encoded integers/tokens
	EncDelta                 // base + per-row delta (sorted/near-sorted ints)
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case EncRLE:
		return "rle"
	case EncDelta:
		return "delta"
	}
	return "plain"
}

// PhysData is the physical storage of one column: either the values
// themselves or, for dictionary columns, the token array. Implementations
// are immutable after construction.
type PhysData interface {
	// Len returns the number of rows.
	Len() int
	// Encoding reports the storage format.
	Encoding() Encoding
	// MaterializeRange decodes rows [from,to) into dst, which must have the
	// matching physical type and length to-from.
	MaterializeRange(dst *Vector, from, to int)
	// NullAt reports whether row i is null.
	NullAt(i int) bool
}

// IntAccessor is implemented by integer-backed physical data (plain, RLE,
// delta, and token arrays) for point access.
type IntAccessor interface {
	IntAt(i int) int64
}

// ---- plain integers ----

// IntData stores int64 values (also bools, dates, datetimes and dictionary
// tokens) uncompressed.
type IntData struct {
	Vals  []int64
	Nulls []bool // nil when no nulls
}

// Len implements PhysData.
func (d *IntData) Len() int { return len(d.Vals) }

// Encoding implements PhysData.
func (d *IntData) Encoding() Encoding { return EncPlain }

// NullAt implements PhysData.
func (d *IntData) NullAt(i int) bool { return d.Nulls != nil && d.Nulls[i] }

// IntAt implements IntAccessor.
func (d *IntData) IntAt(i int) int64 { return d.Vals[i] }

// MaterializeRange implements PhysData.
func (d *IntData) MaterializeRange(dst *Vector, from, to int) {
	copy(dst.I, d.Vals[from:to])
	if d.Nulls != nil {
		if dst.Null == nil {
			dst.Null = make([]bool, to-from)
		}
		copy(dst.Null, d.Nulls[from:to])
	}
}

// ---- plain floats ----

// FloatData stores float64 values uncompressed.
type FloatData struct {
	Vals  []float64
	Nulls []bool
}

// Len implements PhysData.
func (d *FloatData) Len() int { return len(d.Vals) }

// Encoding implements PhysData.
func (d *FloatData) Encoding() Encoding { return EncPlain }

// NullAt implements PhysData.
func (d *FloatData) NullAt(i int) bool { return d.Nulls != nil && d.Nulls[i] }

// MaterializeRange implements PhysData.
func (d *FloatData) MaterializeRange(dst *Vector, from, to int) {
	copy(dst.F, d.Vals[from:to])
	if d.Nulls != nil {
		if dst.Null == nil {
			dst.Null = make([]bool, to-from)
		}
		copy(dst.Null, d.Nulls[from:to])
	}
}

// ---- plain strings ----

// StringData stores strings uncompressed ("heap" storage for columns that
// resist dictionary compression).
type StringData struct {
	Vals  []string
	Nulls []bool
}

// Len implements PhysData.
func (d *StringData) Len() int { return len(d.Vals) }

// Encoding implements PhysData.
func (d *StringData) Encoding() Encoding { return EncPlain }

// NullAt implements PhysData.
func (d *StringData) NullAt(i int) bool { return d.Nulls != nil && d.Nulls[i] }

// MaterializeRange implements PhysData.
func (d *StringData) MaterializeRange(dst *Vector, from, to int) {
	copy(dst.S, d.Vals[from:to])
	if d.Nulls != nil {
		if dst.Null == nil {
			dst.Null = make([]bool, to-from)
		}
		copy(dst.Null, d.Nulls[from:to])
	}
}

// ---- run-length encoding ----

// Run is one run of an RLE column: Count repetitions of Value starting at
// logical row Start. A null run has Null set.
type Run struct {
	Value int64
	Start int64
	Count int64
	Null  bool
}

// RLEIntData stores integer-backed data as runs. The IndexTable the
// optimizer derives for range-skipping scans (Sect. 4.3) is exactly the
// (value, count, start) triple list held here.
type RLEIntData struct {
	Runs []Run
	N    int64
}

// Len implements PhysData.
func (d *RLEIntData) Len() int { return int(d.N) }

// Encoding implements PhysData.
func (d *RLEIntData) Encoding() Encoding { return EncRLE }

// runIndex locates the run containing logical row i via binary search.
func (d *RLEIntData) runIndex(i int) int {
	lo, hi := 0, len(d.Runs)
	for lo < hi {
		mid := (lo + hi) / 2
		r := &d.Runs[mid]
		switch {
		case int64(i) < r.Start:
			hi = mid
		case int64(i) >= r.Start+r.Count:
			lo = mid + 1
		default:
			return mid
		}
	}
	panic("storage: RLE row out of range")
}

func (d *RLEIntData) run(i int) *Run { return &d.Runs[d.runIndex(i)] }

// NullAt implements PhysData.
func (d *RLEIntData) NullAt(i int) bool { return d.run(i).Null }

// IntAt implements IntAccessor.
func (d *RLEIntData) IntAt(i int) int64 { return d.run(i).Value }

// MaterializeRange implements PhysData.
func (d *RLEIntData) MaterializeRange(dst *Vector, from, to int) {
	if from >= to {
		return
	}
	idx := d.runIndex(from)
	out := 0
	for ri := idx; ri < len(d.Runs) && out < to-from; ri++ {
		run := &d.Runs[ri]
		lo := run.Start
		if int64(from) > lo {
			lo = int64(from)
		}
		hi := run.Start + run.Count
		if int64(to) < hi {
			hi = int64(to)
		}
		for i := lo; i < hi; i++ {
			dst.I[out] = run.Value
			if run.Null {
				if dst.Null == nil {
					dst.Null = make([]bool, to-from)
				}
				dst.Null[out] = true
			}
			out++
		}
	}
}

// ---- delta encoding ----

// DeltaIntData stores integer data as a base plus small per-row deltas,
// a lightweight format for sorted or near-sorted columns such as row ids and
// date columns of time-ordered fact tables.
type DeltaIntData struct {
	Base   int64
	Deltas []int32
	Nulls  []bool
}

// Len implements PhysData.
func (d *DeltaIntData) Len() int { return len(d.Deltas) }

// Encoding implements PhysData.
func (d *DeltaIntData) Encoding() Encoding { return EncDelta }

// NullAt implements PhysData.
func (d *DeltaIntData) NullAt(i int) bool { return d.Nulls != nil && d.Nulls[i] }

// IntAt implements IntAccessor.
func (d *DeltaIntData) IntAt(i int) int64 { return d.Base + int64(d.Deltas[i]) }

// MaterializeRange implements PhysData.
func (d *DeltaIntData) MaterializeRange(dst *Vector, from, to int) {
	for i := from; i < to; i++ {
		dst.I[i-from] = d.Base + int64(d.Deltas[i])
	}
	if d.Nulls != nil {
		if dst.Null == nil {
			dst.Null = make([]bool, to-from)
		}
		copy(dst.Null, d.Nulls[from:to])
	}
}
