package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func buildTestDB(t *testing.T) *Database {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	n := 500
	dates := make([]Value, n)
	carriers := make([]Value, n)
	delays := make([]Value, n)
	dists := make([]Value, n)
	names := []string{"WN", "AA", "DL", "UA", "B6"}
	for i := 0; i < n; i++ {
		dates[i] = IntValue(int64(16000 + i/50))
		carriers[i] = StrValue(names[rng.Intn(len(names))])
		if rng.Intn(20) == 0 {
			delays[i] = NullValue(TFloat)
		} else {
			delays[i] = FloatValue(rng.Float64() * 60)
		}
		dists[i] = IntValue(int64(rng.Intn(3000)))
	}
	date, err := BuildColumn("date", TDate, CollBinary, dates, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	carrier, err := BuildColumn("carrier", TStr, CollCI, carriers, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delay, err := BuildColumn("delay", TFloat, CollBinary, delays, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := BuildColumn("distance", TInt, CollBinary, dists, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTable("Extract", "flights", []*Column{date, carrier, delay, dist})
	if err != nil {
		t.Fatal(err)
	}
	tbl.SortKey = []string{"date"}
	tbl.UniqueKeys = [][]string{{"date", "distance"}}
	db := NewDatabase("testdb")
	if err := db.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFileRoundTrip(t *testing.T) {
	db := buildTestDB(t)
	var buf bytes.Buffer
	if err := WriteDatabase(db, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "testdb" {
		t.Errorf("name = %q", got.Name())
	}
	want, _ := db.Table("Extract", "flights")
	tbl, err := got.Table("extract", "FLIGHTS") // case-insensitive resolution
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows != want.Rows || len(tbl.Cols) != len(want.Cols) {
		t.Fatalf("table shape mismatch: %d/%d cols %d/%d rows",
			len(tbl.Cols), len(want.Cols), tbl.Rows, want.Rows)
	}
	if len(tbl.SortKey) != 1 || tbl.SortKey[0] != "date" {
		t.Errorf("sort key = %v", tbl.SortKey)
	}
	if !tbl.HasUniqueKey([]string{"distance", "date"}) {
		t.Error("unique key lost")
	}
	for ci, wc := range want.Cols {
		gc := tbl.Cols[ci]
		if gc.Name != wc.Name || gc.Type != wc.Type || gc.Coll != wc.Coll || gc.Encoding() != wc.Encoding() {
			t.Fatalf("column %d meta mismatch: %+v vs %+v", ci, gc, wc)
		}
		for i := 0; i < int(tbl.Rows); i++ {
			a, b := gc.Value(i), wc.Value(i)
			if !Equal(a, b, gc.Coll) {
				t.Fatalf("col %s row %d: %v != %v", gc.Name, i, a, b)
			}
		}
		if gc.Stats.Distinct != wc.Stats.Distinct || gc.Stats.Sorted != wc.Stats.Sorted {
			t.Errorf("col %s stats mismatch", gc.Name)
		}
	}
}

func TestFileOnDisk(t *testing.T) {
	db := buildTestDB(t)
	path := filepath.Join(t.TempDir(), "db.tde")
	if err := SaveDatabase(db, path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Table("Extract", "flights"); err != nil {
		t.Fatal(err)
	}
}

func TestFileBadMagic(t *testing.T) {
	if _, err := ReadDatabase(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Error("expected error on bad magic")
	}
}

func TestDatabaseCatalog(t *testing.T) {
	db := buildTestDB(t)
	if got := db.Schemas(); len(got) != 1 || got[0] != "extract" {
		t.Errorf("schemas = %v", got)
	}
	tbl, _ := db.Table("Extract", "flights")
	if db.AddTable(tbl) == nil {
		t.Error("duplicate AddTable should fail")
	}
	if tbl.Column("CARRIER") == nil {
		t.Error("case-insensitive column lookup failed")
	}
	if tbl.ColumnIndex("delay") != 2 {
		t.Errorf("ColumnIndex = %d", tbl.ColumnIndex("delay"))
	}
	if tbl.SortPrefix([]string{"date", "carrier"}) != 1 {
		t.Error("SortPrefix should be 1")
	}
	if tbl.SortPrefix([]string{"carrier"}) != 0 {
		t.Error("SortPrefix should be 0")
	}
	if err := db.DropTable("Extract", "flights"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("Extract", "flights"); err == nil {
		t.Error("dropped table should not resolve")
	}
	if len(db.AllTables()) != 0 {
		t.Error("AllTables should be empty")
	}
}

func TestNewTableValidation(t *testing.T) {
	c1, _ := BuildColumn("a", TInt, CollBinary, intVals(1, 2), BuildOptions{})
	c2, _ := BuildColumn("b", TInt, CollBinary, intVals(1), BuildOptions{})
	if _, err := NewTable("s", "t", []*Column{c1, c2}); err == nil {
		t.Error("ragged table should fail")
	}
	c3, _ := BuildColumn("A", TInt, CollBinary, intVals(3, 4), BuildOptions{})
	if _, err := NewTable("s", "t", []*Column{c1, c3}); err == nil {
		t.Error("duplicate column names should fail")
	}
	if _, err := NewTable("s", "t", nil); err == nil {
		t.Error("empty table should fail")
	}
}
