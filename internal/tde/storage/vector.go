package storage

import "fmt"

// BatchSize is the number of rows materialized per execution chunk.
const BatchSize = 1024

// Vector is a fixed-type column chunk used throughout the executor. Exactly
// one of I/F/S backs the data depending on Type (bool/int/date/datetime use
// I). Null is nil when the chunk contains no nulls.
type Vector struct {
	Type Type
	I    []int64
	F    []float64
	S    []string
	Null []bool
	// Dict is non-nil for late-materialized dictionary string vectors:
	// Type is TStr but I holds tokens into Dict. Consumers that need the
	// strings call Decode.
	Dict *Dictionary
}

// NewVector allocates a vector of the given logical type and length.
func NewVector(t Type, n int) *Vector {
	v := &Vector{Type: t}
	switch {
	case t == TFloat:
		v.F = make([]float64, n)
	case t == TStr:
		v.S = make([]string, n)
	default:
		v.I = make([]int64, n)
	}
	return v
}

// Len returns the number of rows in the vector.
func (v *Vector) Len() int {
	switch {
	case v.Type == TFloat:
		return len(v.F)
	case v.Type == TStr && v.Dict == nil:
		return len(v.S)
	default:
		return len(v.I)
	}
}

// Decode materializes a dictionary token vector into plain strings. It
// returns v unchanged when the vector is not dictionary-backed.
func (v *Vector) Decode() *Vector {
	if v.Dict == nil {
		return v
	}
	out := &Vector{Type: TStr, S: make([]string, len(v.I)), Null: v.Null}
	for i, tok := range v.I {
		if v.Null != nil && v.Null[i] {
			continue
		}
		out.S[i] = v.Dict.Value(int32(tok))
	}
	return out
}

// IsNull reports whether row i is null.
func (v *Vector) IsNull(i int) bool { return v.Null != nil && v.Null[i] }

// SetNull marks row i null, allocating the null mask on first use.
func (v *Vector) SetNull(i int) {
	if v.Null == nil {
		v.Null = make([]bool, v.Len())
	}
	v.Null[i] = true
}

// Value extracts row i as a scalar (slow path: result assembly, sorting keys).
func (v *Vector) Value(i int) Value {
	if v.IsNull(i) {
		return NullValue(v.Type)
	}
	switch {
	case v.Type == TFloat:
		return Value{Type: TFloat, F: v.F[i]}
	case v.Type == TStr && v.Dict == nil:
		return Value{Type: TStr, S: v.S[i]}
	case v.Type == TStr:
		return Value{Type: TStr, S: v.Dict.Value(int32(v.I[i]))}
	default:
		return Value{Type: v.Type, I: v.I[i]}
	}
}

// Set stores a scalar into row i; the scalar must match the vector type or be
// null.
func (v *Vector) Set(i int, val Value) {
	if val.Null {
		v.SetNull(i)
		return
	}
	if v.Null != nil {
		v.Null[i] = false
	}
	switch {
	case v.Type == TFloat:
		if val.Type == TFloat {
			v.F[i] = val.F
		} else {
			v.F[i] = float64(val.I)
		}
	case v.Type == TStr:
		v.S[i] = val.S
	default:
		v.I[i] = val.I
	}
}

// Append grows the vector by one row holding val.
func (v *Vector) Append(val Value) {
	switch {
	case v.Type == TFloat:
		v.F = append(v.F, val.AsFloat())
	case v.Type == TStr:
		v.S = append(v.S, val.S)
	default:
		v.I = append(v.I, val.I)
	}
	if val.Null {
		for len(v.Null) < v.Len()-1 {
			v.Null = append(v.Null, false)
		}
		v.Null = append(v.Null, true)
	} else if v.Null != nil {
		v.Null = append(v.Null, false)
	}
}

// Gather builds a new vector from the rows of v selected by idx.
func (v *Vector) Gather(idx []int32) *Vector {
	out := &Vector{Type: v.Type, Dict: v.Dict}
	switch {
	case v.Type == TFloat:
		out.F = make([]float64, len(idx))
		for o, i := range idx {
			out.F[o] = v.F[i]
		}
	case v.Type == TStr && v.Dict == nil:
		out.S = make([]string, len(idx))
		for o, i := range idx {
			out.S[o] = v.S[i]
		}
	default:
		out.I = make([]int64, len(idx))
		for o, i := range idx {
			out.I[o] = v.I[i]
		}
	}
	if v.Null != nil {
		out.Null = make([]bool, len(idx))
		any := false
		for o, i := range idx {
			if v.Null[i] {
				out.Null[o] = true
				any = true
			}
		}
		if !any {
			out.Null = nil
		}
	}
	return out
}

// Slice returns rows [from,to) of v sharing the underlying arrays.
func (v *Vector) Slice(from, to int) *Vector {
	out := &Vector{Type: v.Type, Dict: v.Dict}
	switch {
	case v.Type == TFloat:
		out.F = v.F[from:to]
	case v.Type == TStr && v.Dict == nil:
		out.S = v.S[from:to]
	default:
		out.I = v.I[from:to]
	}
	if v.Null != nil {
		out.Null = v.Null[from:to]
	}
	return out
}

// ConstVector builds an n-row vector repeating a scalar.
func ConstVector(val Value, n int) *Vector {
	v := NewVector(val.Type, n)
	if val.Null {
		v.Null = make([]bool, n)
		for i := range v.Null {
			v.Null[i] = true
		}
		return v
	}
	switch {
	case val.Type == TFloat:
		for i := range v.F {
			v.F[i] = val.F
		}
	case val.Type == TStr:
		for i := range v.S {
			v.S[i] = val.S
		}
	default:
		for i := range v.I {
			v.I[i] = val.I
		}
	}
	return v
}

// Batch is a horizontal slice of rows across a set of columns.
type Batch struct {
	Cols []*Vector
	N    int
}

// NewBatch wraps vectors into a batch, validating equal lengths.
func NewBatch(cols []*Vector) *Batch {
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	for _, c := range cols {
		if c.Len() != n {
			panic(fmt.Sprintf("storage: ragged batch: %d vs %d", c.Len(), n))
		}
	}
	return &Batch{Cols: cols, N: n}
}

// Row extracts row i as scalars (slow path).
func (b *Batch) Row(i int) []Value {
	out := make([]Value, len(b.Cols))
	for c, v := range b.Cols {
		out[c] = v.Value(i)
	}
	return out
}
