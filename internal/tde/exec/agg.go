package exec

import (
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// accum is the running state of one aggregate within one group.
type accum struct {
	count int64
	sumI  int64
	sumF  float64
	min   storage.Value
	max   storage.Value
	set   map[string]struct{} // countd only
}

func (a *accum) add(fn plan.AggFn, v storage.Value, coll storage.Collation) {
	if fn == plan.AggCount && v.Type == storage.TNull && !v.Null {
		// count(*): caller passes a non-null marker
		a.count++
		return
	}
	if v.Null {
		return
	}
	switch fn {
	case plan.AggCount:
		a.count++
	case plan.AggSum, plan.AggAvg:
		a.count++
		if v.Type == storage.TFloat {
			a.sumF += v.F
		} else {
			a.sumI += v.I
			a.sumF += float64(v.I)
		}
	case plan.AggMin:
		if a.count == 0 || storage.Compare(v, a.min, coll) < 0 {
			a.min = v
		}
		a.count++
	case plan.AggMax:
		if a.count == 0 || storage.Compare(v, a.max, coll) > 0 {
			a.max = v
		}
		a.count++
	case plan.AggCountD:
		if a.set == nil {
			a.set = make(map[string]struct{})
		}
		key := string(encodeValue(nil, v, coll))
		a.set[key] = struct{}{}
	}
}

func (a *accum) result(fn plan.AggFn, inType storage.Type) storage.Value {
	switch fn {
	case plan.AggCount:
		return storage.IntValue(a.count)
	case plan.AggCountD:
		return storage.IntValue(int64(len(a.set)))
	case plan.AggSum:
		if a.count == 0 {
			return storage.NullValue(fn.ResultType(inType))
		}
		if inType == storage.TFloat {
			return storage.FloatValue(a.sumF)
		}
		return storage.IntValue(a.sumI)
	case plan.AggAvg:
		if a.count == 0 {
			return storage.NullValue(storage.TFloat)
		}
		return storage.FloatValue(a.sumF / float64(a.count))
	case plan.AggMin:
		if a.count == 0 {
			return storage.NullValue(inType)
		}
		return a.min
	default: // AggMax
		if a.count == 0 {
			return storage.NullValue(inType)
		}
		return a.max
	}
}

type group struct {
	keys   []storage.Value
	accums []accum
}

// aggCommon holds the pieces shared by the hash and streaming variants.
type aggCommon struct {
	node   *plan.Aggregate
	schema []plan.ColInfo
}

func (a *aggCommon) newGroup(b *storage.Batch, row int) *group {
	g := &group{
		keys:   make([]storage.Value, len(a.node.GroupBy)),
		accums: make([]accum, len(a.node.Aggs)),
	}
	for i, gi := range a.node.GroupBy {
		g.keys[i] = b.Cols[gi].Value(row)
	}
	return g
}

func (a *aggCommon) update(g *group, b *storage.Batch, row int) {
	for i, spec := range a.node.Aggs {
		if spec.ArgIdx < 0 {
			// count(*): pass the non-null marker value
			g.accums[i].add(spec.Fn, storage.Value{Type: storage.TNull}, storage.CollBinary)
			continue
		}
		coll := a.schema[spec.ArgIdx].Coll
		g.accums[i].add(spec.Fn, b.Cols[spec.ArgIdx].Value(row), coll)
	}
}

func (a *aggCommon) encodeKey(buf []byte, b *storage.Batch, row int) []byte {
	for _, gi := range a.node.GroupBy {
		buf = encodeValue(buf, b.Cols[gi].Value(row), a.schema[gi].Coll)
	}
	return buf
}

func (a *aggCommon) emit(out *Result, g *group) {
	row := make([]storage.Value, 0, len(g.keys)+len(g.accums))
	row = append(row, g.keys...)
	for i, spec := range a.node.Aggs {
		inType := storage.TInt
		if spec.ArgIdx >= 0 {
			inType = a.schema[spec.ArgIdx].Type
		}
		row = append(row, g.accums[i].result(spec.Fn, inType))
	}
	out.AppendRow(row)
}

// hashAggOp is the stop-and-go hash aggregation operator.
type hashAggOp struct {
	aggCommon
	child Operator
	out   *Result
	pos   int
	done  bool
}

func (h *hashAggOp) Next() (*storage.Batch, error) {
	if !h.done {
		if err := h.consume(); err != nil {
			return nil, err
		}
		h.done = true
	}
	if h.pos >= h.out.N {
		return nil, nil
	}
	to := h.pos + storage.BatchSize
	if to > h.out.N {
		to = h.out.N
	}
	cols := make([]*storage.Vector, len(h.out.Cols))
	for i, v := range h.out.Cols {
		cols[i] = v.Slice(h.pos, to)
	}
	h.pos = to
	return storage.NewBatch(cols), nil
}

func (h *hashAggOp) consume() error {
	groups := make(map[string]*group)
	var order []*group
	var buf []byte
	sawRows := false
	for {
		b, err := h.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		sawRows = sawRows || b.N > 0
		for i := 0; i < b.N; i++ {
			buf = h.encodeKey(buf[:0], b, i)
			g, ok := groups[string(buf)]
			if !ok {
				g = h.newGroup(b, i)
				groups[string(buf)] = g
				order = append(order, g)
			}
			h.update(g, b, i)
		}
	}
	out := NewResult((&plan.Aggregate{Child: schemaNode(h.schema), GroupBy: h.node.GroupBy, Aggs: h.node.Aggs, Mode: h.node.Mode}).Schema())
	// A grand aggregate (no group-by) over empty input yields one row of
	// empty aggregates, matching SQL semantics.
	if len(order) == 0 && len(h.node.GroupBy) == 0 {
		g := &group{accums: make([]accum, len(h.node.Aggs))}
		h.emit(out, g)
	}
	for _, g := range order {
		h.emit(out, g)
	}
	h.out = out
	return nil
}

func (h *hashAggOp) Close() { h.child.Close() }

// streamAggOp assumes its input arrives grouped by the group-by columns
// (a property the optimizer derives from sorting, Sect. 4.2.4) and emits
// each group as soon as the next one starts.
type streamAggOp struct {
	aggCommon
	child   Operator
	out     *Result
	cur     *group
	curKey  []byte
	started bool
	eof     bool
}

func (s *streamAggOp) outSchema() []plan.ColInfo {
	return (&plan.Aggregate{Child: schemaNode(s.schema), GroupBy: s.node.GroupBy, Aggs: s.node.Aggs, Mode: s.node.Mode}).Schema()
}

func (s *streamAggOp) Next() (*storage.Batch, error) {
	if s.eof {
		return nil, nil
	}
	out := NewResult(s.outSchema())
	var buf []byte
	for out.N < storage.BatchSize {
		b, err := s.child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			s.eof = true
			if s.cur != nil {
				s.emit(out, s.cur)
				s.cur = nil
			} else if !s.started && len(s.node.GroupBy) == 0 {
				s.emit(out, &group{accums: make([]accum, len(s.node.Aggs))})
			}
			break
		}
		s.started = s.started || b.N > 0
		for i := 0; i < b.N; i++ {
			buf = s.encodeKey(buf[:0], b, i)
			if s.cur == nil || string(buf) != string(s.curKey) {
				if s.cur != nil {
					s.emit(out, s.cur)
				}
				s.cur = s.newGroup(b, i)
				s.curKey = append(s.curKey[:0], buf...)
			}
			s.update(s.cur, b, i)
		}
	}
	if out.N == 0 {
		return nil, nil
	}
	return storage.NewBatch(out.Cols), nil
}

func (s *streamAggOp) Close() { s.child.Close() }

// schemaNode adapts a schema slice into a Node for reusing plan schema
// computation.
type schemaHolder struct{ schema []plan.ColInfo }

func schemaNode(s []plan.ColInfo) plan.Node { return &schemaHolder{schema: s} }

// Schema implements plan.Node.
func (s *schemaHolder) Schema() []plan.ColInfo { return s.schema }

// Children implements plan.Node.
func (s *schemaHolder) Children() []plan.Node { return nil }

// WithChildren implements plan.Node.
func (s *schemaHolder) WithChildren([]plan.Node) plan.Node { return s }

// Label implements plan.Node.
func (s *schemaHolder) Label() string { return "schema" }
