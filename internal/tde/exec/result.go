package exec

import (
	"fmt"
	"strings"

	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// Result is a fully materialized query result: a small in-memory columnar
// table. Tableau retrieves data "in small, pre-filtered and pre-aggregated
// volumes" (Sect. 3.2), so materialized results are the unit the caches and
// the local post-processor work on.
type Result struct {
	Schema []plan.ColInfo
	Cols   []*storage.Vector
	N      int
	// Stale marks a degraded answer served from an expired cache entry
	// during a backend outage; clients may badge it and re-query later.
	Stale bool
}

// NewResult allocates an empty result with the given schema.
func NewResult(schema []plan.ColInfo) *Result {
	cols := make([]*storage.Vector, len(schema))
	for i, c := range schema {
		cols[i] = storage.NewVector(c.Type, 0)
	}
	return &Result{Schema: schema, Cols: cols}
}

// AppendBatch adds a batch of rows; dictionary vectors are decoded.
func (r *Result) AppendBatch(b *storage.Batch) {
	for c, v := range b.Cols {
		v = v.Decode()
		dst := r.Cols[c]
		switch {
		case dst.Type == storage.TFloat:
			dst.F = append(dst.F, asFloats(v)...)
		case dst.Type == storage.TStr:
			dst.S = append(dst.S, v.S...)
		default:
			dst.I = append(dst.I, v.I...)
		}
		if v.Null != nil {
			for len(dst.Null) < r.N {
				dst.Null = append(dst.Null, false)
			}
			dst.Null = append(dst.Null, v.Null...)
		} else if dst.Null != nil {
			for i := 0; i < b.N; i++ {
				dst.Null = append(dst.Null, false)
			}
		}
	}
	r.N += b.N
}

// AppendRow adds one row of scalars.
func (r *Result) AppendRow(vals []storage.Value) {
	for c, v := range vals {
		r.Cols[c].Append(coerce(v, r.Schema[c].Type))
	}
	r.N++
}

// Value returns the scalar at row i, column c.
func (r *Result) Value(i, c int) storage.Value { return r.Cols[c].Value(i) }

// Row returns row i as scalars.
func (r *Result) Row(i int) []storage.Value {
	out := make([]storage.Value, len(r.Cols))
	for c := range r.Cols {
		out[c] = r.Cols[c].Value(i)
	}
	return out
}

// Truncate keeps only the first n rows.
func (r *Result) Truncate(n int) {
	if n >= r.N {
		return
	}
	for c, v := range r.Cols {
		r.Cols[c] = v.Slice(0, n)
	}
	r.N = n
}

// ColumnIndex locates a schema column by name (case-insensitive), or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Schema {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// SizeBytes estimates the in-memory footprint, used by cache admission and
// eviction policies.
func (r *Result) SizeBytes() int64 {
	var total int64
	for _, v := range r.Cols {
		switch {
		case v.Type == storage.TFloat:
			total += int64(len(v.F) * 8)
		case v.Type == storage.TStr:
			for _, s := range v.S {
				total += int64(len(s) + 16)
			}
		default:
			total += int64(len(v.I) * 8)
		}
		total += int64(len(v.Null))
	}
	return total
}

// String renders the result as an aligned text table for examples and
// debugging.
func (r *Result) String() string {
	headers := make([]string, len(r.Schema))
	widths := make([]int, len(r.Schema))
	for i, c := range r.Schema {
		headers[i] = c.Name
		widths[i] = len(c.Name)
	}
	rows := make([][]string, r.N)
	for i := 0; i < r.N; i++ {
		row := make([]string, len(r.Cols))
		for c := range r.Cols {
			row[c] = r.Value(i, c).String()
			if len(row[c]) > widths[c] {
				widths[c] = len(row[c])
			}
		}
		rows[i] = row
	}
	var b strings.Builder
	for i, h := range headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteString("\n")
	for _, row := range rows {
		for c, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[c], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
