package exec

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

func mkTable(t testing.TB, name string, cols map[string][]storage.Value, order []string) *storage.Table {
	t.Helper()
	var built []*storage.Column
	for _, n := range order {
		coll := storage.CollBinary
		typ := storage.TInt
		for _, v := range cols[n] {
			if !v.Null {
				typ = v.Type
				break
			}
		}
		c, err := storage.BuildColumn(n, typ, coll, cols[n], storage.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		built = append(built, c)
	}
	tbl, err := storage.NewTable("Extract", name, built)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func iv(xs ...int64) []storage.Value {
	out := make([]storage.Value, len(xs))
	for i, x := range xs {
		out[i] = storage.IntValue(x)
	}
	return out
}

func sv(xs ...string) []storage.Value {
	out := make([]storage.Value, len(xs))
	for i, x := range xs {
		out[i] = storage.StrValue(x)
	}
	return out
}

func scanAll(tbl *storage.Table) *plan.Scan {
	idxs := make([]int, len(tbl.Cols))
	for i := range idxs {
		idxs[i] = i
	}
	return &plan.Scan{Table: tbl, ColIdxs: idxs}
}

// ---- expression evaluation ----

func evalOn(t *testing.T, tbl *storage.Table, e plan.Expr) *storage.Vector {
	t.Helper()
	cols := make([]*storage.Vector, len(tbl.Cols))
	for i, c := range tbl.Cols {
		cols[i] = c.ScanRange(0, int(tbl.Rows))
	}
	v, err := EvalExpr(e, storage.NewBatch(cols))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEvalNullPropagation(t *testing.T) {
	tbl := mkTable(t, "t", map[string][]storage.Value{
		"a": {storage.IntValue(1), storage.NullValue(storage.TInt), storage.IntValue(3)},
	}, []string{"a"})
	a := &plan.ColRef{Name: "a", Idx: 0, Typ: storage.TInt}
	// Comparison with null is null.
	v := evalOn(t, tbl, &plan.Cmp{Op: plan.CmpGt, L: a, R: &plan.Lit{Val: storage.IntValue(0)}})
	if !v.IsNull(1) || v.IsNull(0) {
		t.Error("null comparison semantics wrong")
	}
	// Arithmetic with null is null.
	v = evalOn(t, tbl, &plan.Arith{Op: plan.ArithAdd, L: a, R: a, Typ: storage.TInt})
	if !v.IsNull(1) || v.I[0] != 2 {
		t.Error("null arithmetic semantics wrong")
	}
	// isnull / isnotnull.
	v = evalOn(t, tbl, &plan.IsNull{E: a})
	if v.I[0] != 0 || v.I[1] != 1 {
		t.Error("isnull wrong")
	}
	// Division by zero yields null.
	v = evalOn(t, tbl, &plan.Arith{Op: plan.ArithDiv, L: a, R: &plan.Lit{Val: storage.IntValue(0)}, Typ: storage.TFloat})
	if !v.IsNull(0) {
		t.Error("division by zero should be null")
	}
}

func TestEvalDictFastPaths(t *testing.T) {
	tbl := mkTable(t, "t", map[string][]storage.Value{
		"s": sv("bb", "aa", "cc", "bb", "dd"),
	}, []string{"s"})
	if tbl.Cols[0].Dict == nil {
		t.Fatal("expected dictionary column")
	}
	s := &plan.ColRef{Name: "s", Idx: 0, Typ: storage.TStr}
	cases := []struct {
		op   plan.CmpOp
		arg  string
		want []int64
	}{
		{plan.CmpEq, "bb", []int64{1, 0, 0, 1, 0}},
		{plan.CmpNe, "bb", []int64{0, 1, 1, 0, 1}},
		{plan.CmpLt, "bb", []int64{0, 1, 0, 0, 0}},
		{plan.CmpLe, "bb", []int64{1, 1, 0, 1, 0}},
		{plan.CmpGt, "bb", []int64{0, 0, 1, 0, 1}},
		{plan.CmpGe, "bb", []int64{1, 0, 1, 1, 1}},
		{plan.CmpEq, "zz", []int64{0, 0, 0, 0, 0}}, // absent value
		{plan.CmpNe, "zz", []int64{1, 1, 1, 1, 1}},
	}
	for _, c := range cases {
		v := evalOn(t, tbl, &plan.Cmp{Op: c.op, L: s, R: &plan.Lit{Val: storage.StrValue(c.arg)}})
		for i, want := range c.want {
			if v.I[i] != want {
				t.Errorf("%v %q row %d = %d, want %d", c.op, c.arg, i, v.I[i], want)
			}
		}
	}
	// Flipped: literal on the left.
	v := evalOn(t, tbl, &plan.Cmp{Op: plan.CmpLt, L: &plan.Lit{Val: storage.StrValue("bb")}, R: s})
	want := []int64{0, 0, 1, 0, 1} // "bb" < s
	for i := range want {
		if v.I[i] != want[i] {
			t.Errorf("flipped row %d = %d, want %d", i, v.I[i], want[i])
		}
	}
	// In-list over tokens.
	v = evalOn(t, tbl, &plan.InList{E: s, Vals: sv("aa", "dd", "zz")})
	wantIn := []int64{0, 1, 0, 0, 1}
	for i := range wantIn {
		if v.I[i] != wantIn[i] {
			t.Errorf("in row %d = %d", i, v.I[i])
		}
	}
}

// Property: dictionary token comparison equals decoded string comparison.
func TestDictCmpMatchesDecodedQuick(t *testing.T) {
	f := func(raw []uint8, probe uint8) bool {
		if len(raw) == 0 {
			return true
		}
		words := []string{"alpha", "beta", "gamma", "delta", "eps"}
		vals := make([]storage.Value, len(raw))
		for i, r := range raw {
			vals[i] = storage.StrValue(words[int(r)%len(words)])
		}
		col, err := storage.BuildColumn("s", storage.TStr, storage.CollBinary, vals, storage.BuildOptions{})
		if err != nil || col.Dict == nil {
			return err == nil // tiny inputs may skip dict; fine
		}
		probeWord := words[int(probe)%len(words)]
		vec := col.ScanRange(0, len(vals))
		e := &plan.Cmp{Op: plan.CmpLe,
			L: &plan.ColRef{Name: "s", Idx: 0, Typ: storage.TStr},
			R: &plan.Lit{Val: storage.StrValue(probeWord)}}
		got, err := EvalExpr(e, storage.NewBatch([]*storage.Vector{vec}))
		if err != nil {
			return false
		}
		for i, v := range vals {
			want := int64(0)
			if v.S <= probeWord {
				want = 1
			}
			if got.I[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// ---- operators ----

func TestLimitOperator(t *testing.T) {
	tbl := mkTable(t, "t", map[string][]storage.Value{"a": iv(1, 2, 3, 4, 5)}, []string{"a"})
	n := &plan.Limit{Child: scanAll(tbl), N: 3}
	res, err := Run(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 || res.Value(2, 0).I != 3 {
		t.Errorf("limit result: %v", res)
	}
	// Limit larger than input.
	n = &plan.Limit{Child: scanAll(tbl), N: 100}
	res, _ = Run(context.Background(), n)
	if res.N != 5 {
		t.Errorf("over-limit = %d", res.N)
	}
}

func TestSortStability(t *testing.T) {
	tbl := mkTable(t, "t", map[string][]storage.Value{
		"k": iv(2, 1, 2, 1),
		"v": iv(10, 20, 30, 40),
	}, []string{"k", "v"})
	n := &plan.Sort{Child: scanAll(tbl), Keys: []plan.SortKey{{Col: 0}}}
	res, err := Run(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	// Stable: within k=1, original order 20 then 40.
	if res.Value(0, 1).I != 20 || res.Value(1, 1).I != 40 {
		t.Errorf("sort not stable: %v", res)
	}
}

func TestExchangeMergesAllInputs(t *testing.T) {
	tbl := mkTable(t, "t", map[string][]storage.Value{"a": iv(1, 2, 3, 4, 5, 6, 7, 8)}, []string{"a"})
	inputs := make([]plan.Node, 4)
	for i := range inputs {
		s := scanAll(tbl)
		s.Part = plan.Partition{Index: i, Count: 4}
		inputs[i] = s
	}
	res, err := Run(context.Background(), &plan.Exchange{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 8 {
		t.Fatalf("exchange lost rows: %d", res.N)
	}
	sum := int64(0)
	for i := 0; i < res.N; i++ {
		sum += res.Value(i, 0).I
	}
	if sum != 36 {
		t.Errorf("sum = %d", sum)
	}
}

func TestExchangeCancellation(t *testing.T) {
	big := make([]storage.Value, 100_000)
	for i := range big {
		big[i] = storage.IntValue(int64(i))
	}
	tbl := mkTable(t, "t", map[string][]storage.Value{"a": big}, []string{"a"})
	ctx, cancel := context.WithCancel(context.Background())
	inputs := make([]plan.Node, 2)
	for i := range inputs {
		s := scanAll(tbl)
		s.Part = plan.Partition{Index: i, Count: 2}
		inputs[i] = s
	}
	op, err := Build(ctx, &plan.Exchange{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	var lastErr error
	for i := 0; i < 1000; i++ {
		b, err := op.Next()
		if err != nil {
			lastErr = err
			break
		}
		if b == nil {
			break
		}
	}
	op.Close()
	if lastErr != nil && !errors.Is(lastErr, context.Canceled) {
		t.Errorf("unexpected error %v", lastErr)
	}
}

func TestScanRowRanges(t *testing.T) {
	tbl := mkTable(t, "t", map[string][]storage.Value{"a": iv(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)}, []string{"a"})
	s := scanAll(tbl)
	s.Ranges = []plan.RowRange{{From: 2, To: 4}, {From: 7, To: 9}}
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 4 {
		t.Fatalf("range scan rows = %d", res.N)
	}
	want := []int64{2, 3, 7, 8}
	for i, w := range want {
		if res.Value(i, 0).I != w {
			t.Errorf("row %d = %d, want %d", i, res.Value(i, 0).I, w)
		}
	}
}

func TestPartitionRangesCoverAll(t *testing.T) {
	// Property: partitions of any range set are disjoint and cover all rows.
	f := func(total uint16, parts uint8) bool {
		n := int64(total%5000) + 1
		p := int(parts%7) + 1
		base := []plan.RowRange{{From: 0, To: n}}
		var covered int64
		var prevEnd int64 = -1
		for i := 0; i < p; i++ {
			for _, r := range partitionRanges(base, plan.Partition{Index: i, Count: p}) {
				if r.From < prevEnd {
					return false // overlap
				}
				covered += r.To - r.From
				prevEnd = r.To
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGrandAggregateOnEmptyInput(t *testing.T) {
	tbl := mkTable(t, "t", map[string][]storage.Value{"a": iv(1, 2, 3)}, []string{"a"})
	filt := &plan.Filter{Child: scanAll(tbl), Pred: &plan.Lit{Val: storage.BoolValue(false)}}
	agg := &plan.Aggregate{Child: filt, Aggs: []plan.AggSpec{
		{Fn: plan.AggCount, ArgIdx: -1, Name: "n"},
		{Fn: plan.AggSum, ArgIdx: 0, Name: "s"},
	}}
	res, err := Run(context.Background(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 {
		t.Fatalf("grand aggregate over empty input must emit one row, got %d", res.N)
	}
	if res.Value(0, 0).I != 0 {
		t.Errorf("count = %v", res.Value(0, 0))
	}
	if !res.Value(0, 1).Null {
		t.Errorf("sum of nothing should be null, got %v", res.Value(0, 1))
	}
	// Group-by over empty input emits nothing.
	agg2 := &plan.Aggregate{Child: filt, GroupBy: []int{0},
		Aggs: []plan.AggSpec{{Fn: plan.AggCount, ArgIdx: -1, Name: "n"}}}
	res, err = Run(context.Background(), agg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 0 {
		t.Errorf("grouped aggregate over empty input = %d rows", res.N)
	}
}

func TestStreamingVsHashAggEquivalence(t *testing.T) {
	// Sorted input: both implementations must agree.
	vals := make([]storage.Value, 1000)
	other := make([]storage.Value, 1000)
	for i := range vals {
		vals[i] = storage.IntValue(int64(i / 37))
		other[i] = storage.IntValue(int64(i % 11))
	}
	tbl := mkTable(t, "t", map[string][]storage.Value{"k": vals, "v": other}, []string{"k", "v"})
	mk := func(streaming bool) *Result {
		agg := &plan.Aggregate{Child: scanAll(tbl), GroupBy: []int{0},
			Aggs: []plan.AggSpec{
				{Fn: plan.AggCount, ArgIdx: -1, Name: "n"},
				{Fn: plan.AggSum, ArgIdx: 1, Name: "s"},
				{Fn: plan.AggMin, ArgIdx: 1, Name: "mn"},
				{Fn: plan.AggMax, ArgIdx: 1, Name: "mx"},
				{Fn: plan.AggCountD, ArgIdx: 1, Name: "d"},
			},
			Streaming: streaming}
		res, err := Run(context.Background(), agg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	h, s := mk(false), mk(true)
	if h.N != s.N {
		t.Fatalf("row counts differ: %d vs %d", h.N, s.N)
	}
	hMap := map[int64][]storage.Value{}
	for i := 0; i < h.N; i++ {
		hMap[h.Value(i, 0).I] = h.Row(i)
	}
	for i := 0; i < s.N; i++ {
		k := s.Value(i, 0).I
		want := hMap[k]
		for c := range want {
			if storage.Compare(s.Value(i, c), want[c], storage.CollBinary) != 0 {
				t.Fatalf("group %d col %d: %v vs %v", k, c, s.Value(i, c), want[c])
			}
		}
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	left := mkTable(t, "l", map[string][]storage.Value{
		"k": {storage.IntValue(1), storage.NullValue(storage.TInt), storage.IntValue(2)},
	}, []string{"k"})
	right := mkTable(t, "r", map[string][]storage.Value{
		"k": {storage.IntValue(1), storage.NullValue(storage.TInt)},
		"v": iv(100, 200),
	}, []string{"k", "v"})
	j := &plan.Join{Left: scanAll(left), Right: scanAll(right), LKeys: []int{0}, RKeys: []int{0}}
	res, err := Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 || res.Value(0, 2).I != 100 {
		t.Errorf("inner join with nulls: %d rows", res.N)
	}
	// Left join keeps the null-key row with null right side.
	lj := &plan.Join{Left: scanAll(left), Right: scanAll(right), Kind: plan.JoinLeft, LKeys: []int{0}, RKeys: []int{0}}
	res, err = Run(context.Background(), lj)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 {
		t.Fatalf("left join rows = %d", res.N)
	}
	nulls := 0
	for i := 0; i < res.N; i++ {
		if res.Value(i, 2).Null {
			nulls++
		}
	}
	if nulls != 2 {
		t.Errorf("null-extended rows = %d, want 2", nulls)
	}
}

func TestResultHelpers(t *testing.T) {
	res := NewResult([]plan.ColInfo{{Name: "a", Type: storage.TInt}, {Name: "b", Type: storage.TStr}})
	res.AppendRow([]storage.Value{storage.IntValue(1), storage.StrValue("x")})
	res.AppendRow([]storage.Value{storage.IntValue(2), storage.NullValue(storage.TStr)})
	if res.ColumnIndex("B") != 1 || res.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if res.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	out := res.String()
	if out == "" || len(out) < 10 {
		t.Error("String render empty")
	}
	res.Truncate(1)
	if res.N != 1 {
		t.Error("truncate failed")
	}
}
