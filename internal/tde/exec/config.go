package exec

import (
	"context"
	"time"
)

// Config carries execution-environment knobs through the operator tree.
type Config struct {
	// ScanBatchDelay simulates block-read latency: each scan batch sleeps
	// this long before being returned. The real TDE's scans are disk-bound;
	// on an in-memory substrate (and on single-core CI hosts) this restores
	// the I/O-overlap behaviour that makes parallel scans, range skipping
	// and shared scans worthwhile. Zero (the default) disables it.
	ScanBatchDelay time.Duration
}

type configKey struct{}

// WithConfig attaches an execution config to the context.
func WithConfig(ctx context.Context, cfg Config) context.Context {
	return context.WithValue(ctx, configKey{}, cfg)
}

// ConfigFrom extracts the execution config (zero value when absent).
func ConfigFrom(ctx context.Context) Config {
	if cfg, ok := ctx.Value(configKey{}).(Config); ok {
		return cfg
	}
	return Config{}
}
