package exec

import (
	"context"
	"sync"
	"testing"

	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

func TestRepartitionCoversAndSeparates(t *testing.T) {
	// 2 inputs (table fractions) -> 3 outputs hash-partitioned on the key.
	n := 5000
	keys := make([]storage.Value, n)
	vals := make([]storage.Value, n)
	for i := 0; i < n; i++ {
		keys[i] = storage.IntValue(int64(i % 97))
		vals[i] = storage.IntValue(int64(i))
	}
	tbl := mkTable(t, "t", map[string][]storage.Value{"k": keys, "v": vals}, []string{"k", "v"})
	schema := scanAll(tbl).Schema()

	ctx := context.Background()
	inputs := make([]Operator, 2)
	for i := range inputs {
		s := scanAll(tbl)
		s.Part = plan.Partition{Index: i, Count: 2}
		inputs[i] = newScanOp(ctx, s)
	}
	const m = 3
	outs := NewRepartition(ctx, inputs, m, []int{0}, schema)

	type part struct {
		rows int
		keys map[int64]bool
		sum  int64
	}
	parts := make([]part, m)
	var wg sync.WaitGroup
	errs := make([]error, m)
	for p := range outs {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer outs[p].Close()
			parts[p].keys = map[int64]bool{}
			for {
				b, err := outs[p].Next()
				if err != nil {
					errs[p] = err
					return
				}
				if b == nil {
					return
				}
				for i := 0; i < b.N; i++ {
					parts[p].rows++
					parts[p].keys[b.Cols[0].Value(i).I] = true
					parts[p].sum += b.Cols[1].Value(i).I
				}
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("partition %d: %v", p, err)
		}
	}

	total, sum := 0, int64(0)
	for _, p := range parts {
		total += p.rows
		sum += p.sum
	}
	if total != n {
		t.Fatalf("rows lost: %d/%d", total, n)
	}
	if want := int64(n) * int64(n-1) / 2; sum != want {
		t.Fatalf("value sum = %d, want %d", sum, want)
	}
	// Disjoint key ownership: each key value lands in exactly one partition.
	owner := map[int64]int{}
	for pi, p := range parts {
		for k := range p.keys {
			if prev, ok := owner[k]; ok && prev != pi {
				t.Fatalf("key %d appears in partitions %d and %d", k, prev, pi)
			}
			owner[k] = pi
		}
	}
	if len(owner) != 97 {
		t.Errorf("distinct keys = %d", len(owner))
	}
	// Reasonable balance: no partition owns everything.
	for pi, p := range parts {
		if p.rows == 0 || p.rows == n {
			t.Errorf("partition %d degenerate with %d rows", pi, p.rows)
		}
	}
}

func TestRepartitionEarlyClose(t *testing.T) {
	big := make([]storage.Value, 50_000)
	for i := range big {
		big[i] = storage.IntValue(int64(i))
	}
	tbl := mkTable(t, "t", map[string][]storage.Value{"k": big}, []string{"k"})
	ctx := context.Background()
	outs := NewRepartition(ctx, []Operator{newScanOp(ctx, scanAll(tbl))}, 2, []int{0}, scanAll(tbl).Schema())
	// Read one batch from output 0 then close everything; must not deadlock.
	if _, err := outs[0].Next(); err != nil {
		t.Fatal(err)
	}
	outs[0].Close()
	outs[1].Close()
}
