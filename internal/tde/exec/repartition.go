package exec

import (
	"context"
	"hash/fnv"
	"sync"

	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// NewRepartition builds the N-input M-output form of the Exchange operator
// (Sect. 4.2.1: the TDE's Exchange "is able to take N inputs and produce M
// outputs" and "has a capability to repartition the data"). Rows from the
// inputs are hash-partitioned on hashCols: every row with equal key values
// lands on the same output, the precondition for partitioned joins and
// aggregations. The Tableau 9.0 optimizer does not yet emit this form
// (Sect. 4.2.2 limits plans to N inputs / one output); it is provided as the
// operator capability the paper describes, for the planned repartitioning
// explorations.
//
// All M returned operators must be consumed (concurrently or until EOF) and
// each must be Closed.
func NewRepartition(ctx context.Context, inputs []Operator, m int, hashCols []int, schema []plan.ColInfo) []Operator {
	cctx, cancel := context.WithCancel(ctx)
	st := &repartitionState{
		cancel: cancel,
		outs:   make([]chan exchResult, m),
	}
	for i := range st.outs {
		st.outs[i] = make(chan exchResult, 2)
	}

	var wg sync.WaitGroup
	for _, in := range inputs {
		wg.Add(1)
		go func(op Operator) {
			defer wg.Done()
			route(cctx, op, st.outs, hashCols, schema, m)
		}(in)
	}
	go func() {
		wg.Wait()
		for _, ch := range st.outs {
			close(ch)
		}
		for _, in := range inputs {
			in.Close()
		}
	}()

	outs := make([]Operator, m)
	for i := 0; i < m; i++ {
		outs[i] = &repartitionOut{ctx: cctx, state: st, ch: st.outs[i]}
	}
	return outs
}

type repartitionState struct {
	cancel context.CancelFunc
	outs   []chan exchResult

	mu     sync.Mutex
	closed int
}

// outClosed cancels the router group once every output has been closed.
func (st *repartitionState) outClosed() {
	st.mu.Lock()
	st.closed++
	done := st.closed >= len(st.outs)
	st.mu.Unlock()
	if done {
		st.cancel()
	}
}

// route pulls batches from one input and scatters its rows to the output
// partitions.
func route(ctx context.Context, op Operator, outs []chan exchResult, hashCols []int, schema []plan.ColInfo, m int) {
	var keyBuf []byte
	for {
		b, err := op.Next()
		if err != nil {
			for _, ch := range outs {
				select {
				case ch <- exchResult{err: err}:
				case <-ctx.Done():
				}
			}
			return
		}
		if b == nil {
			return
		}
		// Partition the batch rows by hash of the key columns.
		idxs := make([][]int32, m)
		for i := 0; i < b.N; i++ {
			keyBuf = keyBuf[:0]
			for _, c := range hashCols {
				keyBuf = encodeValue(keyBuf, b.Cols[c].Value(i), schema[c].Coll)
			}
			h := fnv.New32a()
			h.Write(keyBuf)
			p := int(h.Sum32()) % m
			if p < 0 {
				p += m
			}
			idxs[p] = append(idxs[p], int32(i))
		}
		for p, rows := range idxs {
			if len(rows) == 0 {
				continue
			}
			cols := make([]*storage.Vector, len(b.Cols))
			for c, v := range b.Cols {
				cols[c] = v.Gather(rows)
			}
			select {
			case outs[p] <- exchResult{batch: storage.NewBatch(cols)}:
			case <-ctx.Done():
				return
			}
		}
	}
}

type repartitionOut struct {
	ctx       context.Context
	state     *repartitionState
	ch        chan exchResult
	closeOnce sync.Once
}

func (r *repartitionOut) Next() (*storage.Batch, error) {
	select {
	case res, ok := <-r.ch:
		if !ok {
			return nil, nil
		}
		if res.err != nil {
			return nil, res.err
		}
		return res.batch, nil
	case <-r.ctx.Done():
		return nil, r.ctx.Err()
	}
}

func (r *repartitionOut) Close() {
	// The router group is cancelled once every output has been closed;
	// inputs are closed by the router's completion goroutine. A closed
	// output also drains its channel so routers never block on it.
	r.closeOnce.Do(func() {
		go func() {
			for range r.ch {
			}
		}()
		r.state.outClosed()
	})
}
