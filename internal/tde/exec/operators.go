package exec

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"vizq/internal/obs"
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// Executor metrics, shared process-wide.
var (
	mExchDOP  = obs.H("exec.exchange.dop")
	mScanRows = obs.H("exec.scan.batch_rows")
)

// Operator is a Volcano iterator producing row batches. Next returns nil at
// end of stream. Close releases resources and must be called exactly once.
type Operator interface {
	Next() (*storage.Batch, error)
	Close()
}

// Build compiles a plan tree into an operator tree.
func Build(ctx context.Context, n plan.Node) (Operator, error) {
	b := &builder{ctx: ctx, shared: map[*plan.Shared]*sharedState{}}
	return b.build(n)
}

// Run executes a plan and materializes its full result.
func Run(ctx context.Context, n plan.Node) (*Result, error) {
	op, err := Build(ctx, n)
	if err != nil {
		return nil, err
	}
	defer op.Close()
	return Collect(op, n.Schema())
}

// Collect drains an operator into a Result.
func Collect(op Operator, schema []plan.ColInfo) (*Result, error) {
	res := NewResult(schema)
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return res, nil
		}
		res.AppendBatch(b)
	}
}

type builder struct {
	ctx    context.Context
	shared map[*plan.Shared]*sharedState
}

func (bd *builder) build(n plan.Node) (Operator, error) {
	switch x := n.(type) {
	case *plan.Scan:
		return newScanOp(bd.ctx, x), nil
	case *plan.Filter:
		child, err := bd.build(x.Child)
		if err != nil {
			return nil, err
		}
		return &filterOp{child: child, pred: x.Pred}, nil
	case *plan.Project:
		child, err := bd.build(x.Child)
		if err != nil {
			return nil, err
		}
		return &projectOp{child: child, exprs: x.Exprs}, nil
	case *plan.Join:
		left, err := bd.build(x.Left)
		if err != nil {
			return nil, err
		}
		right, err := bd.build(x.Right)
		if err != nil {
			left.Close()
			return nil, err
		}
		return &hashJoinOp{
			node: x, left: left, right: right,
			lSchema: x.Left.Schema(), rSchema: x.Right.Schema(),
		}, nil
	case *plan.Aggregate:
		child, err := bd.build(x.Child)
		if err != nil {
			return nil, err
		}
		common := aggCommon{node: x, schema: x.Child.Schema()}
		if x.Streaming {
			return &streamAggOp{aggCommon: common, child: child}, nil
		}
		return &hashAggOp{aggCommon: common, child: child}, nil
	case *plan.Sort:
		child, err := bd.build(x.Child)
		if err != nil {
			return nil, err
		}
		return &sortOp{child: child, keys: x.Keys, schema: x.Child.Schema()}, nil
	case *plan.TopN:
		child, err := bd.build(x.Child)
		if err != nil {
			return nil, err
		}
		return &topNOp{child: child, n: x.N, keys: x.Keys, schema: x.Child.Schema()}, nil
	case *plan.Limit:
		child, err := bd.build(x.Child)
		if err != nil {
			return nil, err
		}
		return &limitOp{child: child, remain: x.N}, nil
	case *plan.Exchange:
		ops := make([]Operator, len(x.Inputs))
		for i, in := range x.Inputs {
			op, err := bd.build(in)
			if err != nil {
				for _, o := range ops[:i] {
					o.Close()
				}
				return nil, err
			}
			ops[i] = op
		}
		if len(x.MergeKeys) > 0 {
			return newMergeExchangeOp(bd.ctx, ops, x.MergeKeys, x.Schema()), nil
		}
		return newExchangeOp(bd.ctx, ops), nil
	case *plan.Shared:
		st := bd.shared[x]
		if st == nil {
			st = &sharedState{}
			bd.shared[x] = st
		}
		return &sharedOp{ctx: bd.ctx, node: x, state: st, builder: bd}, nil
	}
	return nil, fmt.Errorf("exec: no operator for %T", n)
}

// ---- scan ----

type scanOp struct {
	ctx     context.Context
	node    *plan.Scan
	ranges  []plan.RowRange
	ri      int   // current range
	pos     int64 // next row within current range
	ioDelay time.Duration
}

func newScanOp(ctx context.Context, s *plan.Scan) *scanOp {
	rows := s.Table.Rows
	ranges := s.Ranges
	if ranges == nil {
		ranges = []plan.RowRange{{From: 0, To: rows}}
	}
	if s.Part.Count > 1 {
		ranges = partitionRanges(ranges, s.Part)
	}
	op := &scanOp{ctx: ctx, node: s, ranges: ranges, ioDelay: ConfigFrom(ctx).ScanBatchDelay}
	if len(ranges) > 0 {
		op.pos = ranges[0].From
	}
	return op
}

// partitionRanges splits the scan's row ranges into Count fractions and
// returns the slice owned by fraction Index, splitting by total row volume.
func partitionRanges(ranges []plan.RowRange, p plan.Partition) []plan.RowRange {
	var total int64
	for _, r := range ranges {
		total += r.To - r.From
	}
	lo := total * int64(p.Index) / int64(p.Count)
	hi := total * int64(p.Index+1) / int64(p.Count)
	var out []plan.RowRange
	var off int64
	for _, r := range ranges {
		n := r.To - r.From
		start, end := off, off+n
		from, to := maxI64(lo, start), minI64(hi, end)
		if from < to {
			out = append(out, plan.RowRange{From: r.From + from - start, To: r.From + to - start})
		}
		off = end
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (s *scanOp) Next() (*storage.Batch, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	for s.ri < len(s.ranges) {
		r := s.ranges[s.ri]
		if s.pos >= r.To {
			s.ri++
			if s.ri < len(s.ranges) {
				s.pos = s.ranges[s.ri].From
			}
			continue
		}
		to := s.pos + storage.BatchSize
		if to > r.To {
			to = r.To
		}
		if s.ioDelay > 0 {
			time.Sleep(s.ioDelay) //vizlint:allow sleep -- simulated block read (see Config)
		}
		cols := make([]*storage.Vector, len(s.node.ColIdxs))
		for i, ci := range s.node.ColIdxs {
			cols[i] = s.node.Table.Cols[ci].ScanRange(int(s.pos), int(to))
		}
		s.pos = to
		b := storage.NewBatch(cols)
		mScanRows.Observe(int64(b.N))
		return b, nil
	}
	return nil, nil
}

func (s *scanOp) Close() {}

// ---- filter ----

type filterOp struct {
	child Operator
	pred  plan.Expr
}

func (f *filterOp) Next() (*storage.Batch, error) {
	for {
		b, err := f.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		keep, err := EvalExpr(f.pred, b)
		if err != nil {
			return nil, err
		}
		idx := make([]int32, 0, b.N)
		for i := 0; i < b.N; i++ {
			if keep.I[i] != 0 && !keep.IsNull(i) {
				idx = append(idx, int32(i))
			}
		}
		if len(idx) == 0 {
			continue
		}
		if len(idx) == b.N {
			return b, nil
		}
		cols := make([]*storage.Vector, len(b.Cols))
		for c, v := range b.Cols {
			cols[c] = v.Gather(idx)
		}
		return storage.NewBatch(cols), nil
	}
}

func (f *filterOp) Close() { f.child.Close() }

// ---- project ----

type projectOp struct {
	child Operator
	exprs []plan.Expr
}

func (p *projectOp) Next() (*storage.Batch, error) {
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	cols := make([]*storage.Vector, len(p.exprs))
	for i, e := range p.exprs {
		v, err := EvalExpr(e, b)
		if err != nil {
			return nil, err
		}
		cols[i] = v
	}
	return storage.NewBatch(cols), nil
}

func (p *projectOp) Close() { p.child.Close() }

// ---- limit ----

type limitOp struct {
	child  Operator
	remain int
}

func (l *limitOp) Next() (*storage.Batch, error) {
	if l.remain <= 0 {
		return nil, nil
	}
	b, err := l.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if b.N > l.remain {
		cols := make([]*storage.Vector, len(b.Cols))
		for i, v := range b.Cols {
			cols[i] = v.Slice(0, l.remain)
		}
		b = storage.NewBatch(cols)
	}
	l.remain -= b.N
	return b, nil
}

func (l *limitOp) Close() { l.child.Close() }

// ---- exchange ----

type exchResult struct {
	batch *storage.Batch
	err   error
}

// exchangeOp merges N child streams into one. Each child runs in its own
// goroutine; output order across children is arbitrary (the Tableau 9.0
// Exchange is not order-preserving).
type exchangeOp struct {
	cancel  context.CancelFunc
	ch      chan exchResult
	wg      sync.WaitGroup
	started bool
	childs  []Operator
	ctx     context.Context
}

func newExchangeOp(ctx context.Context, childs []Operator) *exchangeOp {
	mExchDOP.Observe(int64(len(childs)))
	cctx, cancel := context.WithCancel(ctx)
	return &exchangeOp{ctx: cctx, cancel: cancel, childs: childs,
		ch: make(chan exchResult, len(childs))}
}

func (e *exchangeOp) start() {
	e.started = true
	for _, c := range e.childs {
		e.wg.Add(1)
		go func(op Operator) {
			defer e.wg.Done()
			for {
				b, err := op.Next()
				if err != nil {
					select {
					case e.ch <- exchResult{err: err}:
					case <-e.ctx.Done():
					}
					return
				}
				if b == nil {
					return
				}
				select {
				case e.ch <- exchResult{batch: b}:
				case <-e.ctx.Done():
					return
				}
			}
		}(c)
	}
	go func() {
		e.wg.Wait()
		close(e.ch)
	}()
}

func (e *exchangeOp) Next() (*storage.Batch, error) {
	if !e.started {
		e.start()
	}
	select {
	case r, ok := <-e.ch:
		if !ok {
			return nil, nil
		}
		if r.err != nil {
			return nil, r.err
		}
		return r.batch, nil
	case <-e.ctx.Done():
		return nil, e.ctx.Err()
	}
}

func (e *exchangeOp) Close() {
	e.cancel()
	if e.started {
		e.wg.Wait()
	}
	for _, c := range e.childs {
		c.Close()
	}
}

// ---- shared table ----

// sharedState materializes a subtree once and serves it to every referencing
// clone (SharedTable, Sect. 4.2.1: "share access to a table across multiple
// threads and handle synchronization").
type sharedState struct {
	once sync.Once
	res  *Result
	err  error
}

type sharedOp struct {
	ctx     context.Context
	node    *plan.Shared
	state   *sharedState
	builder *builder
	pos     int
}

func (s *sharedOp) materialize() {
	// Build a private operator tree for the shared child; only one clone's
	// goroutine executes this (sync.Once).
	op, err := Build(s.ctx, s.node.Child)
	if err != nil {
		s.state.err = err
		return
	}
	defer op.Close()
	s.state.res, s.state.err = Collect(op, s.node.Child.Schema())
}

func (s *sharedOp) Next() (*storage.Batch, error) {
	s.state.once.Do(s.materialize)
	if s.state.err != nil {
		return nil, s.state.err
	}
	res := s.state.res
	if s.pos >= res.N {
		return nil, nil
	}
	to := s.pos + storage.BatchSize
	if to > res.N {
		to = res.N
	}
	cols := make([]*storage.Vector, len(res.Cols))
	for i, v := range res.Cols {
		cols[i] = v.Slice(s.pos, to)
	}
	s.pos = to
	return storage.NewBatch(cols), nil
}

func (s *sharedOp) Close() {}

// ---- sort ----

type sortOp struct {
	child  Operator
	keys   []plan.SortKey
	schema []plan.ColInfo
	out    *Result
	pos    int
	done   bool
}

func (s *sortOp) Next() (*storage.Batch, error) {
	if !s.done {
		res, err := Collect(s.child, s.schema)
		if err != nil {
			return nil, err
		}
		sortResult(res, s.keys, s.schema)
		s.out = res
		s.done = true
	}
	if s.pos >= s.out.N {
		return nil, nil
	}
	to := s.pos + storage.BatchSize
	if to > s.out.N {
		to = s.out.N
	}
	cols := make([]*storage.Vector, len(s.out.Cols))
	for i, v := range s.out.Cols {
		cols[i] = v.Slice(s.pos, to)
	}
	s.pos = to
	return storage.NewBatch(cols), nil
}

func (s *sortOp) Close() { s.child.Close() }

// sortResult orders the result rows in place by the sort keys.
func sortResult(res *Result, keys []plan.SortKey, schema []plan.ColInfo) {
	idx := make([]int32, res.N)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return compareRows(res, int(idx[a]), int(idx[b]), keys, schema) < 0
	})
	for c, v := range res.Cols {
		res.Cols[c] = v.Gather(idx)
	}
}

func compareRows(res *Result, a, b int, keys []plan.SortKey, schema []plan.ColInfo) int {
	for _, k := range keys {
		av, bv := res.Cols[k.Col].Value(a), res.Cols[k.Col].Value(b)
		c := storage.Compare(av, bv, schema[k.Col].Coll)
		if c != 0 {
			if k.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// ---- top-n ----

type topNOp struct {
	child  Operator
	n      int
	keys   []plan.SortKey
	schema []plan.ColInfo
	out    *Result
	pos    int
	done   bool
}

func (t *topNOp) Next() (*storage.Batch, error) {
	if !t.done {
		res, err := Collect(t.child, t.schema)
		if err != nil {
			return nil, err
		}
		sortResult(res, t.keys, t.schema)
		if res.N > t.n {
			res.Truncate(t.n)
		}
		t.out = res
		t.done = true
	}
	if t.pos >= t.out.N {
		return nil, nil
	}
	to := t.pos + storage.BatchSize
	if to > t.out.N {
		to = t.out.N
	}
	cols := make([]*storage.Vector, len(t.out.Cols))
	for i, v := range t.out.Cols {
		cols[i] = v.Slice(t.pos, to)
	}
	t.pos = to
	return storage.NewBatch(cols), nil
}

func (t *topNOp) Close() { t.child.Close() }
