package exec

import (
	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// hashJoinOp implements the TDE's equi-join: build a hash table from the
// right input (dimension side), probe with the left (fact side), as in
// Sect. 4.2.2. Null keys never match.
type hashJoinOp struct {
	node    *plan.Join
	left    Operator
	right   Operator
	lSchema []plan.ColInfo
	rSchema []plan.ColInfo

	built bool
	build *Result
	table map[string][]int32
}

// keyColl returns the collation used for join key k: case-insensitive wins
// when the two sides disagree, so both sides hash identically.
func (j *hashJoinOp) keyColl(k int) storage.Collation {
	l := j.lSchema[j.node.LKeys[k]].Coll
	r := j.rSchema[j.node.RKeys[k]].Coll
	if l == storage.CollCI || r == storage.CollCI {
		return storage.CollCI
	}
	return storage.CollBinary
}

func (j *hashJoinOp) buildSide() error {
	res, err := Collect(j.right, j.rSchema)
	if err != nil {
		return err
	}
	j.build = res
	j.table = make(map[string][]int32, res.N)
	var buf []byte
	for i := 0; i < res.N; i++ {
		buf = buf[:0]
		null := false
		for ki, k := range j.node.RKeys {
			v := res.Value(i, k)
			if v.Null {
				null = true
				break
			}
			buf = encodeValue(buf, promoteKey(v), j.keyColl(ki))
		}
		if null {
			continue
		}
		j.table[string(buf)] = append(j.table[string(buf)], int32(i))
	}
	j.built = true
	return nil
}

// promoteKey widens int-backed values to plain ints and keeps floats whole
// so keys hash consistently across mixed numeric types.
func promoteKey(v storage.Value) storage.Value {
	if v.Null {
		return v
	}
	switch {
	case v.Type == storage.TFloat:
		return v
	case v.Type.IntBacked():
		return storage.IntValue(v.I)
	}
	return v
}

func (j *hashJoinOp) Next() (*storage.Batch, error) {
	if !j.built {
		if err := j.buildSide(); err != nil {
			return nil, err
		}
	}
	for {
		b, err := j.left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		var lIdx, rIdx []int32
		var unmatched []int32
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			null := false
			for ki, k := range j.node.LKeys {
				v := b.Cols[k].Value(i)
				if v.Null {
					null = true
					break
				}
				buf = encodeValue(buf, promoteKey(v), j.keyColl(ki))
			}
			var matches []int32
			if !null {
				matches = j.table[string(buf)]
			}
			if len(matches) == 0 {
				if j.node.Kind == plan.JoinLeft {
					unmatched = append(unmatched, int32(i))
				}
				continue
			}
			for _, m := range matches {
				lIdx = append(lIdx, int32(i))
				rIdx = append(rIdx, m)
			}
		}
		if len(lIdx) == 0 && len(unmatched) == 0 {
			continue
		}
		out := j.assemble(b, lIdx, rIdx, unmatched)
		return out, nil
	}
}

func (j *hashJoinOp) assemble(b *storage.Batch, lIdx, rIdx, unmatched []int32) *storage.Batch {
	nOut := len(lIdx) + len(unmatched)
	cols := make([]*storage.Vector, 0, len(j.lSchema)+len(j.rSchema))

	// Left columns: matched rows then unmatched rows.
	allL := lIdx
	if len(unmatched) > 0 {
		allL = append(append([]int32{}, lIdx...), unmatched...)
	}
	for _, v := range b.Cols {
		cols = append(cols, v.Gather(allL))
	}
	// Right columns: matched build rows, then nulls for unmatched left rows.
	for c, info := range j.rSchema {
		v := j.build.Cols[c].Gather(rIdx)
		if len(unmatched) > 0 {
			full := storage.NewVector(info.Type, nOut)
			for i := 0; i < len(rIdx); i++ {
				full.Set(i, v.Value(i))
			}
			for i := len(rIdx); i < nOut; i++ {
				full.SetNull(i)
			}
			v = full
		}
		cols = append(cols, v)
	}
	return storage.NewBatch(cols)
}

func (j *hashJoinOp) Close() {
	j.left.Close()
	j.right.Close()
}
