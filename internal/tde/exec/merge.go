package exec

import (
	"context"
	"sync"

	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// mergeExchangeOp is the order-preserving Exchange: each input is sorted on
// the merge keys and runs in its own goroutine; the operator performs a
// streaming k-way merge, so the output carries the same order without a
// final sort (Sect. 4.2.1's order-preserving capability).
type mergeExchangeOp struct {
	ctx    context.Context
	cancel context.CancelFunc
	keys   []plan.SortKey
	schema []plan.ColInfo

	children []Operator
	heads    []*mergeHead
	started  bool
	wg       sync.WaitGroup
}

type mergeHead struct {
	ch    chan exchResult
	batch *storage.Batch
	pos   int
	done  bool
}

func newMergeExchangeOp(ctx context.Context, children []Operator, keys []plan.SortKey, schema []plan.ColInfo) *mergeExchangeOp {
	mExchDOP.Observe(int64(len(children)))
	cctx, cancel := context.WithCancel(ctx)
	m := &mergeExchangeOp{ctx: cctx, cancel: cancel, keys: keys, schema: schema, children: children}
	m.heads = make([]*mergeHead, len(children))
	for i := range m.heads {
		m.heads[i] = &mergeHead{ch: make(chan exchResult, 2)}
	}
	return m
}

func (m *mergeExchangeOp) start() {
	m.started = true
	for i, c := range m.children {
		m.wg.Add(1)
		go func(op Operator, h *mergeHead) {
			defer m.wg.Done()
			defer close(h.ch)
			for {
				b, err := op.Next()
				if err != nil {
					select {
					case h.ch <- exchResult{err: err}:
					case <-m.ctx.Done():
					}
					return
				}
				if b == nil {
					return
				}
				select {
				case h.ch <- exchResult{batch: b}:
				case <-m.ctx.Done():
					return
				}
			}
		}(c, m.heads[i])
	}
}

// refill ensures head i has a current row or is marked done.
func (m *mergeExchangeOp) refill(i int) error {
	h := m.heads[i]
	for !h.done && (h.batch == nil || h.pos >= h.batch.N) {
		select {
		case r, ok := <-h.ch:
			if !ok {
				h.done = true
				return nil
			}
			if r.err != nil {
				return r.err
			}
			h.batch = r.batch
			h.pos = 0
		case <-m.ctx.Done():
			return m.ctx.Err()
		}
	}
	return nil
}

func (m *mergeExchangeOp) less(a, b *mergeHead) bool {
	for _, k := range m.keys {
		av := a.batch.Cols[k.Col].Value(a.pos)
		bv := b.batch.Cols[k.Col].Value(b.pos)
		c := storage.Compare(av, bv, m.schema[k.Col].Coll)
		if c != 0 {
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

func (m *mergeExchangeOp) Next() (*storage.Batch, error) {
	if !m.started {
		m.start()
	}
	out := NewResult(m.schema)
	for out.N < storage.BatchSize {
		best := -1
		for i := range m.heads {
			if err := m.refill(i); err != nil {
				return nil, err
			}
			h := m.heads[i]
			if h.done || h.batch == nil || h.pos >= h.batch.N {
				continue
			}
			if best < 0 || m.less(h, m.heads[best]) {
				best = i
			}
		}
		if best < 0 {
			break // all inputs drained
		}
		h := m.heads[best]
		out.AppendRow(h.batch.Row(h.pos))
		h.pos++
	}
	if out.N == 0 {
		return nil, nil
	}
	return storage.NewBatch(out.Cols), nil
}

func (m *mergeExchangeOp) Close() {
	m.cancel()
	if m.started {
		m.wg.Wait()
	}
	for _, c := range m.children {
		c.Close()
	}
}
