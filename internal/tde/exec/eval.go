// Package exec implements the TDE execution engine: a vectorized Volcano
// interpreter over the logical plan, including the Exchange operator for
// parallel plans and shared-table materialization (Sect. 4.1.3 and 4.2 of
// the paper). Operators pull batches of rows; streaming operators emit
// output while consuming input, stop-and-go operators (aggregate, sort,
// top-n) consume their entire input first.
package exec

import (
	"fmt"
	"math"

	"vizq/internal/tde/plan"
	"vizq/internal/tde/storage"
)

// EvalExpr evaluates an expression over a batch, producing one output
// vector. Comparisons and arithmetic are vectorized; scalar function calls
// fall back to row-at-a-time evaluation of the registered Eval.
//
// Null semantics: nulls propagate through comparisons, arithmetic and
// functions; a null predicate value is treated as false by Filter and If.
func EvalExpr(e plan.Expr, b *storage.Batch) (*storage.Vector, error) {
	switch x := e.(type) {
	case *plan.ColRef:
		return b.Cols[x.Idx], nil
	case *plan.Lit:
		return storage.ConstVector(x.Val, b.N), nil
	case *plan.Cmp:
		return evalCmp(x, b)
	case *plan.Logic:
		return evalLogic(x, b)
	case *plan.Arith:
		return evalArith(x, b)
	case *plan.InList:
		return evalIn(x, b)
	case *plan.IsNull:
		return evalIsNull(x, b)
	case *plan.If:
		return evalIf(x, b)
	case *plan.Call:
		return evalCall(x, b)
	}
	return nil, fmt.Errorf("exec: cannot evaluate %T", e)
}

func orNulls(a, b []bool, n int) []bool {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = a[i] || b[i]
	}
	return out
}

func evalCmp(c *plan.Cmp, b *storage.Batch) (*storage.Vector, error) {
	l, err := EvalExpr(c.L, b)
	if err != nil {
		return nil, err
	}
	r, err := EvalExpr(c.R, b)
	if err != nil {
		return nil, err
	}
	n := b.N
	out := storage.NewVector(storage.TBool, n)
	out.Null = orNulls(l.Null, r.Null, n)

	// Token fast path: dictionary column compared with a string literal.
	if l.Dict != nil && r.Dict == nil && r.Type == storage.TStr && isConstVector(c.R) {
		if v, ok := cmpDictConst(c.Op, l, r, n, out, false); ok {
			return v, nil
		}
	}
	if r.Dict != nil && l.Dict == nil && l.Type == storage.TStr && isConstVector(c.L) {
		if v, ok := cmpDictConst(c.Op, r, l, n, out, true); ok {
			return v, nil
		}
	}

	switch {
	case l.Type == storage.TStr || r.Type == storage.TStr:
		if l.Dict != nil && r.Dict != nil && l.Dict == r.Dict {
			// Same dictionary: compare tokens (dictionary order = value order).
			cmpInts(c.Op, l.I, r.I, out)
			return out, nil
		}
		ld, rd := l.Decode(), r.Decode()
		for i := 0; i < n; i++ {
			if out.Null != nil && out.Null[i] {
				continue
			}
			setBool(out, i, cmpHolds(c.Op, c.Coll.Compare(ld.S[i], rd.S[i])))
		}
	case l.Type == storage.TFloat || r.Type == storage.TFloat:
		lf, rf := asFloats(l), asFloats(r)
		for i := 0; i < n; i++ {
			if out.Null != nil && out.Null[i] {
				continue
			}
			switch {
			case lf[i] < rf[i]:
				setBool(out, i, cmpHolds(c.Op, -1))
			case lf[i] > rf[i]:
				setBool(out, i, cmpHolds(c.Op, 1))
			default:
				setBool(out, i, cmpHolds(c.Op, 0))
			}
		}
	default:
		cmpInts(c.Op, l.I, r.I, out)
	}
	return out, nil
}

// isConstVector reports whether the expression is a literal (so its vector
// is constant and a single dictionary lookup suffices).
func isConstVector(e plan.Expr) bool {
	_, ok := e.(*plan.Lit)
	return ok
}

// cmpDictConst compares a dictionary token vector against a constant string
// using token arithmetic only. flipped indicates the constant is on the left.
func cmpDictConst(op plan.CmpOp, dv, cv *storage.Vector, n int, out *storage.Vector, flipped bool) (*storage.Vector, bool) {
	if cv.Null != nil && cv.Null[0] {
		return out, true // all-null comparison already marked
	}
	s := cv.S[0]
	if flipped {
		op = flipCmp(op)
	}
	d := dv.Dict
	var thr int64
	switch op {
	case plan.CmpEq, plan.CmpNe:
		tok, ok := d.Lookup(s)
		if !ok {
			// Value absent: eq is all-false, ne all-true (nulls stay null).
			for i := 0; i < n; i++ {
				if out.Null != nil && out.Null[i] {
					continue
				}
				setBool(out, i, op == plan.CmpNe)
			}
			return out, true
		}
		thr = int64(tok)
	case plan.CmpLt, plan.CmpGe:
		thr = int64(d.LowerBound(s)) // tokens < thr are < s
	case plan.CmpLe, plan.CmpGt:
		thr = int64(d.UpperBound(s)) // tokens < thr are <= s
	}
	for i := 0; i < n; i++ {
		if out.Null != nil && out.Null[i] {
			continue
		}
		t := dv.I[i]
		var keep bool
		switch op {
		case plan.CmpEq:
			keep = t == thr
		case plan.CmpNe:
			keep = t != thr
		case plan.CmpLt, plan.CmpLe:
			keep = t < thr
		case plan.CmpGe, plan.CmpGt:
			keep = t >= thr
		}
		setBool(out, i, keep)
	}
	return out, true
}

// flipCmp mirrors the comparison when operands are swapped (a < b == b > a).
func flipCmp(op plan.CmpOp) plan.CmpOp {
	switch op {
	case plan.CmpLt:
		return plan.CmpGt
	case plan.CmpLe:
		return plan.CmpGe
	case plan.CmpGt:
		return plan.CmpLt
	case plan.CmpGe:
		return plan.CmpLe
	}
	return op
}

func cmpInts(op plan.CmpOp, l, r []int64, out *storage.Vector) {
	for i := range l {
		if out.Null != nil && out.Null[i] {
			continue
		}
		switch {
		case l[i] < r[i]:
			setBool(out, i, cmpHolds(op, -1))
		case l[i] > r[i]:
			setBool(out, i, cmpHolds(op, 1))
		default:
			setBool(out, i, cmpHolds(op, 0))
		}
	}
}

func cmpHolds(op plan.CmpOp, c int) bool {
	switch op {
	case plan.CmpEq:
		return c == 0
	case plan.CmpNe:
		return c != 0
	case plan.CmpLt:
		return c < 0
	case plan.CmpLe:
		return c <= 0
	case plan.CmpGt:
		return c > 0
	default:
		return c >= 0
	}
}

func setBool(v *storage.Vector, i int, b bool) {
	if b {
		v.I[i] = 1
	} else {
		v.I[i] = 0
	}
}

func asFloats(v *storage.Vector) []float64 {
	if v.Type == storage.TFloat {
		return v.F
	}
	out := make([]float64, len(v.I))
	for i, x := range v.I {
		out[i] = float64(x)
	}
	return out
}

func evalLogic(l *plan.Logic, b *storage.Batch) (*storage.Vector, error) {
	n := b.N
	out := storage.NewVector(storage.TBool, n)
	switch l.Op {
	case plan.LogicNot:
		a, err := EvalExpr(l.Args[0], b)
		if err != nil {
			return nil, err
		}
		out.Null = a.Null
		for i := 0; i < n; i++ {
			setBool(out, i, a.I[i] == 0)
		}
	case plan.LogicAnd:
		for i := 0; i < n; i++ {
			out.I[i] = 1
		}
		for _, arg := range l.Args {
			a, err := EvalExpr(arg, b)
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				// Null operands count as false (two-valued logic, see EvalExpr doc).
				if a.I[i] == 0 || (a.Null != nil && a.Null[i]) {
					out.I[i] = 0
				}
			}
		}
	case plan.LogicOr:
		for _, arg := range l.Args {
			a, err := EvalExpr(arg, b)
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				if a.I[i] != 0 && (a.Null == nil || !a.Null[i]) {
					out.I[i] = 1
				}
			}
		}
	}
	return out, nil
}

func evalArith(a *plan.Arith, b *storage.Batch) (*storage.Vector, error) {
	l, err := EvalExpr(a.L, b)
	if err != nil {
		return nil, err
	}
	r, err := EvalExpr(a.R, b)
	if err != nil {
		return nil, err
	}
	n := b.N
	out := storage.NewVector(a.Typ, n)
	out.Null = orNulls(l.Null, r.Null, n)
	if a.Typ == storage.TFloat {
		lf, rf := asFloats(l), asFloats(r)
		for i := 0; i < n; i++ {
			switch a.Op {
			case plan.ArithAdd:
				out.F[i] = lf[i] + rf[i]
			case plan.ArithSub:
				out.F[i] = lf[i] - rf[i]
			case plan.ArithMul:
				out.F[i] = lf[i] * rf[i]
			case plan.ArithDiv:
				if rf[i] == 0 {
					out.SetNull(i)
				} else {
					out.F[i] = lf[i] / rf[i]
				}
			case plan.ArithMod:
				if rf[i] == 0 {
					out.SetNull(i)
				} else {
					out.F[i] = math.Mod(lf[i], rf[i])
				}
			}
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		switch a.Op {
		case plan.ArithAdd:
			out.I[i] = l.I[i] + r.I[i]
		case plan.ArithSub:
			out.I[i] = l.I[i] - r.I[i]
		case plan.ArithMul:
			out.I[i] = l.I[i] * r.I[i]
		case plan.ArithDiv, plan.ArithMod:
			if r.I[i] == 0 {
				out.SetNull(i)
			} else if a.Op == plan.ArithDiv {
				out.I[i] = l.I[i] / r.I[i]
			} else {
				out.I[i] = l.I[i] % r.I[i]
			}
		}
	}
	return out, nil
}

func evalIn(e *plan.InList, b *storage.Batch) (*storage.Vector, error) {
	v, err := EvalExpr(e.E, b)
	if err != nil {
		return nil, err
	}
	n := b.N
	out := storage.NewVector(storage.TBool, n)
	out.Null = v.Null

	if v.Dict != nil {
		// Token fast path: translate the value set into a token set once.
		toks := make(map[int64]bool, len(e.Vals))
		for _, val := range e.Vals {
			if val.Null {
				continue
			}
			if t, ok := v.Dict.Lookup(val.S); ok {
				toks[int64(t)] = true
			}
		}
		for i := 0; i < n; i++ {
			if out.Null != nil && out.Null[i] {
				continue
			}
			setBool(out, i, toks[v.I[i]] != e.Negate)
		}
		return out, nil
	}

	set := make(map[string]bool, len(e.Vals))
	var buf []byte
	for _, val := range e.Vals {
		if val.Null {
			continue
		}
		buf = encodeValue(buf[:0], coerce(val, v.Type), e.Coll)
		set[string(buf)] = true
	}
	for i := 0; i < n; i++ {
		if out.Null != nil && out.Null[i] {
			continue
		}
		buf = encodeValue(buf[:0], v.Value(i), e.Coll)
		setBool(out, i, set[string(buf)] != e.Negate)
	}
	return out, nil
}

// coerce widens a literal to the vector's type so int/float and date/int
// mismatches hash consistently.
func coerce(v storage.Value, t storage.Type) storage.Value {
	if v.Null || v.Type == t {
		return v
	}
	switch {
	case t == storage.TFloat:
		return storage.FloatValue(v.AsFloat())
	case t.IntBacked() && v.Type.IntBacked():
		return storage.Value{Type: t, I: v.I}
	}
	return v
}

func evalIsNull(e *plan.IsNull, b *storage.Batch) (*storage.Vector, error) {
	v, err := EvalExpr(e.E, b)
	if err != nil {
		return nil, err
	}
	out := storage.NewVector(storage.TBool, b.N)
	for i := 0; i < b.N; i++ {
		setBool(out, i, v.IsNull(i) != e.Negate)
	}
	return out, nil
}

func evalIf(e *plan.If, b *storage.Batch) (*storage.Vector, error) {
	cond, err := EvalExpr(e.Cond, b)
	if err != nil {
		return nil, err
	}
	thenV, err := EvalExpr(e.Then, b)
	if err != nil {
		return nil, err
	}
	elseV, err := EvalExpr(e.Else, b)
	if err != nil {
		return nil, err
	}
	out := storage.NewVector(e.Typ, b.N)
	for i := 0; i < b.N; i++ {
		src := elseV
		if cond.I[i] != 0 && !cond.IsNull(i) {
			src = thenV
		}
		out.Set(i, coerce(src.Value(i), e.Typ))
	}
	return out, nil
}

func evalCall(c *plan.Call, b *storage.Batch) (*storage.Vector, error) {
	args := make([]*storage.Vector, len(c.Args))
	for i, a := range c.Args {
		v, err := EvalExpr(a, b)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	out := storage.NewVector(c.Type(), b.N)
	row := make([]storage.Value, len(args))
	for i := 0; i < b.N; i++ {
		null := false
		for j, a := range args {
			row[j] = a.Value(i)
			if row[j].Null {
				null = true
			}
		}
		if null && !c.Fn.NullSafe {
			out.SetNull(i)
			continue
		}
		out.Set(i, coerce(c.Fn.Eval(row), c.Type()))
	}
	return out, nil
}

// encodeValue appends a canonical byte encoding of v (type-tagged, with
// collation keys for strings) used for hash-join and aggregation keys.
func encodeValue(buf []byte, v storage.Value, coll storage.Collation) []byte {
	if v.Null {
		return append(buf, 0)
	}
	switch v.Type {
	case storage.TFloat:
		bits := math.Float64bits(v.F)
		buf = append(buf, 2)
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(bits>>s))
		}
	case storage.TStr:
		buf = append(buf, 3)
		buf = append(buf, coll.Key(v.S)...)
	default:
		buf = append(buf, 1)
		u := uint64(v.I)
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(u>>s))
		}
	}
	return buf
}
