package tql

import (
	"fmt"
	"strings"
)

// SExpr is a node of the parse tree: an atom (identifier/operator), a string
// or number literal, a bracketed value list, or a parenthesized list.
type SExpr struct {
	// Exactly one of the following is meaningful, discriminated by Kind.
	Kind SKind
	Atom string
	Str  string
	Num  string
	List []*SExpr

	Line, Col int
}

// SKind discriminates SExpr variants.
type SKind uint8

// SExpr kinds.
const (
	SAtom SKind = iota
	SStr
	SNum
	SList    // ( ... )
	SBracket // [ ... ]
)

// String renders the s-expression back to source-ish text.
func (s *SExpr) String() string {
	switch s.Kind {
	case SAtom:
		return s.Atom
	case SStr:
		return fmt.Sprintf("%q", s.Str)
	case SNum:
		return s.Num
	case SBracket:
		parts := make([]string, len(s.List))
		for i, c := range s.List {
			parts[i] = c.String()
		}
		return "[" + strings.Join(parts, " ") + "]"
	default:
		parts := make([]string, len(s.List))
		for i, c := range s.List {
			parts[i] = c.String()
		}
		return "(" + strings.Join(parts, " ") + ")"
	}
}

// IsAtom reports whether s is the given atom (case-insensitive).
func (s *SExpr) IsAtom(name string) bool {
	return s.Kind == SAtom && strings.EqualFold(s.Atom, name)
}

// Head returns the leading atom of a list, or "".
func (s *SExpr) Head() string {
	if s.Kind == SList && len(s.List) > 0 && s.List[0].Kind == SAtom {
		return strings.ToLower(s.List[0].Atom)
	}
	return ""
}

type parser struct {
	lex *lexer
	cur token
}

// Parse parses a single TQL query into its s-expression form.
func Parse(src string) (*SExpr, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, errAt(p.cur.line, p.cur.col, "unexpected trailing input %q", p.cur.text)
	}
	return e, nil
}

func (p *parser) next() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) parseExpr() (*SExpr, error) {
	t := p.cur
	switch t.kind {
	case tokAtom:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &SExpr{Kind: SAtom, Atom: t.text, Line: t.line, Col: t.col}, nil
	case tokString:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &SExpr{Kind: SStr, Str: t.text, Line: t.line, Col: t.col}, nil
	case tokNumber:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &SExpr{Kind: SNum, Num: t.text, Line: t.line, Col: t.col}, nil
	case tokLParen, tokLBracket:
		open := t
		closer := tokRParen
		kind := SList
		if t.kind == tokLBracket {
			closer = tokRBracket
			kind = SBracket
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		node := &SExpr{Kind: kind, Line: open.line, Col: open.col}
		for p.cur.kind != closer {
			if p.cur.kind == tokEOF {
				return nil, errAt(open.line, open.col, "unclosed %q", open.text)
			}
			child, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			node.List = append(node.List, child)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return node, nil
	case tokEOF:
		return nil, errAt(t.line, t.col, "unexpected end of query")
	default:
		return nil, errAt(t.line, t.col, "unexpected token %q", t.text)
	}
}
