// Package tql implements the Tableau Query Language front end: a lexer and
// parser for the logical-tree-style query text, and a binder that resolves
// the parse tree against a catalog into a typed logical plan
// (Sect. 4.1.2: "a classic query compiler that accepts a TQL query as text
// and translates it into some logical operator tree structure ... parsing,
// syntax checking, binding and semantic analysis").
//
// TQL is written as s-expressions mirroring the operator tree:
//
//	(topn
//	  (aggregate
//	    (select (table Extract.flights) (> delay 0))
//	    (groupby carrier)
//	    (aggs (flights count *) (avgdelay avg delay)))
//	  5 (desc flights))
package tql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind identifies a lexical token class.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokAtom   // identifier or operator symbol
	tokString // quoted string literal
	tokNumber // numeric literal
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a TQL front-end error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("tql:%d:%d: %s", e.Line, e.Col, e.Msg) }

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	ch := l.src[l.pos]
	l.pos++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func isAtomRune(ch byte) bool {
	if ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch >= '0' && ch <= '9' {
		return true
	}
	switch ch {
	case '_', '.', '-', '*', '+', '/', '%', '=', '<', '>', '!', '?', '$':
		return true
	}
	return ch >= 0x80 // allow UTF-8 identifiers
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		ch := l.peekByte()
		switch {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == ';': // comment to end of line
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil

scan:
	line, col := l.line, l.col
	ch := l.peekByte()
	switch {
	case ch == '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case ch == ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case ch == '[':
		l.advance()
		return token{kind: tokLBracket, text: "[", line: line, col: col}, nil
	case ch == ']':
		l.advance()
		return token{kind: tokRBracket, text: "]", line: line, col: col}, nil
	case ch == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errAt(line, col, "unterminated string literal")
			}
			c := l.advance()
			if c == '"' {
				return token{kind: tokString, text: b.String(), line: line, col: col}, nil
			}
			if c == '\\' {
				if l.pos >= len(l.src) {
					return token{}, errAt(line, col, "unterminated string escape")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"':
					b.WriteByte(esc)
				default:
					return token{}, errAt(l.line, l.col, "bad escape \\%c", esc)
				}
				continue
			}
			b.WriteByte(c)
		}
	case ch == '`':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errAt(line, col, "unterminated quoted identifier")
			}
			c := l.advance()
			if c == '`' {
				return token{kind: tokAtom, text: b.String(), line: line, col: col}, nil
			}
			b.WriteByte(c)
		}
	case ch >= '0' && ch <= '9' || (ch == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
		var b strings.Builder
		b.WriteByte(l.advance())
		for l.pos < len(l.src) {
			c := l.peekByte()
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' ||
				((c == '+' || c == '-') && (b.String()[b.Len()-1] == 'e' || b.String()[b.Len()-1] == 'E')) {
				b.WriteByte(l.advance())
				continue
			}
			break
		}
		return token{kind: tokNumber, text: b.String(), line: line, col: col}, nil
	case isAtomRune(ch):
		var b strings.Builder
		for l.pos < len(l.src) && isAtomRune(l.peekByte()) {
			b.WriteByte(l.advance())
		}
		return token{kind: tokAtom, text: b.String(), line: line, col: col}, nil
	default:
		r := rune(ch)
		if !unicode.IsPrint(r) {
			return token{}, errAt(line, col, "unexpected byte 0x%02x", ch)
		}
		return token{}, errAt(line, col, "unexpected character %q", r)
	}
}
